// Unit and property tests for the single-space skyline algorithms.
// BNL, SFS, D&C, LESS, Index, BBS and Bitmap must all agree with the
// quadratic reference on every distribution, subspace, and tie profile.
#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/reference.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace skycube {
namespace {

Dataset TicketData() {
  // (price, travel_time): the flight example of the paper's introduction.
  return Dataset::FromRows({
                               {900, 14},   // 0: cheap but slow
                               {1400, 9},   // 1: fast but pricey
                               {1200, 11},  // 2: middle, undominated
                               {1300, 12},  // 3: dominated by 2
                               {900, 14},   // 4: duplicate of 0 — still skyline
                               {950, 14},   // 5: dominated by 0
                           })
      .value();
}

TEST(SkylineAlgorithmsTest, FlightExampleAllAlgorithms) {
  const Dataset data = TicketData();
  const std::vector<ObjectId> expected = {0, 1, 2, 4};
  for (SkylineAlgorithm algorithm : kAllSkylineAlgorithmsWithBitmap) {
    EXPECT_EQ(ComputeSkyline(data, data.full_mask(), algorithm), expected)
        << SkylineAlgorithmName(algorithm);
  }
}

TEST(SkylineAlgorithmsTest, SingleDimensionKeepsAllMinima) {
  const Dataset data = Dataset::FromRows({{3}, {1}, {2}, {1}, {1}}).value();
  for (SkylineAlgorithm algorithm : kAllSkylineAlgorithmsWithBitmap) {
    EXPECT_EQ(ComputeSkyline(data, 0b1, algorithm),
              (std::vector<ObjectId>{1, 3, 4}))
        << SkylineAlgorithmName(algorithm);
  }
}

TEST(SkylineAlgorithmsTest, AllObjectsIdentical) {
  const Dataset data =
      Dataset::FromRows({{1, 2}, {1, 2}, {1, 2}}).value();
  for (SkylineAlgorithm algorithm : kAllSkylineAlgorithmsWithBitmap) {
    EXPECT_EQ(ComputeSkyline(data, 0b11, algorithm),
              (std::vector<ObjectId>{0, 1, 2}))
        << SkylineAlgorithmName(algorithm);
  }
}

TEST(SkylineAlgorithmsTest, CandidateRestrictionComputesSubsetSkyline) {
  const Dataset data = TicketData();
  // Restricted to {1, 3, 5}: 3 and 5 are no longer dominated by excluded
  // objects... 3 is undominated among the three; 5 too; 1 undominated.
  const std::vector<ObjectId> candidates = {1, 3, 5};
  for (SkylineAlgorithm algorithm : kAllSkylineAlgorithmsWithBitmap) {
    EXPECT_EQ(
        ComputeSkylineAmong(data, data.full_mask(), candidates, algorithm),
        (std::vector<ObjectId>{1, 3, 5}))
        << SkylineAlgorithmName(algorithm);
  }
}

TEST(SkylineAlgorithmsTest, EmptyCandidateSet) {
  const Dataset data = TicketData();
  for (SkylineAlgorithm algorithm : kAllSkylineAlgorithmsWithBitmap) {
    EXPECT_TRUE(
        ComputeSkylineAmong(data, data.full_mask(), {}, algorithm).empty());
  }
}

TEST(DominanceTest, CompareRowsAllOutcomes) {
  const double a[] = {1, 2, 3};
  const double b[] = {1, 3, 4};
  const double c[] = {2, 1, 3};
  EXPECT_EQ(CompareRows(a, b, 0b111), DomOrder::kFirstDominates);
  EXPECT_EQ(CompareRows(b, a, 0b111), DomOrder::kSecondDominates);
  EXPECT_EQ(CompareRows(a, c, 0b111), DomOrder::kIncomparable);
  EXPECT_EQ(CompareRows(a, a, 0b111), DomOrder::kEqual);
  // Restricting the subspace changes the verdict.
  EXPECT_EQ(CompareRows(a, c, 0b001), DomOrder::kFirstDominates);
  EXPECT_EQ(CompareRows(a, c, 0b010), DomOrder::kSecondDominates);
  EXPECT_EQ(CompareRows(a, c, 0b100), DomOrder::kEqual);
}

TEST(DominanceTest, RowDominatesNeedsStrictness) {
  const double a[] = {1, 2};
  const double b[] = {1, 2};
  const double c[] = {1, 3};
  EXPECT_FALSE(RowDominates(a, b, 0b11));
  EXPECT_TRUE(RowDominates(a, c, 0b11));
  EXPECT_FALSE(RowDominates(c, a, 0b11));
  EXPECT_TRUE(RowDominatesOrEqual(a, b, 0b11));
  EXPECT_TRUE(RowDominatesOrEqual(a, c, 0b11));
  EXPECT_FALSE(RowDominatesOrEqual(c, a, 0b11));
}

TEST(DominanceTest, SortScoreIsMonotone) {
  const Dataset data = GenerateIndependent(200, 4, 11);
  for (ObjectId a = 0; a < data.num_objects(); ++a) {
    for (ObjectId b = 0; b < data.num_objects(); ++b) {
      if (Dominates(data, a, b, 0b1011)) {
        EXPECT_LT(SortScore(data.Row(a), 0b1011),
                  SortScore(data.Row(b), 0b1011));
      }
    }
  }
}

TEST(BbsTest, TreeEdgeCases) {
  // Fewer points than one leaf; exactly one leaf; many identical points
  // (degenerate MBRs); deep trees from thousands of points.
  {
    const Dataset tiny = Dataset::FromRows({{2, 1}, {1, 2}}).value();
    EXPECT_EQ(ComputeSkyline(tiny, 0b11, SkylineAlgorithm::kBbs),
              (std::vector<ObjectId>{0, 1}));
  }
  {
    std::vector<std::vector<double>> rows(100, {3.0, 3.0, 3.0});
    const Dataset dup = Dataset::FromRows(std::move(rows)).value();
    EXPECT_EQ(ComputeSkyline(dup, 0b111, SkylineAlgorithm::kBbs).size(),
              100u);
  }
  {
    const Dataset big = GenerateAntiCorrelated(20000, 4, 77);
    EXPECT_EQ(ComputeSkyline(big, 0b1111, SkylineAlgorithm::kBbs),
              ComputeSkyline(big, 0b1111,
                             SkylineAlgorithm::kSortFilterSkyline));
  }
}

// Property sweep: all algorithms equal the quadratic reference on every
// subspace of randomized datasets.
using AlgoConfig = std::tuple<Distribution, int, uint64_t>;

class SkylineAlgorithmsPropertyTest
    : public ::testing::TestWithParam<AlgoConfig> {};

TEST_P(SkylineAlgorithmsPropertyTest, AgreesWithReferenceOnAllSubspaces) {
  SyntheticSpec spec;
  spec.distribution = std::get<0>(GetParam());
  spec.num_dims = std::get<1>(GetParam());
  spec.seed = std::get<2>(GetParam());
  spec.num_objects = 300;
  spec.truncate_decimals = 2;  // plenty of ties
  const Dataset data = GenerateSynthetic(spec);
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
    const std::vector<ObjectId> expected = ReferenceSkyline(data, subspace);
    for (SkylineAlgorithm algorithm : kAllSkylineAlgorithmsWithBitmap) {
      ASSERT_EQ(ComputeSkyline(data, subspace, algorithm), expected)
          << SkylineAlgorithmName(algorithm) << " on subspace "
          << FormatMask(subspace);
    }
  });
}

std::string AlgoConfigName(const ::testing::TestParamInfo<AlgoConfig>& info) {
  std::string name = DistributionName(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_d" + std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineAlgorithmsPropertyTest,
    ::testing::Combine(::testing::Values(Distribution::kIndependent,
                                         Distribution::kCorrelated,
                                         Distribution::kAntiCorrelated),
                       ::testing::Values(1, 3, 5),
                       ::testing::Values(uint64_t{3}, uint64_t{17})),
    AlgoConfigName);

}  // namespace
}  // namespace skycube
