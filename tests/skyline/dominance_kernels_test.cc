// Property tests for the rank-compressed columnar dominance kernels:
// every kernel must match its scalar double-precision oracle bit-for-bit
// on random datasets across distributions, tie profiles, and subspaces,
// and every ranked algorithm must reproduce the scalar skyline exactly.
#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitset.h"
#include "core/skyey.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "dataset/ranked_view.h"
#include "skycube/skycube.h"
#include "skyline/algorithms.h"
#include "skyline/dominance.h"
#include "skyline/dominance_kernels.h"

namespace skycube {
namespace {

std::vector<Dataset> TestDatasets() {
  std::vector<Dataset> datasets;
  for (Distribution distribution :
       {Distribution::kIndependent, Distribution::kCorrelated,
        Distribution::kAntiCorrelated}) {
    SyntheticSpec spec;
    spec.distribution = distribution;
    spec.num_objects = 300;
    spec.num_dims = 5;
    spec.seed = 7;
    // 1 decimal digit forces heavy ties; 4 is the paper's setting.
    for (int decimals : {1, 4}) {
      spec.truncate_decimals = decimals;
      datasets.push_back(GenerateSynthetic(spec));
    }
  }
  return datasets;
}

std::vector<DimMask> TestSubspaces(const Dataset& data) {
  return {DimBit(0), 0b11, 0b101, 0b1110, data.full_mask()};
}

TEST(RankedViewTest, RanksPreserveOrderAndTies) {
  for (const Dataset& data : TestDatasets()) {
    const RankedView view(data);
    for (int dim = 0; dim < data.num_dims(); ++dim) {
      const uint32_t* col = view.column(dim);
      uint32_t max_rank = 0;
      for (ObjectId a = 0; a < data.num_objects(); ++a) {
        max_rank = std::max(max_rank, col[a]);
        for (ObjectId b = a + 1; b < data.num_objects(); ++b) {
          const double va = data.Value(a, dim);
          const double vb = data.Value(b, dim);
          EXPECT_EQ(col[a] < col[b], va < vb);
          EXPECT_EQ(col[a] == col[b], va == vb);
        }
      }
      EXPECT_EQ(view.num_distinct(dim), max_rank + 1);
      // SortedOrder walks values ascending, ids ascending within ties.
      const uint32_t* order = view.SortedOrder(dim);
      for (size_t i = 1; i < data.num_objects(); ++i) {
        const double prev = data.Value(order[i - 1], dim);
        const double cur = data.Value(order[i], dim);
        EXPECT_TRUE(prev < cur || (prev == cur && order[i - 1] < order[i]));
      }
    }
  }
}

TEST(DominanceKernelsTest, PairwiseKernelsMatchScalarOracle) {
  for (const Dataset& data : TestDatasets()) {
    const RankedView view(data);
    for (DimMask subspace : TestSubspaces(data)) {
      for (ObjectId a = 0; a < 64; ++a) {
        for (ObjectId b = 0; b < 64; ++b) {
          const double* row_a = data.Row(a);
          const double* row_b = data.Row(b);
          EXPECT_EQ(CompareRanked(view, a, b, subspace),
                    CompareRows(row_a, row_b, subspace));
          EXPECT_EQ(RankedDominates(view, a, b, subspace),
                    RowDominates(row_a, row_b, subspace));
          EXPECT_EQ(RankedDominatesOrEqual(view, a, b, subspace),
                    RowDominatesOrEqual(row_a, row_b, subspace));
          EXPECT_EQ(view.DominanceMask(a, b, subspace),
                    data.DominanceMask(a, b, subspace));
          EXPECT_EQ(view.CoincidenceMask(a, b, subspace),
                    data.CoincidenceMask(a, b, subspace));
        }
      }
    }
  }
}

TEST(DominanceKernelsTest, BatchKernelsMatchScalarOracle) {
  for (const Dataset& data : TestDatasets()) {
    const RankedView view(data);
    std::vector<ObjectId> ids(data.num_objects());
    std::iota(ids.begin(), ids.end(), 0);
    for (DimMask subspace : TestSubspaces(data)) {
      std::vector<DimMask> masks(ids.size());
      for (ObjectId probe : {ObjectId{0}, ObjectId{17}, ObjectId{299}}) {
        DynamicBitset dominated(ids.size());
        DominatedBitmap(view, probe, ids.data(), ids.size(), subspace,
                        &dominated);
        CoincidenceMasks(view, probe, ids.data(), ids.size(), subspace,
                         masks.data());
        for (size_t j = 0; j < ids.size(); ++j) {
          EXPECT_EQ(dominated.Test(j),
                    RowDominates(data.Row(probe), data.Row(ids[j]), subspace));
          EXPECT_EQ(masks[j], data.CoincidenceMask(probe, ids[j], subspace));
        }
        DominanceMasks(view, probe, ids.data(), ids.size(), subspace,
                       masks.data());
        for (size_t j = 0; j < ids.size(); ++j) {
          EXPECT_EQ(masks[j], data.DominanceMask(probe, ids[j], subspace));
        }
      }
    }
  }
}

TEST(DominanceKernelsTest, BlockKernelsMatchScalarOracle) {
  for (const Dataset& data : TestDatasets()) {
    const RankedView view(data);
    std::vector<ObjectId> block_ids;
    for (ObjectId id = 0; id < data.num_objects(); id += 2) {
      block_ids.push_back(id);
    }
    for (DimMask subspace : TestSubspaces(data)) {
      const RankedBlock block = RankedBlock::Gather(view, subspace, block_ids);
      std::vector<uint32_t> probe(
          static_cast<size_t>(std::max(block.num_packed_dims(), 1)));
      std::vector<uint8_t> flags(block_ids.size());
      for (ObjectId target = 0; target < 32; ++target) {
        block.GatherProbe(target, probe.data());
        bool any = false;
        for (ObjectId id : block_ids) {
          any = any || RowDominates(data.Row(id), data.Row(target), subspace);
        }
        EXPECT_EQ(BlockAnyDominates(block, probe.data()), any);
        BlockDominatedFlags(block, probe.data(), flags.data());
        for (size_t j = 0; j < block_ids.size(); ++j) {
          EXPECT_EQ(flags[j] != 0, RowDominates(data.Row(target),
                                                data.Row(block_ids[j]),
                                                subspace));
        }
      }
    }
  }
}

TEST(DominanceKernelsTest, PairwiseTileMatchesScalarMasks) {
  for (const Dataset& data : TestDatasets()) {
    const RankedView view(data);
    std::vector<ObjectId> ids;
    for (ObjectId id = 0; id < 100; ++id) ids.push_back(id * 3);
    const DimMask universe = data.full_mask();
    const RankedBlock block = RankedBlock::Gather(view, universe, ids);
    const size_t n = ids.size();
    std::vector<DimMask> dom(n * n, ~DimMask{0});
    // Cover tile seams: fill via two horizontal bands and two vertical ones.
    for (size_t i0 : {size_t{0}, n / 2}) {
      const size_t i1 = i0 == 0 ? n / 2 : n;
      for (size_t j0 : {size_t{0}, n / 3}) {
        const size_t j1 = j0 == 0 ? n / 3 : n;
        PairwiseDominanceTile(block, i0, i1, j0, j1, dom.data() + i0 * n + j0,
                              n);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        EXPECT_EQ(dom[i * n + j], data.DominanceMask(ids[i], ids[j], universe));
      }
    }
  }
}

TEST(DominanceKernelsTest, RankSortKeyIsMonotoneUnderDominance) {
  for (const Dataset& data : TestDatasets()) {
    const RankedView view(data);
    for (DimMask subspace : TestSubspaces(data)) {
      for (ObjectId a = 0; a < 80; ++a) {
        for (ObjectId b = 0; b < 80; ++b) {
          if (RowDominates(data.Row(a), data.Row(b), subspace)) {
            EXPECT_LT(view.RankSortKey(a, subspace),
                      view.RankSortKey(b, subspace));
          }
        }
      }
    }
  }
}

TEST(DominanceKernelsTest, AllTiesRegression) {
  // Every object identical: nothing dominates anything, every kernel must
  // report ties, and every ranked algorithm must keep all objects.
  const Dataset data =
      Dataset::FromRows({{1, 2, 3}, {1, 2, 3}, {1, 2, 3}, {1, 2, 3}}).value();
  const RankedView view(data);
  const DimMask full = data.full_mask();
  std::vector<ObjectId> ids(data.num_objects());
  std::iota(ids.begin(), ids.end(), 0);
  for (ObjectId a = 0; a < data.num_objects(); ++a) {
    for (ObjectId b = 0; b < data.num_objects(); ++b) {
      EXPECT_EQ(CompareRanked(view, a, b, full), DomOrder::kEqual);
      EXPECT_FALSE(RankedDominates(view, a, b, full));
      EXPECT_EQ(view.CoincidenceMask(a, b, full), full);
    }
  }
  DynamicBitset dominated(ids.size());
  DominatedBitmap(view, 0, ids.data(), ids.size(), full, &dominated);
  EXPECT_FALSE(dominated.Any());
  for (SkylineAlgorithm algorithm : kAllSkylineAlgorithmsWithBitmap) {
    EXPECT_EQ(ComputeSkylineRanked(view, full, algorithm), ids)
        << SkylineAlgorithmName(algorithm);
  }
}

TEST(RankedAlgorithmsTest, MatchScalarAlgorithmsOnAllSubspaces) {
  for (const Dataset& data : TestDatasets()) {
    const RankedView view(data);
    for (DimMask subspace : TestSubspaces(data)) {
      for (SkylineAlgorithm algorithm : kAllSkylineAlgorithmsWithBitmap) {
        EXPECT_EQ(ComputeSkylineRanked(view, subspace, algorithm),
                  ComputeSkyline(data, subspace, algorithm))
            << SkylineAlgorithmName(algorithm) << " subspace=" << subspace;
      }
    }
  }
}

TEST(RankedAlgorithmsTest, CandidateRestrictionMatchesScalar) {
  for (const Dataset& data : TestDatasets()) {
    const RankedView view(data);
    std::vector<ObjectId> candidates;
    for (ObjectId id = 1; id < data.num_objects(); id += 3) {
      candidates.push_back(id);
    }
    for (SkylineAlgorithm algorithm : kAllSkylineAlgorithmsWithBitmap) {
      EXPECT_EQ(ComputeSkylineAmongRanked(view, data.full_mask(), candidates,
                                          algorithm),
                ComputeSkylineAmong(data, data.full_mask(), candidates,
                                    algorithm))
          << SkylineAlgorithmName(algorithm);
    }
  }
}

TEST(RankedPipelinesTest, StellarIdenticalRankedVsDouble) {
  for (const Dataset& data : TestDatasets()) {
    StellarOptions ranked_options;
    ranked_options.use_ranked_kernels = true;
    ranked_options.force_ranked_kernels = true;
    StellarOptions double_options;
    double_options.use_ranked_kernels = false;
    for (StellarOptions::MatrixMode mode :
         {StellarOptions::MatrixMode::kMaterialize,
          StellarOptions::MatrixMode::kOnTheFly}) {
      ranked_options.matrix_mode = mode;
      double_options.matrix_mode = mode;
      EXPECT_EQ(ComputeStellar(data, ranked_options),
                ComputeStellar(data, double_options));
    }
  }
}

TEST(RankedPipelinesTest, SkyeyIdenticalRankedVsDouble) {
  SyntheticSpec spec;
  spec.num_objects = 150;
  spec.num_dims = 4;
  spec.truncate_decimals = 1;
  const Dataset data = GenerateSynthetic(spec);
  SkyeyOptions ranked_options;
  ranked_options.use_ranked_kernels = true;
  ranked_options.force_ranked_kernels = true;
  SkyeyOptions double_options;
  double_options.use_ranked_kernels = false;
  EXPECT_EQ(ComputeSkyey(data, ranked_options),
            ComputeSkyey(data, double_options));
}

TEST(RankedPipelinesTest, ParallelSkycubeDeterministic) {
  SyntheticSpec spec;
  spec.num_objects = 200;
  spec.num_dims = 5;
  spec.truncate_decimals = 2;
  const Dataset data = GenerateSynthetic(spec);
  // Reference: sequential, double path.
  SkycubeOptions reference_options;
  reference_options.num_threads = 1;
  reference_options.use_ranked_kernels = false;
  std::vector<std::pair<DimMask, std::vector<ObjectId>>> reference;
  ForEachSubspaceSkyline(
      data, reference_options,
      [&](DimMask mask, const std::vector<ObjectId>& skyline) {
        reference.emplace_back(mask, skyline);
      });
  for (int num_threads : {1, 0}) {
    for (bool use_ranked : {false, true}) {
      SkycubeOptions options;
      options.num_threads = num_threads;
      options.use_ranked_kernels = use_ranked;
      options.force_ranked_kernels = use_ranked;
      std::vector<std::pair<DimMask, std::vector<ObjectId>>> visited;
      SkycubeStats stats;
      ForEachSubspaceSkyline(
          data, options,
          [&](DimMask mask, const std::vector<ObjectId>& skyline) {
            visited.emplace_back(mask, skyline);
          },
          &stats);
      EXPECT_EQ(visited, reference)
          << "threads=" << num_threads << " ranked=" << use_ranked;
      EXPECT_EQ(stats.subspaces_visited, reference.size());
    }
  }
}

}  // namespace
}  // namespace skycube
