// NetServer lifecycle tests over real loopback sockets: an in-process
// server on its own thread, raw TCP clients driving the wire protocol.
// Covers answer correctness per opcode, pipelined in-order delivery,
// concurrent connections, protocol-error handling (goaway + close, never a
// crash or hang), deterministic overload shedding through both the
// dispatch queue and the service admission gate, and the graceful-drain
// contract: in-flight requests complete, new connections are refused with
// kUnavailable, Run() returns.
#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cube.h"
#include "core/maintenance.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "net/protocol.h"
#include "service/ingest.h"
#include "service/service.h"

namespace skycube::net {
namespace {

Dataset MakeData(size_t objects, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_dims = dims;
  spec.num_objects = objects;
  spec.seed = seed;
  spec.truncate_decimals = 2;
  return GenerateSynthetic(spec);
}

/// Insert handler whose ApplyInsert can be made to block on a gate — the
/// deterministic way to hold a dispatch worker busy (no sleeps, no races:
/// the test waits for the insert to arrive, then decides when it finishes).
class GatedInsertHandler : public InsertHandler {
 public:
  explicit GatedInsertHandler(IncrementalCubeMaintainer* maintainer)
      : inner_(maintainer) {}

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_open_ = false;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_open_ = true;
    }
    cv_.notify_all();
  }
  /// Blocks until an ApplyInsert is waiting at the closed gate.
  void AwaitBlockedInsert() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return waiting_ > 0; });
  }

  Result<Applied> ApplyInsert(const std::vector<double>& values,
                              uint64_t timestamp_ms = 0) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++waiting_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return gate_open_; });
      --waiting_;
    }
    return inner_.ApplyInsert(values, timestamp_ms);
  }
  Result<Applied> ApplyDelete(ObjectId id) override {
    return inner_.ApplyDelete(id);
  }
  Result<Applied> ApplyExpire(uint64_t cutoff_ms) override {
    return inner_.ApplyExpire(cutoff_ms);
  }
  int num_dims() const override { return inner_.num_dims(); }

 private:
  MaintainerInsertHandler inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool gate_open_ = true;
  int waiting_ = 0;
};

/// Blocking loopback client speaking the binary protocol (recv timeout so
/// a server bug fails the test instead of hanging it).
class TestClient {
 public:
  explicit TestClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    struct timeval timeout = {};
    timeout.tv_sec = 30;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                       sizeof(timeout));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return fd_ >= 0; }

  void Send(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
      sent += static_cast<size_t>(n);
    }
  }
  void SendRequest(const WireRequest& request) {
    Send(EncodeRequest(request));
  }

  /// Reads one verified frame payload; false on clean EOF.
  bool ReadPayload(std::string* payload) {
    std::string error;
    for (;;) {
      const FrameDecoder::Next next = decoder_.Take(payload, &error);
      if (next == FrameDecoder::Next::kFrame) return true;
      if (next == FrameDecoder::Next::kError) {
        ADD_FAILURE() << "client-side framing error: " << error;
        return false;
      }
      char buffer[1 << 16];
      const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
      if (n == 0) return false;
      if (n < 0) {
        ADD_FAILURE() << "recv failed: " << std::strerror(errno);
        return false;
      }
      decoder_.Append(buffer, static_cast<size_t>(n));
    }
  }

  WireResponse ReadResponse() {
    std::string payload;
    if (!ReadPayload(&payload)) {
      ADD_FAILURE() << "EOF where a response frame was expected";
      return {};
    }
    if (PayloadOpcode(payload) != Opcode::kResponse) {
      ADD_FAILURE() << "expected kResponse, got opcode "
                    << OpcodeName(PayloadOpcode(payload));
      return {};
    }
    Result<WireResponse> decoded = ParseResponse(payload);
    if (!decoded.ok()) {
      ADD_FAILURE() << decoded.status().ToString();
      return {};
    }
    return std::move(decoded).value();
  }

  WireGoAway ReadGoAway() {
    std::string payload;
    if (!ReadPayload(&payload) ||
        PayloadOpcode(payload) != Opcode::kGoAway) {
      ADD_FAILURE() << "expected a goaway frame";
      return {};
    }
    Result<WireGoAway> decoded = ParseGoAway(payload);
    if (!decoded.ok()) {
      ADD_FAILURE() << decoded.status().ToString();
      return {};
    }
    return std::move(decoded).value();
  }

  /// True iff the server closed the stream (no further frames).
  bool AtEof() {
    std::string payload;
    return !ReadPayload(&payload);
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

WireRequest Skyline(uint64_t id, DimMask subspace) {
  WireRequest request;
  request.op = Opcode::kSkyline;
  request.id = id;
  request.subspace = subspace;
  return request;
}

WireRequest Simple(Opcode op, uint64_t id) {
  WireRequest request;
  request.op = op;
  request.id = id;
  return request;
}

class NetServerTest : public ::testing::Test {
 protected:
  void StartServer(NetServerOptions options = {},
                   SkycubeServiceOptions service_options = {}) {
    Dataset data = MakeData(300, 4, 7);
    maintainer_ = std::make_unique<IncrementalCubeMaintainer>(std::move(data));
    handler_ = std::make_unique<GatedInsertHandler>(maintainer_.get());
    cube_ = std::make_shared<const CompressedSkylineCube>(
        maintainer_->MakeCube());
    service_ =
        std::make_unique<SkycubeService>(cube_, service_options);
    service_->AttachInsertHandler(handler_.get());
    options.port = 0;
    server_ = std::make_unique<NetServer>(service_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    serve_thread_ = std::thread([this] { server_->Run(); });
  }

  void TearDown() override {
    if (handler_) handler_->OpenGate();  // never leave a worker stuck
    if (server_) server_->Stop();
    if (serve_thread_.joinable()) serve_thread_.join();
  }

  std::unique_ptr<IncrementalCubeMaintainer> maintainer_;
  std::unique_ptr<GatedInsertHandler> handler_;
  std::shared_ptr<const CompressedSkylineCube> cube_;
  std::unique_ptr<SkycubeService> service_;
  std::unique_ptr<NetServer> server_;
  std::thread serve_thread_;
};

TEST_F(NetServerTest, AnswersEveryOpcodeCorrectly) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  const DimMask mask = 0b101;
  client.SendRequest(Skyline(1, mask));
  WireResponse skyline = client.ReadResponse();
  EXPECT_EQ(skyline.id, 1u);
  EXPECT_EQ(skyline.status, StatusCode::kOk);
  EXPECT_EQ(skyline.ids, cube_->SubspaceSkyline(mask));
  EXPECT_EQ(skyline.snapshot_version, 1u);

  WireRequest card = Skyline(2, mask);
  card.op = Opcode::kCardinality;
  client.SendRequest(card);
  EXPECT_EQ(client.ReadResponse().count, cube_->SkylineCardinality(mask));

  WireRequest member = Skyline(3, mask);
  member.op = Opcode::kMembership;
  member.object = 0;
  client.SendRequest(member);
  EXPECT_EQ(client.ReadResponse().member,
            cube_->IsInSubspaceSkyline(0, mask));

  WireRequest count = Simple(Opcode::kMembershipCount, 4);
  count.object = 0;
  client.SendRequest(count);
  EXPECT_EQ(client.ReadResponse().count,
            cube_->CountSubspacesWhereSkyline(0));

  client.SendRequest(Simple(Opcode::kSkycubeSize, 5));
  EXPECT_EQ(client.ReadResponse().count,
            cube_->TotalSubspaceSkylineObjects());

  client.SendRequest(Simple(Opcode::kPing, 6));
  const WireResponse pong = client.ReadResponse();
  EXPECT_EQ(pong.id, 6u);
  EXPECT_EQ(pong.status, StatusCode::kOk);

  client.SendRequest(Simple(Opcode::kHealth, 7));
  EXPECT_NE(client.ReadResponse().text.find("status=ready"),
            std::string::npos);

  client.SendRequest(Simple(Opcode::kStats, 8));
  EXPECT_NE(client.ReadResponse().text.find("queries="), std::string::npos);

  // An insert through the wire swaps the snapshot: the response carries the
  // post-insert version and subsequent queries see it.
  WireRequest insert = Simple(Opcode::kInsert, 9);
  insert.values = {0.01, 0.01, 0.01, 0.01};
  client.SendRequest(insert);
  const WireResponse inserted = client.ReadResponse();
  EXPECT_EQ(inserted.status, StatusCode::kOk);
  EXPECT_EQ(inserted.snapshot_version, 2u);
  EXPECT_EQ(inserted.count, 301u);

  client.SendRequest(Skyline(10, mask));
  EXPECT_EQ(client.ReadResponse().snapshot_version, 2u);
}

TEST_F(NetServerTest, CustomHealthAndStatsProviders) {
  NetServerOptions options;
  options.health_text = [] { return std::string("custom-health-line"); };
  options.stats_text = [] { return std::string("custom-stats-line"); };
  StartServer(options);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.SendRequest(Simple(Opcode::kHealth, 1));
  EXPECT_EQ(client.ReadResponse().text, "custom-health-line");
  client.SendRequest(Simple(Opcode::kStats, 2));
  EXPECT_EQ(client.ReadResponse().text, "custom-stats-line");
}

TEST_F(NetServerTest, PipelinedResponsesArriveInRequestOrder) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());

  // One write carrying 200 mixed requests; the dispatch pool may complete
  // them in any order, but the wire must deliver responses in request
  // order. Interleaved introspection (answered inline on the loop thread)
  // must hold its pipeline position too.
  constexpr uint64_t kRequests = 200;
  std::string burst;
  for (uint64_t id = 0; id < kRequests; ++id) {
    switch (id % 5) {
      case 0:
        burst += EncodeRequest(Skyline(id, 0b11));
        break;
      case 1: {
        WireRequest request = Skyline(id, 0b1001);
        request.op = Opcode::kCardinality;
        burst += EncodeRequest(request);
        break;
      }
      case 2: {
        WireRequest request = Simple(Opcode::kMembershipCount, id);
        request.object = static_cast<ObjectId>(id % 300);
        burst += EncodeRequest(request);
        break;
      }
      case 3:
        burst += EncodeRequest(Simple(Opcode::kSkycubeSize, id));
        break;
      default:
        burst += EncodeRequest(Simple(Opcode::kPing, id));
        break;
    }
  }
  client.Send(burst);
  for (uint64_t id = 0; id < kRequests; ++id) {
    const WireResponse response = client.ReadResponse();
    ASSERT_EQ(response.id, id) << "responses out of order";
    EXPECT_EQ(response.status, StatusCode::kOk);
  }
}

TEST_F(NetServerTest, ManyConcurrentConnections) {
  StartServer();
  constexpr int kClients = 50;
  std::vector<std::unique_ptr<TestClient>> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(std::make_unique<TestClient>(server_->port()));
    ASSERT_TRUE(clients.back()->connected()) << "client " << i;
  }
  // All clients write before any reads: the server must serve them
  // interleaved, not serially.
  for (int i = 0; i < kClients; ++i) {
    clients[i]->SendRequest(Skyline(static_cast<uint64_t>(i), 0b11));
  }
  const std::vector<ObjectId> expected = cube_->SubspaceSkyline(0b11);
  for (int i = 0; i < kClients; ++i) {
    const WireResponse response = clients[i]->ReadResponse();
    EXPECT_EQ(response.id, static_cast<uint64_t>(i));
    EXPECT_EQ(response.ids, expected);
  }
  EXPECT_EQ(server_->stats().connections_accepted,
            static_cast<uint64_t>(kClients));
}

TEST_F(NetServerTest, CorruptedFrameAnswersGoAwayAndCloses) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // A valid request first proves the stream worked before the corruption.
  client.SendRequest(Simple(Opcode::kPing, 1));
  EXPECT_EQ(client.ReadResponse().id, 1u);

  std::string bad = EncodeRequest(Simple(Opcode::kPing, 2));
  bad[6] = static_cast<char>(bad[6] ^ 0xFF);  // corrupt the checksum
  client.Send(bad);
  const WireGoAway goaway = client.ReadGoAway();
  EXPECT_EQ(goaway.status, StatusCode::kInvalidArgument);
  EXPECT_FALSE(goaway.reason.empty());
  EXPECT_TRUE(client.AtEof());
  EXPECT_EQ(server_->stats().protocol_errors, 1u);
}

TEST_F(NetServerTest, OversizedDeclaredLengthAnswersGoAwayAndCloses) {
  NetServerOptions options;
  options.max_frame_payload = 4096;
  StartServer(options);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  std::string header(kFrameHeaderBytes, '\0');
  const uint32_t declared = 1u << 30;
  std::memcpy(header.data(), &declared, sizeof(declared));
  client.Send(header);
  EXPECT_EQ(client.ReadGoAway().status, StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.AtEof());
}

TEST_F(NetServerTest, GarbageOpcodeAnswersGoAwayAndCloses) {
  StartServer();
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // Correctly framed payload whose opcode byte is garbage: framing is
  // intact but the request is unintelligible — same fate, goaway + close.
  std::string payload(9, '\0');
  payload[0] = static_cast<char>(0xEE);
  std::string frame;
  AppendFrame(payload, &frame);
  client.Send(frame);
  EXPECT_EQ(client.ReadGoAway().status, StatusCode::kInvalidArgument);
  EXPECT_TRUE(client.AtEof());
}

TEST_F(NetServerTest, DispatchQueueFullShedsWithResourceExhausted) {
  // One worker, a one-slot queue, and an insert blocked on the gate: the
  // worker is provably busy and the queue provably full when the third
  // client's request arrives — it must be answered kResourceExhausted
  // immediately (explicit shed), not sit in a kernel buffer.
  NetServerOptions options;
  options.dispatch_threads = 1;
  options.dispatch_queue_capacity = 1;
  StartServer(options);

  TestClient blocked(server_->port());
  TestClient queued(server_->port());
  TestClient shed(server_->port());
  ASSERT_TRUE(blocked.connected());
  ASSERT_TRUE(queued.connected());
  ASSERT_TRUE(shed.connected());

  handler_->CloseGate();
  WireRequest insert = Simple(Opcode::kInsert, 1);
  insert.values = {0.5, 0.5, 0.5, 0.5};
  blocked.SendRequest(insert);
  handler_->AwaitBlockedInsert();  // the only worker is now busy

  queued.SendRequest(Skyline(2, 0b11));  // occupies the single queue slot
  // The queued batch cannot have been picked up (the worker is blocked);
  // give the loop thread a moment to have submitted it.
  while (server_->stats().frames_in < 2) {
    std::this_thread::yield();
  }

  shed.SendRequest(Skyline(3, 0b11));
  const WireResponse refused = shed.ReadResponse();
  EXPECT_EQ(refused.id, 3u);
  EXPECT_EQ(refused.status, StatusCode::kResourceExhausted);
  EXPECT_NE(refused.text.find("overloaded"), std::string::npos);
  EXPECT_GE(server_->stats().dispatch_shed, 1u);

  // Releasing the gate completes the blocked insert and the queued query —
  // shedding one request must not corrupt the others.
  handler_->OpenGate();
  EXPECT_EQ(blocked.ReadResponse().status, StatusCode::kOk);
  EXPECT_EQ(queued.ReadResponse().status, StatusCode::kOk);
}

TEST_F(NetServerTest, ServiceAdmissionGateShedsThroughTheWire) {
  // The service's own max_in_flight gate must surface on the wire exactly
  // as it does in-process: kResourceExhausted per refused request.
  NetServerOptions options;
  options.dispatch_threads = 2;
  SkycubeServiceOptions service_options;
  service_options.max_in_flight = 1;
  service_options.queue_wait_timeout = std::chrono::milliseconds(0);
  StartServer(options, service_options);

  TestClient blocked(server_->port());
  TestClient refused(server_->port());
  ASSERT_TRUE(blocked.connected());
  ASSERT_TRUE(refused.connected());

  handler_->CloseGate();
  WireRequest insert = Simple(Opcode::kInsert, 1);
  insert.values = {0.5, 0.5, 0.5, 0.5};
  blocked.SendRequest(insert);
  handler_->AwaitBlockedInsert();  // one admission slot held inside Execute

  refused.SendRequest(Skyline(2, 0b11));
  const WireResponse response = refused.ReadResponse();
  EXPECT_EQ(response.status, StatusCode::kResourceExhausted);

  handler_->OpenGate();
  EXPECT_EQ(blocked.ReadResponse().status, StatusCode::kOk);
}

TEST_F(NetServerTest, DeadlineExpiresWhileQueuedBehindSaturatedPool) {
  // deadline_millis is attached at decode time, so time spent queued
  // behind a busy pool counts: a request held past its budget answers
  // kDeadlineExceeded, it does not run anyway.
  NetServerOptions options;
  options.dispatch_threads = 1;
  options.deadline_millis = 50;
  StartServer(options);

  TestClient blocked(server_->port());
  TestClient late(server_->port());
  ASSERT_TRUE(blocked.connected());
  ASSERT_TRUE(late.connected());

  handler_->CloseGate();
  WireRequest insert = Simple(Opcode::kInsert, 1);
  insert.values = {0.5, 0.5, 0.5, 0.5};
  blocked.SendRequest(insert);
  handler_->AwaitBlockedInsert();

  late.SendRequest(Skyline(2, 0b11));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  handler_->OpenGate();

  EXPECT_EQ(blocked.ReadResponse().status, StatusCode::kOk);
  EXPECT_EQ(late.ReadResponse().status, StatusCode::kDeadlineExceeded);
}

TEST_F(NetServerTest, ConnectionLimitRefusesWithResourceExhausted) {
  NetServerOptions options;
  options.max_connections = 2;
  StartServer(options);
  TestClient first(server_->port());
  TestClient second(server_->port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(second.connected());
  // Make sure both are registered before the third connects.
  first.SendRequest(Simple(Opcode::kPing, 1));
  second.SendRequest(Simple(Opcode::kPing, 2));
  first.ReadResponse();
  second.ReadResponse();

  TestClient third(server_->port());
  ASSERT_TRUE(third.connected());
  EXPECT_EQ(third.ReadGoAway().status, StatusCode::kResourceExhausted);
  EXPECT_TRUE(third.AtEof());
  EXPECT_EQ(server_->stats().connections_refused_limit, 1u);
}

TEST_F(NetServerTest, DrainCompletesInFlightRefusesNewAndReturns) {
  NetServerOptions options;
  options.dispatch_threads = 1;
  StartServer(options);

  TestClient inflight(server_->port());
  ASSERT_TRUE(inflight.connected());

  // Pipeline an insert (which will block on the gate) and a query behind
  // it — both are decoded and in flight when the drain begins.
  handler_->CloseGate();
  WireRequest insert = Simple(Opcode::kInsert, 1);
  insert.values = {0.5, 0.5, 0.5, 0.5};
  std::string burst = EncodeRequest(insert) + EncodeRequest(Skyline(2, 0b11));
  inflight.Send(burst);
  handler_->AwaitBlockedInsert();

  server_->BeginDrain();
  EXPECT_TRUE(server_->draining());

  // New connections are refused with an explicit kUnavailable goaway while
  // the drain holds the server open.
  TestClient refused(server_->port());
  ASSERT_TRUE(refused.connected());
  EXPECT_EQ(refused.ReadGoAway().status, StatusCode::kUnavailable);
  EXPECT_TRUE(refused.AtEof());

  // In-flight requests complete and their responses are flushed.
  handler_->OpenGate();
  const WireResponse first = inflight.ReadResponse();
  EXPECT_EQ(first.id, 1u);
  EXPECT_EQ(first.status, StatusCode::kOk);
  const WireResponse second = inflight.ReadResponse();
  EXPECT_EQ(second.id, 2u);
  EXPECT_EQ(second.status, StatusCode::kOk);

  // The connection closes once idle and Run() returns.
  EXPECT_TRUE(inflight.AtEof());
  serve_thread_.join();
  EXPECT_EQ(server_->stats().connections_open, 0u);
  EXPECT_EQ(server_->stats().connections_refused_draining, 1u);
}

TEST_F(NetServerTest, DrainWithIdleConnectionsReturnsImmediately) {
  StartServer();
  TestClient idle(server_->port());
  ASSERT_TRUE(idle.connected());
  idle.SendRequest(Simple(Opcode::kPing, 1));
  idle.ReadResponse();

  server_->BeginDrain();
  EXPECT_TRUE(idle.AtEof());  // idle connections close right away
  serve_thread_.join();
}

}  // namespace
}  // namespace skycube::net
