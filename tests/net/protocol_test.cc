// Wire-protocol tests: frame round-trips under every delivery pattern the
// kernel can produce (whole, split, coalesced), and the malformed-input
// matrix — truncated prefixes, oversized lengths, checksum bit-flips at
// every byte position, garbage opcodes. Every malformed case must yield a
// clean protocol error (and poison the decoder); none may crash or hang.
#include "net/protocol.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace skycube::net {
namespace {

// --- Helpers -------------------------------------------------------------

/// Runs one complete frame string through a fresh decoder and parses the
/// payload as a request.
Result<WireRequest> DecodeRequestFrame(const std::string& frame) {
  FrameDecoder decoder;
  decoder.Append(frame.data(), frame.size());
  std::string payload, error;
  EXPECT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kFrame)
      << error;
  return ParseRequest(payload);
}

WireRequest MakeInsert(uint64_t id, std::vector<double> values) {
  WireRequest request;
  request.op = Opcode::kInsert;
  request.id = id;
  request.values = std::move(values);
  return request;
}

// --- Request round-trips -------------------------------------------------

TEST(ProtocolRoundTrip, EveryRequestOpcode) {
  std::vector<WireRequest> requests;
  {
    WireRequest r;
    r.op = Opcode::kSkyline;
    r.id = 1;
    r.subspace = 0b1011;
    requests.push_back(r);
    r.op = Opcode::kCardinality;
    r.id = 2;
    r.subspace = 0xFFFFFFFFFFFFFFFFull;  // full-width mask survives
    requests.push_back(r);
    r.op = Opcode::kMembership;
    r.id = 3;
    r.subspace = 0b101;
    r.object = 4096;
    requests.push_back(r);
    r = WireRequest{};
    r.op = Opcode::kMembershipCount;
    r.id = 4;
    r.object = 0xFFFFFFFFu;
    requests.push_back(r);
    r = WireRequest{};
    r.op = Opcode::kSkycubeSize;
    r.id = 0xDEADBEEFCAFEBABEull;  // ids are opaque 64-bit values
    requests.push_back(r);
    requests.push_back(MakeInsert(6, {1.5, -2.25, 0.0, 1e300}));
    r = WireRequest{};
    r.op = Opcode::kHealth;
    r.id = 7;
    requests.push_back(r);
    r.op = Opcode::kStats;
    r.id = 8;
    requests.push_back(r);
    r.op = Opcode::kPing;
    r.id = 9;
    requests.push_back(r);
    r = WireRequest{};
    r.op = Opcode::kDelete;
    r.id = 10;
    r.object = 123456;
    requests.push_back(r);
    r = WireRequest{};
    r.op = Opcode::kEpochDiff;
    r.id = 11;
    r.subspace = 0b1101;
    r.since_version = 0xABCDEF0123456789ull;  // full-width version survives
    requests.push_back(r);
  }
  for (const WireRequest& request : requests) {
    const Result<WireRequest> decoded =
        DecodeRequestFrame(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok())
        << OpcodeName(request.op) << ": " << decoded.status().ToString();
    EXPECT_EQ(decoded.value().op, request.op);
    EXPECT_EQ(decoded.value().id, request.id);
    EXPECT_EQ(decoded.value().subspace, request.subspace);
    EXPECT_EQ(decoded.value().object, request.object);
    EXPECT_EQ(decoded.value().values, request.values);
    EXPECT_EQ(decoded.value().since_version, request.since_version);
  }
}

TEST(ProtocolRoundTrip, InsertPreservesDoubleBitPatterns) {
  // -0.0 and denormals must survive the wire bit-exactly (the dataset layer
  // decides their semantics, not the transport).
  const std::vector<double> values = {-0.0, 5e-324, -1e-308, 3.25};
  const Result<WireRequest> decoded =
      DecodeRequestFrame(EncodeRequest(MakeInsert(1, values)));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().values.size(), values.size());
  EXPECT_TRUE(std::signbit(decoded.value().values[0]));
  EXPECT_EQ(decoded.value().values[1], 5e-324);
}

// --- Response round-trips ------------------------------------------------

TEST(ProtocolRoundTrip, SkylineResponseCarriesIds) {
  WireResponse response;
  response.id = 42;
  response.request_op = Opcode::kSkyline;
  response.cache_hit = true;
  response.snapshot_version = 7;
  response.ids = {0, 5, 17, 4000000000u};

  FrameDecoder decoder;
  const std::string frame = EncodeResponse(response);
  decoder.Append(frame.data(), frame.size());
  std::string payload, error;
  ASSERT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kFrame);
  ASSERT_EQ(PayloadOpcode(payload), Opcode::kResponse);
  const Result<WireResponse> decoded = ParseResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, 42u);
  EXPECT_EQ(decoded.value().request_op, Opcode::kSkyline);
  EXPECT_EQ(decoded.value().status, StatusCode::kOk);
  EXPECT_TRUE(decoded.value().cache_hit);
  EXPECT_EQ(decoded.value().snapshot_version, 7u);
  EXPECT_EQ(decoded.value().ids, response.ids);
}

TEST(ProtocolRoundTrip, ResponseShapes) {
  // One response per payload shape: count, member, insert, text, error.
  WireResponse count;
  count.request_op = Opcode::kCardinality;
  count.count = 123456789012345ull;

  WireResponse member;
  member.request_op = Opcode::kMembership;
  member.member = true;

  WireResponse insert;
  insert.request_op = Opcode::kInsert;
  insert.count = 2001;
  insert.lsn = 77;
  insert.text = "extension";

  WireResponse health;
  health.request_op = Opcode::kHealth;
  health.text = "ok status=ready version=3";

  WireResponse error;
  error.request_op = Opcode::kSkyline;
  error.status = StatusCode::kResourceExhausted;
  error.text = "dispatch queue full";

  for (const WireResponse* response :
       {&count, &member, &insert, &health, &error}) {
    FrameDecoder decoder;
    const std::string frame = EncodeResponse(*response);
    decoder.Append(frame.data(), frame.size());
    std::string payload, err;
    ASSERT_EQ(decoder.Take(&payload, &err), FrameDecoder::Next::kFrame);
    const Result<WireResponse> decoded = ParseResponse(payload);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().request_op, response->request_op);
    EXPECT_EQ(decoded.value().status, response->status);
    EXPECT_EQ(decoded.value().count, response->count);
    EXPECT_EQ(decoded.value().member, response->member);
    EXPECT_EQ(decoded.value().lsn, response->lsn);
    EXPECT_EQ(decoded.value().text, response->text);
  }
}

TEST(ProtocolRoundTrip, EpochDiffResponseCarriesBothIdLists) {
  WireResponse response;
  response.id = 99;
  response.request_op = Opcode::kEpochDiff;
  response.snapshot_version = 12;
  response.ids = {3, 17, 4000000000u};  // entered
  response.left_ids = {0, 5};           // left
  response.count = 5;

  FrameDecoder decoder;
  const std::string frame = EncodeResponse(response);
  decoder.Append(frame.data(), frame.size());
  std::string payload, error;
  ASSERT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kFrame);
  const Result<WireResponse> decoded = ParseResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().request_op, Opcode::kEpochDiff);
  EXPECT_EQ(decoded.value().ids, response.ids);
  EXPECT_EQ(decoded.value().left_ids, response.left_ids);
  EXPECT_EQ(decoded.value().count, 5u);

  // A diff can legitimately be empty on both sides.
  WireResponse empty;
  empty.request_op = Opcode::kEpochDiff;
  FrameDecoder decoder2;
  const std::string frame2 = EncodeResponse(empty);
  decoder2.Append(frame2.data(), frame2.size());
  ASSERT_EQ(decoder2.Take(&payload, &error), FrameDecoder::Next::kFrame);
  const Result<WireResponse> decoded2 = ParseResponse(payload);
  ASSERT_TRUE(decoded2.ok());
  EXPECT_TRUE(decoded2.value().ids.empty());
  EXPECT_TRUE(decoded2.value().left_ids.empty());
}

TEST(ProtocolRoundTrip, DeleteResponseCarriesPathAndLiveCount) {
  WireResponse response;
  response.id = 12;
  response.request_op = Opcode::kDelete;
  response.count = 499;  // post-delete live rows
  response.lsn = 321;
  response.text = "recompute";

  FrameDecoder decoder;
  const std::string frame = EncodeResponse(response);
  decoder.Append(frame.data(), frame.size());
  std::string payload, error;
  ASSERT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kFrame);
  const Result<WireResponse> decoded = ParseResponse(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().request_op, Opcode::kDelete);
  EXPECT_EQ(decoded.value().count, 499u);
  EXPECT_EQ(decoded.value().lsn, 321u);
  EXPECT_EQ(decoded.value().text, "recompute");
}

TEST(ProtocolBridge, EpochDiffMapsBothDirections) {
  // Wire request → QueryRequest keeps the version pair intact…
  WireRequest wire;
  wire.op = Opcode::kEpochDiff;
  wire.id = 21;
  wire.subspace = 0b11;
  wire.since_version = 4;
  const QueryRequest request = ToQueryRequest(wire);
  EXPECT_EQ(request.kind, QueryKind::kEpochDiff);
  EXPECT_EQ(request.subspace, 0b11u);
  EXPECT_EQ(request.since_version, 4u);

  // …and QueryResponse → wire carries both id lists plus their sum.
  QueryResponse response;
  response.kind = QueryKind::kEpochDiff;
  response.snapshot_version = 9;
  response.ids = std::make_shared<const std::vector<ObjectId>>(
      std::vector<ObjectId>{8, 9});
  response.left_ids = std::make_shared<const std::vector<ObjectId>>(
      std::vector<ObjectId>{1});
  const WireResponse out = FromQueryResponse(wire, response);
  EXPECT_EQ(out.ids, (std::vector<ObjectId>{8, 9}));
  EXPECT_EQ(out.left_ids, (std::vector<ObjectId>{1}));
  EXPECT_EQ(out.count, 3u);
  EXPECT_EQ(out.snapshot_version, 9u);
}

TEST(ProtocolRoundTrip, GoAway) {
  FrameDecoder decoder;
  const std::string frame =
      EncodeGoAway(StatusCode::kUnavailable, "draining");
  decoder.Append(frame.data(), frame.size());
  std::string payload, error;
  ASSERT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kFrame);
  ASSERT_EQ(PayloadOpcode(payload), Opcode::kGoAway);
  const Result<WireGoAway> decoded = ParseGoAway(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status, StatusCode::kUnavailable);
  EXPECT_EQ(decoded.value().reason, "draining");
}

// --- Delivery patterns ---------------------------------------------------

TEST(FrameDecoderTest, ByteAtATimeDelivery) {
  // TCP may deliver any split; byte-at-a-time is the worst case and covers
  // every boundary (inside the length, inside the checksum, inside the
  // payload).
  std::string stream;
  for (uint64_t id = 0; id < 5; ++id) {
    WireRequest request;
    request.op = Opcode::kSkyline;
    request.id = id;
    request.subspace = id + 1;
    stream += EncodeRequest(request);
  }
  FrameDecoder decoder;
  std::vector<uint64_t> seen;
  std::string payload, error;
  for (char byte : stream) {
    decoder.Append(&byte, 1);
    for (;;) {
      const FrameDecoder::Next next = decoder.Take(&payload, &error);
      if (next == FrameDecoder::Next::kNeedMore) break;
      ASSERT_EQ(next, FrameDecoder::Next::kFrame) << error;
      const Result<WireRequest> decoded = ParseRequest(payload);
      ASSERT_TRUE(decoded.ok());
      seen.push_back(decoded.value().id);
    }
  }
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoderTest, CoalescedDelivery) {
  // Many frames in one Append drain with successive Takes.
  std::string stream;
  for (uint64_t id = 0; id < 100; ++id) {
    WireRequest request;
    request.op = Opcode::kPing;
    request.id = id;
    stream += EncodeRequest(request);
  }
  FrameDecoder decoder;
  decoder.Append(stream.data(), stream.size());
  std::string payload, error;
  for (uint64_t id = 0; id < 100; ++id) {
    ASSERT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kFrame);
    EXPECT_EQ(ParseRequest(payload).value().id, id);
  }
  EXPECT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kNeedMore);
}

// --- Malformed-input matrix ----------------------------------------------

TEST(FrameDecoderMalformed, TruncatedLengthPrefix) {
  // Fewer bytes than the 12-byte header is not an error — the rest may
  // still arrive. The decoder must simply wait.
  const std::string frame = EncodeRequest(WireRequest{});
  for (size_t cut = 0; cut < kFrameHeaderBytes; ++cut) {
    FrameDecoder decoder;
    decoder.Append(frame.data(), cut);
    std::string payload, error;
    EXPECT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(FrameDecoderMalformed, TruncatedPayloadWaits) {
  const std::string frame = EncodeRequest(MakeInsert(1, {1.0, 2.0, 3.0}));
  FrameDecoder decoder;
  decoder.Append(frame.data(), frame.size() - 1);
  std::string payload, error;
  EXPECT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kNeedMore);
  decoder.Append(frame.data() + frame.size() - 1, 1);
  EXPECT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kFrame);
}

TEST(FrameDecoderMalformed, OversizedDeclaredLength) {
  // A declared length beyond the limit is rejected from the header alone —
  // before any allocation and before the bytes arrive.
  FrameDecoder decoder(/*max_payload=*/1024);
  std::string header(kFrameHeaderBytes, '\0');
  const uint32_t declared = 1025;
  std::memcpy(header.data(), &declared, sizeof(declared));
  decoder.Append(header.data(), header.size());
  std::string payload, error;
  EXPECT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kError);
  EXPECT_NE(error.find("length"), std::string::npos) << error;
}

TEST(FrameDecoderMalformed, ZeroDeclaredLength) {
  // N == 0 can never hold an opcode; it marks a desynchronized stream.
  FrameDecoder decoder;
  const std::string header(kFrameHeaderBytes, '\0');
  decoder.Append(header.data(), header.size());
  std::string payload, error;
  EXPECT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kError);
}

TEST(FrameDecoderMalformed, ChecksumBitFlipAtEveryPosition) {
  // Flip one bit at every byte position of a full frame: every corruption
  // must be detected (FNV-1a's xor/multiply steps are bijections, so any
  // single-byte change alters the digest). Flips inside the length prefix
  // may instead yield kNeedMore (a larger declared frame) or an oversize
  // error — but never a silently accepted wrong frame.
  WireRequest request;
  request.op = Opcode::kMembership;
  request.id = 99;
  request.subspace = 0b111;
  request.object = 12345;
  const std::string pristine = EncodeRequest(request);
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string corrupted = pristine;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x20);
    FrameDecoder decoder(/*max_payload=*/1 << 16);
    decoder.Append(corrupted.data(), corrupted.size());
    std::string payload, error;
    const FrameDecoder::Next next = decoder.Take(&payload, &error);
    if (next == FrameDecoder::Next::kFrame) {
      ADD_FAILURE() << "corruption at byte " << i << " went undetected";
    }
  }
}

TEST(FrameDecoderMalformed, ErrorPoisonsDecoder) {
  // After one framing error the stream is untrustworthy; even pristine
  // bytes appended later must keep reporting the error (the server closes
  // the connection — there is nothing to resynchronize on).
  FrameDecoder decoder;
  std::string bad = EncodeRequest(WireRequest{});
  bad[4] = static_cast<char>(bad[4] ^ 0xFF);  // corrupt the checksum
  decoder.Append(bad.data(), bad.size());
  std::string payload, error;
  ASSERT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kError);
  const std::string good = EncodeRequest(WireRequest{});
  decoder.Append(good.data(), good.size());
  EXPECT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kError);
}

TEST(ParseRequestMalformed, GarbageOpcode) {
  for (uint8_t op : {uint8_t{0}, uint8_t{10}, uint8_t{63}, uint8_t{64},
                     uint8_t{65}, uint8_t{255}}) {
    std::string payload(9, '\0');
    payload[0] = static_cast<char>(op);
    const Result<WireRequest> decoded = ParseRequest(payload);
    EXPECT_FALSE(decoded.ok()) << "opcode " << int{op};
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ParseRequestMalformed, TruncatedBody) {
  // Every prefix of every valid request must parse-fail cleanly, not read
  // out of bounds. (ASan/UBSan builds make this a hard memory check.)
  const std::vector<WireRequest> requests = {
      [] {
        WireRequest r;
        r.op = Opcode::kSkyline;
        r.id = 1;
        r.subspace = 3;
        return r;
      }(),
      [] {
        WireRequest r;
        r.op = Opcode::kMembership;
        r.id = 2;
        r.subspace = 1;
        r.object = 7;
        return r;
      }(),
      MakeInsert(3, {1.0, 2.0}),
  };
  for (const WireRequest& request : requests) {
    const std::string frame = EncodeRequest(request);
    const std::string payload = frame.substr(kFrameHeaderBytes);
    for (size_t cut = 1; cut < payload.size(); ++cut) {
      const Result<WireRequest> decoded =
          ParseRequest(std::string_view(payload).substr(0, cut));
      EXPECT_FALSE(decoded.ok())
          << OpcodeName(request.op) << " cut at " << cut;
    }
  }
}

TEST(ParseRequestMalformed, TrailingBytesRejected) {
  // Extra bytes after a well-formed body indicate an encoder/decoder
  // disagreement; accepting them would mask protocol drift.
  std::string payload = EncodeRequest(WireRequest{
                            Opcode::kPing, 1, 0, 0, {}})
                            .substr(kFrameHeaderBytes);
  payload += '\0';
  EXPECT_FALSE(ParseRequest(payload).ok());
}

TEST(ParseRequestMalformed, InsertWiderThanLimitRejected) {
  // The declared value count is validated against max_values before any
  // allocation — a hostile u32 count cannot force a huge vector.
  const std::string frame = EncodeRequest(MakeInsert(1, {1.0, 2.0, 3.0}));
  const std::string payload = frame.substr(kFrameHeaderBytes);
  EXPECT_TRUE(ParseRequest(payload, /*max_values=*/3).ok());
  const Result<WireRequest> rejected = ParseRequest(payload, /*max_values=*/2);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseRequestMalformed, InsertCountBeyondPayloadRejected) {
  // count claims more doubles than the payload holds.
  std::string payload;
  payload.push_back(static_cast<char>(Opcode::kInsert));
  payload.append(8, '\0');  // id
  const uint32_t claimed = 1000;
  payload.append(reinterpret_cast<const char*>(&claimed), 4);
  payload.append(8, '\0');  // only one double present
  EXPECT_FALSE(ParseRequest(payload, /*max_values=*/4096).ok());
}

// --- Service bridging ----------------------------------------------------

TEST(ProtocolBridge, ToQueryRequestMapsEveryQueryOpcode) {
  WireRequest wire;
  wire.op = Opcode::kMembership;
  wire.id = 5;
  wire.subspace = 0b110;
  wire.object = 31;
  const QueryRequest request = ToQueryRequest(wire);
  EXPECT_EQ(request.kind, QueryKind::kMembership);
  EXPECT_EQ(request.subspace, wire.subspace);
  EXPECT_EQ(request.object, wire.object);

  const QueryRequest insert = ToQueryRequest(MakeInsert(6, {4.0, 2.0}));
  EXPECT_EQ(insert.kind, QueryKind::kInsert);
  EXPECT_EQ(insert.values, (std::vector<double>{4.0, 2.0}));
}

TEST(ProtocolBridge, OpcodeForKindRoundTrips) {
  for (int kind = 0; kind < kNumQueryKinds; ++kind) {
    const Opcode op = OpcodeForKind(static_cast<QueryKind>(kind));
    EXPECT_TRUE(IsQueryOpcode(op)) << OpcodeName(op);
    WireRequest wire;
    wire.op = op;
    if (op == Opcode::kInsert) wire.values = {1.0};
    EXPECT_EQ(ToQueryRequest(wire).kind, static_cast<QueryKind>(kind));
  }
}

TEST(ProtocolBridge, FromQueryResponseCarriesErrorStatus) {
  WireRequest wire;
  wire.op = Opcode::kSkyline;
  wire.id = 11;
  QueryResponse response;
  response.kind = QueryKind::kSubspaceSkyline;
  response.ok = false;
  response.code = StatusCode::kDeadlineExceeded;
  response.error = "deadline exceeded before admission";
  const WireResponse out = FromQueryResponse(wire, response);
  EXPECT_EQ(out.id, 11u);
  EXPECT_EQ(out.status, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(out.text, response.error);
}

TEST(ProtocolBridge, ErrorWireResponseIsParseable) {
  WireRequest wire;
  wire.op = Opcode::kCardinality;
  wire.id = 3;
  const WireResponse shed =
      ErrorWireResponse(wire, StatusCode::kResourceExhausted, "queue full");
  FrameDecoder decoder;
  const std::string frame = EncodeResponse(shed);
  decoder.Append(frame.data(), frame.size());
  std::string payload, error;
  ASSERT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kFrame);
  const Result<WireResponse> decoded = ParseResponse(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().id, 3u);
  EXPECT_EQ(decoded.value().status, StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.value().text, "queue full");
}

}  // namespace
}  // namespace skycube::net
