// NetClient tests over a real in-process NetServer: request/response and
// pipelined bursts through the shared client (the one the nettest harness,
// the shard-scaling bench, and the router's remote backend all use),
// client-side kGoAway handling when the server abandons the stream, and
// the partial-flag round trip — wire encode/decode, service bridging, and
// the text format — including checksum bit-flips at every byte position of
// a flagged response frame.
#include "net/client.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "core/cube.h"
#include "core/maintenance.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/ingest.h"
#include "service/service.h"
#include "service/text_format.h"

namespace skycube::net {
namespace {

constexpr int64_t kReadMillis = 30000;

Dataset MakeData(size_t objects, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_dims = dims;
  spec.num_objects = objects;
  spec.seed = seed;
  spec.truncate_decimals = 2;
  return GenerateSynthetic(spec);
}

class NetClientTest : public ::testing::Test {
 protected:
  void StartServer() {
    maintainer_ = std::make_unique<IncrementalCubeMaintainer>(
        MakeData(200, 4, 11));
    handler_ = std::make_unique<MaintainerInsertHandler>(maintainer_.get());
    cube_ = std::make_shared<const CompressedSkylineCube>(
        maintainer_->MakeCube());
    service_ = std::make_unique<SkycubeService>(cube_);
    service_->AttachInsertHandler(handler_.get());
    NetServerOptions options;
    options.port = 0;
    server_ = std::make_unique<NetServer>(service_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    serve_thread_ = std::thread([this] { server_->Run(); });
  }

  void TearDown() override {
    if (server_) server_->Stop();
    if (serve_thread_.joinable()) serve_thread_.join();
  }

  std::unique_ptr<IncrementalCubeMaintainer> maintainer_;
  std::unique_ptr<MaintainerInsertHandler> handler_;
  std::shared_ptr<const CompressedSkylineCube> cube_;
  std::unique_ptr<SkycubeService> service_;
  std::unique_ptr<NetServer> server_;
  std::thread serve_thread_;
};

WireRequest Skyline(uint64_t id, DimMask subspace) {
  WireRequest request;
  request.op = Opcode::kSkyline;
  request.id = id;
  request.subspace = subspace;
  return request;
}

TEST_F(NetClientTest, RequestResponseRoundTrip) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.SendRequest(Skyline(7, 0b1011)).ok());
  WireResponse response;
  std::string error;
  ASSERT_EQ(client.ReadResponse(&response, Deadline::AfterMillis(kReadMillis),
                                &error),
            NetClient::Got::kFrame)
      << error;
  EXPECT_EQ(response.id, 7u);
  EXPECT_EQ(response.status, StatusCode::kOk);
  EXPECT_FALSE(response.partial);
  EXPECT_EQ(response.ids, cube_->SubspaceSkyline(0b1011));
}

TEST_F(NetClientTest, PipelinedBurstAnswersInOrder) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  std::string burst;
  constexpr uint64_t kCount = 16;
  for (uint64_t i = 0; i < kCount; ++i) {
    burst += EncodeRequest(Skyline(i, 1 + (i % 15)));
  }
  ASSERT_TRUE(client.Send(burst).ok());
  for (uint64_t i = 0; i < kCount; ++i) {
    WireResponse response;
    std::string error;
    ASSERT_EQ(client.ReadResponse(&response,
                                  Deadline::AfterMillis(kReadMillis), &error),
              NetClient::Got::kFrame)
        << error;
    EXPECT_EQ(response.id, i);
    EXPECT_EQ(response.ids, cube_->SubspaceSkyline(1 + (i % 15)));
  }
}

TEST_F(NetClientTest, GoAwayOnCorruptFrameReachesTheCaller) {
  StartServer();
  NetClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());

  // Flip one checksum byte: the server must abandon the stream with a
  // kGoAway frame (never a response, never silence), and ReadResponse must
  // surface it as Got::kGoAway with the decoded reason.
  std::string frame = EncodeRequest(Skyline(1, 0b1));
  frame[5] = static_cast<char>(frame[5] ^ 0x40);
  ASSERT_TRUE(client.Send(frame).ok());

  WireResponse response;
  WireGoAway goaway;
  std::string error;
  ASSERT_EQ(client.ReadResponse(&response, Deadline::AfterMillis(kReadMillis),
                                &error, &goaway),
            NetClient::Got::kGoAway);
  EXPECT_NE(goaway.status, StatusCode::kOk);
  EXPECT_FALSE(goaway.reason.empty());
  EXPECT_FALSE(error.empty());

  // The stream is dead after goaway: the server closes, the client sees a
  // clean EOF (not a hang, not garbage).
  EXPECT_EQ(client.ReadResponse(&response, Deadline::AfterMillis(kReadMillis),
                                &error),
            NetClient::Got::kEof);
}

// --- Partial-flag round trips (no server needed) -------------------------

WireResponse FlaggedResponse() {
  WireResponse response;
  response.id = 42;
  response.request_op = Opcode::kSkyline;
  response.status = StatusCode::kOk;
  response.cache_hit = true;
  response.partial = true;
  response.snapshot_version = 9;
  response.ids = {1, 5, 8};
  return response;
}

TEST(PartialFlag, SurvivesEncodeParse) {
  for (const bool partial : {false, true}) {
    for (const bool hit : {false, true}) {
      WireResponse response = FlaggedResponse();
      response.partial = partial;
      response.cache_hit = hit;
      const std::string frame = EncodeResponse(response);
      FrameDecoder decoder;
      decoder.Append(frame.data(), frame.size());
      std::string payload, error;
      ASSERT_EQ(decoder.Take(&payload, &error), FrameDecoder::Next::kFrame)
          << error;
      const Result<WireResponse> decoded = ParseResponse(payload);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded.value().partial, partial);
      EXPECT_EQ(decoded.value().cache_hit, hit);
      EXPECT_EQ(decoded.value().ids, response.ids);
    }
  }
}

TEST(PartialFlag, SurvivesServiceBridging) {
  const QueryResponse bridged = ToQueryResponse(FlaggedResponse());
  EXPECT_TRUE(bridged.ok);
  EXPECT_TRUE(bridged.partial);
  EXPECT_TRUE(bridged.cache_hit);
  ASSERT_NE(bridged.ids, nullptr);
  EXPECT_EQ(*bridged.ids, std::vector<ObjectId>({1, 5, 8}));

  // And back out through the wire encoder the router's server side uses.
  WireRequest request = Skyline(42, 0b11);
  const WireResponse rewired = FromQueryResponse(request, bridged);
  EXPECT_TRUE(rewired.partial);
  EXPECT_TRUE(rewired.cache_hit);
}

TEST(PartialFlag, TextFormatMarksOnlyPartialAnswers) {
  QueryResponse partial = ToQueryResponse(FlaggedResponse());
  const std::string flagged = FormatResponseLine(partial);
  EXPECT_NE(flagged.find(" partial=1"), std::string::npos) << flagged;

  partial.partial = false;
  const std::string plain = FormatResponseLine(partial);
  EXPECT_EQ(plain.find("partial"), std::string::npos) << plain;
}

TEST(PartialFlag, ChecksumFlipAtEveryByteIsAFramingError) {
  // A flagged response must be protected by the frame checksum like any
  // other payload: flipping one bit anywhere (header length, checksum, or
  // payload — flag byte included) must yield a clean framing error, never
  // a silently unflagged answer.
  const std::string frame = EncodeResponse(FlaggedResponse());
  for (size_t byte = 0; byte < frame.size(); ++byte) {
    std::string bad = frame;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x10);
    FrameDecoder decoder;
    decoder.Append(bad.data(), bad.size());
    std::string payload, error;
    const FrameDecoder::Next next = decoder.Take(&payload, &error);
    if (next == FrameDecoder::Next::kFrame) {
      ADD_FAILURE() << "corruption at byte " << byte << " went undetected";
    } else if (next == FrameDecoder::Next::kError) {
      EXPECT_FALSE(error.empty());
      // Poisoned: the same error repeats, the stream never resynchronizes.
      std::string again;
      EXPECT_EQ(decoder.Take(&payload, &again), FrameDecoder::Next::kError);
    }
    // kNeedMore is legal only for corrupted length bytes that enlarge the
    // declared frame; the decoder is still waiting, not fooled.
  }
}

}  // namespace
}  // namespace skycube::net
