// Boundary and robustness tests: high dimensionality (up to the 64-dim
// cap), extreme values, and adversarial tie structures.
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/cube.h"
#include "core/reference.h"
#include "core/skyey.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {
namespace {

// A note on high-dimensional inputs: the number of decisive subspaces
// (minimal transversals) of a group can be exponential in the
// dimensionality when many mutually incomparable seeds differ on large
// scattered dimension sets — random 40+-dim data makes the OUTPUT itself
// astronomically large, which no algorithm can avoid. The high-d tests
// below therefore use structured data whose decisive sets stay small;
// random-data coverage stays at the paper's dimensionalities (d ≤ 17).

TEST(BoundaryTest, HighDimensionalStellarOnly) {
  // d = 40 is far beyond anything Skyey-style subspace search could touch;
  // Stellar must still work (its cost depends on seeds, not 2^d). A chain
  // of objects, each dominated by the previous and tying it on a sliding
  // window of dimensions, gives one seed and a cascade of derived groups.
  const int d = 40;
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 12; ++i) {
    std::vector<double> row(d);
    // Object i has value i on dims < 3*i and value i+… increasing rows:
    // row i is row 0 raised by 1 outside a shrinking prefix.
    for (int dim = 0; dim < d; ++dim) {
      row[dim] = (dim >= 3 * i) ? static_cast<double>(i) : 0.0;
    }
    rows.push_back(std::move(row));
  }
  const Dataset data = Dataset::FromRows(std::move(rows)).value();
  // Row 0 is all-zero and dominates everything: a single seed.
  const SkylineGroupSet groups = ComputeStellar(data);
  ASSERT_FALSE(groups.empty());
  for (const SkylineGroup& group : groups) {
    EXPECT_TRUE(GroupWellFormed(group));
  }
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   groups);
  for (DimMask subspace :
       {DimMask{0b1}, FullMask(40), MaskFromLetters("ACF", 40),
        (DimMask{1} << 39) | 0b11}) {
    EXPECT_EQ(cube.SubspaceSkyline(subspace),
              ComputeSkyline(data, subspace))
        << FormatMaskNumeric(subspace);
  }
}

TEST(BoundaryTest, SixtyFourDimensions) {
  // The DimMask cap itself: a seed that dominates everything, plus two
  // objects tying it on complementary 32-dim halves.
  const int d = 64;
  std::vector<double> zeros(d, 0.0);
  std::vector<double> low_half(d);
  std::vector<double> high_half(d);
  for (int dim = 0; dim < d; ++dim) {
    low_half[dim] = dim < 32 ? 0.0 : 1.0;
    high_half[dim] = dim < 32 ? 1.0 : 0.0;
  }
  const Dataset data =
      Dataset::FromRows({zeros, low_half, high_half}).value();
  EXPECT_EQ(data.full_mask(), ~DimMask{0});
  SkylineGroupSet groups = ComputeStellar(data);
  for (const SkylineGroup& group : groups) {
    EXPECT_TRUE(GroupWellFormed(group));
  }
  // Expected groups: ({0}, full), ({0,1}, low 32), ({0,2}, high 32). The
  // singleton's dominance edges are the two disjoint 32-dim halves, so its
  // decisive subspaces are all 32 × 32 cross-half dimension pairs.
  ASSERT_EQ(groups.size(), 3u);
  NormalizeGroups(&groups);
  EXPECT_EQ(groups[0].members, (std::vector<ObjectId>{0}));
  EXPECT_EQ(groups[0].max_subspace, ~DimMask{0});
  EXPECT_EQ(groups[0].decisive_subspaces.size(), 1024u);
  for (DimMask decisive : groups[0].decisive_subspaces) {
    EXPECT_EQ(MaskSize(decisive), 2);
    EXPECT_NE(decisive & FullMask(32), kEmptyMask);
    EXPECT_NE(decisive & ~FullMask(32), kEmptyMask);
  }
  EXPECT_EQ(groups[1].members, (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(groups[1].max_subspace, FullMask(32));
  EXPECT_EQ(groups[2].members, (std::vector<ObjectId>{0, 2}));
  EXPECT_EQ(groups[2].max_subspace, ~DimMask{0} & ~FullMask(32));
}

TEST(BoundaryTest, ExtremeValues) {
  const double inf = std::numeric_limits<double>::infinity();
  const double huge = std::numeric_limits<double>::max();
  const Dataset data = Dataset::FromRows({
                                             {0.0, huge},
                                             {-huge, inf},
                                             {-0.0, huge},  // ties row 0
                                             {1e-300, -1e300},
                                         })
                           .value();
  const SkylineGroupSet stellar = ComputeStellar(data);
  EXPECT_EQ(stellar, ComputeSkyey(data));
  for (const SkylineGroup& group : stellar) {
    EXPECT_TRUE(GroupWellFormed(group));
  }
}

TEST(BoundaryTest, NegativeZeroTiesPositiveZero) {
  const Dataset data = Dataset::FromRows({{0.0, 1.0}, {-0.0, 2.0}}).value();
  const SkylineGroupSet groups = ComputeStellar(data);
  // Both share dimension A (0.0 == -0.0): group {0,1} on A must exist.
  bool found = false;
  for (const SkylineGroup& group : groups) {
    found |= group.members == std::vector<ObjectId>{0, 1} &&
             group.max_subspace == 0b01;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(groups, ComputeSkyey(data));
}

TEST(BoundaryTest, AllValuesEqualEverywhere) {
  const Dataset data =
      Dataset::FromRows({{7, 7}, {7, 7}, {7, 7}, {7, 7}}).value();
  const SkylineGroupSet groups = ComputeStellar(data);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].members, (std::vector<ObjectId>{0, 1, 2, 3}));
  EXPECT_EQ(groups[0].max_subspace, 0b11u);
  EXPECT_EQ(groups, ComputeSkyey(data));
  EXPECT_EQ(groups, ComputeReferenceCube(data));
}

TEST(BoundaryTest, AntichainEveryObjectItsOwnGroup) {
  // A pure antichain with no shared values: n singleton groups, each with
  // max subspace = full space.
  std::vector<std::vector<double>> rows;
  const int n = 20;
  for (int i = 0; i < n; ++i) {
    rows.push_back({static_cast<double>(i), static_cast<double>(n - 1 - i)});
  }
  const Dataset data = Dataset::FromRows(std::move(rows)).value();
  const SkylineGroupSet groups = ComputeStellar(data);
  EXPECT_EQ(groups.size(), static_cast<size_t>(n));
  for (const SkylineGroup& group : groups) {
    EXPECT_EQ(group.members.size(), 1u);
    EXPECT_EQ(group.max_subspace, 0b11u);
  }
  EXPECT_EQ(groups, ComputeSkyey(data));
}

}  // namespace
}  // namespace skycube
