// End-to-end validation against the paper's worked examples:
//  - Example 1 / Figure 1 (the 2-d five-object set with groups ab, b, d, e);
//  - the running example of Figures 2-4 (five objects P1..P5 in ABCD),
//    including the dominance/coincidence matrices (Example 3), the seed
//    lattice of Figure 3(a) (Examples 4-6) and the full skyline-group
//    lattice of Figure 3(b) (Example 7).
// All three engines (Stellar, Skyey, brute-force reference) must agree.
//
// One deliberate deviation: the prose of Example 2 says the decisive
// subspace of P2P5 on S "is adjusted to AD", but Definition 2 (and the
// paper's own Figure 3(b)) give {A}: no object outside {P2,P5} matches
// value 2 on A, and A alone puts the pair in the skyline. We follow the
// definitions and the figure.
#include <vector>

#include <gtest/gtest.h>

#include "core/cube.h"
#include "core/pairwise_masks.h"
#include "core/reference.h"
#include "core/skyey.h"
#include "core/skyline_group.h"
#include "core/stellar.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {
namespace {

// Object ids: P1=0, P2=1, P3=2, P4=3, P5=4.
Dataset RunningExample() {
  return Dataset::FromRows({
                               {5, 6, 10, 7},  // P1
                               {2, 6, 8, 3},   // P2
                               {5, 4, 9, 3},   // P3
                               {6, 4, 8, 5},   // P4
                               {2, 4, 9, 3},   // P5
                           })
      .value();
}

DimMask M(const char* letters) { return MaskFromLetters(letters); }

SkylineGroup Group(std::vector<ObjectId> members, const char* subspace,
                   std::vector<const char*> decisives,
                   std::vector<double> projection) {
  SkylineGroup group;
  group.members = std::move(members);
  group.max_subspace = M(subspace);
  for (const char* d : decisives) group.decisive_subspaces.push_back(M(d));
  group.projection = std::move(projection);
  return group;
}

// Figure 3(b): the complete set of skyline groups on S.
SkylineGroupSet ExpectedRunningExampleCube() {
  SkylineGroupSet expected;
  expected.push_back(Group({1}, "ABCD", {"AC", "CD"}, {2, 6, 8, 3}));    // P2
  expected.push_back(Group({1, 2, 4}, "D", {"D"}, {3}));                 // P2P3P5
  expected.push_back(Group({1, 3}, "C", {"C"}, {8}));                    // P2P4
  expected.push_back(Group({1, 4}, "AD", {"A"}, {2, 3}));                // P2P5
  expected.push_back(Group({2, 3, 4}, "B", {"B"}, {4}));                 // P3P4P5
  expected.push_back(Group({2, 4}, "BCD", {"BD"}, {4, 9, 3}));           // P3P5
  expected.push_back(Group({3}, "ABCD", {"BC"}, {6, 4, 8, 5}));          // P4
  expected.push_back(Group({4}, "ABCD", {"AB"}, {2, 4, 9, 3}));          // P5
  NormalizeGroups(&expected);
  return expected;
}

TEST(PaperRunningExample, FullSpaceSkylineIsP2P4P5) {
  const Dataset data = RunningExample();
  EXPECT_EQ(ComputeSkyline(data, data.full_mask()),
            (std::vector<ObjectId>{1, 3, 4}));
}

TEST(PaperRunningExample, SubspaceSkylinesOfExample2) {
  const Dataset data = RunningExample();
  // "P3 is in the skylines of subspaces B, D and BD."
  for (const char* sub : {"B", "D", "BD"}) {
    std::vector<ObjectId> sky = ComputeSkyline(data, M(sub));
    EXPECT_TRUE(std::count(sky.begin(), sky.end(), 2) == 1)
        << "P3 missing from skyline of " << sub;
  }
  // "P1 is not in any subspace skylines."
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask sub) {
    std::vector<ObjectId> sky = ComputeSkyline(data, sub);
    EXPECT_EQ(std::count(sky.begin(), sky.end(), 0), 0)
        << "P1 unexpectedly in skyline of " << FormatMask(sub);
  });
}

TEST(PaperRunningExample, DominanceAndCoincidenceMatricesOfFigure4) {
  const Dataset data = RunningExample();
  // Seeds P2, P4, P5 → seed indices 0, 1, 2.
  PairwiseMasks masks(data, {1, 3, 4}, data.full_mask(),
                      /*materialize=*/true);
  // Dominance matrix, Figure 4(a) rows P2, P4, P5.
  EXPECT_EQ(masks.Dominance(0, 0), kEmptyMask);
  EXPECT_EQ(masks.Dominance(0, 1), M("AD"));  // dom(P2,P4)
  EXPECT_EQ(masks.Dominance(0, 2), M("C"));   // dom(P2,P5)
  EXPECT_EQ(masks.Dominance(1, 0), M("B"));   // dom(P4,P2)
  EXPECT_EQ(masks.Dominance(1, 2), M("C"));   // dom(P4,P5)
  EXPECT_EQ(masks.Dominance(2, 0), M("B"));   // dom(P5,P2)
  EXPECT_EQ(masks.Dominance(2, 1), M("AD"));  // dom(P5,P4)
  // Coincidence matrix, Figure 4(b).
  EXPECT_EQ(masks.Coincidence(0, 0), M("ABCD"));
  EXPECT_EQ(masks.Coincidence(0, 1), M("C"));
  EXPECT_EQ(masks.Coincidence(0, 2), M("AD"));
  EXPECT_EQ(masks.Coincidence(1, 2), M("B"));
  // Property 1(3): co = D − dom − dom^T, and symmetry.
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(masks.Coincidence(i, j), masks.Coincidence(j, i));
      EXPECT_EQ(masks.Coincidence(i, j),
                M("ABCD") & ~masks.Dominance(i, j) & ~masks.Dominance(j, i));
    }
  }
}

TEST(PaperRunningExample, StellarMatchesFigure3b) {
  const Dataset data = RunningExample();
  SkylineGroupSet groups = ComputeStellar(data);
  EXPECT_EQ(groups, ExpectedRunningExampleCube())
      << "got:\n"
      << FormatGroups(groups, 4) << "expected:\n"
      << FormatGroups(ExpectedRunningExampleCube(), 4);
}

TEST(PaperRunningExample, SkyeyMatchesFigure3b) {
  const Dataset data = RunningExample();
  EXPECT_EQ(ComputeSkyey(data), ExpectedRunningExampleCube());
}

TEST(PaperRunningExample, ReferenceMatchesFigure3b) {
  const Dataset data = RunningExample();
  EXPECT_EQ(ComputeReferenceCube(data), ExpectedRunningExampleCube());
}

TEST(PaperRunningExample, StellarStatsMatchNarrative) {
  const Dataset data = RunningExample();
  StellarStats stats;
  ComputeStellar(data, {}, &stats);
  EXPECT_EQ(stats.num_objects, 5u);
  EXPECT_EQ(stats.num_distinct_objects, 5u);
  EXPECT_EQ(stats.num_seeds, 3u);
  // Figure 3(a): six seed groups (3 singletons + P2P4 + P2P5 + P4P5), all
  // of which are skyline groups.
  EXPECT_EQ(stats.num_maximal_cgroups, 6u);
  EXPECT_EQ(stats.num_seed_skyline_groups, 6u);
  EXPECT_EQ(stats.num_groups, 8u);
}

TEST(PaperRunningExample, CubeAnswersSubspaceQueries) {
  const Dataset data = RunningExample();
  CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                             ComputeStellar(data));
  // Q1 answers must equal the directly computed skyline of every subspace.
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask sub) {
    EXPECT_EQ(cube.SubspaceSkyline(sub), ComputeSkyline(data, sub))
        << "subspace " << FormatMask(sub);
  });
  // Q2: P3's skyline subspaces. Example 2's prose lists "B, D and BD" but
  // omits BCD, where P3 ties P5 on C and stays undominated — the paper's
  // own group (P3P5, BCD, BD) in Figure 3(b) implies BCD as well, and the
  // direct computation above confirms it.
  EXPECT_EQ(cube.SubspacesWhereSkyline(2),
            (std::vector<DimMask>{M("B"), M("D"), M("BD"), M("BCD")}));
  EXPECT_EQ(cube.CountSubspacesWhereSkyline(2), 4u);
  // P1 is in no subspace skyline.
  EXPECT_TRUE(cube.SubspacesWhereSkyline(0).empty());
  // P5 is in the skyline of every superspace of AB and of BD, and of A
  // itself (it ties P2 at the best value 2 — ties both stay in skylines).
  EXPECT_TRUE(cube.IsInSubspaceSkyline(4, M("AB")));
  EXPECT_TRUE(cube.IsInSubspaceSkyline(4, M("ABD")));
  EXPECT_TRUE(cube.IsInSubspaceSkyline(4, M("BD")));
  EXPECT_TRUE(cube.IsInSubspaceSkyline(4, M("A")));
  EXPECT_FALSE(cube.IsInSubspaceSkyline(4, M("C")));  // 9 beaten by 8
}

// --- Example 1 / Figure 1: the 2-d set {a, b, c, d, e}. -------------------

Dataset Example1() {
  return Dataset::FromRows({
                               {2, 6},  // a
                               {2, 4},  // b
                               {5, 3},  // c
                               {4, 2},  // d
                               {7, 1},  // e
                           })
      .value();
}

TEST(PaperExample1, SubspaceSkylinesOfFigure1b) {
  const Dataset data = Example1();
  EXPECT_EQ(ComputeSkyline(data, M("AB")), (std::vector<ObjectId>{1, 3, 4}));
  EXPECT_EQ(ComputeSkyline(data, M("A")), (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(ComputeSkyline(data, M("B")), (std::vector<ObjectId>{4}));
}

TEST(PaperExample1, SkylineGroupsOfExample1) {
  const Dataset data = Example1();
  SkylineGroupSet expected;
  // (ab, X): a and b share X = 2; decisive X.
  expected.push_back(Group({0, 1}, "A", {"A"}, {2}));
  // (b, XY): decisive XY.
  expected.push_back(Group({1}, "AB", {"AB"}, {2, 4}));
  // (d, XY): skyline of XY but of no proper subspace; decisive XY.
  expected.push_back(Group({3}, "AB", {"AB"}, {4, 2}));
  // (e, XY): value 1 on Y is uniquely best; decisive Y.
  expected.push_back(Group({4}, "AB", {"B"}, {7, 1}));
  NormalizeGroups(&expected);
  EXPECT_EQ(ComputeStellar(data), expected);
  EXPECT_EQ(ComputeSkyey(data), expected);
  EXPECT_EQ(ComputeReferenceCube(data), expected);
}

}  // namespace
}  // namespace skycube
