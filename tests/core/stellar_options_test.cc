// Ablation-style tests: every Stellar/Skyey option combination must compute
// the identical cube; stats must be internally consistent.
#include <vector>

#include <gtest/gtest.h>

#include "core/skyey.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"

namespace skycube {
namespace {

Dataset TestData(Distribution distribution, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = distribution;
  spec.num_objects = 400;
  spec.num_dims = 4;
  spec.truncate_decimals = 2;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

TEST(StellarOptionsTest, MatrixModesAgree) {
  const Dataset data = TestData(Distribution::kAntiCorrelated, 8);
  StellarOptions materialize;
  materialize.matrix_mode = StellarOptions::MatrixMode::kMaterialize;
  StellarOptions on_the_fly;
  on_the_fly.matrix_mode = StellarOptions::MatrixMode::kOnTheFly;
  StellarOptions auto_mode;
  auto_mode.matrix_mode = StellarOptions::MatrixMode::kAuto;
  const SkylineGroupSet a = ComputeStellar(data, materialize);
  const SkylineGroupSet b = ComputeStellar(data, on_the_fly);
  const SkylineGroupSet c = ComputeStellar(data, auto_mode);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(StellarOptionsTest, SkylineAlgorithmChoiceDoesNotMatter) {
  const Dataset data = TestData(Distribution::kIndependent, 15);
  SkylineGroupSet reference;
  bool first = true;
  for (SkylineAlgorithm algorithm : kAllSkylineAlgorithms) {
    StellarOptions options;
    options.skyline_algorithm = algorithm;
    SkylineGroupSet got = ComputeStellar(data, options);
    if (first) {
      reference = std::move(got);
      first = false;
    } else {
      EXPECT_EQ(got, reference) << SkylineAlgorithmName(algorithm);
    }
  }
}

TEST(StellarOptionsTest, BindDuplicatesToggleOnDistinctData) {
  // Without duplicates in the input the toggle must be a no-op.
  const Dataset data = TestData(Distribution::kCorrelated, 23);
  StellarOptions bound;
  bound.bind_duplicates = true;
  StellarOptions unbound;
  unbound.bind_duplicates = false;
  // The generated data may contain duplicates after truncation; filter them
  // out first to make the unbound run well-defined.
  std::vector<std::vector<double>> rows;
  std::vector<std::vector<double>> seen;
  for (ObjectId i = 0; i < data.num_objects(); ++i) {
    std::vector<double> row(data.Row(i), data.Row(i) + data.num_dims());
    if (std::find(seen.begin(), seen.end(), row) == seen.end()) {
      seen.push_back(row);
      rows.push_back(row);
    }
  }
  const Dataset distinct = Dataset::FromRows(rows).value();
  EXPECT_EQ(ComputeStellar(distinct, bound),
            ComputeStellar(distinct, unbound));
}

TEST(StellarOptionsTest, StatsAreConsistent) {
  const Dataset data = TestData(Distribution::kIndependent, 4);
  StellarStats stats;
  const SkylineGroupSet groups = ComputeStellar(data, {}, &stats);
  EXPECT_EQ(stats.num_objects, data.num_objects());
  EXPECT_LE(stats.num_distinct_objects, stats.num_objects);
  EXPECT_LE(stats.num_seeds, stats.num_distinct_objects);
  EXPECT_GE(stats.num_seeds, 1u);
  EXPECT_LE(stats.num_seed_skyline_groups, stats.num_maximal_cgroups);
  EXPECT_EQ(stats.num_groups, groups.size());
  // Theorem 1: every group contains at least one seed, so there are at
  // least as many groups as... actually at least one group per seed's
  // singleton (possibly extended); weak sanity: groups ≥ 1.
  EXPECT_GE(stats.num_groups, 1u);
  EXPECT_GE(stats.seconds_total, 0.0);
  EXPECT_GE(stats.seconds_total,
            stats.seconds_full_skyline + stats.seconds_matrices +
                stats.seconds_seed_groups + stats.seconds_nonseed - 1e-6);
}

TEST(StellarOptionsTest, ThreadCountDoesNotChangeResults) {
  const Dataset data = TestData(Distribution::kAntiCorrelated, 77);
  StellarOptions sequential;
  sequential.num_threads = 1;
  StellarOptions two_threads;
  two_threads.num_threads = 2;
  StellarOptions all_threads;
  all_threads.num_threads = 0;  // hardware concurrency
  const SkylineGroupSet base = ComputeStellar(data, sequential);
  EXPECT_EQ(base, ComputeStellar(data, two_threads));
  EXPECT_EQ(base, ComputeStellar(data, all_threads));
  // More threads than seed groups must also work.
  StellarOptions many;
  many.num_threads = 64;
  EXPECT_EQ(base, ComputeStellar(data, many));
}

TEST(SkyeyOptionsTest, CandidateSharingToggleAgrees) {
  const Dataset data = TestData(Distribution::kAntiCorrelated, 31);
  SkyeyOptions shared;
  shared.share_parent_candidates = true;
  SkyeyOptions fresh;
  fresh.share_parent_candidates = false;
  EXPECT_EQ(ComputeSkyey(data, shared), ComputeSkyey(data, fresh));
}

TEST(SkyeyOptionsTest, StatsCountSubspaces) {
  const Dataset data = TestData(Distribution::kIndependent, 2);
  SkyeyStats stats;
  const SkylineGroupSet groups = ComputeSkyey(data, {}, &stats);
  EXPECT_EQ(stats.num_objects, data.num_objects());
  EXPECT_EQ(stats.subspaces_searched, 15u);  // 2^4 − 1
  EXPECT_EQ(stats.num_groups, groups.size());
  EXPECT_GT(stats.total_subspace_skyline_objects, 0u);
}

// The headline compression claim on a favourable (correlated) dataset: the
// number of groups is much smaller than the number of subspace skyline
// objects.
TEST(CompressionTest, GroupsCompressSubspaceSkylines) {
  const Dataset data = TestData(Distribution::kCorrelated, 12);
  SkyeyStats stats;
  const SkylineGroupSet groups = ComputeSkyey(data, {}, &stats);
  EXPECT_LT(groups.size() * 2, stats.total_subspace_skyline_objects);
}

}  // namespace
}  // namespace skycube
