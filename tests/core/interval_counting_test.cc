// Tests for subspace-interval-union counting, cross-checking the
// inclusion-exclusion and SOS-DP strategies against brute enumeration.
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/interval_counting.h"

namespace skycube {
namespace {

// Brute force: enumerate all non-empty subsets of b.
uint64_t BruteCount(DimMask b, const std::vector<DimMask>& lowers) {
  uint64_t total = 0;
  ForEachNonEmptySubset(b, [&](DimMask a) {
    for (DimMask lower : lowers) {
      if (IsSubsetOf(lower, a)) {
        ++total;
        return;
      }
    }
  });
  return total;
}

std::vector<uint64_t> BruteHistogram(DimMask b,
                                     const std::vector<DimMask>& lowers,
                                     uint64_t weight, size_t dims) {
  std::vector<uint64_t> histogram(dims, 0);
  ForEachNonEmptySubset(b, [&](DimMask a) {
    for (DimMask lower : lowers) {
      if (IsSubsetOf(lower, a)) {
        histogram[MaskSize(a) - 1] += weight;
        return;
      }
    }
  });
  return histogram;
}

TEST(IntervalCountingTest, SingleInterval) {
  // [A, ABCD]: all subsets containing A → 2^3 = 8.
  EXPECT_EQ(CountCoveredSubspaces(0b1111, {0b0001}), 8u);
  // [ABCD, ABCD]: only ABCD itself.
  EXPECT_EQ(CountCoveredSubspaces(0b1111, {0b1111}), 1u);
}

TEST(IntervalCountingTest, OverlappingIntervals) {
  // Paper P5 seed group: decisives AB, BD within ABCD.
  // [AB, ABCD] = 4, [BD, ABCD] = 4, intersection [ABD, ABCD] = 2 → 6.
  EXPECT_EQ(CountCoveredSubspaces(0b1111, {0b0011, 0b1010}), 6u);
}

TEST(IntervalCountingTest, RandomAgainstBruteForce) {
  Rng rng(17);
  for (int round = 0; round < 300; ++round) {
    const int dims = 1 + static_cast<int>(rng.NextBounded(10));
    const DimMask b = FullMask(dims);
    const size_t k = 1 + rng.NextBounded(6);
    std::vector<DimMask> lowers;
    for (size_t i = 0; i < k; ++i) {
      lowers.push_back(1 + rng.NextBounded(b));  // non-empty ⊆ b
    }
    EXPECT_EQ(CountCoveredSubspaces(b, lowers), BruteCount(b, lowers))
        << "round " << round;
    std::vector<uint64_t> histogram(dims, 0);
    AccumulateCoveredByLevel(b, lowers, 3, &histogram);
    EXPECT_EQ(histogram, BruteHistogram(b, lowers, 3, dims))
        << "round " << round;
  }
}

TEST(IntervalCountingTest, SosPathKicksInForManyLowers) {
  // More than kMaxInclusionExclusion lowers forces the SOS DP; verify it
  // against brute force on a 10-dim space with 30 random lowers.
  Rng rng(23);
  const DimMask b = FullMask(10);
  for (int round = 0; round < 20; ++round) {
    std::vector<DimMask> lowers;
    for (int i = 0; i < 30; ++i) lowers.push_back(1 + rng.NextBounded(b));
    ASSERT_GT(lowers.size(), kMaxInclusionExclusion);
    EXPECT_EQ(CountCoveredSubspaces(b, lowers), BruteCount(b, lowers));
    std::vector<uint64_t> histogram(10, 0);
    AccumulateCoveredByLevel(b, lowers, 1, &histogram);
    EXPECT_EQ(histogram, BruteHistogram(b, lowers, 1, 10));
  }
}

TEST(IntervalCountingTest, NonContiguousUniverse) {
  // b = {1, 3, 4} (mask 0b11010); lower = {3} (0b01000).
  // Supersets of {3} within b: {3}, {1,3}, {3,4}, {1,3,4} → 4.
  EXPECT_EQ(CountCoveredSubspaces(0b11010, {0b01000}), 4u);
  // SOS path with the same geometry (pad the lower list with duplicates).
  std::vector<DimMask> many(25, 0b01000);
  EXPECT_EQ(CountCoveredSubspaces(0b11010, many), 4u);
}

TEST(IntervalCountingTest, SingletonDimension) {
  EXPECT_EQ(CountCoveredSubspaces(0b1, {0b1}), 1u);
}

}  // namespace
}  // namespace skycube
