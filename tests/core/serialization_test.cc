// Round-trip and validation tests for cube serialization.
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/serialization.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"

namespace skycube {
namespace {

TEST(SerializationTest, RoundTripRunningExample) {
  const Dataset data = Dataset::FromRows({
                                             {5, 6, 10, 7},
                                             {2, 6, 8, 3},
                                             {5, 4, 9, 3},
                                             {6, 4, 8, 5},
                                             {2, 4, 9, 3},
                                         })
                           .value();
  const SkylineGroupSet groups = ComputeStellar(data);
  const std::string text =
      SerializeCube(data.num_dims(), data.num_objects(), groups);
  const Result<SerializedCube> loaded = DeserializeCube(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_dims, 4);
  EXPECT_EQ(loaded.value().num_objects, 5u);
  EXPECT_EQ(loaded.value().groups, groups);
}

TEST(SerializationTest, RoundTripExactDoubles) {
  SyntheticSpec spec;
  spec.num_objects = 150;
  spec.num_dims = 4;
  spec.truncate_decimals = -1;  // full-precision doubles
  spec.seed = 31;
  const Dataset data = GenerateSynthetic(spec);
  const SkylineGroupSet groups = ComputeStellar(data);
  const Result<SerializedCube> loaded =
      DeserializeCube(SerializeCube(4, data.num_objects(), groups));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().groups, groups);  // bit-exact projections
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cube_roundtrip.txt";
  const Dataset data = Dataset::FromRows({{1, 2}, {2, 1}}).value();
  const SkylineGroupSet groups = ComputeStellar(data);
  ASSERT_TRUE(SaveCubeToFile(path, 2, 2, groups).ok());
  const Result<SerializedCube> loaded = LoadCubeFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().groups, groups);
  std::remove(path.c_str());
}

TEST(SerializationTest, DimensionNamesRoundTrip) {
  const Dataset data =
      Dataset::FromRows({{1, 2}, {2, 1}}, {"price", "travel time"}).value();
  const SkylineGroupSet groups = ComputeStellar(data);
  const std::string text =
      SerializeCube(2, 2, groups, data.dim_names());
  const Result<SerializedCube> loaded = DeserializeCube(text);
  ASSERT_TRUE(loaded.ok());
  // Whitespace inside a name is rewritten to '_' on save.
  EXPECT_EQ(loaded.value().dim_names,
            (std::vector<std::string>{"price", "travel_time"}));
  EXPECT_EQ(loaded.value().groups, groups);
  // Files without names stay loadable, with empty names.
  const Result<SerializedCube> unnamed =
      DeserializeCube(SerializeCube(2, 2, groups));
  ASSERT_TRUE(unnamed.ok());
  EXPECT_TRUE(unnamed.value().dim_names.empty());
  EXPECT_EQ(unnamed.value().groups, groups);
}

TEST(SerializationTest, RejectsBadInput) {
  EXPECT_FALSE(DeserializeCube("").ok());
  EXPECT_FALSE(DeserializeCube("skycube-cube v2\n").ok());
  EXPECT_FALSE(DeserializeCube("banana v1\n").ok());
  // Member id out of range.
  EXPECT_FALSE(
      DeserializeCube("skycube-cube v1\ndims 2 objects 2 groups 1\n"
                      "1 7 3 1 1 0.5 0.5\n")
          .ok());
  // Decisive outside the maximal subspace.
  EXPECT_FALSE(
      DeserializeCube("skycube-cube v1\ndims 2 objects 2 groups 1\n"
                      "1 0 1 1 2 0.5\n")
          .ok());
  // Truncated group line.
  EXPECT_FALSE(
      DeserializeCube("skycube-cube v1\ndims 2 objects 2 groups 1\n1 0\n")
          .ok());
  // Empty subspace.
  EXPECT_FALSE(
      DeserializeCube("skycube-cube v1\ndims 2 objects 2 groups 1\n"
                      "1 0 0 1 1 0.5\n")
          .ok());
  EXPECT_FALSE(LoadCubeFromFile("/no/such/file").ok());
}

// --- Corruption resistance -------------------------------------------------
// A saved cube is the service's startup dependency: a corrupt file must be
// an error, never a crash and never a silently-wrong cube.

std::string ExampleCubeText() {
  const Dataset data = Dataset::FromRows({
                                             {5, 6, 10, 7},
                                             {2, 6, 8, 3},
                                             {5, 4, 9, 3},
                                             {6, 4, 8, 5},
                                             {2, 4, 9, 3},
                                         })
                           .value();
  return SerializeCube(data.num_dims(), data.num_objects(),
                       ComputeStellar(data));
}

TEST(SerializationTest, V2CarriesChecksumHeader) {
  const std::string text = ExampleCubeText();
  EXPECT_EQ(text.rfind("skycube-cube v2\nchecksum ", 0), 0u) << text;
}

TEST(SerializationTest, EveryTruncationFailsCleanly) {
  const std::string text = ExampleCubeText();
  for (size_t keep = 0; keep < text.size(); ++keep) {
    const Result<SerializedCube> loaded =
        DeserializeCube(text.substr(0, keep));
    EXPECT_FALSE(loaded.ok()) << "truncation to " << keep << " bytes parsed";
  }
}

TEST(SerializationTest, EverySingleBitFlipIsDetected) {
  const std::string original = ExampleCubeText();
  for (size_t i = 0; i < original.size(); ++i) {
    std::string corrupt = original;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x4);
    const Result<SerializedCube> loaded = DeserializeCube(corrupt);
    EXPECT_FALSE(loaded.ok()) << "bit flip at byte " << i << " parsed";
  }
}

TEST(SerializationTest, PayloadCorruptionIsInternal) {
  std::string corrupt = ExampleCubeText();
  // Flip a digit inside the payload (past the checksum line), turning a
  // syntactically valid number into a different valid number: only the
  // checksum can catch this.
  const size_t payload = corrupt.find('\n', corrupt.find("checksum")) + 1;
  const size_t digit = corrupt.find_first_of("0123456789", payload);
  ASSERT_NE(digit, std::string::npos);
  corrupt[digit] = corrupt[digit] == '9' ? '8' : '9';
  const Result<SerializedCube> loaded = DeserializeCube(corrupt);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInternal);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos);
}

TEST(SerializationTest, CorruptFileRoundTripFails) {
  const std::string path = ::testing::TempDir() + "/cube_corrupt.txt";
  const std::string text = ExampleCubeText();
  // Truncated file.
  {
    std::ofstream out(path);
    out << text.substr(0, text.size() / 2);
  }
  EXPECT_FALSE(LoadCubeFromFile(path).ok());
  // Bit-flipped file.
  {
    std::string corrupt = text;
    corrupt[text.size() - 2] ^= 0x10;
    std::ofstream out(path);
    out << corrupt;
  }
  EXPECT_FALSE(LoadCubeFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, LegacyV1WithoutChecksumStillLoads) {
  const Result<SerializedCube> loaded =
      DeserializeCube("skycube-cube v1\ndims 2 objects 2 groups 1\n"
                      "1 0 3 1 1 0.5 0.5\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_dims, 2);
  EXPECT_EQ(loaded.value().groups.size(), 1u);
}

TEST(SerializationTest, HugeCountsFailWithoutAllocating) {
  // A corrupt count must not drive a pre-allocation: the parse has to fail
  // on the missing elements, not die in resize().
  EXPECT_FALSE(
      DeserializeCube("skycube-cube v1\ndims 2 objects 2 groups 1\n"
                      "1 0 3 18446744073709551615 1 0.5 0.5\n")
          .ok());
  EXPECT_FALSE(
      DeserializeCube("skycube-cube v1\ndims 2 objects "
                      "18446744073709551615 groups 1\n"
                      "18446744073709551615 0\n")
          .ok());
  EXPECT_FALSE(
      DeserializeCube("skycube-cube v1\ndims 64 objects 99999999999 "
                      "groups 99999999999\n")
          .ok());
}

}  // namespace
}  // namespace skycube
