// Tests for the skyline-group lattice and the Theorem 2 quotient property.
#include <vector>

#include <gtest/gtest.h>

#include "core/lattice.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {
namespace {

Dataset RunningExample() {
  return Dataset::FromRows({
                               {5, 6, 10, 7},
                               {2, 6, 8, 3},
                               {5, 4, 9, 3},
                               {6, 4, 8, 5},
                               {2, 4, 9, 3},
                           })
      .value();
}

TEST(LatticeTest, RunningExampleStructureMatchesFigure3b) {
  const Dataset data = RunningExample();
  const SkylineGroupSet groups = ComputeStellar(data);
  const SkylineGroupLattice lattice(&groups);
  // Roots are the three singleton seed groups P2, P4, P5.
  std::vector<std::vector<ObjectId>> root_members;
  for (size_t root : lattice.roots()) {
    root_members.push_back(groups[root].members);
  }
  EXPECT_EQ(root_members.size(), 3u);
  EXPECT_NE(std::find(root_members.begin(), root_members.end(),
                      std::vector<ObjectId>{1}),
            root_members.end());
  EXPECT_NE(std::find(root_members.begin(), root_members.end(),
                      std::vector<ObjectId>{3}),
            root_members.end());
  EXPECT_NE(std::find(root_members.begin(), root_members.end(),
                      std::vector<ObjectId>{4}),
            root_members.end());
  // Figure 3(b) edges: P2 covers P2P4 and P2P5; P2P5 covers P2P3P5;
  // P5 covers P2P5, P3P5; P3P5 covers P2P3P5 and P3P4P5... (P3P4P5 covers
  // nothing below). Spot-check a covering edge and a non-edge.
  auto index_of = [&](std::vector<ObjectId> members) -> size_t {
    for (size_t i = 0; i < groups.size(); ++i) {
      if (groups[i].members == members) return i;
    }
    ADD_FAILURE() << "group not found";
    return 0;
  };
  const size_t p5 = index_of({4});
  const size_t p3p5 = index_of({2, 4});
  const size_t p2p3p5 = index_of({1, 2, 4});
  std::vector<size_t> children = lattice.ChildrenOf(p5);
  EXPECT_NE(std::find(children.begin(), children.end(), p3p5),
            children.end());
  // P2P3P5 is below P3P5, so the edge P5 → P2P3P5 must NOT be a covering
  // edge (it is transitive).
  EXPECT_EQ(std::find(children.begin(), children.end(), p2p3p5),
            children.end());
}

TEST(LatticeTest, EdgesAreCoveringRelations) {
  SyntheticSpec spec;
  spec.num_objects = 200;
  spec.num_dims = 4;
  spec.truncate_decimals = 1;
  spec.seed = 13;
  const Dataset data = GenerateSynthetic(spec);
  const SkylineGroupSet groups = ComputeStellar(data);
  const SkylineGroupLattice lattice(&groups);
  for (const LatticeEdge& edge : lattice.edges()) {
    const auto& parent = groups[edge.parent].members;
    const auto& child = groups[edge.child].members;
    EXPECT_LT(parent.size(), child.size());
    EXPECT_TRUE(std::includes(child.begin(), child.end(), parent.begin(),
                              parent.end()));
    // No group strictly between parent and child.
    for (const SkylineGroup& mid : groups) {
      if (mid.members.size() <= parent.size() ||
          mid.members.size() >= child.size()) {
        continue;
      }
      const bool contains_parent =
          std::includes(mid.members.begin(), mid.members.end(),
                        parent.begin(), parent.end());
      const bool inside_child = std::includes(
          child.begin(), child.end(), mid.members.begin(), mid.members.end());
      EXPECT_FALSE(contains_parent && inside_child);
    }
  }
}

TEST(LatticeTest, QuotientMapOnRunningExample) {
  const Dataset data = RunningExample();
  const SkylineGroupSet full = ComputeStellar(data);
  // Seed groups: restrict the data to the seeds P2, P4, P5 (ids 1, 3, 4).
  Dataset seed_data = Dataset::FromRows({
                                            {2, 6, 8, 3},
                                            {6, 4, 8, 5},
                                            {2, 4, 9, 3},
                                        })
                          .value();
  SkylineGroupSet seed_groups = ComputeStellar(seed_data);
  const std::vector<ObjectId> seed_ids = {1, 3, 4};
  for (SkylineGroup& group : seed_groups) {
    for (ObjectId& member : group.members) member = seed_ids[member];
  }
  NormalizeGroups(&seed_groups);
  ASSERT_EQ(seed_groups.size(), 6u);  // Figure 3(a)
  const std::vector<size_t> map = QuotientMap(full, seed_groups, seed_ids);
  ASSERT_EQ(map.size(), full.size());
  // The map must hit every seed group (surjectivity: quotient).
  std::vector<char> hit(seed_groups.size(), 0);
  for (size_t s : map) hit[s] = 1;
  for (size_t s = 0; s < hit.size(); ++s) {
    EXPECT_TRUE(hit[s]) << "seed group " << s << " not covered";
  }
}

TEST(LatticeTest, Theorem2HoldsOnRandomData) {
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kCorrelated,
                            Distribution::kAntiCorrelated}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      SyntheticSpec spec;
      spec.distribution = dist;
      spec.num_objects = 150;
      spec.num_dims = 4;
      spec.truncate_decimals = 1;
      spec.seed = seed;
      EXPECT_TRUE(VerifySeedLatticeIsQuotient(GenerateSynthetic(spec)))
          << DistributionName(dist) << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace skycube
