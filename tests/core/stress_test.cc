// Moderate-scale randomized differential tests: Stellar vs Skyey on
// thousands of objects (too big for the brute-force oracle, big enough to
// exercise the candidate-sharing, matrix and extension paths that tiny
// inputs never stress), plus workload shapes the small sweeps don't cover
// (NBA-like prefixes, integer grids, clustered fares).
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/lattice.h"
#include "core/serialization.h"
#include "core/skyey.h"
#include "core/stellar.h"
#include "datagen/nba_like.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"

namespace skycube {
namespace {

void ExpectEnginesAgree(const Dataset& data, const std::string& label) {
  const SkylineGroupSet stellar = ComputeStellar(data);
  const SkylineGroupSet skyey = ComputeSkyey(data);
  ASSERT_EQ(stellar.size(), skyey.size()) << label;
  ASSERT_EQ(stellar, skyey) << label;
  for (const SkylineGroup& group : stellar) {
    ASSERT_TRUE(GroupWellFormed(group))
        << label << ": " << FormatGroup(group, data.num_dims());
  }
}

TEST(StressTest, SyntheticMidScale) {
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kCorrelated,
                            Distribution::kAntiCorrelated}) {
    for (int d : {4, 7}) {
      SyntheticSpec spec;
      spec.distribution = dist;
      spec.num_objects = 3000;
      spec.num_dims = d;
      spec.truncate_decimals = 2;
      spec.seed = 424242;
      ExpectEnginesAgree(GenerateSynthetic(spec),
                         std::string(DistributionName(dist)) + "/d" +
                             std::to_string(d));
    }
  }
}

TEST(StressTest, NbaLikePrefixes) {
  const Dataset nba = GenerateNbaLike(4000, 11).Negated();
  for (int d : {3, 6, 9}) {
    ExpectEnginesAgree(nba.WithPrefixDims(d), "nba/d" + std::to_string(d));
  }
}

TEST(StressTest, CoarseIntegerGrid) {
  // Tiny value domains make nearly everything coincide somewhere — the
  // worst case for the grouping machinery.
  Rng rng(3);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 2500; ++i) {
    rows.push_back({static_cast<double>(rng.NextBounded(4)),
                    static_cast<double>(rng.NextBounded(4)),
                    static_cast<double>(rng.NextBounded(4)),
                    static_cast<double>(rng.NextBounded(4)),
                    static_cast<double>(rng.NextBounded(4))});
  }
  ExpectEnginesAgree(Dataset::FromRows(std::move(rows)).value(), "grid4^5");
}

TEST(StressTest, MixedCardinalityColumns) {
  // One near-unique column next to near-constant columns: maximal
  // subspaces vary wildly across groups.
  Rng rng(8);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 2000; ++i) {
    rows.push_back({static_cast<double>(rng.NextBounded(1000000)),
                    static_cast<double>(rng.NextBounded(2)),
                    static_cast<double>(rng.NextBounded(3)),
                    static_cast<double>(rng.NextBounded(500))});
  }
  ExpectEnginesAgree(Dataset::FromRows(std::move(rows)).value(), "mixed");
}

TEST(StressTest, Theorem2QuotientAtScale) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_objects = 1500;
  spec.num_dims = 5;
  spec.truncate_decimals = 2;
  spec.seed = 5;
  EXPECT_TRUE(VerifySeedLatticeIsQuotient(GenerateSynthetic(spec)));
  const Dataset nba = GenerateNbaLike(2000, 77).Negated().WithPrefixDims(6);
  EXPECT_TRUE(VerifySeedLatticeIsQuotient(nba));
}

TEST(StressTest, SerializedCubeAnswersLikeFreshOne) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.num_objects = 1200;
  spec.num_dims = 5;
  spec.truncate_decimals = 2;
  spec.seed = 99;
  const Dataset data = GenerateSynthetic(spec);
  const SkylineGroupSet groups = ComputeStellar(data);
  const Result<SerializedCube> loaded = DeserializeCube(
      SerializeCube(data.num_dims(), data.num_objects(), groups));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().groups, groups);
}

}  // namespace
}  // namespace skycube
