// Tests for incremental cube maintenance: after every insert, the
// maintained cube must equal a from-scratch Stellar run, and the insert
// must take the cheapest admissible path.
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/maintenance.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"

namespace skycube {
namespace {

Dataset RunningExample() {
  return Dataset::FromRows({
                               {5, 6, 10, 7},  // P1
                               {2, 6, 8, 3},   // P2
                               {5, 4, 9, 3},   // P3
                               {6, 4, 8, 5},   // P4
                               {2, 4, 9, 3},   // P5
                           })
      .value();
}

void ExpectCubeCurrent(const IncrementalCubeMaintainer& maintainer) {
  EXPECT_EQ(maintainer.groups(), ComputeStellar(maintainer.data()));
}

TEST(MaintenanceTest, InitialBuildMatchesStellar) {
  IncrementalCubeMaintainer maintainer(RunningExample());
  ExpectCubeCurrent(maintainer);
  EXPECT_EQ(maintainer.stats().full_recomputes, 1u);  // the initial build
}

TEST(MaintenanceTest, DuplicateInsertPatchesMemberships) {
  IncrementalCubeMaintainer maintainer(RunningExample());
  // Insert a duplicate of P5 — it must join every group P5 belongs to.
  EXPECT_EQ(maintainer.Insert({2, 4, 9, 3}), InsertPath::kDuplicate);
  ExpectCubeCurrent(maintainer);
  EXPECT_EQ(maintainer.stats().duplicate_patches, 1u);
  size_t groups_with_new = 0;
  size_t groups_with_p5 = 0;
  for (const SkylineGroup& group : maintainer.groups()) {
    groups_with_new +=
        std::count(group.members.begin(), group.members.end(), 5u);
    groups_with_p5 +=
        std::count(group.members.begin(), group.members.end(), 4u);
  }
  EXPECT_EQ(groups_with_new, groups_with_p5);
  EXPECT_GT(groups_with_new, 0u);
}

TEST(MaintenanceTest, IrrelevantDominatedInsertIsNoOp) {
  IncrementalCubeMaintainer maintainer(RunningExample());
  const SkylineGroupSet before = maintainer.groups();
  // (7, 8, 11, 9): dominated by P2 everywhere, shares no value with any
  // group on any decisive subspace.
  EXPECT_EQ(maintainer.Insert({7, 8, 11, 9}), InsertPath::kNoOp);
  EXPECT_EQ(maintainer.groups(), before);
  ExpectCubeCurrent(maintainer);
  EXPECT_EQ(maintainer.stats().noop_inserts, 1u);
}

TEST(MaintenanceTest, RelevantDominatedInsertRerunsExtensionOnly) {
  IncrementalCubeMaintainer maintainer(RunningExample());
  const uint64_t recomputes_before = maintainer.stats().full_recomputes;
  // (9, 9, 9, 3): dominated (e.g. by P5) but ties value 3 on D — D is a
  // decisive subspace of seed group P2P5, so the group P2P3P5 must grow.
  EXPECT_EQ(maintainer.Insert({9, 9, 9, 3}), InsertPath::kExtensionOnly);
  ExpectCubeCurrent(maintainer);
  EXPECT_EQ(maintainer.stats().full_recomputes, recomputes_before);
  bool found = false;
  for (const SkylineGroup& group : maintainer.groups()) {
    if (group.members == std::vector<ObjectId>{1, 2, 4, 5}) {
      EXPECT_EQ(group.max_subspace, MaskFromLetters("D"));
      found = true;
    }
  }
  EXPECT_TRUE(found) << "P2P3P5 should have grown into P2P3P5P6";
}

TEST(MaintenanceTest, NewSkylineObjectForcesRecompute) {
  IncrementalCubeMaintainer maintainer(RunningExample());
  const uint64_t recomputes_before = maintainer.stats().full_recomputes;
  // (1, 1, 1, 1) dominates everything: it evicts all seeds.
  EXPECT_EQ(maintainer.Insert({1, 1, 1, 1}), InsertPath::kFullRecompute);
  ExpectCubeCurrent(maintainer);
  EXPECT_EQ(maintainer.stats().full_recomputes, recomputes_before + 1);
}

TEST(MaintenanceTest, RandomInsertStreamStaysCurrent) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_objects = 80;
  spec.num_dims = 3;
  spec.truncate_decimals = 1;  // heavy ties → all paths exercised
  spec.seed = 21;
  IncrementalCubeMaintainer maintainer(GenerateSynthetic(spec));
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    std::vector<double> row(3);
    for (double& v : row) {
      v = static_cast<double>(rng.NextBounded(11)) / 10.0;
    }
    maintainer.Insert(row);
    ASSERT_EQ(maintainer.groups(), ComputeStellar(maintainer.data()))
        << "insert " << i;
  }
  // The stream should have hit several distinct paths.
  const MaintenanceStats& stats = maintainer.stats();
  EXPECT_EQ(stats.inserts, 60u);
  EXPECT_GT(stats.duplicate_patches + stats.noop_inserts +
                stats.extension_reruns + stats.full_recomputes,
            0u);
}

TEST(MaintenanceTest, PathsActuallyDiversify) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.num_objects = 120;
  spec.num_dims = 3;
  spec.truncate_decimals = 1;
  spec.seed = 8;
  IncrementalCubeMaintainer maintainer(GenerateSynthetic(spec));
  Rng rng(11);
  size_t path_counts[4] = {0, 0, 0, 0};
  for (int i = 0; i < 120; ++i) {
    std::vector<double> row(3);
    for (double& v : row) {
      v = static_cast<double>(rng.NextBounded(11)) / 10.0;
    }
    path_counts[static_cast<int>(maintainer.Insert(row))]++;
  }
  ExpectCubeCurrent(maintainer);
  // With heavy ties over an 11-value grid, all four paths occur.
  EXPECT_GT(path_counts[0], 0u) << "no duplicate path taken";
  EXPECT_GT(path_counts[1] + path_counts[2], 0u) << "no dominated path";
  EXPECT_GT(path_counts[3], 0u) << "no recompute path taken";
}

TEST(MaintenanceTest, DuplicateOfSeedPatchesWithoutRecompute) {
  // P5 = (2,4,9,3) is a full-space skyline point (a seed). Re-inserting a
  // seed verbatim must take the duplicate path, not recompute.
  IncrementalCubeMaintainer maintainer(RunningExample());
  const uint64_t recomputes_before = maintainer.stats().full_recomputes;
  EXPECT_EQ(maintainer.Insert({2, 4, 9, 3}), InsertPath::kDuplicate);
  EXPECT_EQ(maintainer.Insert({2, 4, 9, 3}), InsertPath::kDuplicate);
  ExpectCubeCurrent(maintainer);
  EXPECT_EQ(maintainer.stats().full_recomputes, recomputes_before);
  EXPECT_EQ(maintainer.data().num_objects(), 7u);
}

TEST(MaintenanceTest, SeedEvictingInsertRecomputes) {
  // (2,4,8,3) strictly dominates seed P5=(2,4,9,3) while leaving the other
  // rows alone: a partial seed eviction, which must force a recompute and
  // still land on the from-scratch answer.
  IncrementalCubeMaintainer maintainer(RunningExample());
  EXPECT_EQ(maintainer.Insert({2, 4, 8, 3}), InsertPath::kFullRecompute);
  ExpectCubeCurrent(maintainer);
  // The evicted seed must no longer appear as a full-space skyline seed.
  const SkylineGroupSet recomputed = ComputeStellar(maintainer.data());
  EXPECT_EQ(maintainer.groups(), recomputed);
}

TEST(MaintenanceTest, AllTiesDatasetInsertIsDuplicate) {
  // Every object identical: any equal insert ties everything everywhere.
  Dataset data = Dataset::FromRows({{3, 3, 3}, {3, 3, 3}, {3, 3, 3}}).value();
  IncrementalCubeMaintainer maintainer(std::move(data));
  EXPECT_EQ(maintainer.Insert({3, 3, 3}), InsertPath::kDuplicate);
  ExpectCubeCurrent(maintainer);
  // A strictly better row then evicts the whole tied cohort.
  EXPECT_EQ(maintainer.Insert({2, 2, 2}), InsertPath::kFullRecompute);
  ExpectCubeCurrent(maintainer);
}

TEST(MaintenanceTest, TieOnEveryDimWithDistinctRowsStaysCurrent) {
  // Rows that tie pairwise on some dim but never dominate: inserts that tie
  // a seed on every dimension individually while being incomparable.
  Dataset data = Dataset::FromRows({{1, 2, 3}, {2, 3, 1}, {3, 1, 2}}).value();
  IncrementalCubeMaintainer maintainer(std::move(data));
  maintainer.Insert({1, 3, 2});  // ties each column's minimum somewhere
  ExpectCubeCurrent(maintainer);
  maintainer.Insert({2, 1, 3});
  ExpectCubeCurrent(maintainer);
}

void ExpectLiveCurrent(const IncrementalCubeMaintainer& maintainer) {
  EXPECT_EQ(maintainer.groups(),
            StellarOverLive(maintainer.data(), maintainer.live()));
}

TEST(MaintenanceTest, RemoveMatchesStellarOverLive) {
  IncrementalCubeMaintainer maintainer(RunningExample());
  // P5 = (2,4,9,3) is a seed: removing its only copy forces a recompute.
  EXPECT_EQ(maintainer.Remove(4), DeletePath::kFullRecompute);
  ExpectLiveCurrent(maintainer);
  EXPECT_EQ(maintainer.num_live(), 4u);
  // Ids are stable across deletes: the dataset still holds all five rows.
  EXPECT_EQ(maintainer.data().num_objects(), 5u);
  EXPECT_FALSE(maintainer.IsLive(4));
}

TEST(MaintenanceTest, RemoveAlreadyDeadOrOutOfRangeIsNoOp) {
  IncrementalCubeMaintainer maintainer(RunningExample());
  const uint64_t version = maintainer.version();
  // Out of range (a replayed delete of a never-acked row) — no-op.
  EXPECT_EQ(maintainer.Remove(99), DeletePath::kAlreadyDead);
  EXPECT_EQ(maintainer.version(), version);
  // Double delete — the second is a no-op.
  maintainer.Remove(0);
  const uint64_t after_first = maintainer.version();
  EXPECT_EQ(maintainer.Remove(0), DeletePath::kAlreadyDead);
  EXPECT_EQ(maintainer.version(), after_first);
  ExpectLiveCurrent(maintainer);
  EXPECT_EQ(maintainer.stats().already_dead_deletes, 2u);
}

TEST(MaintenanceTest, RemoveDuplicateCopyPatchesMemberships) {
  // Two copies of seed P5: deleting one leaves the tuple alive through the
  // other copy, so only the member lists change.
  IncrementalCubeMaintainer maintainer(RunningExample());
  maintainer.Insert({2, 4, 9, 3});  // duplicate of P5 (id 5)
  const uint64_t recomputes = maintainer.stats().full_recomputes;
  EXPECT_EQ(maintainer.Remove(4), DeletePath::kMembershipPatch);
  ExpectLiveCurrent(maintainer);
  EXPECT_EQ(maintainer.stats().full_recomputes, recomputes);
  // The surviving copy now carries every membership the dead one had.
  EXPECT_TRUE(maintainer.IsLive(5));
}

TEST(MaintenanceTest, RandomMixedStreamStaysLiveCurrent) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_objects = 60;
  spec.num_dims = 3;
  spec.truncate_decimals = 1;  // heavy ties → all delete paths exercised
  spec.seed = 33;
  IncrementalCubeMaintainer maintainer(GenerateSynthetic(spec));
  Rng rng(17);
  for (int i = 0; i < 150; ++i) {
    if (rng.NextBounded(3) == 0) {
      maintainer.Remove(static_cast<ObjectId>(
          rng.NextBounded(maintainer.data().num_objects())));
    } else {
      std::vector<double> row(3);
      for (double& v : row) {
        v = static_cast<double>(rng.NextBounded(11)) / 10.0;
      }
      maintainer.Insert(row);
    }
    ASSERT_EQ(maintainer.groups(),
              StellarOverLive(maintainer.data(), maintainer.live()))
        << "diverged at op " << i;
  }
  // The mixed stream must have taken more than one delete path.
  const MaintenanceStats& stats = maintainer.stats();
  EXPECT_GT(stats.deletes, 0u);
  EXPECT_GT(stats.delete_patches + stats.delete_extension_reruns +
                stats.delete_recomputes,
            0u);
}

TEST(MaintenanceTest, ExpireOlderThanBatchesAndSkipsTimestampZero) {
  IncrementalCubeMaintainer maintainer(RunningExample());  // bootstrap: ts 0
  maintainer.Insert({7, 7, 11, 8}, /*timestamp_ms=*/100);
  maintainer.Insert({8, 7, 12, 8}, /*timestamp_ms=*/200);
  maintainer.Insert({9, 8, 12, 9}, /*timestamp_ms=*/300);
  const uint64_t version = maintainer.version();

  // One batch, one version bump, exactly the sub-cutoff rows die.
  EXPECT_EQ(maintainer.ExpireOlderThan(250), 2u);
  EXPECT_EQ(maintainer.version(), version + 1);
  EXPECT_FALSE(maintainer.IsLive(5));
  EXPECT_FALSE(maintainer.IsLive(6));
  EXPECT_TRUE(maintainer.IsLive(7));
  ExpectLiveCurrent(maintainer);

  // Timestamp-0 rows (bootstrap / legacy WAL) never expire, and a pass
  // that expires nothing does not bump the version.
  const uint64_t after = maintainer.version();
  EXPECT_EQ(maintainer.ExpireOlderThan(250), 0u);
  EXPECT_EQ(maintainer.version(), after);
  for (ObjectId id = 0; id < 5; ++id) EXPECT_TRUE(maintainer.IsLive(id));
  EXPECT_EQ(maintainer.stats().expired_rows, 2u);
}

TEST(MaintenanceTest, CheckpointRestoreRoundTripsTombstones) {
  // The restore constructor must rebuild exactly the live-rows cube from a
  // gapped (tombstoned) dataset, ids preserved.
  IncrementalCubeMaintainer original(RunningExample());
  original.Insert({6, 7, 10, 8}, /*timestamp_ms=*/42);
  original.Remove(1);
  original.Remove(3);
  IncrementalCubeMaintainer restored(original.data(), original.live(),
                                     original.timestamps());
  EXPECT_EQ(restored.groups(), original.groups());
  EXPECT_EQ(restored.num_live(), original.num_live());
  EXPECT_EQ(restored.timestamps(), original.timestamps());
  ExpectLiveCurrent(restored);
}

TEST(MaintenanceTest, LongRandomStream500StaysEquivalent) {
  // 500 inserts over a coarse value grid, checking the cube against a
  // fresh ComputeStellar after every step. Slow but exhaustive: this is
  // the reference oracle the recovery path also relies on.
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_objects = 30;
  spec.num_dims = 3;
  spec.truncate_decimals = 1;
  spec.seed = 77;
  IncrementalCubeMaintainer maintainer(GenerateSynthetic(spec));
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row(3);
    for (double& v : row) {
      // Mostly coarse grid values (ties), occasionally a fine value.
      v = rng.NextBounded(10) == 0
              ? static_cast<double>(rng.NextBounded(1000)) / 1000.0
              : static_cast<double>(rng.NextBounded(6)) / 5.0;
    }
    maintainer.Insert(row);
    ASSERT_EQ(maintainer.groups(), ComputeStellar(maintainer.data()))
        << "diverged at insert " << i;
  }
  EXPECT_EQ(maintainer.data().num_objects(), 530u);
  EXPECT_EQ(maintainer.stats().inserts, 500u);
}

}  // namespace
}  // namespace skycube
