// Property tests for the compressed-cube query layer: every answer derived
// from the groups must equal a direct computation on the data.
//
// Soundness/completeness note for Q1 (used throughout): an object u is in
// Sky(B) iff the tie class G of u_B (which is entirely inside Sky(B))
// closes to a skyline group (G, B*) with B ⊆ B* and B satisfying
// Definition 2's conditions (1)+(2), hence containing a minimal such C —
// i.e. iff some group of u has a decisive C with C ⊆ B ⊆ B*.
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/cube.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "skycube/skycube.h"
#include "skyline/algorithms.h"

namespace skycube {
namespace {

using CubeConfig = std::tuple<Distribution, int, uint64_t>;

class CubeQueryTest : public ::testing::TestWithParam<CubeConfig> {
 protected:
  Dataset MakeData() const {
    SyntheticSpec spec;
    spec.distribution = std::get<0>(GetParam());
    spec.num_dims = std::get<1>(GetParam());
    spec.seed = std::get<2>(GetParam());
    spec.num_objects = 300;
    spec.truncate_decimals = 2;
    return GenerateSynthetic(spec);
  }
};

TEST_P(CubeQueryTest, SubspaceSkylineMatchesDirectComputation) {
  const Dataset data = MakeData();
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   ComputeStellar(data));
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
    const std::vector<ObjectId> direct = ComputeSkyline(data, subspace);
    EXPECT_EQ(cube.SubspaceSkyline(subspace), direct)
        << FormatMask(subspace);
    EXPECT_EQ(cube.SkylineCardinality(subspace), direct.size());
  });
}

TEST_P(CubeQueryTest, MembershipAgreesWithDirectComputation) {
  const Dataset data = MakeData();
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   ComputeStellar(data));
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
    const std::vector<ObjectId> direct = ComputeSkyline(data, subspace);
    size_t cursor = 0;
    for (ObjectId id = 0; id < data.num_objects(); ++id) {
      const bool expected =
          cursor < direct.size() && direct[cursor] == id && (++cursor, true);
      EXPECT_EQ(cube.IsInSubspaceSkyline(id, subspace), expected)
          << "object " << id << " subspace " << FormatMask(subspace);
    }
  });
}

TEST_P(CubeQueryTest, SubspaceEnumerationMatchesCounting) {
  const Dataset data = MakeData();
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   ComputeStellar(data));
  for (ObjectId id = 0; id < 40; ++id) {
    const std::vector<DimMask> subspaces = cube.SubspacesWhereSkyline(id);
    EXPECT_EQ(cube.CountSubspacesWhereSkyline(id), subspaces.size());
    for (DimMask subspace : subspaces) {
      EXPECT_TRUE(cube.IsInSubspaceSkyline(id, subspace));
    }
  }
}

TEST_P(CubeQueryTest, TotalSkylineObjectsMatchesSkycube) {
  const Dataset data = MakeData();
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   ComputeStellar(data));
  // Inclusion-exclusion from the compression vs brute subspace enumeration.
  EXPECT_EQ(cube.TotalSubspaceSkylineObjects(),
            CountSubspaceSkylineObjects(data));
}

TEST_P(CubeQueryTest, CoveringGroupsAreDisjointAndComplete) {
  const Dataset data = MakeData();
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   ComputeStellar(data));
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
    std::vector<ObjectId> from_groups;
    for (size_t g : cube.GroupsCoveringSubspace(subspace)) {
      const SkylineGroup& group = cube.groups()[g];
      from_groups.insert(from_groups.end(), group.members.begin(),
                         group.members.end());
    }
    std::sort(from_groups.begin(), from_groups.end());
    // Disjoint: no object appears twice.
    EXPECT_EQ(std::adjacent_find(from_groups.begin(), from_groups.end()),
              from_groups.end())
        << FormatMask(subspace);
    EXPECT_EQ(from_groups, ComputeSkyline(data, subspace));
  });
}

std::string CubeConfigName(const ::testing::TestParamInfo<CubeConfig>& info) {
  std::string name = DistributionName(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_d" + std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CubeQueryTest,
    ::testing::Combine(::testing::Values(Distribution::kIndependent,
                                         Distribution::kCorrelated,
                                         Distribution::kAntiCorrelated),
                       ::testing::Values(3, 5),
                       ::testing::Values(uint64_t{2}, uint64_t{41})),
    CubeConfigName);

TEST(CubeIntervalsTest, IntervalsCoverExactlyTheMemberships) {
  const Dataset data = Dataset::FromRows({
                                             {5, 6, 10, 7},
                                             {2, 6, 8, 3},
                                             {5, 4, 9, 3},
                                             {6, 4, 8, 5},
                                             {2, 4, 9, 3},
                                         })
                           .value();
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   ComputeStellar(data));
  // P5 (id 4) belongs to groups P5 (decisive AB), P2P5 (A), P3P5 (BD),
  // P2P3P5 (D), P3P4P5 (B) → 5 intervals.
  const auto intervals = cube.MembershipIntervals(4);
  EXPECT_EQ(intervals.size(), 5u);
  for (const auto& interval : intervals) {
    EXPECT_TRUE(IsSubsetOf(interval.lower, interval.upper));
    // Every subspace in the interval is a real membership.
    EXPECT_TRUE(cube.IsInSubspaceSkyline(4, interval.lower));
    EXPECT_TRUE(cube.IsInSubspaceSkyline(4, interval.upper));
  }
}

TEST(CubeGroupQueryTest, SubspacesWhereAllSkyline) {
  const Dataset data = Dataset::FromRows({
                                             {5, 6, 10, 7},  // P1
                                             {2, 6, 8, 3},   // P2
                                             {5, 4, 9, 3},   // P3
                                             {6, 4, 8, 5},   // P4
                                             {2, 4, 9, 3},   // P5
                                         })
                           .value();
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   ComputeStellar(data));
  // {P2, P5} (group with decisive A, max subspace AD): common subspaces
  // must at least include A and AD; verify against direct intersection.
  const std::vector<ObjectId> pair = {1, 4};
  const std::vector<DimMask> common = cube.SubspacesWhereAllSkyline(pair);
  EXPECT_TRUE(std::count(common.begin(), common.end(),
                         MaskFromLetters("A")));
  EXPECT_TRUE(std::count(common.begin(), common.end(),
                         MaskFromLetters("AD")));
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
    const bool expected = cube.IsInSubspaceSkyline(1, subspace) &&
                          cube.IsInSubspaceSkyline(4, subspace);
    const bool got =
        std::count(common.begin(), common.end(), subspace) > 0;
    EXPECT_EQ(got, expected) << FormatMask(subspace);
  });
  // A group containing P1 (never skyline) has no common subspaces.
  EXPECT_TRUE(cube.SubspacesWhereAllSkyline({0, 4}).empty());
  EXPECT_TRUE(cube.SubspacesWhereAllSkyline({}).empty());
}

TEST(CubeEdgeCases, EmptyGroupSetAnswersEmpty) {
  const CompressedSkylineCube cube(3, 5, {});
  EXPECT_TRUE(cube.SubspaceSkyline(0b111).empty());
  EXPECT_EQ(cube.SkylineCardinality(0b1), 0u);
  EXPECT_FALSE(cube.IsInSubspaceSkyline(0, 0b1));
  EXPECT_EQ(cube.TotalSubspaceSkylineObjects(), 0u);
}

}  // namespace
}  // namespace skycube
