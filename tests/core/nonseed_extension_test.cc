// Direct unit tests for the non-seed accommodation step (Theorem 5),
// exercising each of its cases in isolation: unaffected groups, group
// splits, in-place extensions, and decisive-subspace adjustments.
#include <vector>

#include <gtest/gtest.h>

#include "core/nonseed_extension.h"
#include "core/pairwise_masks.h"
#include "core/seed_lattice.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {
namespace {

DimMask M(const char* letters) { return MaskFromLetters(letters); }

// Runs seeds → seed lattice → extension on `data` and returns the groups.
SkylineGroupSet Extend(const Dataset& data, NonSeedExtensionStats* stats,
                       int num_threads = 1) {
  const std::vector<ObjectId> seeds =
      ComputeSkyline(data, data.full_mask());
  PairwiseMasks masks(data, seeds, data.full_mask(), true);
  const std::vector<SeedSkylineGroup> seed_groups =
      BuildSeedSkylineGroups(masks);
  SkylineGroupSet groups =
      ExtendWithNonSeeds(data, seeds, seed_groups, stats, num_threads);
  NormalizeGroups(&groups);
  return groups;
}

const SkylineGroup* Find(const SkylineGroupSet& groups,
                         std::vector<ObjectId> members) {
  for (const SkylineGroup& group : groups) {
    if (group.members == members) return &group;
  }
  return nullptr;
}

TEST(NonSeedExtensionTest, NoRelevantNonSeedsLeavesSeedLattice) {
  // Non-seed (9,9) shares nothing with the seeds.
  const Dataset data = Dataset::FromRows({{1, 2}, {2, 1}, {9, 9}}).value();
  NonSeedExtensionStats stats;
  const SkylineGroupSet groups = Extend(data, &stats);
  EXPECT_EQ(stats.relevant_pairs, 0u);
  EXPECT_EQ(stats.derived_groups, 0u);
  EXPECT_EQ(groups.size(), 2u);  // the two seed singletons
}

TEST(NonSeedExtensionTest, InPlaceExtensionKeepsMaskAndDecisive) {
  // Paper Example 7, second half: P3 shares exactly the maximal subspace B
  // of seed group P4P5, so the group extends without splitting.
  const Dataset data = Dataset::FromRows({
                                             {5, 6, 10, 7},  // P1
                                             {2, 6, 8, 3},   // P2
                                             {5, 4, 9, 3},   // P3 (non-seed)
                                             {6, 4, 8, 5},   // P4
                                             {2, 4, 9, 3},   // P5
                                         })
                           .value();
  NonSeedExtensionStats stats;
  const SkylineGroupSet groups = Extend(data, &stats);
  EXPECT_GT(stats.relevant_pairs, 0u);
  const SkylineGroup* extended = Find(groups, {2, 3, 4});  // P3P4P5
  ASSERT_NE(extended, nullptr);
  EXPECT_EQ(extended->max_subspace, M("B"));
  EXPECT_EQ(extended->decisive_subspaces, (std::vector<DimMask>{M("B")}));
  // The unexpanded P4P5 must NOT appear.
  EXPECT_EQ(Find(groups, {3, 4}), nullptr);
}

TEST(NonSeedExtensionTest, SplitCreatesChildAndAdjustsParentDecisives) {
  // Paper Example 7, first half: P3 shares BCD ⊇ BD with P5 → child group
  // (P3P5, BCD, {BD}); the parent keeps AB only.
  const Dataset data = Dataset::FromRows({
                                             {5, 6, 10, 7},
                                             {2, 6, 8, 3},
                                             {5, 4, 9, 3},
                                             {6, 4, 8, 5},
                                             {2, 4, 9, 3},
                                         })
                           .value();
  const SkylineGroupSet groups = Extend(data, nullptr);
  const SkylineGroup* parent = Find(groups, {4});  // P5 alone
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->max_subspace, M("ABCD"));
  EXPECT_EQ(parent->decisive_subspaces, (std::vector<DimMask>{M("AB")}));
  const SkylineGroup* child = Find(groups, {2, 4});  // P3P5
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->max_subspace, M("BCD"));
  EXPECT_EQ(child->decisive_subspaces, (std::vector<DimMask>{M("BD")}));
}

TEST(NonSeedExtensionTest, DecisiveGrowsWhenNonSeedTiesPartOfIt) {
  // Seed s = (0, 0); non-seed o = (0, 5) ties s on A (a decisive single).
  // Group {s} keeps mask AB but its decisive A must grow... o shares A, so
  // A alone no longer qualifies s exclusively: the split child is ({s,o},
  // A, {A})? No — o ties s on A, so the tie class of s at A is {s, o}:
  // child group ({s,o}, A) with decisive A; parent ({s}, AB) gets decisive
  // AB (B alone: o differs... B: 0 < 5 strictly beats o → B decisive).
  const Dataset data = Dataset::FromRows({{0, 0}, {0, 5}}).value();
  const SkylineGroupSet groups = Extend(data, nullptr);
  const SkylineGroup* parent = Find(groups, {0});
  ASSERT_NE(parent, nullptr);
  EXPECT_EQ(parent->max_subspace, M("AB"));
  EXPECT_EQ(parent->decisive_subspaces, (std::vector<DimMask>{M("B")}));
  const SkylineGroup* child = Find(groups, {0, 1});
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->max_subspace, M("A"));
  EXPECT_EQ(child->decisive_subspaces, (std::vector<DimMask>{M("A")}));
}

TEST(NonSeedExtensionTest, ChainOfSharingNonSeeds) {
  // Multiple non-seeds sharing nested masks with one seed: s = (0,0,0);
  // o1 = (0,0,9) shares AB; o2 = (0,9,9) shares A. Expect groups
  // ({s}, ABC, {C}), ({s,o1}, AB, {B}), ({s,o1,o2}, A, {A}).
  const Dataset data =
      Dataset::FromRows({{0, 0, 0}, {0, 0, 9}, {0, 9, 9}}).value();
  const SkylineGroupSet groups = Extend(data, nullptr);
  ASSERT_EQ(groups.size(), 3u);
  const SkylineGroup* root = Find(groups, {0});
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->max_subspace, M("ABC"));
  EXPECT_EQ(root->decisive_subspaces, (std::vector<DimMask>{M("C")}));
  const SkylineGroup* mid = Find(groups, {0, 1});
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->max_subspace, M("AB"));
  EXPECT_EQ(mid->decisive_subspaces, (std::vector<DimMask>{M("B")}));
  const SkylineGroup* wide = Find(groups, {0, 1, 2});
  ASSERT_NE(wide, nullptr);
  EXPECT_EQ(wide->max_subspace, M("A"));
  EXPECT_EQ(wide->decisive_subspaces, (std::vector<DimMask>{M("A")}));
}

TEST(NonSeedExtensionTest, ParallelMatchesSequential) {
  const Dataset data = Dataset::FromRows({
                                             {5, 6, 10, 7},
                                             {2, 6, 8, 3},
                                             {5, 4, 9, 3},
                                             {6, 4, 8, 5},
                                             {2, 4, 9, 3},
                                             {9, 4, 9, 3},
                                             {2, 9, 9, 3},
                                         })
                           .value();
  NonSeedExtensionStats sequential_stats;
  NonSeedExtensionStats parallel_stats;
  const SkylineGroupSet sequential = Extend(data, &sequential_stats, 1);
  const SkylineGroupSet parallel = Extend(data, &parallel_stats, 3);
  EXPECT_EQ(sequential, parallel);
  EXPECT_EQ(sequential_stats.relevant_pairs, parallel_stats.relevant_pairs);
  EXPECT_EQ(sequential_stats.derived_groups, parallel_stats.derived_groups);
}

}  // namespace
}  // namespace skycube
