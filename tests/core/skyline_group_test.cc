// Unit tests for SkylineGroup normalization, formatting and validation.
#include <string>

#include <gtest/gtest.h>

#include "core/skyline_group.h"

namespace skycube {
namespace {

SkylineGroup MakeGroup() {
  SkylineGroup group;
  group.members = {1, 4};
  group.max_subspace = MaskFromLetters("AD");
  group.decisive_subspaces = {MaskFromLetters("A")};
  group.projection = {2, 3};
  return group;
}

TEST(SkylineGroupTest, FormatMatchesPaperNotation) {
  EXPECT_EQ(FormatGroup(MakeGroup(), 4), "(P2P5, (2,*,*,3), A)");
}

TEST(SkylineGroupTest, FormatMultipleDecisives) {
  SkylineGroup group = MakeGroup();
  group.members = {1};
  group.max_subspace = MaskFromLetters("ABCD");
  group.decisive_subspaces = {MaskFromLetters("AC"), MaskFromLetters("CD")};
  group.projection = {2, 6, 8, 3};
  EXPECT_EQ(FormatGroup(group, 4), "(P2, (2,6,8,3), AC, CD)");
}

TEST(SkylineGroupTest, NormalizeSortsEverything) {
  SkylineGroup a = MakeGroup();
  SkylineGroup b = MakeGroup();
  b.members = {0};
  b.max_subspace = 0b1;
  b.projection = {7};
  b.decisive_subspaces = {0b1};
  SkylineGroupSet groups = {a, b};
  NormalizeGroups(&groups);
  EXPECT_EQ(groups[0].members, (std::vector<ObjectId>{0}));
  EXPECT_EQ(groups[1].members, (std::vector<ObjectId>{1, 4}));
}

TEST(SkylineGroupTest, WellFormedAcceptsValidGroup) {
  EXPECT_TRUE(GroupWellFormed(MakeGroup()));
}

TEST(SkylineGroupTest, WellFormedRejectsBadGroups) {
  {
    SkylineGroup group = MakeGroup();
    group.members.clear();
    EXPECT_FALSE(GroupWellFormed(group));
  }
  {
    SkylineGroup group = MakeGroup();
    group.members = {4, 1};  // unsorted
    EXPECT_FALSE(GroupWellFormed(group));
  }
  {
    SkylineGroup group = MakeGroup();
    group.members = {1, 1};  // duplicate
    EXPECT_FALSE(GroupWellFormed(group));
  }
  {
    SkylineGroup group = MakeGroup();
    group.decisive_subspaces.clear();  // a skyline group always has one
    EXPECT_FALSE(GroupWellFormed(group));
  }
  {
    SkylineGroup group = MakeGroup();
    group.decisive_subspaces = {MaskFromLetters("B")};  // outside B
    EXPECT_FALSE(GroupWellFormed(group));
  }
  {
    SkylineGroup group = MakeGroup();
    // Comparable decisives violate minimality.
    group.decisive_subspaces = {MaskFromLetters("A"), MaskFromLetters("AD")};
    EXPECT_FALSE(GroupWellFormed(group));
  }
  {
    SkylineGroup group = MakeGroup();
    group.projection = {2};  // wrong arity
    EXPECT_FALSE(GroupWellFormed(group));
  }
}

}  // namespace
}  // namespace skycube
