// Property-based cross-validation: on randomized datasets spanning the
// paper's three distributions, dimensionalities, sizes and tie densities,
// the three engines must produce the identical compressed skyline cube:
//
//   ComputeStellar == ComputeSkyey == ComputeReferenceCube
//
// plus structural invariants on every emitted group. This is the strongest
// correctness statement in the suite — Stellar's lattice-extension path and
// Skyey's subspace-search path share no algorithmic code.
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/reference.h"
#include "core/skyey.h"
#include "core/skyline_group.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "skyline/dominance.h"

namespace skycube {
namespace {

// (distribution, num_objects, num_dims, truncate_decimals, seed)
using Config = std::tuple<Distribution, size_t, int, int, uint64_t>;

class EngineEquivalenceTest : public ::testing::TestWithParam<Config> {};

Dataset MakeData(const Config& config) {
  SyntheticSpec spec;
  spec.distribution = std::get<0>(config);
  spec.num_objects = std::get<1>(config);
  spec.num_dims = std::get<2>(config);
  spec.truncate_decimals = std::get<3>(config);
  spec.seed = std::get<4>(config);
  return GenerateSynthetic(spec);
}

void CheckInvariants(const Dataset& data, const SkylineGroupSet& groups) {
  for (const SkylineGroup& group : groups) {
    ASSERT_TRUE(GroupWellFormed(group)) << FormatGroup(group, data.num_dims());
    // Members share the projection on the maximal subspace...
    for (ObjectId member : group.members) {
      EXPECT_TRUE(data.ProjectionsEqual(group.members.front(), member,
                                        group.max_subspace));
    }
    // ...and on no dimension outside it (dimension-maximality).
    DimMask shared = data.full_mask();
    for (ObjectId member : group.members) {
      shared &= data.CoincidenceMask(group.members.front(), member,
                                     data.full_mask());
    }
    EXPECT_EQ(shared, group.max_subspace);
    // Object-maximality + Theorem 4 on each decisive subspace: every
    // outside object is strictly beaten on some dimension of each C.
    for (DimMask decisive : group.decisive_subspaces) {
      size_t member_cursor = 0;
      for (ObjectId o = 0; o < data.num_objects(); ++o) {
        if (member_cursor < group.members.size() &&
            group.members[member_cursor] == o) {
          ++member_cursor;
          continue;
        }
        EXPECT_NE(data.DominanceMask(group.members.front(), o, decisive),
                  kEmptyMask)
            << "object " << o << " not beaten on decisive "
            << FormatMask(decisive) << " of "
            << FormatGroup(group, data.num_dims());
      }
    }
  }
}

TEST_P(EngineEquivalenceTest, StellarEqualsSkyeyEqualsReference) {
  const Dataset data = MakeData(GetParam());
  const SkylineGroupSet stellar = ComputeStellar(data);
  const SkylineGroupSet skyey = ComputeSkyey(data);
  ASSERT_EQ(stellar, skyey) << "Stellar:\n"
                            << FormatGroups(stellar, data.num_dims())
                            << "Skyey:\n"
                            << FormatGroups(skyey, data.num_dims());
  const SkylineGroupSet reference = ComputeReferenceCube(data);
  ASSERT_EQ(stellar, reference)
      << "Stellar:\n"
      << FormatGroups(stellar, data.num_dims()) << "Reference:\n"
      << FormatGroups(reference, data.num_dims());
  CheckInvariants(data, stellar);
}

std::string ConfigName(const ::testing::TestParamInfo<Config>& info) {
  std::string name = DistributionName(std::get<0>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  name += "_n" + std::to_string(std::get<1>(info.param));
  name += "_d" + std::to_string(std::get<2>(info.param));
  name += "_t" + std::to_string(std::get<3>(info.param));
  name += "_s" + std::to_string(std::get<4>(info.param));
  return name;
}

// Heavy ties (1 decimal digit) stress the grouping machinery; 4 digits is
// the paper's setting; untruncated data (-1 → here encoded 9) has almost no
// ties, stressing the singleton paths.
INSTANTIATE_TEST_SUITE_P(
    Distributions, EngineEquivalenceTest,
    ::testing::Combine(::testing::Values(Distribution::kIndependent,
                                         Distribution::kCorrelated,
                                         Distribution::kAntiCorrelated),
                       ::testing::Values(size_t{60}, size_t{250}),
                       ::testing::Values(2, 3, 5),
                       ::testing::Values(1, 4),
                       ::testing::Values(uint64_t{7}, uint64_t{20260704})),
    ConfigName);

// Tiny exhaustive corner: very heavy coincidence, all values from {0, 1}.
TEST(EngineEquivalenceCorner, BinaryValuesManyDuplicates) {
  Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    std::vector<std::vector<double>> rows;
    const int d = 2 + static_cast<int>(rng.NextBounded(3));
    const size_t n = 4 + rng.NextBounded(28);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> row(d);
      for (int j = 0; j < d; ++j) {
        row[j] = static_cast<double>(rng.NextBounded(2));
      }
      rows.push_back(std::move(row));
    }
    const Dataset data = Dataset::FromRows(std::move(rows)).value();
    const SkylineGroupSet stellar = ComputeStellar(data);
    ASSERT_EQ(stellar, ComputeSkyey(data)) << "round " << round;
    ASSERT_EQ(stellar, ComputeReferenceCube(data)) << "round " << round;
  }
}

// Duplicate rows must be bound together: every duplicate appears in exactly
// the groups of its twin.
TEST(EngineEquivalenceCorner, ExplicitDuplicates) {
  const Dataset data = Dataset::FromRows({
                                             {1, 5, 3},
                                             {2, 2, 2},
                                             {1, 5, 3},  // dup of row 0
                                             {3, 1, 4},
                                             {2, 2, 2},  // dup of row 1
                                             {1, 5, 3},  // dup of row 0
                                         })
                           .value();
  const SkylineGroupSet stellar = ComputeStellar(data);
  ASSERT_EQ(stellar, ComputeSkyey(data));
  ASSERT_EQ(stellar, ComputeReferenceCube(data));
  for (const SkylineGroup& group : stellar) {
    const bool has0 = std::count(group.members.begin(), group.members.end(), 0);
    const bool has2 = std::count(group.members.begin(), group.members.end(), 2);
    const bool has5 = std::count(group.members.begin(), group.members.end(), 5);
    EXPECT_TRUE(has0 == has2 && has2 == has5)
        << FormatGroup(group, data.num_dims());
    const bool has1 = std::count(group.members.begin(), group.members.end(), 1);
    const bool has4 = std::count(group.members.begin(), group.members.end(), 4);
    EXPECT_EQ(has1, has4) << FormatGroup(group, data.num_dims());
  }
}

// Single-object and single-dimension degenerate inputs.
TEST(EngineEquivalenceCorner, DegenerateInputs) {
  {
    const Dataset data = Dataset::FromRows({{3, 1, 4}}).value();
    const SkylineGroupSet groups = ComputeStellar(data);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].members, (std::vector<ObjectId>{0}));
    EXPECT_EQ(groups[0].max_subspace, FullMask(3));
    // No opposing object: every single dimension is decisive.
    EXPECT_EQ(groups[0].decisive_subspaces,
              (std::vector<DimMask>{0b001, 0b010, 0b100}));
    EXPECT_EQ(groups, ComputeSkyey(data));
    EXPECT_EQ(groups, ComputeReferenceCube(data));
  }
  {
    const Dataset data = Dataset::FromRows({{3}, {1}, {4}, {1}}).value();
    const SkylineGroupSet groups = ComputeStellar(data);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].members, (std::vector<ObjectId>{1, 3}));
    EXPECT_EQ(groups[0].decisive_subspaces, (std::vector<DimMask>{0b1}));
    EXPECT_EQ(groups, ComputeSkyey(data));
    EXPECT_EQ(groups, ComputeReferenceCube(data));
  }
}

}  // namespace
}  // namespace skycube
