// Direct unit tests for seed-lattice construction (Stellar steps 2–4),
// independent of the full pipeline.
#include <vector>

#include <gtest/gtest.h>

#include "core/pairwise_masks.h"
#include "core/seed_lattice.h"
#include "dataset/dataset.h"

namespace skycube {
namespace {

DimMask M(const char* letters) { return MaskFromLetters(letters); }

// The seeds of the paper's running example: P2, P4, P5.
Dataset Seeds() {
  return Dataset::FromRows({
                               {2, 6, 8, 3},  // P2 → index 0
                               {6, 4, 8, 5},  // P4 → index 1
                               {2, 4, 9, 3},  // P5 → index 2
                           })
      .value();
}

const SeedSkylineGroup* FindGroup(const std::vector<SeedSkylineGroup>& groups,
                                  std::vector<uint32_t> indices) {
  for (const SeedSkylineGroup& group : groups) {
    if (group.seed_indices == indices) return &group;
  }
  return nullptr;
}

TEST(SeedLatticeTest, RunningExampleFigure3a) {
  const Dataset data = Seeds();
  PairwiseMasks masks(data, {0, 1, 2}, data.full_mask(), true);
  SeedLatticeStats stats;
  const std::vector<SeedSkylineGroup> groups =
      BuildSeedSkylineGroups(masks, &stats);
  EXPECT_EQ(stats.num_maximal_cgroups, 6u);
  EXPECT_EQ(stats.num_seed_skyline_groups, 6u);

  const SeedSkylineGroup* p2 = FindGroup(groups, {0});
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2->max_subspace, M("ABCD"));
  EXPECT_EQ(p2->decisive, (std::vector<DimMask>{M("AC"), M("CD")}));
  // Reduced edges of P2: {AD, C} (minimal, deduped).
  EXPECT_EQ(p2->reduced_edges, (std::vector<DimMask>{M("C"), M("AD")}));

  const SeedSkylineGroup* p4 = FindGroup(groups, {1});
  ASSERT_NE(p4, nullptr);
  EXPECT_EQ(p4->decisive, (std::vector<DimMask>{M("BC")}));

  const SeedSkylineGroup* p5 = FindGroup(groups, {2});
  ASSERT_NE(p5, nullptr);
  EXPECT_EQ(p5->decisive, (std::vector<DimMask>{M("AB"), M("BD")}));

  const SeedSkylineGroup* p2p5 = FindGroup(groups, {0, 2});
  ASSERT_NE(p2p5, nullptr);
  EXPECT_EQ(p2p5->max_subspace, M("AD"));
  EXPECT_EQ(p2p5->decisive, (std::vector<DimMask>{M("A"), M("D")}));

  const SeedSkylineGroup* p2p4 = FindGroup(groups, {0, 1});
  ASSERT_NE(p2p4, nullptr);
  EXPECT_EQ(p2p4->decisive, (std::vector<DimMask>{M("C")}));

  const SeedSkylineGroup* p4p5 = FindGroup(groups, {1, 2});
  ASSERT_NE(p4p5, nullptr);
  EXPECT_EQ(p4p5->decisive, (std::vector<DimMask>{M("B")}));
}

TEST(SeedLatticeTest, NonSkylineCGroupIsDropped) {
  // Three objects; a and b share dimension A with value 5, but c has A=1
  // and dominates the shared projection in subspace A... c=(1, …) strictly
  // smaller on A: the c-group ({a,b}, A) has an empty dominance edge
  // against c and must be dropped, while singletons survive.
  const Dataset data = Dataset::FromRows({
                                             {5, 1, 9},  // a
                                             {5, 9, 1},  // b
                                             {1, 5, 5},  // c
                                         })
                           .value();
  // All three are full-space skyline objects.
  PairwiseMasks masks(data, {0, 1, 2}, data.full_mask(), true);
  SeedLatticeStats stats;
  const std::vector<SeedSkylineGroup> groups =
      BuildSeedSkylineGroups(masks, &stats);
  EXPECT_EQ(stats.num_maximal_cgroups, 4u);       // 3 singletons + {a,b}
  EXPECT_EQ(stats.num_seed_skyline_groups, 3u);   // {a,b} dropped
  EXPECT_EQ(FindGroup(groups, {0, 1}), nullptr);
  EXPECT_NE(FindGroup(groups, {0}), nullptr);
  EXPECT_NE(FindGroup(groups, {1}), nullptr);
  EXPECT_NE(FindGroup(groups, {2}), nullptr);
}

TEST(SeedLatticeTest, SingleSeedGetsSingletonDecisives) {
  const Dataset data = Dataset::FromRows({{1, 2, 3}}).value();
  PairwiseMasks masks(data, {0}, data.full_mask(), true);
  const std::vector<SeedSkylineGroup> groups = BuildSeedSkylineGroups(masks);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(groups[0].reduced_edges.empty());
  EXPECT_EQ(groups[0].decisive,
            (std::vector<DimMask>{0b001, 0b010, 0b100}));
}

TEST(SeedLatticeTest, DecisiveFromEdgesConventions) {
  // Regular case: transversals.
  EXPECT_EQ(DecisiveFromEdges({0b011, 0b110}, 0b111),
            (std::vector<DimMask>{0b010, 0b101}));
  // Empty edge set → all singletons of b.
  EXPECT_EQ(DecisiveFromEdges({}, 0b101),
            (std::vector<DimMask>{0b001, 0b100}));
}

TEST(SeedLatticeTest, ParallelMatchesSequential) {
  // Deterministic output independent of thread count.
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 60; ++i) {
    rows.push_back({static_cast<double>(i % 5), static_cast<double>(i % 7),
                    static_cast<double>((i * 3) % 5),
                    static_cast<double>((i * 7) % 11)});
  }
  const Dataset data = Dataset::FromRows(std::move(rows)).value();
  // Use every object as a "seed" (the lattice code does not require the
  // seed set to be a real skyline for its own invariants).
  std::vector<ObjectId> all;
  for (ObjectId i = 0; i < data.num_objects(); ++i) all.push_back(i);
  PairwiseMasks masks(data, all, data.full_mask(), true);
  const auto sequential = BuildSeedSkylineGroups(masks, nullptr, 1);
  const auto parallel = BuildSeedSkylineGroups(masks, nullptr, 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].seed_indices, parallel[i].seed_indices);
    EXPECT_EQ(sequential[i].max_subspace, parallel[i].max_subspace);
    EXPECT_EQ(sequential[i].decisive, parallel[i].decisive);
    EXPECT_EQ(sequential[i].reduced_edges, parallel[i].reduced_edges);
  }
}

}  // namespace
}  // namespace skycube
