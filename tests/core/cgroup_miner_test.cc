// Tests for the maximal c-group miner (paper Figure 6 / Example 8).
#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/cgroup_miner.h"
#include "core/pairwise_masks.h"
#include "dataset/dataset.h"

namespace skycube {
namespace {

std::vector<MaximalCGroup> Sorted(std::vector<MaximalCGroup> groups) {
  std::sort(groups.begin(), groups.end(),
            [](const MaximalCGroup& a, const MaximalCGroup& b) {
              if (a.member_indices != b.member_indices) {
                return a.member_indices < b.member_indices;
              }
              return a.subspace < b.subspace;
            });
  return groups;
}

void ExpectSameGroups(const std::vector<MaximalCGroup>& a,
                      const std::vector<MaximalCGroup>& b) {
  auto sa = Sorted(a);
  auto sb = Sorted(b);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].member_indices, sb[i].member_indices) << "group " << i;
    EXPECT_EQ(sa[i].subspace, sb[i].subspace) << "group " << i;
  }
}

TEST(CGroupMinerTest, RunningExampleSeedGroups) {
  // Seeds P2, P4, P5 of the running example (Figure 2).
  const Dataset data = Dataset::FromRows({
                                             {2, 6, 8, 3},  // P2
                                             {6, 4, 8, 5},  // P4
                                             {2, 4, 9, 3},  // P5
                                         })
                           .value();
  PairwiseMasks masks(data, {0, 1, 2}, data.full_mask(), true);
  std::vector<MaximalCGroup> groups = Sorted(MineMaximalCGroups(masks));
  ASSERT_EQ(groups.size(), 6u);
  // Singletons in the full space.
  EXPECT_EQ(groups[0].member_indices, (std::vector<uint32_t>{0}));
  EXPECT_EQ(groups[0].subspace, MaskFromLetters("ABCD"));
  // P2P4 share C; P2P5 share AD; P4P5 share B.
  EXPECT_EQ(groups[1].member_indices, (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(groups[1].subspace, MaskFromLetters("C"));
  EXPECT_EQ(groups[2].member_indices, (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(groups[2].subspace, MaskFromLetters("AD"));
  EXPECT_EQ(groups[3].member_indices, (std::vector<uint32_t>{1}));
  EXPECT_EQ(groups[4].member_indices, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(groups[4].subspace, MaskFromLetters("B"));
  EXPECT_EQ(groups[5].member_indices, (std::vector<uint32_t>{2}));
}

TEST(CGroupMinerTest, Example8CoincidenceStructure) {
  // Example 8's coincidence matrix fragment, realized as concrete rows over
  // ABCD: co(o1,o2)=ACD, co(o1,o3)=B, co(o1,o4)=ABCD ... — o4 must equal o1
  // everywhere, i.e. be a duplicate. The expected maximal c-groups with o1
  // per the example: o1o2o4 (ACD), o1o2o4o5 (CD), o1o3o4 (B), o1o4 (ABCD);
  // o1o5 (CD) is NOT maximal.
  const Dataset data = Dataset::FromRows({
                                             {1, 2, 3, 4},  // o1
                                             {1, 5, 3, 4},  // o2: ACD with o1
                                             {9, 2, 8, 7},  // o3: B with o1
                                             {1, 2, 3, 4},  // o4 = o1
                                             {6, 7, 3, 4},  // o5: CD with o1
                                         })
                           .value();
  PairwiseMasks masks(data, {0, 1, 2, 3, 4}, data.full_mask(), true);
  std::vector<MaximalCGroup> groups = MineMaximalCGroups(masks);
  ExpectSameGroups(groups, MineMaximalCGroupsBruteForce(masks));
  std::set<std::pair<std::vector<uint32_t>, DimMask>> found;
  for (const MaximalCGroup& group : groups) {
    found.insert({group.member_indices, group.subspace});
  }
  EXPECT_TRUE(found.count({{0, 1, 3}, MaskFromLetters("ACD")}));
  EXPECT_TRUE(found.count({{0, 1, 3, 4}, MaskFromLetters("CD")}));
  EXPECT_TRUE(found.count({{0, 2, 3}, MaskFromLetters("B")}));
  EXPECT_TRUE(found.count({{0, 3}, MaskFromLetters("ABCD")}));
  // o1o5 alone is not maximal (o2, o4 also share CD).
  EXPECT_FALSE(found.count({{0, 4}, MaskFromLetters("CD")}));
}

TEST(CGroupMinerTest, NoSharingYieldsOnlySingletons) {
  const Dataset data = Dataset::FromRows({
                                             {1, 10},
                                             {2, 20},
                                             {3, 30},
                                         })
                           .value();
  PairwiseMasks masks(data, {0, 1, 2}, data.full_mask(), true);
  std::vector<MaximalCGroup> groups = Sorted(MineMaximalCGroups(masks));
  ASSERT_EQ(groups.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(groups[i].member_indices, (std::vector<uint32_t>{(uint32_t)i}));
    EXPECT_EQ(groups[i].subspace, data.full_mask());
  }
}

TEST(CGroupMinerTest, EmitsEachGroupExactlyOnce) {
  Rng rng(5);
  for (int round = 0; round < 60; ++round) {
    const int n = 2 + static_cast<int>(rng.NextBounded(11));
    const int d = 1 + static_cast<int>(rng.NextBounded(5));
    std::vector<std::vector<double>> rows;
    for (int i = 0; i < n; ++i) {
      std::vector<double> row(d);
      for (int j = 0; j < d; ++j) {
        row[j] = static_cast<double>(rng.NextBounded(3));
      }
      rows.push_back(std::move(row));
    }
    const Dataset data = Dataset::FromRows(std::move(rows)).value();
    std::vector<ObjectId> all(n);
    for (int i = 0; i < n; ++i) all[i] = i;
    PairwiseMasks masks(data, all, data.full_mask(), true);
    std::vector<MaximalCGroup> groups = Sorted(MineMaximalCGroups(masks));
    for (size_t i = 1; i < groups.size(); ++i) {
      EXPECT_FALSE(groups[i - 1].member_indices == groups[i].member_indices &&
                   groups[i - 1].subspace == groups[i].subspace)
          << "duplicate group in round " << round;
    }
    ExpectSameGroups(groups, MineMaximalCGroupsBruteForce(masks));
  }
}

TEST(CGroupMinerTest, LazyAndMaterializedMasksAgree) {
  const Dataset data = Dataset::FromRows({
                                             {1, 2, 3},
                                             {1, 5, 3},
                                             {4, 2, 3},
                                             {1, 2, 9},
                                         })
                           .value();
  PairwiseMasks dense(data, {0, 1, 2, 3}, data.full_mask(), true);
  PairwiseMasks lazy(data, {0, 1, 2, 3}, data.full_mask(), false);
  EXPECT_TRUE(dense.materialized());
  EXPECT_FALSE(lazy.materialized());
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(dense.Dominance(i, j), lazy.Dominance(i, j));
      EXPECT_EQ(dense.Coincidence(i, j), lazy.Coincidence(i, j));
    }
  }
  ExpectSameGroups(MineMaximalCGroups(dense), MineMaximalCGroups(lazy));
}

}  // namespace
}  // namespace skycube
