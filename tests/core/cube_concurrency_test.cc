// CompressedSkylineCube is immutable after construction, so any number of
// threads may issue Q1/Q2/Q3 queries against one instance concurrently.
// This test hammers all three query classes from several threads and checks
// every answer against a single-threaded baseline; run it under
// -DSKYCUBE_SANITIZE=thread to prove the const query path is data-race
// free.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/subspace.h"
#include "core/cube.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"

namespace skycube {
namespace {

Dataset MakeData(Distribution distribution, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = distribution;
  spec.num_dims = dims;
  spec.num_objects = 250;
  spec.seed = seed;
  spec.truncate_decimals = 2;
  return GenerateSynthetic(spec);
}

TEST(CubeConcurrencyTest, ReaderStormMatchesSingleThreadedBaseline) {
  const Dataset data = MakeData(Distribution::kIndependent, 5, 7);
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   ComputeStellar(data));

  // Single-threaded baseline for every subspace / object the storm uses.
  const DimMask full = data.full_mask();
  std::vector<std::vector<ObjectId>> baseline_skyline(full + 1);
  for (DimMask subspace = 1; subspace <= full; ++subspace) {
    baseline_skyline[subspace] = cube.SubspaceSkyline(subspace);
  }
  std::vector<uint64_t> baseline_count(data.num_objects());
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    baseline_count[id] = cube.CountSubspacesWhereSkyline(id);
  }
  const uint64_t baseline_total = cube.TotalSubspaceSkylineObjects();

  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 2000;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const DimMask subspace =
            static_cast<DimMask>(1 + rng.NextBounded(full));
        const ObjectId object =
            static_cast<ObjectId>(rng.NextBounded(data.num_objects()));
        switch (rng.NextBounded(5)) {
          case 0:  // Q1: full skyline
            if (cube.SubspaceSkyline(subspace) !=
                baseline_skyline[subspace]) {
              ++mismatches;
            }
            break;
          case 1:  // Q1: cardinality
            if (cube.SkylineCardinality(subspace) !=
                baseline_skyline[subspace].size()) {
              ++mismatches;
            }
            break;
          case 2: {  // Q2: membership
            const std::vector<ObjectId>& expected =
                baseline_skyline[subspace];
            const bool in_baseline =
                std::binary_search(expected.begin(), expected.end(), object);
            if (cube.IsInSubspaceSkyline(object, subspace) != in_baseline) {
              ++mismatches;
            }
            break;
          }
          case 3:  // Q3: per-object count
            if (cube.CountSubspacesWhereSkyline(object) !=
                baseline_count[object]) {
              ++mismatches;
            }
            break;
          default:  // Q3: skycube size
            if (cube.TotalSubspaceSkylineObjects() != baseline_total) {
              ++mismatches;
            }
            break;
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(CubeConcurrencyTest, ConcurrentMembershipIntervalQueries) {
  // MembershipIntervals and SubspacesWhereSkyline share groups_of_object_;
  // exercise them concurrently too (smaller data — enumeration is pricier).
  const Dataset data = MakeData(Distribution::kAntiCorrelated, 4, 11);
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   ComputeStellar(data));
  std::vector<std::vector<DimMask>> baseline(data.num_objects());
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    baseline[id] = cube.SubspacesWhereSkyline(id);
  }

  constexpr int kThreads = 6;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(77 + static_cast<uint64_t>(t));
      for (int i = 0; i < 300; ++i) {
        const ObjectId object =
            static_cast<ObjectId>(rng.NextBounded(data.num_objects()));
        if (cube.SubspacesWhereSkyline(object) != baseline[object]) {
          ++mismatches;
        }
        if (cube.CountSubspacesWhereSkyline(object) !=
            baseline[object].size()) {
          ++mismatches;
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace skycube
