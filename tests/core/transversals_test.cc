// Unit and property tests for minimal-transversal computation (the engine
// behind decisive subspaces, Corollary 1).
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/transversals.h"

namespace skycube {
namespace {

TEST(ReduceEdgesTest, RemovesSupersetsAndDuplicates) {
  EXPECT_EQ(ReduceEdges({0b011, 0b001, 0b111, 0b001}),
            (std::vector<DimMask>{0b001}));
  EXPECT_EQ(ReduceEdges({0b011, 0b101}),
            (std::vector<DimMask>{0b011, 0b101}));
  EXPECT_TRUE(ReduceEdges({}).empty());
}

TEST(ReduceEdgesTest, EmptyEdgeSwallowsEverything) {
  EXPECT_EQ(ReduceEdges({0b011, 0, 0b101}), (std::vector<DimMask>{0}));
}

TEST(MinimalTransversalsTest, PaperExample5) {
  // P2's decisive subspaces: edges {AD, C} → (A∨D)∧C → AC, CD.
  const DimMask kA = 0b0001, kC = 0b0100, kD = 0b1000;
  EXPECT_EQ(MinimalTransversals({kA | kD, kC}, 0b1111),
            (std::vector<DimMask>{kA | kC, kC | kD}));
}

TEST(MinimalTransversalsTest, SingleEdgeYieldsSingletons) {
  EXPECT_EQ(MinimalTransversals({0b1011}, 0b1111),
            (std::vector<DimMask>{0b0001, 0b0010, 0b1000}));
}

TEST(MinimalTransversalsTest, EmptyEdgeMeansNoTransversal) {
  EXPECT_TRUE(MinimalTransversals({0b01, 0}, 0b11).empty());
}

TEST(MinimalTransversalsTest, NoEdgesMeansEmptyTransversal) {
  EXPECT_EQ(MinimalTransversals({}, 0b11),
            (std::vector<DimMask>{kEmptyMask}));
}

TEST(MinimalTransversalsTest, DisjointEdgesMultiply) {
  // {AB, CD} → transversals {AC, AD, BC, BD}.
  std::vector<DimMask> result = MinimalTransversals({0b0011, 0b1100}, 0b1111);
  EXPECT_EQ(result, (std::vector<DimMask>{0b0101, 0b0110, 0b1001, 0b1010}));
}

TEST(MinimalTransversalsTest, IdenticalSingletonEdges) {
  EXPECT_EQ(MinimalTransversals({0b010, 0b010, 0b010}, 0b111),
            (std::vector<DimMask>{0b010}));
}

// Brute-force transversal checker: enumerate all subsets of the universe.
std::vector<DimMask> BruteForceTransversals(const std::vector<DimMask>& edges,
                                            DimMask universe) {
  std::vector<DimMask> hits;
  // Enumerates the subsets of `universe` ascending: (s − u) & u steps to the
  // next subset; the loop ends after visiting `universe` itself.
  for (DimMask candidate = 0;;
       candidate = (candidate - universe) & universe) {
    bool all_hit = true;
    for (DimMask edge : edges) {
      if ((candidate & edge) == 0) {
        all_hit = false;
        break;
      }
    }
    if (all_hit) hits.push_back(candidate);
    if (candidate == universe) break;
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  return MinimalMasks(std::move(hits));
}

TEST(MinimalTransversalsTest, RandomHypergraphsMatchBruteForce) {
  Rng rng(31);
  for (int round = 0; round < 200; ++round) {
    const int dims = 1 + static_cast<int>(rng.NextBounded(7));
    const DimMask universe = FullMask(dims);
    const size_t num_edges = rng.NextBounded(8);
    std::vector<DimMask> edges;
    for (size_t e = 0; e < num_edges; ++e) {
      edges.push_back(rng.NextBounded(universe + 1));  // may include ∅
    }
    const bool has_empty_edge =
        std::count(edges.begin(), edges.end(), kEmptyMask) > 0;
    std::vector<DimMask> got = MinimalTransversals(edges, universe);
    if (has_empty_edge) {
      EXPECT_TRUE(got.empty()) << "round " << round;
      continue;
    }
    EXPECT_EQ(got, BruteForceTransversals(edges, universe))
        << "round " << round;
  }
}

TEST(MinimalTransversalsTest, OutputsArePairwiseIncomparable) {
  Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    const DimMask universe = FullMask(6);
    std::vector<DimMask> edges;
    for (int e = 0; e < 5; ++e) {
      edges.push_back(1 + rng.NextBounded(universe));  // non-empty
    }
    std::vector<DimMask> result = MinimalTransversals(edges, universe);
    ASSERT_FALSE(result.empty());
    for (size_t i = 0; i < result.size(); ++i) {
      for (size_t j = 0; j < result.size(); ++j) {
        if (i != j) {
          EXPECT_FALSE(IsSubsetOf(result[i], result[j]));
        }
      }
    }
  }
}

}  // namespace
}  // namespace skycube
