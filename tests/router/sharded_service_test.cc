// ShardedSkycubeService oracle tests: the in-process sharded tier against
// a single-node SkycubeService over the same rows. Merged answers must be
// byte-identical for every query kind at 1/2/4/8 shards, before and after
// inserts, with caches hot and cold. Degradation (SetShardDown) must set
// the partial flag, never produce an unflagged wrong answer, answer
// partial queries with exactly the survivor skyline, and reject inserts
// whose owner shard is down.
#include "router/sharded_service.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/subspace.h"
#include "skyline/algorithms.h"
#include "core/cube.h"
#include "core/maintenance.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "service/ingest.h"
#include "service/request.h"
#include "service/service.h"

namespace skycube::router {
namespace {

Dataset MakeData(size_t objects, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_dims = dims;
  spec.num_objects = objects;
  spec.seed = seed;
  spec.truncate_decimals = 2;
  return GenerateSynthetic(spec);
}

/// Single-node ground truth with the same maintainer-backed insert path.
struct SingleNode {
  explicit SingleNode(Dataset data)
      : maintainer(std::make_unique<IncrementalCubeMaintainer>(
            std::move(data))),
        handler(std::make_unique<MaintainerInsertHandler>(maintainer.get())),
        service(std::make_unique<SkycubeService>(
            std::make_shared<const CompressedSkylineCube>(
                maintainer->MakeCube()))) {
    service->AttachInsertHandler(handler.get());
  }

  std::unique_ptr<IncrementalCubeMaintainer> maintainer;
  std::unique_ptr<MaintainerInsertHandler> handler;
  std::unique_ptr<SkycubeService> service;
};

/// Asserts every query kind answers identically through both tiers.
void ExpectOracleIdentical(ShardedSkycubeService& sharded,
                           SkycubeService& single, int dims) {
  const DimMask full = FullMask(dims);
  for (DimMask mask = 1; mask <= full; ++mask) {
    const QueryResponse got =
        sharded.Execute(QueryRequest::SubspaceSkyline(mask));
    const QueryResponse want =
        single.Execute(QueryRequest::SubspaceSkyline(mask));
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_TRUE(want.ok) << want.error;
    EXPECT_FALSE(got.partial);
    ASSERT_NE(got.ids, nullptr);
    ASSERT_NE(want.ids, nullptr);
    ASSERT_EQ(*got.ids, *want.ids) << "skyline mask " << mask;

    const QueryResponse got_card =
        sharded.Execute(QueryRequest::SkylineCardinality(mask));
    ASSERT_TRUE(got_card.ok) << got_card.error;
    EXPECT_EQ(got_card.count, want.ids->size()) << "cardinality " << mask;
  }
  const ObjectId total = sharded.topology().total_rows();
  for (ObjectId object = 0; object < total; object += 7) {
    const QueryResponse got =
        sharded.Execute(QueryRequest::Membership(object, full));
    const QueryResponse want =
        single.Execute(QueryRequest::Membership(object, full));
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_EQ(got.member, want.member) << "membership " << object;
  }
  for (ObjectId object = 0; object < total; object += 41) {
    const QueryResponse got =
        sharded.Execute(QueryRequest::MembershipCount(object));
    const QueryResponse want =
        single.Execute(QueryRequest::MembershipCount(object));
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_EQ(got.count, want.count) << "membership count " << object;
  }
  const QueryResponse got_size = sharded.Execute(QueryRequest::SkycubeSize());
  const QueryResponse want_size = single.Execute(QueryRequest::SkycubeSize());
  ASSERT_TRUE(got_size.ok) << got_size.error;
  EXPECT_EQ(got_size.count, want_size.count);
}

TEST(ShardedSkycubeService, OracleIdenticalAcrossShardCounts) {
  const int dims = 4;
  for (const size_t num_shards : {1u, 2u, 4u, 8u}) {
    SingleNode single(MakeData(300, dims, 13));
    ShardedServiceOptions options;
    options.num_shards = num_shards;
    ShardedSkycubeService sharded(MakeData(300, dims, 13), options);
    ASSERT_EQ(sharded.num_shards(), num_shards);
    ExpectOracleIdentical(sharded, *single.service, dims);
  }
}

TEST(ShardedSkycubeService, InsertsStayOracleIdentical) {
  const int dims = 4;
  SingleNode single(MakeData(200, dims, 21));
  ShardedServiceOptions options;
  options.num_shards = 3;
  ShardedSkycubeService sharded(MakeData(200, dims, 21), options);

  for (int i = 0; i < 20; ++i) {
    std::vector<double> values;
    for (int d = 0; d < dims; ++d) {
      values.push_back(0.27 + 0.013 * i + 0.005 * d);
    }
    const QueryResponse got = sharded.Execute(QueryRequest::Insert(values));
    const QueryResponse want =
        single.service->Execute(QueryRequest::Insert(values));
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_TRUE(want.ok) << want.error;
    EXPECT_EQ(got.count, static_cast<uint64_t>(200 + i + 1));
  }
  ASSERT_EQ(sharded.topology().total_rows(), 220u);
  ExpectOracleIdentical(sharded, *single.service, dims);
}

TEST(ShardedSkycubeService, SecondPassRunsOnShardCaches) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  ShardedSkycubeService sharded(MakeData(150, 3, 5), options);
  const QueryRequest request = QueryRequest::SubspaceSkyline(0b111);
  const QueryResponse cold = sharded.Execute(request);
  ASSERT_TRUE(cold.ok);
  EXPECT_FALSE(cold.cache_hit);
  const QueryResponse warm = sharded.Execute(request);
  ASSERT_TRUE(warm.ok);
  // A merged answer is a cache hit only when EVERY shard answered from its
  // cache — the honest aggregate.
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_NE(warm.ids, nullptr);
  EXPECT_EQ(*warm.ids, *cold.ids);
}

TEST(ShardedSkycubeService, DownShardDegradesToFlaggedSurvivorAnswers) {
  const int dims = 4;
  const Dataset data = MakeData(260, dims, 31);
  ShardedServiceOptions options;
  options.num_shards = 3;
  ShardedSkycubeService sharded(data, options);
  const DimMask full = FullMask(dims);
  const size_t down_shard = 1;

  // Ground truth for the degraded answers: a single-node service over only
  // the surviving shards' rows, ids translated back to global.
  std::vector<ObjectId> survivors;
  Dataset survivor_data(dims);
  for (ObjectId gid = 0; gid < data.num_objects(); ++gid) {
    if (sharded.topology().OwnerOf(gid) == down_shard) continue;
    survivors.push_back(gid);
    const double* row = data.Row(gid);
    survivor_data.AddRow(std::vector<double>(row, row + dims));
  }
  SingleNode survivor_oracle(std::move(survivor_data));

  sharded.SetShardDown(down_shard, true);
  for (DimMask mask = 1; mask <= full; ++mask) {
    const QueryResponse got =
        sharded.Execute(QueryRequest::SubspaceSkyline(mask));
    ASSERT_TRUE(got.ok) << got.error;
    // Every answer with a shard down must carry the partial flag — an
    // unflagged answer would be a silent wrong answer.
    ASSERT_TRUE(got.partial) << "mask " << mask;
    const QueryResponse want = survivor_oracle.service->Execute(
        QueryRequest::SubspaceSkyline(mask));
    ASSERT_TRUE(want.ok);
    std::vector<ObjectId> expected;
    expected.reserve(want.ids->size());
    for (const ObjectId local : *want.ids) {
      expected.push_back(survivors[local]);
    }
    ASSERT_EQ(*got.ids, expected) << "survivor skyline mask " << mask;
  }

  // Membership still answers for a row owned by the down shard (the
  // topology holds its values); the answer is against the reachable rows.
  ObjectId victim_row = 0;
  while (sharded.topology().OwnerOf(victim_row) != down_shard) ++victim_row;
  const QueryResponse member =
      sharded.Execute(QueryRequest::Membership(victim_row, full));
  ASSERT_TRUE(member.ok) << member.error;
  EXPECT_TRUE(member.partial);

  // An insert whose owner shard is down must be rejected loudly — never
  // applied partially, never silently dropped. Mark exactly the owner of
  // the next global id as down.
  sharded.SetShardDown(down_shard, false);
  const ObjectId next_gid = sharded.topology().total_rows();
  const size_t owner = sharded.topology().OwnerOf(next_gid);
  sharded.SetShardDown(owner, true);
  const QueryResponse insert = sharded.Execute(
      QueryRequest::Insert(std::vector<double>(dims, 0.5)));
  EXPECT_FALSE(insert.ok);
  EXPECT_EQ(insert.code, StatusCode::kUnavailable);
  EXPECT_EQ(sharded.topology().total_rows(), next_gid);

  // Revival: full, unflagged answers again.
  sharded.SetShardDown(owner, false);
  SingleNode single(MakeData(260, dims, 31));
  ExpectOracleIdentical(sharded, *single.service, dims);
}

// --- Epoch-diff oracle ---------------------------------------------------

/// Independent mirror of the router's epoch model: every row ever appended
/// (gid order), with the epochs it was born and (optionally) died at. The
/// expected diff is recomputed from scratch with ComputeSkylineAmong —
/// brute force against the router's stamp-reconstruction path.
struct EpochOracle {
  explicit EpochOracle(const Dataset& bootstrap) : rows(bootstrap) {
    born.assign(bootstrap.num_objects(), 1);
    died.assign(bootstrap.num_objects(), 0);
  }

  void Insert(const std::vector<double>& values) {
    rows.AddRow(values);
    born.push_back(++epoch);
    died.push_back(0);
  }

  void Delete(ObjectId gid) { died[gid] = ++epoch; }

  bool LiveAt(ObjectId gid, uint64_t at) const {
    return born[gid] <= at && (died[gid] == 0 || died[gid] > at);
  }

  /// Expected (entered, left) for Sky(mask) between epochs `since` and now,
  /// restricted to rows `keep` accepts (shard-degradation filter).
  std::pair<std::vector<ObjectId>, std::vector<ObjectId>> Diff(
      DimMask mask, uint64_t since,
      const std::function<bool(ObjectId)>& keep) const {
    std::vector<ObjectId> now_live, was_live;
    for (ObjectId gid = 0; gid < rows.num_objects(); ++gid) {
      if (keep && !keep(gid)) continue;
      if (died[gid] == 0) now_live.push_back(gid);
      if (LiveAt(gid, since)) was_live.push_back(gid);
    }
    const std::vector<ObjectId> current =
        ComputeSkylineAmong(rows, mask, now_live);
    const std::vector<ObjectId> historical =
        ComputeSkylineAmong(rows, mask, was_live);
    std::vector<ObjectId> entered, left;
    std::set_difference(current.begin(), current.end(), historical.begin(),
                        historical.end(), std::back_inserter(entered));
    std::set_difference(historical.begin(), historical.end(),
                        current.begin(), current.end(),
                        std::back_inserter(left));
    return {std::move(entered), std::move(left)};
  }

  Dataset rows;
  std::vector<uint64_t> born, died;
  uint64_t epoch = 1;
};

/// Runs a deterministic mutation mix and checks every epoch-diff answer
/// against the oracle at several depths and subspaces.
void RunEpochDiffOracle(size_t num_shards, uint64_t seed) {
  const int dims = 4;
  const Dataset data = MakeData(150, dims, seed);
  ShardedServiceOptions options;
  options.num_shards = num_shards;
  ShardedSkycubeService sharded(data, options);
  EpochOracle oracle(data);

  Rng rng(seed * 7 + 1);
  for (int i = 0; i < 24; ++i) {
    if (rng.NextBounded(3) == 0) {
      // Deletes target any known gid — some will be repeats (acked no-ops
      // that must NOT advance the epoch).
      const ObjectId victim = static_cast<ObjectId>(
          rng.NextBounded(sharded.topology().total_rows()));
      const QueryResponse response =
          sharded.Execute(QueryRequest::Delete(victim));
      ASSERT_TRUE(response.ok) << response.error;
      if (response.insert_path != "dead") oracle.Delete(victim);
    } else {
      std::vector<double> values;
      for (int d = 0; d < dims; ++d) {
        values.push_back(0.05 + 0.01 * static_cast<double>(
                                           rng.NextBounded(60)));
      }
      const QueryResponse response =
          sharded.Execute(QueryRequest::Insert(values));
      ASSERT_TRUE(response.ok) << response.error;
      oracle.Insert(values);
    }
  }
  ASSERT_EQ(sharded.topology().epoch(), oracle.epoch)
      << "router and oracle disagree on the mutation count";

  const DimMask full = FullMask(dims);
  const std::vector<uint64_t> depths = {1, oracle.epoch / 2, oracle.epoch};
  for (const uint64_t since : depths) {
    for (DimMask mask = 1; mask <= full; ++mask) {
      const QueryResponse got =
          sharded.Execute(QueryRequest::EpochDiff(mask, since));
      ASSERT_TRUE(got.ok) << got.error;
      EXPECT_FALSE(got.partial);
      const auto [entered, left] = oracle.Diff(mask, since, nullptr);
      ASSERT_NE(got.ids, nullptr);
      ASSERT_NE(got.left_ids, nullptr);
      EXPECT_EQ(*got.ids, entered)
          << "entered, mask " << mask << " since " << since;
      EXPECT_EQ(*got.left_ids, left)
          << "left, mask " << mask << " since " << since;
      EXPECT_EQ(got.count, entered.size() + left.size());
    }
  }
  // Diffing the current epoch against itself is always empty.
  const QueryResponse self =
      sharded.Execute(QueryRequest::EpochDiff(full, oracle.epoch));
  ASSERT_TRUE(self.ok) << self.error;
  EXPECT_EQ(self.count, 0u);
  // A future epoch was never reached.
  const QueryResponse future =
      sharded.Execute(QueryRequest::EpochDiff(full, oracle.epoch + 5));
  EXPECT_FALSE(future.ok);
  EXPECT_EQ(future.code, StatusCode::kNotFound);
}

TEST(ShardedSkycubeService, EpochDiffMatchesOracleAcrossShardCounts) {
  for (const size_t num_shards : {1u, 2u, 4u, 8u}) {
    RunEpochDiffOracle(num_shards, 40 + num_shards);
  }
}

TEST(ShardedSkycubeService, EpochDiffDegradesToFlaggedSurvivorDiff) {
  const int dims = 4;
  const Dataset data = MakeData(180, dims, 47);
  ShardedServiceOptions options;
  options.num_shards = 4;
  ShardedSkycubeService sharded(data, options);
  EpochOracle oracle(data);

  // A few mutations so the diff is non-trivial at depth 1.
  Rng rng(51);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> values;
    for (int d = 0; d < dims; ++d) {
      values.push_back(0.1 + 0.01 * static_cast<double>(rng.NextBounded(40)));
    }
    ASSERT_TRUE(sharded.Execute(QueryRequest::Insert(values)).ok);
    oracle.Insert(values);
  }
  const ObjectId victim = 3;
  ASSERT_TRUE(sharded.Execute(QueryRequest::Delete(victim)).ok);
  oracle.Delete(victim);

  // Kill one shard: every epoch-diff answer must carry the partial flag
  // and equal the survivor-restricted oracle — both the current AND the
  // historical side exclude the lost shard's rows, so shard loss is never
  // reported as row churn.
  const size_t down_shard = 2;
  sharded.SetShardDown(down_shard, true);
  const DimMask full = FullMask(dims);
  const auto survivor = [&sharded, down_shard](ObjectId gid) {
    return sharded.topology().OwnerOf(gid) != down_shard;
  };
  for (const uint64_t since : {uint64_t{1}, oracle.epoch / 2}) {
    for (DimMask mask = 1; mask <= full; mask += 3) {
      const QueryResponse got =
          sharded.Execute(QueryRequest::EpochDiff(mask, since));
      ASSERT_TRUE(got.ok) << got.error;
      EXPECT_TRUE(got.partial) << "mask " << mask << " since " << since;
      const auto [entered, left] = oracle.Diff(mask, since, survivor);
      EXPECT_EQ(*got.ids, entered)
          << "entered, mask " << mask << " since " << since;
      EXPECT_EQ(*got.left_ids, left)
          << "left, mask " << mask << " since " << since;
    }
  }

  // Revival: full, unflagged diffs again, equal to the unrestricted oracle.
  sharded.SetShardDown(down_shard, false);
  const QueryResponse revived =
      sharded.Execute(QueryRequest::EpochDiff(full, 1));
  ASSERT_TRUE(revived.ok) << revived.error;
  EXPECT_FALSE(revived.partial);
  const auto [entered, left] = oracle.Diff(full, 1, nullptr);
  EXPECT_EQ(*revived.ids, entered);
  EXPECT_EQ(*revived.left_ids, left);

  // With every shard down the diff is an error, never a silent empty.
  for (size_t s = 0; s < 4; ++s) sharded.SetShardDown(s, true);
  const QueryResponse dead = sharded.Execute(QueryRequest::EpochDiff(full, 1));
  EXPECT_FALSE(dead.ok);
  EXPECT_EQ(dead.code, StatusCode::kUnavailable);
}

TEST(ShardedSkycubeService, DeleteRoutesToOwnerAndIsIdempotent) {
  const int dims = 3;
  SingleNode single(MakeData(120, dims, 53));
  ShardedServiceOptions options;
  options.num_shards = 3;
  ShardedSkycubeService sharded(MakeData(120, dims, 53), options);

  // Delete the same rows through both tiers: answers stay oracle-identical.
  uint64_t expect_live = 120;
  for (const ObjectId victim : {ObjectId{5}, ObjectId{40}, ObjectId{99}}) {
    const QueryResponse got = sharded.Execute(QueryRequest::Delete(victim));
    const QueryResponse want =
        single.service->Execute(QueryRequest::Delete(victim));
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_TRUE(want.ok) << want.error;
    --expect_live;
    EXPECT_EQ(got.count, expect_live) << "live count after delete " << victim;
  }
  EXPECT_EQ(sharded.topology().num_live(), 117u);
  ExpectOracleIdentical(sharded, *single.service, dims);

  // Idempotence: the epoch must not advance for an already-dead target.
  const uint64_t epoch = sharded.topology().epoch();
  const QueryResponse again = sharded.Execute(QueryRequest::Delete(5));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.insert_path, "dead");
  EXPECT_EQ(sharded.topology().epoch(), epoch);
  EXPECT_EQ(sharded.topology().num_live(), 117u);

  // A delete whose owner shard is down must fail loudly, applied nowhere.
  ObjectId target = 0;
  while (!sharded.topology().IsLive(target)) ++target;
  const size_t owner = sharded.topology().OwnerOf(target);
  sharded.SetShardDown(owner, true);
  const QueryResponse refused = sharded.Execute(QueryRequest::Delete(target));
  EXPECT_FALSE(refused.ok);
  EXPECT_EQ(refused.code, StatusCode::kUnavailable);
  EXPECT_EQ(sharded.topology().epoch(), epoch);
  EXPECT_TRUE(sharded.topology().IsLive(target));
}

TEST(ShardedSkycubeService, DrainRejectsNewQueries) {
  ShardedSkycubeService sharded(MakeData(80, 3, 2), {});
  sharded.BeginDrain();
  EXPECT_TRUE(sharded.draining());
  const QueryResponse response =
      sharded.Execute(QueryRequest::SubspaceSkyline(0b1));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kUnavailable);
}

}  // namespace
}  // namespace skycube::router
