// ShardedSkycubeService oracle tests: the in-process sharded tier against
// a single-node SkycubeService over the same rows. Merged answers must be
// byte-identical for every query kind at 1/2/4/8 shards, before and after
// inserts, with caches hot and cold. Degradation (SetShardDown) must set
// the partial flag, never produce an unflagged wrong answer, answer
// partial queries with exactly the survivor skyline, and reject inserts
// whose owner shard is down.
#include "router/sharded_service.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/subspace.h"
#include "core/cube.h"
#include "core/maintenance.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "service/ingest.h"
#include "service/request.h"
#include "service/service.h"

namespace skycube::router {
namespace {

Dataset MakeData(size_t objects, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_dims = dims;
  spec.num_objects = objects;
  spec.seed = seed;
  spec.truncate_decimals = 2;
  return GenerateSynthetic(spec);
}

/// Single-node ground truth with the same maintainer-backed insert path.
struct SingleNode {
  explicit SingleNode(Dataset data)
      : maintainer(std::make_unique<IncrementalCubeMaintainer>(
            std::move(data))),
        handler(std::make_unique<MaintainerInsertHandler>(maintainer.get())),
        service(std::make_unique<SkycubeService>(
            std::make_shared<const CompressedSkylineCube>(
                maintainer->MakeCube()))) {
    service->AttachInsertHandler(handler.get());
  }

  std::unique_ptr<IncrementalCubeMaintainer> maintainer;
  std::unique_ptr<MaintainerInsertHandler> handler;
  std::unique_ptr<SkycubeService> service;
};

/// Asserts every query kind answers identically through both tiers.
void ExpectOracleIdentical(ShardedSkycubeService& sharded,
                           SkycubeService& single, int dims) {
  const DimMask full = FullMask(dims);
  for (DimMask mask = 1; mask <= full; ++mask) {
    const QueryResponse got =
        sharded.Execute(QueryRequest::SubspaceSkyline(mask));
    const QueryResponse want =
        single.Execute(QueryRequest::SubspaceSkyline(mask));
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_TRUE(want.ok) << want.error;
    EXPECT_FALSE(got.partial);
    ASSERT_NE(got.ids, nullptr);
    ASSERT_NE(want.ids, nullptr);
    ASSERT_EQ(*got.ids, *want.ids) << "skyline mask " << mask;

    const QueryResponse got_card =
        sharded.Execute(QueryRequest::SkylineCardinality(mask));
    ASSERT_TRUE(got_card.ok) << got_card.error;
    EXPECT_EQ(got_card.count, want.ids->size()) << "cardinality " << mask;
  }
  const ObjectId total = sharded.topology().total_rows();
  for (ObjectId object = 0; object < total; object += 7) {
    const QueryResponse got =
        sharded.Execute(QueryRequest::Membership(object, full));
    const QueryResponse want =
        single.Execute(QueryRequest::Membership(object, full));
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_EQ(got.member, want.member) << "membership " << object;
  }
  for (ObjectId object = 0; object < total; object += 41) {
    const QueryResponse got =
        sharded.Execute(QueryRequest::MembershipCount(object));
    const QueryResponse want =
        single.Execute(QueryRequest::MembershipCount(object));
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_EQ(got.count, want.count) << "membership count " << object;
  }
  const QueryResponse got_size = sharded.Execute(QueryRequest::SkycubeSize());
  const QueryResponse want_size = single.Execute(QueryRequest::SkycubeSize());
  ASSERT_TRUE(got_size.ok) << got_size.error;
  EXPECT_EQ(got_size.count, want_size.count);
}

TEST(ShardedSkycubeService, OracleIdenticalAcrossShardCounts) {
  const int dims = 4;
  for (const size_t num_shards : {1u, 2u, 4u, 8u}) {
    SingleNode single(MakeData(300, dims, 13));
    ShardedServiceOptions options;
    options.num_shards = num_shards;
    ShardedSkycubeService sharded(MakeData(300, dims, 13), options);
    ASSERT_EQ(sharded.num_shards(), num_shards);
    ExpectOracleIdentical(sharded, *single.service, dims);
  }
}

TEST(ShardedSkycubeService, InsertsStayOracleIdentical) {
  const int dims = 4;
  SingleNode single(MakeData(200, dims, 21));
  ShardedServiceOptions options;
  options.num_shards = 3;
  ShardedSkycubeService sharded(MakeData(200, dims, 21), options);

  for (int i = 0; i < 20; ++i) {
    std::vector<double> values;
    for (int d = 0; d < dims; ++d) {
      values.push_back(0.27 + 0.013 * i + 0.005 * d);
    }
    const QueryResponse got = sharded.Execute(QueryRequest::Insert(values));
    const QueryResponse want =
        single.service->Execute(QueryRequest::Insert(values));
    ASSERT_TRUE(got.ok) << got.error;
    ASSERT_TRUE(want.ok) << want.error;
    EXPECT_EQ(got.count, static_cast<uint64_t>(200 + i + 1));
  }
  ASSERT_EQ(sharded.topology().total_rows(), 220u);
  ExpectOracleIdentical(sharded, *single.service, dims);
}

TEST(ShardedSkycubeService, SecondPassRunsOnShardCaches) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  ShardedSkycubeService sharded(MakeData(150, 3, 5), options);
  const QueryRequest request = QueryRequest::SubspaceSkyline(0b111);
  const QueryResponse cold = sharded.Execute(request);
  ASSERT_TRUE(cold.ok);
  EXPECT_FALSE(cold.cache_hit);
  const QueryResponse warm = sharded.Execute(request);
  ASSERT_TRUE(warm.ok);
  // A merged answer is a cache hit only when EVERY shard answered from its
  // cache — the honest aggregate.
  EXPECT_TRUE(warm.cache_hit);
  ASSERT_NE(warm.ids, nullptr);
  EXPECT_EQ(*warm.ids, *cold.ids);
}

TEST(ShardedSkycubeService, DownShardDegradesToFlaggedSurvivorAnswers) {
  const int dims = 4;
  const Dataset data = MakeData(260, dims, 31);
  ShardedServiceOptions options;
  options.num_shards = 3;
  ShardedSkycubeService sharded(data, options);
  const DimMask full = FullMask(dims);
  const size_t down_shard = 1;

  // Ground truth for the degraded answers: a single-node service over only
  // the surviving shards' rows, ids translated back to global.
  std::vector<ObjectId> survivors;
  Dataset survivor_data(dims);
  for (ObjectId gid = 0; gid < data.num_objects(); ++gid) {
    if (sharded.topology().OwnerOf(gid) == down_shard) continue;
    survivors.push_back(gid);
    const double* row = data.Row(gid);
    survivor_data.AddRow(std::vector<double>(row, row + dims));
  }
  SingleNode survivor_oracle(std::move(survivor_data));

  sharded.SetShardDown(down_shard, true);
  for (DimMask mask = 1; mask <= full; ++mask) {
    const QueryResponse got =
        sharded.Execute(QueryRequest::SubspaceSkyline(mask));
    ASSERT_TRUE(got.ok) << got.error;
    // Every answer with a shard down must carry the partial flag — an
    // unflagged answer would be a silent wrong answer.
    ASSERT_TRUE(got.partial) << "mask " << mask;
    const QueryResponse want = survivor_oracle.service->Execute(
        QueryRequest::SubspaceSkyline(mask));
    ASSERT_TRUE(want.ok);
    std::vector<ObjectId> expected;
    expected.reserve(want.ids->size());
    for (const ObjectId local : *want.ids) {
      expected.push_back(survivors[local]);
    }
    ASSERT_EQ(*got.ids, expected) << "survivor skyline mask " << mask;
  }

  // Membership still answers for a row owned by the down shard (the
  // topology holds its values); the answer is against the reachable rows.
  ObjectId victim_row = 0;
  while (sharded.topology().OwnerOf(victim_row) != down_shard) ++victim_row;
  const QueryResponse member =
      sharded.Execute(QueryRequest::Membership(victim_row, full));
  ASSERT_TRUE(member.ok) << member.error;
  EXPECT_TRUE(member.partial);

  // An insert whose owner shard is down must be rejected loudly — never
  // applied partially, never silently dropped. Mark exactly the owner of
  // the next global id as down.
  sharded.SetShardDown(down_shard, false);
  const ObjectId next_gid = sharded.topology().total_rows();
  const size_t owner = sharded.topology().OwnerOf(next_gid);
  sharded.SetShardDown(owner, true);
  const QueryResponse insert = sharded.Execute(
      QueryRequest::Insert(std::vector<double>(dims, 0.5)));
  EXPECT_FALSE(insert.ok);
  EXPECT_EQ(insert.code, StatusCode::kUnavailable);
  EXPECT_EQ(sharded.topology().total_rows(), next_gid);

  // Revival: full, unflagged answers again.
  sharded.SetShardDown(owner, false);
  SingleNode single(MakeData(260, dims, 31));
  ExpectOracleIdentical(sharded, *single.service, dims);
}

TEST(ShardedSkycubeService, DrainRejectsNewQueries) {
  ShardedSkycubeService sharded(MakeData(80, 3, 2), {});
  sharded.BeginDrain();
  EXPECT_TRUE(sharded.draining());
  const QueryResponse response =
      sharded.Execute(QueryRequest::SubspaceSkyline(0b1));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kUnavailable);
}

}  // namespace
}  // namespace skycube::router
