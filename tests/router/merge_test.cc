// Union-then-refilter merge tests: MergeSkylineCandidates against the
// single-node skyline oracle. The property under test is the one the whole
// sharded tier rests on — for any partition of the rows into shards, the
// skyline of the union of per-shard skylines IS the global skyline — plus
// the edge semantics: duplicates collapse, equal rows keep each other, and
// candidate order never matters.
#include "router/merge.h"

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/consistent_hash.h"
#include "common/subspace.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "router/partition.h"
#include "skyline/algorithms.h"

namespace skycube::router {
namespace {

Dataset MakeData(size_t objects, int dims, uint64_t seed,
                 Distribution distribution = Distribution::kIndependent) {
  SyntheticSpec spec;
  spec.distribution = distribution;
  spec.num_dims = dims;
  spec.num_objects = objects;
  spec.seed = seed;
  spec.truncate_decimals = 2;  // coarse grid: plenty of exact ties
  return GenerateSynthetic(spec);
}

/// Loads every dataset row into a fresh single-shard topology (global id ==
/// dataset id) so the merge sees the same values the oracle does.
std::unique_ptr<RouterTopology> LoadTopology(const Dataset& data) {
  auto topology =
      std::make_unique<RouterTopology>(data.num_dims(), /*num_shards=*/1);
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    topology->AppendRow(data.Row(id));
  }
  return topology;
}

TEST(MergeSkylineCandidates, UnionOfShardSkylinesIsTheGlobalSkyline) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const Dataset data = MakeData(400, 4, seed);
    const std::unique_ptr<RouterTopology> topology = LoadTopology(data);
    for (const size_t num_shards : {1u, 2u, 4u, 8u}) {
      const HashRing ring(num_shards, /*seed=*/0);
      // Partition by ring ownership, take each shard's local skyline.
      std::vector<std::vector<ObjectId>> shard_rows(num_shards);
      for (ObjectId id = 0; id < data.num_objects(); ++id) {
        shard_rows[ring.OwnerOf(id)].push_back(id);
      }
      for (DimMask mask = 1; mask <= data.full_mask(); ++mask) {
        std::vector<ObjectId> candidates;
        for (const std::vector<ObjectId>& rows : shard_rows) {
          if (rows.empty()) continue;
          const std::vector<ObjectId> local =
              ComputeSkylineAmong(data, mask, rows);
          candidates.insert(candidates.end(), local.begin(), local.end());
        }
        const std::vector<ObjectId> merged =
            MergeSkylineCandidates(topology->rows(), mask, candidates);
        ASSERT_EQ(merged, ComputeSkyline(data, mask))
            << "seed " << seed << " shards " << num_shards << " mask "
            << mask;
      }
    }
  }
}

TEST(MergeSkylineCandidates, DuplicatesAndOrderDoNotMatter) {
  const Dataset data = MakeData(200, 3, 5);
  const std::unique_ptr<RouterTopology> topology = LoadTopology(data);
  const DimMask mask = data.full_mask();
  std::vector<ObjectId> candidates;
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    candidates.push_back(id);
    if (id % 3 == 0) candidates.push_back(id);  // duplicates allowed
  }
  std::mt19937 rng(99);
  std::shuffle(candidates.begin(), candidates.end(), rng);
  EXPECT_EQ(MergeSkylineCandidates(topology->rows(), mask, candidates),
            ComputeSkyline(data, mask));
}

TEST(MergeSkylineCandidates, EqualRowsKeepEachOther) {
  // Two identical rows and one dominated row: single-node semantics keep
  // both copies (only strict dominance removes), the merge must too.
  Dataset data(2);
  data.AddRow({0.2, 0.3});
  data.AddRow({0.2, 0.3});
  data.AddRow({0.9, 0.9});
  const std::unique_ptr<RouterTopology> topology = LoadTopology(data);
  const std::vector<ObjectId> merged = MergeSkylineCandidates(
      topology->rows(), data.full_mask(), {2, 1, 0});
  EXPECT_EQ(merged, (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(merged, ComputeSkyline(data, data.full_mask()));
}

TEST(MergeSkylineCandidates, SubsetCandidatesRefilterAmongThemselves) {
  // With only a subset offered (a degraded wave), the merge answers the
  // skyline OF that subset — the survivor semantics of a partial answer.
  const Dataset data = MakeData(300, 4, 8, Distribution::kAntiCorrelated);
  const std::unique_ptr<RouterTopology> topology = LoadTopology(data);
  std::vector<ObjectId> subset;
  for (ObjectId id = 0; id < data.num_objects(); id += 2) {
    subset.push_back(id);
  }
  for (DimMask mask = 1; mask <= data.full_mask(); ++mask) {
    ASSERT_EQ(MergeSkylineCandidates(topology->rows(), mask, subset),
              ComputeSkylineAmong(data, mask, subset))
        << "mask " << mask;
  }
}

TEST(MergeSkylineCandidates, EmptyCandidatesAnswerEmpty) {
  const Dataset data = MakeData(50, 3, 4);
  const std::unique_ptr<RouterTopology> topology = LoadTopology(data);
  EXPECT_TRUE(
      MergeSkylineCandidates(topology->rows(), data.full_mask(), {}).empty());
}

}  // namespace
}  // namespace skycube::router
