// ProbeBackoff (router/probe_backoff.h): the jittered exponential probe
// schedule for down-marked shards. Time is injected, so every test steps a
// fake clock through the schedule deterministically.
#include "router/probe_backoff.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

namespace skycube::router {
namespace {

using TimePoint = ProbeBackoff::TimePoint;

TimePoint At(int64_t millis) {
  return TimePoint{} + std::chrono::milliseconds(millis);
}

ProbeBackoffOptions NoJitter() {
  ProbeBackoffOptions options;
  options.initial_millis = 100;
  options.max_millis = 30000;
  options.multiplier = 2.0;
  options.jitter = 0.0;  // exact delays, no RNG
  return options;
}

TEST(ProbeBackoffTest, GrowsExponentiallyWithoutJitter) {
  ProbeBackoff backoff(NoJitter());
  TimePoint now = At(0);
  int64_t expected = 100;
  for (int i = 0; i < 6; ++i) {
    backoff.NoteFailure(now);
    EXPECT_EQ(backoff.current_delay_millis(), expected) << "failure " << i;
    EXPECT_FALSE(backoff.ProbeDue(now));
    EXPECT_FALSE(backoff.ProbeDue(now + std::chrono::milliseconds(
                                            expected - 1)));
    EXPECT_TRUE(
        backoff.ProbeDue(now + std::chrono::milliseconds(expected)));
    now = now + std::chrono::milliseconds(expected);
    expected *= 2;
  }
}

TEST(ProbeBackoffTest, CapsAtMaxMillis) {
  ProbeBackoffOptions options = NoJitter();
  options.max_millis = 500;
  ProbeBackoff backoff(options);
  for (int i = 0; i < 20; ++i) backoff.NoteFailure(At(0));
  EXPECT_EQ(backoff.current_delay_millis(), 500);
  EXPECT_EQ(backoff.consecutive_failures(), 20);
}

TEST(ProbeBackoffTest, ResetOnSuccessRestartsTheRamp) {
  ProbeBackoff backoff(NoJitter());
  backoff.NoteFailure(At(0));
  backoff.NoteFailure(At(0));
  backoff.NoteFailure(At(0));
  EXPECT_EQ(backoff.current_delay_millis(), 400);
  backoff.Reset();
  EXPECT_EQ(backoff.consecutive_failures(), 0);
  EXPECT_EQ(backoff.current_delay_millis(), 100);
  // A probe is immediately due after a reset.
  EXPECT_TRUE(backoff.ProbeDue(At(0)));
  // The next failure starts over at the initial delay, not where the ramp
  // left off.
  backoff.NoteFailure(At(1000));
  EXPECT_EQ(backoff.current_delay_millis(), 100);
}

TEST(ProbeBackoffTest, ClaimProbePushesOutWithoutGrowing) {
  ProbeBackoff backoff(NoJitter());
  backoff.NoteFailure(At(0));  // delay 100, next probe at 100
  EXPECT_TRUE(backoff.ProbeDue(At(100)));
  backoff.ClaimProbe(At(100));
  // The claim reschedules by the *current* delay — growth is NoteFailure's
  // job — so a second concurrent caller at the same instant is refused.
  EXPECT_EQ(backoff.current_delay_millis(), 100);
  EXPECT_FALSE(backoff.ProbeDue(At(100)));
  EXPECT_FALSE(backoff.ProbeDue(At(199)));
  EXPECT_TRUE(backoff.ProbeDue(At(200)));
}

TEST(ProbeBackoffTest, JitterStaysWithinBand) {
  ProbeBackoffOptions options;
  options.initial_millis = 1000;
  options.max_millis = 1000000;
  options.multiplier = 1.0;  // isolate the jitter factor
  options.jitter = 0.2;
  options.jitter_seed = 7;
  ProbeBackoff backoff(options);
  bool moved = false;
  for (int i = 0; i < 50; ++i) {
    backoff.NoteFailure(At(0));
    const int64_t delay = backoff.current_delay_millis();
    EXPECT_GE(delay, 800) << "failure " << i;
    EXPECT_LE(delay, 1200) << "failure " << i;
    moved = moved || delay != 1000;
  }
  EXPECT_TRUE(moved) << "jitter never perturbed the delay";
}

TEST(ProbeBackoffTest, DeterministicForAFixedSeed) {
  ProbeBackoffOptions options;
  options.jitter_seed = 123;
  ProbeBackoff a(options);
  ProbeBackoff b(options);
  for (int i = 0; i < 10; ++i) {
    a.NoteFailure(At(i));
    b.NoteFailure(At(i));
    EXPECT_EQ(a.current_delay_millis(), b.current_delay_millis());
  }
}

TEST(ProbeBackoffTest, DelayNeverBelowOneMillisecond) {
  ProbeBackoffOptions options;
  options.initial_millis = 1;
  options.jitter = 0.9;
  ProbeBackoff backoff(options);
  for (int i = 0; i < 20; ++i) {
    backoff.Reset();
    backoff.NoteFailure(At(0));
    EXPECT_GE(backoff.current_delay_millis(), 1);
  }
}

}  // namespace
}  // namespace skycube::router
