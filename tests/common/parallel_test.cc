// Tests for the ParallelChunks helper.
#include <atomic>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace skycube {
namespace {

TEST(ParallelTest, EffectiveThreadsClamping) {
  EXPECT_EQ(EffectiveThreads(1, 100), 1);
  EXPECT_EQ(EffectiveThreads(4, 100), 4);
  EXPECT_EQ(EffectiveThreads(4, 2), 2);   // never more threads than items
  EXPECT_GE(EffectiveThreads(0, 100), 1);  // hardware concurrency ≥ 1
  EXPECT_EQ(EffectiveThreads(-3, 100), EffectiveThreads(0, 100));
}

TEST(ParallelTest, CoversRangeExactlyOnce) {
  for (int threads : {1, 2, 3, 7}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{10}, size_t{1000}}) {
      std::mutex mu;
      std::vector<char> seen(n, 0);
      ParallelChunks(n, threads, [&](int, size_t begin, size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        for (size_t i = begin; i < end; ++i) {
          EXPECT_EQ(seen[i], 0) << "index covered twice";
          seen[i] = 1;
        }
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(seen[i], 1) << "index " << i << " not covered";
      }
    }
  }
}

TEST(ParallelTest, ChunkIndicesAreDistinctAndContiguous) {
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> ranges(4, {0, 0});
  std::set<int> chunks;
  ParallelChunks(100, 4, [&](int chunk, size_t begin, size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_TRUE(chunks.insert(chunk).second);
    ASSERT_LT(chunk, 4);
    ranges[chunk] = {begin, end};
  });
  EXPECT_EQ(chunks.size(), 4u);
  // Chunks partition [0, 100) in order.
  size_t cursor = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, cursor);
    EXPECT_LE(begin, end);
    cursor = end;
  }
  EXPECT_EQ(cursor, 100u);
}

TEST(ParallelTest, SingleThreadRunsInline) {
  std::atomic<int> calls{0};
  ParallelChunks(50, 1, [&](int chunk, size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(chunk, 0);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 50u);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ParallelTest, ParallelSumMatchesSequential) {
  const size_t n = 100000;
  std::vector<uint64_t> partial(8, 0);
  ParallelChunks(n, 8, [&](int chunk, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) partial[chunk] += i;
  });
  uint64_t total = 0;
  for (uint64_t p : partial) total += p;
  EXPECT_EQ(total, n * (n - 1) / 2);
}

}  // namespace
}  // namespace skycube
