// Tests for the ThreadPool behind ParallelChunks and SkycubeService.
#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/thread_pool.h"

namespace skycube {
namespace {

TEST(ThreadPoolTest, ExecutesEveryTask) {
  ThreadPool pool(ThreadPoolOptions{4, 64});
  std::atomic<int> executed{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&executed] { ++executed; });
  }
  // The destructor drains the queue before joining, so after scope exit
  // every task must have run; poll to also cover the pre-shutdown path.
  while (executed.load() < 1000) std::this_thread::yield();
  EXPECT_EQ(executed.load(), 1000);
  EXPECT_EQ(pool.stats().tasks_submitted, 1000u);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(ThreadPoolOptions{2, 512});
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&executed] { ++executed; });
    }
  }  // ~ThreadPool must not drop queued work
  EXPECT_EQ(executed.load(), 200);
}

TEST(ThreadPoolTest, BoundedQueueBlocksSubmitUntilDrained) {
  ThreadPool pool(ThreadPoolOptions{1, 2});
  std::atomic<bool> release{false};
  std::atomic<int> executed{0};
  // Occupy the single worker, then fill the queue past capacity: the extra
  // Submits must block (and eventually complete) rather than grow a backlog.
  pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
    ++executed;
  });
  std::thread producer([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&executed] { ++executed; });
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(pool.QueueDepth(), 2u);
  release.store(true);
  producer.join();
  while (executed.load() < 11) std::this_thread::yield();
  EXPECT_EQ(executed.load(), 11);
  const ThreadPoolStats stats = pool.stats();
  EXPECT_GE(stats.submit_waits, 1u);
  EXPECT_LE(stats.queue_depth_high_water, 2u);
}

TEST(ThreadPoolTest, TrySubmitRefusesWhenFull) {
  ThreadPool pool(ThreadPoolOptions{1, 1});
  std::atomic<bool> release{false};
  pool.Submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  // Fill the one queue slot, then TrySubmit must refuse without blocking.
  std::function<void()> filler = [] {};
  while (!pool.TrySubmit(filler)) std::this_thread::yield();
  std::function<void()> refused = [] {};
  bool accepted = true;
  for (int i = 0; i < 100 && accepted; ++i) {
    accepted = pool.TrySubmit(refused);
  }
  EXPECT_FALSE(accepted);
  release.store(true);
}

TEST(ThreadPoolTest, OnWorkerThreadFlag) {
  EXPECT_FALSE(ThreadPool::OnWorkerThread());
  ThreadPool pool(ThreadPoolOptions{2, 8});
  std::atomic<int> on_worker{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      if (ThreadPool::OnWorkerThread()) ++on_worker;
      ++done;
    });
  }
  while (done.load() < 8) std::this_thread::yield();
  EXPECT_EQ(on_worker.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelChunksFromWorkerRunsInline) {
  // A ParallelChunks call from inside a pool task must complete even when
  // every worker is busy issuing nested calls — the deadlock scenario the
  // inline-nesting rule exists for.
  ThreadPool& pool = ThreadPool::Shared();
  const int tasks = pool.num_threads() + 2;
  std::atomic<int> done{0};
  std::atomic<uint64_t> total{0};
  for (int i = 0; i < tasks; ++i) {
    pool.Submit([&] {
      ParallelChunks(100, 4, [&](int, size_t begin, size_t end) {
        for (size_t j = begin; j < end; ++j) total += j;
      });
      ++done;
    });
  }
  while (done.load() < tasks) std::this_thread::yield();
  EXPECT_EQ(total.load(), static_cast<uint64_t>(tasks) * (99 * 100 / 2));
}

TEST(ThreadPoolTest, ParallelChunksSharedPoolStress) {
  // Many back-to-back ParallelChunks calls reuse pooled workers; per-call
  // correctness must hold throughout.
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> partial(4, 0);
    ParallelChunks(1000, 4, [&](int chunk, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) partial[chunk] += i;
    });
    uint64_t total = 0;
    for (uint64_t p : partial) total += p;
    EXPECT_EQ(total, 1000u * 999 / 2);
  }
}

}  // namespace
}  // namespace skycube
