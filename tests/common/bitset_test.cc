// Unit tests for the dynamic bitset backing the bitmap skyline method.
#include <gtest/gtest.h>

#include "common/bitset.h"

namespace skycube {
namespace {

TEST(DynamicBitsetTest, SetTestReset) {
  DynamicBitset bits(130);  // spans three 64-bit blocks
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_FALSE(bits.Any());
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(129);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(129));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(DynamicBitsetTest, AndOrAndNot) {
  DynamicBitset a(70);
  DynamicBitset b(70);
  a.Set(1);
  a.Set(65);
  a.Set(3);
  b.Set(65);
  b.Set(3);
  b.Set(7);
  DynamicBitset and_result = a;
  and_result &= b;
  EXPECT_EQ(and_result.Count(), 2u);
  EXPECT_TRUE(and_result.Test(65));
  EXPECT_TRUE(and_result.Test(3));
  DynamicBitset or_result = a;
  or_result |= b;
  EXPECT_EQ(or_result.Count(), 4u);
  DynamicBitset diff = a;
  diff.AndNot(b);
  EXPECT_EQ(diff.Count(), 1u);
  EXPECT_TRUE(diff.Test(1));
}

TEST(DynamicBitsetTest, IntersectsWithAvoidsMaterialization) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.Set(99);
  b.Set(98);
  EXPECT_FALSE(a.IntersectsWith(b));
  b.Set(99);
  EXPECT_TRUE(a.IntersectsWith(b));
}

TEST(DynamicBitsetTest, EmptyBitset) {
  DynamicBitset bits(0);
  EXPECT_FALSE(bits.Any());
  EXPECT_EQ(bits.Count(), 0u);
}

}  // namespace
}  // namespace skycube
