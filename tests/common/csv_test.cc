// Unit tests for the CSV reader/writer.
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace skycube {
namespace {

TEST(CsvTest, ParsesHeaderAndRows) {
  const Result<CsvTable> result =
      ParseNumericCsv("a,b,c\n1,2,3\n4.5,-6,7e2\n");
  ASSERT_TRUE(result.ok());
  const CsvTable& table = result.value();
  EXPECT_EQ(table.column_names,
            (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0], (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(table.rows[1], (std::vector<double>{4.5, -6, 700}));
}

TEST(CsvTest, ParsesWithoutHeader) {
  CsvReadOptions options;
  options.has_header = false;
  const Result<CsvTable> result = ParseNumericCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().column_names.empty());
  EXPECT_EQ(result.value().rows.size(), 2u);
}

TEST(CsvTest, SkipsBlankLinesAndCarriageReturns) {
  const Result<CsvTable> result = ParseNumericCsv("x,y\r\n\n1,2\r\n\n3,4\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().column_names[1], "y");
}

TEST(CsvTest, RejectsRaggedRows) {
  const Result<CsvTable> result = ParseNumericCsv("a,b\n1,2\n3\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsNonNumericCells) {
  const Result<CsvTable> result = ParseNumericCsv("a\n1\nbanana\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("banana"), std::string::npos);
}

TEST(CsvTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseNumericCsv("").ok());
}

TEST(CsvTest, CustomDelimiter) {
  CsvReadOptions options;
  options.delimiter = '\t';
  const Result<CsvTable> result = ParseNumericCsv("a\tb\n1\t2\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0], (std::vector<double>{1, 2}));
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csv_roundtrip.csv";
  CsvTable table;
  table.column_names = {"p", "q"};
  table.rows = {{0.1, 2}, {3, 40000.5}};
  ASSERT_TRUE(WriteNumericCsv(path, table).ok());
  const Result<CsvTable> loaded = ReadNumericCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().column_names, table.column_names);
  EXPECT_EQ(loaded.value().rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileIsNotFound) {
  const Result<CsvTable> result = ReadNumericCsv("/no/such/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace skycube
