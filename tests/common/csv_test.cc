// Unit tests for the CSV reader/writer.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace skycube {
namespace {

TEST(CsvTest, ParsesHeaderAndRows) {
  const Result<CsvTable> result =
      ParseNumericCsv("a,b,c\n1,2,3\n4.5,-6,7e2\n");
  ASSERT_TRUE(result.ok());
  const CsvTable& table = result.value();
  EXPECT_EQ(table.column_names,
            (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[0], (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(table.rows[1], (std::vector<double>{4.5, -6, 700}));
}

TEST(CsvTest, ParsesWithoutHeader) {
  CsvReadOptions options;
  options.has_header = false;
  const Result<CsvTable> result = ParseNumericCsv("1,2\n3,4\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().column_names.empty());
  EXPECT_EQ(result.value().rows.size(), 2u);
}

TEST(CsvTest, SkipsBlankLinesAndCarriageReturns) {
  const Result<CsvTable> result = ParseNumericCsv("x,y\r\n\n1,2\r\n\n3,4\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().column_names[1], "y");
}

TEST(CsvTest, RejectsRaggedRows) {
  const Result<CsvTable> result = ParseNumericCsv("a,b\n1,2\n3\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsNonNumericCells) {
  const Result<CsvTable> result = ParseNumericCsv("a\n1\nbanana\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("banana"), std::string::npos);
}

TEST(CsvTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseNumericCsv("").ok());
}

TEST(CsvTest, CustomDelimiter) {
  CsvReadOptions options;
  options.delimiter = '\t';
  const Result<CsvTable> result = ParseNumericCsv("a\tb\n1\t2\n", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0], (std::vector<double>{1, 2}));
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/csv_roundtrip.csv";
  CsvTable table;
  table.column_names = {"p", "q"};
  table.rows = {{0.1, 2}, {3, 40000.5}};
  ASSERT_TRUE(WriteNumericCsv(path, table).ok());
  const Result<CsvTable> loaded = ReadNumericCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().column_names, table.column_names);
  EXPECT_EQ(loaded.value().rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileIsNotFound) {
  const Result<CsvTable> result = ReadNumericCsv("/no/such/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// --- Malformed-input matrix ------------------------------------------------
// Every rejection must be kInvalidArgument and carry enough row/column
// context to find the bad cell in a multi-gigabyte input.

struct MalformedCase {
  const char* label;
  std::string text;
  /// Substrings the error message must contain.
  std::vector<std::string> expected;
};

class CsvMalformedTest : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(CsvMalformedTest, RejectsWithContext) {
  const MalformedCase& c = GetParam();
  const Result<CsvTable> result = ParseNumericCsv(c.text);
  ASSERT_FALSE(result.ok()) << c.label;
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << c.label;
  for (const std::string& fragment : c.expected) {
    EXPECT_NE(result.status().message().find(fragment), std::string::npos)
        << c.label << ": message '" << result.status().message()
        << "' lacks '" << fragment << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CsvMalformedTest,
    ::testing::Values(
        MalformedCase{"too-few-cells", "a,b,c\n1,2,3\n4,5\n",
                      {"ragged", "line 3", "got 2", "expected 3"}},
        MalformedCase{"too-many-cells", "a,b\n1,2\n3,4,5\n",
                      {"ragged", "line 3", "got 3", "expected 2"}},
        MalformedCase{"non-numeric", "a,b\n1,potato\n",
                      {"potato", "line 2", "column 2"}},
        MalformedCase{"trailing-garbage", "a\n1.5x\n",
                      {"1.5x", "line 2", "column 1"}},
        MalformedCase{"nan", "a,b\n1,nan\n",
                      {"non-finite", "line 2", "column 2"}},
        MalformedCase{"positive-infinity", "a\ninf\n",
                      {"non-finite", "line 2", "column 1"}},
        MalformedCase{"negative-infinity", "a\n-inf\n",
                      {"non-finite", "line 2", "column 1"}},
        MalformedCase{"overflow-to-infinity", "a\n1e999\n",
                      {"line 2", "column 1"}},
        MalformedCase{"empty-cell", "a,b\n1,\n", {"empty", "line 2"}},
        MalformedCase{"embedded-nul",
                      std::string("a,b\n1,4") + '\0' + "2\n",
                      {"NUL", "line 2", "column 2"}}),
    [](const ::testing::TestParamInfo<MalformedCase>& param_info) {
      std::string name = param_info.param.label;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(CsvTest, EmbeddedNulErrorMessageStaysPrintable) {
  const Result<CsvTable> result =
      ParseNumericCsv(std::string("a\n9") + '\0' + "7\n");
  ASSERT_FALSE(result.ok());
  // The message must survive C-string handling: no raw NUL inside.
  EXPECT_EQ(result.status().message().find('\0'), std::string::npos);
}

}  // namespace
}  // namespace skycube
