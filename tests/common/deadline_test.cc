// Unit tests for Deadline / CancelToken / CancelPoll and the fault-injection
// registry.
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/fault_injection.h"

namespace skycube {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining(), std::chrono::nanoseconds::max());
}

TEST(DeadlineTest, ExpiredNowIsExpired) {
  const Deadline deadline = Deadline::ExpiredNow();
  EXPECT_FALSE(deadline.infinite());
  EXPECT_TRUE(deadline.expired());
  EXPECT_LT(deadline.remaining().count(), 0);
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  const Deadline deadline = Deadline::AfterMillis(60000);
  EXPECT_FALSE(deadline.infinite());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining().count(), 0);
}

TEST(DeadlineTest, ShortDeadlineExpires) {
  const Deadline deadline = Deadline::After(std::chrono::microseconds(100));
  while (!deadline.expired()) std::this_thread::yield();
  EXPECT_TRUE(deadline.expired());
}

TEST(DeadlineTest, AtRoundTripsTimePoint) {
  const auto when = Deadline::Clock::now() + std::chrono::hours(1);
  EXPECT_EQ(Deadline::At(when).when(), when);
}

TEST(CancelTokenTest, DefaultNeverStops) {
  const CancelToken token;
  EXPECT_FALSE(token.ShouldStop());
  EXPECT_FALSE(token.cancel_requested());
  token.RequestCancel();  // no-op on a plain token
  EXPECT_FALSE(token.ShouldStop());
}

TEST(CancelTokenTest, ExpiredDeadlineStops) {
  const CancelToken token(Deadline::ExpiredNow());
  EXPECT_TRUE(token.ShouldStop());
  EXPECT_FALSE(token.cancel_requested());
}

TEST(CancelTokenTest, CancellableCopiesShareTheFlag) {
  const CancelToken token = CancelToken::Cancellable();
  const CancelToken copy = token;
  EXPECT_FALSE(copy.ShouldStop());
  token.RequestCancel();
  EXPECT_TRUE(copy.cancel_requested());
  EXPECT_TRUE(copy.ShouldStop());
}

TEST(CancelPollTest, NullTokenNeverStops) {
  CancelPoll poll(nullptr, 1);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(poll.ShouldStop());
}

TEST(CancelPollTest, FiredTokenStopsOnFirstPoll) {
  const CancelToken token(Deadline::ExpiredNow());
  CancelPoll poll(&token, 64);
  // Call 0 hits the stride boundary, so the very first check consults the
  // token.
  EXPECT_TRUE(poll.ShouldStop());
}

TEST(CancelPollTest, LatchesOnceStopped) {
  const CancelToken token = CancelToken::Cancellable();
  CancelPoll poll(&token, 1);
  EXPECT_FALSE(poll.ShouldStop());
  token.RequestCancel();
  EXPECT_TRUE(poll.ShouldStop());
  EXPECT_TRUE(poll.ShouldStop());
}

TEST(CancelPollTest, ChecksAtStrideBoundaries) {
  const CancelToken token = CancelToken::Cancellable();
  CancelPoll poll(&token, 4);
  EXPECT_FALSE(poll.ShouldStop());  // call 0: checked, not fired
  token.RequestCancel();
  // Calls 1-3 are off-stride: the poll must not consult the token yet.
  EXPECT_FALSE(poll.ShouldStop());
  EXPECT_FALSE(poll.ShouldStop());
  EXPECT_FALSE(poll.ShouldStop());
  // Call 4 is a boundary: the fired token is observed.
  EXPECT_TRUE(poll.ShouldStop());
}

// --- Fault-injection registry ---------------------------------------------

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().Reset(); }
};

TEST_F(FaultInjectionTest, CompiledInForTests) {
  // Test builds default SKYCUBE_FAULT_INJECTION to ON; the robustness tests
  // are vacuous otherwise.
  EXPECT_TRUE(FaultInjection::Enabled());
}

TEST_F(FaultInjectionTest, UnarmedPointNeverFires) {
  EXPECT_FALSE(SKYCUBE_FAULT_POINT("deadline_test.unarmed"));
  EXPECT_EQ(FaultInjection::Instance().HitCount("deadline_test.unarmed"),
            0u);
}

TEST_F(FaultInjectionTest, ArmedFailureFiresExactlyCountTimes) {
  FaultInjection::Instance().ArmFailure("deadline_test.p", 2);
  EXPECT_TRUE(SKYCUBE_FAULT_POINT("deadline_test.p"));
  EXPECT_TRUE(SKYCUBE_FAULT_POINT("deadline_test.p"));
  EXPECT_FALSE(SKYCUBE_FAULT_POINT("deadline_test.p"));
  EXPECT_EQ(FaultInjection::Instance().HitCount("deadline_test.p"), 3u);
}

TEST_F(FaultInjectionTest, NegativeCountFiresForever) {
  FaultInjection::Instance().ArmFailure("deadline_test.forever", -1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(SKYCUBE_FAULT_POINT("deadline_test.forever"));
  }
  FaultInjection::Instance().Disarm("deadline_test.forever");
  EXPECT_FALSE(SKYCUBE_FAULT_POINT("deadline_test.forever"));
  // Hit counts survive Disarm.
  EXPECT_EQ(FaultInjection::Instance().HitCount("deadline_test.forever"),
            101u);
}

TEST_F(FaultInjectionTest, ArmedDelayBlocksTheHit) {
  FaultInjection::Instance().ArmDelay("deadline_test.slow", 30, 1);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(SKYCUBE_FAULT_POINT("deadline_test.slow"));  // delay, no fail
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(30));
  // Second hit: delay budget spent, back to full speed.
  EXPECT_FALSE(SKYCUBE_FAULT_POINT("deadline_test.slow"));
}

TEST_F(FaultInjectionTest, ResetClearsEverything) {
  FaultInjection::Instance().ArmFailure("deadline_test.reset", -1);
  EXPECT_TRUE(SKYCUBE_FAULT_POINT("deadline_test.reset"));
  FaultInjection::Instance().Reset();
  EXPECT_FALSE(SKYCUBE_FAULT_POINT("deadline_test.reset"));
  EXPECT_EQ(FaultInjection::Instance().HitCount("deadline_test.reset"), 0u);
}

}  // namespace
}  // namespace skycube
