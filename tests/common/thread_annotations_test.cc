// Proves the two halves of the thread_annotations.h contract that a GCC
// build can check:
//  1. on non-Clang compilers every annotation macro expands to *nothing*
//     (stringified expansion is empty), so annotated headers cost zero and
//     cannot change codegen;
//  2. the annotated Mutex/MutexLock/SharedMutex/CondVar wrappers behave
//     exactly like the std primitives they wrap (the Clang-only analysis
//     semantics are exercised by the -Wthread-safety CI build, not here).

#include "common/thread_annotations.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "gtest/gtest.h"

namespace skycube {
namespace {

// Two-step expansion so the argument macro is expanded before stringifying.
#define SKYCUBE_TEST_STR_INNER(x) #x
#define SKYCUBE_TEST_STR(x) SKYCUBE_TEST_STR_INNER(x)

#if !defined(__clang__)

TEST(ThreadAnnotationsTest, MacrosExpandToNothingOnNonClang) {
  // Each macro must vanish entirely: "" after stringification. A macro that
  // left any token behind would change declarations on GCC builds.
  EXPECT_STREQ("", SKYCUBE_TEST_STR(CAPABILITY("mutex")));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(SCOPED_CAPABILITY));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(GUARDED_BY(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(PT_GUARDED_BY(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(ACQUIRED_BEFORE(a_, b_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(ACQUIRED_AFTER(a_, b_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(REQUIRES(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(REQUIRES_SHARED(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(ACQUIRE(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(ACQUIRE_SHARED(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(RELEASE(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(RELEASE_SHARED(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(RELEASE_GENERIC(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(TRY_ACQUIRE(true, mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(TRY_ACQUIRE_SHARED(true, mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(EXCLUDES(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(ASSERT_CAPABILITY(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(ASSERT_SHARED_CAPABILITY(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(RETURN_CAPABILITY(mu_)));
  EXPECT_STREQ("", SKYCUBE_TEST_STR(NO_THREAD_SAFETY_ANALYSIS));
}

#else  // defined(__clang__)

TEST(ThreadAnnotationsTest, MacrosExpandToAttributesOnClang) {
  const std::string guarded = SKYCUBE_TEST_STR(GUARDED_BY(mu_));
  EXPECT_NE(guarded.find("guarded_by"), std::string::npos) << guarded;
  const std::string requires_mu = SKYCUBE_TEST_STR(REQUIRES(mu_));
  EXPECT_NE(requires_mu.find("requires_capability"), std::string::npos)
      << requires_mu;
}

#endif

TEST(MutexTest, LockUnlockAndTryLock) {
  Mutex mu;
  mu.Lock();
  EXPECT_FALSE(mu.TryLock());  // already held (non-recursive)
  mu.Unlock();
  EXPECT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, MutexLockGuardsCriticalSection) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 8 * 1000);
}

TEST(MutexTest, CondVarWaitAndNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(ready);
}

TEST(MutexTest, CondVarWaitUntilTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  // Nothing ever notifies: the wait must return (timeout reported as
  // false), re-holding the lock.
  while (cv.WaitUntil(&mu, deadline)) {
    // spurious wakeup before the deadline: wait again
  }
  SUCCEED();
}

TEST(MutexTest, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  int value = 0;
  {
    WriterMutexLock lock(&mu);
    value = 42;
  }
  std::vector<std::thread> readers;
  std::atomic<int> sum{0};
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      ReaderMutexLock lock(&mu);
      sum.fetch_add(value);
    });
  }
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(sum.load(), 4 * 42);
}

}  // namespace
}  // namespace skycube
