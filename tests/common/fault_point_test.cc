// Proves the compile-time contract of SKYCUBE_FAULT_POINT in *both* build
// modes:
//  - fault injection ON (the test-suite default): armed points fire, hits
//    are counted, and the registry observes traversals;
//  - fault injection OFF (Release builds; exercised by the faults-off CI
//    ctest run): the macro is the compile-time constant `false` — the
//    static_asserts below would fail to compile if any registry call
//    survived, and arming a point is a no-op for call sites.

#include "common/fault_injection.h"

#include <type_traits>

#include "gtest/gtest.h"

namespace skycube {
namespace {

#if !SKYCUBE_FAULT_INJECTION

// The macro must collapse to a constant expression usable in static_assert
// — i.e. no FaultInjection::Instance() call, no branch, nothing for the
// optimizer to even remove.
static_assert(!SKYCUBE_FAULT_POINT("test.compiled_out"),
              "SKYCUBE_FAULT_POINT must be constant false when "
              "SKYCUBE_FAULT_INJECTION is off");
static_assert(
    std::is_same_v<decltype(SKYCUBE_FAULT_POINT("test.compiled_out")), bool>,
    "SKYCUBE_FAULT_POINT must stay a bool expression in both modes");

#endif

TEST(FaultPointTest, EnabledReflectsBuildMode) {
  EXPECT_EQ(FaultInjection::Enabled(), SKYCUBE_FAULT_INJECTION != 0);
}

TEST(FaultPointTest, ArmedPointFiresOnlyWhenCompiledIn) {
  FaultInjection::Instance().Reset();
  FaultInjection::Instance().ArmFailure("test.compiled_out", 1);
  const bool fired = SKYCUBE_FAULT_POINT("test.compiled_out");
  if (FaultInjection::Enabled()) {
    EXPECT_TRUE(fired);
    EXPECT_EQ(FaultInjection::Instance().HitCount("test.compiled_out"), 1u);
    // The armed count is spent: the next traversal passes.
    EXPECT_FALSE(SKYCUBE_FAULT_POINT("test.compiled_out"));
  } else {
    // Compiled out: the site never consulted the registry.
    EXPECT_FALSE(fired);
    EXPECT_EQ(FaultInjection::Instance().HitCount("test.compiled_out"), 0u);
  }
  FaultInjection::Instance().Reset();
}

TEST(FaultPointTest, UnarmedPointNeverFires) {
  FaultInjection::Instance().Reset();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(SKYCUBE_FAULT_POINT("test.never_armed"));
  }
}

}  // namespace
}  // namespace skycube
