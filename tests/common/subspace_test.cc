#include "common/subspace.h"

#include <vector>

#include <gtest/gtest.h>

namespace skycube {
namespace {

TEST(SubspaceTest, FullMask) {
  EXPECT_EQ(FullMask(1), 0b1u);
  EXPECT_EQ(FullMask(4), 0b1111u);
  EXPECT_EQ(FullMask(64), ~DimMask{0});
}

TEST(SubspaceTest, MaskSizeAndBits) {
  EXPECT_EQ(MaskSize(kEmptyMask), 0);
  EXPECT_EQ(MaskSize(0b1011u), 3);
  EXPECT_EQ(DimBit(0), 0b1u);
  EXPECT_EQ(DimBit(5), 0b100000u);
  EXPECT_TRUE(MaskContains(0b1010u, 1));
  EXPECT_FALSE(MaskContains(0b1010u, 0));
}

TEST(SubspaceTest, SubsetTests) {
  EXPECT_TRUE(IsSubsetOf(0b0011u, 0b0111u));
  EXPECT_TRUE(IsSubsetOf(0b0111u, 0b0111u));
  EXPECT_FALSE(IsSubsetOf(0b1000u, 0b0111u));
  EXPECT_TRUE(IsProperSubsetOf(0b0011u, 0b0111u));
  EXPECT_FALSE(IsProperSubsetOf(0b0111u, 0b0111u));
  EXPECT_TRUE(IsSubsetOf(kEmptyMask, kEmptyMask));
}

TEST(SubspaceTest, LowestDimAndIteration) {
  EXPECT_EQ(LowestDim(0b1000u), 3);
  std::vector<int> dims;
  ForEachDim(0b10110u, [&](int dim) { dims.push_back(dim); });
  EXPECT_EQ(dims, (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(MaskDims(0b101u), (std::vector<int>{0, 2}));
  EXPECT_TRUE(MaskDims(kEmptyMask).empty());
}

TEST(SubspaceTest, ForEachNonEmptySubsetEnumeratesAll) {
  std::vector<DimMask> subsets;
  ForEachNonEmptySubset(0b1011u, [&](DimMask sub) { subsets.push_back(sub); });
  EXPECT_EQ(subsets.size(), 7u);  // 2^3 − 1
  for (DimMask sub : subsets) {
    EXPECT_NE(sub, kEmptyMask);
    EXPECT_TRUE(IsSubsetOf(sub, 0b1011u));
  }
  // No duplicates.
  std::sort(subsets.begin(), subsets.end());
  EXPECT_EQ(std::adjacent_find(subsets.begin(), subsets.end()),
            subsets.end());
}

TEST(SubspaceTest, LettersRoundTrip) {
  EXPECT_EQ(MaskFromLetters("ACD"), 0b1101u);
  EXPECT_EQ(MaskFromLetters(""), kEmptyMask);
  EXPECT_EQ(FormatMask(0b1101u), "ACD");
  EXPECT_EQ(FormatMask(kEmptyMask), "{}");
  EXPECT_EQ(FormatMaskNumeric(0b1101u), "{0,2,3}");
}

TEST(SubspaceTest, FormatMaskFallsBackNumericBeyondZ) {
  EXPECT_EQ(FormatMask(DimBit(30)), "{30}");
}

TEST(SubspaceTest, MinimalMasks) {
  // {AB, A, ABC, CD} → minimal are A and CD.
  std::vector<DimMask> masks = {0b0011, 0b0001, 0b0111, 0b1100};
  EXPECT_EQ(MinimalMasks(masks), (std::vector<DimMask>{0b0001, 0b1100}));
  // Duplicates collapse.
  EXPECT_EQ(MinimalMasks({0b01, 0b01}), (std::vector<DimMask>{0b01}));
  EXPECT_TRUE(MinimalMasks({}).empty());
  // The empty mask is minimal below everything.
  EXPECT_EQ(MinimalMasks({0b01, 0}), (std::vector<DimMask>{0}));
}

TEST(SubspaceTest, MaximalMasks) {
  std::vector<DimMask> masks = {0b0011, 0b0001, 0b0111, 0b1100};
  // Sorted by (size, value): CD (size 2) before ABC (size 3).
  EXPECT_EQ(MaximalMasks(masks), (std::vector<DimMask>{0b1100, 0b0111}));
  EXPECT_TRUE(MaximalMasks({}).empty());
}

TEST(SubspaceTest, MaskSizeThenValueLess) {
  MaskSizeThenValueLess less;
  EXPECT_TRUE(less(0b1, 0b11));    // smaller size first
  EXPECT_TRUE(less(0b01, 0b10));   // same size: numeric
  EXPECT_FALSE(less(0b10, 0b10));  // irreflexive
}

}  // namespace
}  // namespace skycube
