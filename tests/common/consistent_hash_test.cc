// HashRing tests: cross-instance determinism (a router and a shard built
// from the same (num_shards, seed, vnodes) triple must agree on every
// key's owner — that is the whole sharding contract), load spread across
// shards, remap locality when the shard count changes, and parameter
// clamping.
#include "common/consistent_hash.h"

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

namespace skycube {
namespace {

constexpr uint64_t kKeys = 20000;

TEST(HashRing, DeterministicAcrossInstances) {
  const HashRing a(5, /*seed=*/17, /*vnodes=*/64);
  const HashRing b(5, /*seed=*/17, /*vnodes=*/64);
  for (uint64_t key = 0; key < kKeys; ++key) {
    ASSERT_EQ(a.OwnerOf(key), b.OwnerOf(key)) << "key " << key;
  }
}

TEST(HashRing, SeedChangesTheMapping) {
  const HashRing a(5, /*seed=*/17);
  const HashRing b(5, /*seed=*/18);
  uint64_t moved = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    if (a.OwnerOf(key) != b.OwnerOf(key)) ++moved;
  }
  // Different seeds build unrelated rings; most keys land elsewhere.
  EXPECT_GT(moved, kKeys / 2);
}

TEST(HashRing, OwnersAreInRange) {
  for (size_t shards : {1u, 2u, 3u, 7u, 16u}) {
    const HashRing ring(shards, /*seed=*/3);
    for (uint64_t key = 0; key < 1000; ++key) {
      ASSERT_LT(ring.OwnerOf(key), shards);
    }
  }
}

TEST(HashRing, SpreadsSequentialIdsEvenly) {
  // Sequential row ids are the real workload (global ids count up from 0);
  // the key mixing must keep every shard near 1/n even so.
  for (size_t shards : {2u, 3u, 8u}) {
    const HashRing ring(shards, /*seed=*/0, /*vnodes=*/64);
    std::map<size_t, uint64_t> load;
    for (uint64_t key = 0; key < kKeys; ++key) {
      ++load[ring.OwnerOf(key)];
    }
    ASSERT_EQ(load.size(), shards);  // nobody starves
    const double expected = static_cast<double>(kKeys) / shards;
    for (const auto& [shard, count] : load) {
      EXPECT_GT(count, expected * 0.5) << "shard " << shard << " underfull";
      EXPECT_LT(count, expected * 1.6) << "shard " << shard << " overfull";
    }
  }
}

TEST(HashRing, GrowingTheRingMovesOnlyArcsOfTheNewShard) {
  // Consistent hashing's defining property: adding shard n leaves every
  // key either with its old owner or on the new shard — no key moves
  // between two pre-existing shards.
  const size_t n = 4;
  const HashRing before(n, /*seed=*/9);
  const HashRing after(n + 1, /*seed=*/9);
  uint64_t moved = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    const size_t old_owner = before.OwnerOf(key);
    const size_t new_owner = after.OwnerOf(key);
    if (new_owner == old_owner) continue;
    ASSERT_EQ(new_owner, n) << "key " << key << " moved between "
                            << old_owner << " and " << new_owner;
    ++moved;
  }
  // The new shard claims about 1/(n+1) of the keyspace, not most of it
  // (the `hash % n` mapping this replaced reshuffled nearly everything).
  EXPECT_GT(moved, kKeys / 20);
  EXPECT_LT(moved, kKeys / 2);
}

TEST(HashRing, ClampsDegenerateParameters) {
  const HashRing ring(0, /*seed=*/1, /*vnodes=*/0);
  EXPECT_EQ(ring.num_shards(), 1u);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(ring.OwnerOf(key), 0u);
  }
}

}  // namespace
}  // namespace skycube
