// Unit tests for Status/Result, FlagParser, Rng, hashing and TablePrinter.
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace skycube {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "Ok");
  const Status error = Status::InvalidArgument("bad input");
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(error.ToString(), "InvalidArgument: bad input");
}

TEST(ResultTest, ValueAndStatusAccess) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> err_result(Status::NotFound("missing"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> result(std::vector<int>{1, 2, 3});
  std::vector<int> moved = std::move(result).value();
  EXPECT_EQ(moved, (std::vector<int>{1, 2, 3}));
}

TEST(FlagParserTest, ParsesAllForms) {
  const char* argv[] = {"prog",        "--alpha=3",  "--beta", "7",
                        "--gamma",     "--no-delta", "pos1",   "--eps=hi",
                        "--zeta=2.25", "pos2"};
  FlagParser flags(10, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("alpha", 0), 3);
  EXPECT_EQ(flags.GetInt("beta", 0), 7);
  EXPECT_TRUE(flags.GetBool("gamma", false));
  EXPECT_FALSE(flags.GetBool("delta", true));
  EXPECT_EQ(flags.GetString("eps", ""), "hi");
  EXPECT_DOUBLE_EQ(flags.GetDouble("zeta", 0), 2.25);
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
  EXPECT_EQ(flags.GetInt("missing", -5), -5);
  EXPECT_TRUE(flags.Has("alpha"));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(RngTest, DeterministicAndWellDistributed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
  Rng c(124);
  double mean = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = c.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    mean += v;
  }
  mean /= 10000;
  EXPECT_NEAR(mean, 0.5, 0.02);
}

TEST(RngTest, BoundedHasNoObviousBias) {
  Rng rng(55);
  int counts[5] = {0, 0, 0, 0, 0};
  for (int i = 0; i < 50000; ++i) counts[rng.NextBounded(5)]++;
  for (int bucket = 0; bucket < 5; ++bucket) {
    EXPECT_NEAR(counts[bucket], 10000, 500);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  double mean = 0;
  double var = 0;
  const int n = 20000;
  std::vector<double> xs(n);
  for (int i = 0; i < n; ++i) {
    xs[i] = rng.NextGaussian();
    mean += xs[i];
  }
  mean /= n;
  for (int i = 0; i < n; ++i) var += (xs[i] - mean) * (xs[i] - mean);
  var /= n;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(HashTest, DoubleHashingCanonicalizesZero) {
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
  EXPECT_NE(HashDouble(1.0), HashDouble(2.0));
}

TEST(HashTest, VectorHashersDifferentiate) {
  VectorDoubleHash hasher;
  EXPECT_EQ(hasher({1, 2}), hasher({1, 2}));
  EXPECT_NE(hasher({1, 2}), hasher({2, 1}));
  EXPECT_NE(hasher({1}), hasher({1, 0}));
  VectorU32Hash id_hasher;
  EXPECT_EQ(id_hasher({3, 4}), id_hasher({3, 4}));
  EXPECT_NE(id_hasher({3, 4}), id_hasher({4, 3}));
}

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"dim", "runtime"});
  table.NewRow().AddInt(4).AddDouble(1.5, 2);
  table.NewRow().AddInt(12).AddCell("n/a");
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("dim"), std::string::npos);
  EXPECT_NE(out.find("1.50"), std::string::npos);
  EXPECT_NE(out.find("n/a"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinterTest, TsvOutput) {
  TablePrinter table({"a", "b"});
  table.NewRow().AddInt(1).AddInt(2);
  std::ostringstream os;
  table.PrintTsv(os);
  EXPECT_EQ(os.str(), "#a\tb\n1\t2\n");
}

}  // namespace
}  // namespace skycube
