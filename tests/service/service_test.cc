// SkycubeService behaviour: request validation, cache hit/miss/eviction
// accounting, batch fan-out correctness, and — the property the snapshot
// design exists for — that a Reload racing a query storm never produces an
// answer that is inconsistent with the snapshot version it reports.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/subspace.h"
#include "core/cube.h"
#include "core/maintenance.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "service/service.h"

namespace skycube {
namespace {

Dataset MakeData(size_t objects, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_dims = dims;
  spec.num_objects = objects;
  spec.seed = seed;
  spec.truncate_decimals = 2;
  return GenerateSynthetic(spec);
}

std::shared_ptr<const CompressedSkylineCube> MakeCube(const Dataset& data) {
  return std::make_shared<const CompressedSkylineCube>(
      data.num_dims(), data.num_objects(), ComputeStellar(data));
}

TEST(SkycubeServiceTest, AnswersMatchCube) {
  const Dataset data = MakeData(200, 4, 3);
  auto cube = MakeCube(data);
  SkycubeService service(cube);
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
    const QueryResponse skyline =
        service.Execute(QueryRequest::SubspaceSkyline(subspace));
    ASSERT_TRUE(skyline.ok);
    ASSERT_NE(skyline.ids, nullptr);
    EXPECT_EQ(*skyline.ids, cube->SubspaceSkyline(subspace));
    EXPECT_EQ(skyline.snapshot_version, 1u);

    const QueryResponse card =
        service.Execute(QueryRequest::SkylineCardinality(subspace));
    EXPECT_EQ(card.count, cube->SkylineCardinality(subspace));
  });
  for (ObjectId id = 0; id < data.num_objects(); id += 17) {
    const QueryResponse member =
        service.Execute(QueryRequest::Membership(id, data.full_mask()));
    EXPECT_EQ(member.member,
              cube->IsInSubspaceSkyline(id, data.full_mask()));
    const QueryResponse count =
        service.Execute(QueryRequest::MembershipCount(id));
    EXPECT_EQ(count.count, cube->CountSubspacesWhereSkyline(id));
  }
  EXPECT_EQ(service.Execute(QueryRequest::SkycubeSize()).count,
            cube->TotalSubspaceSkylineObjects());
}

TEST(SkycubeServiceTest, RejectsMalformedRequests) {
  const Dataset data = MakeData(50, 4, 5);
  SkycubeService service(MakeCube(data));

  // Empty subspace.
  QueryResponse response = service.Execute(QueryRequest::SubspaceSkyline(0));
  EXPECT_FALSE(response.ok);
  EXPECT_FALSE(response.error.empty());

  // Dimensions beyond the cube.
  response = service.Execute(
      QueryRequest::SubspaceSkyline(DimMask{1} << data.num_dims()));
  EXPECT_FALSE(response.ok);

  // Object id out of range.
  response = service.Execute(QueryRequest::Membership(
      static_cast<ObjectId>(data.num_objects()), data.full_mask()));
  EXPECT_FALSE(response.ok);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.invalid_requests, 3u);
  // Invalid requests are neither cached nor counted as misses.
  EXPECT_EQ(stats.cache_misses + stats.cache_hits, 0u);
}

TEST(SkycubeServiceTest, CacheHitMissAndEvictionCounters) {
  const Dataset data = MakeData(200, 5, 9);
  SkycubeServiceOptions options;
  options.cache.capacity = 8;
  options.cache.num_shards = 1;  // deterministic eviction order
  SkycubeService service(MakeCube(data), options);

  const QueryRequest request = QueryRequest::SubspaceSkyline(0b11);
  const QueryResponse miss = service.Execute(request);
  EXPECT_FALSE(miss.cache_hit);
  const QueryResponse hit = service.Execute(request);
  EXPECT_TRUE(hit.cache_hit);
  ASSERT_NE(hit.ids, nullptr);
  EXPECT_EQ(*hit.ids, *miss.ids);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_evictions, 0u);

  // Flood with distinct keys: the single 8-entry shard must evict.
  for (DimMask subspace = 1; subspace <= 20; ++subspace) {
    service.Execute(QueryRequest::SkylineCardinality(subspace));
  }
  stats = service.stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_LE(stats.cache_entries, 8u);

  // The original entry was evicted long ago: a re-issue misses again.
  EXPECT_FALSE(service.Execute(request).cache_hit);
}

TEST(SkycubeServiceTest, DisabledCacheNeverHits) {
  const Dataset data = MakeData(100, 4, 2);
  SkycubeServiceOptions options;
  options.cache.capacity = 0;
  SkycubeService service(MakeCube(data), options);
  const QueryRequest request = QueryRequest::SkylineCardinality(0b101);
  service.Execute(request);
  EXPECT_FALSE(service.Execute(request).cache_hit);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_entries, 0u);
}

TEST(SkycubeServiceTest, BatchMatchesSequentialExecution) {
  const Dataset data = MakeData(300, 5, 13);
  auto cube = MakeCube(data);
  SkycubeServiceOptions options;
  options.batch_threads = 4;
  SkycubeService service(cube, options);

  std::vector<QueryRequest> batch;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const DimMask subspace =
        static_cast<DimMask>(1 + rng.NextBounded(data.full_mask()));
    switch (rng.NextBounded(4)) {
      case 0: batch.push_back(QueryRequest::SubspaceSkyline(subspace)); break;
      case 1: batch.push_back(QueryRequest::SkylineCardinality(subspace)); break;
      case 2:
        batch.push_back(QueryRequest::Membership(
            static_cast<ObjectId>(rng.NextBounded(data.num_objects())),
            subspace));
        break;
      default:
        batch.push_back(QueryRequest::MembershipCount(
            static_cast<ObjectId>(rng.NextBounded(data.num_objects()))));
        break;
    }
  }
  batch.push_back(QueryRequest::SubspaceSkyline(0));  // invalid mid-batch

  const std::vector<QueryResponse> responses = service.ExecuteBatch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const QueryRequest& request = batch[i];
    const QueryResponse& response = responses[i];
    ASSERT_EQ(response.kind, request.kind);
    if (request.subspace == 0 &&
        (request.kind == QueryKind::kSubspaceSkyline ||
         request.kind == QueryKind::kSkylineCardinality ||
         request.kind == QueryKind::kMembership)) {
      EXPECT_FALSE(response.ok);
      continue;
    }
    ASSERT_TRUE(response.ok);
    switch (request.kind) {
      case QueryKind::kSubspaceSkyline:
        ASSERT_NE(response.ids, nullptr);
        EXPECT_EQ(*response.ids, cube->SubspaceSkyline(request.subspace));
        break;
      case QueryKind::kSkylineCardinality:
        EXPECT_EQ(response.count,
                  cube->SkylineCardinality(request.subspace));
        break;
      case QueryKind::kMembership:
        EXPECT_EQ(response.member, cube->IsInSubspaceSkyline(
                                       request.object, request.subspace));
        break;
      case QueryKind::kMembershipCount:
        EXPECT_EQ(response.count,
                  cube->CountSubspacesWhereSkyline(request.object));
        break;
      case QueryKind::kSkycubeSize:
        EXPECT_EQ(response.count, cube->TotalSubspaceSkylineObjects());
        break;
      case QueryKind::kInsert:
      case QueryKind::kDelete:
      case QueryKind::kEpochDiff:
        FAIL() << "batch generator never emits mutations or epoch diffs";
        break;
    }
  }
  EXPECT_EQ(service.stats().batches, 1u);
}

TEST(SkycubeServiceTest, ReloadBumpsVersionAndInvalidatesCache) {
  IncrementalCubeMaintainer maintainer(MakeData(150, 4, 21));
  SkycubeService service(std::make_shared<const CompressedSkylineCube>(
      maintainer.MakeCube()));
  const QueryRequest request = QueryRequest::SkycubeSize();
  const QueryResponse before = service.Execute(request);
  EXPECT_TRUE(service.Execute(request).cache_hit);

  // Insert a dominating-everything row: the skycube must change.
  maintainer.Insert(std::vector<double>(4, 0.0));
  service.Reload(std::make_shared<const CompressedSkylineCube>(
      maintainer.MakeCube()));

  const QueryResponse after = service.Execute(request);
  EXPECT_FALSE(after.cache_hit);  // version key ⇒ old entry unreachable
  EXPECT_EQ(after.snapshot_version, 2u);
  EXPECT_NE(after.count, before.count);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.snapshot_version, 2u);
  EXPECT_EQ(stats.snapshot_swaps, 1u);
}

TEST(SkycubeServiceTest, SnapshotSwapMidStormIsConsistent) {
  // Readers hammer the service while a writer repeatedly swaps snapshots
  // between two known cubes. Every response must (a) carry a version that
  // never exceeds the published one, and (b) be byte-identical to the
  // answer of the cube that owned the version it reports — i.e. no torn or
  // mixed-snapshot answers. TSan-clean by construction.
  const Dataset base = MakeData(150, 4, 31);
  IncrementalCubeMaintainer maintainer(base);
  auto cube_v1 = std::make_shared<const CompressedSkylineCube>(
      maintainer.MakeCube());
  maintainer.Insert(std::vector<double>(4, 0.0));
  auto cube_v2 = std::make_shared<const CompressedSkylineCube>(
      maintainer.MakeCube());
  const std::vector<const CompressedSkylineCube*> cube_of_version{
      nullptr, cube_v1.get(), cube_v2.get()};

  SkycubeService service(cube_v1);

  constexpr int kSwaps = 40;
  constexpr int kReaders = 6;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> inconsistencies{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(500 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const DimMask subspace =
            static_cast<DimMask>(1 + rng.NextBounded(base.full_mask()));
        const QueryResponse response =
            service.Execute(QueryRequest::SubspaceSkyline(subspace));
        if (!response.ok || response.ids == nullptr) {
          ++inconsistencies;
          continue;
        }
        // The version alternates 1,2,1,2,... but cube content only has two
        // states; map version parity back to the cube that produced it.
        const CompressedSkylineCube* expected_cube =
            cube_of_version[1 + (response.snapshot_version + 1) % 2];
        if (*response.ids != expected_cube->SubspaceSkyline(subspace)) {
          ++inconsistencies;
        }
      }
    });
  }
  uint64_t last_version = 1;
  for (int swap = 0; swap < kSwaps; ++swap) {
    service.Reload(swap % 2 == 0 ? cube_v2 : cube_v1);
    const uint64_t version = service.snapshot_version();
    if (version != last_version + 1) ++inconsistencies;
    last_version = version;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(inconsistencies.load(), 0u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.snapshot_swaps, static_cast<uint64_t>(kSwaps));
  EXPECT_EQ(stats.snapshot_version, 1u + kSwaps);
}

// --- Live ingest through the service -------------------------------------

TEST(SkycubeServiceTest, InsertWithoutHandlerIsRejected) {
  const Dataset data = MakeData(40, 3, 9);
  SkycubeService service(MakeCube(data));
  const QueryResponse response =
      service.Execute(QueryRequest::Insert({0.5, 0.5, 0.5}));
  EXPECT_FALSE(response.ok);
  EXPECT_NE(response.error.find("read-only"), std::string::npos);
  EXPECT_EQ(service.stats().inserts_applied, 0u);
}

TEST(SkycubeServiceTest, InsertAppliesBumpsVersionAndReportsPath) {
  const Dataset data = MakeData(40, 3, 9);
  IncrementalCubeMaintainer maintainer(data);
  MaintainerInsertHandler handler(&maintainer);
  SkycubeService service(
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube()));
  service.AttachInsertHandler(&handler);

  // Width mismatch is a validation error, not an apply failure.
  const QueryResponse bad = service.Execute(QueryRequest::Insert({0.5}));
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(service.stats().invalid_requests, 1u);

  const QueryResponse applied =
      service.Execute(QueryRequest::Insert({0.001, 0.001, 0.001}));
  ASSERT_TRUE(applied.ok) << applied.error;
  EXPECT_EQ(applied.kind, QueryKind::kInsert);
  EXPECT_EQ(applied.insert_path, "recompute");
  EXPECT_EQ(applied.count, data.num_objects() + 1);
  EXPECT_EQ(applied.snapshot_version, 2u);  // post-insert snapshot
  EXPECT_EQ(service.snapshot_version(), 2u);
  EXPECT_EQ(service.stats().inserts_applied, 1u);

  // The new snapshot answers queries over the grown dataset.
  const ObjectId inserted = static_cast<ObjectId>(data.num_objects());
  const QueryResponse member = service.Execute(
      QueryRequest::Membership(inserted, data.full_mask()));
  ASSERT_TRUE(member.ok) << member.error;
  EXPECT_TRUE(member.member);
}

TEST(SkycubeServiceTest, InsertInvalidatesCachedAnswers) {
  // The staleness regression this PR fixes: a cached pre-insert answer
  // must never be served once an insert has changed the cube.
  const Dataset data = MakeData(60, 3, 11);
  IncrementalCubeMaintainer maintainer(data);
  MaintainerInsertHandler handler(&maintainer);
  SkycubeService service(
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube()));
  service.AttachInsertHandler(&handler);

  const DimMask full = data.full_mask();
  const QueryResponse before =
      service.Execute(QueryRequest::SkylineCardinality(full));
  ASSERT_TRUE(before.ok);
  // Same query again: served from cache.
  service.Execute(QueryRequest::SkylineCardinality(full));
  EXPECT_EQ(service.stats().cache_hits, 1u);

  // A strictly dominating insert changes every subspace skyline.
  const QueryResponse applied =
      service.Execute(QueryRequest::Insert({-1.0, -1.0, -1.0}));
  ASSERT_TRUE(applied.ok) << applied.error;

  const QueryResponse after =
      service.Execute(QueryRequest::SkylineCardinality(full));
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.snapshot_version, 2u);
  EXPECT_EQ(after.count, 1u);  // the dominator owns the skyline
  EXPECT_NE(after.count, before.count);
  // The post-insert probe missed: version-keyed cache cannot serve v1.
  EXPECT_EQ(service.stats().cache_hits, 1u);
}

TEST(SkycubeServiceTest, InsertResponsesAreNeverCached) {
  const Dataset data = MakeData(30, 3, 13);
  IncrementalCubeMaintainer maintainer(data);
  MaintainerInsertHandler handler(&maintainer);
  SkycubeService service(
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube()));
  service.AttachInsertHandler(&handler);
  const std::vector<double> row = {0.4, 0.4, 0.4};
  const QueryResponse first = service.Execute(QueryRequest::Insert(row));
  const QueryResponse second = service.Execute(QueryRequest::Insert(row));
  ASSERT_TRUE(first.ok && second.ok);
  EXPECT_EQ(second.insert_path, "duplicate");  // actually applied twice
  EXPECT_EQ(second.snapshot_version, first.snapshot_version + 1);
  EXPECT_EQ(service.stats().cache_hits, 0u);
  EXPECT_EQ(service.stats().inserts_applied, 2u);
}

TEST(SkycubeServiceTest, DeleteInvalidatesCachedAnswers) {
  // The delete twin of the insert-staleness regression: once a delete has
  // changed the cube, no cached pre-delete answer may be served.
  const Dataset data = MakeData(60, 3, 17);
  IncrementalCubeMaintainer maintainer(data);
  MaintainerInsertHandler handler(&maintainer);
  SkycubeService service(
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube()));
  service.AttachInsertHandler(&handler);
  const DimMask full = data.full_mask();

  const QueryResponse before =
      service.Execute(QueryRequest::SubspaceSkyline(full));
  ASSERT_TRUE(before.ok);
  ASSERT_FALSE(before.ids->empty());
  service.Execute(QueryRequest::SubspaceSkyline(full));
  EXPECT_EQ(service.stats().cache_hits, 1u);

  // Delete a row that is in the full-space skyline: the answer must change.
  const ObjectId victim = before.ids->front();
  const QueryResponse deleted = service.Execute(QueryRequest::Delete(victim));
  ASSERT_TRUE(deleted.ok) << deleted.error;
  EXPECT_EQ(deleted.kind, QueryKind::kDelete);
  EXPECT_EQ(deleted.count, data.num_objects() - 1);  // post-delete live rows
  EXPECT_EQ(deleted.snapshot_version, 2u);
  EXPECT_EQ(service.stats().deletes_applied, 1u);

  const QueryResponse after =
      service.Execute(QueryRequest::SubspaceSkyline(full));
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.snapshot_version, 2u);
  EXPECT_EQ(std::count(after.ids->begin(), after.ids->end(), victim), 0);
  // The post-delete probe missed: the version-keyed cache cannot serve v1.
  EXPECT_EQ(service.stats().cache_hits, 1u);
  // And the fresh answer equals the maintainer's post-delete truth.
  EXPECT_EQ(*after.ids, maintainer.MakeCube().SubspaceSkyline(full));
}

TEST(SkycubeServiceTest, AlreadyDeadDeleteKeepsSnapshotAndCache) {
  const Dataset data = MakeData(40, 3, 19);
  IncrementalCubeMaintainer maintainer(data);
  MaintainerInsertHandler handler(&maintainer);
  SkycubeService service(
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube()));
  service.AttachInsertHandler(&handler);

  ASSERT_TRUE(service.Execute(QueryRequest::Delete(7)).ok);
  const uint64_t version = service.snapshot_version();
  service.Execute(QueryRequest::SkylineCardinality(data.full_mask()));
  service.Execute(QueryRequest::SkylineCardinality(data.full_mask()));
  EXPECT_EQ(service.stats().cache_hits, 1u);

  // Deleting the same row again (and an out-of-range id — a replayed
  // delete) is an acked no-op: no snapshot swap, cached answers survive.
  const QueryResponse again = service.Execute(QueryRequest::Delete(7));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_EQ(again.insert_path, "dead");
  const QueryResponse orphan = service.Execute(QueryRequest::Delete(9999));
  ASSERT_TRUE(orphan.ok) << orphan.error;
  EXPECT_EQ(orphan.insert_path, "dead");
  EXPECT_EQ(service.snapshot_version(), version);
  EXPECT_EQ(service.stats().deletes_applied, 1u);

  service.Execute(QueryRequest::SkylineCardinality(data.full_mask()));
  EXPECT_EQ(service.stats().cache_hits, 2u);  // still the same snapshot
}

TEST(SkycubeServiceTest, ExpiryInvalidatesCachedAnswers) {
  // Sliding-window twin of the same regression: an expiry pass that
  // tombstones rows must invalidate the result cache.
  const Dataset data = MakeData(40, 3, 23);
  IncrementalCubeMaintainer maintainer(data);
  MaintainerInsertHandler handler(&maintainer);
  uint64_t now_ms = 1000;
  SkycubeServiceOptions options;
  options.ingest_clock = [&now_ms] { return now_ms; };
  SkycubeService service(
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube()),
      options);
  service.AttachInsertHandler(&handler);

  // A dominating row stamped at t=1000 takes over every skyline.
  ASSERT_TRUE(service.Execute(QueryRequest::Insert({0.0, 0.0, 0.0})).ok);
  const DimMask full = data.full_mask();
  const QueryResponse owned =
      service.Execute(QueryRequest::SkylineCardinality(full));
  ASSERT_TRUE(owned.ok);
  EXPECT_EQ(owned.count, 1u);
  service.Execute(QueryRequest::SkylineCardinality(full));
  EXPECT_EQ(service.stats().cache_hits, 1u);

  // The window slides past t=1000: the dominator expires, bootstrap rows
  // (timestamp 0) are immune, and the cached answer dies with the version.
  now_ms = 5000;
  Result<uint64_t> expired = service.ApplyExpiry(2000);
  ASSERT_TRUE(expired.ok()) << expired.status().ToString();
  EXPECT_EQ(expired.value(), 1u);
  EXPECT_EQ(service.stats().expiry_passes, 1u);
  EXPECT_EQ(service.stats().expired_rows, 1u);

  const QueryResponse after =
      service.Execute(QueryRequest::SkylineCardinality(full));
  ASSERT_TRUE(after.ok);
  EXPECT_GT(after.count, 1u);  // the bootstrap skyline is back
  EXPECT_EQ(service.stats().cache_hits, 1u);  // post-expiry probe missed

  // A pass that expires nothing keeps the snapshot (and the cache) alive.
  const uint64_t version = service.snapshot_version();
  expired = service.ApplyExpiry(2000);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired.value(), 0u);
  EXPECT_EQ(service.snapshot_version(), version);
}

TEST(SkycubeServiceTest, EpochDiffTracksEnteredAndLeft) {
  const Dataset data = MakeData(50, 3, 27);
  IncrementalCubeMaintainer maintainer(data);
  MaintainerInsertHandler handler(&maintainer);
  SkycubeService service(
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube()));
  service.AttachInsertHandler(&handler);
  const DimMask full = data.full_mask();

  const QueryResponse v1_sky =
      service.Execute(QueryRequest::SubspaceSkyline(full));
  ASSERT_TRUE(v1_sky.ok);

  // A dominating insert: everything leaves, only the new row enters.
  ASSERT_TRUE(service.Execute(QueryRequest::Insert({0.0, 0.0, 0.0})).ok);
  const ObjectId dominator = static_cast<ObjectId>(data.num_objects());
  const QueryResponse diff =
      service.Execute(QueryRequest::EpochDiff(full, 1));
  ASSERT_TRUE(diff.ok) << diff.error;
  EXPECT_EQ(diff.kind, QueryKind::kEpochDiff);
  ASSERT_NE(diff.ids, nullptr);
  ASSERT_NE(diff.left_ids, nullptr);
  EXPECT_EQ(*diff.ids, std::vector<ObjectId>{dominator});
  EXPECT_EQ(*diff.left_ids, *v1_sky.ids);
  EXPECT_EQ(diff.count, 1 + v1_sky.ids->size());

  // Deleting the dominator restores the v1 skyline: the diff drains.
  ASSERT_TRUE(service.Execute(QueryRequest::Delete(dominator)).ok);
  const QueryResponse undone =
      service.Execute(QueryRequest::EpochDiff(full, 1));
  ASSERT_TRUE(undone.ok) << undone.error;
  EXPECT_TRUE(undone.ids->empty());
  EXPECT_TRUE(undone.left_ids->empty());
  EXPECT_EQ(undone.count, 0u);

  // Diffing against the current version is always empty.
  const QueryResponse self = service.Execute(
      QueryRequest::EpochDiff(full, service.snapshot_version()));
  ASSERT_TRUE(self.ok);
  EXPECT_EQ(self.count, 0u);

  // Epoch-diff answers are cacheable — keyed by the version *pair*.
  const QueryResponse warm =
      service.Execute(QueryRequest::EpochDiff(full, 1));
  ASSERT_TRUE(warm.ok);
  EXPECT_TRUE(warm.cache_hit);
}

TEST(SkycubeServiceTest, EpochDiffOutsideRetainedHistoryIsNotFound) {
  const Dataset data = MakeData(30, 3, 29);
  IncrementalCubeMaintainer maintainer(data);
  MaintainerInsertHandler handler(&maintainer);
  SkycubeServiceOptions options;
  options.epoch_history = 2;  // tight ring: v1 falls out quickly
  SkycubeService service(
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube()),
      options);
  service.AttachInsertHandler(&handler);
  const DimMask full = data.full_mask();

  // since_version == 0 is malformed, not merely unretained.
  const QueryResponse zero = service.Execute(QueryRequest::EpochDiff(full, 0));
  EXPECT_FALSE(zero.ok);
  EXPECT_EQ(zero.code, StatusCode::kInvalidArgument);

  // A future version was never retained.
  const QueryResponse future =
      service.Execute(QueryRequest::EpochDiff(full, 99));
  EXPECT_FALSE(future.ok);
  EXPECT_EQ(future.code, StatusCode::kNotFound);

  // Push v1 out of the 2-deep ring with two inserts (v2, v3).
  ASSERT_TRUE(service.Execute(QueryRequest::Insert({0.4, 0.4, 0.4})).ok);
  ASSERT_TRUE(service.Execute(QueryRequest::Insert({0.3, 0.3, 0.3})).ok);
  const QueryResponse evicted =
      service.Execute(QueryRequest::EpochDiff(full, 1));
  EXPECT_FALSE(evicted.ok);
  EXPECT_EQ(evicted.code, StatusCode::kNotFound);
  const QueryResponse retained =
      service.Execute(QueryRequest::EpochDiff(full, 2));
  EXPECT_TRUE(retained.ok) << retained.error;

  // Error responses are never cached: the same kNotFound repeats as a
  // computed answer, not a cache hit.
  const QueryResponse again =
      service.Execute(QueryRequest::EpochDiff(full, 1));
  EXPECT_FALSE(again.ok);
  EXPECT_FALSE(again.cache_hit);
}

TEST(SkycubeServiceTest, EpochHistoryDisabledAnswersNotFound) {
  const Dataset data = MakeData(20, 3, 31);
  SkycubeServiceOptions options;
  options.epoch_history = 0;
  SkycubeService service(MakeCube(data), options);
  const QueryResponse diff =
      service.Execute(QueryRequest::EpochDiff(data.full_mask(), 1));
  EXPECT_FALSE(diff.ok);
  EXPECT_EQ(diff.code, StatusCode::kNotFound);
}

TEST(SkycubeServiceTest, DrainRejectsAllTraffic) {
  const Dataset data = MakeData(30, 3, 15);
  IncrementalCubeMaintainer maintainer(data);
  MaintainerInsertHandler handler(&maintainer);
  SkycubeService service(
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube()));
  service.AttachInsertHandler(&handler);
  ASSERT_FALSE(service.draining());

  service.BeginDrain();
  EXPECT_TRUE(service.draining());

  const QueryResponse query =
      service.Execute(QueryRequest::SkylineCardinality(data.full_mask()));
  EXPECT_FALSE(query.ok);
  EXPECT_NE(query.error.find("draining"), std::string::npos);
  const QueryResponse insert =
      service.Execute(QueryRequest::Insert({0.5, 0.5, 0.5}));
  EXPECT_FALSE(insert.ok);
  const std::vector<QueryResponse> batch = service.ExecuteBatch(
      {QueryRequest::SkycubeSize(), QueryRequest::SkycubeSize()});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_FALSE(batch[0].ok);
  EXPECT_FALSE(batch[1].ok);

  const ServiceStats stats = service.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.drained_rejects, 4u);
  EXPECT_EQ(stats.inserts_applied, 0u);
}

}  // namespace
}  // namespace skycube
