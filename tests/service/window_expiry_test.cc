// WindowExpiry behaviour: the sliding-window pass with an injected clock
// (deterministic cutoffs, no real sleeps for correctness), failure retry
// through the CubeRebuilder, and — the case TSan exists for — an expiry
// timer racing concurrent queries and inserts without a data race or a
// stale answer labeled with a fresh version.
#include "service/window_expiry.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/cube.h"
#include "core/maintenance.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "service/ingest.h"
#include "service/request.h"
#include "service/service.h"

namespace skycube {
namespace {

Dataset MakeData(size_t objects, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_dims = dims;
  spec.num_objects = objects;
  spec.seed = seed;
  spec.truncate_decimals = 2;
  return GenerateSynthetic(spec);
}

/// Maintainer-backed service whose ingest clock is a settable fake.
struct Harness {
  explicit Harness(Dataset data, uint64_t epoch_history = 32)
      : maintainer(std::move(data)), handler(&maintainer) {
    SkycubeServiceOptions options;
    options.epoch_history = epoch_history;
    options.ingest_clock = [this] {
      return now_ms.load(std::memory_order_relaxed);
    };
    service = std::make_unique<SkycubeService>(
        std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube()),
        options);
    service->AttachInsertHandler(&handler);
  }

  std::atomic<uint64_t> now_ms{1000};
  IncrementalCubeMaintainer maintainer;
  MaintainerInsertHandler handler;
  std::unique_ptr<SkycubeService> service;
};

TEST(WindowExpiryTest, ManualTickExpiresExactlyTheWindow) {
  Harness harness(MakeData(40, 3, 3));
  // Three rows at distinct times; bootstrap rows carry timestamp 0.
  ASSERT_TRUE(harness.service->Execute(QueryRequest::Insert({0.3, 0.3, 0.3}))
                  .ok);
  harness.now_ms = 2000;
  ASSERT_TRUE(harness.service->Execute(QueryRequest::Insert({0.2, 0.2, 0.2}))
                  .ok);
  harness.now_ms = 3000;
  ASSERT_TRUE(harness.service->Execute(QueryRequest::Insert({0.1, 0.1, 0.1}))
                  .ok);

  WindowExpiryOptions options;  // window_ms = 0: timer off, manual ticks
  WindowExpiry expiry(harness.service.get(), options,
                      [&harness] { return harness.now_ms.load(); });
  expiry.TickAt(2500);  // rows stamped 1000 and 2000 age out
  ASSERT_TRUE(expiry.WaitUntilIdle(std::chrono::milliseconds(5000)));

  const WindowExpiryStats stats = expiry.stats();
  EXPECT_EQ(stats.ticks, 1u);
  EXPECT_EQ(stats.passes_ok, 1u);
  EXPECT_EQ(stats.passes_failed, 0u);
  EXPECT_EQ(stats.rows_expired, 2u);
  EXPECT_EQ(stats.last_cutoff_ms, 2500u);
  EXPECT_EQ(harness.maintainer.num_live(), 41u);
  EXPECT_FALSE(harness.maintainer.IsLive(40));
  EXPECT_FALSE(harness.maintainer.IsLive(41));
  EXPECT_TRUE(harness.maintainer.IsLive(42));
  EXPECT_EQ(harness.maintainer.groups(),
            StellarOverLive(harness.maintainer.data(),
                            harness.maintainer.live()));
}

TEST(WindowExpiryTest, TimerSlidesTheWindowWithTheClock) {
  Harness harness(MakeData(30, 3, 5));
  ASSERT_TRUE(harness.service->Execute(QueryRequest::Insert({0.4, 0.4, 0.4}))
                  .ok);  // stamped 1000

  WindowExpiryOptions options;
  options.window_ms = 500;
  options.interval = std::chrono::milliseconds(5);
  WindowExpiry expiry(harness.service.get(), options,
                      [&harness] { return harness.now_ms.load(); });

  // While now stays at 1000 the cutoff is 500: nothing expires no matter
  // how many times the timer fires.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(expiry.stats().rows_expired, 0u);
  EXPECT_TRUE(harness.maintainer.IsLive(30));

  // Advance the clock past 1000 + window: the next tick expires the row.
  harness.now_ms = 2000;
  for (int i = 0; i < 500 && expiry.stats().rows_expired == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(expiry.WaitUntilIdle(std::chrono::milliseconds(5000)));
  EXPECT_EQ(expiry.stats().rows_expired, 1u);
  EXPECT_FALSE(harness.maintainer.IsLive(30));
  EXPECT_GT(expiry.stats().ticks, 0u);
}

TEST(WindowExpiryTest, ExpiryRacesQueriesAndInserts) {
  // The TSan target: an aggressive expiry timer against concurrent Q1/Q3
  // readers and an insert writer. Correctness bar: every response is
  // well-formed, versions are monotone per thread, and the final state
  // equals the live-set oracle.
  Harness harness(MakeData(80, 3, 7));
  WindowExpiryOptions options;
  options.window_ms = 1;  // everything with a timestamp ages out instantly
  options.interval = std::chrono::milliseconds(1);
  auto expiry = std::make_unique<WindowExpiry>(
      harness.service.get(), options,
      [&harness] { return harness.now_ms.load(); });

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> bad_answers{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&harness, &stop, &bad_answers, t] {
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const QueryResponse sky = harness.service->Execute(
            QueryRequest::SubspaceSkyline(0b111));
        const QueryResponse count = harness.service->Execute(
            QueryRequest::MembershipCount(static_cast<ObjectId>(t)));
        if (!sky.ok || sky.ids == nullptr || !count.ok) {
          bad_answers.fetch_add(1, std::memory_order_relaxed);
        }
        // Versions never move backwards under a reader's feet.
        if (sky.snapshot_version < last_version) {
          bad_answers.fetch_add(1, std::memory_order_relaxed);
        }
        last_version = sky.snapshot_version;
      }
    });
  }
  std::thread writer([&harness, &stop, &bad_answers] {
    for (int i = 0; i < 60 && !stop.load(std::memory_order_acquire); ++i) {
      harness.now_ms.fetch_add(10, std::memory_order_relaxed);
      const QueryResponse applied = harness.service->Execute(
          QueryRequest::Insert({0.5 + 0.001 * i, 0.5, 0.5}));
      if (!applied.ok) bad_answers.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  writer.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // Stop the timer (the destructor lets a pass in flight finish) before
  // touching the maintainer — its structures are only safe to read once no
  // expiry pass can be mutating them.
  const WindowExpiryStats stats = expiry->stats();
  expiry.reset();
  EXPECT_EQ(bad_answers.load(), 0u);
  EXPECT_EQ(stats.passes_failed, 0u);
  EXPECT_EQ(harness.maintainer.groups(),
            StellarOverLive(harness.maintainer.data(),
                            harness.maintainer.live()));
  // Bootstrap rows (timestamp 0) never expire, no matter how hard the
  // 1ms-window timer hammered the dataset.
  for (ObjectId id = 0; id < 80; ++id) {
    EXPECT_TRUE(harness.maintainer.IsLive(id)) << id;
  }
}

}  // namespace
}  // namespace skycube
