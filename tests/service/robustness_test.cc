// Fault-tolerance behaviour of SkycubeService and CubeRebuilder, exercised
// end-to-end through the fault-injection registry: deadline propagation,
// admission control under saturation, per-item batch failure containment,
// resilient background rebuilds, and a TSan-targeted stress mix of all of
// the above. Test names start with "SkycubeService" so the CI sanitizer
// matrix (-R "...|SkycubeService") picks them up.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/status.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "service/cube_rebuilder.h"
#include "service/service.h"

namespace skycube {
namespace {

Dataset MakeData(size_t objects, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_dims = dims;
  spec.num_objects = objects;
  spec.seed = seed;
  spec.truncate_decimals = 2;
  return GenerateSynthetic(spec);
}

std::shared_ptr<const CompressedSkylineCube> MakeCube(const Dataset& data) {
  return std::make_shared<const CompressedSkylineCube>(
      data.num_dims(), data.num_objects(), ComputeStellar(data));
}

class SkycubeServiceRobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().Reset(); }
};

// --- Deadline propagation --------------------------------------------------

TEST_F(SkycubeServiceRobustnessTest, ExpiredDeadlineIsRejectedNotComputed) {
  const Dataset data = MakeData(100, 4, 7);
  SkycubeService service(MakeCube(data));
  const QueryRequest request =
      QueryRequest::SubspaceSkyline(data.full_mask())
          .WithDeadline(Deadline::ExpiredNow());
  const QueryResponse response = service.Execute(request);
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
}

TEST_F(SkycubeServiceRobustnessTest, DeadlinedAnswerIsNeverCached) {
  const Dataset data = MakeData(100, 4, 7);
  SkycubeService service(MakeCube(data));
  const QueryRequest plain = QueryRequest::SubspaceSkyline(data.full_mask());
  // Deadline expires mid-compute (the delay straddles it): the partial
  // answer must be discarded, not cached.
  FaultInjection::Instance().ArmDelay("service.compute_delay", 30, 1);
  const QueryResponse deadlined =
      service.Execute(plain.WithDeadline(Deadline::AfterMillis(5)));
  EXPECT_FALSE(deadlined.ok);
  EXPECT_EQ(deadlined.code, StatusCode::kDeadlineExceeded);
  // The follow-up without a deadline must be a cache miss (nothing was
  // cached) and produce the real answer.
  const QueryResponse good = service.Execute(plain);
  ASSERT_TRUE(good.ok);
  EXPECT_FALSE(good.cache_hit);
  EXPECT_EQ(*good.ids, service.snapshot()->SubspaceSkyline(data.full_mask()));
  // And now it *is* cached.
  EXPECT_TRUE(service.Execute(plain).cache_hit);
}

TEST_F(SkycubeServiceRobustnessTest,
       DeadlinedQueryDoesNotBlockConcurrentQueries) {
  const Dataset data = MakeData(200, 5, 11);
  SkycubeService service(MakeCube(data));
  // One slow query (100 ms) carrying a 5 ms deadline, racing fast
  // deadline-free queries: the fast ones must all succeed while the slow
  // one is still sleeping.
  FaultInjection::Instance().ArmDelay("service.compute_delay", 100, 1);
  std::thread slow([&] {
    const QueryResponse response = service.Execute(
        QueryRequest::SubspaceSkyline(data.full_mask())
            .WithDeadline(Deadline::AfterMillis(5)));
    EXPECT_EQ(response.code, StatusCode::kDeadlineExceeded);
  });
  // Wait until the slow query has actually entered its sleep (its hit is
  // the one that consumed the armed delay).
  while (FaultInjection::Instance().HitCount("service.compute_delay") < 1) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 50; ++i) {
    const QueryResponse response =
        service.Execute(QueryRequest::SkylineCardinality(1));
    EXPECT_TRUE(response.ok);
  }
  slow.join();
}

// --- Admission control -----------------------------------------------------

TEST_F(SkycubeServiceRobustnessTest, OverloadShedsWhileInFlightCompletes) {
  const Dataset data = MakeData(100, 4, 13);
  SkycubeServiceOptions options;
  options.cache.capacity = 0;  // every query takes the compute path
  options.max_in_flight = 2;
  SkycubeService service(MakeCube(data), options);

  // Two in-flight queries sleep 80 ms each, filling both slots.
  FaultInjection::Instance().ArmDelay("service.compute_delay", 80, 2);
  std::atomic<int> ok_count{0};
  std::vector<std::thread> holders;
  for (int i = 0; i < 2; ++i) {
    holders.emplace_back([&] {
      const QueryResponse response =
          service.Execute(QueryRequest::SkylineCardinality(1));
      if (response.ok) ok_count.fetch_add(1);
    });
  }
  // Wait until both slots are actually taken.
  while (service.stats().in_flight_high_water < 2) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // Arrivals beyond the limit are shed immediately with kResourceExhausted.
  for (int i = 0; i < 5; ++i) {
    const QueryResponse shed =
        service.Execute(QueryRequest::SubspaceSkyline(1));
    EXPECT_FALSE(shed.ok);
    EXPECT_EQ(shed.code, StatusCode::kResourceExhausted);
  }
  for (std::thread& holder : holders) holder.join();
  // The in-flight queries were NOT victims: they completed normally.
  EXPECT_EQ(ok_count.load(), 2);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_total, 5u);
  EXPECT_EQ(stats.shed_by_kind[static_cast<int>(
                QueryKind::kSubspaceSkyline)],
            5u);
  EXPECT_EQ(stats.in_flight_high_water, 2u);
}

TEST_F(SkycubeServiceRobustnessTest, QueueWaitTimeoutAdmitsWhenSlotFrees) {
  const Dataset data = MakeData(100, 4, 13);
  SkycubeServiceOptions options;
  options.cache.capacity = 0;
  options.max_in_flight = 1;
  options.queue_wait_timeout = std::chrono::milliseconds(2000);
  SkycubeService service(MakeCube(data), options);

  FaultInjection::Instance().ArmDelay("service.compute_delay", 50, 1);
  std::thread holder([&] {
    EXPECT_TRUE(service.Execute(QueryRequest::SkylineCardinality(1)).ok);
  });
  while (service.stats().in_flight_high_water < 1) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // This arrival waits (within its generous timeout) instead of shedding.
  const QueryResponse waited =
      service.Execute(QueryRequest::SkylineCardinality(2));
  EXPECT_TRUE(waited.ok);
  holder.join();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_total, 0u);
  EXPECT_GE(stats.admission_waits, 1u);
}

TEST_F(SkycubeServiceRobustnessTest, ShedBatchAnswersEveryItem) {
  const Dataset data = MakeData(100, 4, 13);
  SkycubeServiceOptions options;
  options.cache.capacity = 0;
  options.max_in_flight = 1;
  SkycubeService service(MakeCube(data), options);

  FaultInjection::Instance().ArmDelay("service.compute_delay", 80, 1);
  std::thread holder([&] {
    EXPECT_TRUE(service.Execute(QueryRequest::SkylineCardinality(1)).ok);
  });
  while (service.stats().in_flight_high_water < 1) {
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const std::vector<QueryResponse> responses = service.ExecuteBatch(
      {QueryRequest::SkylineCardinality(1), QueryRequest::SkycubeSize(),
       QueryRequest::MembershipCount(0)});
  ASSERT_EQ(responses.size(), 3u);
  for (const QueryResponse& response : responses) {
    EXPECT_FALSE(response.ok);
    EXPECT_EQ(response.code, StatusCode::kResourceExhausted);
  }
  holder.join();
}

// --- Batch failure containment ---------------------------------------------

TEST_F(SkycubeServiceRobustnessTest, ThrowingBatchItemBecomesErrorResponse) {
  const Dataset data = MakeData(100, 4, 17);
  SkycubeServiceOptions options;
  options.cache.capacity = 0;  // keep every item on the compute path
  SkycubeService service(MakeCube(data), options);

  // Exactly one computation throws std::bad_alloc; its siblings answer.
  FaultInjection::Instance().ArmFailure("service.compute_throw", 1);
  std::vector<QueryRequest> requests;
  for (int i = 0; i < 8; ++i) {
    requests.push_back(QueryRequest::SkylineCardinality(
        static_cast<DimMask>(i % 4 + 1)));
  }
  const std::vector<QueryResponse> responses = service.ExecuteBatch(requests);
  ASSERT_EQ(responses.size(), requests.size());
  int failed = 0;
  for (const QueryResponse& response : responses) {
    if (!response.ok) {
      ++failed;
      EXPECT_EQ(response.code, StatusCode::kInternal);
      EXPECT_NE(response.error.find("bad_alloc"), std::string::npos)
          << response.error;
    }
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(service.stats().internal_errors, 1u);
}

TEST_F(SkycubeServiceRobustnessTest, ThrowingSingleQueryIsContained) {
  const Dataset data = MakeData(50, 4, 17);
  SkycubeServiceOptions options;
  options.cache.capacity = 0;
  SkycubeService service(MakeCube(data), options);
  FaultInjection::Instance().ArmFailure("service.compute_throw", 1);
  const QueryResponse response =
      service.Execute(QueryRequest::SkycubeSize());
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.code, StatusCode::kInternal);
  // The service survives: the next query answers normally.
  EXPECT_TRUE(service.Execute(QueryRequest::SkycubeSize()).ok);
}

// --- Cache fault points ----------------------------------------------------

TEST_F(SkycubeServiceRobustnessTest, SurvivesCacheLookupAndInsertFaults) {
  const Dataset data = MakeData(100, 4, 19);
  SkycubeService service(MakeCube(data));
  const QueryRequest request = QueryRequest::SubspaceSkyline(1);
  const auto expected = service.snapshot()->SubspaceSkyline(1);

  // Dropped insert: the answer is still correct, just never memoized.
  FaultInjection::Instance().ArmFailure("result_cache.insert", 1);
  const QueryResponse dropped = service.Execute(request);
  EXPECT_FALSE(dropped.cache_hit);
  EXPECT_EQ(*dropped.ids, expected);
  // Because the insert was dropped, this is a genuine miss — and its insert
  // goes through.
  const QueryResponse recomputed = service.Execute(request);
  EXPECT_FALSE(recomputed.cache_hit);
  EXPECT_EQ(*recomputed.ids, expected);
  // A forced lookup miss still recomputes the right answer.
  FaultInjection::Instance().ArmFailure("result_cache.lookup", 1);
  const QueryResponse forced_miss = service.Execute(request);
  EXPECT_FALSE(forced_miss.cache_hit);
  EXPECT_EQ(*forced_miss.ids, expected);
  // Unarmed again: back to hitting.
  const QueryResponse warm = service.Execute(request);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(*warm.ids, expected);
}

// --- Resilient reload ------------------------------------------------------

TEST_F(SkycubeServiceRobustnessTest, RebuilderBacksOffThenSwapsIn) {
  const Dataset data = MakeData(100, 4, 23);
  const Dataset next_data = MakeData(120, 4, 29);
  SkycubeService service(MakeCube(data));
  const uint64_t baseline = service.snapshot()->num_objects();

  CubeRebuilderOptions options;
  options.initial_backoff = std::chrono::milliseconds(5);
  options.max_backoff = std::chrono::milliseconds(20);
  CubeRebuilder rebuilder(
      &service, [&] { return Result(MakeCube(next_data)); }, options);

  // The first 3 build attempts fail; the service must keep serving the old
  // snapshot (version 1) throughout, then swap exactly once.
  FaultInjection::Instance().ArmFailure("rebuilder.build", 3);
  rebuilder.TriggerRebuild();
  // While the rebuilder is failing and backing off, queries answer from the
  // last good snapshot.
  while (!rebuilder.WaitUntilIdle(std::chrono::milliseconds(1))) {
    const QueryResponse response =
        service.Execute(QueryRequest::SkylineCardinality(1));
    EXPECT_TRUE(response.ok);
    // A version-1 answer can only have come from the original cube.
    if (response.snapshot_version == 1 && response.count > 0) {
      EXPECT_LE(response.count, baseline);
    }
  }
  ASSERT_TRUE(rebuilder.WaitUntilIdle(std::chrono::milliseconds(5000)));
  EXPECT_EQ(service.snapshot_version(), 2u);
  EXPECT_EQ(service.snapshot()->num_objects(), next_data.num_objects());
  const CubeRebuilderStats stats = rebuilder.stats();
  EXPECT_EQ(stats.builds_attempted, 4u);
  EXPECT_EQ(stats.builds_failed, 3u);
  EXPECT_EQ(stats.builds_succeeded, 1u);
  EXPECT_EQ(stats.gave_up, 0u);
}

TEST_F(SkycubeServiceRobustnessTest, RebuilderNeverSwapsInABrokenCube) {
  const Dataset data = MakeData(100, 4, 23);
  SkycubeService service(MakeCube(data));

  CubeRebuilderOptions options;
  options.initial_backoff = std::chrono::milliseconds(2);
  options.max_attempts = 3;  // give up instead of retrying forever
  CubeRebuilder rebuilder(
      &service,
      []() -> Result<std::shared_ptr<const CompressedSkylineCube>> {
        return Status::Internal("refresh source is corrupt");
      },
      options);
  rebuilder.TriggerRebuild();
  ASSERT_TRUE(rebuilder.WaitUntilIdle(std::chrono::milliseconds(5000)));
  // Every attempt failed: no swap, still serving snapshot 1.
  EXPECT_EQ(service.snapshot_version(), 1u);
  EXPECT_TRUE(service.Execute(QueryRequest::SkylineCardinality(1)).ok);
  const CubeRebuilderStats stats = rebuilder.stats();
  EXPECT_EQ(stats.builds_attempted, 3u);
  EXPECT_EQ(stats.builds_failed, 3u);
  EXPECT_EQ(stats.builds_succeeded, 0u);
  EXPECT_EQ(stats.gave_up, 1u);
}

TEST_F(SkycubeServiceRobustnessTest, RebuilderContainsAThrowingBuilder) {
  const Dataset data = MakeData(50, 4, 23);
  SkycubeService service(MakeCube(data));
  CubeRebuilderOptions options;
  options.initial_backoff = std::chrono::milliseconds(1);
  options.max_attempts = 2;
  CubeRebuilder rebuilder(
      &service,
      []() -> Result<std::shared_ptr<const CompressedSkylineCube>> {
        throw std::runtime_error("loader exploded");
      },
      options);
  rebuilder.TriggerRebuild();
  ASSERT_TRUE(rebuilder.WaitUntilIdle(std::chrono::milliseconds(5000)));
  EXPECT_EQ(service.snapshot_version(), 1u);
  EXPECT_EQ(rebuilder.stats().builds_failed, 2u);
}

TEST_F(SkycubeServiceRobustnessTest, RebuilderRejectsNullCube) {
  const Dataset data = MakeData(50, 4, 23);
  SkycubeService service(MakeCube(data));
  CubeRebuilderOptions options;
  options.initial_backoff = std::chrono::milliseconds(1);
  options.max_attempts = 1;
  CubeRebuilder rebuilder(
      &service,
      []() -> Result<std::shared_ptr<const CompressedSkylineCube>> {
        return std::shared_ptr<const CompressedSkylineCube>();
      },
      options);
  rebuilder.TriggerRebuild();
  ASSERT_TRUE(rebuilder.WaitUntilIdle(std::chrono::milliseconds(5000)));
  EXPECT_EQ(service.snapshot_version(), 1u);
  EXPECT_EQ(rebuilder.stats().builds_failed, 1u);
}

// --- Stress: deadlines + sheds + reloads under TSan ------------------------

TEST_F(SkycubeServiceRobustnessTest, StressDeadlinesShedsAndReloads) {
  const Dataset data_a = MakeData(150, 5, 31);
  const Dataset data_b = MakeData(170, 5, 37);
  auto cube_a = MakeCube(data_a);
  auto cube_b = MakeCube(data_b);

  SkycubeServiceOptions options;
  options.cache.capacity = 1024;
  options.max_in_flight = 3;
  options.queue_wait_timeout = std::chrono::milliseconds(1);
  SkycubeService service(cube_a, options);

  // Sustained slowness: every compute sleeps 1 ms so the admission gate and
  // the deadline checks are genuinely contended.
  FaultInjection::Instance().ArmDelay("service.compute_delay", 1, -1);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  const DimMask full = data_a.full_mask();

  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        QueryRequest request = QueryRequest::SkylineCardinality(
            static_cast<DimMask>((i % full) + 1));
        // Every third request carries a tiny deadline that often expires
        // mid-compute; the rest are unbounded.
        if ((i + t) % 3 == 0) {
          request =
              request.WithDeadline(Deadline::After(
                  std::chrono::microseconds(500)));
        }
        const QueryResponse response = service.Execute(request);
        // Whatever the outcome, it must be one of the defined codes and a
        // consistent (ok, code) pairing.
        EXPECT_EQ(response.ok, response.code == StatusCode::kOk);
        if (response.ok) {
          answered.fetch_add(1, std::memory_order_relaxed);
          EXPECT_GE(response.snapshot_version, 1u);
        } else {
          EXPECT_TRUE(response.code == StatusCode::kDeadlineExceeded ||
                      response.code == StatusCode::kResourceExhausted)
              << StatusCodeName(response.code);
        }
        ++i;
      }
    });
  }
  // Reloader: flips between the two cubes as fast as it can.
  std::thread reloader([&] {
    bool use_b = true;
    while (!stop.load(std::memory_order_acquire)) {
      service.Reload(use_b ? cube_b : cube_a);
      use_b = !use_b;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  // Stats sampler: shed counters must be monotone under concurrency.
  std::thread sampler([&] {
    uint64_t last_shed = 0;
    uint64_t last_deadline = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const ServiceStats stats = service.stats();
      EXPECT_GE(stats.shed_total, last_shed);
      EXPECT_GE(stats.deadline_exceeded, last_deadline);
      EXPECT_LE(stats.in_flight_high_water, options.max_in_flight);
      last_shed = stats.shed_total;
      last_deadline = stats.deadline_exceeded;
      std::this_thread::yield();
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  reloader.join();
  sampler.join();

  // The service made real progress despite the chaos, and never hung.
  EXPECT_GT(answered.load(), 0u);
  const ServiceStats stats = service.stats();
  EXPECT_GT(stats.queries_total, 0u);
  EXPECT_GT(stats.snapshot_swaps, 0u);
}

}  // namespace
}  // namespace skycube
