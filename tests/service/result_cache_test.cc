// ResultCache (service/result_cache.h): partial-flagged answers must
// never enter the cache — a degraded scatter–gather merge would otherwise
// keep being served at its snapshot version long after the lost shard
// recovered — plus the basic insert/lookup/eviction contract.
#include "service/result_cache.h"

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "service/request.h"

namespace skycube {
namespace {

QueryResponse SkylineResponse(std::vector<ObjectId> ids, bool partial) {
  QueryResponse response;
  response.kind = QueryKind::kSubspaceSkyline;
  response.ids =
      std::make_shared<const std::vector<ObjectId>>(std::move(ids));
  response.snapshot_version = 1;
  response.partial = partial;
  return response;
}

ResultCache::Key KeyFor(DimMask subspace) {
  ResultCache::Key key;
  key.kind = QueryKind::kSubspaceSkyline;
  key.subspace = subspace;
  key.version = 1;
  return key;
}

TEST(ResultCacheTest, InsertAndLookupRoundTrip) {
  ResultCache cache;
  const ResultCache::Key key = KeyFor(0b101);
  QueryResponse out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  cache.Insert(key, SkylineResponse({1, 4, 9}, /*partial=*/false));
  ASSERT_TRUE(cache.Lookup(key, &out));
  ASSERT_NE(out.ids, nullptr);
  EXPECT_EQ(*out.ids, (std::vector<ObjectId>{1, 4, 9}));
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(ResultCacheTest, PartialResponsesAreNeverCached) {
  // The regression: a shard dies, the router serves a survivor-only merge
  // with the partial flag set, and that degraded answer must not be pinned
  // in the cache for the rest of the snapshot's lifetime.
  ResultCache cache;
  const ResultCache::Key key = KeyFor(0b11);
  cache.Insert(key, SkylineResponse({2, 3}, /*partial=*/true));
  QueryResponse out;
  EXPECT_FALSE(cache.Lookup(key, &out));
  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);

  // The complete answer computed after the shard recovers caches fine.
  cache.Insert(key, SkylineResponse({1, 2, 3}, /*partial=*/false));
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(*out.ids, (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_FALSE(out.partial);
}

TEST(ResultCacheTest, PartialInsertDoesNotRefreshExistingEntry) {
  // A cached complete answer must survive a later partial insert attempt
  // unchanged (the partial one is dropped, not merged or overwritten).
  ResultCache cache;
  const ResultCache::Key key = KeyFor(0b1);
  cache.Insert(key, SkylineResponse({5, 6}, /*partial=*/false));
  cache.Insert(key, SkylineResponse({5}, /*partial=*/true));
  QueryResponse out;
  ASSERT_TRUE(cache.Lookup(key, &out));
  EXPECT_EQ(*out.ids, (std::vector<ObjectId>{5, 6}));
  EXPECT_FALSE(out.partial);
}

TEST(ResultCacheTest, DisabledCacheDropsEverything) {
  ResultCacheOptions options;
  options.capacity = 0;
  ResultCache cache(options);
  const ResultCache::Key key = KeyFor(0b1);
  cache.Insert(key, SkylineResponse({1}, /*partial=*/false));
  QueryResponse out;
  EXPECT_FALSE(cache.Lookup(key, &out));
}

}  // namespace
}  // namespace skycube
