// Tests for full skycube materialization and candidate sharing.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/reference.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "skycube/skycube.h"

namespace skycube {
namespace {

Dataset RunningExample() {
  return Dataset::FromRows({
                               {5, 6, 10, 7},
                               {2, 6, 8, 3},
                               {5, 4, 9, 3},
                               {6, 4, 8, 5},
                               {2, 4, 9, 3},
                           })
      .value();
}

TEST(SkycubeTest, VisitsEveryNonEmptySubspaceOnce) {
  const Dataset data = RunningExample();
  std::set<DimMask> visited;
  SkycubeStats stats;
  ForEachSubspaceSkyline(
      data, {},
      [&](DimMask subspace, const std::vector<ObjectId>&) {
        EXPECT_TRUE(visited.insert(subspace).second)
            << "subspace visited twice: " << FormatMask(subspace);
      },
      &stats);
  EXPECT_EQ(visited.size(), 15u);  // 2^4 − 1
  EXPECT_EQ(stats.subspaces_visited, 15u);
  for (DimMask subspace : visited) {
    EXPECT_NE(subspace, kEmptyMask);
    EXPECT_TRUE(IsSubsetOf(subspace, data.full_mask()));
  }
}

TEST(SkycubeTest, SkylinesMatchReferencePerSubspace) {
  const Dataset data = RunningExample();
  const Skycube cube = Skycube::Compute(data);
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
    EXPECT_EQ(cube.skyline(subspace), ReferenceSkyline(data, subspace))
        << FormatMask(subspace);
  });
}

TEST(SkycubeTest, SharingOnOffIdenticalResults) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.num_objects = 400;
  spec.num_dims = 5;
  spec.truncate_decimals = 2;
  spec.seed = 9;
  const Dataset data = GenerateSynthetic(spec);
  SkycubeOptions shared;
  shared.share_parent_candidates = true;
  SkycubeOptions fresh;
  fresh.share_parent_candidates = false;
  const Skycube cube_shared = Skycube::Compute(data, shared);
  const Skycube cube_fresh = Skycube::Compute(data, fresh);
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
    EXPECT_EQ(cube_shared.skyline(subspace), cube_fresh.skyline(subspace))
        << FormatMask(subspace);
  });
  EXPECT_EQ(cube_shared.total_skyline_objects(),
            cube_fresh.total_skyline_objects());
}

TEST(SkycubeTest, TiesSurviveCandidateSharing) {
  // a=(1,9) is dominated in XY by b=(1,2) but ties it on X — the parent
  // skyline alone would lose it; tie expansion must recover it.
  const Dataset data = Dataset::FromRows({{1, 9}, {1, 2}, {5, 1}}).value();
  const Skycube cube = Skycube::Compute(data);
  EXPECT_EQ(cube.skyline(0b11), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(cube.skyline(0b01), (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(cube.skyline(0b10), (std::vector<ObjectId>{2}));
  EXPECT_EQ(cube.total_skyline_objects(), 5u);
}

TEST(SkycubeTest, CountMatchesMaterializedCube) {
  SyntheticSpec spec;
  spec.num_objects = 500;
  spec.num_dims = 6;
  spec.seed = 4;
  const Dataset data = GenerateSynthetic(spec);
  const Skycube cube = Skycube::Compute(data);
  EXPECT_EQ(CountSubspaceSkylineObjects(data), cube.total_skyline_objects());
  uint64_t manual = 0;
  ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
    manual += cube.skyline(subspace).size();
  });
  EXPECT_EQ(manual, cube.total_skyline_objects());
}

TEST(SkycubeTest, TraversalIsTopDownByLevel) {
  const Dataset data = RunningExample();
  int previous_size = data.num_dims() + 1;
  ForEachSubspaceSkyline(
      data, {},
      [&](DimMask subspace, const std::vector<ObjectId>&) {
        const int size = MaskSize(subspace);
        EXPECT_LE(size, previous_size)
            << "levels must be visited largest-first";
        previous_size = size;
      },
      nullptr);
  EXPECT_EQ(previous_size, 1);
}

TEST(SkycubeTest, SingleDimensionDataset) {
  const Dataset data = Dataset::FromRows({{2}, {1}, {1}}).value();
  const Skycube cube = Skycube::Compute(data);
  EXPECT_EQ(cube.skyline(0b1), (std::vector<ObjectId>{1, 2}));
  EXPECT_EQ(cube.total_skyline_objects(), 2u);
}

}  // namespace
}  // namespace skycube
