// Unit tests for the Dataset container and its transforms.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/dataset.h"

namespace skycube {
namespace {

TEST(DatasetTest, FromRowsBasics) {
  const Dataset data =
      Dataset::FromRows({{1, 2, 3}, {4, 5, 6}}, {"x", "y", "z"}).value();
  EXPECT_EQ(data.num_dims(), 3);
  EXPECT_EQ(data.num_objects(), 2u);
  EXPECT_EQ(data.Value(0, 0), 1);
  EXPECT_EQ(data.Value(1, 2), 6);
  EXPECT_EQ(data.dim_name(1), "y");
  EXPECT_EQ(data.full_mask(), 0b111u);
}

TEST(DatasetTest, DefaultDimNamesAreLetters) {
  const Dataset data = Dataset::FromRows({{1, 2, 3, 4}}).value();
  EXPECT_EQ(data.dim_name(0), "A");
  EXPECT_EQ(data.dim_name(3), "D");
}

TEST(DatasetTest, DefaultDimNamesBeyond26AreNumbered) {
  Dataset data(30);
  EXPECT_EQ(data.dim_name(0), "D1");
  EXPECT_EQ(data.dim_name(29), "D30");
}

TEST(DatasetTest, FromRowsRejectsRaggedRows) {
  EXPECT_FALSE(Dataset::FromRows({{1, 2}, {3}}).ok());
}

TEST(DatasetTest, FromRowsRejectsEmptyWithoutNames) {
  EXPECT_FALSE(Dataset::FromRows({}).ok());
}

TEST(DatasetTest, ProjectionFollowsDimensionOrder) {
  const Dataset data = Dataset::FromRows({{10, 20, 30, 40}}).value();
  EXPECT_EQ(data.Projection(0, 0b1010), (std::vector<double>{20, 40}));
  EXPECT_EQ(data.Projection(0, 0b1111),
            (std::vector<double>{10, 20, 30, 40}));
}

TEST(DatasetTest, ProjectionsEqualAndMasks) {
  const Dataset data =
      Dataset::FromRows({{1, 2, 3}, {1, 5, 3}, {2, 2, 3}}).value();
  EXPECT_TRUE(data.ProjectionsEqual(0, 1, 0b101));
  EXPECT_FALSE(data.ProjectionsEqual(0, 1, 0b111));
  EXPECT_EQ(data.CoincidenceMask(0, 1, 0b111), 0b101u);
  EXPECT_EQ(data.CoincidenceMask(0, 2, 0b111), 0b110u);
  EXPECT_EQ(data.DominanceMask(0, 1, 0b111), 0b010u);  // 2 < 5 on dim B
  EXPECT_EQ(data.DominanceMask(0, 2, 0b111), 0b001u);  // 1 < 2 on dim A
  EXPECT_EQ(data.DominanceMask(2, 0, 0b111), kEmptyMask);
}

TEST(DatasetTest, WithPrefixDims) {
  const Dataset data = Dataset::FromRows({{1, 2, 3}, {4, 5, 6}}).value();
  const Dataset prefix = data.WithPrefixDims(2);
  EXPECT_EQ(prefix.num_dims(), 2);
  EXPECT_EQ(prefix.num_objects(), 2u);
  EXPECT_EQ(prefix.Value(1, 1), 5);
}

TEST(DatasetTest, WithFirstRows) {
  const Dataset data = Dataset::FromRows({{1}, {2}, {3}}).value();
  const Dataset head = data.WithFirstRows(2);
  EXPECT_EQ(head.num_objects(), 2u);
  EXPECT_EQ(head.Value(1, 0), 2);
}

TEST(DatasetTest, NegatedFlipsBetterDirection) {
  const Dataset data = Dataset::FromRows({{1, -2}}).value();
  const Dataset negated = data.Negated();
  EXPECT_EQ(negated.Value(0, 0), -1);
  EXPECT_EQ(negated.Value(0, 1), 2);
}

TEST(DatasetTest, TruncatedIntroducesTies) {
  const Dataset data =
      Dataset::FromRows({{0.12349}, {0.12341}, {0.9999}}).value();
  const Dataset truncated = data.Truncated(4);
  EXPECT_EQ(truncated.Value(0, 0), truncated.Value(1, 0));
  EXPECT_NE(truncated.Value(0, 0), truncated.Value(2, 0));
  // Truncation is toward zero, 4 digits.
  EXPECT_DOUBLE_EQ(truncated.Value(0, 0), 0.1234);
}

TEST(DatasetTest, MaskFromNames) {
  const Dataset data =
      Dataset::FromRows({{1, 2, 3}}, {"price", "time", "stops"}).value();
  EXPECT_EQ(data.MaskFromNames("price").value(), 0b001u);
  EXPECT_EQ(data.MaskFromNames("price,stops").value(), 0b101u);
  EXPECT_EQ(data.MaskFromNames("time+stops").value(), 0b110u);
  EXPECT_EQ(data.MaskFromNames(" price , time ").value(), 0b011u);
  EXPECT_FALSE(data.MaskFromNames("banana").ok());
  EXPECT_EQ(data.MaskFromNames("banana").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(data.MaskFromNames("").ok());
  EXPECT_FALSE(data.MaskFromNames(",,").ok());
}

TEST(DatasetTest, CsvRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dataset_roundtrip.csv";
  const Dataset data =
      Dataset::FromRows({{1.5, 2}, {3, 4.25}}, {"price", "time"}).value();
  ASSERT_TRUE(data.ToCsvFile(path).ok());
  const Dataset loaded = Dataset::FromCsvFile(path).value();
  EXPECT_EQ(loaded.num_dims(), 2);
  EXPECT_EQ(loaded.num_objects(), 2u);
  EXPECT_EQ(loaded.dim_name(0), "price");
  EXPECT_EQ(loaded.Value(0, 0), 1.5);
  EXPECT_EQ(loaded.Value(1, 1), 4.25);
  std::remove(path.c_str());
}

TEST(DatasetTest, FromCsvFileMissing) {
  EXPECT_FALSE(Dataset::FromCsvFile("/nonexistent/nope.csv").ok());
}

}  // namespace
}  // namespace skycube
