// Unit tests for duplicate-object binding (paper §5 preprocessing).
#include <vector>

#include <gtest/gtest.h>

#include "dataset/duplicate_binding.h"

namespace skycube {
namespace {

TEST(DuplicateBindingTest, NoDuplicatesIsIdentity) {
  const Dataset data = Dataset::FromRows({{1, 2}, {3, 4}, {5, 6}}).value();
  const DuplicateBinding binding = BindDuplicates(data);
  EXPECT_TRUE(binding.identity());
  EXPECT_EQ(binding.distinct.num_objects(), 3u);
  for (ObjectId id = 0; id < 3; ++id) {
    EXPECT_EQ(binding.representative_of[id], id);
    EXPECT_EQ(binding.members[id], (std::vector<ObjectId>{id}));
  }
}

TEST(DuplicateBindingTest, CollapsesEqualRowsPreservingFirstOrder) {
  const Dataset data = Dataset::FromRows({
                                             {1, 2},  // 0 → distinct 0
                                             {3, 4},  // 1 → distinct 1
                                             {1, 2},  // 2 → distinct 0
                                             {1, 2},  // 3 → distinct 0
                                             {3, 4},  // 4 → distinct 1
                                         })
                           .value();
  const DuplicateBinding binding = BindDuplicates(data);
  EXPECT_FALSE(binding.identity());
  ASSERT_EQ(binding.distinct.num_objects(), 2u);
  EXPECT_EQ(binding.distinct.Value(0, 0), 1);
  EXPECT_EQ(binding.distinct.Value(1, 0), 3);
  EXPECT_EQ(binding.members[0], (std::vector<ObjectId>{0, 2, 3}));
  EXPECT_EQ(binding.members[1], (std::vector<ObjectId>{1, 4}));
  EXPECT_EQ(binding.representative_of,
            (std::vector<ObjectId>{0, 1, 0, 0, 1}));
}

TEST(DuplicateBindingTest, ExpandMergesAndSorts) {
  const Dataset data = Dataset::FromRows({
                                             {9, 9},  // 0
                                             {1, 1},  // 1
                                             {9, 9},  // 2
                                         })
                           .value();
  const DuplicateBinding binding = BindDuplicates(data);
  // Distinct ids: 0 = {0,2}, 1 = {1}.
  EXPECT_EQ(binding.Expand({1, 0}), (std::vector<ObjectId>{0, 1, 2}));
  EXPECT_EQ(binding.Expand({0}), (std::vector<ObjectId>{0, 2}));
  EXPECT_TRUE(binding.Expand({}).empty());
}

TEST(DuplicateBindingTest, ZeroAndNegativeZeroBind) {
  const Dataset data = Dataset::FromRows({{0.0}, {-0.0}}).value();
  const DuplicateBinding binding = BindDuplicates(data);
  // 0.0 == -0.0, so the rows must bind (hash must agree with ==).
  EXPECT_EQ(binding.distinct.num_objects(), 1u);
  EXPECT_EQ(binding.members[0], (std::vector<ObjectId>{0, 1}));
}

}  // namespace
}  // namespace skycube
