// Checkpointer tests: atomic write + load round trip, retention, stray
// .tmp cleanup, and the corruption matrix (bit flips / truncations are
// always detected, never partially loaded).
#include "storage/checkpointer.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "gtest/gtest.h"

namespace skycube {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

Dataset MakeData(size_t n, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.num_objects = n;
  spec.num_dims = dims;
  spec.seed = seed;
  spec.truncate_decimals = 3;
  return GenerateSynthetic(spec);
}

TEST(CheckpointTest, WriteLoadRoundTrip) {
  const std::string dir = FreshDir("ckpt_roundtrip");
  const Dataset data = MakeData(60, 4, 3);
  const SkylineGroupSet groups = ComputeStellar(data);

  Checkpointer checkpointer(dir, 2);
  ASSERT_TRUE(checkpointer.Write(17, data, groups).ok());
  EXPECT_EQ(checkpointer.checkpoints_written(), 1u);
  ASSERT_EQ(ListCheckpoints(dir), std::vector<uint64_t>{17});

  Result<CheckpointData> loaded = LoadCheckpoint(dir, 17);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().lsn, 17u);
  EXPECT_EQ(loaded.value().data.num_objects(), data.num_objects());
  EXPECT_EQ(loaded.value().data.num_dims(), data.num_dims());
  EXPECT_EQ(loaded.value().data.dim_names(), data.dim_names());
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    for (int dim = 0; dim < data.num_dims(); ++dim) {
      EXPECT_EQ(loaded.value().data.Value(id, dim), data.Value(id, dim));
    }
  }
  EXPECT_EQ(loaded.value().groups, groups);
}

TEST(CheckpointTest, RetentionKeepsNewestAndSetsHorizon) {
  const std::string dir = FreshDir("ckpt_retention");
  const Dataset data = MakeData(30, 3, 5);
  const SkylineGroupSet groups = ComputeStellar(data);
  Checkpointer checkpointer(dir, 2);
  for (uint64_t lsn : {10u, 20u, 30u, 40u}) {
    ASSERT_TRUE(checkpointer.Write(lsn, data, groups).ok());
  }
  // keep=2 → only 30 and 40 survive; the WAL horizon is the *oldest*
  // retained (30), so a bad 40 can still recover from 30 + WAL suffix.
  EXPECT_EQ(ListCheckpoints(dir), (std::vector<uint64_t>{30, 40}));
  EXPECT_EQ(checkpointer.oldest_retained_lsn(), 30u);
}

TEST(CheckpointTest, StrayTmpFilesIgnoredAndCleaned) {
  const std::string dir = FreshDir("ckpt_tmp");
  fs::create_directories(dir);
  // A crashed writer left a half-written temp file behind.
  std::ofstream(dir + "/checkpoint-00000000000000ff.ckpt.tmp")
      << "half-written";
  EXPECT_TRUE(ListCheckpoints(dir).empty());

  const Dataset data = MakeData(20, 3, 9);
  Checkpointer checkpointer(dir, 1);
  ASSERT_TRUE(checkpointer.Write(5, data, ComputeStellar(data)).ok());
  EXPECT_EQ(ListCheckpoints(dir), std::vector<uint64_t>{5});
  // The successful Write swept the stray temp file.
  size_t tmp_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") ++tmp_files;
  }
  EXPECT_EQ(tmp_files, 0u);
}

TEST(CheckpointTest, CorruptionAlwaysDetected) {
  const std::string ref_dir = FreshDir("ckpt_corrupt_ref");
  const Dataset data = MakeData(40, 4, 7);
  Checkpointer checkpointer(ref_dir, 1);
  ASSERT_TRUE(checkpointer.Write(9, data, ComputeStellar(data)).ok());
  const std::string ref_file = ref_dir + "/checkpoint-0000000000000009.ckpt";
  ASSERT_TRUE(fs::exists(ref_file));
  const size_t size = static_cast<size_t>(fs::file_size(ref_file));

  struct Case {
    const char* name;
    size_t flip_offset;  // kNpos = truncate to truncate_to instead
    size_t truncate_to;
  };
  const size_t kNpos = static_cast<size_t>(-1);
  const std::vector<Case> cases = {
      {"flip-early-metadata", 60, 0},        // inside lsn/dims lines
      {"flip-middle-row", size / 2, 0},      // inside the row block
      {"flip-embedded-cube", size - 40, 0},  // inside the embedded cube
      {"truncate-half", kNpos, size / 2},
      {"truncate-tail", kNpos, size - 5},
      {"truncate-header", kNpos, 10},
  };
  for (const Case& damage : cases) {
    const std::string dir =
        FreshDir(std::string("ckpt_corrupt_") + damage.name);
    fs::create_directories(dir);
    const std::string copy = dir + "/checkpoint-0000000000000009.ckpt";
    fs::copy_file(ref_file, copy);
    if (damage.flip_offset == kNpos) {
      fs::resize_file(copy, damage.truncate_to);
    } else {
      std::fstream stream(copy,
                          std::ios::in | std::ios::out | std::ios::binary);
      stream.seekg(static_cast<std::streamoff>(damage.flip_offset));
      char byte = 0;
      stream.read(&byte, 1);
      byte = static_cast<char>(byte ^ 0x01);
      stream.seekp(static_cast<std::streamoff>(damage.flip_offset));
      stream.write(&byte, 1);
    }
    // Still listed (the name is intact) but must NEVER load.
    EXPECT_EQ(ListCheckpoints(dir), std::vector<uint64_t>{9}) << damage.name;
    EXPECT_FALSE(LoadCheckpoint(dir, 9).ok()) << damage.name;
  }
}

TEST(CheckpointTest, LsnFilenameMismatchRejected) {
  const std::string dir = FreshDir("ckpt_rename_attack");
  const Dataset data = MakeData(20, 3, 1);
  Checkpointer checkpointer(dir, 1);
  ASSERT_TRUE(checkpointer.Write(3, data, ComputeStellar(data)).ok());
  // Rename the file to claim a different LSN: content says 3, name says 4.
  fs::rename(dir + "/checkpoint-0000000000000003.ckpt",
             dir + "/checkpoint-0000000000000004.ckpt");
  EXPECT_FALSE(LoadCheckpoint(dir, 4).ok());
}

}  // namespace
}  // namespace skycube
