// WAL unit tests: append/read round trips, fsync policies, torn-tail
// truncation at Open, segment rotation + truncation, and the corruption
// matrix (bit flips and truncations must cost exactly the damaged suffix,
// never a silent wrong read).
#include "storage/wal.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace skycube {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

std::vector<std::string> Payloads(int n) {
  std::vector<std::string> payloads;
  for (int i = 0; i < n; ++i) {
    payloads.push_back("row-" + std::to_string(i) +
                       std::string(static_cast<size_t>(i % 7), 'x'));
  }
  return payloads;
}

Result<std::unique_ptr<WriteAheadLog>> OpenAt(const std::string& dir,
                                              uint64_t next_lsn,
                                              WalOptions options = {}) {
  return WriteAheadLog::Open(dir, next_lsn, options);
}

TEST(WalTest, AppendReadRoundTrip) {
  const std::string dir = FreshDir("wal_roundtrip");
  auto wal = OpenAt(dir, 1);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  const std::vector<std::string> payloads = Payloads(20);
  for (size_t i = 0; i < payloads.size(); ++i) {
    Result<uint64_t> lsn = wal.value()->Append(payloads[i]);
    ASSERT_TRUE(lsn.ok()) << lsn.status().ToString();
    EXPECT_EQ(lsn.value(), i + 1);  // contiguous from next_lsn
  }
  EXPECT_EQ(wal.value()->next_lsn(), payloads.size() + 1);
  wal.value().reset();  // close

  Result<WalReadResult> read = ReadWal(dir, 0);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_FALSE(read.value().damaged_suffix);
  ASSERT_EQ(read.value().records.size(), payloads.size());
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(read.value().records[i].lsn, i + 1);
    EXPECT_EQ(read.value().records[i].payload, payloads[i]);
  }
  // after_lsn skips the prefix.
  Result<WalReadResult> suffix = ReadWal(dir, 15);
  ASSERT_TRUE(suffix.ok());
  ASSERT_EQ(suffix.value().records.size(), 5u);
  EXPECT_EQ(suffix.value().records.front().lsn, 16u);
}

TEST(WalTest, EmptyOrAbsentDirectoryReadsEmpty) {
  const std::string dir = FreshDir("wal_absent");
  Result<WalReadResult> read = ReadWal(dir, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().records.empty());
  EXPECT_FALSE(read.value().damaged_suffix);
}

TEST(WalTest, FsyncPolicies) {
  for (const char* name : {"always", "every", "timer"}) {
    Result<FsyncPolicy> policy = FsyncPolicyFromName(name);
    ASSERT_TRUE(policy.ok()) << name;
    WalOptions options;
    options.fsync_policy = policy.value();
    options.fsync_every_n = 4;
    const std::string dir = FreshDir(std::string("wal_policy_") + name);
    auto wal = OpenAt(dir, 1, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(wal.value()->Append("p").ok());
    }
    const WalStats stats = wal.value()->stats();
    EXPECT_EQ(stats.records_appended, 10u);
    if (policy.value() == FsyncPolicy::kEveryRecord) {
      EXPECT_EQ(stats.fsyncs, 10u);
    } else if (policy.value() == FsyncPolicy::kEveryN) {
      EXPECT_LT(stats.fsyncs, 10u);
    }
    ASSERT_TRUE(wal.value()->Sync().ok());
    wal.value().reset();
    Result<WalReadResult> read = ReadWal(dir, 0);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value().records.size(), 10u);
  }
  EXPECT_FALSE(FsyncPolicyFromName("bogus").ok());
}

TEST(WalTest, OpenTruncatesBeyondNextLsn) {
  const std::string dir = FreshDir("wal_open_trunc");
  {
    auto wal = OpenAt(dir, 1);
    ASSERT_TRUE(wal.ok());
    for (const std::string& payload : Payloads(10)) {
      ASSERT_TRUE(wal.value()->Append(payload).ok());
    }
  }
  // Reopen claiming only 6 records are trusted: 7.. must be discarded.
  {
    auto wal = OpenAt(dir, 7);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal.value()->next_lsn(), 7u);
    EXPECT_GT(wal.value()->stats().open_discarded_bytes, 0u);
    ASSERT_TRUE(wal.value()->Append("replacement").ok());
  }
  Result<WalReadResult> read = ReadWal(dir, 0);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().records.size(), 7u);
  EXPECT_EQ(read.value().records.back().payload, "replacement");
  EXPECT_EQ(read.value().records.back().lsn, 7u);
}

TEST(WalTest, SegmentRotationAndTruncateThrough) {
  const std::string dir = FreshDir("wal_rotate");
  WalOptions options;
  options.segment_bytes = 128;  // force frequent rotation
  auto wal = OpenAt(dir, 1, options);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(wal.value()->Append("payload-" + std::to_string(i)).ok());
  }
  ASSERT_GT(wal.value()->stats().segments_created, 3u);

  // Truncating through lsn 20 removes only whole segments fully <= 20.
  ASSERT_TRUE(wal.value()->TruncateThrough(20).ok());
  EXPECT_GT(wal.value()->stats().segments_deleted, 0u);
  Result<WalReadResult> read = ReadWal(dir, 20);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().records.size(), 20u);
  EXPECT_EQ(read.value().records.front().lsn, 21u);
  EXPECT_FALSE(read.value().damaged_suffix);

  // Records after truncation continue the same LSN sequence.
  Result<uint64_t> lsn = wal.value()->Append("after-truncate");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 41u);
}

// --- Corruption matrix ----------------------------------------------------
// Damage byte-by-byte shapes; every case must surface as a damaged suffix
// whose boundary is exactly the last intact record.

struct Damage {
  const char* name;
  // Applies damage to the (single) segment file; returns the number of
  // records expected to survive out of 10.
  size_t (*apply)(const std::string& file);
};

size_t FileSize(const std::string& file) {
  return static_cast<size_t>(fs::file_size(file));
}

void FlipByteAt(const std::string& file, size_t offset) {
  std::fstream stream(file,
                      std::ios::in | std::ios::out | std::ios::binary);
  stream.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  stream.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  stream.seekp(static_cast<std::streamoff>(offset));
  stream.write(&byte, 1);
}

TEST(WalTest, CorruptionMatrix) {
  // Build a reference log once to learn record offsets.
  const std::string ref_dir = FreshDir("wal_corrupt_ref");
  {
    auto wal = OpenAt(ref_dir, 1);
    ASSERT_TRUE(wal.ok());
    for (const std::string& payload : Payloads(10)) {
      ASSERT_TRUE(wal.value()->Append(payload).ok());
    }
  }
  const std::string segment =
      (fs::directory_iterator(ref_dir)->path()).string();
  const size_t full_size = FileSize(segment);

  struct Case {
    std::string name;
    size_t damage_offset;  // byte to flip (or npos = truncate instead)
    size_t truncate_to;    // only when damage_offset == npos
    size_t expect_records;
  };
  // Offsets: 8-byte magic, then records of 20-byte header + payload. Record
  // i's payload is "row-i" + (i%7) 'x' → length 5 + i%7 for one-digit i.
  const size_t kNpos = static_cast<size_t>(-1);
  std::vector<Case> cases;
  // Flip a byte in record 5's payload → records 0..4 survive.
  size_t offset = 8;
  for (int i = 0; i < 5; ++i) {
    offset += 20 + 5 + static_cast<size_t>(i % 7);
  }
  cases.push_back({"payload-bit-flip", offset + 20 + 2, 0, 5});
  // Flip a byte in record 0's header (lsn field) → nothing survives.
  cases.push_back({"first-header-flip", 8 + 4, 0, 0});
  // Truncate mid-final-record (torn tail) → 9 survive.
  cases.push_back({"torn-tail", kNpos, full_size - 3, 9});
  // Truncate inside the magic → empty log, damaged.
  cases.push_back({"torn-magic", kNpos, 4, 0});
  // Flip the last record's checksum field (record is 20 + 7 bytes; the
  // checksum sits at record_start + 12).
  cases.push_back({"checksum-flip", full_size - 27 + 12, 0, 9});

  for (const Case& damage : cases) {
    const std::string dir = FreshDir("wal_corrupt_" + damage.name);
    fs::create_directories(dir);
    const std::string copy = dir + "/" + fs::path(segment).filename().string();
    fs::copy_file(segment, copy);
    if (damage.damage_offset == kNpos) {
      fs::resize_file(copy, damage.truncate_to);
    } else {
      FlipByteAt(copy, damage.damage_offset);
    }
    Result<WalReadResult> read = ReadWal(dir, 0);
    ASSERT_TRUE(read.ok()) << damage.name;
    EXPECT_EQ(read.value().records.size(), damage.expect_records)
        << damage.name;
    EXPECT_TRUE(read.value().damaged_suffix) << damage.name;
    // The surviving prefix is byte-exact, not merely counted.
    for (size_t i = 0; i < read.value().records.size(); ++i) {
      EXPECT_EQ(read.value().records[i].payload, Payloads(10)[i])
          << damage.name;
    }
  }
}

TEST(WalTest, RowPayloadCodec) {
  const std::vector<double> row = {0.25, -3.5, 1e-9, 42.0};
  Result<std::vector<double>> decoded = DecodeRowPayload(EncodeRowPayload(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), row);
  EXPECT_FALSE(DecodeRowPayload("garbage").ok());
  EXPECT_FALSE(DecodeRowPayload("").ok());
}

// --- Op-typed (v3) payloads ----------------------------------------------

TEST(WalTest, OpPayloadRoundTrip) {
  const std::vector<double> row = {0.125, -7.5, 1e300, 0.0};
  Result<WalOpRecord> insert =
      DecodeOpPayload(EncodeInsertPayload(row, /*row=*/317, /*ts=*/123456));
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  EXPECT_EQ(insert.value().op, WalOp::kInsert);
  EXPECT_EQ(insert.value().values, row);
  EXPECT_EQ(insert.value().row, 317u);
  EXPECT_EQ(insert.value().timestamp_ms, 123456u);
  EXPECT_FALSE(insert.value().legacy);

  Result<WalOpRecord> del =
      DecodeOpPayload(EncodeDeletePayload(/*row=*/42, /*ts=*/99));
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(del.value().op, WalOp::kDelete);
  EXPECT_EQ(del.value().row, 42u);
  EXPECT_EQ(del.value().timestamp_ms, 99u);
  EXPECT_TRUE(del.value().values.empty());
}

TEST(WalTest, LegacyRowPayloadDecodesAsUntimestampedInsert) {
  // A v2 payload (leading byte < 0x80: the low byte of its dim count) must
  // decode as an insert with no timestamp — the upgrade path for logs
  // written before op-typed records existed.
  const std::vector<double> row = {1.5, 2.5, 3.5};
  Result<WalOpRecord> decoded = DecodeOpPayload(EncodeRowPayload(row));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().op, WalOp::kInsert);
  EXPECT_TRUE(decoded.value().legacy);
  EXPECT_EQ(decoded.value().timestamp_ms, 0u);
  EXPECT_EQ(decoded.value().values, row);
}

TEST(WalTest, OpPayloadDecodeRejectsDamage) {
  // Unknown op tag.
  EXPECT_FALSE(DecodeOpPayload("\xFFgarbage").ok());
  EXPECT_FALSE(DecodeOpPayload("").ok());
  // Truncations of valid payloads at every length must fail cleanly, never
  // read out of bounds (the checksum normally catches these; the decoder
  // must still be safe against a checksummed-but-misframed record).
  const std::string insert = EncodeInsertPayload({4.0, 5.0}, 7, 1000);
  for (size_t len = 1; len < insert.size(); ++len) {
    EXPECT_FALSE(DecodeOpPayload(insert.substr(0, len)).ok()) << len;
  }
  const std::string del = EncodeDeletePayload(7, 1000);
  for (size_t len = 1; len < del.size(); ++len) {
    EXPECT_FALSE(DecodeOpPayload(del.substr(0, len)).ok()) << len;
  }
  // Trailing bytes after a complete payload are format drift, not valid.
  EXPECT_FALSE(DecodeOpPayload(del + "x").ok());
}

TEST(WalTest, MixedOpTailStraddlesSegmentBoundary) {
  // Interleaved insert/delete records with a segment size small enough that
  // the mixed tail crosses at least one rotation — recovery must read the
  // whole sequence back in order regardless of which segment holds what.
  const std::string dir = FreshDir("wal_mixed_rotate");
  WalOptions options;
  options.segment_bytes = 96;  // a few records per segment
  auto wal = OpenAt(dir, 1, options);
  ASSERT_TRUE(wal.ok());
  std::vector<std::string> payloads;
  for (uint32_t i = 0; i < 30; ++i) {
    payloads.push_back(
        i % 3 == 2 ? EncodeDeletePayload(i / 3, 1000 + i)
                   : EncodeInsertPayload({0.1 * i, 0.2 * i}, i, 1000 + i));
    ASSERT_TRUE(wal.value()->Append(payloads.back()).ok());
  }
  ASSERT_GT(wal.value()->stats().segments_created, 2u);
  wal.value().reset();

  Result<WalReadResult> read = ReadWal(dir, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read.value().damaged_suffix);
  ASSERT_EQ(read.value().records.size(), payloads.size());
  for (uint32_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(read.value().records[i].payload, payloads[i]) << i;
    Result<WalOpRecord> op = DecodeOpPayload(read.value().records[i].payload);
    ASSERT_TRUE(op.ok()) << i;
    EXPECT_EQ(op.value().op, i % 3 == 2 ? WalOp::kDelete : WalOp::kInsert);
    EXPECT_EQ(op.value().timestamp_ms, 1000u + i);
  }
}

// --- DumpWal (the skycube_waldump view) ----------------------------------

TEST(WalTest, DumpWalReportsEveryRecordAcrossSegments) {
  const std::string dir = FreshDir("wal_dump_clean");
  WalOptions options;
  options.segment_bytes = 96;
  auto wal = OpenAt(dir, 1, options);
  ASSERT_TRUE(wal.ok());
  for (uint32_t i = 0; i < 12; ++i) {
    const std::string payload =
        i % 2 ? EncodeDeletePayload(i, 10 * i)
              : EncodeInsertPayload({1.0 * i}, i, 10 * i);
    ASSERT_TRUE(wal.value()->Append(payload).ok());
  }
  wal.value().reset();

  Result<std::vector<WalDumpSegment>> dump = DumpWal(dir);
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  ASSERT_GT(dump.value().size(), 1u);  // rotation happened
  uint64_t expect_lsn = 1;
  for (const WalDumpSegment& segment : dump.value()) {
    EXPECT_TRUE(segment.magic_ok) << segment.file;
    EXPECT_EQ(segment.declared_start, expect_lsn) << segment.file;
    EXPECT_EQ(segment.trailing_bytes, 0u) << segment.file;
    for (const WalDumpRecord& record : segment.records) {
      EXPECT_EQ(record.lsn, expect_lsn);
      EXPECT_TRUE(record.checksum_ok);
      ASSERT_TRUE(record.decode_ok);
      EXPECT_EQ(record.record.op,
                (expect_lsn - 1) % 2 ? WalOp::kDelete : WalOp::kInsert);
      ++expect_lsn;
    }
  }
  EXPECT_EQ(expect_lsn, 13u);  // every appended record was reported
}

TEST(WalTest, DumpWalSurfacesDamageInsteadOfHidingIt) {
  const std::string dir = FreshDir("wal_dump_damaged");
  {
    auto wal = OpenAt(dir, 1);
    ASSERT_TRUE(wal.ok());
    for (const std::string& payload : Payloads(10)) {
      ASSERT_TRUE(wal.value()->Append(payload).ok());
    }
  }
  const std::string segment =
      (fs::directory_iterator(dir)->path()).string();
  // Flip a byte in record 5's payload (offsets as in CorruptionMatrix).
  size_t offset = 8;
  for (int i = 0; i < 5; ++i) {
    offset += 20 + 5 + static_cast<size_t>(i % 7);
  }
  FlipByteAt(segment, offset + 20 + 2);

  Result<std::vector<WalDumpSegment>> dump = DumpWal(dir);
  ASSERT_TRUE(dump.ok());
  ASSERT_EQ(dump.value().size(), 1u);
  const WalDumpSegment& seg = dump.value()[0];
  // Records 0..4 intact, record 5 reported with a failed checksum (unlike
  // ReadWal, which would just stop), and the rest counted as trailing.
  ASSERT_GE(seg.records.size(), 6u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(seg.records[i].checksum_ok) << i;
  }
  EXPECT_FALSE(seg.records[5].checksum_ok);
  EXPECT_GT(seg.trailing_bytes, 0u);
}

TEST(WalTest, EmptyFinalSegmentIsGracefulNotDamage) {
  // A rotation that crashed after creating the new segment file but before
  // writing its magic leaves a zero-byte final segment. Recovery and the
  // dump view must both treat it as a clean tail, not damage.
  const std::string dir = FreshDir("wal_empty_final");
  {
    auto wal = OpenAt(dir, 1);
    ASSERT_TRUE(wal.ok());
    for (const std::string& payload : Payloads(6)) {
      ASSERT_TRUE(wal.value()->Append(payload).ok());
    }
  }
  {
    std::ofstream create(dir + "/wal-0000000000000007.log",
                         std::ios::binary);
  }

  Result<WalReadResult> read = ReadWal(dir, 0);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().records.size(), 6u);
  EXPECT_EQ(read.value().last_valid_lsn, 6u);
  EXPECT_FALSE(read.value().damaged_suffix);

  Result<std::vector<WalDumpSegment>> dump = DumpWal(dir);
  ASSERT_TRUE(dump.ok());
  ASSERT_EQ(dump.value().size(), 2u);
  EXPECT_FALSE(dump.value()[0].empty);
  EXPECT_TRUE(dump.value()[1].empty);
  EXPECT_EQ(dump.value()[1].declared_start, 7u);
  EXPECT_TRUE(dump.value()[1].records.empty());
  EXPECT_EQ(dump.value()[1].trailing_bytes, 0u);

  // Reopening for append continues at lsn 7 cleanly.
  auto reopened = OpenAt(dir, 7);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Result<uint64_t> lsn = reopened.value()->Append("after-crash");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 7u);
}

TEST(WalTest, EmptyMiddleSegmentIsAHole) {
  // The same zero-byte file anywhere but the end hides records behind it —
  // ReadWal must stop (damaged suffix), never skip the gap.
  const std::string dir = FreshDir("wal_empty_middle");
  WalOptions options;
  options.segment_bytes = 64;
  {
    auto wal = OpenAt(dir, 1, options);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(wal.value()->Append("abcdefgh").ok());
    }
  }
  Result<std::vector<WalDumpSegment>> before = DumpWal(dir);
  ASSERT_TRUE(before.ok());
  ASSERT_GT(before.value().size(), 1u);
  // Hollow out a middle segment.
  const std::string victim = dir + "/" + before.value()[1].file;
  {
    std::ofstream truncate(victim,
                           std::ios::binary | std::ios::trunc);
  }
  Result<WalReadResult> read = ReadWal(dir, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().damaged_suffix);
  EXPECT_LT(read.value().records.size(), 12u);
  Result<std::vector<WalDumpSegment>> dump = DumpWal(dir);
  ASSERT_TRUE(dump.ok());
  EXPECT_TRUE(dump.value()[1].empty);
}

TEST(WalTest, ReadAfterLsnBeyondTruncatedPrefixReportsDamage) {
  const std::string dir = FreshDir("wal_missing_prefix");
  WalOptions options;
  options.segment_bytes = 64;
  auto wal = OpenAt(dir, 1, options);
  ASSERT_TRUE(wal.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(wal.value()->Append("abcdefgh").ok());
  }
  ASSERT_TRUE(wal.value()->TruncateThrough(15).ok());
  // Asking for records after lsn 2 when the log starts later than 3 is a
  // gap — must be reported, never silently skipped.
  Result<WalReadResult> read = ReadWal(dir, 2);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().records.empty());
  EXPECT_TRUE(read.value().damaged_suffix);
}

}  // namespace
}  // namespace skycube
