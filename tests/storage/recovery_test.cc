// Recovery tests: checkpoint + WAL replay round trips through
// DurableIngest, checkpoint fallback on corruption, cross-check rejection,
// and damaged-WAL-suffix handling — nothing damaged is ever silently
// loaded, and what loads always equals ComputeStellar over the recovered
// rows.
#include "storage/recovery.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "gtest/gtest.h"
#include "storage/checkpointer.h"
#include "storage/durable_ingest.h"
#include "storage/wal.h"

namespace skycube {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

Dataset MakeData(size_t n, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_objects = n;
  spec.num_dims = dims;
  spec.seed = seed;
  spec.truncate_decimals = 3;
  return GenerateSynthetic(spec);
}

std::vector<double> Row(double a, double b, double c) { return {a, b, c}; }

/// Applies `rows` through a fresh DurableIngest over `bootstrap`.
void Ingest(const std::string& dir, const Dataset& bootstrap,
            const std::vector<std::vector<double>>& rows,
            uint64_t checkpoint_every) {
  DurableIngestOptions options;
  options.checkpoint_every = checkpoint_every;
  Result<std::unique_ptr<DurableIngest>> ingest =
      DurableIngest::Open(dir, &bootstrap, options);
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  for (const std::vector<double>& row : rows) {
    Result<InsertHandler::Applied> applied =
        ingest.value()->ApplyInsert(row);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    EXPECT_GT(applied.value().lsn, 0u);
  }
}

/// Golden expectation: bootstrap + rows run through plain Stellar.
SkylineGroupSet Golden(const Dataset& bootstrap,
                       const std::vector<std::vector<double>>& rows,
                       size_t prefix) {
  Dataset data = bootstrap;
  for (size_t i = 0; i < prefix; ++i) data.AddRow(rows[i]);
  SkylineGroupSet groups = ComputeStellar(data);
  NormalizeGroups(&groups);
  return groups;
}

TEST(RecoveryTest, EmptyDirHasNoDurableState) {
  const std::string dir = FreshDir("rec_empty");
  EXPECT_FALSE(DirHasDurableState(dir));
  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

TEST(RecoveryTest, CheckpointPlusWalReplayRoundTrip) {
  const std::string dir = FreshDir("rec_roundtrip");
  const Dataset bootstrap = MakeData(40, 3, 2);
  const std::vector<std::vector<double>> rows = {
      Row(0.9, 0.8, 0.7), Row(0.1, 0.2, 0.3), Row(0.1, 0.2, 0.3),
      Row(0.05, 0.9, 0.9), Row(0.5, 0.5, 0.5), Row(0.01, 0.01, 0.01),
      Row(0.6, 0.6, 0.6)};
  // checkpoint_every=3 → checkpoints at lsn 3 and 6; records 7 replay.
  Ingest(dir, bootstrap, rows, 3);
  EXPECT_TRUE(DirHasDurableState(dir));

  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const RecoveryStats& stats = recovered.value().stats;
  EXPECT_EQ(stats.checkpoint_lsn, 6u);
  EXPECT_EQ(stats.checkpoint_rows, 46u);
  EXPECT_EQ(stats.wal_records_replayed, 1u);
  EXPECT_FALSE(stats.wal_suffix_discarded);
  EXPECT_EQ(stats.next_lsn, 8u);
  EXPECT_EQ(stats.checkpoints_rejected, 0u);
  EXPECT_EQ(recovered.value().maintainer->data().num_objects(),
            bootstrap.num_objects() + rows.size());
  EXPECT_EQ(recovered.value().maintainer->groups(),
            Golden(bootstrap, rows, rows.size()));
}

TEST(RecoveryTest, FallsBackWhenNewestCheckpointCorrupt) {
  const std::string dir = FreshDir("rec_fallback");
  const Dataset bootstrap = MakeData(30, 3, 4);
  const std::vector<std::vector<double>> rows = {
      Row(0.4, 0.4, 0.4), Row(0.2, 0.7, 0.7), Row(0.9, 0.1, 0.9),
      Row(0.3, 0.3, 0.3), Row(0.02, 0.02, 0.02), Row(0.8, 0.2, 0.5)};
  Ingest(dir, bootstrap, rows, 2);  // checkpoints at 2, 4, 6; keep=2: 4 & 6

  // Flip one byte of the newest checkpoint — recovery must fall back to
  // lsn 4 and replay records 5 and 6 from the (untruncated) WAL.
  const std::string newest = dir + "/checkpoint-0000000000000006.ckpt";
  ASSERT_TRUE(fs::exists(newest));
  {
    std::fstream stream(newest,
                        std::ios::in | std::ios::out | std::ios::binary);
    stream.seekp(80);
    stream.write("#", 1);
  }
  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().stats.checkpoints_rejected, 1u);
  EXPECT_EQ(recovered.value().stats.checkpoint_lsn, 4u);
  EXPECT_EQ(recovered.value().stats.wal_records_replayed, 2u);
  EXPECT_EQ(recovered.value().stats.next_lsn, 7u);
  EXPECT_EQ(recovered.value().maintainer->groups(),
            Golden(bootstrap, rows, rows.size()));
}

TEST(RecoveryTest, AllCheckpointsDamagedFallsBackToWalOnlyRebuild) {
  // Every checkpoint damaged, but the WAL still reaches back to LSN 1: the
  // acked WAL ops are rebuilt from the log alone. The 20 bootstrap rows
  // predate the log — they come back only as tombstoned placeholders (ids
  // stay exact) and are reported lost.
  const std::string dir = FreshDir("rec_all_bad");
  const Dataset bootstrap = MakeData(20, 3, 6);
  const std::vector<std::vector<double>> rows = {
      Row(0.5, 0.5, 0.5), Row(0.1, 0.8, 0.3), Row(0.5, 0.5, 0.5)};
  Ingest(dir, bootstrap, rows, 0);
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".ckpt") continue;
    fs::resize_file(entry.path(), fs::file_size(entry.path()) / 2);
  }
  EXPECT_TRUE(DirHasDurableState(dir));  // listed, but never silently loaded
  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const RecoveryStats& stats = recovered.value().stats;
  EXPECT_TRUE(stats.wal_only_rebuild);
  EXPECT_EQ(stats.base_rows_lost, 20u);
  EXPECT_EQ(stats.checkpoints_rejected, stats.checkpoints_found);
  const IncrementalCubeMaintainer& m = *recovered.value().maintainer;
  EXPECT_EQ(m.data().num_objects(), 23u);  // 20 placeholders + 3 replayed
  EXPECT_EQ(m.num_live(), 3u);
  EXPECT_EQ(m.groups(), StellarOverLive(m.data(), m.live()));
  EXPECT_EQ(stats.next_lsn, 4u);
}

TEST(RecoveryTest, AllCheckpointsDamagedAndTruncatedWalIsAnError) {
  // When checkpoints are damaged AND the WAL was already truncated past
  // LSN 1 (so the log cannot seed a rebuild), recovery must fail rather
  // than serve a silently incomplete state.
  const std::string dir = FreshDir("rec_all_bad_no_wal");
  const Dataset bootstrap = MakeData(20, 3, 6);
  Ingest(dir, bootstrap, {Row(0.5, 0.5, 0.5)}, 0);
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt") {
      fs::resize_file(entry.path(), fs::file_size(entry.path()) / 2);
    } else if (entry.path().extension() == ".log") {
      fs::remove(entry.path());
    }
  }
  EXPECT_TRUE(DirHasDurableState(dir));
  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kInternal);
}

TEST(RecoveryTest, CrossCheckRejectsInconsistentCheckpoint) {
  // A checkpoint whose checksums verify but whose groups do not match its
  // own dataset (e.g. a writer bug) must be rejected by the rebuild
  // cross-check, exactly like a corrupt one.
  const std::string dir = FreshDir("rec_crosscheck");
  const Dataset data = MakeData(25, 3, 8);
  const Dataset other = MakeData(25, 3, 9);
  Checkpointer checkpointer(dir, 1);
  ASSERT_TRUE(checkpointer.Write(0, data, ComputeStellar(other)).ok());
  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kInternal);
}

TEST(RecoveryTest, DamagedWalSuffixIsSkippedExactly) {
  const std::string dir = FreshDir("rec_torn_wal");
  const Dataset bootstrap = MakeData(30, 3, 12);
  const std::vector<std::vector<double>> rows = {
      Row(0.5, 0.6, 0.7), Row(0.2, 0.2, 0.9), Row(0.03, 0.5, 0.5),
      Row(0.7, 0.7, 0.7)};
  Ingest(dir, bootstrap, rows, 0);  // no checkpoints beyond bootstrap's lsn 0

  // Tear the final WAL record: recovery must keep exactly rows[0..2].
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".log") continue;
    fs::resize_file(entry.path(), fs::file_size(entry.path()) - 5);
  }
  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().stats.checkpoint_lsn, 0u);
  EXPECT_EQ(recovered.value().stats.wal_records_replayed, 3u);
  EXPECT_TRUE(recovered.value().stats.wal_suffix_discarded);
  EXPECT_GT(recovered.value().stats.wal_bytes_discarded, 0u);
  EXPECT_EQ(recovered.value().stats.next_lsn, 4u);
  EXPECT_EQ(recovered.value().maintainer->groups(),
            Golden(bootstrap, rows, 3));
}

TEST(RecoveryTest, ReopenAfterTornTailContinuesCleanly) {
  // End-to-end: tear the WAL, recover, reopen DurableIngest at the
  // recovered next_lsn (discarding the torn tail), and keep ingesting.
  const std::string dir = FreshDir("rec_reopen");
  const Dataset bootstrap = MakeData(20, 3, 14);
  const std::vector<std::vector<double>> rows = {Row(0.4, 0.5, 0.6),
                                                 Row(0.6, 0.5, 0.4)};
  Ingest(dir, bootstrap, rows, 0);
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".log") continue;
    fs::resize_file(entry.path(), fs::file_size(entry.path()) - 3);
  }
  Result<std::unique_ptr<DurableIngest>> reopened =
      DurableIngest::Open(dir, nullptr, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const DurableIngestStats before = reopened.value()->stats();
  EXPECT_TRUE(before.recovered);
  EXPECT_EQ(before.recovery.wal_records_replayed, 1u);
  Result<InsertHandler::Applied> applied =
      reopened.value()->ApplyInsert(Row(0.1, 0.9, 0.1));
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value().lsn, 2u);  // reuses the torn record's lsn
  reopened.value().reset();

  Result<RecoveredState> final_state = RecoverFromDir(dir);
  ASSERT_TRUE(final_state.ok());
  const std::vector<std::vector<double>> survivors = {rows[0],
                                                      Row(0.1, 0.9, 0.1)};
  EXPECT_EQ(final_state.value().maintainer->groups(),
            Golden(bootstrap, survivors, survivors.size()));
}

TEST(RecoveryTest, MixedOpRoundTripMatchesStellarOverLive) {
  // Inserts, deletes, and an expiry pass through DurableIngest; recovery
  // must land on exactly the live-set the handler acked — including the
  // per-row ingest timestamps, which the next expiry pass depends on.
  const std::string dir = FreshDir("rec_mixed");
  const Dataset bootstrap = MakeData(30, 3, 18);
  DurableIngestOptions options;
  options.checkpoint_every = 4;  // the mixed tail straddles a checkpoint
  Result<std::unique_ptr<DurableIngest>> ingest =
      DurableIngest::Open(dir, &bootstrap, options);
  ASSERT_TRUE(ingest.ok()) << ingest.status().ToString();
  ASSERT_TRUE(ingest.value()->ApplyInsert(Row(0.5, 0.5, 0.5), 100).ok());
  ASSERT_TRUE(ingest.value()->ApplyInsert(Row(0.1, 0.8, 0.3), 200).ok());
  ASSERT_TRUE(ingest.value()->ApplyDelete(30).ok());  // first insert dies
  ASSERT_TRUE(ingest.value()->ApplyDelete(5).ok());   // a bootstrap row dies
  ASSERT_TRUE(ingest.value()->ApplyInsert(Row(0.02, 0.02, 0.9), 300).ok());
  // Expiry tombstones the 200ms row; ts-0 bootstrap rows are immune.
  Result<InsertHandler::Applied> expired = ingest.value()->ApplyExpire(250);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(expired.value().num_expired, 1u);
  ingest.value().reset();

  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const IncrementalCubeMaintainer& m = *recovered.value().maintainer;
  EXPECT_EQ(m.data().num_objects(), 33u);
  EXPECT_EQ(m.num_live(), 30u);  // 30 + 3 inserted − 2 deleted − 1 expired
  EXPECT_FALSE(m.IsLive(5));
  EXPECT_FALSE(m.IsLive(30));
  EXPECT_FALSE(m.IsLive(31));  // expired
  EXPECT_TRUE(m.IsLive(32));
  EXPECT_EQ(m.timestamps()[32], 300u);
  EXPECT_EQ(m.groups(), StellarOverLive(m.data(), m.live()));
}

TEST(RecoveryTest, ReplayedDeleteOfNeverAckedRowIsANoOp) {
  // A WAL can legitimately hold a delete whose target insert was lost with
  // a damaged suffix of an *earlier* segment generation (the row was never
  // acked). Replay must treat it as a no-op, not an error — the dataset
  // simply never grew that far.
  const std::string dir = FreshDir("rec_orphan_delete");
  const Dataset bootstrap = MakeData(10, 3, 20);
  {
    DurableIngestOptions options;
    options.checkpoint_every = 0;
    Result<std::unique_ptr<DurableIngest>> ingest =
        DurableIngest::Open(dir, &bootstrap, options);
    ASSERT_TRUE(ingest.ok());
    ASSERT_TRUE(ingest.value()->ApplyInsert(Row(0.4, 0.4, 0.4), 50).ok());
    ingest.value().reset();
  }
  // Hand-append a delete record targeting row 99 — far past the 11 rows
  // that exist (as if the inserts between were torn away).
  {
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(dir, 2);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(EncodeDeletePayload(99, 60)).ok());
    // A second delete of a row that DOES exist proves ordering still works.
    ASSERT_TRUE(wal.value()->Append(EncodeDeletePayload(3, 70)).ok());
  }
  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const IncrementalCubeMaintainer& m = *recovered.value().maintainer;
  EXPECT_EQ(recovered.value().stats.wal_records_replayed, 3u);
  EXPECT_EQ(m.data().num_objects(), 11u);  // row 99 never materialized
  EXPECT_EQ(m.num_live(), 10u);            // only the row-3 delete landed
  EXPECT_FALSE(m.IsLive(3));
  EXPECT_EQ(m.groups(), StellarOverLive(m.data(), m.live()));
  // And the state stays serveable: reopening continues the LSN sequence.
  Result<std::unique_ptr<DurableIngest>> reopened =
      DurableIngest::Open(dir, nullptr, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Result<InsertHandler::Applied> applied =
      reopened.value()->ApplyInsert(Row(0.2, 0.2, 0.2), 80);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value().lsn, 4u);
}

TEST(RecoveryTest, MixedOpWalOnlyRebuildKeepsIdsExact) {
  // All checkpoints damaged with deletes in the log: the v3 insert records
  // carry their assigned row ids, so the rebuild lands every replayed row
  // at its original id and the deletes hit the right targets.
  const std::string dir = FreshDir("rec_mixed_walonly");
  const Dataset bootstrap = MakeData(15, 3, 22);
  {
    DurableIngestOptions options;
    options.checkpoint_every = 0;
    Result<std::unique_ptr<DurableIngest>> ingest =
        DurableIngest::Open(dir, &bootstrap, options);
    ASSERT_TRUE(ingest.ok());
    ASSERT_TRUE(ingest.value()->ApplyInsert(Row(0.5, 0.5, 0.5), 10).ok());
    ASSERT_TRUE(ingest.value()->ApplyInsert(Row(0.3, 0.3, 0.3), 20).ok());
    ASSERT_TRUE(ingest.value()->ApplyDelete(15).ok());
    ASSERT_TRUE(ingest.value()->ApplyInsert(Row(0.7, 0.2, 0.1), 30).ok());
    ingest.value().reset();
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".ckpt") continue;
    fs::resize_file(entry.path(), fs::file_size(entry.path()) / 2);
  }
  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const RecoveryStats& stats = recovered.value().stats;
  EXPECT_TRUE(stats.wal_only_rebuild);
  EXPECT_EQ(stats.base_rows_lost, 15u);
  const IncrementalCubeMaintainer& m = *recovered.value().maintainer;
  ASSERT_EQ(m.data().num_objects(), 18u);  // 15 placeholders + 3 inserts
  EXPECT_EQ(m.num_live(), 2u);  // 3 replayed inserts − the delete of id 15
  EXPECT_FALSE(m.IsLive(15));
  EXPECT_TRUE(m.IsLive(16));
  EXPECT_TRUE(m.IsLive(17));
  EXPECT_EQ(m.timestamps()[17], 30u);
  EXPECT_EQ(m.groups(), StellarOverLive(m.data(), m.live()));
}

TEST(RecoveryTest, DrainThenRecoverReplaysNothing) {
  const std::string dir = FreshDir("rec_drain");
  const Dataset bootstrap = MakeData(20, 3, 16);
  DurableIngestOptions options;
  options.checkpoint_every = 0;
  Result<std::unique_ptr<DurableIngest>> ingest =
      DurableIngest::Open(dir, &bootstrap, options);
  ASSERT_TRUE(ingest.ok());
  ASSERT_TRUE(ingest.value()->ApplyInsert(Row(0.3, 0.3, 0.3)).ok());
  ASSERT_TRUE(ingest.value()->ApplyInsert(Row(0.9, 0.9, 0.9)).ok());
  ASSERT_TRUE(ingest.value()->Drain().ok());
  ingest.value().reset();

  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().stats.checkpoint_lsn, 2u);
  EXPECT_EQ(recovered.value().stats.wal_records_replayed, 0u);
  EXPECT_EQ(recovered.value().maintainer->data().num_objects(), 22u);
}

}  // namespace
}  // namespace skycube
