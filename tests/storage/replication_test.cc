// Replication tests (storage/replication.h): shipped-batch codec, WAL
// shipper semantics (truncation → re-bootstrap, ack tracking, semi-sync
// fencing), snapshot install/wipe/rewind utilities, and the follower apply
// loop — including the mixed legacy-v2/v3 tail, whose replay on a
// follower must be byte-identical to local recovery of the primary's log.
#include "storage/replication.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "gtest/gtest.h"
#include "storage/durable_ingest.h"
#include "storage/recovery.h"
#include "storage/wal.h"

namespace skycube {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

Dataset MakeData(size_t n, int dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_objects = n;
  spec.num_dims = dims;
  spec.seed = seed;
  spec.truncate_decimals = 3;
  return GenerateSynthetic(spec);
}

/// Bootstraps a primary over `bootstrap` and applies `inserts` rows (plus
/// one delete when requested). checkpoint_every=0 keeps the whole tail in
/// the WAL.
std::unique_ptr<DurableIngest> OpenPrimary(const std::string& dir,
                                           const Dataset& bootstrap,
                                           int inserts, bool with_delete) {
  DurableIngestOptions options;
  options.checkpoint_every = 0;
  Result<std::unique_ptr<DurableIngest>> opened =
      DurableIngest::Open(dir, &bootstrap, options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return nullptr;
  std::unique_ptr<DurableIngest> primary = std::move(opened).value();
  for (int i = 0; i < inserts; ++i) {
    std::vector<double> row(
        static_cast<size_t>(bootstrap.num_dims()));
    for (size_t d = 0; d < row.size(); ++d) {
      row[d] = 0.05 + 0.013 * i + 0.002 * static_cast<double>(d);
    }
    Result<InsertHandler::Applied> applied =
        primary->ApplyInsert(row, /*timestamp_ms=*/1000 + 7 * i);
    EXPECT_TRUE(applied.ok()) << applied.status().ToString();
  }
  if (with_delete) {
    Result<InsertHandler::Applied> applied = primary->ApplyDelete(0);
    EXPECT_TRUE(applied.ok()) << applied.status().ToString();
  }
  return primary;
}

/// Bootstraps a follower directory from `source` (snapshot + open), the
/// same sequence the serve tool's --replica-of path runs.
std::unique_ptr<DurableIngest> BootstrapFollower(const std::string& dir,
                                                 ReplicationSource* source) {
  EXPECT_TRUE(WipeDurableState(dir).ok());
  Result<ReplicationSnapshot> snapshot = source->Snapshot();
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  if (!snapshot.ok()) return nullptr;
  Status installed =
      InstallSnapshot(dir, snapshot.value().lsn, snapshot.value().bytes);
  EXPECT_TRUE(installed.ok()) << installed.ToString();
  DurableIngestOptions options;
  options.checkpoint_every = 0;
  Result<std::unique_ptr<DurableIngest>> opened =
      DurableIngest::Open(dir, nullptr, options);
  EXPECT_TRUE(opened.ok()) << opened.status().ToString();
  if (!opened.ok()) return nullptr;
  return std::move(opened).value();
}

bool WaitApplied(const WalFollower& follower, uint64_t target_lsn,
                 std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (follower.applied_lsn() >= target_lsn) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

TEST(ReplicationTest, ShippedRecordsCodecRoundTrip) {
  std::vector<WalRecord> records;
  records.push_back({1, "alpha"});
  records.push_back({2, std::string("\x00\x81\xff", 3)});
  records.push_back({7, ""});
  const std::string encoded = EncodeShippedRecords(records);
  Result<std::vector<WalRecord>> decoded = DecodeShippedRecords(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].lsn, records[i].lsn);
    EXPECT_EQ(decoded.value()[i].payload, records[i].payload);
  }
  // Mid-record truncations must fail cleanly, never read out of bounds. A
  // cut exactly on a record boundary is indistinguishable from a shorter
  // batch (the codec is self-delimiting per record) and decodes to the
  // prefix.
  size_t boundary = 0;
  std::vector<size_t> boundaries;
  for (const WalRecord& record : records) {
    boundary += 12 + record.payload.size();
    boundaries.push_back(boundary);
  }
  for (size_t len = 1; len < encoded.size(); ++len) {
    const bool on_boundary = std::find(boundaries.begin(), boundaries.end(),
                                       len) != boundaries.end();
    EXPECT_EQ(DecodeShippedRecords(encoded.substr(0, len)).ok(),
              on_boundary)
        << len;
  }
  EXPECT_FALSE(DecodeShippedRecords(encoded + "x").ok());
  EXPECT_TRUE(DecodeShippedRecords("").ok());
}

TEST(ReplicationTest, FollowerConvergesFromSnapshotAndTail) {
  const std::string primary_dir = FreshDir("repl_primary");
  const std::string follower_dir = FreshDir("repl_follower");
  const Dataset bootstrap = MakeData(30, 3, 11);
  std::unique_ptr<DurableIngest> primary =
      OpenPrimary(primary_dir, bootstrap, /*inserts=*/9,
                  /*with_delete=*/true);
  ASSERT_NE(primary, nullptr);
  const uint64_t tip = primary->stats().wal.next_lsn - 1;
  ASSERT_EQ(tip, 10u);

  DirReplicationSource source(primary_dir);
  std::unique_ptr<DurableIngest> follower =
      BootstrapFollower(follower_dir, &source);
  ASSERT_NE(follower, nullptr);

  std::atomic<uint64_t> reloads{0};
  WalFollower tail(follower.get(), &source,
                   [&reloads](const InsertHandler::Applied& applied) {
                     if (applied.cube != nullptr) {
                       reloads.fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  tail.Start();
  ASSERT_TRUE(WaitApplied(tail, tip, std::chrono::seconds(20)));
  tail.Stop();

  // Semantic identity: the follower's maintainer groups equal the
  // primary's.
  SkylineGroupSet primary_groups = primary->maintainer().groups();
  SkylineGroupSet follower_groups = follower->maintainer().groups();
  NormalizeGroups(&primary_groups);
  NormalizeGroups(&follower_groups);
  EXPECT_EQ(primary_groups, follower_groups);
  EXPECT_EQ(follower->maintainer().data().num_objects(),
            primary->maintainer().data().num_objects());

  // Byte identity: the follower's WAL holds the same records (same LSNs,
  // same payload bytes — row ids and timestamps included) as the
  // primary's.
  Result<WalReadResult> primary_wal = ReadWal(primary_dir, 0);
  Result<WalReadResult> follower_wal = ReadWal(follower_dir, 0);
  ASSERT_TRUE(primary_wal.ok());
  ASSERT_TRUE(follower_wal.ok());
  ASSERT_EQ(follower_wal.value().records.size(),
            primary_wal.value().records.size());
  for (size_t i = 0; i < primary_wal.value().records.size(); ++i) {
    EXPECT_EQ(follower_wal.value().records[i].lsn,
              primary_wal.value().records[i].lsn);
    EXPECT_EQ(follower_wal.value().records[i].payload,
              primary_wal.value().records[i].payload);
  }
  EXPECT_GT(reloads.load(std::memory_order_relaxed), 0u);
}

TEST(ReplicationTest, MixedLegacyV3TailMatchesLocalRecovery) {
  // A primary whose WAL tail mixes legacy v2 records (bare row payloads,
  // logs written before op-typed records) with v3 inserts and deletes. A
  // follower replaying the shipped tail must end up byte-identical to what
  // local recovery of that log produces — same row ids, same timestamps.
  const std::string primary_dir = FreshDir("repl_mixed_primary");
  const std::string follower_dir = FreshDir("repl_mixed_follower");
  const Dataset bootstrap = MakeData(20, 3, 5);
  const uint32_t base = static_cast<uint32_t>(bootstrap.num_objects());
  {
    DurableIngestOptions options;
    options.checkpoint_every = 0;
    Result<std::unique_ptr<DurableIngest>> opened =
        DurableIngest::Open(primary_dir, &bootstrap, options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  }
  {
    // Hand-write the mixed tail the way a pre-v3 ingest plus a modern one
    // would have: legacy rows carry no row id or timestamp and append in
    // arrival order, so the interleaved v3 records must use the row ids
    // the replay will actually assign.
    Result<std::unique_ptr<WriteAheadLog>> wal =
        WriteAheadLog::Open(primary_dir, /*next_lsn=*/1);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(
        wal.value()->Append(EncodeRowPayload({0.5, 0.4, 0.3})).ok());
    ASSERT_TRUE(wal.value()
                    ->Append(EncodeInsertPayload({0.2, 0.9, 0.8}, base + 1,
                                                 /*ts=*/7777))
                    .ok());
    ASSERT_TRUE(
        wal.value()->Append(EncodeRowPayload({0.1, 0.1, 0.95})).ok());
    ASSERT_TRUE(
        wal.value()->Append(EncodeDeletePayload(base, /*ts=*/8888)).ok());
    ASSERT_TRUE(wal.value()
                    ->Append(EncodeInsertPayload({0.6, 0.2, 0.2}, base + 3,
                                                 /*ts=*/9999))
                    .ok());
    ASSERT_TRUE(wal.value()->Sync().ok());
  }

  // The local-recovery oracle over the primary's log.
  Result<RecoveredState> local = RecoverFromDir(primary_dir);
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  EXPECT_EQ(local.value().stats.wal_records_replayed, 5u);

  DirReplicationSource source(primary_dir);
  std::unique_ptr<DurableIngest> follower =
      BootstrapFollower(follower_dir, &source);
  ASSERT_NE(follower, nullptr);
  WalFollower tail(follower.get(), &source,
                   [](const InsertHandler::Applied&) {});
  tail.Start();
  ASSERT_TRUE(WaitApplied(tail, 5, std::chrono::seconds(20)));
  tail.Stop();
  EXPECT_EQ(tail.stats().apply_errors, 0u);

  SkylineGroupSet recovered_groups = local.value().maintainer->groups();
  SkylineGroupSet follower_groups = follower->maintainer().groups();
  NormalizeGroups(&recovered_groups);
  NormalizeGroups(&follower_groups);
  EXPECT_EQ(follower_groups, recovered_groups);
  EXPECT_EQ(follower->maintainer().data().num_objects(),
            local.value().maintainer->data().num_objects());

  // Byte identity of the replicated log: legacy records stay legacy on the
  // follower — same payload bytes at the same LSNs.
  Result<WalReadResult> primary_wal = ReadWal(primary_dir, 0);
  Result<WalReadResult> follower_wal = ReadWal(follower_dir, 0);
  ASSERT_TRUE(primary_wal.ok());
  ASSERT_TRUE(follower_wal.ok());
  ASSERT_EQ(follower_wal.value().records.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(follower_wal.value().records[i].lsn,
              primary_wal.value().records[i].lsn);
    EXPECT_EQ(follower_wal.value().records[i].payload,
              primary_wal.value().records[i].payload);
  }
}

TEST(ReplicationTest, FetchPastTruncationDemandsRebootstrap) {
  const std::string dir = FreshDir("repl_truncated");
  const Dataset bootstrap = MakeData(15, 3, 3);
  {
    // checkpoint_every=4 + tiny segments → whole WAL prefix segments are
    // deleted as checkpoints land; an ack of 0 then predates the oldest
    // surviving segment.
    DurableIngestOptions options;
    options.checkpoint_every = 4;
    options.wal.segment_bytes = 96;
    Result<std::unique_ptr<DurableIngest>> opened =
        DurableIngest::Open(dir, &bootstrap, options);
    ASSERT_TRUE(opened.ok());
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          opened.value()->ApplyInsert({0.3 + 0.01 * i, 0.4, 0.5}).ok());
    }
  }
  ASSERT_GT(WalOldestStart(dir), 1u);
  WalShipper shipper(dir);
  Result<ShippedBatch> batch =
      shipper.Fetch(0, 64, std::chrono::milliseconds(0));
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kNotFound);
  // An ack inside the surviving log still ships.
  Result<ShippedBatch> tail = shipper.Fetch(
      WalOldestStart(dir) - 1, 64, std::chrono::milliseconds(0));
  ASSERT_TRUE(tail.ok()) << tail.status().ToString();
  EXPECT_FALSE(tail.value().records.empty());
}

TEST(ReplicationTest, WipeDurableStateRemovesEverything) {
  const std::string dir = FreshDir("repl_wipe");
  EXPECT_TRUE(WipeDurableState(dir).ok());  // missing dir is fine
  const Dataset bootstrap = MakeData(10, 3, 9);
  std::unique_ptr<DurableIngest> primary =
      OpenPrimary(dir, bootstrap, /*inserts=*/3, /*with_delete=*/false);
  ASSERT_NE(primary, nullptr);
  primary.reset();
  ASSERT_TRUE(DirHasDurableState(dir));
  ASSERT_TRUE(WipeDurableState(dir).ok());
  EXPECT_FALSE(DirHasDurableState(dir));
}

TEST(ReplicationTest, SemiSyncFenceDegradesWithoutFollowersAndAcksWithOne) {
  const std::string dir = FreshDir("repl_fence");
  const Dataset bootstrap = MakeData(10, 3, 13);
  std::unique_ptr<DurableIngest> primary =
      OpenPrimary(dir, bootstrap, /*inserts=*/0, /*with_delete=*/false);
  ASSERT_NE(primary, nullptr);
  WalShipper shipper(dir);
  // No follower has ever fetched: the fence must degrade immediately, not
  // burn the timeout (an unreplicated durable server pays ~nothing).
  ReplicatedInsertHandler handler(primary.get(), &shipper,
                                  std::chrono::milliseconds(10000));
  const auto start = std::chrono::steady_clock::now();
  Result<InsertHandler::Applied> applied =
      handler.ApplyInsert({0.5, 0.5, 0.5});
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5));
  EXPECT_EQ(shipper.stats().tip_lsn, applied.value().lsn);

  // With a live follower acking, the fence holds until the ack arrives.
  std::atomic<bool> stop{false};
  std::thread follower([&shipper, &stop] {
    uint64_t ack = 0;
    while (!stop.load(std::memory_order_acquire)) {
      Result<ShippedBatch> batch =
          shipper.Fetch(ack, 64, std::chrono::milliseconds(100));
      if (batch.ok() && !batch.value().records.empty()) {
        ack = batch.value().records.back().lsn;
      }
    }
  });
  Result<InsertHandler::Applied> fenced =
      handler.ApplyInsert({0.4, 0.4, 0.4});
  ASSERT_TRUE(fenced.ok()) << fenced.status().ToString();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (shipper.stats().acked_lsn < fenced.value().lsn &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(shipper.stats().acked_lsn, fenced.value().lsn);
  stop.store(true, std::memory_order_release);
  follower.join();
}

TEST(ReplicationTest, ConcurrentApplyAndStatsReads) {
  // The TSan target: a primary ingesting through the replicated handler, a
  // follower applying the shipped tail, and a reader hammering both stats
  // surfaces — concurrently.
  const std::string primary_dir = FreshDir("repl_tsan_primary");
  const std::string follower_dir = FreshDir("repl_tsan_follower");
  const Dataset bootstrap = MakeData(20, 3, 17);
  std::unique_ptr<DurableIngest> primary =
      OpenPrimary(primary_dir, bootstrap, /*inserts=*/0,
                  /*with_delete=*/false);
  ASSERT_NE(primary, nullptr);
  DirReplicationSource source(primary_dir);
  std::unique_ptr<DurableIngest> follower =
      BootstrapFollower(follower_dir, &source);
  ASSERT_NE(follower, nullptr);
  WalFollower tail(follower.get(), &source,
                   [](const InsertHandler::Applied&) {});
  tail.Start();

  ReplicatedInsertHandler handler(primary.get(), source.shipper(),
                                  std::chrono::milliseconds(0));
  constexpr int kInserts = 64;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)source.shipper()->stats();
      (void)tail.stats();
      (void)tail.applied_lsn();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  uint64_t tip = 0;
  for (int i = 0; i < kInserts; ++i) {
    Result<InsertHandler::Applied> applied =
        handler.ApplyInsert({0.2 + 0.005 * i, 0.7, 0.6},
                            /*timestamp_ms=*/100 + i);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    tip = applied.value().lsn;
  }
  EXPECT_TRUE(WaitApplied(tail, tip, std::chrono::seconds(30)));
  stop.store(true, std::memory_order_release);
  reader.join();
  tail.Stop();
  EXPECT_EQ(tail.stats().apply_errors, 0u);
  EXPECT_EQ(follower->stats().wal.next_lsn, primary->stats().wal.next_lsn);
}

TEST(ReplicationTest, CoalescedFollowerBatchesFetchesAndStillConverges) {
  const std::string primary_dir = FreshDir("repl_coalesce_primary");
  const std::string follower_dir = FreshDir("repl_coalesce_follower");
  const Dataset bootstrap = MakeData(20, 3, 13);
  std::unique_ptr<DurableIngest> primary =
      OpenPrimary(primary_dir, bootstrap, /*inserts=*/0,
                  /*with_delete=*/false);
  ASSERT_NE(primary, nullptr);
  DirReplicationSource source(primary_dir);
  std::unique_ptr<DurableIngest> follower =
      BootstrapFollower(follower_dir, &source);
  ASSERT_NE(follower, nullptr);

  WalFollowerOptions options;
  options.coalesce = std::chrono::milliseconds(100);
  WalFollower tail(follower.get(), &source, /*on_applied=*/nullptr,
                   options);
  tail.Start();

  // A paced append stream: with a 100 ms coalesce window the records must
  // land in batches, never one fetch per record.
  ReplicatedInsertHandler handler(primary.get(), source.shipper(),
                                  std::chrono::milliseconds(0));
  constexpr int kInserts = 24;
  uint64_t tip = 0;
  for (int i = 0; i < kInserts; ++i) {
    Result<InsertHandler::Applied> applied =
        handler.ApplyInsert({0.3 + 0.004 * i, 0.5, 0.8},
                            /*timestamp_ms=*/500 + i);
    ASSERT_TRUE(applied.ok()) << applied.status().ToString();
    tip = applied.value().lsn;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(WaitApplied(tail, tip, std::chrono::seconds(20)));
  tail.Stop();  // must interrupt a pending coalesce pause, not ride it out

  // ~120 ms of appends / 100 ms windows, plus the catch-up fetch and a
  // trailing empty long poll — kInserts/2 is a generous ceiling that a
  // wake-per-append loop (kInserts fetches) blows through.
  EXPECT_LE(source.shipper()->stats().fetches,
            static_cast<uint64_t>(kInserts) / 2 + 3);
  EXPECT_EQ(tail.stats().apply_errors, 0u);
  EXPECT_EQ(follower->stats().wal.next_lsn, primary->stats().wal.next_lsn);
}

TEST(ReplicationTest, RewindDurableStateRecoversFencedPrefix) {
  const std::string dir = FreshDir("repl_rewind");
  const Dataset bootstrap = MakeData(12, 3, 21);
  std::unique_ptr<DurableIngest> primary =
      OpenPrimary(dir, bootstrap, /*inserts=*/6, /*with_delete=*/false);
  ASSERT_NE(primary, nullptr);
  primary.reset();
  ASSERT_TRUE(RewindDurableState(dir, /*fence_lsn=*/4).ok());
  Result<RecoveredState> recovered = RecoverFromDir(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().stats.next_lsn, 5u);
  EXPECT_EQ(recovered.value().maintainer->data().num_objects(),
            bootstrap.num_objects() + 4);
}

}  // namespace
}  // namespace skycube
