// Exit-status contract of skycube_waldump: scripts gate WAL integrity on
// it, so 0 must mean "every record valid and every LSN in place" and 1
// must cover each damage class — checksum corruption, truncation, trailing
// garbage, hole segments, and LSN discontinuities (records individually
// valid but spliced or gapped, which recovery would refuse to replay
// past). The tool is run as a real subprocess via SKYCUBE_WALDUMP_BIN.
#include <stdlib.h>
#include <sys/wait.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "gtest/gtest.h"
#include "storage/wal.h"

namespace skycube {
namespace {

std::string MakeTempDir() {
  std::string tmpl = "/tmp/skycube-waldump-test-XXXXXX";
  const char* dir = ::mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir;
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

/// One wire-exact WAL record (mirrors storage/wal.cc's framing) — built by
/// hand so tests can place records at arbitrary LSNs, which the real
/// appender never does.
std::string RecordBytes(uint64_t lsn, std::string_view payload) {
  std::string header;
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU64(&header, lsn);
  uint64_t checksum = Fnv1a64(header);
  for (unsigned char c : payload) {
    checksum ^= c;
    checksum *= 1099511628211ull;
  }
  std::string record = header;
  PutU64(&record, checksum);
  record.append(payload);
  return record;
}

std::string SegmentPath(const std::string& dir, uint64_t start_lsn) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.log",
                static_cast<unsigned long long>(start_lsn));
  return dir + "/" + name;
}

void WriteSegment(const std::string& dir, uint64_t start_lsn,
                  const std::vector<uint64_t>& lsns,
                  std::string_view extra_tail = {}) {
  std::string blob = "SKYWAL01";
  for (uint64_t lsn : lsns) {
    blob += RecordBytes(lsn, EncodeDeletePayload(
                                 static_cast<uint32_t>(lsn), 1700000000000));
  }
  blob.append(extra_tail);
  std::FILE* file = std::fopen(SegmentPath(dir, start_lsn).c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fwrite(blob.data(), 1, blob.size(), file);
  std::fclose(file);
}

int RunWaldump(const std::string& dir, const std::string& extra_flags = "") {
  const std::string command = std::string(SKYCUBE_WALDUMP_BIN) +
                              " --dir=" + dir + " " + extra_flags +
                              " > /dev/null 2>&1";
  const int status = std::system(command.c_str());
  EXPECT_TRUE(WIFEXITED(status));
  return WEXITSTATUS(status);
}

class WaldumpToolTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeTempDir(); }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(WaldumpToolTest, CleanLogExitsZero) {
  WriteSegment(dir_, 1, {1, 2, 3});
  EXPECT_EQ(RunWaldump(dir_), 0);
}

TEST_F(WaldumpToolTest, RealAppenderLogExitsZero) {
  {
    Result<std::unique_ptr<WriteAheadLog>> wal = WriteAheadLog::Open(dir_, 1);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          wal.value()
              ->Append(EncodeInsertPayload({1.0, 2.0}, i, 1700000000000 + i))
              .ok());
    }
  }
  EXPECT_EQ(RunWaldump(dir_), 0);
}

TEST_F(WaldumpToolTest, ChecksumCorruptionExitsOne) {
  WriteSegment(dir_, 1, {1, 2, 3});
  const std::string path = SegmentPath(dir_, 1);
  // Flip one payload bit of the middle record.
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(file, nullptr);
  std::fseek(file, -3, SEEK_END);
  const int c = std::fgetc(file);
  std::fseek(file, -3, SEEK_END);
  std::fputc(c ^ 0x10, file);
  std::fclose(file);
  EXPECT_EQ(RunWaldump(dir_), 1);
}

TEST_F(WaldumpToolTest, TruncatedTailExitsOne) {
  WriteSegment(dir_, 1, {1, 2, 3});
  const std::string path = SegmentPath(dir_, 1);
  std::error_code ec;
  const uintmax_t size = std::filesystem::file_size(path, ec);
  std::filesystem::resize_file(path, size - 5, ec);
  ASSERT_FALSE(ec);
  EXPECT_EQ(RunWaldump(dir_), 1);
}

TEST_F(WaldumpToolTest, TrailingGarbageExitsOne) {
  WriteSegment(dir_, 1, {1, 2}, "garbage-tail-bytes");
  EXPECT_EQ(RunWaldump(dir_), 1);
}

TEST_F(WaldumpToolTest, IntraSegmentLsnGapExitsOne) {
  // Records 1, 2, 5: every checksum valid, but the sequence has a hole —
  // the splice case that used to exit 0.
  WriteSegment(dir_, 1, {1, 2, 5});
  EXPECT_EQ(RunWaldump(dir_), 1);
}

TEST_F(WaldumpToolTest, InterSegmentLsnGapExitsOne) {
  WriteSegment(dir_, 1, {1, 2});
  WriteSegment(dir_, 5, {5, 6});
  EXPECT_EQ(RunWaldump(dir_), 1);
}

TEST_F(WaldumpToolTest, MisnamedSegmentExitsOne) {
  WriteSegment(dir_, 1, {1, 2});
  // Contiguous records, but filed under a name claiming start LSN 4.
  WriteSegment(dir_, 4, {3, 4});
  EXPECT_EQ(RunWaldump(dir_), 1);
}

TEST_F(WaldumpToolTest, TruncatedPrefixStaysClean) {
  // A log whose old segments were retired by TruncateThrough legitimately
  // starts past LSN 1; that is not a gap.
  WriteSegment(dir_, 7, {7, 8, 9});
  EXPECT_EQ(RunWaldump(dir_), 0);
}

TEST_F(WaldumpToolTest, EmptyFinalSegmentStaysClean) {
  WriteSegment(dir_, 1, {1, 2});
  std::FILE* file = std::fopen(SegmentPath(dir_, 3).c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fclose(file);
  EXPECT_EQ(RunWaldump(dir_), 0);
}

TEST_F(WaldumpToolTest, EmptyMiddleSegmentExitsOne) {
  WriteSegment(dir_, 1, {1, 2});
  // A zero-byte file that sorts between the two real segments: not the
  // final segment, so a crashed rotation cannot explain it — a hole.
  std::FILE* file = std::fopen(SegmentPath(dir_, 2).c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fclose(file);
  WriteSegment(dir_, 3, {3, 4});
  EXPECT_EQ(RunWaldump(dir_), 1);
}

TEST_F(WaldumpToolTest, FromLsnWindowDoesNotMaskDamage) {
  WriteSegment(dir_, 1, {1, 2, 5});
  EXPECT_EQ(RunWaldump(dir_, "--from-lsn=5"), 1);
}

TEST_F(WaldumpToolTest, MissingDirExitsTwo) {
  EXPECT_EQ(RunWaldump(dir_ + "/does-not-exist"), 2);
}

}  // namespace
}  // namespace skycube
