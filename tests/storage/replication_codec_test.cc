// Direct properties of the replication shipped-record codec
// (EncodeShippedRecords / DecodeShippedRecords) — previously exercised
// only end-to-end through the replication harness. The codec carries the
// primary's WAL bytes to followers, so its contract is: exact round-trip
// of every record, canonical bytes (decode ∘ encode = identity), and a
// clean kInvalidArgument — never a crash or a silent partial batch — on
// every truncation and on corruption that changes the structure.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "storage/replication.h"
#include "storage/wal.h"

namespace skycube {
namespace {

std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> records;
  records.push_back({101, EncodeInsertPayload({1.5, -2.0, 3.25}, 7,
                                              1700000000000)});
  records.push_back({102, EncodeDeletePayload(3, 1700000000500)});
  records.push_back({103, EncodeRowPayload({9.0, 8.0, 7.0})});  // legacy v2
  records.push_back({104, std::string()});                      // empty payload
  records.push_back({105, std::string(1000, '\xab')});          // binary blob
  return records;
}

TEST(ReplicationCodecTest, RoundTripPreservesEveryRecord) {
  const std::vector<WalRecord> records = SampleRecords();
  const std::string encoded = EncodeShippedRecords(records);
  Result<std::vector<WalRecord>> decoded = DecodeShippedRecords(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded.value().size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded.value()[i].lsn, records[i].lsn) << "record " << i;
    EXPECT_EQ(decoded.value()[i].payload, records[i].payload)
        << "record " << i;
  }
}

TEST(ReplicationCodecTest, EmptyBatchRoundTrips) {
  const std::string encoded = EncodeShippedRecords({});
  EXPECT_TRUE(encoded.empty());
  Result<std::vector<WalRecord>> decoded = DecodeShippedRecords(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(ReplicationCodecTest, EncodingIsCanonical) {
  // decode ∘ encode must reproduce the exact bytes: followers re-append
  // payloads verbatim, so any re-encoding ambiguity would fork replicas.
  const std::string encoded = EncodeShippedRecords(SampleRecords());
  Result<std::vector<WalRecord>> decoded = DecodeShippedRecords(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(EncodeShippedRecords(decoded.value()), encoded);
}

TEST(ReplicationCodecTest, EveryPrefixTruncationFailsCleanly) {
  const std::string encoded = EncodeShippedRecords(SampleRecords());
  // Every strict prefix is either a valid shorter batch (a cut exactly on
  // a record boundary) or kInvalidArgument — never a crash, and never a
  // record the full batch does not contain.
  const std::vector<WalRecord> full =
      DecodeShippedRecords(encoded).value();
  size_t boundary_cuts = 0;
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Result<std::vector<WalRecord>> decoded =
        DecodeShippedRecords(std::string_view(encoded).substr(0, cut));
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
          << "cut at " << cut;
      continue;
    }
    ++boundary_cuts;
    ASSERT_LE(decoded.value().size(), full.size());
    for (size_t i = 0; i < decoded.value().size(); ++i) {
      EXPECT_EQ(decoded.value()[i].lsn, full[i].lsn);
      EXPECT_EQ(decoded.value()[i].payload, full[i].payload);
    }
  }
  // Cuts on record boundaries (including the empty prefix) parse; there
  // are exactly as many as there are records.
  EXPECT_EQ(boundary_cuts, full.size());
}

TEST(ReplicationCodecTest, PerByteCorruptionNeverCrashes) {
  const std::vector<WalRecord> records = SampleRecords();
  const std::string encoded = EncodeShippedRecords(records);
  for (size_t pos = 0; pos < encoded.size(); ++pos) {
    for (uint8_t bit : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::string corrupted = encoded;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ bit);
      // The codec has no checksum of its own (the frame layer carries
      // one), so a flipped byte may decode as a *different* batch — but
      // it must either fail with kInvalidArgument or return records whose
      // total payload volume stays bounded by the input size.
      Result<std::vector<WalRecord>> decoded =
          DecodeShippedRecords(corrupted);
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
            << "corrupt byte " << pos;
        continue;
      }
      size_t payload_bytes = 0;
      for (const WalRecord& record : decoded.value()) {
        payload_bytes += record.payload.size();
      }
      EXPECT_LE(payload_bytes, corrupted.size())
          << "decoded more payload than input bytes at " << pos;
    }
  }
}

TEST(ReplicationCodecTest, TrailingBytesRejected) {
  std::string encoded = EncodeShippedRecords(SampleRecords());
  encoded.append("x");
  Result<std::vector<WalRecord>> decoded = DecodeShippedRecords(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReplicationCodecTest, OversizedDeclaredLengthRejectedWithoutAllocating) {
  // A batch whose one record declares ~4 GiB of payload but carries 4
  // bytes: the decoder must reject from the *available* size, not resize
  // to the declared one.
  std::string bytes;
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<char>(i == 0));
  for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>(0xff));
  bytes.append("abcd");
  Result<std::vector<WalRecord>> decoded = DecodeShippedRecords(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace skycube
