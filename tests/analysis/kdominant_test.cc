// Tests for k-dominant skylines.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/kdominant.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {
namespace {

// Brute force straight from the definition, without the skyline filter.
std::vector<ObjectId> BruteKDominantSkyline(const Dataset& data,
                                            DimMask subspace, int k) {
  std::vector<ObjectId> result;
  for (ObjectId candidate = 0; candidate < data.num_objects(); ++candidate) {
    bool beaten = false;
    for (ObjectId other = 0; other < data.num_objects() && !beaten; ++other) {
      beaten = other != candidate &&
               KDominates(data, other, candidate, subspace, k);
    }
    if (!beaten) result.push_back(candidate);
  }
  return result;
}

TEST(KDominantTest, KDominatesBasics) {
  const Dataset data = Dataset::FromRows({
                                             {1, 2, 9},  // 0
                                             {2, 1, 1},  // 1
                                             {1, 2, 8},  // 2: dominates 0
                                         })
                           .value();
  // 0 vs 1: no worse on A only (1<2) → k=1 dominates... also strictly
  // better on 1 of 1. k=2 requires two no-worse dims: A yes, B no, C no.
  EXPECT_TRUE(KDominates(data, 0, 1, 0b111, 1));
  EXPECT_FALSE(KDominates(data, 0, 1, 0b111, 2));
  // 1 vs 0: no worse on B, C (1<2, 1<9) → 2-dominates but not 3-dominates.
  EXPECT_TRUE(KDominates(data, 1, 0, 0b111, 2));
  EXPECT_FALSE(KDominates(data, 1, 0, 0b111, 3));
  // 2 ordinarily dominates 0 → k-dominates for every k.
  for (int k = 1; k <= 3; ++k) {
    EXPECT_TRUE(KDominates(data, 2, 0, 0b111, k));
    EXPECT_FALSE(KDominates(data, 0, 2, 0b111, k));
  }
  // Equal projections never k-dominate.
  EXPECT_FALSE(KDominates(data, 0, 0, 0b111, 1));
}

TEST(KDominantTest, FullKEqualsOrdinarySkyline) {
  SyntheticSpec spec;
  spec.num_objects = 200;
  spec.num_dims = 4;
  spec.truncate_decimals = 2;
  spec.seed = 5;
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kCorrelated,
                            Distribution::kAntiCorrelated}) {
    spec.distribution = dist;
    const Dataset data = GenerateSynthetic(spec);
    EXPECT_EQ(KDominantSkyline(data, data.full_mask(), 4),
              ComputeSkyline(data, data.full_mask()))
        << DistributionName(dist);
  }
}

TEST(KDominantTest, MonotoneInK) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.num_objects = 150;
  spec.num_dims = 5;
  spec.seed = 23;
  const Dataset data = GenerateSynthetic(spec);
  std::vector<ObjectId> previous;
  for (int k = 1; k <= 5; ++k) {
    const std::vector<ObjectId> current =
        KDominantSkyline(data, data.full_mask(), k);
    if (k > 1) {
      EXPECT_TRUE(std::includes(current.begin(), current.end(),
                                previous.begin(), previous.end()))
          << "k=" << k << " lost objects from k=" << k - 1;
    }
    previous = current;
  }
}

TEST(KDominantTest, MatchesBruteForce) {
  SyntheticSpec spec;
  spec.num_objects = 120;
  spec.num_dims = 4;
  spec.truncate_decimals = 1;
  for (uint64_t seed : {1u, 9u, 77u}) {
    spec.seed = seed;
    for (Distribution dist : {Distribution::kIndependent,
                              Distribution::kAntiCorrelated}) {
      spec.distribution = dist;
      const Dataset data = GenerateSynthetic(spec);
      for (int k = 1; k <= 4; ++k) {
        EXPECT_EQ(KDominantSkyline(data, data.full_mask(), k),
                  BruteKDominantSkyline(data, data.full_mask(), k))
            << DistributionName(dist) << " k=" << k << " seed " << seed;
      }
    }
  }
}

TEST(KDominantTest, SubspaceRestriction) {
  const Dataset data = Dataset::FromRows({
                                             {1, 9, 9},
                                             {9, 1, 9},
                                             {9, 9, 1},
                                         })
                           .value();
  // In full space all three are ordinary skyline; with k=2 each object is
  // 2-dominated by another (cyclically), so the 2-dominant skyline is
  // empty — the classic cyclic example.
  EXPECT_TRUE(KDominantSkyline(data, 0b111, 2).empty());
  // Restricted to AB with k=2 (ordinary skyline of AB): objects 0 and 1.
  EXPECT_EQ(KDominantSkyline(data, 0b011, 2),
            (std::vector<ObjectId>{0, 1}));
}

}  // namespace
}  // namespace skycube
