// Tests for k-skybands.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/skyband.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {
namespace {

TEST(SkybandTest, OneSkybandIsTheSkyline) {
  SyntheticSpec spec;
  spec.num_objects = 300;
  spec.num_dims = 4;
  spec.truncate_decimals = 2;
  spec.seed = 6;
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kCorrelated,
                            Distribution::kAntiCorrelated}) {
    spec.distribution = dist;
    const Dataset data = GenerateSynthetic(spec);
    ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
      EXPECT_EQ(Skyband(data, subspace, 1), ComputeSkyline(data, subspace))
          << DistributionName(dist) << " " << FormatMask(subspace);
    });
  }
}

TEST(SkybandTest, BandsAreNestedAndEventuallyEverything) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kAntiCorrelated;
  spec.num_objects = 150;
  spec.num_dims = 3;
  spec.seed = 12;
  const Dataset data = GenerateSynthetic(spec);
  std::vector<ObjectId> previous;
  for (size_t k = 1; k <= data.num_objects(); k *= 2) {
    const std::vector<ObjectId> band = Skyband(data, data.full_mask(), k);
    if (k > 1) {
      EXPECT_TRUE(std::includes(band.begin(), band.end(), previous.begin(),
                                previous.end()))
          << "band " << k << " lost members";
    }
    previous = band;
  }
  EXPECT_EQ(Skyband(data, data.full_mask(), data.num_objects()).size(),
            data.num_objects());
}

TEST(SkybandTest, HandComputedLayers) {
  // Chain 1 < 2 < 3 < 4 on one dimension.
  const Dataset data = Dataset::FromRows({{4}, {2}, {3}, {1}}).value();
  EXPECT_EQ(Skyband(data, 0b1, 1), (std::vector<ObjectId>{3}));
  EXPECT_EQ(Skyband(data, 0b1, 2), (std::vector<ObjectId>{1, 3}));
  EXPECT_EQ(Skyband(data, 0b1, 3), (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_EQ(Skyband(data, 0b1, 4), (std::vector<ObjectId>{0, 1, 2, 3}));
}

TEST(SkybandTest, DuplicatesShareCounts) {
  const Dataset data =
      Dataset::FromRows({{1, 1}, {1, 1}, {2, 2}, {2, 2}}).value();
  // The twin pair (1,1) dominates both (2,2) twins; twins never dominate
  // each other.
  EXPECT_EQ(Skyband(data, 0b11, 1), (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(Skyband(data, 0b11, 2), (std::vector<ObjectId>{0, 1}));
  EXPECT_EQ(Skyband(data, 0b11, 3), (std::vector<ObjectId>{0, 1, 2, 3}));
}

TEST(SkybandTest, DominatorCountsExactAndCapped) {
  const Dataset data = Dataset::FromRows({{4}, {2}, {3}, {1}}).value();
  EXPECT_EQ(DominatorCounts(data, 0b1),
            (std::vector<size_t>{3, 1, 2, 0}));
  const std::vector<size_t> capped = DominatorCounts(data, 0b1, 2);
  EXPECT_EQ(capped[0], 2u);  // capped at 2
  EXPECT_EQ(capped[3], 0u);
}

}  // namespace
}  // namespace skycube
