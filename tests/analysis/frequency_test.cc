// Tests for skyline frequency analysis over the compressed cube.
#include <vector>

#include <gtest/gtest.h>

#include "analysis/frequency.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {
namespace {

CompressedSkylineCube MakeCube(const Dataset& data) {
  return CompressedSkylineCube(data.num_dims(), data.num_objects(),
                               ComputeStellar(data));
}

TEST(FrequencyTest, RunningExampleFrequencies) {
  const Dataset data = Dataset::FromRows({
                                             {5, 6, 10, 7},  // P1
                                             {2, 6, 8, 3},   // P2
                                             {5, 4, 9, 3},   // P3
                                             {6, 4, 8, 5},   // P4
                                             {2, 4, 9, 3},   // P5
                                         })
                           .value();
  const CompressedSkylineCube cube = MakeCube(data);
  const std::vector<uint64_t> freq = SkylineFrequencies(cube);
  ASSERT_EQ(freq.size(), 5u);
  EXPECT_EQ(freq[0], 0u);  // P1: no subspace skyline at all
  // P3: in Sky(B), Sky(D), Sky(BD), Sky(BCD) — see paper_example_test.
  EXPECT_EQ(freq[2], 4u);
  // Cross-check all objects against direct enumeration.
  for (ObjectId id = 0; id < 5; ++id) {
    uint64_t direct = 0;
    ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
      const std::vector<ObjectId> sky = ComputeSkyline(data, subspace);
      direct += std::count(sky.begin(), sky.end(), id);
    });
    EXPECT_EQ(freq[id], direct) << "object " << id;
  }
}

TEST(FrequencyTest, TopKOrderingAndTruncation) {
  const Dataset data = Dataset::FromRows({
                                             {5, 6, 10, 7},
                                             {2, 6, 8, 3},
                                             {5, 4, 9, 3},
                                             {6, 4, 8, 5},
                                             {2, 4, 9, 3},
                                         })
                           .value();
  const CompressedSkylineCube cube = MakeCube(data);
  const auto top2 = TopKFrequentSkylineObjects(cube, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_GE(top2[0].second, top2[1].second);
  const auto all = TopKFrequentSkylineObjects(cube, 100);
  EXPECT_EQ(all.size(), 4u);  // P1 has frequency 0 and is excluded
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].second, all[i].second);
  }
}

TEST(FrequencyTest, LevelHistogramMatchesDirectEnumeration) {
  SyntheticSpec spec;
  spec.num_objects = 250;
  spec.num_dims = 5;
  spec.truncate_decimals = 1;
  spec.seed = 19;
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kCorrelated,
                            Distribution::kAntiCorrelated}) {
    spec.distribution = dist;
    const Dataset data = GenerateSynthetic(spec);
    const CompressedSkylineCube cube = MakeCube(data);
    const std::vector<uint64_t> histogram = SkylineLevelHistogram(cube);
    ASSERT_EQ(histogram.size(), 5u);
    std::vector<uint64_t> direct(5, 0);
    ForEachNonEmptySubset(data.full_mask(), [&](DimMask subspace) {
      direct[MaskSize(subspace) - 1] +=
          ComputeSkyline(data, subspace).size();
    });
    EXPECT_EQ(histogram, direct) << DistributionName(dist);
    // Consistency with the scalar total.
    uint64_t total = 0;
    for (uint64_t level : histogram) total += level;
    EXPECT_EQ(total, cube.TotalSubspaceSkylineObjects());
  }
}

TEST(FrequencyTest, FrequenciesSumToTotal) {
  SyntheticSpec spec;
  spec.num_objects = 120;
  spec.num_dims = 4;
  spec.truncate_decimals = 1;
  spec.seed = 3;
  const Dataset data = GenerateSynthetic(spec);
  const CompressedSkylineCube cube = MakeCube(data);
  const std::vector<uint64_t> freq = SkylineFrequencies(cube);
  uint64_t sum = 0;
  for (uint64_t f : freq) sum += f;
  EXPECT_EQ(sum, cube.TotalSubspaceSkylineObjects());
}

}  // namespace
}  // namespace skycube
