// Tests for the synthetic generators: determinism, ranges, and the
// statistical properties that define each distribution family.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/nba_like.h"
#include "datagen/synthetic.h"

namespace skycube {
namespace {

// Pearson correlation between two columns.
double Correlation(const Dataset& data, int dim_a, int dim_b) {
  const size_t n = data.num_objects();
  double mean_a = 0;
  double mean_b = 0;
  for (ObjectId i = 0; i < n; ++i) {
    mean_a += data.Value(i, dim_a);
    mean_b += data.Value(i, dim_b);
  }
  mean_a /= n;
  mean_b /= n;
  double cov = 0;
  double var_a = 0;
  double var_b = 0;
  for (ObjectId i = 0; i < n; ++i) {
    const double da = data.Value(i, dim_a) - mean_a;
    const double db = data.Value(i, dim_b) - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  return cov / std::sqrt(var_a * var_b);
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.num_objects = 100;
  spec.num_dims = 3;
  spec.seed = 12345;
  const Dataset a = GenerateSynthetic(spec);
  const Dataset b = GenerateSynthetic(spec);
  ASSERT_EQ(a.num_objects(), b.num_objects());
  for (ObjectId i = 0; i < a.num_objects(); ++i) {
    for (int d = 0; d < 3; ++d) {
      EXPECT_EQ(a.Value(i, d), b.Value(i, d));
    }
  }
  spec.seed = 54321;
  const Dataset c = GenerateSynthetic(spec);
  bool any_diff = false;
  for (ObjectId i = 0; i < a.num_objects() && !any_diff; ++i) {
    for (int d = 0; d < 3; ++d) any_diff |= a.Value(i, d) != c.Value(i, d);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, ValuesInUnitRange) {
  for (Distribution dist : {Distribution::kIndependent,
                            Distribution::kCorrelated,
                            Distribution::kAntiCorrelated}) {
    SyntheticSpec spec;
    spec.distribution = dist;
    spec.num_objects = 2000;
    spec.num_dims = 4;
    spec.seed = 7;
    const Dataset data = GenerateSynthetic(spec);
    for (ObjectId i = 0; i < data.num_objects(); ++i) {
      for (int d = 0; d < 4; ++d) {
        EXPECT_GE(data.Value(i, d), 0.0) << DistributionName(dist);
        EXPECT_LE(data.Value(i, d), 1.0) << DistributionName(dist);
      }
    }
  }
}

TEST(SyntheticTest, CorrelationSigns) {
  SyntheticSpec spec;
  spec.num_objects = 5000;
  spec.num_dims = 4;
  spec.seed = 77;
  spec.truncate_decimals = -1;

  spec.distribution = Distribution::kCorrelated;
  const Dataset corr = GenerateSynthetic(spec);
  spec.distribution = Distribution::kAntiCorrelated;
  const Dataset anti = GenerateSynthetic(spec);
  spec.distribution = Distribution::kIndependent;
  const Dataset ind = GenerateSynthetic(spec);

  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      EXPECT_GT(Correlation(corr, a, b), 0.8);
      EXPECT_LT(Correlation(anti, a, b), -0.15);
      EXPECT_LT(std::abs(Correlation(ind, a, b)), 0.05);
    }
  }
}

TEST(SyntheticTest, TruncationCreatesCoincidence) {
  SyntheticSpec spec;
  spec.num_objects = 20000;
  spec.num_dims = 2;
  spec.seed = 3;
  spec.truncate_decimals = 2;  // 101 possible values per dim
  const Dataset data = GenerateSynthetic(spec);
  // With 20k draws over ~100 buckets, ties are guaranteed in practice.
  bool found_tie = false;
  for (ObjectId i = 1; i < 200 && !found_tie; ++i) {
    for (ObjectId j = 0; j < i && !found_tie; ++j) {
      found_tie = data.Value(i, 0) == data.Value(j, 0);
    }
  }
  EXPECT_TRUE(found_tie);
}

TEST(SyntheticTest, DistributionNamesRoundTrip) {
  EXPECT_EQ(DistributionFromName("correlated"), Distribution::kCorrelated);
  EXPECT_EQ(DistributionFromName("corr"), Distribution::kCorrelated);
  EXPECT_EQ(DistributionFromName("equal"), Distribution::kIndependent);
  EXPECT_EQ(DistributionFromName("anti"), Distribution::kAntiCorrelated);
  EXPECT_STREQ(DistributionName(Distribution::kAntiCorrelated),
               "anti-correlated");
}

TEST(NbaLikeTest, ShapeAndDeterminism) {
  const Dataset a = GenerateNbaLike(500, 42);
  const Dataset b = GenerateNbaLike(500, 42);
  EXPECT_EQ(a.num_dims(), kNbaLikeNumDims);
  EXPECT_EQ(a.num_objects(), 500u);
  for (ObjectId i = 0; i < 500; ++i) {
    for (int d = 0; d < a.num_dims(); ++d) {
      EXPECT_EQ(a.Value(i, d), b.Value(i, d));
    }
  }
}

TEST(NbaLikeTest, ValuesAreNonNegativeIntegers) {
  const Dataset data = GenerateNbaLike(2000, 1);
  for (ObjectId i = 0; i < data.num_objects(); ++i) {
    for (int d = 0; d < data.num_dims(); ++d) {
      const double v = data.Value(i, d);
      EXPECT_GE(v, 0.0);
      EXPECT_EQ(v, std::floor(v));
    }
  }
}

TEST(NbaLikeTest, InternalConsistency) {
  const Dataset data = GenerateNbaLike(2000, 9);
  // Column layout: 7=fgm, 8=fga, 9=ftm, 10=fta, 11=tpm, 12=tpa,
  // 15=games_started, 16=double_doubles, 0=games.
  for (ObjectId i = 0; i < data.num_objects(); ++i) {
    EXPECT_LE(data.Value(i, 7), data.Value(i, 8));
    EXPECT_LE(data.Value(i, 9), data.Value(i, 10));
    EXPECT_LE(data.Value(i, 11), data.Value(i, 12));
    EXPECT_LE(data.Value(i, 15), data.Value(i, 0));
    EXPECT_LE(data.Value(i, 16), data.Value(i, 0));
  }
}

TEST(NbaLikeTest, StatColumnsCorrelateAndTiesExist) {
  const Dataset data = GenerateNbaLike(8000, 5);
  // Career counting stats must correlate strongly (latent career length).
  EXPECT_GT(Correlation(data, 1, 2), 0.6);   // minutes vs points
  EXPECT_GT(Correlation(data, 0, 1), 0.5);   // games vs minutes
  // Heavy ties among marginal players: count duplicate values of blocks.
  size_t zero_blocks = 0;
  for (ObjectId i = 0; i < data.num_objects(); ++i) {
    zero_blocks += data.Value(i, 6) == 0.0;
  }
  EXPECT_GT(zero_blocks, 100u);
}

TEST(NbaLikeTest, SmallFullSpaceSkylineFraction) {
  // The property that makes the NBA experiment meaningful: the full-space
  // skyline (of larger-is-better data) is a tiny fraction of the players.
  const Dataset data = GenerateNbaLike(17265, 2007).Negated();
  // (checked via the library in the integration tests; here just spot-check
  // that one "superstar" row dominates a large share of players on points.)
  double max_points = 0;
  for (ObjectId i = 0; i < data.num_objects(); ++i) {
    max_points = std::min(max_points, data.Value(i, 2));
  }
  EXPECT_LT(max_points, -20000.0);  // someone scored >20k career points
}

}  // namespace
}  // namespace skycube
