# Figure 11(a/b/c): runtime vs dimensionality in one synthetic family.
# Usage: gnuplot -e "datafile='fig11a.tsv'; outfile='fig11a.png'" plots/fig11.gp
if (!exists("datafile")) datafile = 'fig11a.tsv'
if (!exists("outfile")) outfile = 'fig11a.png'
set terminal pngcairo size 720,480
set output outfile
set title "Scalability w.r.t. dimensionality (100,000 tuples)"
set xlabel "Dimensionality"
set ylabel "Runtime (seconds)"
set key top left
set grid
plot datafile using 1:3 with linespoints title 'Skyey', \
     datafile using 1:4 with linespoints title 'Skyey (no sharing)', \
     datafile using 1:2 with linespoints title 'Stellar'
