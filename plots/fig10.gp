# Figure 10(a/b/c): skyline distribution in one synthetic family (log y).
# Usage: gnuplot -e "datafile='fig10a.tsv'; outfile='fig10a.png'" plots/fig10.gp
if (!exists("datafile")) datafile = 'fig10a.tsv'
if (!exists("outfile")) outfile = 'fig10a.png'
set terminal pngcairo size 720,480
set output outfile
set title "Skyline distribution (100,000 tuples)"
set xlabel "Dimensionality"
set ylabel "Number of groups or objects"
set logscale y
set key top left
set grid
plot datafile using 1:3 with linespoints title 'Subspace skyline objects', \
     datafile using 1:2 with linespoints title 'Skyline groups'
