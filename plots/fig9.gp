# Figure 9: #skyline groups vs #subspace skyline objects, NBA (log y).
# Usage: gnuplot -e "datafile='fig9.tsv'; outfile='fig9.png'" plots/fig9.gp
if (!exists("datafile")) datafile = 'fig9.tsv'
if (!exists("outfile")) outfile = 'fig9.png'
set terminal pngcairo size 720,480
set output outfile
set title "Skyline groups vs subspace skyline objects (NBA data set)"
set xlabel "Dimensionality"
set ylabel "Number of groups or objects"
set logscale y
set key top left
set grid
plot datafile using 1:4 with linespoints title 'Subspace skyline objects', \
     datafile using 1:3 with linespoints title 'Skyline groups'
