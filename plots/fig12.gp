# Figure 12(a/b/c): runtime vs database size in one synthetic family.
# Usage: gnuplot -e "datafile='fig12a.tsv'; outfile='fig12a.png'" plots/fig12.gp
if (!exists("datafile")) datafile = 'fig12a.tsv'
if (!exists("outfile")) outfile = 'fig12a.png'
set terminal pngcairo size 720,480
set output outfile
set title "Scalability w.r.t. database size"
set xlabel "Number of tuples"
set ylabel "Runtime (seconds)"
set key top left
set grid
plot datafile using 1:3 with linespoints title 'Skyey', \
     datafile using 1:4 with linespoints title 'Skyey (no sharing)', \
     datafile using 1:2 with linespoints title 'Stellar'
