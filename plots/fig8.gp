# Figure 8: runtime vs dimensionality on the NBA data set (log y).
# Usage: gnuplot -e "datafile='fig8.tsv'; outfile='fig8.png'" plots/fig8.gp
if (!exists("datafile")) datafile = 'fig8.tsv'
if (!exists("outfile")) outfile = 'fig8.png'
set terminal pngcairo size 720,480
set output outfile
set title "Scalability w.r.t. dimensionality (NBA data set)"
set xlabel "Dimensionality"
set ylabel "Runtime (seconds)"
set logscale y
set key top left
set grid
plot datafile using 1:3 with linespoints title 'Skyey', \
     datafile using 1:2 with linespoints title 'Stellar'
