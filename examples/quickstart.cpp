// Quickstart: compute a compressed skyline cube with Stellar and query it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Walks the running example of the paper (Figure 2): five objects P1..P5 in
// a 4-dimensional space ABCD, smaller is better.
#include <cstdio>
#include <iostream>

#include "core/cube.h"
#include "core/stellar.h"
#include "dataset/dataset.h"

int main() {
  using namespace skycube;

  // 1. Build a dataset: rows are objects, columns are dimensions.
  const Dataset data = Dataset::FromRows({
                                             {5, 6, 10, 7},  // P1
                                             {2, 6, 8, 3},   // P2
                                             {5, 4, 9, 3},   // P3
                                             {6, 4, 8, 5},   // P4
                                             {2, 4, 9, 3},   // P5
                                         })
                           .value();

  // 2. Compute the compressed skyline cube (all skyline groups + decisive
  //    subspaces) with Stellar.
  StellarStats stats;
  SkylineGroupSet groups = ComputeStellar(data, StellarOptions{}, &stats);

  std::printf("Stellar on %zu objects in %d dims:\n", data.num_objects(),
              data.num_dims());
  std::printf("  seeds (full-space skyline): %llu\n",
              static_cast<unsigned long long>(stats.num_seeds));
  std::printf("  skyline groups:             %llu\n\n",
              static_cast<unsigned long long>(stats.num_groups));
  std::printf("The compressed skyline cube (cf. paper Figure 3(b)):\n%s\n",
              FormatGroups(groups, data.num_dims()).c_str());

  // 3. Wrap the groups in the query layer.
  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   std::move(groups));

  // Q1: the skyline of any subspace, derived without touching the data.
  const DimMask bd = MaskFromLetters("BD");
  std::printf("Skyline of subspace BD:");
  for (ObjectId id : cube.SubspaceSkyline(bd)) std::printf(" P%u", id + 1);
  std::printf("\n");

  // Q2: where is an object in the skyline?
  std::printf("P3 is a skyline object in:");
  for (DimMask subspace : cube.SubspacesWhereSkyline(2)) {
    std::printf(" %s", FormatMask(subspace).c_str());
  }
  std::printf("\n");

  // Q3: aggregate analysis.
  std::printf("Total subspace skyline objects (SkyCube size): %llu\n",
              static_cast<unsigned long long>(
                  cube.TotalSubspaceSkylineObjects()));
  std::printf("Compression: %zu groups summarize them all.\n",
              cube.num_groups());
  return 0;
}
