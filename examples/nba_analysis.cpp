// Multidimensional skyline analysis of NBA-style career statistics — the
// paper's §6.1 scenario. The original basketballreference.com table is not
// redistributable; the bundled generator reproduces its statistical profile
// (17,265 players × 17 correlated integer columns; see DESIGN.md §4).
//
// Demonstrates the "great players" analysis of the paper's reference [10]:
// which players are unbeaten in which combinations of statistics, and how
// few skyline groups summarize the exponentially many subspace skylines.
//
// Flags: --players=N --dims=D --seed=S (defaults: 17265, 8, 2007).
#include <cstdio>
#include <string>

#include "analysis/frequency.h"
#include "analysis/kdominant.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/cube.h"
#include "core/stellar.h"
#include "datagen/nba_like.h"
#include "dataset/dataset.h"

int main(int argc, char** argv) {
  using namespace skycube;
  const FlagParser flags(argc, argv);
  const size_t players = flags.GetInt("players", kNbaLikeDefaultPlayers);
  const int dims =
      static_cast<int>(flags.GetInt("dims", 8));  // keep Q3 queries snappy
  const uint64_t seed = flags.GetInt("seed", 2007);

  // Larger-is-better stats → negate for the smaller-is-better convention.
  const Dataset stats_table = GenerateNbaLike(players, seed);
  const Dataset data = stats_table.Negated().WithPrefixDims(dims);

  WallTimer timer;
  StellarStats stellar_stats;
  SkylineGroupSet groups =
      ComputeStellar(data, StellarOptions{}, &stellar_stats);
  std::printf("Stellar on %zu players × %d stats: %.3f s\n",
              data.num_objects(), dims, timer.ElapsedSeconds());
  std::printf("  hall-of-fame (full-space skyline): %llu players\n",
              static_cast<unsigned long long>(stellar_stats.num_seeds));
  std::printf("  skyline groups: %llu\n",
              static_cast<unsigned long long>(stellar_stats.num_groups));

  const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                   std::move(groups));
  std::printf("  subspace skyline objects summarized: %llu (in %llu "
              "subspaces)\n\n",
              static_cast<unsigned long long>(
                  cube.TotalSubspaceSkylineObjects()),
              (1ULL << dims) - 1);

  // Who dominates the scoring-related view (games, minutes, points)?
  const DimMask scoring = 0b111;  // first three columns
  std::printf("unbeaten on (games, minutes, points):\n");
  for (ObjectId id : cube.SubspaceSkyline(scoring)) {
    std::printf("  player %-6u games=%-5.0f minutes=%-6.0f points=%-6.0f\n",
                id, stats_table.Value(id, 0), stats_table.Value(id, 1),
                stats_table.Value(id, 2));
  }

  // The most "decorated" players: skyline in the most stat combinations.
  std::printf("\nmost decorated players (top 5 by #subspaces):\n");
  for (const auto& [id, freq] : TopKFrequentSkylineObjects(cube, 5)) {
    std::printf("  player %-6u skyline in %-6llu of %llu stat combos "
                "(points=%.0f)\n",
                id, static_cast<unsigned long long>(freq),
                (1ULL << dims) - 1, stats_table.Value(id, 2));
  }

  // Drill-down: where does the skyline mass live by dimensionality?
  std::printf("\nsubspace-skyline mass by level (|B| → Σ|Sky(B)|):\n");
  const std::vector<uint64_t> histogram = SkylineLevelHistogram(cube);
  for (int level = 0; level < dims; ++level) {
    std::printf("  |B|=%-2d %llu\n", level + 1,
                static_cast<unsigned long long>(histogram[level]));
  }

  // High-dimensional relaxation (Chan et al., the paper's ref. [3]): as k
  // drops below d, k-dominance prunes the "skyline by technicality"
  // players and keeps only broadly excellent ones.
  std::printf("\nk-dominant skyline sizes (full space, d=%d):\n", dims);
  for (int k = dims; k >= dims - 3 && k >= 1; --k) {
    std::printf("  k=%-2d → %zu players\n", k,
                KDominantSkyline(data, data.full_mask(), k).size());
  }
  return 0;
}
