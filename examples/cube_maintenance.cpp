// Incremental maintenance demo: keep a compressed skyline cube current
// under a stream of inserts (the workload of the paper's reference [14]),
// and show how rarely a full recomputation is needed.
//
// Flags: --initial=N --inserts=M --dims=D --seed=S
#include <cstdio>

#include "common/flags.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/maintenance.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"

int main(int argc, char** argv) {
  using namespace skycube;
  const FlagParser flags(argc, argv);
  SyntheticSpec spec;
  spec.distribution = Distribution::kIndependent;
  spec.num_objects = flags.GetInt("initial", 5000);
  spec.num_dims = static_cast<int>(flags.GetInt("dims", 5));
  spec.truncate_decimals = 2;  // ties make updates interesting
  spec.seed = flags.GetInt("seed", 99);
  const size_t inserts = flags.GetInt("inserts", 2000);

  IncrementalCubeMaintainer maintainer(GenerateSynthetic(spec));
  std::printf("initial cube: %zu objects → %zu groups\n",
              maintainer.data().num_objects(), maintainer.groups().size());

  Rng rng(spec.seed + 1);
  WallTimer timer;
  std::vector<double> row(spec.num_dims);
  for (size_t i = 0; i < inserts; ++i) {
    for (double& v : row) {
      v = static_cast<double>(rng.NextBounded(101)) / 100.0;
    }
    maintainer.Insert(row);
  }
  const double seconds = timer.ElapsedSeconds();

  const MaintenanceStats& stats = maintainer.stats();
  std::printf("%llu inserts in %.3f s (%.1f µs each):\n",
              static_cast<unsigned long long>(stats.inserts), seconds,
              1e6 * seconds / static_cast<double>(inserts));
  std::printf("  duplicate patches : %llu\n",
              static_cast<unsigned long long>(stats.duplicate_patches));
  std::printf("  no-op inserts     : %llu\n",
              static_cast<unsigned long long>(stats.noop_inserts));
  std::printf("  extension reruns  : %llu\n",
              static_cast<unsigned long long>(stats.extension_reruns));
  std::printf("  full recomputes   : %llu (plus 1 initial build)\n",
              static_cast<unsigned long long>(stats.full_recomputes - 1));
  std::printf("final cube: %zu objects → %zu groups\n",
              maintainer.data().num_objects(), maintainer.groups().size());

  // Sanity: the maintained cube equals a from-scratch computation.
  const bool current =
      maintainer.groups() == ComputeStellar(maintainer.data());
  std::printf("matches from-scratch Stellar: %s\n",
              current ? "yes" : "NO — BUG");
  return current ? 0 : 1;
}
