// Flight-ticket selection — the motivating scenario of the paper's
// introduction: a customer flying Vancouver → Istanbul cares about price,
// travel time, and number of stops, and wants the best trade-offs not just
// in the full space but in every combination of criteria.
//
// The example generates a realistic synthetic fare table, computes the
// compressed skyline cube, and answers the three query classes:
//   - which tickets are Pareto-best for (price, time), (price, stops), ...;
//   - for a given ticket, in which criterion combinations is it unbeaten;
//   - which tickets are "robust" (skyline under the most combinations).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/frequency.h"
#include "common/rng.h"
#include "core/cube.h"
#include "core/stellar.h"
#include "dataset/dataset.h"

namespace {

// Generates `n` itineraries with correlated structure: more stops → longer
// travel time but usually lower price; round prices and half-hour time
// buckets create exactly the kind of value coincidence skyline groups
// compress.
skycube::Dataset GenerateFares(size_t n, uint64_t seed) {
  skycube::Rng rng(seed);
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const int stops = static_cast<int>(rng.NextBounded(4));  // 0..3
    // Base duration 11h nonstop, +2.5h per stop, plus airline slack in
    // half-hour buckets.
    const double hours =
        11.0 + 2.5 * stops + 0.5 * static_cast<double>(rng.NextBounded(9));
    // Price: nonstop premium, per-carrier spread, rounded to $10.
    const double base = 1450 - 180 * stops + 40.0 * rng.NextGaussian();
    const double price =
        10.0 * std::max(30.0, std::floor((base + 250) / 10.0));
    rows.push_back({price, hours, static_cast<double>(stops)});
  }
  return skycube::Dataset::FromRows(std::move(rows),
                                    {"price", "hours", "stops"})
      .value();
}

}  // namespace

int main() {
  using namespace skycube;
  const Dataset fares = GenerateFares(500, 1453);

  StellarStats stats;
  SkylineGroupSet groups = ComputeStellar(fares, StellarOptions{}, &stats);
  const CompressedSkylineCube cube(fares.num_dims(), fares.num_objects(),
                                   std::move(groups));

  std::printf("%zu itineraries, 3 criteria (price, hours, stops)\n",
              fares.num_objects());
  std::printf("full-space skyline: %llu tickets; %zu skyline groups\n\n",
              static_cast<unsigned long long>(stats.num_seeds),
              cube.num_groups());

  // Q1: Pareto-best tickets per criterion combination.
  const std::vector<std::pair<std::string, DimMask>> views = {
      {"price+hours", MaskFromLetters("AB")},
      {"price+stops", MaskFromLetters("AC")},
      {"price+hours+stops", MaskFromLetters("ABC")},
  };
  for (const auto& [name, subspace] : views) {
    const std::vector<ObjectId> skyline = cube.SubspaceSkyline(subspace);
    std::printf("best on %-18s %3zu tickets, e.g.", name.c_str(),
                skyline.size());
    for (size_t i = 0; i < skyline.size() && i < 3; ++i) {
      const ObjectId id = skyline[i];
      std::printf("  [$%.0f %.1fh %.0fstop]", fares.Value(id, 0),
                  fares.Value(id, 1), fares.Value(id, 2));
    }
    std::printf("\n");
  }

  // Q2: explain one ticket's strengths.
  const std::vector<ObjectId> full_sky =
      cube.SubspaceSkyline(fares.full_mask());
  const ObjectId pick = full_sky.front();
  std::printf("\nticket #%u ($%.0f, %.1fh, %.0f stops) is unbeaten in:",
              pick, fares.Value(pick, 0), fares.Value(pick, 1),
              fares.Value(pick, 2));
  for (DimMask subspace : cube.SubspacesWhereSkyline(pick)) {
    std::string label;
    ForEachDim(subspace, [&](int dim) {
      label += (label.empty() ? "" : "+") + fares.dim_name(dim);
    });
    std::printf(" {%s}", label.c_str());
  }
  std::printf("\n");

  // Q3: the most robust tickets across all criterion combinations.
  std::printf("\nmost robust tickets (skyline in most of the 7 views):\n");
  for (const auto& [id, freq] : TopKFrequentSkylineObjects(cube, 5)) {
    std::printf("  #%-4u $%-5.0f %4.1fh %.0f stops — skyline in %llu views\n",
                id, fares.Value(id, 0), fares.Value(id, 1),
                fares.Value(id, 2), static_cast<unsigned long long>(freq));
  }
  return 0;
}
