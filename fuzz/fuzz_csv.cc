// Fuzz target: the CSV importer (common/csv.h) over arbitrary text, with
// input-derived parse options (header toggle, delimiter).
//
// Properties: ParseNumericCsv never crashes or over-allocates; accepted
// tables are rectangular with finite values; re-emitting an accepted
// table with max-precision doubles and re-parsing reproduces it exactly.
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>

#include "common/csv.h"
#include "fuzz_util.h"

using skycube::fuzz::Expect;
using skycube::fuzz::InputReader;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  InputReader in(data, size);
  const uint8_t knobs = in.TakeByte();
  skycube::CsvReadOptions options;
  options.has_header = (knobs & 1) != 0;
  constexpr char kDelimiters[] = {',', ';', '\t', '|'};
  options.delimiter = kDelimiters[(knobs >> 1) & 3];
  const std::string_view rest = in.Rest();

  skycube::Result<skycube::CsvTable> first =
      skycube::ParseNumericCsv(std::string(rest), options);
  if (!first.ok()) return 0;
  const skycube::CsvTable& a = first.value();

  // Structural invariants of an accepted table.
  const size_t width = a.rows.empty()
                           ? a.column_names.size()
                           : a.rows.front().size();
  if (!a.column_names.empty()) {
    Expect(a.column_names.size() == width,
           "header width must match row width");
  }
  for (const std::vector<double>& row : a.rows) {
    Expect(row.size() == width, "accepted CSV must be rectangular");
    for (double value : row) {
      Expect(std::isfinite(value), "accepted CSV values must be finite");
    }
  }

  // Round trip: re-emit at max precision and re-parse. Degenerate empty
  // tables are skipped — re-emitting them yields an empty file, which the
  // parser may legitimately treat differently from the original.
  if (a.rows.empty()) return 0;
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  if (!a.column_names.empty()) {
    for (size_t c = 0; c < a.column_names.size(); ++c) {
      os << (c == 0 ? "" : std::string(1, options.delimiter))
         << a.column_names[c];
    }
    os << "\n";
  }
  for (const std::vector<double>& row : a.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : std::string(1, options.delimiter)) << row[c];
    }
    os << "\n";
  }
  skycube::CsvReadOptions reread = options;
  reread.has_header = !a.column_names.empty();
  skycube::Result<skycube::CsvTable> second =
      skycube::ParseNumericCsv(os.str(), reread);
  Expect(second.ok(), "re-emitted CSV must re-parse");
  Expect(second.value().rows == a.rows,
         "CSV round-trip must preserve every value");
  return 0;
}
