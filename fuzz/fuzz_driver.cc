// Standalone corpus-replay driver: a main() that feeds every file named on
// the command line (directories are walked non-recursively) through the
// harness's LLVMFuzzerTestOneInput. This is how the checked-in regression
// corpora run as plain ctest tests in every build — no fuzzing engine, no
// clang requirement; a crasher that regresses aborts the test exactly as
// it would abort the fuzzer.
//
// Under SKYCUBE_FUZZ=ON this file is *not* linked; libFuzzer provides
// main() and its own corpus handling.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return false;
  char buffer[1 << 16];
  size_t n;
  out->clear();
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, n);
  }
  std::fclose(file);
  return true;
}

int RunOne(const std::string& path) {
  std::string bytes;
  if (!ReadFile(path, &bytes)) {
    std::fprintf(stderr, "fuzz_driver: cannot read %s\n", path.c_str());
    return 1;
  }
  // Announce before running: if the harness aborts, the failing input's
  // name is already on stderr.
  std::fprintf(stderr, "fuzz_driver: %s (%zu bytes)\n", path.c_str(),
               bytes.size());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    // Tolerate libFuzzer-style flags so the same ctest command line works
    // if someone points it at a fuzz-mode binary's arguments.
    if (argv[i][0] == '-') continue;
    std::error_code ec;
    if (std::filesystem::is_directory(argv[i], ec)) {
      for (const auto& entry :
           std::filesystem::directory_iterator(argv[i], ec)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path().string());
      }
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "fuzz_driver: no corpus inputs given\n");
    return 1;
  }
  std::sort(inputs.begin(), inputs.end());
  int failures = 0;
  for (const std::string& path : inputs) failures += RunOne(path);
  std::fprintf(stderr, "fuzz_driver: replayed %zu inputs, %d unreadable\n",
               inputs.size(), failures);
  return failures == 0 ? 0 : 1;
}
