// Fuzz target: net::ParseRequest over arbitrary payload bytes (the layer
// behind FrameDecoder's checksum gate — this harness skips the gate so
// every mutation lands on the structural validation).
//
// Properties: never crashes or over-allocates; a payload that parses
// re-encodes to a payload that parses to the same value; the insert
// value-count ceiling is enforced.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_util.h"
#include "net/protocol.h"

using skycube::fuzz::Expect;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace net = skycube::net;
  const std::string_view payload(reinterpret_cast<const char*>(data), size);
  skycube::Result<net::WireRequest> first = net::ParseRequest(payload);
  if (!first.ok()) return 0;
  const net::WireRequest& a = first.value();
  Expect(a.values.size() <= 4096,
         "ParseRequest must enforce its insert width ceiling");

  const std::string frame = net::EncodeRequest(a);
  skycube::Result<net::WireRequest> second = net::ParseRequest(
      std::string_view(frame).substr(net::kFrameHeaderBytes));
  Expect(second.ok(), "re-encoded request must re-parse");
  const net::WireRequest& b = second.value();
  Expect(a.op == b.op && a.id == b.id && a.subspace == b.subspace &&
             a.object == b.object &&
             skycube::fuzz::BitEqual(a.values, b.values) &&
             a.since_version == b.since_version && a.ack_lsn == b.ack_lsn &&
             a.max_records == b.max_records && a.wait_millis == b.wait_millis,
         "request round-trip must preserve every field");
  return 0;
}
