// Fuzz target: the compressed-cube text codec (core/serialization.h) —
// the format embedded inside every checkpoint and served from disk.
//
// Modes (first input byte % 3):
//   0  raw bytes straight into DeserializeCube
//   1  the remaining bytes wrapped with a "skycube-cube v2" header and a
//      correct checksum (reaches the structural parser behind the digest)
//   2  a legacy v1 header (no checksum line)
//
// Properties: DeserializeCube never crashes or over-allocates; whatever
// it accepts re-serializes and re-parses to the same cube (projections
// compared bit-for-bit, so NaN payloads round-trip too).
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/serialization.h"
#include "fuzz_util.h"

using skycube::fuzz::BitEqual;
using skycube::fuzz::ChecksumHex;
using skycube::fuzz::Expect;
using skycube::fuzz::InputReader;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  InputReader in(data, size);
  const uint8_t mode = in.TakeByte() % 3;
  const std::string_view rest = in.Rest();

  std::string text;
  if (mode == 0) {
    text.assign(rest.data(), rest.size());
  } else if (mode == 1) {
    text = "skycube-cube v2\nchecksum " +
           ChecksumHex(skycube::Fnv1a64(rest)) + "\n";
    text.append(rest);
  } else {
    text = "skycube-cube v1\n";
    text.append(rest);
  }

  skycube::Result<skycube::SerializedCube> first =
      skycube::DeserializeCube(text);
  if (!first.ok()) return 0;
  const skycube::SerializedCube& a = first.value();

  const std::string serialized = skycube::SerializeCube(
      a.num_dims, a.num_objects, a.groups, a.dim_names);
  skycube::Result<skycube::SerializedCube> second =
      skycube::DeserializeCube(serialized);
  Expect(second.ok(), "re-serialized cube must re-parse");
  const skycube::SerializedCube& b = second.value();
  Expect(a.num_dims == b.num_dims && a.num_objects == b.num_objects &&
             a.dim_names == b.dim_names && a.groups.size() == b.groups.size(),
         "cube round-trip must preserve shape and names");
  for (size_t i = 0; i < a.groups.size(); ++i) {
    Expect(a.groups[i].members == b.groups[i].members &&
               a.groups[i].max_subspace == b.groups[i].max_subspace &&
               a.groups[i].decisive_subspaces ==
                   b.groups[i].decisive_subspaces &&
               BitEqual(a.groups[i].projection, b.groups[i].projection),
           "cube round-trip must preserve every group");
  }
  return 0;
}
