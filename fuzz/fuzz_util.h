// Shared helpers for the decoder fuzz harnesses (docs/STATIC_ANALYSIS.md,
// "Fuzzing & memory sanitizer").
//
// Every harness follows the same contract: LLVMFuzzerTestOneInput must
// never crash, overflow, or allocate unboundedly on arbitrary bytes, and
// whenever a decode *succeeds* the harness re-encodes and re-decodes to
// assert the round-trip property. Violations abort() — under libFuzzer
// that is a finding with a reproducer; under the plain-build replay
// driver (fuzz_driver.cc) it is a failing ctest.
//
// Structure-aware inputs: most harnesses treat the first input byte as a
// mode selector. Mode 0 is always "raw bytes straight into the decoder";
// higher modes wrap the remaining bytes so checksum/framing gates pass and
// the fuzzer reaches the structural validation underneath (a mutation-only
// fuzzer essentially never forges an FNV-1a digest on its own).
#ifndef SKYCUBE_FUZZ_FUZZ_UTIL_H_
#define SKYCUBE_FUZZ_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"

namespace skycube::fuzz {

/// Round-trip assertion: prints the property that broke, then aborts so
/// the fuzzing engine (or the replay driver) records a finding.
inline void Expect(bool ok, const char* property) {
  if (ok) return;
  std::fprintf(stderr, "fuzz: round-trip property violated: %s\n", property);
  std::abort();
}

/// Sequential little-endian reader over the raw fuzz input. Reads past the
/// end yield zeros — harnesses use it for *deriving* structure (modes,
/// chunk sizes), never for the bytes under test.
class InputReader {
 public:
  InputReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint8_t TakeByte() {
    return pos_ < size_ ? data_[pos_++] : 0;
  }

  uint32_t TakeU32() {
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(TakeByte()) << (8 * i);
    }
    return value;
  }

  /// The unconsumed remainder as a string_view.
  std::string_view Rest() const {
    return std::string_view(reinterpret_cast<const char*>(data_ + pos_),
                            size_ - pos_);
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Bit-pattern equality for double vectors: binary codecs carry doubles
/// verbatim, so a NaN payload must round-trip to the *same* NaN — `==`
/// would report a spurious mismatch (NaN != NaN) on a perfect codec.
inline bool BitEqual(const std::vector<double>& a,
                     const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

inline void AppendU32Le(uint32_t value, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

inline void AppendU64Le(uint64_t value, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

/// A correctly framed net-protocol frame around `payload` (u32 len |
/// u64 FNV-1a checksum | payload) — built here rather than via
/// net::AppendFrame so the harness still compiles if the encoder under
/// test is the thing being broken.
inline std::string FramedPayload(std::string_view payload) {
  std::string out;
  AppendU32Le(static_cast<uint32_t>(payload.size()), &out);
  AppendU64Le(Fnv1a64(payload), &out);
  out.append(payload);
  return out;
}

/// A correctly checksummed WAL record (u32 len | u64 lsn | u64 digest |
/// payload); the digest covers the len and lsn fields plus the payload,
/// mirroring storage/wal.cc.
inline std::string WalRecordBytes(uint64_t lsn, std::string_view payload) {
  std::string header;
  AppendU32Le(static_cast<uint32_t>(payload.size()), &header);
  AppendU64Le(lsn, &header);
  uint64_t hash = Fnv1a64(header);
  // Continue the FNV stream over the payload, as storage/wal.cc does.
  for (unsigned char c : payload) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  std::string out = header;
  AppendU64Le(hash, &out);
  out.append(payload);
  return out;
}

/// 16-hex-digit digest spelling shared by the text formats.
inline std::string ChecksumHex(uint64_t hash) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

}  // namespace skycube::fuzz

#endif  // SKYCUBE_FUZZ_FUZZ_UTIL_H_
