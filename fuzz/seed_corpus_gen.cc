// Seed-corpus generator: writes structure-valid inputs for every fuzz
// target into <out>/<target>/, built with the real encoders — so the
// fuzzer starts from deep inside the accept-state space instead of
// spending its budget rediscovering magic bytes and checksums.
//
//   skycube_fuzz_seedgen <output-root>
//
// Run automatically as a ctest fixture (the replay tests feed the seeds
// through every harness in normal builds) and by the CI fuzz-smoke job to
// prime each target's working corpus. The regression corpora under
// fuzz/regression/ are generated from these seeds plus hand-mutated
// variants (truncations, bit flips, forged-checksum wrappers) and are
// checked in — see docs/STATIC_ANALYSIS.md.
#include <stdlib.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "core/reference.h"
#include "core/serialization.h"
#include "fuzz_util.h"
#include "net/protocol.h"
#include "storage/checkpointer.h"
#include "storage/replication.h"
#include "storage/wal.h"

namespace skycube {
namespace {

int g_failures = 0;

void WriteSeed(const std::string& root, const std::string& target,
               const std::string& name, std::string_view bytes) {
  const std::string dir = root + "/" + target;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + name;
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "seedgen: cannot write %s\n", path.c_str());
    ++g_failures;
    return;
  }
  if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
}

/// A small dataset with a non-trivial cube (two groups share projections).
Dataset SampleData() {
  Dataset data(3, {"price", "dist", "rating"});
  data.AddRow({1.0, 4.0, 2.0});
  data.AddRow({2.0, 1.0, 3.0});
  data.AddRow({1.0, 4.0, 5.0});
  data.AddRow({3.0, 3.0, 1.0});
  return data;
}

void NetSeeds(const std::string& root) {
  using namespace skycube::net;
  std::vector<WireRequest> requests;
  {
    WireRequest r;
    r.op = Opcode::kSkyline;
    r.id = 7;
    r.subspace = 0b101;
    requests.push_back(r);
    r = {};
    r.op = Opcode::kMembership;
    r.id = 8;
    r.subspace = 0b11;
    r.object = 42;
    requests.push_back(r);
    r = {};
    r.op = Opcode::kInsert;
    r.id = 9;
    r.values = {1.5, -2.25, 3.0};
    requests.push_back(r);
    r = {};
    r.op = Opcode::kEpochDiff;
    r.id = 10;
    r.subspace = 0b111;
    r.since_version = 12;
    requests.push_back(r);
    r = {};
    r.op = Opcode::kReplFetch;
    r.id = 11;
    r.ack_lsn = 100;
    r.max_records = 64;
    r.wait_millis = 250;
    requests.push_back(r);
    r = {};
    r.op = Opcode::kPing;
    r.id = 12;
    requests.push_back(r);
  }
  std::string pipelined;
  pipelined.push_back(0);  // frame-decoder mode 0: raw stream
  pipelined.push_back(16);  // chunk size
  int i = 0;
  for (const WireRequest& request : requests) {
    const std::string frame = EncodeRequest(request);
    WriteSeed(root, "wire_request", "request-" + std::to_string(i),
              std::string_view(frame).substr(kFrameHeaderBytes));
    pipelined += frame;
    ++i;
  }
  WriteSeed(root, "frame_decoder", "pipelined-requests", pipelined);

  WireResponse ok;
  ok.id = 7;
  ok.request_op = Opcode::kSkyline;
  ok.snapshot_version = 4;
  ok.ids = {0, 2, 5};
  WireResponse diff;
  diff.id = 10;
  diff.request_op = Opcode::kEpochDiff;
  diff.ids = {1};
  diff.left_ids = {3, 4};
  WireResponse err;
  err.id = 9;
  err.request_op = Opcode::kInsert;
  err.status = StatusCode::kResourceExhausted;
  err.text = "shed: queue full";
  WireResponse repl;
  repl.id = 11;
  repl.request_op = Opcode::kReplFetch;
  repl.lsn = 104;
  repl.text = EncodeShippedRecords(
      {{101, EncodeInsertPayload({1.0, 2.0, 3.0}, 5, 1700000000000)},
       {102, EncodeDeletePayload(2, 1700000000500)}});
  i = 0;
  for (const WireResponse* response : {&ok, &diff, &err, &repl}) {
    const std::string frame = EncodeResponse(*response);
    WriteSeed(root, "wire_response", "response-" + std::to_string(i),
              std::string_view(frame).substr(kFrameHeaderBytes));
    ++i;
  }
  const std::string goaway =
      EncodeGoAway(StatusCode::kUnavailable, "draining");
  WriteSeed(root, "wire_response", "goaway",
            std::string_view(goaway).substr(kFrameHeaderBytes));

  // Frame-decoder mode 1: wrap-this-payload seed; mode 3: byte-at-a-time.
  std::string wrapped;
  wrapped.push_back(1);
  wrapped.push_back(3);
  wrapped.append(std::string_view(EncodeRequest(requests[2]))
                     .substr(kFrameHeaderBytes));
  WriteSeed(root, "frame_decoder", "wrapped-insert", wrapped);
  std::string trickle;
  trickle.push_back(3);
  trickle.push_back(0);
  trickle += EncodeResponse(ok);
  WriteSeed(root, "frame_decoder", "trickled-response", trickle);
}

void WalSeeds(const std::string& root) {
  const std::string insert =
      EncodeInsertPayload({2.5, -1.0, 7.75}, 9, 1700000001000);
  const std::string tombstone = EncodeDeletePayload(4, 1700000002000);
  const std::string legacy = EncodeRowPayload({3.0, 1.0, 2.0});
  WriteSeed(root, "wal_record", "insert-v3", insert);
  WriteSeed(root, "wal_record", "delete-v3", tombstone);
  WriteSeed(root, "wal_record", "legacy-v2", legacy);

  // Segment seeds: mode 0 carries a complete serialized segment; modes
  // 1–2 let the harness build records and use the rest as a torn tail.
  std::string blob = "SKYWAL01";
  blob += fuzz::WalRecordBytes(1, insert);
  blob += fuzz::WalRecordBytes(2, tombstone);
  blob += fuzz::WalRecordBytes(3, legacy);
  std::string raw;
  raw.push_back(0);
  raw += blob;
  WriteSeed(root, "wal_segment", "segment-raw", raw);
  std::string torn;
  torn.push_back(1);
  torn.push_back(2);  // record count selector
  torn += insert.substr(0, insert.size() / 2);
  WriteSeed(root, "wal_segment", "segment-torn-tail", torn);
  std::string split;
  split.push_back(2);
  split.push_back(1);
  split += legacy;
  WriteSeed(root, "wal_segment", "segment-split", split);

  WriteSeed(root, "shipped_records", "batch",
            EncodeShippedRecords({{11, insert}, {12, tombstone}}));
  WriteSeed(root, "shipped_records", "single",
            EncodeShippedRecords({{1, legacy}}));
}

void CheckpointSeeds(const std::string& root) {
  const Dataset data = SampleData();
  const SkylineGroupSet groups = ComputeReferenceCube(data);

  // Cube seeds straight from the serializer: mode 0 raw, mode 1 body-only
  // (the harness re-wraps it with a forged checksum).
  const std::string cube =
      SerializeCube(data.num_dims(), data.num_objects(), groups,
                    data.dim_names());
  std::string raw;
  raw.push_back(0);
  raw += cube;
  WriteSeed(root, "cube_serialization", "cube-raw", raw);
  const size_t cube_body = cube.find('\n', cube.find("checksum"));
  if (cube_body != std::string::npos) {
    std::string body;
    body.push_back(1);
    body += cube.substr(cube_body + 1);
    WriteSeed(root, "cube_serialization", "cube-body", body);
  }

  // Checkpoint seeds via the real writer (temp dir, then read the file).
  std::string tmpl = "/tmp/skycube-seedgen-XXXXXX";
  const char* made = ::mkdtemp(tmpl.data());
  if (made == nullptr) {
    std::fprintf(stderr, "seedgen: mkdtemp failed\n");
    ++g_failures;
    return;
  }
  const std::string dir = made;
  Checkpointer checkpointer(dir);
  std::vector<uint8_t> live(data.num_objects(), 1);
  live[3] = 0;
  std::vector<uint64_t> stamps(data.num_objects(), 1700000000000);
  if (Status status = checkpointer.Write(5, data, groups, live, stamps);
      !status.ok()) {
    std::fprintf(stderr, "seedgen: checkpoint write failed: %s\n",
                 status.ToString().c_str());
    ++g_failures;
    return;
  }
  std::string text;
  {
    const std::string path = dir + "/" + CheckpointFileName(5);
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file != nullptr) {
      char buffer[1 << 16];
      size_t n;
      while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
        text.append(buffer, n);
      }
      std::fclose(file);
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (text.empty()) {
    std::fprintf(stderr, "seedgen: checkpoint file unreadable\n");
    ++g_failures;
    return;
  }
  std::string ckpt_raw;
  ckpt_raw.push_back(0);
  ckpt_raw += text;
  WriteSeed(root, "checkpoint", "checkpoint-raw", ckpt_raw);
  const size_t ckpt_body = text.find('\n', text.find("checksum"));
  if (ckpt_body != std::string::npos) {
    std::string body;
    body.push_back(1);
    body += text.substr(ckpt_body + 1);
    WriteSeed(root, "checkpoint", "checkpoint-body", body);
  }
}

void CsvSeeds(const std::string& root) {
  std::string with_header;
  with_header.push_back(1);  // has_header, comma
  with_header += "price,dist,rating\n1,4,2\n2,1,3\n1.5,4.25,5\n";
  WriteSeed(root, "csv", "header-comma", with_header);
  std::string bare;
  bare.push_back(0);  // no header, comma
  bare += "1,2\n3,4\n-5.5,6e3\n";
  WriteSeed(root, "csv", "bare-comma", bare);
  std::string tabbed;
  tabbed.push_back(5);  // has_header, tab
  tabbed += "a\tb\n1\t2\n";
  WriteSeed(root, "csv", "header-tab", tabbed);
}

int Run(const std::string& root) {
  NetSeeds(root);
  WalSeeds(root);
  CheckpointSeeds(root);
  CsvSeeds(root);
  if (g_failures == 0) {
    std::printf("seedgen: corpora written under %s\n", root.c_str());
  }
  return g_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace skycube

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: skycube_fuzz_seedgen <output-root>\n");
    return 2;
  }
  return skycube::Run(argv[1]);
}
