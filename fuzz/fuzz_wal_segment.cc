// Fuzz target: the WAL segment scanners — ReadWal (the recovery view),
// DumpWal (the debugging view), and WriteAheadLog::Open's torn-tail
// truncation — over arbitrary segment file contents.
//
// Modes (first input byte % 3):
//   0  the remaining bytes verbatim as one segment file
//   1  magic + correctly checksummed records built from input chunks,
//      followed by the remaining bytes as a raw (usually torn) tail
//   2  like 1 but split across two segments, so the inter-segment
//      contiguity cursor is exercised too
//
// Properties: neither scanner crashes, over-allocates, or loops; ReadWal
// returns strictly contiguous LSNs; after Open(dir, last_valid + 1) — the
// exact call recovery makes — an Append must succeed and be visible to
// the next ReadWal at the expected LSN, no matter what garbage preceded
// it. Every iteration works in a private scratch directory.
#include <stdlib.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>

#include "fuzz_util.h"
#include "storage/wal.h"

using skycube::fuzz::Expect;
using skycube::fuzz::InputReader;
using skycube::fuzz::WalRecordBytes;

namespace {

constexpr char kMagic[] = "SKYWAL01";

/// One scratch directory per process, wiped at the start of every
/// iteration (mkdtemp once; iterations reuse it).
const std::string& ScratchDir() {
  static const std::string dir = [] {
    std::string tmpl = "/tmp/skycube-fuzz-wal-XXXXXX";
    const char* made = ::mkdtemp(tmpl.data());
    return std::string(made != nullptr ? made : "/tmp");
  }();
  return dir;
}

void WipeDir(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::error_code remove_ec;
    std::filesystem::remove_all(entry.path(), remove_ec);
  }
}

void WriteFile(const std::string& path, std::string_view bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return;
  if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
}

std::string SegmentName(uint64_t start_lsn) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "wal-%016llx.log",
                static_cast<unsigned long long>(start_lsn));
  return buffer;
}

/// Consumes `in` into up to `max_records` checksummed records with LSNs
/// from `first_lsn`, returning the serialized blob (magic included).
std::string BuildSegment(InputReader* in, uint64_t first_lsn,
                         int max_records, uint64_t* next_lsn) {
  std::string blob = kMagic;
  uint64_t lsn = first_lsn;
  for (int i = 0; i < max_records; ++i) {
    const size_t want = in->TakeByte() % 48;
    std::string payload;
    for (size_t b = 0; b < want; ++b) {
      payload.push_back(static_cast<char>(in->TakeByte()));
    }
    blob += WalRecordBytes(lsn, payload);
    ++lsn;
  }
  *next_lsn = lsn;
  return blob;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const std::string& dir = ScratchDir();
  WipeDir(dir);

  InputReader in(data, size);
  const uint8_t mode = in.TakeByte() % 3;

  if (mode == 0) {
    WriteFile(dir + "/" + SegmentName(1), in.Rest());
  } else {
    const int records = 1 + in.TakeByte() % 4;
    uint64_t next_lsn = 0;
    std::string first = BuildSegment(&in, 1, records, &next_lsn);
    if (mode == 2) {
      uint64_t after = 0;
      std::string second = BuildSegment(&in, next_lsn, 2, &after);
      second.append(in.Rest());
      WriteFile(dir + "/" + SegmentName(1), first);
      WriteFile(dir + "/" + SegmentName(next_lsn), second);
    } else {
      first.append(in.Rest());
      WriteFile(dir + "/" + SegmentName(1), first);
    }
  }

  skycube::Result<skycube::WalReadResult> read = skycube::ReadWal(dir, 0);
  Expect(read.ok(), "ReadWal over any directory contents must not error");
  uint64_t prev = 0;
  for (const skycube::WalRecord& record : read.value().records) {
    Expect(prev == 0 || record.lsn == prev + 1,
           "ReadWal must only return a contiguous LSN run");
    prev = record.lsn;
  }

  skycube::Result<std::vector<skycube::WalDumpSegment>> dump =
      skycube::DumpWal(dir);
  Expect(dump.ok(), "DumpWal over any directory contents must not error");

  // Recovery property: opening at last_valid + 1 discards whatever the
  // scanners refused to trust, and the log accepts new appends cleanly.
  const uint64_t next = read.value().last_valid_lsn + 1;
  skycube::Result<std::unique_ptr<skycube::WriteAheadLog>> wal =
      skycube::WriteAheadLog::Open(dir, next);
  Expect(wal.ok(), "Open must recover any damaged directory");
  skycube::Result<uint64_t> appended = wal.value()->Append("fuzz");
  Expect(appended.ok() && appended.value() == next,
         "the first post-recovery append must land at last_valid + 1");
  wal.value().reset();

  skycube::Result<skycube::WalReadResult> reread = skycube::ReadWal(dir, 0);
  Expect(reread.ok() && reread.value().last_valid_lsn == next &&
             !reread.value().records.empty() &&
             reread.value().records.back().payload == "fuzz",
         "a post-recovery append must be visible to the next ReadWal");
  return 0;
}
