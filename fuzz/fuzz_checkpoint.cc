// Fuzz target: the checkpoint loader (storage/checkpointer.h) — the outer
// text format, the embedded cube, and the replication snapshot-install
// path that feeds untrusted checkpoint bytes to it.
//
// Modes (first input byte % 3):
//   0  raw bytes straight into ParseCheckpoint
//   1  the remaining bytes wrapped with a valid "skycube-checkpoint v2"
//      header and a correct checksum, so mutations reach the structural
//      parsing behind the digest gate
//   2  like 1 but a v1 header (the legacy no-liveness format)
//
// Properties: ParseCheckpoint never crashes or over-allocates; whatever
// it accepts must survive InstallSnapshot + LoadCheckpoint (the replica
// bootstrap sequence) with the same shape.
#include <stdlib.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "fuzz_util.h"
#include "storage/checkpointer.h"
#include "storage/replication.h"

using skycube::fuzz::ChecksumHex;
using skycube::fuzz::Expect;
using skycube::fuzz::InputReader;

namespace {

const std::string& ScratchDir() {
  static const std::string dir = [] {
    std::string tmpl = "/tmp/skycube-fuzz-ckpt-XXXXXX";
    const char* made = ::mkdtemp(tmpl.data());
    return std::string(made != nullptr ? made : "/tmp");
  }();
  return dir;
}

void WipeDir(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    std::error_code remove_ec;
    std::filesystem::remove_all(entry.path(), remove_ec);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  InputReader in(data, size);
  const uint8_t mode = in.TakeByte() % 3;
  const std::string_view rest = in.Rest();

  std::string text;
  if (mode == 0) {
    text.assign(rest.data(), rest.size());
  } else {
    // The checksum covers everything after the checksum line's newline;
    // forging it here lets mutations past the digest gate.
    const char* version = mode == 1 ? "v2" : "v1";
    text = std::string("skycube-checkpoint ") + version + "\nchecksum " +
           ChecksumHex(skycube::Fnv1a64(rest)) + "\n";
    text.append(rest);
  }

  skycube::Result<skycube::CheckpointData> parsed =
      skycube::ParseCheckpoint(text);
  if (!parsed.ok()) return 0;

  const skycube::CheckpointData& checkpoint = parsed.value();
  Expect(checkpoint.live.size() == checkpoint.data.num_objects() &&
             checkpoint.timestamps.size() == checkpoint.data.num_objects(),
         "liveness and timestamp vectors must match the dataset");

  // Replica-bootstrap property: accepted bytes must install and reload.
  const std::string& dir = ScratchDir();
  WipeDir(dir);
  skycube::Status installed =
      skycube::InstallSnapshot(dir, checkpoint.lsn, text);
  Expect(installed.ok(), "parsed checkpoint bytes must install as snapshot");
  skycube::Result<skycube::CheckpointData> loaded =
      skycube::LoadCheckpoint(dir, checkpoint.lsn);
  Expect(loaded.ok() &&
             loaded.value().lsn == checkpoint.lsn &&
             loaded.value().data.num_objects() ==
                 checkpoint.data.num_objects() &&
             loaded.value().data.num_dims() == checkpoint.data.num_dims() &&
             loaded.value().groups.size() == checkpoint.groups.size(),
         "installed snapshot must reload with the same shape");
  return 0;
}
