// Global allocation cap for fuzz binaries: any *single* allocation larger
// than the cap aborts with a diagnostic instead of OOMing the process.
//
// The decoders bound every wire-derived allocation (lint R9 enforces it
// statically), so nothing in a healthy codec ever asks for anything close
// to the cap — a trip here means a length-field bomb slipped past a bounds
// check, and the fuzzer should record it as a finding rather than letting
// the kernel OOM-kill the run (which libFuzzer reports uselessly). Linked
// only into the fuzz harness binaries, never into the libraries or tools.
//
// The cap defaults to 256 MiB and can be overridden with the
// SKYCUBE_FUZZ_ALLOC_CAP environment variable (bytes; 0 disables).
#include <cstdio>
#include <cstdlib>
#include <new>

namespace {

size_t AllocCap() {
  static const size_t cap = [] {
    if (const char* env = std::getenv("SKYCUBE_FUZZ_ALLOC_CAP")) {
      return static_cast<size_t>(std::strtoull(env, nullptr, 10));
    }
    return size_t{256} << 20;
  }();
  return cap;
}

void* CheckedAlloc(size_t size) {
  const size_t cap = AllocCap();
  if (cap != 0 && size > cap) {
    std::fprintf(stderr,
                 "fuzz: single allocation of %zu bytes exceeds the %zu-byte "
                 "cap — unbounded wire-length allocation\n",
                 size, cap);
    std::abort();
  }
  return std::malloc(size == 0 ? 1 : size);
}

}  // namespace

void* operator new(size_t size) {
  void* p = CheckedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](size_t size) {
  void* p = CheckedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return CheckedAlloc(size);
}

void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return CheckedAlloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// Aligned variants, so over-aligned types stay on the same malloc/free
// discipline (and under the same cap) as everything else.
void* operator new(size_t size, std::align_val_t align) {
  const size_t cap = AllocCap();
  if (cap != 0 && size > cap) {
    std::fprintf(stderr,
                 "fuzz: single aligned allocation of %zu bytes exceeds the "
                 "%zu-byte cap\n",
                 size, cap);
    std::abort();
  }
  const size_t alignment = static_cast<size_t>(align);
  const size_t rounded = (size + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded == 0 ? alignment : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](size_t size, std::align_val_t align) {
  return operator new(size, align);
}

void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, size_t, std::align_val_t) noexcept {
  std::free(p);
}
