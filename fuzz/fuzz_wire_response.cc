// Fuzz target: net::ParseResponse and net::ParseGoAway over arbitrary
// payload bytes — the client-side decoders (router remote backends, the
// repl client, tests) that consume whatever a server sends.
//
// Properties: never crashes or over-allocates; a payload that parses
// re-encodes to a payload that parses to the same value.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_util.h"
#include "net/protocol.h"

using skycube::fuzz::Expect;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace net = skycube::net;
  const std::string_view payload(reinterpret_cast<const char*>(data), size);

  skycube::Result<net::WireResponse> first = net::ParseResponse(payload);
  if (first.ok()) {
    const net::WireResponse& a = first.value();
    const std::string frame = net::EncodeResponse(a);
    skycube::Result<net::WireResponse> second = net::ParseResponse(
        std::string_view(frame).substr(net::kFrameHeaderBytes));
    Expect(second.ok(), "re-encoded response must re-parse");
    const net::WireResponse& b = second.value();
    Expect(a.id == b.id && a.request_op == b.request_op &&
               a.status == b.status && a.cache_hit == b.cache_hit &&
               a.partial == b.partial &&
               a.snapshot_version == b.snapshot_version && a.ids == b.ids &&
               a.left_ids == b.left_ids && a.count == b.count &&
               a.member == b.member && a.lsn == b.lsn && a.text == b.text,
           "response round-trip must preserve every field");
  }

  skycube::Result<net::WireGoAway> goaway = net::ParseGoAway(payload);
  if (goaway.ok()) {
    const std::string frame = net::EncodeGoAway(goaway.value().status,
                                                goaway.value().reason);
    skycube::Result<net::WireGoAway> second = net::ParseGoAway(
        std::string_view(frame).substr(net::kFrameHeaderBytes));
    Expect(second.ok() && second.value().status == goaway.value().status &&
               second.value().reason == goaway.value().reason,
           "goaway round-trip must preserve status and reason");
  }
  return 0;
}
