// Fuzz target: the WAL payload codecs — DecodeOpPayload (v3 op records,
// with the legacy-v2 fallback) and DecodeRowPayload (v2 rows) — over
// arbitrary payload bytes. Record framing (len|lsn|checksum) is the
// segment harness's job; this one lands every mutation directly on the
// payload parsers, the layer a checksummed-but-hostile record reaches.
//
// Properties: never crashes or over-allocates; a payload that decodes
// re-encodes (via the matching encoder) to a payload that decodes to the
// same op/values; encode ∘ decode is the identity on the wire bytes for
// v3 records.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_util.h"
#include "storage/wal.h"

using skycube::fuzz::BitEqual;
using skycube::fuzz::Expect;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view payload(reinterpret_cast<const char*>(data), size);

  skycube::Result<skycube::WalOpRecord> first =
      skycube::DecodeOpPayload(payload);
  if (first.ok()) {
    const skycube::WalOpRecord& a = first.value();
    std::string encoded;
    if (a.legacy) {
      encoded = skycube::EncodeRowPayload(a.values);
      skycube::Result<std::vector<double>> row =
          skycube::DecodeRowPayload(encoded);
      Expect(row.ok() && BitEqual(row.value(), a.values),
             "legacy row payload must round-trip through the v2 codec");
    } else if (a.op == skycube::WalOp::kInsert) {
      encoded = skycube::EncodeInsertPayload(a.values, a.row, a.timestamp_ms);
    } else {
      encoded = skycube::EncodeDeletePayload(a.row, a.timestamp_ms);
    }
    if (!a.legacy) {
      // The v3 codecs are canonical: decode ∘ encode must reproduce the
      // exact wire bytes, not just an equivalent record.
      Expect(encoded == payload,
             "v3 op payload encoding must be canonical (byte-identical)");
    }
    skycube::Result<skycube::WalOpRecord> second =
        skycube::DecodeOpPayload(encoded);
    Expect(second.ok(), "re-encoded op payload must re-decode");
    const skycube::WalOpRecord& b = second.value();
    Expect(a.op == b.op && a.timestamp_ms == b.timestamp_ms &&
               a.legacy == b.legacy && BitEqual(a.values, b.values) &&
               (a.legacy || a.row == b.row),
           "op payload round-trip must preserve every field");
  }

  // The v2 row codec accepts a strict subset of what DecodeOpPayload's
  // fallback accepts; fuzz it directly too.
  skycube::Result<std::vector<double>> row =
      skycube::DecodeRowPayload(payload);
  if (row.ok()) {
    const std::string encoded = skycube::EncodeRowPayload(row.value());
    Expect(encoded == payload,
           "v2 row payload encoding must be canonical (byte-identical)");
  }
  return 0;
}
