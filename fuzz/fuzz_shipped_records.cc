// Fuzz target: the replication shipped-record batch codec
// (storage/replication.h) over arbitrary bytes.
//
// Properties: DecodeShippedRecords never crashes or over-allocates; the
// codec is canonical, so decode ∘ encode reproduces the exact input bytes
// whenever decode succeeds; encode ∘ decode is the identity on the
// structured side (LSNs and payloads preserved, order kept).
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fuzz_util.h"
#include "storage/replication.h"
#include "storage/wal.h"

using skycube::fuzz::Expect;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);
  skycube::Result<std::vector<skycube::WalRecord>> decoded =
      skycube::DecodeShippedRecords(bytes);
  if (!decoded.ok()) return 0;

  const std::string encoded =
      skycube::EncodeShippedRecords(decoded.value());
  Expect(encoded == bytes,
         "shipped-record encoding must be canonical (byte-identical)");

  skycube::Result<std::vector<skycube::WalRecord>> again =
      skycube::DecodeShippedRecords(encoded);
  Expect(again.ok() && again.value().size() == decoded.value().size(),
         "re-encoded shipped batch must re-decode to the same count");
  for (size_t i = 0; i < again.value().size(); ++i) {
    Expect(again.value()[i].lsn == decoded.value()[i].lsn &&
               again.value()[i].payload == decoded.value()[i].payload,
           "shipped batch round-trip must preserve every record");
  }
  return 0;
}
