// Fuzz target: net::FrameDecoder over arbitrary byte streams, including
// pipelined multi-frame streams and adversarial chunking.
//
// Modes (first input byte & 3):
//   0  raw bytes straight into the decoder
//   1  the remaining bytes wrapped as one correctly checksummed frame
//      (reaches the payload parsers behind the framing gate)
//   2  the remaining bytes split into two frames, fed back to back
//      (exercises the pipelining path: multiple Takes per Append)
//   3  like 0, but fed one byte at a time (maximal incremental pressure
//      on the header/payload boundary logic)
//
// Properties: Take never crashes or over-allocates; a decoder that
// reported kError stays poisoned; every payload Take yields under modes
// 1–2 is byte-identical to what was framed; payloads that parse as a
// request/response re-encode and re-parse to the same value.
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "fuzz_util.h"
#include "net/protocol.h"

using skycube::fuzz::Expect;
using skycube::fuzz::FramedPayload;
using skycube::fuzz::InputReader;

namespace {

/// Parse whatever the payload claims to be; on success, re-encode and
/// re-parse, asserting field-for-field equality.
void CheckPayloadRoundTrip(const std::string& payload) {
  if (payload.empty()) return;
  namespace net = skycube::net;
  const auto op = net::PayloadOpcode(payload);
  if (net::IsRequestOpcode(op)) {
    skycube::Result<net::WireRequest> first = net::ParseRequest(payload);
    if (!first.ok()) return;
    const std::string frame = net::EncodeRequest(first.value());
    skycube::Result<net::WireRequest> second =
        net::ParseRequest(std::string_view(frame).substr(
            net::kFrameHeaderBytes));
    Expect(second.ok(), "re-encoded request must re-parse");
    const net::WireRequest& a = first.value();
    const net::WireRequest& b = second.value();
    Expect(a.op == b.op && a.id == b.id && a.subspace == b.subspace &&
               a.object == b.object &&
               skycube::fuzz::BitEqual(a.values, b.values) &&
               a.since_version == b.since_version &&
               a.ack_lsn == b.ack_lsn && a.max_records == b.max_records &&
               a.wait_millis == b.wait_millis,
           "request round-trip must preserve every field");
  } else if (op == net::Opcode::kResponse) {
    skycube::Result<net::WireResponse> first = net::ParseResponse(payload);
    if (!first.ok()) return;
    const std::string frame = net::EncodeResponse(first.value());
    skycube::Result<net::WireResponse> second =
        net::ParseResponse(std::string_view(frame).substr(
            net::kFrameHeaderBytes));
    Expect(second.ok(), "re-encoded response must re-parse");
    const net::WireResponse& a = first.value();
    const net::WireResponse& b = second.value();
    Expect(a.id == b.id && a.request_op == b.request_op &&
               a.status == b.status && a.cache_hit == b.cache_hit &&
               a.partial == b.partial &&
               a.snapshot_version == b.snapshot_version && a.ids == b.ids &&
               a.left_ids == b.left_ids && a.count == b.count &&
               a.member == b.member && a.lsn == b.lsn && a.text == b.text,
           "response round-trip must preserve every field");
  } else if (op == net::Opcode::kGoAway) {
    skycube::Result<net::WireGoAway> goaway = net::ParseGoAway(payload);
    if (!goaway.ok()) return;
    const std::string frame = net::EncodeGoAway(goaway.value().status,
                                                goaway.value().reason);
    skycube::Result<net::WireGoAway> second =
        net::ParseGoAway(std::string_view(frame).substr(
            net::kFrameHeaderBytes));
    Expect(second.ok() && second.value().status == goaway.value().status &&
               second.value().reason == goaway.value().reason,
           "goaway round-trip must preserve status and reason");
  }
}

/// Feeds `stream` into a decoder in `chunk`-byte steps, draining after
/// every Append. Returns the payloads taken; `expected` counts how many
/// the stream was built to contain (SIZE_MAX = unknown, raw mode).
void RunStream(std::string_view stream, size_t chunk, size_t expected) {
  skycube::net::FrameDecoder decoder;
  size_t frames = 0;
  bool errored = false;
  for (size_t offset = 0; offset < stream.size(); offset += chunk) {
    const size_t n = std::min(chunk, stream.size() - offset);
    decoder.Append(stream.data() + offset, n);
    for (;;) {
      std::string payload, error;
      const auto next = decoder.Take(&payload, &error);
      if (next == skycube::net::FrameDecoder::Next::kFrame) {
        Expect(!errored, "a poisoned decoder must never yield frames");
        ++frames;
        CheckPayloadRoundTrip(payload);
        continue;
      }
      if (next == skycube::net::FrameDecoder::Next::kError) {
        Expect(!error.empty(), "kError must carry a reason");
        errored = true;
        // Poisoning property: the next Take must report kError again.
        std::string p2, e2;
        Expect(decoder.Take(&p2, &e2) ==
                   skycube::net::FrameDecoder::Next::kError,
               "kError must poison the decoder permanently");
      }
      break;
    }
    if (errored) break;
  }
  if (expected != SIZE_MAX && !errored) {
    Expect(frames == expected,
           "a well-formed stream must yield every framed payload");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  InputReader in(data, size);
  const uint8_t mode = in.TakeByte() & 3;
  // A chunk size in [1, 64] derived from the input keeps the boundary
  // logic under varied incremental pressure.
  const size_t chunk = (in.TakeByte() & 63) + 1;
  const std::string_view rest = in.Rest();

  if (mode == 0) {
    RunStream(rest, chunk, SIZE_MAX);
  } else if (mode == 1) {
    RunStream(FramedPayload(rest), chunk, rest.empty() ? 0 : 1);
  } else if (mode == 2) {
    const size_t half = rest.size() / 2;
    std::string stream = FramedPayload(rest.substr(0, half));
    stream += FramedPayload(rest.substr(half));
    size_t expected = 0;
    if (half > 0) ++expected;
    if (rest.size() - half > 0) ++expected;
    RunStream(stream, chunk, expected);
  } else {
    RunStream(rest, 1, SIZE_MAX);
  }
  return 0;
}
