// Ablation study of Stellar's design choices (DESIGN.md §3):
//   1. phase breakdown — where the time goes per distribution;
//   2. dominance-matrix materialization vs on-the-fly recomputation
//      (the Property 1 storage trade-off of §5.1);
//   3. full-space skyline algorithm choice (BNL / SFS / DC / LESS);
//   4. Skyey with and without parent-candidate sharing (the "shared sorted
//      lists" device).
//
// Flags: --tuples=N (default 20000; --full → 100000), --seed=S.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/skyey.h"
#include "core/stellar.h"

int main(int argc, char** argv) {
  using namespace skycube;
  using namespace skycube::bench;
  const FlagParser flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const size_t tuples = flags.GetInt("tuples", full ? 100000 : 20000);
  const uint64_t seed = flags.GetInt("seed", 1);
  PrintHeader("Ablation: Stellar design choices", full);
  BenchJson json(flags, "ablation_stellar");
  json.AddScalar("full", full ? "full" : "default");
  json.AddScalar("tuples", static_cast<int64_t>(tuples));

  const struct {
    Distribution distribution;
    int dims;
  } workloads[] = {
      {Distribution::kCorrelated, 8},
      {Distribution::kIndependent, 5},
      {Distribution::kAntiCorrelated, 4},
  };

  // 1. Phase breakdown.
  std::printf("--- phase breakdown (seconds) ---\n");
  TablePrinter phases({"workload", "seeds", "skyline", "matrices",
                       "seed_groups", "nonseed", "total"});
  for (const auto& w : workloads) {
    const Dataset data =
        PaperSynthetic(w.distribution, tuples, w.dims, seed);
    StellarStats stats;
    ComputeStellar(data, {}, &stats);
    phases.NewRow()
        .AddCell(std::string(DistributionName(w.distribution)) + "/d" +
                 std::to_string(w.dims))
        .AddInt(static_cast<int64_t>(stats.num_seeds))
        .AddDouble(stats.seconds_full_skyline, 4)
        .AddDouble(stats.seconds_matrices, 4)
        .AddDouble(stats.seconds_seed_groups, 4)
        .AddDouble(stats.seconds_nonseed, 4)
        .AddDouble(stats.seconds_total, 4);
  }
  EmitTable(phases);
  json.AddTable("phase_breakdown", phases);

  // 2. Matrix materialization.
  std::printf("--- dominance matrix: materialized vs on-the-fly ---\n");
  TablePrinter matrix({"workload", "materialized_sec", "on_the_fly_sec"});
  for (const auto& w : workloads) {
    const Dataset data =
        PaperSynthetic(w.distribution, tuples, w.dims, seed);
    StellarOptions mat;
    mat.matrix_mode = StellarOptions::MatrixMode::kMaterialize;
    StellarOptions fly;
    fly.matrix_mode = StellarOptions::MatrixMode::kOnTheFly;
    const double mat_sec = TimeIt([&] { ComputeStellar(data, mat); });
    const double fly_sec = TimeIt([&] { ComputeStellar(data, fly); });
    matrix.NewRow()
        .AddCell(DistributionName(w.distribution))
        .AddDouble(mat_sec, 4)
        .AddDouble(fly_sec, 4);
  }
  EmitTable(matrix);
  json.AddTable("matrix_mode", matrix);

  // 3. Full-space skyline algorithm.
  std::printf("--- step-1 skyline algorithm choice ---\n");
  TablePrinter algos(
      {"workload", "BNL", "SFS", "DC", "LESS", "Index", "BBS"});
  for (const auto& w : workloads) {
    const Dataset data =
        PaperSynthetic(w.distribution, tuples, w.dims, seed);
    algos.NewRow().AddCell(DistributionName(w.distribution));
    for (SkylineAlgorithm algorithm : kAllSkylineAlgorithms) {
      StellarOptions options;
      options.skyline_algorithm = algorithm;
      algos.AddDouble(TimeIt([&] { ComputeStellar(data, options); }), 4);
    }
  }
  EmitTable(algos);
  json.AddTable("skyline_algorithm", algos);

  // 4. Skyey candidate sharing.
  std::printf("--- Skyey: parent-candidate sharing on/off ---\n");
  TablePrinter sharing({"workload", "shared_sec", "fresh_sec"});
  for (const auto& w : workloads) {
    const Dataset data =
        PaperSynthetic(w.distribution, tuples, w.dims, seed);
    SkyeyOptions shared;
    shared.share_parent_candidates = true;
    SkyeyOptions fresh;
    fresh.share_parent_candidates = false;
    sharing.NewRow()
        .AddCell(std::string(DistributionName(w.distribution)) + "/d" +
                 std::to_string(w.dims))
        .AddDouble(TimeIt([&] { ComputeSkyey(data, shared); }), 4)
        .AddDouble(TimeIt([&] { ComputeSkyey(data, fresh); }), 4);
  }
  EmitTable(sharing);
  json.AddTable("skyey_sharing", sharing);
  return 0;
}
