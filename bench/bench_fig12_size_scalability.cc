// Figure 12(a–c): scalability w.r.t. database size — runtime of Skyey vs
// Stellar as tuples grow 100k..500k; dimensionality fixed at 6 (correlated)
// and 4 (equally distributed, anti-correlated).
//
// Paper shape: both algorithms scale roughly linearly in n; Stellar is
// faster on correlated and equally distributed data, slower on
// anti-correlated data.
//
// Flags: --full (100k..500k in steps of 100k; otherwise 20k..100k in steps
// of 20k), --seed=S.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/skyey.h"
#include "core/stellar.h"

int main(int argc, char** argv) {
  using namespace skycube;
  using namespace skycube::bench;
  const FlagParser flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const uint64_t seed = flags.GetInt("seed", 1);
  PrintHeader("Figure 12: runtime vs database size, synthetic data sets",
              full);
  BenchJson json(flags, "fig12_size_scalability");
  json.AddScalar("full", full ? "full" : "default");

  std::vector<size_t> sizes;
  sizes.reserve(5);
  for (int i = 1; i <= 5; ++i) {
    sizes.push_back(static_cast<size_t>(i) * (full ? 100000 : 20000));
  }

  struct Series {
    Distribution distribution;
    char figure;
    int dims;
  };
  const Series series[] = {
      {Distribution::kCorrelated, 'a', 6},
      {Distribution::kIndependent, 'b', 4},
      {Distribution::kAntiCorrelated, 'c', 4},
  };
  for (const Series& s : series) {
    std::printf("--- Figure 12(%c): %s, %d dimensions ---\n", s.figure,
                DistributionName(s.distribution), s.dims);
    TablePrinter table({"tuples", "stellar_sec", "skyey_sec",
                        "skyey_noshare_sec", "stellar/skyey"});
    for (size_t n : sizes) {
      const Dataset data = PaperSynthetic(s.distribution, n, s.dims, seed);
      SkylineGroupSet stellar_groups;
      SkylineGroupSet skyey_groups;
      const double stellar_sec =
          TimeIt([&] { stellar_groups = ComputeStellar(data); });
      const double skyey_sec =
          TimeIt([&] { skyey_groups = ComputeSkyey(data); });
      SkyeyOptions noshare;
      noshare.share_parent_candidates = false;
      const double noshare_sec = TimeIt([&] { ComputeSkyey(data, noshare); });
      if (stellar_groups != skyey_groups) {
        std::printf("ERROR: engines disagree at %s n=%zu\n",
                    DistributionName(s.distribution), n);
        return 1;
      }
      table.NewRow()
          .AddInt(static_cast<int64_t>(n))
          .AddDouble(stellar_sec, 4)
          .AddDouble(skyey_sec, 4)
          .AddDouble(noshare_sec, 4)
          .AddDouble(stellar_sec / skyey_sec, 2);
    }
    EmitTable(table);
    json.AddTable(DistributionName(s.distribution), table);
  }
  std::printf("expected shape: ~linear growth in n for both; Stellar ahead "
              "on (a)/(b), behind on (c).\n");
  return 0;
}
