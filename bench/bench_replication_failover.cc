// bench_replication_failover — replication cost and failover time of the
// per-shard primary/replica tier (src/storage/replication.h,
// docs/REPLICATION.md).
//
// Phases:
//   1  ingest overhead (in-process): the same insert stream through three
//      write paths sharing identical DurableIngest options — unreplicated,
//      replicated with async shipping (fence 0: the mutation ack never
//      waits for the follower), and replicated semi-sync (ack fenced on a
//      follower ack, 1000 ms degrade timeout). A live WalFollower applies
//      into a second directory throughout both replicated runs. The ISSUE
//      budget (p50 <= 1.3x unreplicated) is checked against the async
//      path — the fence is purchased durability, not overhead, and is
//      reported separately. Checkpoints are disabled so the numbers are
//      the pure append+apply(+fence) path. The three modes run as --reps
//      interleaved repetitions and the table keeps each mode's best-p50
//      rep: the absolute fdatasync cost drifts with shared-disk journal
//      state, so per-mode floors are what make the ratio reproducible.
//   2  steady-state lag: sampled during the async run (the fence pins the
//      semi-sync run's lag at ~0), plus the catch-up time from the last
//      primary append until the follower reaches the tip.
//   3  failover (forked children): a real skycube_serve primary and its
//      --replica-of standby, with an in-process RouterExecutor over the
//      `primary+replica` set. After a complete baseline answer, SIGKILL
//      the primary and poll the same full-space skyline, timestamping
//      detection (first degraded/failed answer), promotion (the replica
//      set's promotion counter moving), and recovery (first complete
//      answer byte-identical to the baseline). A post-failover insert
//      through the promoted primary must succeed.
//
// Flags: --tuples/--dims/--seed   synthetic base dataset
//        --ingest-rows=N          inserts per phase-1 mode
//        --reps=N                 interleaved phase-1 repetitions (the
//                                 table keeps each mode's best-p50 rep)
//        --serve=PATH             skycube_serve binary (default: sibling
//                                 ../tools/skycube_serve of this binary)
//        --work-dir=DIR           scratch data directories
//        --follower-dir=DIR       phase-1 follower directories (default:
//                                 /dev/shm when present — see FollowerBase)
//        --failover=0             skip phase 3
//        --full                   paper-sized row counts
//        --json[=PATH]            machine-readable record
#include <libgen.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/deadline.h"
#include "common/flags.h"
#include "common/status.h"
#include "common/subspace.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "net/client.h"
#include "net/protocol.h"
#include "router/router.h"
#include "service/request.h"
#include "storage/durable_ingest.h"
#include "storage/replication.h"

namespace skycube::bench {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double PercentileUs(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0;
  const size_t k = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1));
  std::nth_element(latencies->begin(), latencies->begin() + k,
                   latencies->end());
  return (*latencies)[k] * 1e6;
}

Dataset BenchData(const FlagParser& flags) {
  return PaperSynthetic(Distribution::kIndependent,
                        static_cast<size_t>(flags.GetInt("tuples", 2000)),
                        static_cast<int>(flags.GetInt("dims", 6)),
                        static_cast<uint64_t>(flags.GetInt("seed", 42)));
}

/// The insert stream (disjoint seed from the base dataset).
Dataset InsertData(const FlagParser& flags, size_t rows) {
  return PaperSynthetic(Distribution::kIndependent, rows,
                        static_cast<int>(flags.GetInt("dims", 6)),
                        static_cast<uint64_t>(flags.GetInt("seed", 42)) + 1);
}

// --- Phase 1 + 2: ingest overhead and steady-state lag --------------------

struct IngestRun {
  double p50_us = 0;
  double p95_us = 0;
  double rps = 0;
  double lag_mean = 0;       // sampled tip - applied, records
  uint64_t lag_max = 0;
  double catch_up_ms = 0;    // last append -> follower at tip
  uint64_t fence_timeouts = 0;
};

/// One insert stream through a DurableIngest behind `handler`. When
/// `follower` is non-null the shipper lag is sampled every 64 inserts and
/// the follower is timed to convergence afterwards.
IngestRun DriveIngest(InsertHandler* handler, const Dataset& inserts,
                      WalShipper* shipper, WalFollower* follower) {
  IngestRun run;
  std::vector<double> latencies;
  latencies.reserve(inserts.num_objects());
  std::vector<uint64_t> lag_samples;
  const int dims = inserts.num_dims();
  WallTimer timer;
  for (ObjectId i = 0; i < static_cast<ObjectId>(inserts.num_objects());
       ++i) {
    const double* row = inserts.Row(i);
    const std::vector<double> values(row, row + dims);
    const double start = NowSeconds();
    const Result<InsertHandler::Applied> applied = handler->ApplyInsert(
        values);
    latencies.push_back(NowSeconds() - start);
    if (!applied.ok()) {
      std::fprintf(stderr, "FAIL ingest: %s\n",
                   applied.status().ToString().c_str());
      std::exit(1);
    }
    if (follower != nullptr && shipper != nullptr && i % 64 == 63) {
      const uint64_t tip = shipper->stats().tip_lsn;
      const uint64_t applied_lsn = follower->applied_lsn();
      lag_samples.push_back(tip > applied_lsn ? tip - applied_lsn : 0);
    }
  }
  const double elapsed = timer.ElapsedSeconds();
  run.rps = static_cast<double>(inserts.num_objects()) / elapsed;
  run.p50_us = PercentileUs(&latencies, 0.50);
  run.p95_us = PercentileUs(&latencies, 0.95);
  if (!lag_samples.empty()) {
    uint64_t total = 0;
    for (uint64_t lag : lag_samples) {
      total += lag;
      run.lag_max = std::max(run.lag_max, lag);
    }
    run.lag_mean =
        static_cast<double>(total) / static_cast<double>(lag_samples.size());
  }
  if (follower != nullptr && shipper != nullptr) {
    const uint64_t tip = shipper->stats().tip_lsn;
    const double wait_start = NowSeconds();
    while (follower->applied_lsn() < tip) {
      if (NowSeconds() - wait_start > 30.0) {
        std::fprintf(stderr, "FAIL follower never reached tip %llu\n",
                     static_cast<unsigned long long>(tip));
        std::exit(1);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    run.catch_up_ms = (NowSeconds() - wait_start) * 1e3;
  }
  if (shipper != nullptr) run.fence_timeouts = shipper->stats().fence_timeouts;
  return run;
}

std::unique_ptr<DurableIngest> OpenFresh(const std::string& dir,
                                         const Dataset* bootstrap) {
  (void)WipeDurableState(dir);
  DurableIngestOptions options;
  options.checkpoint_every = 0;  // pure write path, no checkpoint spikes
  Result<std::unique_ptr<DurableIngest>> opened =
      DurableIngest::Open(dir, bootstrap, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "FAIL open %s: %s\n", dir.c_str(),
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(opened).value();
}

/// Phase-1 follower scratch space. A replica's WAL never shares the
/// primary's device in production, so the follower directories prefer
/// tmpfs (/dev/shm) when it exists: on a one-disk container, co-locating
/// both WALs on the same journal makes the primary's per-record fdatasync
/// pay for the follower's write traffic too — that measures disk
/// contention, not shipping cost, and it is noisy enough to swing the
/// overhead ratio run to run. The primary stays on the real disk so the
/// baseline keeps its production fsync cost.
std::string FollowerBase(const FlagParser& flags,
                         const std::string& work_dir) {
  const std::string base = flags.GetString("follower-dir", "");
  if (!base.empty()) return base;
  std::error_code ec;
  if (std::filesystem::is_directory("/dev/shm", ec)) {
    return "/dev/shm/skycube_bench_repl";
  }
  return work_dir;
}

/// Replicated run: primary in `primary_dir`, follower bootstrapped from its
/// snapshot into `follower_dir`, inserts fenced on `fence_timeout`.
IngestRun RunReplicated(const FlagParser& flags, const Dataset& inserts,
                        const std::string& primary_dir,
                        const std::string& follower_dir,
                        std::chrono::milliseconds fence_timeout) {
  const Dataset base = BenchData(flags);
  std::unique_ptr<DurableIngest> primary = OpenFresh(primary_dir, &base);
  DirReplicationSource source(primary_dir);

  (void)WipeDurableState(follower_dir);
  const Result<ReplicationSnapshot> snapshot = source.Snapshot();
  if (!snapshot.ok()) {
    std::fprintf(stderr, "FAIL snapshot: %s\n",
                 snapshot.status().ToString().c_str());
    std::exit(1);
  }
  const Status installed = InstallSnapshot(
      follower_dir, snapshot.value().lsn, snapshot.value().bytes);
  if (!installed.ok()) {
    std::fprintf(stderr, "FAIL install: %s\n", installed.ToString().c_str());
    std::exit(1);
  }
  DurableIngestOptions follower_options;
  follower_options.checkpoint_every = 0;
  // The follower relaxes its own fsync cadence: the primary's synced log is
  // the durability backstop (a damaged replica re-bootstraps from it), and
  // in production the replica's device is not the primary's. Co-located
  // per-record fdatasync would otherwise serialize both WALs through this
  // box's one journal and measure disk contention, not shipping cost.
  follower_options.wal.fsync_policy = FsyncPolicy::kInterval;
  Result<std::unique_ptr<DurableIngest>> follower_opened =
      DurableIngest::Open(follower_dir, nullptr, follower_options);
  if (!follower_opened.ok()) {
    std::fprintf(stderr, "FAIL open follower %s: %s\n", follower_dir.c_str(),
                 follower_opened.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<DurableIngest> follower_ingest =
      std::move(follower_opened).value();
  WalFollowerOptions follower_loop;
  if (fence_timeout.count() == 0) {
    // Async mode coalesces fetches (the batching a remote follower gets
    // from its round trip anyway); with both nodes time-sharing one core,
    // a wake-per-append loop would bill a full apply-context-switch to
    // every insert. Semi-sync keeps wake-per-append: the fenced ack wants
    // the record shipped immediately.
    follower_loop.coalesce = std::chrono::milliseconds(5);
  }
  WalFollower follower(follower_ingest.get(), &source,
                       /*on_applied=*/nullptr, follower_loop);
  follower.Start();

  ReplicatedInsertHandler handler(primary.get(), source.shipper(),
                                  fence_timeout);
  IngestRun run =
      DriveIngest(&handler, inserts, source.shipper(), &follower);
  follower.Stop();
  return run;
}

// --- Phase 3: forked serve children + in-process router -------------------

struct Child {
  pid_t pid = -1;
  FILE* stderr_from = nullptr;
  uint16_t port = 0;
};

/// Forks + execs a skycube_serve and scrapes "listening on HOST:PORT" from
/// its stderr (the same contract skycube_shardtest relies on).
Child Spawn(const std::string& binary,
            const std::vector<std::string>& args) {
  int err_pipe[2];
  if (pipe(err_pipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    dup2(err_pipe[1], STDERR_FILENO);
    close(err_pipe[0]);
    close(err_pipe[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 2);
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(binary.c_str(), argv.data());
    _exit(127);
  }
  close(err_pipe[1]);
  Child child;
  child.pid = pid;
  child.stderr_from = fdopen(err_pipe[0], "r");
  std::string line;
  int c;
  while ((c = std::fgetc(child.stderr_from)) != EOF) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (line.rfind("listening on ", 0) == 0) {
      const size_t colon = line.rfind(':');
      child.port = static_cast<uint16_t>(
          std::strtoul(line.c_str() + colon + 1, nullptr, 10));
      return child;
    }
    line.clear();
  }
  std::fprintf(stderr, "FAIL no listen line from %s (last: '%s')\n",
               binary.c_str(), line.c_str());
  kill(pid, SIGKILL);
  std::exit(1);
}

void Reap(Child* child) {
  if (child->pid > 0) {
    kill(child->pid, SIGTERM);
    int status = 0;
    waitpid(child->pid, &status, 0);
    child->pid = -1;
  }
  if (child->stderr_from != nullptr) {
    fclose(child->stderr_from);
    child->stderr_from = nullptr;
  }
}

/// kReplState straight at one server: applied LSN + role.
bool ReplState(uint16_t port, uint64_t* lsn, std::string* role) {
  net::NetClient client;
  if (!client.Connect("127.0.0.1", port).ok()) return false;
  net::WireRequest request;
  request.op = net::Opcode::kReplState;
  request.id = 1;
  if (!client.SendRequest(request).ok()) return false;
  net::WireResponse response;
  std::string error;
  if (client.ReadResponse(&response, Deadline::AfterMillis(5000), &error) !=
      net::NetClient::Got::kFrame) {
    return false;
  }
  if (response.status != StatusCode::kOk) return false;
  *lsn = response.lsn;
  if (role != nullptr) *role = response.text;
  return true;
}

struct FailoverRun {
  bool failed = false;
  double pre_kill_lag = 0;       // records, from the set's state probes
  double detection_ms = 0;       // kill -> first degraded/failed answer
  double promotion_ms = 0;       // kill -> promotion counter moves
  double first_complete_ms = 0;  // kill -> first baseline-identical answer
  double post_insert_ms = 0;     // fenced insert on the promoted primary
  uint64_t polls = 0;
};

FailoverRun RunFailover(const FlagParser& flags, const std::string& serve,
                        const std::string& work_dir) {
  FailoverRun run;
  const int dims = static_cast<int>(flags.GetInt("dims", 6));
  const std::vector<std::string> source_args = {
      "--synthetic",
      "--tuples=" + std::to_string(flags.GetInt("tuples", 2000)),
      "--dims=" + std::to_string(dims),
      "--seed=" + std::to_string(flags.GetInt("seed", 42)),
      "--truncate=4",
  };

  std::vector<std::string> primary_args = source_args;
  primary_args.push_back("--data-dir=" + work_dir + "/failover-primary");
  primary_args.push_back("--port=0");
  Child primary = Spawn(serve, primary_args);
  const std::vector<std::string> replica_args = {
      "--data-dir=" + work_dir + "/failover-replica",
      "--replica-of=127.0.0.1:" + std::to_string(primary.port),
      "--port=0",
  };
  Child replica = Spawn(serve, replica_args);
  std::printf("primary pid %d port %u, replica pid %d port %u\n",
              static_cast<int>(primary.pid),
              static_cast<unsigned>(primary.port),
              static_cast<int>(replica.pid),
              static_cast<unsigned>(replica.port));

  router::RouterOptions options;
  options.shard.down_after_failures = 2;
  options.shard.probe.initial_millis = 100;
  router::ShardEndpointSet endpoints;
  endpoints.primary = {"127.0.0.1", primary.port};
  endpoints.replicas.push_back({"127.0.0.1", replica.port});
  router::RouterExecutor executor(dims, {endpoints}, options);
  const Dataset base = BenchData(flags);
  for (ObjectId gid = 0; gid < static_cast<ObjectId>(base.num_objects());
       ++gid) {
    executor.BootstrapRow(base.Row(gid));
  }

  const QueryRequest skyline = QueryRequest::SubspaceSkyline(FullMask(dims));
  auto complete = [](const QueryResponse& response) {
    return response.ok && !response.partial && response.ids != nullptr;
  };

  // Baseline: a complete answer, and the replica caught up (bounded wait).
  std::vector<ObjectId> baseline;
  const double setup_start = NowSeconds();
  for (;;) {
    const QueryResponse response = executor.Execute(skyline);
    if (complete(response)) {
      baseline = *response.ids;
      break;
    }
    if (NowSeconds() - setup_start > 30.0) {
      std::fprintf(stderr, "FAIL no baseline answer within 30s\n");
      run.failed = true;
      Reap(&primary);
      Reap(&replica);
      return run;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  router::ReplicaSetBackend* set = executor.replica_set(0);
  for (;;) {
    uint64_t primary_lsn = 0;
    uint64_t replica_lsn = 0;
    std::string role;
    if (ReplState(primary.port, &primary_lsn, nullptr) &&
        ReplState(replica.port, &replica_lsn, &role) && role == "replica" &&
        replica_lsn >= primary_lsn) {
      run.pre_kill_lag = static_cast<double>(
          primary_lsn > replica_lsn ? primary_lsn - replica_lsn : 0);
      break;
    }
    if (NowSeconds() - setup_start > 30.0) {
      std::fprintf(stderr, "FAIL replica never caught up pre-kill\n");
      run.failed = true;
      Reap(&primary);
      Reap(&replica);
      return run;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Kill the primary, then hammer the same query until the answer is
  // complete and baseline-identical again.
  kill(primary.pid, SIGKILL);
  int status = 0;
  waitpid(primary.pid, &status, 0);
  primary.pid = -1;
  const double t0 = NowSeconds();
  bool detected = false;
  bool promoted = false;
  for (;;) {
    const QueryResponse response = executor.Execute(skyline);
    const double now = NowSeconds();
    ++run.polls;
    if (!detected && !complete(response)) {
      detected = true;
      run.detection_ms = (now - t0) * 1e3;
    }
    if (!promoted && set->stats().promotions > 0) {
      promoted = true;
      run.promotion_ms = (now - t0) * 1e3;
    }
    if (complete(response) && *response.ids == baseline &&
        (detected || promoted)) {
      run.first_complete_ms = (now - t0) * 1e3;
      break;
    }
    if (now - t0 > 60.0) {
      std::fprintf(stderr, "FAIL no complete answer within 60s of kill\n");
      run.failed = true;
      Reap(&primary);
      Reap(&replica);
      return run;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!promoted) {
    // The first complete answer implies the promotion already happened;
    // stamp it if the counter was observed late.
    run.promotion_ms = run.first_complete_ms;
  }

  // A mutation through the promoted primary must be accepted (its fence
  // degrades to async instantly — it has no follower of its own yet).
  const Dataset extra = InsertData(flags, 1);
  const double* row = extra.Row(0);
  const double insert_start = NowSeconds();
  const QueryResponse inserted = executor.Execute(
      QueryRequest::Insert(std::vector<double>(row, row + dims)));
  run.post_insert_ms = (NowSeconds() - insert_start) * 1e3;
  if (!inserted.ok) {
    std::fprintf(stderr, "FAIL post-failover insert rejected (code %d)\n",
                 static_cast<int>(inserted.code));
    run.failed = true;
  }

  Reap(&primary);
  Reap(&replica);
  return run;
}

// --- Main -----------------------------------------------------------------

std::string DefaultServePath(const char* argv0) {
  std::vector<char> buffer(argv0, argv0 + std::strlen(argv0) + 1);
  const std::string dir = dirname(buffer.data());
  return dir + "/../tools/skycube_serve";
}

int Main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  PrintHeader("replication: ingest overhead, lag, failover time", full);
  BenchJson json(flags, "replication_failover");
  int failures = 0;

  const std::string work_dir =
      flags.GetString("work-dir", "bench_repl_work");
  std::error_code ec;
  std::filesystem::remove_all(work_dir, ec);
  std::filesystem::create_directories(work_dir, ec);
  const std::string follower_base = FollowerBase(flags, work_dir);
  if (follower_base != work_dir) {
    std::filesystem::remove_all(follower_base, ec);
    std::filesystem::create_directories(follower_base, ec);
  }

  const size_t ingest_rows = static_cast<size_t>(
      flags.GetInt("ingest-rows", full ? 8000 : 1500));
  const Dataset inserts = InsertData(flags, ingest_rows);
  const Dataset base = BenchData(flags);

  // Phase 1: the same insert stream through the three write paths.
  // Interleaved repetitions, best p50 per mode: the absolute fdatasync
  // cost drifts with the journal state on a shared disk, so a single
  // paired run makes the overhead *ratio* noise; comparing per-mode
  // floors sampled under like conditions is stable.
  const int reps = std::max(1, static_cast<int>(flags.GetInt("reps", 3)));
  IngestRun unreplicated, async_run, semisync_run;
  for (int rep = 0; rep < reps; ++rep) {
    std::unique_ptr<DurableIngest> plain =
        OpenFresh(work_dir + "/plain", &base);
    const IngestRun plain_run =
        DriveIngest(plain.get(), inserts, nullptr, nullptr);
    plain.reset();
    const IngestRun a =
        RunReplicated(flags, inserts, work_dir + "/async-primary",
                      follower_base + "/async-follower",
                      /*fence_timeout=*/std::chrono::milliseconds(0));
    const IngestRun s =
        RunReplicated(flags, inserts, work_dir + "/semisync-primary",
                      follower_base + "/semisync-follower",
                      /*fence_timeout=*/std::chrono::milliseconds(1000));
    std::printf("rep %d/%d p50_us: unreplicated %.1f, async %.1f, "
                "semisync %.1f\n",
                rep + 1, reps, plain_run.p50_us, a.p50_us, s.p50_us);
    if (rep == 0 || plain_run.p50_us < unreplicated.p50_us) {
      unreplicated = plain_run;
    }
    if (rep == 0 || a.p50_us < async_run.p50_us) async_run = a;
    if (rep == 0 || s.p50_us < semisync_run.p50_us) semisync_run = s;
  }
  if (follower_base != work_dir) {
    std::filesystem::remove_all(follower_base, ec);
  }

  const double async_ratio =
      unreplicated.p50_us > 0 ? async_run.p50_us / unreplicated.p50_us : 0;
  const double semisync_ratio =
      unreplicated.p50_us > 0 ? semisync_run.p50_us / unreplicated.p50_us
                              : 0;
  TablePrinter ingest({"mode", "rows", "p50_us", "p95_us", "rps",
                       "p50_vs_plain", "lag_mean", "lag_max",
                       "catch_up_ms", "fence_timeouts"});
  ingest.NewRow()
      .AddCell("unreplicated")
      .AddInt(static_cast<int64_t>(ingest_rows))
      .AddDouble(unreplicated.p50_us, 1)
      .AddDouble(unreplicated.p95_us, 1)
      .AddDouble(unreplicated.rps, 0)
      .AddDouble(1.0, 2)
      .AddCell("-")
      .AddCell("-")
      .AddCell("-")
      .AddCell("-");
  ingest.NewRow()
      .AddCell("replicated-async")
      .AddInt(static_cast<int64_t>(ingest_rows))
      .AddDouble(async_run.p50_us, 1)
      .AddDouble(async_run.p95_us, 1)
      .AddDouble(async_run.rps, 0)
      .AddDouble(async_ratio, 2)
      .AddDouble(async_run.lag_mean, 1)
      .AddInt(static_cast<int64_t>(async_run.lag_max))
      .AddDouble(async_run.catch_up_ms, 1)
      .AddInt(static_cast<int64_t>(async_run.fence_timeouts));
  ingest.NewRow()
      .AddCell("replicated-semisync")
      .AddInt(static_cast<int64_t>(ingest_rows))
      .AddDouble(semisync_run.p50_us, 1)
      .AddDouble(semisync_run.p95_us, 1)
      .AddDouble(semisync_run.rps, 0)
      .AddDouble(semisync_ratio, 2)
      .AddDouble(semisync_run.lag_mean, 1)
      .AddInt(static_cast<int64_t>(semisync_run.lag_max))
      .AddDouble(semisync_run.catch_up_ms, 1)
      .AddInt(static_cast<int64_t>(semisync_run.fence_timeouts));
  EmitTable(ingest);
  json.AddTable("ingest_overhead", ingest);
  json.AddScalar("ingest_p50_overhead_async", async_ratio);
  json.AddScalar("ingest_p50_overhead_semisync", semisync_ratio);
  json.AddScalar("steady_lag_mean_records", async_run.lag_mean);
  json.AddScalar("steady_lag_max_records",
                 static_cast<int64_t>(async_run.lag_max));

  std::printf("async shipping p50 overhead: %.2fx (budget <= 1.30x); "
              "semi-sync fence: %.2fx\n\n",
              async_ratio, semisync_ratio);
  if (async_ratio > 1.30) {
    std::fprintf(stderr,
                 "FAIL async replication p50 overhead %.2fx > 1.30x\n",
                 async_ratio);
    ++failures;
  }

  // Phase 3: kill-the-primary failover timeline.
  if (flags.GetBool("failover", true)) {
    const std::string serve =
        flags.GetString("serve", DefaultServePath(argv[0]));
    if (!std::filesystem::exists(serve)) {
      std::fprintf(stderr,
                   "FAIL serve binary not found at %s (pass --serve=PATH)\n",
                   serve.c_str());
      ++failures;
    } else {
      const FailoverRun failover = RunFailover(flags, serve, work_dir);
      if (failover.failed) {
        ++failures;
      } else {
        TablePrinter timeline({"pre_kill_lag", "detection_ms",
                               "promotion_ms", "first_complete_ms",
                               "post_insert_ms", "polls"});
        timeline.NewRow()
            .AddDouble(failover.pre_kill_lag, 0)
            .AddDouble(failover.detection_ms, 1)
            .AddDouble(failover.promotion_ms, 1)
            .AddDouble(failover.first_complete_ms, 1)
            .AddDouble(failover.post_insert_ms, 1)
            .AddInt(static_cast<int64_t>(failover.polls));
        EmitTable(timeline);
        json.AddTable("failover_timeline", timeline);
        json.AddScalar("failover_detection_ms", failover.detection_ms);
        json.AddScalar("failover_promotion_ms", failover.promotion_ms);
        json.AddScalar("failover_first_complete_ms",
                       failover.first_complete_ms);
        std::printf("failover: detected %.1f ms, promoted %.1f ms, first "
                    "complete answer %.1f ms after SIGKILL\n",
                    failover.detection_ms, failover.promotion_ms,
                    failover.first_complete_ms);
      }
    }
  }

  json.AddScalar("failures", static_cast<int64_t>(failures));
  if (failures > 0) {
    std::fprintf(stderr, "bench_replication_failover: %d failure(s)\n",
                 failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace skycube::bench

int main(int argc, char** argv) {
  return skycube::bench::Main(argc, argv);
}
