// Figure 10(a–c): skyline distribution in the three synthetic data set
// families (correlated, equally distributed, anti-correlated), 100,000
// tuples each — the number of skyline groups vs the number of subspace
// skyline objects as dimensionality grows (d ≤ 14 / 6 / 6 in the paper).
//
// Paper shape: on correlated data the group count is orders of magnitude
// below the object count and grows slowly; on equal and anti-correlated
// data both grow near-exponentially and the gap narrows — skyline groups
// stop compressing.
//
// Flags: --full (n=100000 and the paper's d ranges; otherwise n=20000 and
// trimmed d), --tuples=N, --seed=S.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/cube.h"
#include "core/stellar.h"

int main(int argc, char** argv) {
  using namespace skycube;
  using namespace skycube::bench;
  const FlagParser flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const size_t tuples = flags.GetInt("tuples", full ? 100000 : 20000);
  const uint64_t seed = flags.GetInt("seed", 1);
  PrintHeader("Figure 10: skyline distribution in synthetic data sets", full);
  BenchJson json(flags, "fig10_distribution");
  json.AddScalar("full", full ? "full" : "default");
  json.AddScalar("tuples", static_cast<int64_t>(tuples));
  std::printf("tuples per data set: %zu\n\n", tuples);

  struct Series {
    Distribution distribution;
    int max_d;
  };
  const Series series[] = {
      {Distribution::kCorrelated, full ? 14 : 10},
      {Distribution::kIndependent, 6},
      {Distribution::kAntiCorrelated, full ? 6 : 5},
  };
  for (const Series& s : series) {
    std::printf("--- Figure 10(%c): %s ---\n",
                s.distribution == Distribution::kCorrelated     ? 'a'
                : s.distribution == Distribution::kIndependent ? 'b'
                                                               : 'c',
                DistributionName(s.distribution));
    TablePrinter table(
        {"d", "skyline_groups", "subspace_skyline_objects", "ratio"});
    for (int d = 1; d <= s.max_d; ++d) {
      const Dataset data = PaperSynthetic(s.distribution, tuples, d, seed);
      StellarStats stats;
      SkylineGroupSet groups = ComputeStellar(data, {}, &stats);
      const CompressedSkylineCube cube(d, data.num_objects(),
                                       std::move(groups));
      const uint64_t objects = cube.TotalSubspaceSkylineObjects();
      table.NewRow()
          .AddInt(d)
          .AddInt(static_cast<int64_t>(stats.num_groups))
          .AddInt(static_cast<int64_t>(objects))
          .AddDouble(static_cast<double>(objects) /
                         static_cast<double>(stats.num_groups),
                     1);
    }
    EmitTable(table);
    json.AddTable(DistributionName(s.distribution), table);
  }
  std::printf(
      "expected shape: correlated — groups ≪ objects (strong compression); "
      "equal/anti — both near-exponential, small gap.\n");
  return 0;
}
