// Shard-scaling study for the sharded serving tier (docs/SHARDING.md):
// uncached Q1 (subspace skyline) and Q3 (membership count) throughput and
// insert rate through ShardedSkycubeService at 1/2/4/8 shards, against a
// plain single-node SkycubeService baseline over the same rows. Result
// caches are disabled throughout — the study measures the partition win
// (smaller per-shard populations, smaller per-shard cubes) plus the
// scatter–gather overhead (fan-out, id translation, merge refilter), not
// memoization.
//
// Honesty note: shards here are in-process backends executed by the wave
// sequentially, so on a single-core host the numbers show the *overhead*
// side of sharding (a speedup needs real parallel hardware or separate
// shard processes — see tools/skycube_router). The per-shard compute drop
// is still visible: per-shard skylines are cheaper than the global one,
// and the merge refilter touches only skyline-sized candidate sets.
//
// Flags:
//   --tuples=N --dims=D --dist=NAME --seed=S   dataset (4000×6 independent)
//   --queries=N        measured queries per cell         (default 400)
//   --inserts=N        measured inserts per cell         (default 300)
//   --full             paper-sized: 20000×8, 1000 queries, 1000 inserts
//   --json[=PATH]      machine-readable BENCH_shard_scaling.json
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/subspace.h"
#include "common/table_printer.h"
#include "core/maintenance.h"
#include "router/sharded_service.h"
#include "service/ingest.h"
#include "service/request.h"
#include "service/service.h"

namespace skycube::bench {
namespace {

struct Workload {
  std::vector<DimMask> subspaces;  // Q1 stream
  std::vector<ObjectId> objects;   // Q3 stream
  std::vector<std::vector<double>> rows;  // insert stream
};

Workload MakeWorkload(size_t queries, size_t inserts, int dims,
                      size_t num_objects, uint64_t seed) {
  Workload workload;
  Rng rng(seed);
  const DimMask full = FullMask(dims);
  workload.subspaces.reserve(queries);
  workload.objects.reserve(queries);
  for (size_t i = 0; i < queries; ++i) {
    workload.subspaces.push_back(
        1 + static_cast<DimMask>(rng.NextUint64() % full));
    workload.objects.push_back(
        static_cast<ObjectId>(rng.NextUint64() % num_objects));
  }
  workload.rows.reserve(inserts);
  for (size_t i = 0; i < inserts; ++i) {
    std::vector<double> row(static_cast<size_t>(dims));
    for (double& value : row) value = rng.NextDouble();
    workload.rows.push_back(std::move(row));
  }
  return workload;
}

struct Cell {
  double q1_qps = 0;
  double q3_qps = 0;
  double insert_rate = 0;
};

/// Runs the three streams against any QueryExecutor-shaped service.
template <typename Service>
Cell Measure(Service& service, const Workload& workload) {
  Cell cell;
  uint64_t ok = 0;
  double elapsed = TimeIt([&] {
    for (const DimMask mask : workload.subspaces) {
      ok += service.Execute(QueryRequest::SubspaceSkyline(mask)).ok;
    }
  });
  cell.q1_qps = static_cast<double>(workload.subspaces.size()) / elapsed;
  elapsed = TimeIt([&] {
    for (const ObjectId object : workload.objects) {
      ok += service.Execute(QueryRequest::MembershipCount(object)).ok;
    }
  });
  cell.q3_qps = static_cast<double>(workload.objects.size()) / elapsed;
  elapsed = TimeIt([&] {
    for (const std::vector<double>& row : workload.rows) {
      ok += service.Execute(QueryRequest::Insert(row)).ok;
    }
  });
  cell.insert_rate = static_cast<double>(workload.rows.size()) / elapsed;
  if (ok != workload.subspaces.size() + workload.objects.size() +
                workload.rows.size()) {
    std::fprintf(stderr, "bench: %llu requests failed\n",
                 static_cast<unsigned long long>(
                     workload.subspaces.size() + workload.objects.size() +
                     workload.rows.size() - ok));
  }
  return cell;
}

int Run(const FlagParser& flags) {
  const bool full = flags.GetBool("full", false);
  const size_t tuples = static_cast<size_t>(
      flags.GetInt("tuples", full ? 20000 : 4000));
  const int dims = static_cast<int>(flags.GetInt("dims", full ? 8 : 6));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const size_t queries = static_cast<size_t>(
      flags.GetInt("queries", full ? 1000 : 400));
  const size_t inserts = static_cast<size_t>(
      flags.GetInt("inserts", full ? 1000 : 300));
  const Distribution distribution =
      DistributionFromName(flags.GetString("dist", "independent"));

  PrintHeader("shard scaling: uncached Q1/Q3 throughput and insert rate",
              full);
  std::printf("dataset: %zu x %d (%s), %zu queries, %zu inserts per cell; "
              "result caches OFF\n\n",
              tuples, dims, flags.GetString("dist", "independent").c_str(),
              queries, inserts);

  BenchJson json(flags, "shard_scaling");
  json.AddScalar("tuples", static_cast<int64_t>(tuples));
  json.AddScalar("dims", static_cast<int64_t>(dims));
  json.AddScalar("queries", static_cast<int64_t>(queries));
  json.AddScalar("inserts", static_cast<int64_t>(inserts));

  const Workload workload =
      MakeWorkload(queries, inserts, dims, tuples, seed ^ 0xBE9C);

  TablePrinter table(
      {"tier", "shards", "q1_qps", "q1_vs_single", "q3_qps", "insert_per_s"});

  // Baseline: one plain SkycubeService, cache off, maintainer inserts.
  double single_q1 = 0;
  {
    SkycubeServiceOptions options;
    options.cache.capacity = 0;
    IncrementalCubeMaintainer maintainer(
        PaperSynthetic(distribution, tuples, dims, seed));
    MaintainerInsertHandler handler(&maintainer);
    SkycubeService service(std::make_shared<const CompressedSkylineCube>(
                               maintainer.MakeCube()),
                           options);
    service.AttachInsertHandler(&handler);
    const Cell cell = Measure(service, workload);
    single_q1 = cell.q1_qps;
    table.NewRow()
        .AddCell("single-node")
        .AddCell("-")
        .AddDouble(cell.q1_qps, 1)
        .AddDouble(1.0, 2)
        .AddDouble(cell.q3_qps, 1)
        .AddDouble(cell.insert_rate, 1);
  }

  for (const size_t num_shards : {1u, 2u, 4u, 8u}) {
    router::ShardedServiceOptions options;
    options.num_shards = num_shards;
    options.service.cache.capacity = 0;
    router::ShardedSkycubeService service(
        PaperSynthetic(distribution, tuples, dims, seed), options);
    const Cell cell = Measure(service, workload);
    table.NewRow()
        .AddCell("sharded")
        .AddInt(static_cast<int64_t>(num_shards))
        .AddDouble(cell.q1_qps, 1)
        .AddDouble(cell.q1_qps / single_q1, 2)
        .AddDouble(cell.q3_qps, 1)
        .AddDouble(cell.insert_rate, 1);
  }

  EmitTable(table);
  json.AddTable("shard_scaling", table);
  return 0;
}

}  // namespace
}  // namespace skycube::bench

int main(int argc, char** argv) {
  const skycube::FlagParser flags(argc, argv);
  return skycube::bench::Run(flags);
}
