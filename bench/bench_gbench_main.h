// Custom main() for the google-benchmark binaries that understands the
// repo-wide `--json[=PATH]` convention (see BenchJson in bench_common.h):
// it is rewritten into google-benchmark's native
// `--benchmark_out=PATH --benchmark_out_format=json` pair before
// Initialize, so perf-trajectory tooling can collect every bench binary's
// JSON the same way. `--json` alone defaults to BENCH_<name>.json in the
// working directory. All other flags pass through untouched.
#ifndef SKYCUBE_BENCH_BENCH_GBENCH_MAIN_H_
#define SKYCUBE_BENCH_BENCH_GBENCH_MAIN_H_

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

namespace skycube::bench {

inline int RunGoogleBenchMain(int argc, char** argv,
                              const std::string& bench_name) {
  std::vector<std::string> rewritten;
  rewritten.reserve(static_cast<size_t>(argc) + 2);
  rewritten.emplace_back(argv[0]);
  std::string json_path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else {
      rewritten.push_back(arg);
    }
  }
  if (json) {
    if (json_path.empty()) json_path = "BENCH_" + bench_name + ".json";
    rewritten.push_back("--benchmark_out=" + json_path);
    rewritten.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(rewritten.size());
  for (std::string& arg : rewritten) args.push_back(arg.data());
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace skycube::bench

#endif  // SKYCUBE_BENCH_BENCH_GBENCH_MAIN_H_
