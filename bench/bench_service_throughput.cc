// Closed-loop load generator for SkycubeService: N client threads issue a
// Zipf-skewed stream of queries against one shared service and we measure
// sustained QPS, per-request latency (p50/p95/p99) and cache behaviour,
// once with the result cache disabled and once warm — the speedup between
// the two is what materializing + memoizing the compressed cube buys a
// serving tier.
//
// Workload: the subspace of each query is drawn from a Zipf(theta)
// distribution over a seeded random permutation of all non-empty subspaces,
// approximating the "popular dashboards get most of the traffic" skew of a
// real analytics service.
//
// Flags:
//   --threads=N        client threads                     (default 4)
//   --requests=N       measured requests per thread       (default 5000)
//   --warmup=N         unmeasured requests per thread     (default requests/2)
//   --tuples=N --dims=D --dist=NAME --seed=S   dataset    (2000×8 independent)
//   --zipf-theta=T     skew exponent                      (default 1.1)
//   --cache-capacity=N result cache entries               (default 65536)
//   --batch=N          submit in batches of N via ExecuteBatch (default 1)
//   --mix=q1|mixed     pure Q1-skyline or an 80/10/8/2 Q1/card/Q2/Q3 mix
//   --full             paper-sized: 20000×10, 20000 requests/thread
//   --json[=PATH]      machine-readable BENCH_service_throughput.json
//   --overload         admission-control study instead: saturated (2x
//                      hardware) client load with and without a
//                      max-in-flight gate, reporting shed rate and the p99
//                      of *admitted* requests (cache disabled so every
//                      query does real work)
//   --write-ratio=P    durability study instead: mixed workload where P%
//                      of requests are INSERTs through a WAL-backed
//                      DurableIngest, run once per fsync policy
//                      (always/every/timer). Reports read and ingest
//                      latency separately plus WAL fsync counts — the cost
//                      of the durability guarantee, by policy.
//   --delete-ratio=P   with --write-ratio: P% of the write requests are
//                      DELETEs of random bootstrap rows instead of
//                      inserts, exercising the op-typed WAL delete path
//                      and result-cache invalidation under the same
//                      closed loop (streaming-ingest study)
//   --data-dir=PATH    scratch root for the --write-ratio study
//                      (default: system temp dir)
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "core/stellar.h"
#include "service/service.h"
#include "service/service_stats.h"
#include "storage/durable_ingest.h"

namespace skycube::bench {
namespace {

/// Zipf(theta) sampler over ranks [0, n): P(r) ∝ 1/(r+1)^theta, via a
/// precomputed CDF and binary search.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta) : cdf_(n) {
    double total = 0;
    for (size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), theta);
      cdf_[r] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

struct Workload {
  std::vector<DimMask> subspaces_by_rank;  // rank 0 = most popular
  ZipfSampler zipf;
  bool mixed = false;
  size_t num_objects = 0;
};

QueryRequest DrawRequest(const Workload& workload, Rng& rng) {
  const DimMask subspace =
      workload.subspaces_by_rank[workload.zipf.Sample(rng)];
  if (!workload.mixed) return QueryRequest::SubspaceSkyline(subspace);
  const uint64_t roll = rng.NextBounded(100);
  if (roll < 80) return QueryRequest::SubspaceSkyline(subspace);
  if (roll < 90) return QueryRequest::SkylineCardinality(subspace);
  const ObjectId object = static_cast<ObjectId>(
      rng.NextBounded(workload.num_objects));
  if (roll < 98) return QueryRequest::Membership(object, subspace);
  return QueryRequest::MembershipCount(object);
}

struct RunResult {
  double seconds = 0;
  uint64_t requests = 0;  // measured requests that produced an answer
  uint64_t shed = 0;      // measured requests answered kResourceExhausted
  // Client-side latency of the measured phase (ns), admitted requests only.
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  ServiceStats service;
};

/// One closed-loop run: `threads` clients, `warmup + requests` queries
/// each; only the last `requests` are timed and recorded. With
/// `allow_shed`, kResourceExhausted answers are counted instead of fatal
/// and excluded from the latency histogram (shed requests return in
/// microseconds — mixing them in would make an overloaded service look
/// *faster*).
RunResult RunClients(SkycubeService& service, const Workload& workload,
                     int threads, uint64_t warmup, uint64_t requests,
                     uint64_t seed, int batch, bool allow_shed = false) {
  RunResult result;
  LatencyHistogram latency;  // measured phase only, client-side
  std::atomic<uint64_t> shed{0};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(threads);
  WallTimer timer;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(seed + static_cast<uint64_t>(t) * 7919);
      auto account = [&](const QueryResponse& response, bool measured,
                         uint64_t nanos) {
        if (response.code == StatusCode::kResourceExhausted && allow_shed) {
          if (measured) shed.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
        if (measured && response.ok) latency.Record(nanos);
        return response.ok;
      };
      auto run_one = [&](bool measured) {
        if (batch <= 1) {
          const WallTimer request_timer;
          const QueryResponse response =
              service.Execute(DrawRequest(workload, rng));
          return account(response, measured,
                         static_cast<uint64_t>(
                             request_timer.ElapsedSeconds() * 1e9));
        }
        std::vector<QueryRequest> burst;
        burst.reserve(batch);
        for (int i = 0; i < batch; ++i) {
          burst.push_back(DrawRequest(workload, rng));
        }
        const WallTimer request_timer;
        const std::vector<QueryResponse> responses =
            service.ExecuteBatch(burst);
        // Attribute the batch latency to each request in it.
        const uint64_t nanos_each = static_cast<uint64_t>(
            request_timer.ElapsedSeconds() * 1e9 / batch);
        bool ok = true;
        for (const QueryResponse& response : responses) {
          ok &= account(response, measured, nanos_each);
        }
        return ok;
      };
      const uint64_t step = batch <= 1 ? 1 : static_cast<uint64_t>(batch);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t i = 0; i < warmup; i += step) run_one(false);
      for (uint64_t i = 0; i < requests; i += step) {
        if (!run_one(true)) {
          std::fprintf(stderr, "client %d: query failed\n", t);
          std::abort();
        }
      }
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  timer.Reset();
  go.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  result.seconds = timer.ElapsedSeconds();
  result.requests = latency.TotalCount();
  result.shed = shed.load();
  result.p50 = latency.PercentileNanos(0.50);
  result.p95 = latency.PercentileNanos(0.95);
  result.p99 = latency.PercentileNanos(0.99);
  result.service = service.stats();
  return result;
}

/// One mixed read/write closed-loop run for the durability study. Unlike
/// RunClients, read and insert latencies land in separate histograms: an
/// fsync-bound insert is orders of magnitude slower than a cached read and
/// would otherwise drown the read percentiles.
struct MixedResult {
  double seconds = 0;
  uint64_t reads = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t read_p50 = 0, read_p99 = 0;
  uint64_t insert_p50 = 0, insert_p99 = 0;
  uint64_t delete_p50 = 0, delete_p99 = 0;
  ServiceStats service;
};

MixedResult RunMixedClients(SkycubeService& service,
                            const Workload& workload, int threads,
                            uint64_t requests, int write_pct, int delete_pct,
                            int dims, uint64_t seed) {
  MixedResult result;
  LatencyHistogram read_latency;
  LatencyHistogram insert_latency;
  LatencyHistogram delete_latency;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  clients.reserve(threads);
  WallTimer timer;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(seed + static_cast<uint64_t>(t) * 104729);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t i = 0; i < requests; ++i) {
        const bool write =
            rng.NextBounded(100) < static_cast<uint64_t>(write_pct);
        const bool erase =
            write && rng.NextBounded(100) < static_cast<uint64_t>(delete_pct);
        QueryRequest request;
        if (erase) {
          // Random bootstrap row: a few land on already-tombstoned ids
          // (acked cheaply), most take a real WAL-logged delete path and
          // invalidate the result cache.
          request = QueryRequest::Delete(static_cast<ObjectId>(
              rng.NextBounded(workload.num_objects)));
        } else if (write) {
          // Coarse-grid rows away from the origin: mostly dominated
          // inserts (noop/extension paths), so ingest cost reflects the
          // WAL, not pathological recompute storms.
          request = QueryRequest::Insert({});
          request.values.resize(static_cast<size_t>(dims));
          for (double& v : request.values) {
            v = 0.2 + static_cast<double>(rng.NextBounded(50)) / 50.0;
          }
        } else {
          request = DrawRequest(workload, rng);
        }
        const WallTimer request_timer;
        const QueryResponse response = service.Execute(request);
        const uint64_t nanos =
            static_cast<uint64_t>(request_timer.ElapsedSeconds() * 1e9);
        if (!response.ok) {
          std::fprintf(stderr, "client %d: %s failed: %s\n", t,
                       erase ? "delete" : (write ? "insert" : "read"),
                       response.error.c_str());
          std::abort();
        }
        (erase ? delete_latency : write ? insert_latency : read_latency)
            .Record(nanos);
      }
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  timer.Reset();
  go.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  result.seconds = timer.ElapsedSeconds();
  result.reads = read_latency.TotalCount();
  result.inserts = insert_latency.TotalCount();
  result.deletes = delete_latency.TotalCount();
  result.read_p50 = read_latency.PercentileNanos(0.50);
  result.read_p99 = read_latency.PercentileNanos(0.99);
  result.insert_p50 = insert_latency.PercentileNanos(0.50);
  result.insert_p99 = insert_latency.PercentileNanos(0.99);
  result.delete_p50 = delete_latency.PercentileNanos(0.50);
  result.delete_p99 = delete_latency.PercentileNanos(0.99);
  result.service = service.stats();
  return result;
}

int Run(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const int threads = static_cast<int>(flags.GetInt("threads", 4));
  const uint64_t requests =
      static_cast<uint64_t>(flags.GetInt("requests", full ? 20000 : 5000));
  const uint64_t warmup =
      static_cast<uint64_t>(flags.GetInt("warmup", requests / 2));
  const size_t tuples =
      static_cast<size_t>(flags.GetInt("tuples", full ? 20000 : 2000));
  const int dims = static_cast<int>(flags.GetInt("dims", full ? 10 : 8));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const double theta = flags.GetDouble("zipf-theta", 1.1);
  const size_t cache_capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 1 << 16));
  const int batch = static_cast<int>(flags.GetInt("batch", 1));
  const bool mixed = flags.GetString("mix", "q1") == "mixed";
  PrintHeader("Service throughput: concurrent clients, Zipf-skewed "
              "subspace mix",
              full);
  BenchJson json(flags, "service_throughput");

  const Dataset data = PaperSynthetic(
      DistributionFromName(flags.GetString("dist", "independent")), tuples,
      dims, seed);
  WallTimer build_timer;
  auto cube = std::make_shared<const CompressedSkylineCube>(
      data.num_dims(), data.num_objects(), ComputeStellar(data));
  const double build_sec = build_timer.ElapsedSeconds();
  std::printf("data: %zu × %d, %zu groups (cube built in %.3f s)\n",
              data.num_objects(), data.num_dims(), cube->num_groups(),
              build_sec);
  std::printf("clients: %d threads × %llu requests (+%llu warmup), "
              "zipf theta %.2f, mix %s, batch %d\n\n",
              threads, static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(warmup), theta,
              mixed ? "mixed" : "q1", batch);

  // Popularity order: a seeded permutation of all non-empty subspaces.
  Workload workload{{}, ZipfSampler(FullMask(dims), theta), mixed,
                    data.num_objects()};
  workload.subspaces_by_rank.reserve(FullMask(dims));
  for (DimMask mask = 1; mask <= FullMask(dims); ++mask) {
    workload.subspaces_by_rank.push_back(mask);
  }
  Rng shuffle_rng(seed ^ 0xC0FFEE);
  for (size_t i = workload.subspaces_by_rank.size(); i > 1; --i) {
    std::swap(workload.subspaces_by_rank[i - 1],
              workload.subspaces_by_rank[shuffle_rng.NextBounded(i)]);
  }

  const int write_pct = static_cast<int>(flags.GetInt("write-ratio", 0));
  const int delete_pct = static_cast<int>(flags.GetInt("delete-ratio", 0));
  if (write_pct > 0) {
    // Durability study: the same closed loop, but write_pct% of requests
    // are mutations acked only after a WAL append — inserts, and with
    // --delete-ratio, a slice of op-typed deletes. One run per fsync
    // policy; the delta in mutation p50/p99 is the price of each
    // durability level.
    const std::string data_root = flags.GetString(
        "data-dir", std::filesystem::temp_directory_path().string());
    const uint64_t mixed_requests =
        static_cast<uint64_t>(flags.GetInt("requests", full ? 4000 : 1000));
    TablePrinter table({"policy", "reads", "inserts", "deletes", "seconds",
                        "qps", "read_p50_us", "read_p99_us", "ins_p50_us",
                        "ins_p99_us", "del_p50_us", "del_p99_us", "fsyncs",
                        "ckpts", "hit_rate"});
    for (const char* policy_name : {"always", "every", "timer"}) {
      const std::string dir = data_root + "/bench_ingest_" + policy_name;
      std::filesystem::remove_all(dir);
      DurableIngestOptions ingest_options;
      const Result<FsyncPolicy> policy = FsyncPolicyFromName(policy_name);
      if (!policy.ok()) {
        std::fprintf(stderr, "bad policy %s\n", policy_name);
        return 1;
      }
      ingest_options.wal.fsync_policy = policy.value();
      ingest_options.checkpoint_every = 512;
      Result<std::unique_ptr<DurableIngest>> ingest =
          DurableIngest::Open(dir, &data, ingest_options);
      if (!ingest.ok()) {
        std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                     ingest.status().ToString().c_str());
        return 1;
      }
      SkycubeServiceOptions options;
      options.cache.capacity = cache_capacity;
      options.batch_threads = threads;
      SkycubeService service(cube, options);
      service.AttachInsertHandler(ingest.value().get());
      const MixedResult run = RunMixedClients(
          service, workload, threads, mixed_requests, write_pct, delete_pct,
          dims, seed + static_cast<uint64_t>(policy.value()));
      const DurableIngestStats stats = ingest.value()->stats();
      table.NewRow()
          .AddCell(policy_name)
          .AddInt(static_cast<int64_t>(run.reads))
          .AddInt(static_cast<int64_t>(run.inserts))
          .AddInt(static_cast<int64_t>(run.deletes))
          .AddDouble(run.seconds, 3)
          .AddDouble(static_cast<double>(run.reads + run.inserts +
                                         run.deletes) /
                         run.seconds,
                     0)
          .AddDouble(static_cast<double>(run.read_p50) / 1e3, 2)
          .AddDouble(static_cast<double>(run.read_p99) / 1e3, 2)
          .AddDouble(static_cast<double>(run.insert_p50) / 1e3, 2)
          .AddDouble(static_cast<double>(run.insert_p99) / 1e3, 2)
          .AddDouble(static_cast<double>(run.delete_p50) / 1e3, 2)
          .AddDouble(static_cast<double>(run.delete_p99) / 1e3, 2)
          .AddInt(static_cast<int64_t>(stats.wal.fsyncs))
          .AddInt(static_cast<int64_t>(stats.checkpoints_written))
          .AddDouble(run.service.cache_hit_rate, 3);
      if (!ingest.value()->Drain().ok()) {
        std::fprintf(stderr, "drain failed for %s\n", policy_name);
        return 1;
      }
      std::filesystem::remove_all(dir);
    }
    EmitTable(table);
    json.AddTable(delete_pct > 0 ? "streaming_ingest" : "ingest_durability",
                  table);
    json.AddScalar("write_ratio_pct", static_cast<int64_t>(write_pct));
    json.AddScalar("delete_ratio_pct", static_cast<int64_t>(delete_pct));
    std::printf("expected shape: fsync=always pays per-record fsync cost "
                "on every mutation ack; every/timer amortize it, trading "
                "bounded loss windows for ingest latency. Read "
                "percentiles stay flat: reads never block on the WAL.%s\n",
                delete_pct > 0
                    ? " Deletes pay the same WAL ack plus cache "
                      "invalidation, so the hit rate dips versus the "
                      "insert-only run."
                    : "");
    return 0;
  }

  if (flags.GetBool("overload", false)) {
    // Admission-control study. Three closed-loop runs, cache disabled so
    // every request traverses the cube: an unsaturated baseline, 2x
    // saturation ungated, and 2x saturation behind a max-in-flight gate.
    // The claim under test: with the gate, the p99 of *admitted* requests
    // under 2x saturation stays within 2x of the unsaturated p99 (the
    // excess load is shed instead of queueing in front of everyone).
    const int hw = std::max(
        2, static_cast<int>(std::thread::hardware_concurrency()));
    struct Config {
      const char* name;
      int threads;
      size_t max_in_flight;
    };
    const Config configs[] = {
        {"baseline-1x", hw, 0},
        {"saturated-2x-nogate", 2 * hw, 0},
        {"saturated-2x-gate", 2 * hw, static_cast<size_t>(hw)},
    };
    TablePrinter table({"config", "threads", "gate", "admitted", "shed",
                        "shed_rate", "seconds", "qps", "p50_us", "p95_us",
                        "p99_us"});
    double p99_us[3] = {0, 0, 0};
    double shed_rate[3] = {0, 0, 0};
    int row = 0;
    for (const Config& config : configs) {
      SkycubeServiceOptions options;
      options.cache.capacity = 0;
      options.batch_threads = hw;
      options.max_in_flight = config.max_in_flight;
      SkycubeService service(cube, options);
      const RunResult run =
          RunClients(service, workload, config.threads, warmup, requests,
                     seed + static_cast<uint64_t>(row), batch,
                     /*allow_shed=*/true);
      const uint64_t issued = run.requests + run.shed;
      shed_rate[row] = issued == 0 ? 0
                                   : static_cast<double>(run.shed) /
                                         static_cast<double>(issued);
      p99_us[row] = static_cast<double>(run.p99) / 1e3;
      table.NewRow()
          .AddCell(config.name)
          .AddInt(config.threads)
          .AddInt(static_cast<int64_t>(config.max_in_flight))
          .AddInt(static_cast<int64_t>(run.requests))
          .AddInt(static_cast<int64_t>(run.shed))
          .AddDouble(shed_rate[row], 3)
          .AddDouble(run.seconds, 3)
          .AddDouble(static_cast<double>(run.requests) / run.seconds, 0)
          .AddDouble(static_cast<double>(run.p50) / 1e3, 2)
          .AddDouble(static_cast<double>(run.p95) / 1e3, 2)
          .AddDouble(p99_us[row], 2);
      ++row;
    }
    EmitTable(table);
    json.AddTable("overload", table);
    const double gated_ratio =
        p99_us[0] > 0 ? p99_us[2] / p99_us[0] : 0;
    const double ungated_ratio =
        p99_us[0] > 0 ? p99_us[1] / p99_us[0] : 0;
    std::printf("admitted p99 at 2x saturation: %.2fx baseline with the "
                "gate (%.1f%% shed), %.2fx without\n",
                gated_ratio, 100 * shed_rate[2], ungated_ratio);
    json.AddScalar("overload_threads_baseline", static_cast<int64_t>(hw));
    json.AddScalar("p99_us_baseline", p99_us[0]);
    json.AddScalar("p99_us_2x_nogate", p99_us[1]);
    json.AddScalar("p99_us_2x_gate", p99_us[2]);
    json.AddScalar("p99_ratio_2x_gate", gated_ratio);
    json.AddScalar("p99_ratio_2x_nogate", ungated_ratio);
    json.AddScalar("shed_rate_2x_gate", shed_rate[2]);
    std::printf("expected shape: the gate sheds the excess instead of "
                "queueing it, holding the admitted p99 within ~2x of the "
                "unsaturated baseline.\n");
    return 0;
  }

  TablePrinter table({"config", "threads", "requests", "seconds", "qps",
                      "p50_us", "p95_us", "p99_us", "hit_rate",
                      "cache_entries", "evictions"});
  double qps[2] = {0, 0};
  for (const bool cached : {false, true}) {
    SkycubeServiceOptions options;
    options.cache.capacity = cached ? cache_capacity : 0;
    options.batch_threads = threads;
    SkycubeService service(cube, options);
    const RunResult run = RunClients(service, workload, threads, warmup,
                                     requests, seed + (cached ? 1 : 0),
                                     batch);
    qps[cached ? 1 : 0] =
        static_cast<double>(run.requests) / run.seconds;
    table.NewRow()
        .AddCell(cached ? "cache" : "no-cache")
        .AddInt(threads)
        .AddInt(static_cast<int64_t>(run.requests))
        .AddDouble(run.seconds, 3)
        .AddDouble(qps[cached ? 1 : 0], 0)
        .AddDouble(static_cast<double>(run.p50) / 1e3, 2)
        .AddDouble(static_cast<double>(run.p95) / 1e3, 2)
        .AddDouble(static_cast<double>(run.p99) / 1e3, 2)
        .AddDouble(run.service.cache_hit_rate, 3)
        .AddInt(static_cast<int64_t>(run.service.cache_entries))
        .AddInt(static_cast<int64_t>(run.service.cache_evictions));
  }
  EmitTable(table);
  json.AddTable("throughput", table);

  const double speedup = qps[0] > 0 ? qps[1] / qps[0] : 0;
  std::printf("warm-cache speedup over no-cache: %.1fx\n", speedup);
  json.AddScalar("threads", static_cast<int64_t>(threads));
  json.AddScalar("zipf_theta", theta);
  json.AddScalar("mix", std::string(mixed ? "mixed" : "q1"));
  json.AddScalar("build_seconds", build_sec);
  json.AddScalar("qps_no_cache", qps[0]);
  json.AddScalar("qps_cache", qps[1]);
  json.AddScalar("speedup", speedup);
  std::printf("expected shape: warm Zipf-skewed traffic is served almost "
              "entirely from the cache; ≥5x the no-cache throughput.\n");
  return 0;
}

}  // namespace
}  // namespace skycube::bench

int main(int argc, char** argv) {
  return skycube::bench::Run(argc, argv);
}
