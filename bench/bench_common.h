// Shared helpers for the figure-reproduction harnesses.
//
// Every harness prints (a) a human-readable aligned table and (b) a
// gnuplot-ready TSV block, containing the same rows/series as the paper's
// figure. Default parameters are CI-friendly scaled-down versions of the
// paper's workloads; pass --full for the paper-sized sweep (see
// EXPERIMENTS.md for both sets of results).
#ifndef SKYCUBE_BENCH_BENCH_COMMON_H_
#define SKYCUBE_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "datagen/nba_like.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"

namespace skycube::bench {

/// The paper's synthetic workload: Börzsönyi generator + 4-decimal
/// truncation (§6.2).
inline Dataset PaperSynthetic(Distribution distribution, size_t num_objects,
                              int num_dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = distribution;
  spec.num_objects = num_objects;
  spec.num_dims = num_dims;
  spec.seed = seed;
  spec.truncate_decimals = 4;
  return GenerateSynthetic(spec);
}

/// The NBA-like table in algorithm convention (smaller is better).
inline Dataset PaperNba(uint64_t seed = 2007) {
  return GenerateNbaLike(kNbaLikeDefaultPlayers, seed).Negated();
}

/// Times one invocation of `fn` in seconds.
template <typename Fn>
double TimeIt(Fn&& fn) {
  WallTimer timer;
  fn();
  return timer.ElapsedSeconds();
}

/// Standard header line for a harness.
inline void PrintHeader(const std::string& title, bool full) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("mode: %s (pass --full for the paper-sized sweep)\n\n",
              full ? "FULL (paper-sized)" : "default (CI-scaled)");
}

/// Emits the table twice: aligned for humans, TSV for gnuplot.
inline void EmitTable(const TablePrinter& table) {
  table.Print(std::cout);
  std::printf("\n-- TSV --\n");
  table.PrintTsv(std::cout);
  std::printf("\n");
}

}  // namespace skycube::bench

#endif  // SKYCUBE_BENCH_BENCH_COMMON_H_
