// Shared helpers for the figure-reproduction harnesses.
//
// Every harness prints (a) a human-readable aligned table and (b) a
// gnuplot-ready TSV block, containing the same rows/series as the paper's
// figure, and (c) with --json[=PATH], a machine-readable JSON record of the
// same tables (BenchJson) for perf-trajectory tooling. Default parameters
// are CI-friendly scaled-down versions of the paper's workloads; pass
// --full for the paper-sized sweep (see EXPERIMENTS.md for both sets of
// results).
#ifndef SKYCUBE_BENCH_BENCH_COMMON_H_
#define SKYCUBE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "datagen/nba_like.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"

namespace skycube::bench {

/// The paper's synthetic workload: Börzsönyi generator + 4-decimal
/// truncation (§6.2).
inline Dataset PaperSynthetic(Distribution distribution, size_t num_objects,
                              int num_dims, uint64_t seed) {
  SyntheticSpec spec;
  spec.distribution = distribution;
  spec.num_objects = num_objects;
  spec.num_dims = num_dims;
  spec.seed = seed;
  spec.truncate_decimals = 4;
  return GenerateSynthetic(spec);
}

/// The NBA-like table in algorithm convention (smaller is better).
inline Dataset PaperNba(uint64_t seed = 2007) {
  return GenerateNbaLike(kNbaLikeDefaultPlayers, seed).Negated();
}

/// Times one invocation of `fn` in seconds.
template <typename Fn>
double TimeIt(Fn&& fn) {
  WallTimer timer;
  fn();
  return timer.ElapsedSeconds();
}

/// Standard header line for a harness.
inline void PrintHeader(const std::string& title, bool full) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("mode: %s (pass --full for the paper-sized sweep)\n\n",
              full ? "FULL (paper-sized)" : "default (CI-scaled)");
}

/// Emits the table twice: aligned for humans, TSV for gnuplot.
inline void EmitTable(const TablePrinter& table) {
  table.Print(std::cout);
  std::printf("\n-- TSV --\n");
  table.PrintTsv(std::cout);
  std::printf("\n");
}

/// Machine-readable run record. Collects the harness's tables and scalar
/// metadata and writes them as one JSON file when --json[=PATH] was passed
/// (`--json` alone defaults to BENCH_<name>.json in the working directory);
/// every method is a no-op otherwise, so harnesses call it unconditionally.
///
/// Shape: {"bench": ..., "scalars": {...},
///         "tables": {name: {"columns": [...], "rows": [[...], ...]}}}.
/// Numeric-looking cells are emitted as bare JSON numbers.
class BenchJson {
 public:
  BenchJson(const FlagParser& flags, std::string bench_name)
      : name_(std::move(bench_name)) {
    if (!flags.Has("json")) return;
    path_ = flags.GetString("json", "");
    if (path_.empty() || path_ == "true") path_ = "BENCH_" + name_ + ".json";
  }

  ~BenchJson() { Write(); }

  bool enabled() const { return !path_.empty(); }

  void AddScalar(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    scalars_.emplace_back(key, os.str());
  }
  void AddScalar(const std::string& key, int64_t value) {
    scalars_.emplace_back(key, std::to_string(value));
  }
  void AddScalar(const std::string& key, const std::string& value) {
    scalars_.emplace_back(key, Quote(value));
  }

  void AddTable(const std::string& table_name, const TablePrinter& table) {
    if (!enabled()) return;
    std::ostringstream os;
    os << "{\"columns\": [";
    const auto& headers = table.headers();
    for (size_t i = 0; i < headers.size(); ++i) {
      os << (i == 0 ? "" : ", ") << Quote(headers[i]);
    }
    os << "], \"rows\": [";
    const auto& rows = table.rows();
    for (size_t r = 0; r < rows.size(); ++r) {
      os << (r == 0 ? "" : ", ") << "[";
      for (size_t c = 0; c < rows[r].size(); ++c) {
        os << (c == 0 ? "" : ", ") << Cell(rows[r][c]);
      }
      os << "]";
    }
    os << "]}";
    tables_.emplace_back(table_name, os.str());
  }

  /// Writes the file (idempotent; also invoked by the destructor).
  void Write() {
    if (!enabled() || written_) return;
    written_ = true;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write --json file %s\n",
                   path_.c_str());
      return;
    }
    out << "{\n  \"bench\": " << Quote(name_) << ",\n  \"scalars\": {";
    for (size_t i = 0; i < scalars_.size(); ++i) {
      out << (i == 0 ? "" : ", ") << Quote(scalars_[i].first) << ": "
          << scalars_[i].second;
    }
    out << "},\n  \"tables\": {";
    for (size_t i = 0; i < tables_.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\n    " << Quote(tables_[i].first)
          << ": " << tables_[i].second;
    }
    out << "\n  }\n}\n";
    std::printf("json record written to %s\n", path_.c_str());
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }

  /// Numeric-looking cells become bare numbers; everything else a string.
  static std::string Cell(const std::string& s) {
    if (!s.empty()) {
      char* end = nullptr;
      std::strtod(s.c_str(), &end);
      if (end == s.c_str() + s.size()) return s;
    }
    return Quote(s);
  }

  std::string name_;
  std::string path_;  // empty = disabled
  bool written_ = false;
  std::vector<std::pair<std::string, std::string>> scalars_;
  std::vector<std::pair<std::string, std::string>> tables_;
};

}  // namespace skycube::bench

#endif  // SKYCUBE_BENCH_BENCH_COMMON_H_
