// google-benchmark microbenchmarks of the query layer: answering the
// paper's Q1/Q2 queries from the compressed cube vs recomputing from the
// raw data — the materialization-pays-off claim behind the whole approach.
#include <benchmark/benchmark.h>

#include "bench/bench_gbench_main.h"
#include "common/rng.h"
#include "core/cube.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "skyline/algorithms.h"

namespace skycube {
namespace {

constexpr size_t kTuples = 50000;
constexpr int kDims = 8;

const Dataset& SharedData() {
  static const Dataset& data = *new Dataset([] {
    SyntheticSpec spec;
    spec.distribution = Distribution::kCorrelated;
    spec.num_objects = kTuples;
    spec.num_dims = kDims;
    spec.seed = 7;
    spec.truncate_decimals = 4;
    return GenerateSynthetic(spec);
  }());
  return data;
}

const CompressedSkylineCube& SharedCube() {
  static const CompressedSkylineCube& cube = *new CompressedSkylineCube(
      kDims, SharedData().num_objects(), ComputeStellar(SharedData()));
  return cube;
}

DimMask RandomSubspace(Rng& rng) {
  DimMask mask = 0;
  while (mask == 0) mask = rng.NextBounded(FullMask(kDims)) + 1;
  return mask;
}

void BM_Q1_FromCube(benchmark::State& state) {
  const CompressedSkylineCube& cube = SharedCube();
  Rng rng(3);
  for (auto _ : state) {
    std::vector<ObjectId> skyline = cube.SubspaceSkyline(RandomSubspace(rng));
    benchmark::DoNotOptimize(skyline);
  }
}
BENCHMARK(BM_Q1_FromCube)->Unit(benchmark::kMicrosecond);

void BM_Q1_RecomputeSfs(benchmark::State& state) {
  const Dataset& data = SharedData();
  SharedCube();  // exclude cube construction from timing symmetry
  Rng rng(3);
  for (auto _ : state) {
    std::vector<ObjectId> skyline =
        ComputeSkyline(data, RandomSubspace(rng));
    benchmark::DoNotOptimize(skyline);
  }
}
BENCHMARK(BM_Q1_RecomputeSfs)->Unit(benchmark::kMicrosecond);

void BM_Q2_MembershipFromCube(benchmark::State& state) {
  const CompressedSkylineCube& cube = SharedCube();
  Rng rng(5);
  for (auto _ : state) {
    const ObjectId id = static_cast<ObjectId>(rng.NextBounded(kTuples));
    benchmark::DoNotOptimize(
        cube.IsInSubspaceSkyline(id, RandomSubspace(rng)));
  }
}
BENCHMARK(BM_Q2_MembershipFromCube)->Unit(benchmark::kMicrosecond);

void BM_Q2_CountSubspacesFromCube(benchmark::State& state) {
  const CompressedSkylineCube& cube = SharedCube();
  Rng rng(9);
  for (auto _ : state) {
    const ObjectId id = static_cast<ObjectId>(rng.NextBounded(kTuples));
    benchmark::DoNotOptimize(cube.CountSubspacesWhereSkyline(id));
  }
}
BENCHMARK(BM_Q2_CountSubspacesFromCube)->Unit(benchmark::kMicrosecond);

void BM_CubeConstruction_Stellar(benchmark::State& state) {
  const Dataset& data = SharedData();
  for (auto _ : state) {
    SkylineGroupSet groups = ComputeStellar(data);
    benchmark::DoNotOptimize(groups);
  }
}
BENCHMARK(BM_CubeConstruction_Stellar)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace skycube

int main(int argc, char** argv) {
  return skycube::bench::RunGoogleBenchMain(argc, argv, "cube_queries");
}
