// google-benchmark microbenchmarks of the single-space skyline substrate:
// BNL vs SFS vs D&C vs LESS across the three distributions and sizes, and
// the Ranked* columnar fast paths against their scalar twins.
// (Substrate ablation — the related-work algorithms the paper builds on.)
#include <benchmark/benchmark.h>

#include "bench/bench_gbench_main.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "dataset/ranked_view.h"
#include "skyline/algorithms.h"

namespace skycube {
namespace {

Dataset MakeData(Distribution distribution, size_t n, int d) {
  SyntheticSpec spec;
  spec.distribution = distribution;
  spec.num_objects = n;
  spec.num_dims = d;
  spec.seed = 42;
  spec.truncate_decimals = 4;
  return GenerateSynthetic(spec);
}

void RunSkyline(benchmark::State& state, Distribution distribution,
                SkylineAlgorithm algorithm) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Dataset data = MakeData(distribution, n, d);
  size_t skyline_size = 0;
  for (auto _ : state) {
    std::vector<ObjectId> skyline =
        ComputeSkyline(data, data.full_mask(), algorithm);
    skyline_size = skyline.size();
    benchmark::DoNotOptimize(skyline);
  }
  state.counters["skyline"] = static_cast<double>(skyline_size);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

// Ranked twin: the RankedView is built once per dataset outside the timed
// region (that is how the pipelines amortize it); BM_RankedViewBuild below
// prices the construction itself.
void RunSkylineRanked(benchmark::State& state, Distribution distribution,
                      SkylineAlgorithm algorithm) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Dataset data = MakeData(distribution, n, d);
  const RankedView view(data);
  size_t skyline_size = 0;
  for (auto _ : state) {
    std::vector<ObjectId> skyline =
        ComputeSkylineRanked(view, data.full_mask(), algorithm);
    skyline_size = skyline.size();
    benchmark::DoNotOptimize(skyline);
  }
  state.counters["skyline"] = static_cast<double>(skyline_size);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}

void BM_RankedViewBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int d = static_cast<int>(state.range(1));
  const Dataset data = MakeData(Distribution::kIndependent, n, d);
  for (auto _ : state) {
    RankedView view(data);
    benchmark::DoNotOptimize(view);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_RankedViewBuild)
    ->Args({10000, 4})
    ->Args({50000, 4})
    ->Args({10000, 8})
    ->Unit(benchmark::kMillisecond);

#define SKYCUBE_BENCH(dist_name, dist, algo_name, algo)             \
  void BM_##dist_name##_##algo_name(benchmark::State& state) {      \
    RunSkyline(state, dist, algo);                                  \
  }                                                                 \
  BENCHMARK(BM_##dist_name##_##algo_name)                           \
      ->Args({10000, 4})                                            \
      ->Args({50000, 4})                                            \
      ->Args({10000, 8})                                            \
      ->Unit(benchmark::kMillisecond)

#define SKYCUBE_BENCH_RANKED(dist_name, dist, algo_name, algo)        \
  void BM_##dist_name##_Ranked##algo_name(benchmark::State& state) {  \
    RunSkylineRanked(state, dist, algo);                              \
  }                                                                   \
  BENCHMARK(BM_##dist_name##_Ranked##algo_name)                       \
      ->Args({10000, 4})                                              \
      ->Args({50000, 4})                                              \
      ->Args({10000, 8})                                              \
      ->Unit(benchmark::kMillisecond)

SKYCUBE_BENCH_RANKED(Correlated, Distribution::kCorrelated, Bnl,
                     SkylineAlgorithm::kBlockNestedLoops);
SKYCUBE_BENCH_RANKED(Correlated, Distribution::kCorrelated, Sfs,
                     SkylineAlgorithm::kSortFilterSkyline);
SKYCUBE_BENCH_RANKED(Independent, Distribution::kIndependent, Bnl,
                     SkylineAlgorithm::kBlockNestedLoops);
SKYCUBE_BENCH_RANKED(Independent, Distribution::kIndependent, Sfs,
                     SkylineAlgorithm::kSortFilterSkyline);
SKYCUBE_BENCH_RANKED(AntiCorrelated, Distribution::kAntiCorrelated, Bnl,
                     SkylineAlgorithm::kBlockNestedLoops);
SKYCUBE_BENCH_RANKED(AntiCorrelated, Distribution::kAntiCorrelated, Sfs,
                     SkylineAlgorithm::kSortFilterSkyline);

SKYCUBE_BENCH(Correlated, Distribution::kCorrelated, Bnl,
              SkylineAlgorithm::kBlockNestedLoops);
SKYCUBE_BENCH(Correlated, Distribution::kCorrelated, Sfs,
              SkylineAlgorithm::kSortFilterSkyline);
SKYCUBE_BENCH(Correlated, Distribution::kCorrelated, Dnc,
              SkylineAlgorithm::kDivideAndConquer);
SKYCUBE_BENCH(Correlated, Distribution::kCorrelated, Less,
              SkylineAlgorithm::kLess);
SKYCUBE_BENCH(Correlated, Distribution::kCorrelated, Index,
              SkylineAlgorithm::kIndex);
SKYCUBE_BENCH(Correlated, Distribution::kCorrelated, Bitmap,
              SkylineAlgorithm::kBitmap);
SKYCUBE_BENCH(Correlated, Distribution::kCorrelated, Bbs,
              SkylineAlgorithm::kBbs);
SKYCUBE_BENCH(Independent, Distribution::kIndependent, Bnl,
              SkylineAlgorithm::kBlockNestedLoops);
SKYCUBE_BENCH(Independent, Distribution::kIndependent, Sfs,
              SkylineAlgorithm::kSortFilterSkyline);
SKYCUBE_BENCH(Independent, Distribution::kIndependent, Dnc,
              SkylineAlgorithm::kDivideAndConquer);
SKYCUBE_BENCH(Independent, Distribution::kIndependent, Less,
              SkylineAlgorithm::kLess);
SKYCUBE_BENCH(Independent, Distribution::kIndependent, Index,
              SkylineAlgorithm::kIndex);
SKYCUBE_BENCH(AntiCorrelated, Distribution::kAntiCorrelated, Bnl,
              SkylineAlgorithm::kBlockNestedLoops);
SKYCUBE_BENCH(AntiCorrelated, Distribution::kAntiCorrelated, Sfs,
              SkylineAlgorithm::kSortFilterSkyline);
SKYCUBE_BENCH(AntiCorrelated, Distribution::kAntiCorrelated, Dnc,
              SkylineAlgorithm::kDivideAndConquer);
SKYCUBE_BENCH(AntiCorrelated, Distribution::kAntiCorrelated, Less,
              SkylineAlgorithm::kLess);
SKYCUBE_BENCH(AntiCorrelated, Distribution::kAntiCorrelated, Index,
              SkylineAlgorithm::kIndex);
SKYCUBE_BENCH(AntiCorrelated, Distribution::kAntiCorrelated, Bbs,
              SkylineAlgorithm::kBbs);

}  // namespace
}  // namespace skycube

int main(int argc, char** argv) {
  return skycube::bench::RunGoogleBenchMain(argc, argv, "skyline_algos");
}
