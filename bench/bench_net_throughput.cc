// bench_net_throughput — loopback throughput/latency of the binary network
// server (src/net/, docs/NET.md) against the in-process Execute() path.
//
// Phases:
//   1  in-process baseline: cached cardinality queries straight into
//      SkycubeService::Execute on this thread — the floor the wire path is
//      compared against (the "within 2x" budget of ROADMAP item 2);
//   2  loopback sweep: a forked child process runs a real NetServer; this
//      process drives C concurrent connections with P-deep pipelines from a
//      single epoll client loop and measures RPS and end-to-end p50/p95/p99
//      (the fork is load-bearing: the container's fd ceiling is 20000, so
//      10k client sockets and 10k server sockets must live in different
//      processes);
//   3  overload: a second child with a tiny dispatch queue and admission
//      gate, driven past saturation — sheds must come back as explicit
//      kResourceExhausted response frames (never silent drops or stalls),
//      while admitted requests still complete.
//
// Flags: --connections=1,64,1024[,...]  sweep rows
//        --requests=N      total requests per sweep row
//        --pipeline=P      pipelined requests per connection
//        --tuples/--dims/--seed  synthetic dataset (both processes)
//        --overload=0      skip phase 3
//        --full            paper-sized sweep (adds the 10k-connection row)
//        --json[=PATH]     machine-readable record
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/flags.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/cube.h"
#include "core/maintenance.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/ingest.h"
#include "service/request.h"
#include "service/service.h"

namespace skycube::bench {
namespace {

volatile sig_atomic_t g_child_term = 0;
void OnChildTerm(int) { g_child_term = 1; }

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Offsets into a kResponse payload (see EncodeResponse): the client loop
/// reads the status and cache-hit bytes directly instead of paying
/// ParseResponse per frame — this process shares one core with the server,
/// so client-side decode cost would otherwise show up in the numbers.
constexpr size_t kStatusByte = 10;
constexpr size_t kCacheHitByte = 11;

Dataset BenchData(const FlagParser& flags) {
  return PaperSynthetic(Distribution::kIndependent,
                        static_cast<size_t>(flags.GetInt("tuples", 2000)),
                        static_cast<int>(flags.GetInt("dims", 6)),
                        static_cast<uint64_t>(flags.GetInt("seed", 42)));
}

// --- Server child ---------------------------------------------------------

struct ChildServer {
  pid_t pid = -1;
  uint16_t port = 0;
};

/// The forked server body: builds its own cube + service + NetServer,
/// reports the bound port through `port_fd`, serves until SIGTERM, drains,
/// and exits without returning.
[[noreturn]] void RunServerChild(int port_fd, const FlagParser& flags,
                                 bool overload) {
  signal(SIGTERM, OnChildTerm);
  Dataset data = BenchData(flags);
  IncrementalCubeMaintainer maintainer(std::move(data));
  MaintainerInsertHandler handler(&maintainer);
  auto cube =
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube());

  SkycubeServiceOptions service_options;
  net::NetServerOptions net_options;
  if (overload) {
    // Every layer of backpressure squeezed down so saturation is cheap to
    // reach: no cache (every query computes), one dispatch worker, a
    // near-empty dispatch queue, and an admission gate behind it.
    service_options.cache.capacity = 0;
    service_options.max_in_flight = 4;
    service_options.queue_wait_timeout = std::chrono::milliseconds(0);
    net_options.dispatch_threads = 1;
    net_options.dispatch_queue_capacity = 8;
  }
  SkycubeService service(cube, service_options);
  service.AttachInsertHandler(&handler);

  net_options.port = 0;
  net::NetServer server(&service, net_options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "bench server child: %s\n",
                 started.ToString().c_str());
    _exit(3);
  }
  const uint16_t port = server.port();
  if (write(port_fd, &port, sizeof(port)) != ssize_t(sizeof(port))) _exit(3);
  close(port_fd);

  server.Run([&server] { if (g_child_term != 0) server.BeginDrain(); },
             /*tick_millis=*/50);
  service.BeginDrain();
  _exit(0);
}

/// Forks the server child *before this process creates any threads* and
/// reads the ephemeral port it bound.
ChildServer SpawnServer(const FlagParser& flags, bool overload) {
  int port_pipe[2];
  if (pipe(port_pipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    close(port_pipe[0]);
    RunServerChild(port_pipe[1], flags, overload);
  }
  close(port_pipe[1]);
  ChildServer child;
  child.pid = pid;
  uint16_t port = 0;
  if (read(port_pipe[0], &port, sizeof(port)) != ssize_t(sizeof(port))) {
    std::fprintf(stderr, "bench: server child died before binding\n");
    std::exit(1);
  }
  close(port_pipe[0]);
  child.port = port;
  return child;
}

int StopServer(ChildServer* child) {
  kill(child->pid, SIGTERM);
  int status = 0;
  waitpid(child->pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// --- Epoll client driver --------------------------------------------------

struct Conn {
  int fd = -1;
  net::FrameDecoder decoder{size_t{1} << 20};
  std::string outbound;
  size_t out_off = 0;
  std::vector<double> send_times;  // per queued request; head = next unanswered
  size_t head = 0;
  uint32_t sent = 0;
  uint32_t received = 0;
  bool want_write = false;
  bool done = false;
};

struct DriveResult {
  bool failed = false;
  std::string error;
  double seconds = 0;
  uint64_t responses = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;        // kResourceExhausted
  uint64_t deadline = 0;    // kDeadlineExceeded
  uint64_t other_error = 0;
  uint64_t cache_hits = 0;
  std::vector<double> latencies;           // every response, seconds
  std::vector<double> admitted_latencies;  // kOk responses only
};

DriveResult Fail(DriveResult result, std::string error) {
  result.failed = true;
  result.error = std::move(error);
  return result;
}

/// Drives `conns` connections of `per_conn` copies of `frame`, at most
/// `pipeline` unanswered per connection, from one nonblocking epoll loop.
DriveResult DriveLoad(uint16_t port, size_t conns, uint32_t per_conn,
                      uint32_t pipeline, const std::string& frame) {
  DriveResult result;
  result.latencies.reserve(conns * per_conn);

  const int epfd = epoll_create1(0);
  if (epfd < 0) return Fail(std::move(result), "epoll_create1 failed");
  std::vector<Conn> pool(conns);
  std::vector<struct epoll_event> events(1024);

  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  // Connect in waves so the listener's backlog is never outrun. SOCK_NONBLOCK
  // at socket creation; connection completion = EPOLLOUT with SO_ERROR 0.
  constexpr size_t kWave = 512;
  for (size_t base = 0; base < conns; base += kWave) {
    const size_t wave_end = std::min(conns, base + kWave);
    size_t pending = 0;
    for (size_t i = base; i < wave_end; ++i) {
      Conn& conn = pool[i];
      conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
      if (conn.fd < 0) {
        return Fail(std::move(result),
                    "socket: " + std::string(std::strerror(errno)));
      }
      int one = 1;
      (void)::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const int rc = ::connect(
          conn.fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
      if (rc != 0 && errno != EINPROGRESS) {
        return Fail(std::move(result),
                    "connect: " + std::string(std::strerror(errno)));
      }
      struct epoll_event ev = {};
      ev.events = EPOLLOUT;
      ev.data.u64 = i;
      if (epoll_ctl(epfd, EPOLL_CTL_ADD, conn.fd, &ev) != 0) {
        return Fail(std::move(result), "epoll_ctl add failed");
      }
      ++pending;
    }
    while (pending > 0) {
      const int n = epoll_wait(epfd, events.data(),
                               static_cast<int>(events.size()), 30000);
      if (n <= 0) return Fail(std::move(result), "connect wave stalled");
      for (int e = 0; e < n; ++e) {
        Conn& conn = pool[events[e].data.u64];
        int err = 0;
        socklen_t len = sizeof(err);
        (void)::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          return Fail(std::move(result),
                      "connect: " + std::string(std::strerror(err)));
        }
        // Connected; park it (no events) until the measured phase starts.
        struct epoll_event ev = {};
        ev.data.u64 = events[e].data.u64;
        if (epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev) != 0) {
          return Fail(std::move(result), "epoll_ctl mod failed");
        }
        --pending;
      }
    }
  }

  // Measured phase: prime every pipeline, then write/read until each
  // connection has its per_conn responses.
  WallTimer timer;
  for (size_t i = 0; i < conns; ++i) {
    Conn& conn = pool[i];
    conn.send_times.reserve(per_conn);
    const uint32_t prime = std::min(pipeline, per_conn);
    const double now = NowSeconds();
    for (uint32_t k = 0; k < prime; ++k) {
      conn.outbound += frame;
      conn.send_times.push_back(now);
    }
    conn.sent = prime;
    conn.want_write = true;
    struct epoll_event ev = {};
    ev.events = EPOLLIN | EPOLLOUT;
    ev.data.u64 = i;
    if (epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev) != 0) {
      return Fail(std::move(result), "epoll_ctl arm failed");
    }
  }

  size_t done = 0;
  char buffer[1 << 16];
  std::string payload, error;
  while (done < conns) {
    const int n = epoll_wait(epfd, events.data(),
                             static_cast<int>(events.size()), 30000);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Fail(std::move(result),
                  "stalled: " + std::to_string(conns - done) +
                      " connections never finished");
    }
    for (int e = 0; e < n; ++e) {
      const size_t idx = events[e].data.u64;
      Conn& conn = pool[idx];
      if (conn.done) continue;
      if ((events[e].events & (EPOLLERR | EPOLLHUP)) != 0) {
        return Fail(std::move(result), "connection reset by server");
      }

      if ((events[e].events & EPOLLOUT) != 0) {
        while (conn.out_off < conn.outbound.size()) {
          const ssize_t sent =
              ::send(conn.fd, conn.outbound.data() + conn.out_off,
                     conn.outbound.size() - conn.out_off, MSG_NOSIGNAL);
          if (sent > 0) {
            conn.out_off += static_cast<size_t>(sent);
            continue;
          }
          if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          return Fail(std::move(result),
                      "send: " + std::string(std::strerror(errno)));
        }
        if (conn.out_off >= conn.outbound.size()) {
          conn.outbound.clear();
          conn.out_off = 0;
          if (conn.want_write) {
            conn.want_write = false;
            struct epoll_event ev = {};
            ev.events = EPOLLIN;
            ev.data.u64 = idx;
            (void)epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev);
          }
        }
      }

      if ((events[e].events & EPOLLIN) == 0) continue;
      bool closed = false;
      while (!conn.done) {
        const ssize_t got = ::recv(conn.fd, buffer, sizeof(buffer), 0);
        if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (got < 0) {
          return Fail(std::move(result),
                      "recv: " + std::string(std::strerror(errno)));
        }
        if (got == 0) {
          closed = true;
          break;
        }
        conn.decoder.Append(buffer, static_cast<size_t>(got));
        for (;;) {
          const auto next = conn.decoder.Take(&payload, &error);
          if (next == net::FrameDecoder::Next::kNeedMore) break;
          if (next == net::FrameDecoder::Next::kError) {
            return Fail(std::move(result), "client framing error: " + error);
          }
          if (net::PayloadOpcode(payload) == net::Opcode::kGoAway) {
            Result<net::WireGoAway> goaway = net::ParseGoAway(payload);
            return Fail(std::move(result),
                        "goaway: " + (goaway.ok() ? goaway.value().reason
                                                  : std::string("?")));
          }
          if (payload.size() <= kCacheHitByte) {
            return Fail(std::move(result), "short response frame");
          }
          const double latency =
              NowSeconds() - conn.send_times[conn.head++];
          result.latencies.push_back(latency);
          const auto status = static_cast<StatusCode>(
              static_cast<uint8_t>(payload[kStatusByte]));
          switch (status) {
            case StatusCode::kOk:
              ++result.ok;
              result.admitted_latencies.push_back(latency);
              if (payload[kCacheHitByte] != 0) ++result.cache_hits;
              break;
            case StatusCode::kResourceExhausted:
              ++result.shed;
              break;
            case StatusCode::kDeadlineExceeded:
              ++result.deadline;
              break;
            default:
              ++result.other_error;
              break;
          }
          ++result.responses;
          ++conn.received;
          if (conn.sent < per_conn) {
            conn.outbound += frame;
            conn.send_times.push_back(NowSeconds());
            ++conn.sent;
            if (!conn.want_write) {
              conn.want_write = true;
              struct epoll_event ev = {};
              ev.events = EPOLLIN | EPOLLOUT;
              ev.data.u64 = idx;
              (void)epoll_ctl(epfd, EPOLL_CTL_MOD, conn.fd, &ev);
            }
          }
          if (conn.received == per_conn) {
            ::close(conn.fd);
            conn.fd = -1;
            conn.done = true;
            ++done;
            break;
          }
        }
      }
      if (closed && !conn.done) {
        return Fail(std::move(result), "server closed mid-run");
      }
    }
  }
  result.seconds = timer.ElapsedSeconds();

  for (Conn& conn : pool) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  ::close(epfd);
  return result;
}

double PercentileUs(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0;
  const size_t k = static_cast<size_t>(
      p * static_cast<double>(latencies->size() - 1));
  std::nth_element(latencies->begin(), latencies->begin() + k,
                   latencies->end());
  return (*latencies)[k] * 1e6;
}

// --- Phases ---------------------------------------------------------------

struct InprocBaseline {
  double rps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

/// Phase 1: the same cached query straight into Execute(), no wire.
InprocBaseline RunInprocBaseline(const FlagParser& flags, int iters) {
  Dataset data = BenchData(flags);
  const DimMask full = FullMask(data.num_dims());
  IncrementalCubeMaintainer maintainer(std::move(data));
  auto cube =
      std::make_shared<const CompressedSkylineCube>(maintainer.MakeCube());
  SkycubeService service(cube, SkycubeServiceOptions{});
  const QueryRequest query = QueryRequest::SkylineCardinality(full);
  (void)service.Execute(query);  // warm the cache: the steady state measured

  std::vector<double> latencies;
  latencies.reserve(iters);
  WallTimer timer;
  for (int i = 0; i < iters; ++i) {
    const double start = NowSeconds();
    (void)service.Execute(query);
    latencies.push_back(NowSeconds() - start);
  }
  InprocBaseline baseline;
  baseline.rps = iters / timer.ElapsedSeconds();
  baseline.p50_us = PercentileUs(&latencies, 0.50);
  baseline.p99_us = PercentileUs(&latencies, 0.99);
  return baseline;
}

std::vector<size_t> ParseConnections(const FlagParser& flags, bool full) {
  const std::string spec = flags.GetString(
      "connections", full ? "1,64,1024,4096,10000" : "1,64,1024");
  std::vector<size_t> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    out.push_back(static_cast<size_t>(
        std::strtoull(spec.substr(pos, comma - pos).c_str(), nullptr, 10)));
    pos = comma + 1;
  }
  return out;
}

int Main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  PrintHeader("net throughput: loopback wire protocol vs in-process", full);
  BenchJson json(flags, "net_throughput");

  // Fork both server children before any work (and before any thread) so
  // fork() never duplicates a running pool.
  ChildServer server = SpawnServer(flags, /*overload=*/false);
  const bool overload = flags.GetBool("overload", true);
  ChildServer overload_server;
  if (overload) overload_server = SpawnServer(flags, /*overload=*/true);
  std::printf("server child pid %d on port %u%s\n\n", int(server.pid),
              unsigned(server.port), overload ? " (+overload child)" : "");

  const int dims = static_cast<int>(flags.GetInt("dims", 6));
  const DimMask full_mask = FullMask(dims);
  net::WireRequest cached;
  cached.op = net::Opcode::kCardinality;
  cached.subspace = full_mask;
  const std::string frame = net::EncodeRequest(cached);

  // Phase 1: in-process floor.
  const int inproc_iters =
      static_cast<int>(flags.GetInt("inproc-iters", full ? 500000 : 200000));
  const InprocBaseline inproc = RunInprocBaseline(flags, inproc_iters);
  std::printf("in-process cached Execute: %.0f req/s, p50 %.2f us, "
              "p99 %.2f us (%d iters)\n\n",
              inproc.rps, inproc.p50_us, inproc.p99_us, inproc_iters);
  json.AddScalar("inproc_rps", inproc.rps);
  json.AddScalar("inproc_p50_us", inproc.p50_us);
  json.AddScalar("inproc_p99_us", inproc.p99_us);

  // Phase 2: loopback sweep.
  const uint32_t pipeline =
      static_cast<uint32_t>(flags.GetInt("pipeline", 16));
  const uint64_t total_target = static_cast<uint64_t>(
      flags.GetInt("requests", full ? 200000 : 60000));
  TablePrinter sweep({"connections", "pipeline", "requests", "seconds",
                      "rps", "p50_us", "p95_us", "p99_us", "cache_hit_pct",
                      "p99_vs_inproc"});
  int failures = 0;
  for (size_t conns : ParseConnections(flags, full)) {
    if (conns == 0) continue;
    const uint32_t per_conn = static_cast<uint32_t>(
        std::max<uint64_t>(pipeline, total_target / conns));
    DriveResult run = DriveLoad(server.port, conns, per_conn, pipeline, frame);
    if (run.failed) {
      std::fprintf(stderr, "FAIL sweep conns=%zu: %s\n", conns,
                   run.error.c_str());
      ++failures;
      continue;
    }
    const double rps = double(run.responses) / run.seconds;
    const double p99_us = PercentileUs(&run.latencies, 0.99);
    sweep.NewRow()
        .AddInt(int64_t(conns))
        .AddInt(int64_t(pipeline))
        .AddInt(int64_t(run.responses))
        .AddDouble(run.seconds, 3)
        .AddDouble(rps, 0)
        .AddDouble(PercentileUs(&run.latencies, 0.50), 1)
        .AddDouble(PercentileUs(&run.latencies, 0.95), 1)
        .AddDouble(p99_us, 1)
        .AddDouble(100.0 * double(run.cache_hits) /
                       double(std::max<uint64_t>(1, run.responses)),
                   1)
        .AddDouble(inproc.p99_us > 0 ? p99_us / inproc.p99_us : 0, 1);
  }
  EmitTable(sweep);
  json.AddTable("loopback_sweep", sweep);
  const int sweep_exit = StopServer(&server);
  if (sweep_exit != 0) {
    std::fprintf(stderr, "FAIL sweep server exited %d\n", sweep_exit);
    ++failures;
  }

  // Phase 3: overload — sheds must be explicit kResourceExhausted frames.
  if (overload) {
    const size_t conns =
        static_cast<size_t>(flags.GetInt("overload-connections", 64));
    const uint32_t per_conn = static_cast<uint32_t>(
        flags.GetInt("overload-per-connection", full ? 128 : 48));
    net::WireRequest hot;
    hot.op = net::Opcode::kCardinality;
    hot.subspace = full_mask;  // uncached in this child: every query computes
    DriveResult run = DriveLoad(overload_server.port, conns, per_conn,
                                /*pipeline=*/32, net::EncodeRequest(hot));
    TablePrinter shed({"offered", "answered", "ok", "shed", "deadline",
                       "other", "shed_pct", "admitted_p50_ms",
                       "admitted_p99_ms"});
    if (run.failed) {
      std::fprintf(stderr, "FAIL overload: %s\n", run.error.c_str());
      ++failures;
    } else {
      const uint64_t offered = uint64_t(conns) * per_conn;
      if (run.responses != offered || run.shed == 0 ||
          run.other_error != 0 || run.ok == 0) {
        std::fprintf(stderr,
                     "FAIL overload contract: offered=%llu answered=%llu "
                     "ok=%llu shed=%llu other=%llu\n",
                     (unsigned long long)offered,
                     (unsigned long long)run.responses,
                     (unsigned long long)run.ok, (unsigned long long)run.shed,
                     (unsigned long long)run.other_error);
        ++failures;
      }
      shed.NewRow()
          .AddInt(int64_t(offered))
          .AddInt(int64_t(run.responses))
          .AddInt(int64_t(run.ok))
          .AddInt(int64_t(run.shed))
          .AddInt(int64_t(run.deadline))
          .AddInt(int64_t(run.other_error))
          .AddDouble(100.0 * double(run.shed) /
                         double(std::max<uint64_t>(1, run.responses)),
                     1)
          .AddDouble(PercentileUs(&run.admitted_latencies, 0.50) / 1e3, 2)
          .AddDouble(PercentileUs(&run.admitted_latencies, 0.99) / 1e3, 2);
      EmitTable(shed);
      json.AddTable("overload", shed);
    }
    const int overload_exit = StopServer(&overload_server);
    if (overload_exit != 0) {
      std::fprintf(stderr, "FAIL overload server exited %d\n", overload_exit);
      ++failures;
    }
  }

  json.AddScalar("failures", int64_t(failures));
  if (failures > 0) {
    std::fprintf(stderr, "bench_net_throughput: %d failure(s)\n", failures);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace skycube::bench

int main(int argc, char** argv) {
  return skycube::bench::Main(argc, argv);
}
