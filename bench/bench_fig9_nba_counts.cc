// Figure 9: numbers of skyline groups and subspace skyline objects in the
// (NBA-like) real data set, d = 1..17, log scale in the paper.
//
// Paper shape: the number of subspace skyline objects (= SkyCube size of
// Yuan et al.) grows exponentially with d; the number of skyline groups
// grows only moderately — on NBA-style data it is bounded by roughly the
// number of full-space skyline players. The ratio of the two is the
// compression the paper's title refers to.
//
// Flags: --full (count up to d=17), --max-d=N (default 12), --seed=S.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/cube.h"
#include "core/stellar.h"
#include "skycube/skycube.h"

int main(int argc, char** argv) {
  using namespace skycube;
  using namespace skycube::bench;
  const FlagParser flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const int max_d = static_cast<int>(flags.GetInt("max-d", full ? 17 : 12));
  PrintHeader(
      "Figure 9: #skyline groups vs #subspace skyline objects, NBA data",
      full);

  BenchJson json(flags, "fig9_nba_counts");
  json.AddScalar("full", full ? "full" : "default");
  const Dataset nba = PaperNba(flags.GetInt("seed", 2007));
  TablePrinter table(
      {"d", "seeds", "skyline_groups", "subspace_skyline_objects", "ratio"});
  for (int d = 1; d <= max_d; ++d) {
    const Dataset data = nba.WithPrefixDims(d);
    StellarStats stats;
    SkylineGroupSet groups = ComputeStellar(data, {}, &stats);
    // The subspace-skyline-object count is derived from the compressed cube
    // itself (inclusion-exclusion); tests verify it equals the skycube scan.
    const CompressedSkylineCube cube(data.num_dims(), data.num_objects(),
                                     std::move(groups));
    const uint64_t skyline_objects = cube.TotalSubspaceSkylineObjects();
    table.NewRow()
        .AddInt(d)
        .AddInt(static_cast<int64_t>(stats.num_seeds))
        .AddInt(static_cast<int64_t>(stats.num_groups))
        .AddInt(static_cast<int64_t>(skyline_objects))
        .AddDouble(static_cast<double>(skyline_objects) /
                       static_cast<double>(stats.num_groups),
                   1);
  }
  EmitTable(table);
  json.AddTable("counts", table);
  std::printf("expected shape: objects column ~exponential in d; groups "
              "column ~flat (near the number of seeds).\n");
  return 0;
}
