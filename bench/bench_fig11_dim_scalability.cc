// Figure 11(a–c): scalability w.r.t. dimensionality in the three synthetic
// families, 100,000 tuples each — runtime of Skyey vs Stellar.
//
// Paper shape: (a) correlated — Stellar substantially faster, gap grows
// with d; (b) equally distributed — Stellar still faster but the gap is
// much smaller; (c) anti-correlated — *Skyey wins*: nearly every subspace
// skyline object is its own group, so compression buys nothing while
// Stellar pays for a huge seed set.
//
// Flags: --full (n=100000 and paper d ranges; otherwise n=20000, trimmed),
// --tuples=N, --seed=S.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/skyey.h"
#include "core/stellar.h"

int main(int argc, char** argv) {
  using namespace skycube;
  using namespace skycube::bench;
  const FlagParser flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const size_t tuples = flags.GetInt("tuples", full ? 100000 : 20000);
  const uint64_t seed = flags.GetInt("seed", 1);
  PrintHeader("Figure 11: runtime vs dimensionality, synthetic data sets",
              full);
  BenchJson json(flags, "fig11_dim_scalability");
  json.AddScalar("full", full ? "full" : "default");
  json.AddScalar("tuples", static_cast<int64_t>(tuples));
  std::printf("tuples per data set: %zu\n\n", tuples);

  struct Series {
    Distribution distribution;
    char figure;
    int max_d;
  };
  const Series series[] = {
      {Distribution::kCorrelated, 'a', full ? 14 : 10},
      {Distribution::kIndependent, 'b', 6},
      {Distribution::kAntiCorrelated, 'c', full ? 6 : 5},
  };
  for (const Series& s : series) {
    std::printf("--- Figure 11(%c): %s ---\n", s.figure,
                DistributionName(s.distribution));
    // skyey_noshare_sec is Skyey without parent-candidate sharing — closer
    // in strength to a per-subspace re-sort baseline; our shared Skyey is a
    // stronger baseline than the paper's testbed (see EXPERIMENTS.md).
    TablePrinter table({"d", "stellar_sec", "skyey_sec", "skyey_noshare_sec",
                        "stellar/skyey"});
    for (int d = 1; d <= s.max_d; ++d) {
      const Dataset data = PaperSynthetic(s.distribution, tuples, d, seed);
      SkylineGroupSet stellar_groups;
      SkylineGroupSet skyey_groups;
      const double stellar_sec =
          TimeIt([&] { stellar_groups = ComputeStellar(data); });
      const double skyey_sec =
          TimeIt([&] { skyey_groups = ComputeSkyey(data); });
      SkyeyOptions noshare;
      noshare.share_parent_candidates = false;
      const double noshare_sec = TimeIt([&] { ComputeSkyey(data, noshare); });
      if (stellar_groups != skyey_groups) {
        std::printf("ERROR: engines disagree at %s d=%d\n",
                    DistributionName(s.distribution), d);
        return 1;
      }
      table.NewRow()
          .AddInt(d)
          .AddDouble(stellar_sec, 4)
          .AddDouble(skyey_sec, 4)
          .AddDouble(noshare_sec, 4)
          .AddDouble(stellar_sec / skyey_sec, 2);
    }
    EmitTable(table);
    json.AddTable(DistributionName(s.distribution), table);
  }
  std::printf("expected shape: Stellar wins on correlated (gap grows with "
              "d), smaller gap on equal, Skyey wins on anti-correlated.\n");
  return 0;
}
