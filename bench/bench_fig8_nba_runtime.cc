// Figure 8: scalability w.r.t. dimensionality on the (NBA-like) real data
// set — runtime of Skyey vs Stellar on the first d dimensions, d = 1..17.
//
// Paper shape: Stellar stays within fractions of a second across the whole
// sweep; Skyey grows exponentially with d (it searches 2^d − 1 subspaces)
// and is orders of magnitude slower at high dimensionality.
//
// Flags:
//   --full           d up to 17 for both algorithms (several minutes).
//   --max-d=N        Stellar sweep bound        (default 17; cheap anyway).
//   --skyey-max-d=N  Skyey sweep bound          (default 12).
//   --seed=S         NBA-like generator seed    (default 2007).
#include <cstdio>

#include "bench/bench_common.h"
#include "core/skyey.h"
#include "core/stellar.h"

int main(int argc, char** argv) {
  using namespace skycube;
  using namespace skycube::bench;
  const FlagParser flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const int max_d = static_cast<int>(flags.GetInt("max-d", 17));
  const int skyey_max_d =
      static_cast<int>(flags.GetInt("skyey-max-d", full ? 17 : 12));
  PrintHeader("Figure 8: runtime vs dimensionality, NBA data set", full);
  BenchJson json(flags, "fig8_nba_runtime");
  json.AddScalar("full", full ? "full" : "default");

  const Dataset nba = PaperNba(flags.GetInt("seed", 2007));
  std::printf("data: %zu players, %d dimensions (NBA-like substitute, see "
              "DESIGN.md §4)\n\n",
              nba.num_objects(), nba.num_dims());

  TablePrinter table({"d", "stellar_sec", "skyey_sec", "speedup"});
  for (int d = 1; d <= max_d; ++d) {
    const Dataset data = nba.WithPrefixDims(d);
    SkylineGroupSet stellar_groups;
    const double stellar_sec =
        TimeIt([&] { stellar_groups = ComputeStellar(data); });
    table.NewRow().AddInt(d).AddDouble(stellar_sec, 4);
    if (d <= skyey_max_d) {
      SkylineGroupSet skyey_groups;
      const double skyey_sec =
          TimeIt([&] { skyey_groups = ComputeSkyey(data); });
      if (skyey_groups != stellar_groups) {
        std::printf("ERROR: Skyey and Stellar disagree at d=%d\n", d);
        return 1;
      }
      table.AddDouble(skyey_sec, 4).AddDouble(skyey_sec / stellar_sec, 1);
    } else {
      table.AddCell("(skipped)").AddCell("-");
    }
  }
  EmitTable(table);
  json.AddTable("runtime", table);
  std::printf("expected shape: Stellar flat in d; Skyey ~2^d growth, "
              "orders of magnitude slower at high d.\n");
  return 0;
}
