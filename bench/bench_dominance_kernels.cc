// Microbenchmark of the rank-compressed columnar dominance kernels
// (skyline/dominance_kernels.h) against their scalar double-precision
// oracles (skyline/dominance.h).
//
// Workload: n×n all-pairs dominance over --dims-dimensional independent
// data (n=1024 ⇒ ~1M comparisons, the acceptance workload). Each shape is
// timed over --reps repetitions and the best rep is reported, as
// ns/comparison plus the speedup over the scalar CompareRows loop.
//
// Flags: --n=N (objects, default 1024), --dims=D (default 16), --reps=R
// (default 5), --seed=S, --json[=PATH].
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench/bench_common.h"
#include "common/bitset.h"
#include "dataset/ranked_view.h"
#include "skyline/dominance.h"
#include "skyline/dominance_kernels.h"

int main(int argc, char** argv) {
  using namespace skycube;
  using namespace skycube::bench;
  const FlagParser flags(argc, argv);
  const size_t n = static_cast<size_t>(flags.GetInt("n", 1024));
  const int dims = static_cast<int>(flags.GetInt("dims", 16));
  const int reps = static_cast<int>(flags.GetInt("reps", 5));
  const uint64_t seed = flags.GetInt("seed", 1);
  std::printf("=== Dominance kernels: scalar vs rank-compressed ===\n");
  std::printf("n=%zu objects, d=%d dims, %zu pairwise comparisons, best of "
              "%d reps\n\n",
              n, dims, n * n, reps);
  BenchJson json(flags, "dominance_kernels");
  json.AddScalar("n", static_cast<int64_t>(n));
  json.AddScalar("dims", static_cast<int64_t>(dims));

  const Dataset data =
      PaperSynthetic(Distribution::kIndependent, n, dims, seed);
  const DimMask full = data.full_mask();
  const RankedView view(data);
  std::vector<ObjectId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  const double comparisons = static_cast<double>(n) * static_cast<double>(n);

  // `sink` defeats dead-code elimination; each shape folds its results in.
  uint64_t sink = 0;
  auto best_of = [&](auto&& fn) {
    double best = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const double sec = TimeIt(fn);
      if (rep == 0 || sec < best) best = sec;
    }
    return best;
  };

  // Scalar oracle: all-pairs CompareRows over the row-major doubles.
  const double scalar_sec = best_of([&] {
    for (size_t i = 0; i < n; ++i) {
      const double* row_i = data.Row(i);
      for (size_t j = 0; j < n; ++j) {
        sink += static_cast<uint64_t>(CompareRows(row_i, data.Row(j), full));
      }
    }
  });

  // Pairwise ranked: same shape, integer ranks, branch-free accumulation.
  const double ranked_pair_sec = best_of([&] {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        sink += static_cast<uint64_t>(CompareRanked(view, i, j, full));
      }
    }
  });

  // Batch flags: one probe row against the whole block per outer object.
  const RankedBlock block = RankedBlock::Gather(view, full, ids);
  std::vector<uint32_t> probe(static_cast<size_t>(block.num_packed_dims()));
  std::vector<uint8_t> flags_out(n);
  const double batch_flags_sec = best_of([&] {
    for (size_t i = 0; i < n; ++i) {
      block.GatherProbe(static_cast<ObjectId>(i), probe.data());
      BlockDominatedFlags(block, probe.data(), flags_out.data());
      sink += flags_out[i];
    }
  });

  // Batch bitmap: DominatedBitmap per outer object.
  const double batch_bitmap_sec = best_of([&] {
    for (size_t i = 0; i < n; ++i) {
      DynamicBitset bitmap(n);
      DominatedBitmap(view, static_cast<ObjectId>(i), ids.data(), n, full,
                      &bitmap);
      sink += bitmap.Count();
    }
  });

  // Matrix build: scalar DominanceMask cells vs the tiled kernel.
  std::vector<DimMask> matrix(n * n);
  const double scalar_matrix_sec = best_of([&] {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        matrix[i * n + j] = data.DominanceMask(ids[i], ids[j], full);
      }
    }
    sink += matrix[n / 2];
  });
  constexpr size_t kJTile = 1024;
  const double tile_matrix_sec = best_of([&] {
    for (size_t j0 = 0; j0 < n; j0 += kJTile) {
      const size_t j1 = std::min(j0 + kJTile, n);
      PairwiseDominanceTile(block, 0, n, j0, j1, matrix.data() + j0, n);
    }
    sink += matrix[n / 2];
  });

  TablePrinter table({"kernel", "sec", "ns_per_cmp", "speedup_vs_scalar"});
  auto add = [&](const char* name, double sec, double baseline) {
    table.NewRow()
        .AddCell(name)
        .AddDouble(sec, 5)
        .AddDouble(sec / comparisons * 1e9, 3)
        .AddDouble(baseline / sec, 2);
  };
  add("scalar CompareRows", scalar_sec, scalar_sec);
  add("ranked CompareRanked", ranked_pair_sec, scalar_sec);
  add("batch BlockDominatedFlags", batch_flags_sec, scalar_sec);
  add("batch DominatedBitmap", batch_bitmap_sec, scalar_sec);
  add("scalar DominanceMask matrix", scalar_matrix_sec, scalar_matrix_sec);
  add("tiled PairwiseDominanceTile", tile_matrix_sec, scalar_matrix_sec);
  EmitTable(table);
  json.AddTable("kernels", table);
  json.AddScalar("batch_speedup", scalar_sec / batch_flags_sec);
  json.AddScalar("matrix_speedup", scalar_matrix_sec / tile_matrix_sec);
  std::printf("(sink=%llu)\n",
              static_cast<unsigned long long>(sink & 0xff));
  return 0;
}
