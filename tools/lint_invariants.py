#!/usr/bin/env python3
"""Repo-specific invariant lints for skycube (docs/STATIC_ANALYSIS.md).

Rules (each checkable faster than a compile, so they run as a ctest test
and as a required CI job):

  R1  fault-point registry: every SKYCUBE_FAULT_POINT name wired in src/
      appears at exactly one site, and every name a test arms/queries is
      either wired in src/ or test-local (contains "test" in its prefix,
      e.g. "deadline_test.slow") — catching both copy-pasted point names
      and tests arming a typo that can never fire.
  R2  raw-I/O confinement, two sanctioned zones: naked file-I/O calls
      (open/openat/fsync/fdatasync/fcntl) live only in src/storage/, and
      naked socket/epoll syscalls (socket/bind/listen/accept/recv/send/
      epoll_*/eventfd/...) live only in src/net/ — durability decisions
      and wire-I/O decisions each stay in one reviewable place. The socket
      rule binds src/ only: tests, tools, and bench harnesses legitimately
      open *client* sockets to drive the server from outside. The
      scatter-gather router (src/router/) speaks TCP to its shard backends
      but must do so exclusively through net/client.h — in addition to the
      call-site scan, src/router/ may not even include the raw socket
      headers (<sys/socket.h>, <netinet/...>, <arpa/inet.h>, <sys/epoll.h>,
      <poll.h>). Waive a justified site with a "lint:allow-raw-io" comment
      on the same line.
  R3  no silently dropped Status: a bare statement-position call to one of
      the known Status/Result-returning mutators is an error; discard
      deliberately with `(void)call(...)` (plus a why-comment) instead.
  R4  no std::endl under src/: the serving path never wants the implicit
      flush; use '\\n'.
  R5  no const_cast of a mutex type: a const method that needs the lock
      marks the mutex `mutable` instead.
  R6  annotated locks only: src/ uses the Mutex/MutexLock/CondVar wrappers
      from common/mutex.h, never raw std::mutex & friends — raw std types
      carry no thread-safety annotations, so Clang's analysis is blind to
      them. (std::once_flag/std::call_once are fine: there is no annotated
      equivalent and no guarded state.)
  R7  no blocking file I/O on the event-loop thread: src/net/ must never
      call open/fopen/fsync/fdatasync or touch fstream/getline — one
      stalled syscall on the loop thread stalls every connection. File
      work belongs in src/storage/, reached from dispatch-pool threads.
  R8  decoder fuzz coverage: every decoder entry point in src/ headers
      (Parse*/Decode*/Deserialize* returning Result<>, plus the handful of
      byte-consuming loaders listed in R8_EXTRA_ENTRY_POINTS) is exercised
      by a harness in fuzz/, and every target registered in
      fuzz/CMakeLists.txt's SKYCUBE_FUZZ_TARGETS has its harness source, a
      non-empty checked-in regression corpus, and a fuzz_replay_* ctest
      registration. A new decoder lands with its fuzz target or carries a
      "lint:not-wire-input" comment explaining why it never sees
      attacker-controlled bytes.
  R9  no allocation from an unchecked wire length: a value read off the
      wire or disk (GetU32/ReadU64/operator>>/sscanf and friends) must not
      reach resize/reserve/assign/new[] without a bounds comparison on the
      way, or a std::min clamp at the call — a forged 4-byte length field
      must fail on the *available* bytes, never allocate the declared
      amount. Heuristic taint per function; waive a justified site with a
      "lint:allow-unbounded" comment on the same line.

Exit status 0 = clean; 1 = findings (one per line: path:line: rule: what).
"""

from __future__ import annotations

import re
import sys
from collections import Counter
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

SOURCE_GLOBS = ("src/**/*.h", "src/**/*.cc", "tools/**/*.cc", "bench/**/*.h",
                "bench/**/*.cc", "tests/**/*.cc", "fuzz/**/*.h",
                "fuzz/**/*.cc")

FAULT_POINT_RE = re.compile(r'SKYCUBE_FAULT_POINT\("([^"]+)"\)')
ARMED_RE = re.compile(r'(?:ArmFailure|ArmDelay|Disarm|HitCount)\("([^"]+)"')

# R2: syscall-shaped raw I/O. Matches `open(`, `::open(`, `fsync(` etc. as
# standalone identifiers — not RotateSegment(, fopen(, or .open( members.
RAW_IO_RE = re.compile(r'(?<![\w.:>])(?:::)?\b(open|openat|fsync|fdatasync|'
                       r'fcntl)\s*\(')

# R2 (socket family): wire/event syscalls, confined to src/net/ within
# src/. The lookbehind keeps std::bind / member .send( / .connect( out.
SOCKET_IO_RE = re.compile(
    r'(?<![\w.:>])(?:::)?\b(socket|accept4?|bind|listen|connect|'
    r'setsockopt|getsockopt|getsockname|recv|recvfrom|send|sendto|'
    r'shutdown|epoll_create1|epoll_ctl|epoll_wait|eventfd)\s*\(')

# R2 (socket headers): wire-speaking layers outside src/net/ (today: the
# scatter-gather router) must reach sockets through net/client.h, so they
# have no business even including the raw socket/event headers — an
# include is the first step toward reimplementing wire I/O inline.
SOCKET_HEADER_RE = re.compile(
    r'#\s*include\s*<(sys/socket\.h|netinet/|arpa/inet\.h|sys/epoll\.h|'
    r'sys/eventfd\.h|sys/un\.h|netdb\.h|poll\.h)')

# R7: blocking file I/O that must never run on the event-loop thread.
BLOCKING_FILE_IO_RE = re.compile(
    r'(?<![\w.:>])(?:::)?\b(open|openat|fopen|freopen|fsync|fdatasync|'
    r'fread|fwrite|fgetc|fgets)\s*\(|std::[io]?fstream\b')

# R3: Status/Result-returning mutators of the storage/ingest/service layers.
# A line that *starts* with one of these calls (optionally through obj./->)
# drops the Status on the floor.
STATUS_CALLS = ("Sync", "SyncDir", "RotateSegment", "TruncateThrough",
                "Flush", "Drain", "Checkpoint", "CheckpointLocked",
                "ApplyInsert")
DROPPED_STATUS_RE = re.compile(
    r'^\s*(?:[A-Za-z_]\w*(?:\.|->))?(' + "|".join(STATUS_CALLS) +
    r')\s*\([^;]*\)\s*;\s*$')

# R8: decoder entry points are recognized by name shape — a Result<>-
# returning Parse*/Decode*/Deserialize* declaration in a src/ header takes
# bytes an attacker may control. The extras are byte-consuming loaders
# whose names don't fit the shape but whose inputs are just as hostile:
# FrameDecoder eats the raw TCP stream, ReadWal/DumpWal scan disk segments
# after a crash, LoadCheckpoint/InstallSnapshot parse checkpoint files a
# replica fetched over the wire.
DECODER_DECL_RE = re.compile(
    r'Result<[^;]*?\b((?:Parse|Decode|Deserialize)[A-Z]\w*)\s*\(')
R8_EXTRA_ENTRY_POINTS = ("FrameDecoder", "ReadWal", "DumpWal",
                         "LoadCheckpoint", "InstallSnapshot")
FUZZ_TARGETS_RE = re.compile(r'set\(SKYCUBE_FUZZ_TARGETS\s+([^)]*)\)')

# R9: expressions that introduce a wire/disk-supplied integer. The capture
# is the variable receiving it (last component of a dotted path).
WIRE_READ_RES = (
    # reader.ReadU32(&count), GetU32(&header.len)
    re.compile(r'(?:Get|Read)U(?:8|16|32|64)\s*\(\s*&\s*'
               r'(?:\w+(?:\.|->))*(\w+)'),
    # len = GetU32(p), record.row = static_cast<...>(ReadU64(...))
    re.compile(r'(?:\w+(?:\.|->))*(\w+)\s*=[^=<>!]*?'
               r'(?:Get|Read)U(?:8|16|32|64)\s*\('),
    # is >> num_groups >> member_count (stream extraction chains)
    re.compile(r'>>\s*(?:\w+(?:\.|->))*([A-Za-z_]\w*)'),
    # sscanf(name, "...", &lsn)
    re.compile(r'sscanf\s*\([^;]*?&\s*(?:\w+(?:\.|->))*(\w+)'),
)
ALLOC_RE = re.compile(r'(?:\.(?:resize|reserve|assign)\s*\(|'
                      r'\bnew\s+[\w:]+(?:\s*<[^;]*?>)?\s*\[)(.*)$')
IDENT_RE = re.compile(r'[A-Za-z_]\w*')
# A "bounds check" line: mentions the tainted name next to a real
# comparison operator. Shift/stream (<<, >>), arrow (->), and the
# extraction itself are blanked first so they can't masquerade as one.
COMPARISON_RE = re.compile(r'[<>!=]=|[<>]')

# R6: raw lock types the annotated wrappers replace.
RAW_LOCK_RE = re.compile(
    r'std::(mutex|shared_mutex|recursive_mutex|timed_mutex|'
    r'condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|'
    r'shared_lock)\b')
R6_EXEMPT = ("src/common/mutex.h",)  # the wrappers themselves

COMMENT_BLOCK_RE = re.compile(r'/\*.*?\*/', re.DOTALL)


def strip_comments(text: str) -> str:
    """Blank out comments, preserving line numbers (no string-literal
    awareness: good enough for the token rules here)."""
    text = COMMENT_BLOCK_RE.sub(lambda m: re.sub(r'[^\n]', ' ', m.group()),
                                text)
    return "\n".join(line.split("//", 1)[0] for line in text.splitlines())


def iter_sources():
    for pattern in SOURCE_GLOBS:
        yield from sorted(REPO.glob(pattern))


def blank_non_comparisons(line: str) -> str:
    """Blank tokens whose < > = characters are not comparisons, so the
    R9 bounds-check detector doesn't mistake a shift, an arrow, a stream
    extraction, a string literal, or a template argument list for one."""
    line = re.sub(r'"[^"]*"', '""', line)
    line = re.sub(r'<<|>>|->', '  ', line)
    line = re.sub(r'\b(?:static_cast|reinterpret_cast|const_cast)\s*'
                  r'<[^<>]*>', ' ', line)
    return line


def has_bounds_check(code_lines: list[str], start: int, end: int,
                     name: str) -> bool:
    """True if some line in [start, end] (1-based, inclusive) compares the
    tainted name — the shape every guarded decoder site in the repo has."""
    name_re = re.compile(r'\b' + re.escape(name) + r'\b')
    for lineno in range(start, end + 1):
        line = blank_non_comparisons(code_lines[lineno - 1])
        if name_re.search(line) and COMPARISON_RE.search(line):
            return True
    return False


def main() -> int:
    findings: list[str] = []
    wired = Counter()          # fault point name -> [(path, line)]
    wired_sites: dict[str, list[str]] = {}
    armed: list[tuple[str, str]] = []   # (site, name)
    decoders: dict[str, str] = {}       # decoder entry point -> decl site

    for path in iter_sources():
        rel = path.relative_to(REPO).as_posix()
        raw = path.read_text(encoding="utf-8")
        code = strip_comments(raw)
        code_lines = code.splitlines()
        tainted: dict[str, int] = {}    # wire-read variable -> taint line

        for lineno, line in enumerate(code_lines, 1):
            site = f"{rel}:{lineno}"
            raw_line = raw.splitlines()[lineno - 1]

            for name in FAULT_POINT_RE.findall(line):
                if rel.startswith("src/"):
                    wired[name] += 1
                    wired_sites.setdefault(name, []).append(site)
            for name in ARMED_RE.findall(line):
                armed.append((site, name))

            if (RAW_IO_RE.search(line)
                    and not rel.startswith("src/storage/")
                    and "lint:allow-raw-io" not in raw_line):
                findings.append(
                    f"{site}: R2: raw file-I/O call outside src/storage/ "
                    "(route through the storage layer, or waive with a "
                    "'lint:allow-raw-io' comment)")

            if (rel.startswith("src/") and not rel.startswith("src/net/")
                    and SOCKET_IO_RE.search(line)
                    and "lint:allow-raw-io" not in raw_line):
                findings.append(
                    f"{site}: R2: raw socket/epoll call in src/ outside "
                    "src/net/ (route through the net layer, or waive with "
                    "a 'lint:allow-raw-io' comment)")

            if (rel.startswith("src/") and not rel.startswith("src/net/")
                    and SOCKET_HEADER_RE.search(raw_line)
                    and "lint:allow-raw-io" not in raw_line):
                findings.append(
                    f"{site}: R2: raw socket header included in src/ "
                    "outside src/net/ (speak the wire through net/client.h, "
                    "or waive with a 'lint:allow-raw-io' comment)")

            if (rel.startswith("src/net/")
                    and BLOCKING_FILE_IO_RE.search(line)
                    and "lint:allow-raw-io" not in raw_line):
                findings.append(
                    f"{site}: R7: blocking file I/O in src/net/ runs on "
                    "the event-loop thread and stalls every connection "
                    "(move it to src/storage/ behind a pool thread)")

            if not rel.startswith("tests/"):
                match = DROPPED_STATUS_RE.match(line)
                if match:
                    findings.append(
                        f"{site}: R3: result of Status-returning "
                        f"{match.group(1)}() is discarded (handle it, or "
                        "'(void)' it with a reason)")

            if rel.startswith("src/") and "std::endl" in line:
                findings.append(f"{site}: R4: std::endl in src/ "
                                "(implicit flush; use '\\n')")

            if re.search(r'const_cast\s*<\s*(?:std::)?\w*[Mm]utex', line):
                findings.append(
                    f"{site}: R5: const_cast of a mutex type "
                    "(mark the mutex 'mutable' instead)")

            if (rel.startswith("src/") and rel not in R6_EXEMPT
                    and RAW_LOCK_RE.search(line)):
                findings.append(
                    f"{site}: R6: raw {RAW_LOCK_RE.search(line).group()} in "
                    "src/ (use the annotated wrappers in common/mutex.h)")

            if rel.startswith("src/") and rel.endswith(".h"):
                for name in DECODER_DECL_RE.findall(line):
                    if "lint:not-wire-input" not in raw_line:
                        decoders.setdefault(name, site)

            if rel.startswith(("src/", "tools/")):
                # Function boundary (column-0 closing brace): locals die.
                if line.startswith("}"):
                    tainted.clear()
                for wire_re in WIRE_READ_RES:
                    for name in wire_re.findall(line):
                        tainted[name] = lineno
                alloc = ALLOC_RE.search(line)
                if (alloc and tainted
                        and "lint:allow-unbounded" not in raw_line
                        and "std::min" not in alloc.group(1)):
                    for name in IDENT_RE.findall(alloc.group(1)):
                        if name not in tainted:
                            continue
                        if has_bounds_check(code_lines, tainted[name],
                                            lineno, name):
                            continue
                        findings.append(
                            f"{site}: R9: allocation sized by "
                            f"wire-supplied '{name}' (read at line "
                            f"{tainted[name]}) with no bounds check between "
                            "— clamp with std::min, validate against the "
                            "available bytes, or waive with "
                            "'lint:allow-unbounded'")

    for name, count in sorted(wired.items()):
        if count != 1:
            findings.append(
                f"{wired_sites[name][1]}: R1: fault point \"{name}\" wired "
                f"at {count} sites (first: {wired_sites[name][0]}); names "
                "must be unique")
    for site, name in armed:
        if name not in wired and "test" not in name.split(".")[0]:
            findings.append(
                f"{site}: R1: \"{name}\" is armed/queried but no "
                "SKYCUBE_FAULT_POINT in src/ wires it (typo?)")

    # R8: the fuzz registry and the decoder surface must agree.
    fuzz_cmake_path = REPO / "fuzz" / "CMakeLists.txt"
    fuzz_cmake = (fuzz_cmake_path.read_text(encoding="utf-8")
                  if fuzz_cmake_path.exists() else "")
    targets_match = FUZZ_TARGETS_RE.search(fuzz_cmake)
    fuzz_targets = targets_match.group(1).split() if targets_match else []
    if not fuzz_targets:
        findings.append(
            "fuzz/CMakeLists.txt:1: R8: no SKYCUBE_FUZZ_TARGETS registry "
            "found (the decoder fuzz subsystem is missing or renamed)")
    for target in fuzz_targets:
        if not (REPO / "fuzz" / f"fuzz_{target}.cc").exists():
            findings.append(
                f"fuzz/CMakeLists.txt:1: R8: registered fuzz target "
                f"\"{target}\" has no fuzz/fuzz_{target}.cc harness")
        corpus = REPO / "fuzz" / "regression" / target
        if not corpus.is_dir() or not any(corpus.iterdir()):
            findings.append(
                f"fuzz/CMakeLists.txt:1: R8: fuzz target \"{target}\" has "
                f"no checked-in corpus in fuzz/regression/{target}/ (seed "
                "it from the encoder, see docs/STATIC_ANALYSIS.md)")
    if fuzz_targets and "add_test(NAME fuzz_replay_${target}" not in fuzz_cmake:
        findings.append(
            "fuzz/CMakeLists.txt:1: R8: no fuzz_replay_* ctest "
            "registration — regression corpora must replay in every build")

    harness_text = "".join(
        p.read_text(encoding="utf-8") for p in sorted(REPO.glob("fuzz/*.cc")))
    for name in R8_EXTRA_ENTRY_POINTS:
        decoders.setdefault(name, "fuzz/CMakeLists.txt:1")
    for name, site in sorted(decoders.items()):
        if not re.search(r'\b' + re.escape(name) + r'\b', harness_text):
            findings.append(
                f"{site}: R8: decoder entry point {name}() has no fuzz/ "
                "harness exercising it (add one to an existing target or "
                "register a new one; waive a decoder that never sees "
                "attacker-controlled bytes with 'lint:not-wire-input')")

    for finding in findings:
        print(finding)
    if findings:
        print(f"\nlint_invariants: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: clean ({len(wired)} fault points, "
          f"{sum(1 for _ in iter_sources())} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
