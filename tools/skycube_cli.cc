// skycube — command-line front end to the library.
//
// Subcommands:
//   generate  --dist=<independent|correlated|anti> --tuples=N --dims=D
//             [--seed=S] [--truncate=K] --out=data.csv
//             Generate a synthetic dataset (Börzsönyi generator) as CSV.
//   nba       [--players=N] [--seed=S] --out=nba.csv
//             Generate the NBA-like dataset (larger-is-better columns).
//   compute   --data=data.csv [--algo=<stellar|skyey>] [--negate]
//             [--out=cube.txt] [--print]
//             Compute the compressed skyline cube and optionally save it.
//   query     --cube=cube.txt
//             (--subspace=LETTERS | --columns=name1,name2 | --object=ID)
//             Q1 (subspace skyline) or Q2 (object membership) queries
//             against a saved cube, without touching the data.
//   inspect   --cube=cube.txt [--top=K]
//             Cube statistics: group count, compression ratio, the K most
//             frequent skyline objects.
//
// Example end-to-end session:
//   skycube_cli generate --dist=correlated --tuples=10000 --dims=6
//       --out=/tmp/data.csv            (one line; wrapped here for width)
//   skycube_cli compute --data=/tmp/data.csv --out=/tmp/cube.txt
//   skycube_cli query --cube=/tmp/cube.txt --subspace=ACE
//   skycube_cli inspect --cube=/tmp/cube.txt --top=10
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/frequency.h"
#include "common/flags.h"
#include "common/timer.h"
#include "core/cube.h"
#include "core/serialization.h"
#include "core/skyey.h"
#include "core/stellar.h"
#include "datagen/nba_like.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"

namespace skycube {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: skycube_cli <generate|nba|compute|query|inspect> "
               "[flags]\n(see the header of tools/skycube_cli.cc)\n");
  return 2;
}

int Generate(const FlagParser& flags) {
  SyntheticSpec spec;
  spec.distribution =
      DistributionFromName(flags.GetString("dist", "independent"));
  spec.num_objects = flags.GetInt("tuples", 10000);
  spec.num_dims = static_cast<int>(flags.GetInt("dims", 5));
  spec.seed = flags.GetInt("seed", 42);
  spec.truncate_decimals = static_cast<int>(flags.GetInt("truncate", 4));
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 2;
  }
  const Dataset data = GenerateSynthetic(spec);
  const Status status = data.ToCsvFile(out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu × %d %s dataset to %s\n", data.num_objects(),
              data.num_dims(), DistributionName(spec.distribution),
              out.c_str());
  return 0;
}

int Nba(const FlagParser& flags) {
  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "nba: --out is required\n");
    return 2;
  }
  const Dataset data = GenerateNbaLike(
      flags.GetInt("players", kNbaLikeDefaultPlayers),
      flags.GetInt("seed", 2007));
  const Status status = data.ToCsvFile(out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote NBA-like dataset (%zu players, larger-is-better) to "
              "%s\n  (pass --negate to `compute` for this file)\n",
              data.num_objects(), out.c_str());
  return 0;
}

int Compute(const FlagParser& flags) {
  const std::string path = flags.GetString("data", "");
  if (path.empty()) {
    std::fprintf(stderr, "compute: --data is required\n");
    return 2;
  }
  Result<Dataset> loaded = Dataset::FromCsvFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  Dataset data = std::move(loaded).value();
  if (flags.GetBool("negate", false)) data = data.Negated();

  const std::string algo = flags.GetString("algo", "stellar");
  WallTimer timer;
  SkylineGroupSet groups;
  if (algo == "stellar") {
    StellarStats stats;
    groups = ComputeStellar(data, {}, &stats);
    std::printf("stellar: %zu objects, %llu seeds, %zu groups in %.3f s\n",
                data.num_objects(),
                static_cast<unsigned long long>(stats.num_seeds),
                groups.size(), timer.ElapsedSeconds());
  } else if (algo == "skyey") {
    SkyeyStats stats;
    groups = ComputeSkyey(data, {}, &stats);
    std::printf("skyey: %zu objects, %llu subspaces, %zu groups in %.3f s\n",
                data.num_objects(),
                static_cast<unsigned long long>(stats.subspaces_searched),
                groups.size(), timer.ElapsedSeconds());
  } else {
    std::fprintf(stderr, "compute: unknown --algo '%s'\n", algo.c_str());
    return 2;
  }
  if (flags.GetBool("print", false)) {
    std::printf("%s", FormatGroups(groups, data.num_dims()).c_str());
  }
  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    const Status status = SaveCubeToFile(
        out, data.num_dims(), data.num_objects(), groups, data.dim_names());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("cube saved to %s\n", out.c_str());
  }
  return 0;
}

struct LoadedQueryCube {
  CompressedSkylineCube cube;
  std::vector<std::string> dim_names;
};

Result<LoadedQueryCube> LoadCube(const FlagParser& flags) {
  const std::string path = flags.GetString("cube", "");
  if (path.empty()) {
    return Status::InvalidArgument("--cube is required");
  }
  Result<SerializedCube> loaded = LoadCubeFromFile(path);
  if (!loaded.ok()) return loaded.status();
  return LoadedQueryCube{
      CompressedSkylineCube(loaded.value().num_dims,
                            loaded.value().num_objects,
                            std::move(loaded.value().groups)),
      std::move(loaded.value().dim_names)};
}

int Query(const FlagParser& flags) {
  Result<LoadedQueryCube> loaded = LoadCube(flags);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const CompressedSkylineCube& cube = loaded.value().cube;
  if (flags.Has("subspace") || flags.Has("columns")) {
    DimMask mask = 0;
    if (flags.Has("columns")) {
      // Column names, e.g. --columns=price,stops (needs a cube saved with
      // names).
      const Result<DimMask> parsed = MaskFromNameList(
          loaded.value().dim_names, flags.GetString("columns", ""));
      if (!parsed.ok()) {
        std::fprintf(stderr, "query: %s%s\n",
                     parsed.status().ToString().c_str(),
                     loaded.value().dim_names.empty()
                         ? " (cube file has no column names)"
                         : "");
        return 2;
      }
      mask = parsed.value();
    } else {
      mask = MaskFromLetters(flags.GetString("subspace", ""),
                             cube.num_dims());
    }
    if (mask == 0) {
      std::fprintf(stderr, "query: empty subspace\n");
      return 2;
    }
    const std::vector<ObjectId> skyline = cube.SubspaceSkyline(mask);
    std::printf("skyline of %s: %zu objects\n", FormatMask(mask).c_str(),
                skyline.size());
    for (ObjectId id : skyline) std::printf("%u\n", id);
    return 0;
  }
  if (flags.Has("object")) {
    const ObjectId id = static_cast<ObjectId>(flags.GetInt("object", 0));
    if (id >= cube.num_objects()) {
      std::fprintf(stderr, "query: object id out of range\n");
      return 2;
    }
    std::printf("object %u is in the skyline of %llu subspaces\n", id,
                static_cast<unsigned long long>(
                    cube.CountSubspacesWhereSkyline(id)));
    for (const auto& interval : cube.MembershipIntervals(id)) {
      std::printf("  every A with %s ⊆ A ⊆ %s\n",
                  FormatMask(interval.lower).c_str(),
                  FormatMask(interval.upper).c_str());
    }
    return 0;
  }
  std::fprintf(stderr,
               "query: pass --subspace=LETTERS, --columns=NAMES or "
               "--object=ID\n");
  return 2;
}

int Inspect(const FlagParser& flags) {
  Result<LoadedQueryCube> loaded = LoadCube(flags);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const CompressedSkylineCube& c = loaded.value().cube;
  const uint64_t total = c.TotalSubspaceSkylineObjects();
  std::printf("dims: %d  objects: %zu  groups: %zu\n", c.num_dims(),
              c.num_objects(), c.num_groups());
  std::printf("subspace skyline objects: %llu  (compression ratio %.1fx)\n",
              static_cast<unsigned long long>(total),
              c.num_groups() == 0
                  ? 0.0
                  : static_cast<double>(total) /
                        static_cast<double>(c.num_groups()));
  const int64_t top = flags.GetInt("top", 5);
  std::printf("most frequent skyline objects:\n");
  for (const auto& [id, freq] :
       TopKFrequentSkylineObjects(c, static_cast<size_t>(top))) {
    std::printf("  object %-8u in %llu subspaces\n", id,
                static_cast<unsigned long long>(freq));
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const FlagParser flags(argc - 1, argv + 1);
  if (command == "generate") return Generate(flags);
  if (command == "nba") return Nba(flags);
  if (command == "compute") return Compute(flags);
  if (command == "query") return Query(flags);
  if (command == "inspect") return Inspect(flags);
  return Usage();
}

}  // namespace
}  // namespace skycube

int main(int argc, char** argv) { return skycube::Run(argc, argv); }
