// skycube_router — scatter–gather front end over N shard servers
// (docs/SHARDING.md). Speaks the src/net binary protocol on both sides:
// clients connect to it exactly like to a single skycube_serve socket; it
// fans each query out to the shard backends (tools/skycube_serve
// --shard-index), merges the per-shard subspace skylines with one ranked
// dominance refilter pass, and degrades explicitly — a down or over-budget
// shard yields a partial-flagged answer over the survivors, never a wrong
// one.
//
// The router bootstraps its own full row copy from the same data source
// the shards loaded (global id = source position, owner = consistent-hash
// ring), so shards ship only local row ids back.
//
// Replication (docs/REPLICATION.md): a shard entry may list standby
// replicas after `+` — e.g. --shards=:7001+:7101+:7201,:7002+:7102 — and
// the router then fails over to the most-caught-up replica (kReplPromote)
// when a primary dies, instead of degrading to a partial answer.
//
// Flags:
//   --shards=H:P[+H:P...],...  shard endpoints (primary[+replicas]),
//                              index order = shard index
//   --data=FILE.csv       bootstrap rows (must match the shards' source)
//   --synthetic           bootstrap --dist/--tuples/--dims/--seed/--truncate
//   --negate              negate --data values (as the shards did)
//   --ring-seed=S         consistent-hash seed  (default 0, must match)
//   --ring-vnodes=V       vnodes per shard      (default 64, must match)
//   --deadline-ms=N       per-request deadline, 0 = none     (default 0)
//   --budget-fraction=F   shard-wave share of the deadline   (default 0.9)
//   --hedge-ms=N          minimum hedge delay                (default 10)
//   --hedge-factor=F      hedge at F × shard p95             (default 3.0)
//   --no-hedge            disable hedged reads
//   --down-after=N        failures before a shard is down    (default 3)
//   --retry-ms=N          initial down-shard probe delay     (default 100)
//                         (doubles up to --retry-max-ms with ±20% jitter;
//                         a success resets it)
//   --retry-max-ms=N      probe-delay cap                    (default 30000)
//   --staleness=N         replica-read bound, records        (default 4096)
// Socket (same as skycube_serve):
//   --port=N --listen=HOST --net-threads=N --net-queue=N --max-pipeline=N
//   --max-connections=N
//
// SIGTERM/SIGINT drain gracefully, exactly like skycube_serve socket mode.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "net/server.h"
#include "router/router.h"

namespace skycube {
namespace {

volatile std::sig_atomic_t g_shutdown_signal = 0;

extern "C" void OnShutdownSignal(int sig) { g_shutdown_signal = sig; }

void InstallShutdownHandlers() {
  struct sigaction action = {};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

/// Parses one "host:port" (host defaults to 127.0.0.1 when the entry is
/// just a port or ":port").
bool ParseOneEndpoint(const std::string& entry,
                      router::ShardEndpoint* endpoint) {
  const size_t colon = entry.rfind(':');
  const std::string port_text =
      colon == std::string::npos ? entry : entry.substr(colon + 1);
  if (colon != std::string::npos && colon > 0) {
    endpoint->host = entry.substr(0, colon);
  }
  char* end = nullptr;
  const unsigned long port = std::strtoul(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port == 0 ||
      port > 65535) {
    std::fprintf(stderr, "bad shard endpoint '%s'\n", entry.c_str());
    return false;
  }
  endpoint->port = static_cast<uint16_t>(port);
  return true;
}

/// Parses "host:port[+host:port...],..." — commas separate shards, `+`
/// separates a shard's primary from its standby replicas.
bool ParseEndpoints(const std::string& spec,
                    std::vector<router::ShardEndpointSet>* endpoints) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    router::ShardEndpointSet set;
    size_t member_start = 0;
    bool first = true;
    while (member_start <= entry.size()) {
      size_t plus = entry.find('+', member_start);
      if (plus == std::string::npos) plus = entry.size();
      const std::string member = entry.substr(member_start, plus - member_start);
      member_start = plus + 1;
      if (member.empty()) continue;
      router::ShardEndpoint endpoint;
      if (!ParseOneEndpoint(member, &endpoint)) return false;
      if (first) {
        set.primary = std::move(endpoint);
        first = false;
      } else {
        set.replicas.push_back(std::move(endpoint));
      }
    }
    if (first) continue;  // entry was all separators
    endpoints->push_back(std::move(set));
  }
  return !endpoints->empty();
}

int Usage() {
  std::fprintf(stderr,
               "usage: skycube_router --shards=H:P,... (--data=FILE.csv | "
               "--synthetic) --port=N [flags]\n(see the header of "
               "tools/skycube_router.cc)\n");
  return 2;
}

int Run(const FlagParser& flags) {
  std::vector<router::ShardEndpointSet> endpoints;
  if (!flags.Has("shards") ||
      !ParseEndpoints(flags.GetString("shards", ""), &endpoints)) {
    return Usage();
  }

  // The bootstrap source: the same rows, in the same order, the shards
  // loaded (they filtered by ring ownership; the router keeps all).
  Dataset source(1);
  if (flags.Has("data")) {
    Result<Dataset> loaded = Dataset::FromCsvFile(flags.GetString("data", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    source = std::move(loaded).value();
    if (flags.GetBool("negate", false)) source = source.Negated();
  } else if (flags.GetBool("synthetic", false)) {
    SyntheticSpec spec;
    spec.distribution =
        DistributionFromName(flags.GetString("dist", "independent"));
    spec.num_objects = static_cast<size_t>(flags.GetInt("tuples", 2000));
    spec.num_dims = static_cast<int>(flags.GetInt("dims", 6));
    spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
    spec.truncate_decimals = static_cast<int>(flags.GetInt("truncate", 4));
    source = GenerateSynthetic(spec);
  } else {
    return Usage();
  }

  router::RouterOptions options;
  options.ring_seed = static_cast<uint64_t>(flags.GetInt("ring-seed", 0));
  options.ring_vnodes = static_cast<int>(flags.GetInt("ring-vnodes", 64));
  options.scatter.budget_fraction = flags.GetDouble("budget-fraction", 0.9);
  options.shard.hedge_reads = !flags.GetBool("no-hedge", false);
  options.shard.hedge_min_millis = flags.GetInt("hedge-ms", 10);
  options.shard.hedge_factor = flags.GetDouble("hedge-factor", 3.0);
  options.shard.down_after_failures =
      static_cast<int>(flags.GetInt("down-after", 3));
  options.shard.probe.initial_millis = flags.GetInt("retry-ms", 100);
  options.shard.probe.max_millis = flags.GetInt("retry-max-ms", 30000);
  options.replica_set.max_staleness_records =
      static_cast<uint64_t>(flags.GetInt("staleness", 4096));

  router::RouterExecutor executor(source.num_dims(), endpoints, options);
  const size_t num_rows = source.num_objects();
  for (ObjectId gid = 0; gid < static_cast<ObjectId>(num_rows); ++gid) {
    executor.BootstrapRow(source.Row(gid));
  }
  std::fprintf(stderr, "router over %zu shards, %zu rows, %d dims\n",
               executor.num_shards(), num_rows, executor.num_dims());

  net::NetServerOptions net_options;
  net_options.host = flags.GetString("listen", "127.0.0.1");
  net_options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  net_options.dispatch_threads =
      static_cast<int>(flags.GetInt("net-threads", 0));
  net_options.dispatch_queue_capacity =
      static_cast<size_t>(flags.GetInt("net-queue", 4096));
  net_options.max_pipeline =
      static_cast<size_t>(flags.GetInt("max-pipeline", 1024));
  net_options.max_connections =
      static_cast<size_t>(flags.GetInt("max-connections", 0));
  net_options.deadline_millis = flags.GetInt("deadline-ms", 0);

  net::NetServer server(&executor, net_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  InstallShutdownHandlers();
  std::fprintf(stderr, "listening on %s:%u (%d-dim cube, %zu shards)\n",
               net_options.host.c_str(), static_cast<unsigned>(server.port()),
               executor.num_dims(), executor.num_shards());
  std::fflush(stderr);
  server.Run(
      [&server] {
        if (g_shutdown_signal != 0) server.BeginDrain();
      },
      /*tick_millis=*/100);
  executor.BeginDrain();
  if (g_shutdown_signal != 0) {
    std::fprintf(stderr, "signal %d: drained, exiting\n",
                 static_cast<int>(g_shutdown_signal));
  }
  return 0;
}

}  // namespace
}  // namespace skycube

int main(int argc, char** argv) {
  const skycube::FlagParser flags(argc, argv);
  return skycube::Run(flags);
}
