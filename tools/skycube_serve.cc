// skycube_serve — long-lived front end to SkycubeService, in two modes:
//
//  - REPL (default): one query per line on stdin, one answer line on
//    stdout (prefix "ok" or "err"), scriptable from tests and pipelines;
//  - socket (--port / --listen): the src/net/ binary-protocol server —
//    epoll event loop, length-prefixed checksummed frames, pipelined
//    requests, explicit kResourceExhausted overload shedding, and the
//    same health/stats lines served as protocol messages (docs/NET.md).
//
// Both modes are backed by either a saved cube file (read-only) or a CSV /
// synthetic dataset (insert-capable: each insert runs the incremental
// maintainer and hot-swaps the service snapshot).
//
// Data source (exactly one):
//   --cube=FILE        saved cube (skycube_cli compute --out=...)
//   --data=FILE.csv    dataset; cube built with Stellar  [--negate]
//   --synthetic        generated dataset: --dist=independent|correlated|anti
//                      --tuples=N --dims=D [--seed=S] [--truncate=K]
// Shard partition (docs/SHARDING.md) — serve one shard of a dataset source:
//   --shard-count=N      total shards; keep only rows the consistent-hash
//                        ring assigns to this shard (row id = position in
//                        the source, the router's global id)
//   --shard-index=K      this shard's index in [0, N)
//   --ring-seed=S        ring seed (must match the router)    (default 0)
//   --ring-vnodes=V      virtual nodes per shard              (default 64)
// Durability (docs/ROBUSTNESS.md, "Durability & recovery"):
//   --data-dir=DIR       durable ingest: WAL + checkpoints live in DIR. If
//                        DIR holds state it is recovered (crash-safe);
//                        otherwise --data/--synthetic bootstraps it. Inserts
//                        are acknowledged only after the WAL append.
//   --fsync-policy=P     always | every | timer                (default always)
//   --fsync-every=N      records between syncs under 'every'   (default 64)
//   --fsync-interval-ms=N max unsynced age under 'timer'       (default 5)
//   --checkpoint-every=N inserts between checkpoints, 0 = off  (default 256)
//   --keep-checkpoints=N retention depth                       (default 2)
// Replication (docs/REPLICATION.md) — socket + --data-dir mode only:
//   --replica-of=H:P     run as a hot standby of the primary at H:P: wipe
//                        the data dir, bootstrap from the primary's newest
//                        checkpoint (kReplSnapshot), then tail its WAL
//                        (kReplFetch), applying byte-verbatim. Mutations
//                        answer kInvalidArgument until a kReplPromote
//                        arrives (usually from the router's failover path),
//                        which stops the tail and opens the write path.
//   --repl-fence-ms=N    primary ack fence: hold each mutation ack until a
//                        live follower acked its LSN, at most N ms, then
//                        degrade that mutation to async (0 = always async)
//                        (default 1000)
// Every durable socket server answers the replication opcodes, so any
// --data-dir server can be a primary; replicas serve reads while tailing.
// Sliding window (docs/ROBUSTNESS.md, "Deletes, windows, and epoch-diff"):
//   --window-ms=N        retention window: rows whose ingest timestamp is
//                        older than now-N are expired by a background pass
//                        (0 = no window, the default)
//   --expiry-interval-ms=N  period between expiry passes   (default 1000)
// Service knobs:
//   --cache-capacity=N   result-cache entries, 0 disables   (default 65536)
//   --cache-shards=N     LRU shards                         (default 8)
//   --threads=N          batch-pool workers, 0 = hardware   (default 0)
//   --max-in-flight=N    admission-control slots, 0 = off   (default 0)
//   --queue-wait-ms=N    shed after waiting N ms for a slot (default 0)
//   --deadline-ms=N      per-request deadline, 0 = none     (default 0)
// Socket mode (binary wire protocol, docs/NET.md) — either flag selects it:
//   --port=N             listen on 127.0.0.1:N; 0 binds an ephemeral port.
//                        The final address is printed to stderr as
//                        "listening on HOST:PORT" (tests scrape this line)
//   --listen=HOST        bind address                    (default 127.0.0.1)
//   --net-threads=N      dispatch workers, 0 = hardware     (default 0)
//   --net-queue=N        bounded dispatch queue; overflow answers
//                        kResourceExhausted frames          (default 4096)
//   --max-pipeline=N     unanswered requests per connection before the
//                        server stops reading that socket   (default 1024)
//   --max-connections=N  open-connection cap, 0 = none      (default 0)
//
// Protocol (case-insensitive command word; subspaces as letters, "ACD"):
//   skyline SUBSPACE      Q1  -> ok n=3 v=1 hit=0 ids=0 4 17
//   card SUBSPACE         Q1  -> ok count=3 v=1 hit=1
//   member ID SUBSPACE    Q2  -> ok member=yes v=1 hit=0
//   count ID              Q3  -> ok count=17 v=1 hit=0
//   total                 Q3  -> ok count=40310 v=1 hit=0
//   batch Q; Q; ...       fan-out over the pool; answers joined with " ; "
//   diff SUBSPACE SINCE   epoch diff: skyline rows entered/left since
//                         snapshot version SINCE -> ok entered=2 left=1 ...
//   insert V1,V2,...      add a row (not with --cube) and swap the snapshot;
//                         with --data-dir the ack carries the WAL lsn
//   delete ID             tombstone a row (idempotent; not with --cube);
//                         the ack reports the maintenance path taken
//   expire CUTOFF_MS      run one synchronous expiry pass: tombstone every
//                         live row with 0 < timestamp < CUTOFF_MS
//   health                readiness + durability/recovery counters
//   stats                 one-line service counters
//   help | quit
//
// SIGTERM/SIGINT drain gracefully: new requests answer kUnavailable, the
// WAL is flushed and a final checkpoint written before exit (same path as
// 'quit'). SIGKILL is the crash case tools/skycube_crashtest.cc exercises.
//
// SKYCUBE_ARM_FAULTS=point[=count][,point...] arms fault-injection points
// at startup (builds with SKYCUBE_FAULT_INJECTION only) — the crash test
// uses this to detonate wal.append_torn / checkpoint.crash_before_rename
// inside a child server.
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/consistent_hash.h"
#include "common/fault_injection.h"
#include "common/flags.h"
#include "common/subspace.h"
#include "core/maintenance.h"
#include "core/serialization.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "net/repl_client.h"
#include "net/server.h"
#include "service/service.h"
#include "service/text_format.h"
#include "service/window_expiry.h"
#include "storage/durable_ingest.h"
#include "storage/replication.h"

namespace skycube {
namespace {

struct ServeSession {
  std::unique_ptr<SkycubeService> service;
  /// Present when insert-capable without durability (--data / --synthetic).
  std::unique_ptr<IncrementalCubeMaintainer> maintainer;
  std::unique_ptr<MaintainerInsertHandler> volatile_ingest;
  /// Present with --data-dir: WAL + checkpoints + recovery.
  std::unique_ptr<DurableIngest> durable;
  /// Present with --window-ms > 0: the sliding-window expiry timer.
  /// Declared after the layers it drives so it is destroyed first.
  std::unique_ptr<WindowExpiry> expiry;
  /// Replication (docs/REPLICATION.md), durable socket mode only. The
  /// shipper exists on every durable server (any of them can feed a
  /// follower); the replicated handler wraps `durable` on a primary; the
  /// source + follower exist on a replica until promotion. Declared after
  /// `durable` so the follower thread is destroyed before the ingest layer
  /// it applies into.
  std::unique_ptr<WalShipper> shipper;
  std::unique_ptr<ReplicatedInsertHandler> replicated;
  std::unique_ptr<net::RemoteReplicationSource> repl_source;
  std::unique_ptr<WalFollower> follower;
  /// True while this process tails a primary (flips at promotion).
  std::atomic<bool> replica{false};
  /// Serializes the kReplPromote role transition.
  Mutex promote_mu;
  /// --repl-fence-ms, remembered for the handler built at promotion.
  int64_t repl_fence_millis = 0;
  int num_dims = 0;
  /// Per-request time budget (--deadline-ms); 0 = unlimited.
  int64_t deadline_millis = 0;

  QueryRequest WithDeadline(const QueryRequest& request) const {
    return deadline_millis > 0
               ? request.WithDeadline(Deadline::AfterMillis(deadline_millis))
               : request;
  }
};

/// Last shutdown signal received (0 = none). sig_atomic_t: written from the
/// handler, read from the serve loop.
volatile std::sig_atomic_t g_shutdown_signal = 0;

extern "C" void OnShutdownSignal(int sig) { g_shutdown_signal = sig; }

/// SIGTERM/SIGINT request a drain. Deliberately no SA_RESTART: the blocking
/// stdin read must fail with EINTR so the serve loop observes the flag
/// instead of waiting for the next input line.
void InstallShutdownHandlers() {
  struct sigaction action = {};
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

/// SKYCUBE_ARM_FAULTS=point[=count][,point...] — arm fault points inside a
/// forked server (no test harness can reach this process's registry).
void ArmFaultsFromEnv() {
  const char* spec = std::getenv("SKYCUBE_ARM_FAULTS");
  if (spec == nullptr || !FaultInjection::Enabled()) return;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    int count = 1;
    const size_t eq = item.find('=');
    if (eq != std::string::npos) {
      count = std::atoi(item.c_str() + eq + 1);
    }
    FaultInjection::Instance().ArmFailure(item.substr(0, eq), count);
  }
}

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

/// Parses "ACD" into a mask, validating against num_dims; nullopt + message
/// on bad input (the server must not die on a typo).
std::optional<DimMask> ParseSubspace(const std::string& letters,
                                     int num_dims, std::string* error) {
  if (letters.empty()) {
    *error = "empty subspace";
    return std::nullopt;
  }
  DimMask mask = 0;
  for (char c : letters) {
    if (c < 'A' || c > 'Z') {
      *error = "subspace must be uppercase letters, e.g. ACD";
      return std::nullopt;
    }
    const int dim = c - 'A';
    if (dim >= num_dims) {
      *error = "dimension '" + std::string(1, c) + "' beyond the cube's " +
               std::to_string(num_dims) + " dimensions";
      return std::nullopt;
    }
    mask |= DimBit(dim);
  }
  return mask;
}

/// Parses one protocol line into a request; nullopt + message on failure.
std::optional<QueryRequest> ParseQuery(const std::string& line, int num_dims,
                                       std::string* error) {
  std::istringstream in(line);
  std::string command;
  in >> command;
  command = Lower(command);
  if (command == "skyline" || command == "card") {
    std::string letters;
    in >> letters;
    const auto mask = ParseSubspace(letters, num_dims, error);
    if (!mask) return std::nullopt;
    return command == "skyline" ? QueryRequest::SubspaceSkyline(*mask)
                                : QueryRequest::SkylineCardinality(*mask);
  }
  if (command == "member") {
    long long id = -1;
    std::string letters;
    in >> id >> letters;
    if (id < 0) {
      *error = "usage: member ID SUBSPACE";
      return std::nullopt;
    }
    const auto mask = ParseSubspace(letters, num_dims, error);
    if (!mask) return std::nullopt;
    return QueryRequest::Membership(static_cast<ObjectId>(id), *mask);
  }
  if (command == "count") {
    long long id = -1;
    in >> id;
    if (id < 0) {
      *error = "usage: count ID";
      return std::nullopt;
    }
    return QueryRequest::MembershipCount(static_cast<ObjectId>(id));
  }
  if (command == "total") return QueryRequest::SkycubeSize();
  if (command == "diff") {
    std::string letters;
    long long since = -1;
    in >> letters >> since;
    if (letters.empty() || since <= 0) {
      *error = "usage: diff SUBSPACE SINCE_VERSION";
      return std::nullopt;
    }
    const auto mask = ParseSubspace(letters, num_dims, error);
    if (!mask) return std::nullopt;
    return QueryRequest::EpochDiff(*mask, static_cast<uint64_t>(since));
  }
  *error = "unknown query '" + command + "' (try: help)";
  return std::nullopt;
}

/// Readiness plus durability/recovery counters — what an orchestrator polls.
/// Wraps the shared FormatHealthLine (REPL and wire answer identically) and
/// appends the DurableIngest counters only this process can see.
std::string FormatHealth(const ServeSession& session) {
  std::ostringstream out;
  out << FormatHealthLine(*session.service)
      << " durable=" << (session.durable ? 1 : 0);
  if (session.maintainer) {
    // Volatile ingest: liveness comes straight from the maintainer.
    out << " live=" << session.maintainer->num_live()
        << " tombstones="
        << (session.maintainer->data().num_objects() -
            session.maintainer->num_live());
  }
  if (session.expiry) {
    const WindowExpiryStats expiry = session.expiry->stats();
    out << " expiry_ticks=" << expiry.ticks
        << " expiry_rows=" << expiry.rows_expired
        << " expiry_cutoff_ms=" << expiry.last_cutoff_ms;
  }
  if (session.durable) {
    const DurableIngestStats stats = session.durable->stats();
    out << " recovered=" << (stats.recovered ? 1 : 0)
        << " objects=" << stats.num_objects << " groups=" << stats.num_groups
        << " live=" << stats.num_live
        << " tombstones=" << stats.num_tombstones
        << " last_expiry_ms=" << stats.last_expiry_ms
        << " next_lsn=" << stats.wal.next_lsn
        << " checkpoint_lsn=" << stats.last_checkpoint_lsn
        << " checkpoints=" << stats.checkpoints_written
        << " wal_records=" << stats.wal.records_appended
        << " wal_fsyncs=" << stats.wal.fsyncs
        << " wal_segments=" << stats.wal.segments_created
        << " wal_live_segments=" << stats.wal.live_segments;
    if (stats.recovered) {
      out << " recovery_checkpoint_lsn=" << stats.recovery.checkpoint_lsn
          << " recovery_rejected=" << stats.recovery.checkpoints_rejected
          << " recovery_replayed=" << stats.recovery.wal_records_replayed
          << " recovery_discarded_suffix="
          << (stats.recovery.wal_suffix_discarded ? 1 : 0);
    }
    out << " role="
        << (session.replica.load(std::memory_order_acquire) ? "replica"
                                                            : "primary");
  }
  if (session.shipper) {
    const WalShipperStats repl = session.shipper->stats();
    out << " repl_tip=" << repl.tip_lsn << " repl_acked=" << repl.acked_lsn
        << " repl_followers=" << repl.followers
        << " repl_shipped=" << repl.records_shipped
        << " repl_fence_timeouts=" << repl.fence_timeouts;
  }
  if (session.follower) {
    const WalFollowerStats tail = session.follower->stats();
    out << " repl_applied=" << tail.applied_lsn
        << " repl_primary_tip=" << tail.tip_lsn
        << " repl_lag="
        << (tail.tip_lsn > tail.applied_lsn
                ? tail.tip_lsn - tail.applied_lsn
                : 0)
        << " repl_running=" << (tail.running ? 1 : 0)
        << " repl_fetch_errors=" << tail.fetch_errors
        << " repl_apply_errors=" << tail.apply_errors;
  }
  return out.str();
}

/// The kReplPromote transition (docs/REPLICATION.md, "Promotion"): stop the
/// tail, verify the fence floor, open the write path with the same ack
/// fencing a bootstrapped primary gets. Idempotent — promoting a primary
/// answers ok without touching anything.
net::WireResponse HandlePromote(ServeSession& session,
                                const net::WireRequest& request) {
  MutexLock lock(&session.promote_mu);
  net::WireResponse response;
  response.id = request.id;
  response.request_op = request.op;
  response.snapshot_version = session.service->snapshot_version();
  if (!session.replica.load(std::memory_order_acquire)) {
    response.lsn = session.durable->stats().wal.next_lsn - 1;
    response.text = "primary";
    return response;
  }
  // Halt the apply loop first: the applied tip is final after this, and
  // the fence check below sees it.
  session.follower->Stop();
  const uint64_t applied = session.durable->stats().wal.next_lsn - 1;
  if (applied < request.ack_lsn) {
    // The router observed a higher LSN on this replica than it actually
    // holds — promoting would lose acked writes. Resume tailing.
    session.follower->Start();
    return net::ErrorWireResponse(
        request, StatusCode::kInvalidArgument,
        "replica applied lsn " + std::to_string(applied) +
            " is behind the promotion fence " +
            std::to_string(request.ack_lsn));
  }
  // No truncation: the fence is a floor (see storage/replication.h). The
  // applied tip is a superset of every client-acked write.
  session.replicated = std::make_unique<ReplicatedInsertHandler>(
      session.durable.get(), session.shipper.get(),
      std::chrono::milliseconds(session.repl_fence_millis));
  session.service->AttachInsertHandler(session.replicated.get());
  session.replica.store(false, std::memory_order_release);
  std::fprintf(stderr, "promoted to primary at lsn %llu (fence %llu)\n",
               static_cast<unsigned long long>(applied),
               static_cast<unsigned long long>(request.ack_lsn));
  std::fflush(stderr);
  response.lsn = applied;
  response.text = "promoted";
  return response;
}

/// Dispatch for the replication opcodes (runs on a dispatch-pool thread,
/// never the event loop — kReplFetch long-polls and kReplSnapshot reads
/// checkpoint files).
net::WireResponse HandleRepl(ServeSession& session,
                             const net::WireRequest& request) {
  net::WireResponse response;
  response.id = request.id;
  response.request_op = request.op;
  response.snapshot_version = session.service->snapshot_version();
  switch (request.op) {
    case net::Opcode::kReplFetch: {
      Result<ShippedBatch> batch = session.shipper->Fetch(
          request.ack_lsn, request.max_records,
          std::chrono::milliseconds(request.wait_millis));
      if (!batch.ok()) {
        return net::ErrorWireResponse(request, batch.status().code(),
                                      batch.status().message());
      }
      response.lsn = batch.value().tip_lsn;
      response.count = batch.value().records.size();
      response.text = EncodeShippedRecords(batch.value().records);
      return response;
    }
    case net::Opcode::kReplSnapshot: {
      Result<ReplicationSnapshot> snapshot = session.shipper->Snapshot();
      if (!snapshot.ok()) {
        return net::ErrorWireResponse(request, snapshot.status().code(),
                                      snapshot.status().message());
      }
      response.lsn = snapshot.value().lsn;
      response.text = std::move(snapshot.value().bytes);
      return response;
    }
    case net::Opcode::kReplState: {
      response.lsn = session.durable->stats().wal.next_lsn - 1;
      response.count = session.shipper->stats().followers;
      response.text = session.replica.load(std::memory_order_acquire)
                          ? "replica"
                          : "primary";
      return response;
    }
    case net::Opcode::kReplPromote:
      return HandlePromote(session, request);
    default:
      return net::ErrorWireResponse(request, StatusCode::kInvalidArgument,
                                    "not a replication opcode");
  }
}

std::string HandleInsert(ServeSession& session, const std::string& args) {
  std::vector<double> values;
  std::istringstream in(args);
  std::string cell;
  while (std::getline(in, cell, ',')) {
    try {
      values.push_back(std::stod(cell));
    } catch (...) {
      return "err bad value '" + cell + "'";
    }
  }
  if (static_cast<int>(values.size()) != session.num_dims) {
    return "err insert needs " + std::to_string(session.num_dims) +
           " comma-separated values";
  }
  // Through the service like any other request: the service serializes
  // writers, applies via the attached handler (durable or volatile), swaps
  // the snapshot, and only then builds the acknowledgement.
  return FormatResponseLine(
      session.service->Execute(QueryRequest::Insert(std::move(values))));
}

std::string HandleDelete(ServeSession& session, const std::string& args) {
  std::istringstream in(args);
  long long id = -1;
  in >> id;
  if (id < 0) return "err usage: delete ID";
  // Like inserts: through the service, which serializes mutations, applies
  // via the attached handler, and swaps the snapshot when anything changed.
  return FormatResponseLine(
      session.service->Execute(QueryRequest::Delete(static_cast<ObjectId>(id))));
}

std::string HandleExpire(ServeSession& session, const std::string& args) {
  std::istringstream in(args);
  long long cutoff = -1;
  in >> cutoff;
  if (cutoff <= 0) return "err usage: expire CUTOFF_MS";
  Result<uint64_t> expired =
      session.service->ApplyExpiry(static_cast<uint64_t>(cutoff));
  if (!expired.ok()) return "err " + expired.status().ToString();
  std::ostringstream out;
  out << "ok expired=" << expired.value()
      << " v=" << session.service->snapshot_version();
  return out.str();
}

std::string HandleBatch(ServeSession& session, const std::string& args) {
  std::vector<QueryRequest> requests;
  std::istringstream in(args);
  std::string part;
  while (std::getline(in, part, ';')) {
    // Trim surrounding spaces.
    const size_t first = part.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    part = part.substr(first, part.find_last_not_of(" \t") - first + 1);
    std::string error;
    const auto request = ParseQuery(part, session.num_dims, &error);
    if (!request) return "err " + error;
    requests.push_back(*request);
  }
  if (requests.empty()) return "err batch needs ';'-separated queries";
  for (QueryRequest& request : requests) {
    request = session.WithDeadline(request);
  }
  const std::vector<QueryResponse> responses =
      session.service->ExecuteBatch(requests);
  std::ostringstream out;
  for (size_t i = 0; i < responses.size(); ++i) {
    out << (i == 0 ? "" : " ; ") << FormatResponseLine(responses[i]);
  }
  return out.str();
}

int Usage() {
  std::fprintf(stderr,
               "usage: skycube_serve (--cube=FILE | --data=FILE.csv | "
               "--synthetic | --data-dir=DIR) [flags]\n(see the header of "
               "tools/skycube_serve.cc)\n");
  return 2;
}

/// --shard-count=N --shard-index=K: keeps only the rows the consistent-hash
/// ring assigns to shard K, in ascending global-id (source-position) order —
/// the exact partition the scatter–gather router expects this shard to own
/// (docs/SHARDING.md).
Result<Dataset> FilterShardRows(Dataset data, const FlagParser& flags) {
  const long long shard_count = flags.GetInt("shard-count", 0);
  if (shard_count <= 0) return data;
  const long long shard_index = flags.GetInt("shard-index", -1);
  if (shard_index < 0 || shard_index >= shard_count) {
    return Status::InvalidArgument(
        "--shard-index must be in [0, --shard-count)");
  }
  const HashRing ring(static_cast<size_t>(shard_count),
                      static_cast<uint64_t>(flags.GetInt("ring-seed", 0)),
                      static_cast<int>(flags.GetInt("ring-vnodes", 64)));
  Dataset shard(data.num_dims(), data.dim_names());
  const ObjectId num_rows = static_cast<ObjectId>(data.num_objects());
  for (ObjectId gid = 0; gid < num_rows; ++gid) {
    if (ring.OwnerOf(gid) != static_cast<size_t>(shard_index)) continue;
    const double* row = data.Row(gid);
    shard.AddRow(std::vector<double>(row, row + data.num_dims()));
  }
  std::fprintf(stderr, "shard %lld/%lld owns %zu of %zu rows\n", shard_index,
               shard_count, shard.num_objects(), data.num_objects());
  return shard;
}

/// Loads --data or generates --synthetic (the two dataset-backed sources),
/// then applies the --shard-count/--shard-index partition filter.
Result<Dataset> LoadSourceDataset(const FlagParser& flags) {
  if (flags.Has("data")) {
    Result<Dataset> loaded = Dataset::FromCsvFile(flags.GetString("data", ""));
    if (!loaded.ok()) return loaded.status();
    Dataset data = std::move(loaded).value();
    if (flags.GetBool("negate", false)) data = data.Negated();
    return FilterShardRows(std::move(data), flags);
  }
  SyntheticSpec spec;
  spec.distribution =
      DistributionFromName(flags.GetString("dist", "independent"));
  spec.num_objects = static_cast<size_t>(flags.GetInt("tuples", 2000));
  spec.num_dims = static_cast<int>(flags.GetInt("dims", 6));
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  spec.truncate_decimals = static_cast<int>(flags.GetInt("truncate", 4));
  return FilterShardRows(GenerateSynthetic(spec), flags);
}

/// Socket mode: the src/net/ binary-protocol server in front of the same
/// session. SIGTERM/SIGINT begin the network drain (in-flight requests
/// complete, connections flush and close); once Run() returns, the service
/// and durable layers drain exactly as the REPL's exit path does.
int ServeSocket(const FlagParser& flags, ServeSession& session) {
  net::NetServerOptions net_options;
  net_options.host = flags.GetString("listen", "127.0.0.1");
  net_options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  net_options.dispatch_threads =
      static_cast<int>(flags.GetInt("net-threads", 0));
  net_options.dispatch_queue_capacity =
      static_cast<size_t>(flags.GetInt("net-queue", 4096));
  net_options.max_pipeline =
      static_cast<size_t>(flags.GetInt("max-pipeline", 1024));
  net_options.max_connections =
      static_cast<size_t>(flags.GetInt("max-connections", 0));
  net_options.deadline_millis = session.deadline_millis;
  // The wire's health/stats opcodes answer with the same lines the REPL
  // prints — including the durability counters only this tool can see.
  net_options.health_text = [&session] { return FormatHealth(session); };
  net_options.stats_text = [&session] {
    return FormatStatsLine(*session.service);
  };
  // Durable servers answer the replication opcodes; the handler runs on a
  // dispatch-pool thread (kReplFetch long-polls, kReplSnapshot reads files).
  if (session.durable) {
    net_options.repl_handler = [&session](const net::WireRequest& request) {
      return HandleRepl(session, request);
    };
  }

  net::NetServer server(session.service.get(), net_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  InstallShutdownHandlers();
  std::fprintf(stderr, "listening on %s:%u (%d-dim cube, version %llu)\n",
               net_options.host.c_str(), static_cast<unsigned>(server.port()),
               session.num_dims,
               static_cast<unsigned long long>(
                   session.service->snapshot_version()));
  std::fflush(stderr);
  server.Run(
      [&server] {
        if (g_shutdown_signal != 0) server.BeginDrain();
      },
      /*tick_millis=*/100);

  // The network layer has flushed and closed every connection; now drain
  // the layers beneath it (same as the REPL's quit path). The follower's
  // apply loop must stop first — it feeds the ingest the drain flushes.
  if (session.follower) session.follower->Stop();
  session.service->BeginDrain();
  if (session.durable) {
    Status drained = session.durable->Drain();
    if (!drained.ok()) {
      std::fprintf(stderr, "drain failed: %s\n", drained.ToString().c_str());
      return 1;
    }
  }
  if (g_shutdown_signal != 0) {
    std::fprintf(stderr, "signal %d: drained%s, exiting\n",
                 static_cast<int>(g_shutdown_signal),
                 session.durable ? " (wal flushed, final checkpoint written)"
                                 : "");
  }
  return 0;
}

int Serve(const FlagParser& flags) {
  ServeSession session;
  SkycubeServiceOptions options;
  options.cache.capacity =
      static_cast<size_t>(flags.GetInt("cache-capacity", 1 << 16));
  options.cache.num_shards =
      static_cast<size_t>(flags.GetInt("cache-shards", 8));
  options.batch_threads = static_cast<int>(flags.GetInt("threads", 0));
  options.max_in_flight =
      static_cast<size_t>(flags.GetInt("max-in-flight", 0));
  options.queue_wait_timeout =
      std::chrono::milliseconds(flags.GetInt("queue-wait-ms", 0));
  // Every insert carries its ingest wall time so --window-ms can age rows
  // out (rows loaded at bootstrap carry timestamp 0 and never expire).
  options.ingest_clock = [] {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  };
  session.deadline_millis = flags.GetInt("deadline-ms", 0);

  const bool has_dataset_source =
      flags.Has("data") || flags.GetBool("synthetic", false);
  if (flags.Has("data-dir")) {
    if (flags.Has("cube")) {
      std::fprintf(stderr,
                   "--data-dir and --cube are exclusive (durable ingest "
                   "needs the maintainable dataset form)\n");
      return 2;
    }
    const std::string dir = flags.GetString("data-dir", "");
    DurableIngestOptions ingest_options;
    Result<FsyncPolicy> policy =
        FsyncPolicyFromName(flags.GetString("fsync-policy", "always"));
    if (!policy.ok()) {
      std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
      return 2;
    }
    ingest_options.wal.fsync_policy = policy.value();
    ingest_options.wal.fsync_every_n =
        static_cast<int>(flags.GetInt("fsync-every", 64));
    ingest_options.wal.fsync_interval =
        std::chrono::milliseconds(flags.GetInt("fsync-interval-ms", 5));
    ingest_options.checkpoint_every =
        static_cast<uint64_t>(flags.GetInt("checkpoint-every", 256));
    ingest_options.keep_checkpoints =
        static_cast<size_t>(flags.GetInt("keep-checkpoints", 2));
    session.repl_fence_millis = flags.GetInt("repl-fence-ms", 1000);
    if (flags.Has("replica-of")) {
      // Hot standby: wipe whatever lineage the directory held (a returning
      // ex-primary's divergent suffix must not survive), bootstrap from the
      // primary's newest checkpoint, then tail its WAL.
      std::string replica_host = "127.0.0.1";
      uint16_t replica_port = 0;
      const std::string target = flags.GetString("replica-of", "");
      const size_t colon = target.rfind(':');
      const std::string host_part =
          colon == std::string::npos ? "" : target.substr(0, colon);
      const std::string port_part =
          colon == std::string::npos ? target : target.substr(colon + 1);
      if (!host_part.empty()) replica_host = host_part;
      replica_port = static_cast<uint16_t>(std::atoi(port_part.c_str()));
      if (replica_port == 0) {
        std::fprintf(stderr, "--replica-of needs HOST:PORT, got '%s'\n",
                     target.c_str());
        return 2;
      }
      Status wiped = WipeDurableState(dir);
      if (!wiped.ok()) {
        std::fprintf(stderr, "%s\n", wiped.ToString().c_str());
        return 1;
      }
      session.repl_source = std::make_unique<net::RemoteReplicationSource>(
          replica_host, replica_port);
      // The primary may still be starting (the chaos harness launches both
      // sides at once) — retry the bootstrap snapshot for a while.
      Result<ReplicationSnapshot> snapshot =
          Status::Unavailable("snapshot not attempted");
      for (int attempt = 0; attempt < 150; ++attempt) {
        snapshot = session.repl_source->Snapshot();
        if (snapshot.ok()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }
      if (!snapshot.ok()) {
        std::fprintf(stderr, "replica bootstrap failed: %s\n",
                     snapshot.status().ToString().c_str());
        return 1;
      }
      Status installed =
          InstallSnapshot(dir, snapshot.value().lsn, snapshot.value().bytes);
      if (!installed.ok()) {
        std::fprintf(stderr, "%s\n", installed.ToString().c_str());
        return 1;
      }
      Result<std::unique_ptr<DurableIngest>> opened =
          DurableIngest::Open(dir, nullptr, ingest_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
        return 1;
      }
      session.durable = std::move(opened).value();
      session.num_dims = session.durable->maintainer().data().num_dims();
      session.service = std::make_unique<SkycubeService>(
          std::make_shared<const CompressedSkylineCube>(
              session.durable->maintainer().MakeCube()),
          options);
      // No insert handler: mutations answer kInvalidArgument until
      // kReplPromote flips this process to primary (HandlePromote).
      session.shipper = std::make_unique<WalShipper>(dir);
      session.replica.store(true, std::memory_order_release);
      session.follower = std::make_unique<WalFollower>(
          session.durable.get(), session.repl_source.get(),
          [svc = session.service.get()](const InsertHandler::Applied& applied) {
            if (applied.cube) svc->Reload(applied.cube);
          });
      session.follower->Start();
      std::fprintf(stderr,
                   "replica of %s:%u: bootstrapped %s from snapshot lsn=%llu "
                   "(%llu rows), tailing wal\n",
                   replica_host.c_str(), static_cast<unsigned>(replica_port),
                   dir.c_str(),
                   static_cast<unsigned long long>(snapshot.value().lsn),
                   static_cast<unsigned long long>(
                       session.durable->stats().num_objects));
      std::fflush(stderr);
      if (!flags.Has("port") && !flags.Has("listen")) {
        std::fprintf(stderr, "--replica-of requires socket mode (--port)\n");
        return 2;
      }
      return ServeSocket(flags, session);
    }
    // A directory with durable state recovers from it; a fresh one needs a
    // bootstrap dataset (and ignores none — passing --data/--synthetic with
    // an existing directory just means the bootstrap is unused).
    std::optional<Dataset> bootstrap;
    if (has_dataset_source && !DirHasDurableState(dir)) {
      Result<Dataset> loaded = LoadSourceDataset(flags);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
        return 1;
      }
      bootstrap = std::move(loaded).value();
    }
    Result<std::unique_ptr<DurableIngest>> opened = DurableIngest::Open(
        dir, bootstrap ? &*bootstrap : nullptr, ingest_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    session.durable = std::move(opened).value();
    session.num_dims = session.durable->maintainer().data().num_dims();
    session.service = std::make_unique<SkycubeService>(
        std::make_shared<const CompressedSkylineCube>(
            session.durable->maintainer().MakeCube()),
        options);
    // The replicated decorator notifies/fences the shipper; with no live
    // follower WaitAcked degrades immediately, so an unreplicated durable
    // server pays only an atomic load per mutation.
    session.shipper = std::make_unique<WalShipper>(dir);
    session.replicated = std::make_unique<ReplicatedInsertHandler>(
        session.durable.get(), session.shipper.get(),
        std::chrono::milliseconds(session.repl_fence_millis));
    session.service->AttachInsertHandler(session.replicated.get());
    const DurableIngestStats stats = session.durable->stats();
    if (stats.recovered) {
      std::fprintf(stderr,
                   "recovered %s: checkpoint lsn=%llu rows=%llu, replayed "
                   "%llu wal records (%s), next lsn=%llu\n",
                   dir.c_str(),
                   static_cast<unsigned long long>(
                       stats.recovery.checkpoint_lsn),
                   static_cast<unsigned long long>(
                       stats.recovery.checkpoint_rows),
                   static_cast<unsigned long long>(
                       stats.recovery.wal_records_replayed),
                   stats.recovery.wal_suffix_discarded
                       ? "damaged suffix discarded"
                       : "clean tail",
                   static_cast<unsigned long long>(stats.recovery.next_lsn));
    } else {
      std::fprintf(stderr, "bootstrapped %s: %llu rows checkpointed at lsn 0\n",
                   dir.c_str(),
                   static_cast<unsigned long long>(stats.num_objects));
    }
  } else if (flags.Has("cube")) {
    Result<SerializedCube> loaded =
        LoadCubeFromFile(flags.GetString("cube", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    session.num_dims = loaded.value().num_dims;
    session.service = std::make_unique<SkycubeService>(
        std::make_shared<const CompressedSkylineCube>(
            loaded.value().num_dims, loaded.value().num_objects,
            std::move(loaded.value().groups)),
        options);
  } else if (has_dataset_source) {
    Result<Dataset> loaded = LoadSourceDataset(flags);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    session.num_dims = loaded.value().num_dims();
    session.maintainer = std::make_unique<IncrementalCubeMaintainer>(
        std::move(loaded).value());
    session.volatile_ingest =
        std::make_unique<MaintainerInsertHandler>(session.maintainer.get());
    session.service = std::make_unique<SkycubeService>(
        std::make_shared<const CompressedSkylineCube>(
            session.maintainer->MakeCube()),
        options);
    session.service->AttachInsertHandler(session.volatile_ingest.get());
  } else {
    return Usage();
  }

  const long long window_ms = flags.GetInt("window-ms", 0);
  if (window_ms > 0) {
    if (flags.Has("cube")) {
      std::fprintf(stderr,
                   "--window-ms needs a mutable source (not --cube)\n");
      return 2;
    }
    WindowExpiryOptions expiry_options;
    expiry_options.window_ms = static_cast<uint64_t>(window_ms);
    expiry_options.interval =
        std::chrono::milliseconds(flags.GetInt("expiry-interval-ms", 1000));
    session.expiry = std::make_unique<WindowExpiry>(session.service.get(),
                                                    expiry_options);
    std::fprintf(
        stderr, "window: expiring rows older than %lld ms every %lld ms\n",
        static_cast<long long>(window_ms),
        static_cast<long long>(flags.GetInt("expiry-interval-ms", 1000)));
  }

  if (flags.Has("port") || flags.Has("listen")) {
    return ServeSocket(flags, session);
  }

  std::fprintf(stderr,
               "serving %d-dim cube, version %llu (one query per line; "
               "'help' lists commands)\n",
               session.num_dims,
               static_cast<unsigned long long>(
                   session.service->snapshot_version()));
  InstallShutdownHandlers();
  std::string line;
  while (g_shutdown_signal == 0 && std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string command;
    in >> command;
    command = Lower(command);
    std::string rest;
    std::getline(in, rest);
    if (command.empty()) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::printf(
          "ok commands: skyline S | card S | member ID S | count ID | "
          "total | diff S SINCE | batch Q; Q; ... | insert V1,V2,... | "
          "delete ID | expire CUTOFF_MS | health | stats | quit\n");
    } else if (command == "stats") {
      std::printf("%s\n", FormatStatsLine(*session.service).c_str());
    } else if (command == "health") {
      std::printf("%s\n", FormatHealth(session).c_str());
    } else if (command == "insert") {
      std::printf("%s\n", HandleInsert(session, rest).c_str());
    } else if (command == "delete") {
      std::printf("%s\n", HandleDelete(session, rest).c_str());
    } else if (command == "expire") {
      std::printf("%s\n", HandleExpire(session, rest).c_str());
    } else if (command == "batch") {
      std::printf("%s\n", HandleBatch(session, rest).c_str());
    } else {
      std::string error;
      const auto request = ParseQuery(line, session.num_dims, &error);
      if (!request) {
        std::printf("err %s\n", error.c_str());
      } else {
        std::printf("%s\n",
                    FormatResponseLine(session.service->Execute(
                                       session.WithDeadline(*request)))
                        .c_str());
      }
    }
    std::fflush(stdout);
  }

  // Graceful drain — reached by 'quit', stdin EOF, SIGTERM, or SIGINT. New
  // requests would answer kUnavailable from here on; with durable ingest
  // the WAL is flushed and a final checkpoint written, so the next startup
  // recovers without replaying anything.
  session.service->BeginDrain();
  if (session.durable) {
    Status drained = session.durable->Drain();
    if (!drained.ok()) {
      std::fprintf(stderr, "drain failed: %s\n",
                   drained.ToString().c_str());
      return 1;
    }
  }
  if (g_shutdown_signal != 0) {
    std::fprintf(stderr, "signal %d: drained%s, exiting\n",
                 static_cast<int>(g_shutdown_signal),
                 session.durable ? " (wal flushed, final checkpoint written)"
                                 : "");
  }
  return 0;
}

}  // namespace
}  // namespace skycube

int main(int argc, char** argv) {
  skycube::ArmFaultsFromEnv();
  const skycube::FlagParser flags(argc, argv);
  return skycube::Serve(flags);
}
