// skycube_crashtest — crash-consistency harness for the durable ingest path
// (docs/ROBUSTNESS.md, "Durability & recovery").
//
// Each round forks a skycube_serve child on a fresh --data-dir, streams
// inserts at it, and kills it — SIGKILL at a random point mid-ingest, or a
// deterministic process-abort inside a WAL/checkpoint fault point (armed
// through SKYCUBE_ARM_FAULTS). It then recovers the directory *in-process*
// and enforces the crash-consistency invariant:
//
//   recovered rows = bootstrap + a PREFIX of the sent insert sequence,
//   that prefix contains every acknowledged insert, and
//   recovered groups == ComputeStellar over exactly those rows (golden).
//
// Finally it restarts a real server on the directory and checks it serves
// (health reports recovered=1, a query answers). A graceful-drain round
// proves SIGTERM flushes + checkpoints so the next startup replays nothing.
//
// The parent re-parses the exact value text it sends, so golden rows and
// server rows are bit-identical (both sides run strtod on the same bytes).
//
// Usage (registered as a ctest test):
//   skycube_crashtest --serve=PATH --work-dir=DIR [--rounds=N]
//     [--inserts=N] [--tuples=N] [--dims=D] [--seed=S] [--no-faults]
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/flags.h"
#include "core/maintenance.h"
#include "core/skyline_group.h"
#include "core/stellar.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "storage/recovery.h"

namespace skycube {
namespace {

int g_failures = 0;

#define CHECK_ROUND(cond, ...)                       \
  do {                                               \
    if (!(cond)) {                                   \
      std::fprintf(stderr, "FAIL [%s] ", round_tag); \
      std::fprintf(stderr, __VA_ARGS__);             \
      std::fprintf(stderr, "\n");                    \
      ++g_failures;                                  \
      return;                                        \
    }                                                \
  } while (0)

/// xorshift64* — deterministic across platforms.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 2685821657736338717ull;
  }
  uint64_t Bounded(uint64_t n) { return n == 0 ? 0 : Next() % n; }
};

struct Child {
  pid_t pid = -1;
  FILE* to = nullptr;    // child's stdin
  FILE* from = nullptr;  // child's stdout
};

/// Forks + execs the server; stdin/stdout piped, stderr silenced. `faults`
/// lands in SKYCUBE_ARM_FAULTS (empty = unset).
Child Spawn(const std::string& serve, const std::vector<std::string>& args,
            const std::string& faults) {
  int to_child[2], from_child[2];
  if (pipe(to_child) != 0 || pipe(from_child) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    dup2(to_child[0], STDIN_FILENO);
    dup2(from_child[1], STDOUT_FILENO);
    // Post-fork child setup: no storage-layer durability involved.
    const int devnull = open("/dev/null", O_WRONLY);  // lint:allow-raw-io
    if (devnull >= 0) dup2(devnull, STDERR_FILENO);
    close(to_child[0]);
    close(to_child[1]);
    close(from_child[0]);
    close(from_child[1]);
    if (faults.empty()) {
      unsetenv("SKYCUBE_ARM_FAULTS");
    } else {
      setenv("SKYCUBE_ARM_FAULTS", faults.c_str(), 1);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 2);  // program name + args + trailing null
    argv.push_back(const_cast<char*>(serve.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(serve.c_str(), argv.data());
    _exit(127);
  }
  close(to_child[0]);
  close(from_child[1]);
  Child child;
  child.pid = pid;
  child.to = fdopen(to_child[1], "w");
  child.from = fdopen(from_child[0], "r");
  return child;
}

/// Reads one line (without '\n'); false on EOF.
bool ReadLine(FILE* from, std::string* line) {
  line->clear();
  int c;
  while ((c = std::fgetc(from)) != EOF) {
    if (c == '\n') return true;
    line->push_back(static_cast<char>(c));
  }
  return !line->empty();
}

/// Waits for the child; >=0 exit status, or -SIG when signal-terminated.
int Wait(Child* child) {
  if (child->to != nullptr) fclose(child->to);
  int status = 0;
  waitpid(child->pid, &status, 0);
  if (child->from != nullptr) fclose(child->from);
  child->to = nullptr;
  child->from = nullptr;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1000;
}

struct Config {
  std::string serve;
  std::string work_dir;
  int tuples = 50;
  int dims = 4;
  uint64_t seed = 11;
  int inserts = 12;
  int checkpoint_every = 4;
};

/// The synthetic bootstrap — must match the flags SpawnBootstrap passes.
Dataset GoldenBootstrap(const Config& config) {
  SyntheticSpec spec;
  spec.distribution = Distribution::kCorrelated;
  spec.num_objects = static_cast<size_t>(config.tuples);
  spec.num_dims = config.dims;
  spec.seed = config.seed;
  spec.truncate_decimals = 4;
  return GenerateSynthetic(spec);
}

std::vector<std::string> ServerArgs(const Config& config,
                                    const std::string& dir, bool bootstrap) {
  std::vector<std::string> args = {
      "--data-dir=" + dir,
      "--fsync-policy=always",
      "--checkpoint-every=" + std::to_string(config.checkpoint_every),
      "--cache-capacity=256",
  };
  if (bootstrap) {
    args.push_back("--synthetic");
    args.push_back("--dist=correlated");
    args.push_back("--tuples=" + std::to_string(config.tuples));
    args.push_back("--dims=" + std::to_string(config.dims));
    args.push_back("--seed=" + std::to_string(config.seed));
    args.push_back("--truncate=4");
  }
  return args;
}

/// One insert row as protocol text. The golden double values are recovered
/// by re-parsing this exact text (bit-identical to what the server stores).
/// Mix: mostly uniform 4-decimal values, ~1/6 exact duplicates of an
/// earlier row (path 1), ~1/10 strongly dominating rows (path 4).
std::string MakeInsertText(Rng* rng, int dims,
                           const std::vector<std::string>* sent) {
  if (!sent->empty() && rng->Bounded(6) == 0) {
    return (*sent)[rng->Bounded(sent->size())];
  }
  const bool dominator = rng->Bounded(10) == 0;
  std::string text;
  for (int d = 0; d < dims; ++d) {
    const uint64_t cell = dominator ? rng->Bounded(40)
                                    : 200 + rng->Bounded(9800);
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "0.%04llu",
                  static_cast<unsigned long long>(cell));
    if (d > 0) text += ",";
    text += buffer;
  }
  return text;
}

std::vector<double> ParseRow(const std::string& text) {
  std::vector<double> row;
  const char* cursor = text.c_str();
  char* end = nullptr;
  for (;;) {
    row.push_back(std::strtod(cursor, &end));
    if (*end != ',') break;
    cursor = end + 1;
  }
  return row;
}

/// Recovers `dir` in-process and enforces the invariant against the
/// bootstrap + the sent rows, of which at least `min_acked` must be present.
/// Returns the recovery stats through *out (may be null).
void VerifyRecovery(const char* round_tag, const Config& config,
                    const std::string& dir,
                    const std::vector<std::string>& sent, size_t min_acked,
                    RecoveryStats* out) {
  Result<RecoveredState> recovered = RecoverFromDir(dir);
  CHECK_ROUND(recovered.ok(), "recovery failed: %s",
              recovered.status().ToString().c_str());
  const IncrementalCubeMaintainer& maintainer = *recovered.value().maintainer;
  const Dataset& data = maintainer.data();
  const size_t bootstrap_rows = static_cast<size_t>(config.tuples);
  CHECK_ROUND(data.num_objects() >= bootstrap_rows &&
                  static_cast<size_t>(data.num_objects()) <=
                      bootstrap_rows + sent.size(),
              "recovered %zu rows outside [%zu, %zu]",
              static_cast<size_t>(data.num_objects()), bootstrap_rows,
              bootstrap_rows + sent.size());
  const size_t prefix = data.num_objects() - bootstrap_rows;
  CHECK_ROUND(prefix >= min_acked,
              "recovered prefix %zu < %zu acknowledged inserts", prefix,
              min_acked);

  // Golden: bootstrap + exactly that prefix, bit-for-bit.
  Dataset golden = GoldenBootstrap(config);
  for (size_t i = 0; i < prefix; ++i) {
    golden.AddRow(ParseRow(sent[i]));
  }
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    CHECK_ROUND(std::memcmp(data.Row(id), golden.Row(id),
                            sizeof(double) * config.dims) == 0,
                "recovered row %llu differs from the sent sequence",
                static_cast<unsigned long long>(id));
  }
  SkylineGroupSet expected = ComputeStellar(golden);
  NormalizeGroups(&expected);
  CHECK_ROUND(maintainer.groups() == expected,
              "recovered groups != ComputeStellar over %zu recovered rows",
              static_cast<size_t>(data.num_objects()));
  if (out != nullptr) *out = recovered.value().stats;
  std::fprintf(stderr, "ok   [%s] acked>=%zu recovered=%zu/%zu groups=%zu\n",
               round_tag, min_acked, prefix, sent.size(),
               maintainer.groups().size());
}

/// Restarts a server on the recovered directory and checks it serves.
void VerifyServeable(const char* round_tag, const Config& config,
                     const std::string& dir) {
  Child child = Spawn(config.serve, ServerArgs(config, dir, false), "");
  std::fprintf(child.to, "health\ntotal\nquit\n");
  std::fflush(child.to);
  std::string health, total;
  CHECK_ROUND(ReadLine(child.from, &health) && ReadLine(child.from, &total),
              "restarted server died before answering");
  const int code = Wait(&child);
  CHECK_ROUND(code == 0, "restarted server exited %d", code);
  CHECK_ROUND(health.find("ok status=ready") == 0 &&
                  health.find("recovered=1") != std::string::npos,
              "bad health after restart: %s", health.c_str());
  CHECK_ROUND(total.rfind("ok count=", 0) == 0, "bad query after restart: %s",
              total.c_str());
}

/// One scripted mutation of a mixed round: an insert (protocol value text)
/// or a delete of an id that existed when the op was generated.
struct MutationOp {
  bool is_delete = false;
  std::string insert_text;  // valid iff !is_delete
  ObjectId target = 0;      // valid iff is_delete
};

/// Mixed-SIGKILL round: pipeline a random interleaving of inserts and
/// deletes, kill after a random number of acknowledgements, and verify the
/// recovered (rows, liveness) state is bootstrap + an exact PREFIX of the
/// op sequence containing every acked op — with the recovered groups equal
/// to ComputeStellar over exactly the live rows of that prefix.
void RunMixedKillRound(const Config& config, int round, Rng* rng) {
  char round_tag[32];
  std::snprintf(round_tag, sizeof(round_tag), "mixed-%d", round);
  const std::string dir = config.work_dir + "/" + round_tag;
  std::filesystem::remove_all(dir);
  Child child = Spawn(config.serve, ServerArgs(config, dir, true), "");

  // Script the ops up front. Deletes target any id that exists at that
  // point in the sequence — including bootstrap rows, rows a later op will
  // delete again (an idempotent no-op), and never-yet-acked inserts.
  std::vector<MutationOp> ops;
  std::vector<std::string> sent_inserts;
  const int num_ops = config.inserts + config.inserts / 2;
  size_t rows_so_far = static_cast<size_t>(config.tuples);
  for (int i = 0; i < num_ops; ++i) {
    MutationOp op;
    if (rng->Bounded(3) == 0) {
      op.is_delete = true;
      op.target = static_cast<ObjectId>(rng->Bounded(rows_so_far));
    } else {
      op.insert_text = MakeInsertText(rng, config.dims, &sent_inserts);
      sent_inserts.push_back(op.insert_text);
      ++rows_so_far;
    }
    ops.push_back(std::move(op));
  }
  for (const MutationOp& op : ops) {
    if (op.is_delete) {
      std::fprintf(child.to, "delete %llu\n",
                   static_cast<unsigned long long>(op.target));
    } else {
      std::fprintf(child.to, "insert %s\n", op.insert_text.c_str());
    }
  }
  std::fflush(child.to);

  const size_t kill_after = rng->Bounded(ops.size() + 1);
  size_t acked = 0;
  std::string line;
  while (acked < kill_after && ReadLine(child.from, &line)) {
    CHECK_ROUND(line.rfind("ok path=", 0) == 0, "mutation answered: %s",
                line.c_str());
    ++acked;
  }
  kill(child.pid, SIGKILL);
  while (ReadLine(child.from, &line)) {
    if (line.rfind("ok path=", 0) == 0) ++acked;
  }
  const int code = Wait(&child);
  CHECK_ROUND(code == -SIGKILL || code == 0, "child exited %d, expected kill",
              code);

  Result<RecoveredState> recovered = RecoverFromDir(dir);
  CHECK_ROUND(recovered.ok(), "recovery failed: %s",
              recovered.status().ToString().c_str());
  const IncrementalCubeMaintainer& maintainer = *recovered.value().maintainer;
  const Dataset& data = maintainer.data();

  // Replay the op script over the golden bootstrap until the state matches
  // the recovered one exactly. No-op deletes are not WAL-logged, so the
  // recovered state equals *some* op prefix — and every acked op must be in
  // it.
  Dataset golden = GoldenBootstrap(config);
  std::vector<uint8_t> live(golden.num_objects(), 1);
  bool matched = false;
  size_t prefix = 0;
  const auto state_matches = [&] {
    if (static_cast<size_t>(data.num_objects()) != golden.num_objects()) {
      return false;
    }
    for (ObjectId id = 0; id < data.num_objects(); ++id) {
      if ((maintainer.live()[id] != 0) != (live[id] != 0)) return false;
      if (std::memcmp(data.Row(id), golden.Row(id),
                      sizeof(double) * config.dims) != 0) {
        return false;
      }
    }
    return true;
  };
  for (size_t k = 0;; ++k) {
    if (k >= acked && state_matches()) {
      matched = true;
      prefix = k;
      break;
    }
    if (k == ops.size()) break;
    const MutationOp& op = ops[k];
    if (op.is_delete) {
      if (op.target < live.size() && live[op.target] != 0) {
        live[op.target] = 0;
      }
    } else {
      golden.AddRow(ParseRow(op.insert_text));
      live.push_back(1);
    }
  }
  CHECK_ROUND(matched,
              "recovered state is not bootstrap + an op prefix >= %zu acked "
              "(recovered rows=%zu live=%zu)",
              acked, static_cast<size_t>(data.num_objects()),
              maintainer.num_live());

  SkylineGroupSet expected = StellarOverLive(golden, live);
  NormalizeGroups(&expected);
  CHECK_ROUND(maintainer.groups() == expected,
              "recovered groups != Stellar over the live rows of prefix %zu",
              prefix);
  std::fprintf(stderr, "ok   [%s] acked>=%zu prefix=%zu/%zu live=%zu\n",
               round_tag, acked, prefix, ops.size(), maintainer.num_live());
  if (g_failures == 0) VerifyServeable(round_tag, config, dir);
}

/// Expiry-SIGKILL round: ingest rows (stamped with real wall time), fire a
/// synchronous expiry pass over everything, and SIGKILL while its per-row
/// delete records may be mid-flight in the WAL. The recovered directory
/// must be self-consistent: bootstrap rows (timestamp 0) all live, every
/// row's values golden, and groups == Stellar over exactly the recovered
/// live rows — whatever subset of the expiry got logged.
void RunExpiryKillRound(const Config& config, Rng* rng) {
  const char* round_tag = "expiry-kill";
  const std::string dir = config.work_dir + "/expiry-kill";
  std::filesystem::remove_all(dir);
  Child child = Spawn(config.serve, ServerArgs(config, dir, true), "");

  std::vector<std::string> sent;
  std::string line;
  for (int i = 0; i < config.inserts; ++i) {
    sent.push_back(MakeInsertText(rng, config.dims, &sent));
    std::fprintf(child.to, "insert %s\n", sent.back().c_str());
    std::fflush(child.to);
    CHECK_ROUND(ReadLine(child.from, &line) && line.rfind("ok path=", 0) == 0,
                "insert answered: %s", line.c_str());
  }
  // A far-future cutoff expires every timestamped row; SIGKILL races the
  // pass (sometimes before it starts, sometimes mid-log, sometimes after).
  std::fprintf(child.to, "expire 9999999999999\n");
  std::fflush(child.to);
  if (rng->Bounded(2) == 0) {
    CHECK_ROUND(ReadLine(child.from, &line) &&
                    line.rfind("ok expired=", 0) == 0,
                "expire answered: %s", line.c_str());
  }
  kill(child.pid, SIGKILL);
  const int code = Wait(&child);
  CHECK_ROUND(code == -SIGKILL || code == 0, "child exited %d, expected kill",
              code);

  Result<RecoveredState> recovered = RecoverFromDir(dir);
  CHECK_ROUND(recovered.ok(), "recovery failed: %s",
              recovered.status().ToString().c_str());
  const IncrementalCubeMaintainer& maintainer = *recovered.value().maintainer;
  const Dataset& data = maintainer.data();
  const size_t bootstrap_rows = static_cast<size_t>(config.tuples);
  CHECK_ROUND(static_cast<size_t>(data.num_objects()) ==
                  bootstrap_rows + sent.size(),
              "recovered %zu rows, want %zu",
              static_cast<size_t>(data.num_objects()),
              bootstrap_rows + sent.size());
  Dataset golden = GoldenBootstrap(config);
  for (const std::string& row : sent) golden.AddRow(ParseRow(row));
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    CHECK_ROUND(std::memcmp(data.Row(id), golden.Row(id),
                            sizeof(double) * config.dims) == 0,
                "recovered row %llu differs from the sent sequence",
                static_cast<unsigned long long>(id));
    if (static_cast<size_t>(id) < bootstrap_rows) {
      CHECK_ROUND(maintainer.live()[id] != 0,
                  "bootstrap row %llu (timestamp 0) was expired",
                  static_cast<unsigned long long>(id));
    }
  }
  SkylineGroupSet expected =
      StellarOverLive(golden, maintainer.live());
  NormalizeGroups(&expected);
  CHECK_ROUND(maintainer.groups() == expected,
              "recovered groups != Stellar over the recovered live rows");
  std::fprintf(stderr, "ok   [%s] live=%zu of %zu rows after expiry crash\n",
               round_tag, maintainer.num_live(),
               static_cast<size_t>(data.num_objects()));
  if (g_failures == 0) VerifyServeable(round_tag, config, dir);
}

/// Random-SIGKILL round: pipeline all inserts, kill after a random number
/// of acknowledgements, drain the pipe (late acks still count), verify.
void RunKillRound(const Config& config, int round, Rng* rng) {
  char round_tag[32];
  std::snprintf(round_tag, sizeof(round_tag), "kill-%d", round);
  const std::string dir = config.work_dir + "/" + round_tag;
  std::filesystem::remove_all(dir);  // a rerun must bootstrap fresh
  Child child = Spawn(config.serve, ServerArgs(config, dir, true), "");

  std::vector<std::string> sent;
  sent.reserve(config.inserts);
  for (int i = 0; i < config.inserts; ++i) {
    sent.push_back(MakeInsertText(rng, config.dims, &sent));
  }
  for (const std::string& row : sent) {
    std::fprintf(child.to, "insert %s\n", row.c_str());
  }
  std::fflush(child.to);

  const size_t kill_after = rng->Bounded(sent.size() + 1);
  size_t acked = 0;
  std::string line;
  while (acked < kill_after && ReadLine(child.from, &line)) {
    CHECK_ROUND(line.rfind("ok path=", 0) == 0, "insert answered: %s",
                line.c_str());
    ++acked;
  }
  kill(child.pid, SIGKILL);
  // Acks the child wrote before dying are still acknowledgements.
  while (ReadLine(child.from, &line)) {
    if (line.rfind("ok path=", 0) == 0) ++acked;
  }
  const int code = Wait(&child);
  CHECK_ROUND(code == -SIGKILL || code == 0, "child exited %d, expected kill",
              code);

  RecoveryStats stats;
  VerifyRecovery(round_tag, config, dir, sent, acked, &stats);
  if (g_failures == 0) VerifyServeable(round_tag, config, dir);
}

/// Graceful-drain round: SIGTERM must flush + checkpoint, so recovery
/// replays zero WAL records and loses nothing.
void RunSigtermRound(const Config& config, Rng* rng) {
  const char* round_tag = "sigterm";
  const std::string dir = config.work_dir + "/sigterm";
  std::filesystem::remove_all(dir);
  Child child = Spawn(config.serve, ServerArgs(config, dir, true), "");
  std::vector<std::string> sent;
  sent.reserve(config.inserts);
  std::string line;
  for (int i = 0; i < config.inserts; ++i) {
    sent.push_back(MakeInsertText(rng, config.dims, &sent));
    std::fprintf(child.to, "insert %s\n", sent.back().c_str());
    std::fflush(child.to);
    CHECK_ROUND(ReadLine(child.from, &line) && line.rfind("ok path=", 0) == 0,
                "insert answered: %s", line.c_str());
  }
  kill(child.pid, SIGTERM);
  const int code = Wait(&child);  // also closes its stdin
  CHECK_ROUND(code == 0, "SIGTERM drain exited %d, expected 0", code);

  RecoveryStats stats;
  VerifyRecovery(round_tag, config, dir, sent, sent.size(), &stats);
  CHECK_ROUND(stats.wal_records_replayed == 0,
              "drain left %llu unreplayed wal records (no final checkpoint?)",
              static_cast<unsigned long long>(stats.wal_records_replayed));
}

/// Fault-point round: ingest `warmup` rows cleanly, quit, restart with an
/// armed crash point, and detonate it with one more insert. `acked_extra`
/// says whether the detonating row must survive (it hit the WAL before the
/// crash point) or must not (the crash precedes durability).
void RunFaultRound(const Config& config, Rng* rng, const char* fault,
                   int checkpoint_every, bool extra_must_survive,
                   bool extra_may_survive) {
  const char* round_tag = fault;
  const std::string dir = config.work_dir + "/fault-" + fault;
  std::filesystem::remove_all(dir);
  // Warmup on a clean server.
  Child child = Spawn(config.serve, ServerArgs(config, dir, true), "");
  std::vector<std::string> sent;
  std::string line;
  const int warmup = 3 + static_cast<int>(rng->Bounded(4));
  sent.reserve(warmup);
  for (int i = 0; i < warmup; ++i) {
    sent.push_back(MakeInsertText(rng, config.dims, &sent));
    std::fprintf(child.to, "insert %s\n", sent.back().c_str());
    std::fflush(child.to);
    CHECK_ROUND(ReadLine(child.from, &line) && line.rfind("ok path=", 0) == 0,
                "warmup insert answered: %s", line.c_str());
  }
  std::fprintf(child.to, "quit\n");
  std::fflush(child.to);
  int code = Wait(&child);
  CHECK_ROUND(code == 0, "warmup server exited %d", code);

  // Detonation: restart with the fault armed; the next insert crashes the
  // child inside the fault point (std::_Exit(42)) before it can answer.
  Config armed = config;
  armed.checkpoint_every = checkpoint_every;
  child = Spawn(config.serve, ServerArgs(armed, dir, false),
                std::string(fault) + "=1");
  sent.push_back(MakeInsertText(rng, config.dims, &sent));
  std::fprintf(child.to, "insert %s\n", sent.back().c_str());
  std::fflush(child.to);
  const bool got_ack = ReadLine(child.from, &line);
  CHECK_ROUND(!got_ack, "armed %s did not crash; answered: %s", fault,
              line.c_str());
  code = Wait(&child);
  CHECK_ROUND(code == 42, "armed %s exited %d, expected 42", fault, code);

  RecoveryStats stats;
  VerifyRecovery(round_tag, config, dir, sent,
                 static_cast<size_t>(warmup), &stats);
  if (g_failures > 0) return;
  // Each replayed WAL record is one row on top of the checkpoint.
  const size_t prefix = static_cast<size_t>(stats.checkpoint_rows) +
                        stats.wal_records_replayed -
                        static_cast<size_t>(config.tuples);
  if (extra_must_survive) {
    CHECK_ROUND(prefix == sent.size(),
                "%s: the WAL-durable detonating row was lost (prefix %zu)",
                fault, prefix);
  } else if (!extra_may_survive) {
    CHECK_ROUND(prefix == sent.size() - 1,
                "%s: the never-durable detonating row survived (prefix %zu)",
                fault, prefix);
  }
}

int Run(const FlagParser& flags) {
  signal(SIGPIPE, SIG_IGN);  // a killed child must not kill the harness
  Config config;
  config.serve = flags.GetString("serve", "");
  config.work_dir = flags.GetString("work-dir", "/tmp/skycube_crashtest");
  config.tuples = static_cast<int>(flags.GetInt("tuples", 50));
  config.dims = static_cast<int>(flags.GetInt("dims", 4));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 11));
  config.inserts = static_cast<int>(flags.GetInt("inserts", 12));
  if (config.serve.empty()) {
    std::fprintf(stderr,
                 "usage: skycube_crashtest --serve=PATH [--work-dir=DIR] "
                 "[--rounds=N] [--inserts=N] [--no-faults]\n");
    return 2;
  }
  mkdir(config.work_dir.c_str(), 0775);

  Rng rng{config.seed * 2654435761u + 1};
  const int rounds = static_cast<int>(flags.GetInt("rounds", 5));
  for (int round = 0; round < rounds; ++round) {
    RunKillRound(config, round, &rng);
  }
  for (int round = 0; round < rounds; ++round) {
    RunMixedKillRound(config, round, &rng);
  }
  RunExpiryKillRound(config, &rng);
  RunSigtermRound(config, &rng);

  if (FaultInjection::Enabled() && !flags.GetBool("no-faults", false)) {
    // Torn mid-record write, synced: the damaged suffix must be discarded.
    RunFaultRound(config, &rng, "wal.append_torn", config.checkpoint_every,
                  /*extra_must_survive=*/false, /*extra_may_survive=*/false);
    // Full record written but unsynced at crash: page cache keeps it across
    // a process death (only power loss would not), so either outcome is a
    // valid prefix.
    RunFaultRound(config, &rng, "wal.append_crash", config.checkpoint_every,
                  /*extra_must_survive=*/false, /*extra_may_survive=*/true);
    // Crash around the checkpoint rename: the row hit the WAL (and was
    // synced by the checkpoint path) before the crash, so it must survive
    // whether the rename landed or not.
    RunFaultRound(config, &rng, "checkpoint.crash_before_rename", 1,
                  /*extra_must_survive=*/true, /*extra_may_survive=*/true);
    RunFaultRound(config, &rng, "checkpoint.crash_after_rename", 1,
                  /*extra_must_survive=*/true, /*extra_may_survive=*/true);
    RunFaultRound(config, &rng, "checkpoint.crash_mid_write",
                  1, /*extra_must_survive=*/true, /*extra_may_survive=*/true);
  } else {
    std::fprintf(stderr, "note: fault-point rounds skipped (injection %s)\n",
                 FaultInjection::Enabled() ? "disabled by flag"
                                           : "not compiled in");
  }

  if (g_failures == 0) {
    std::fprintf(stderr, "skycube_crashtest: all rounds passed\n");
    return 0;
  }
  std::fprintf(stderr, "skycube_crashtest: %d failure(s)\n", g_failures);
  return 1;
}

}  // namespace
}  // namespace skycube

int main(int argc, char** argv) {
  const skycube::FlagParser flags(argc, argv);
  return skycube::Run(flags);
}
