# End-to-end integration test of skycube_serve, run by ctest: start the
# server on a synthetic dataset, pipe a scripted session through stdin and
# check the answer lines (one per query, "ok"/"err" prefixed).
# Invoked as:
#   cmake -DSERVE=<path-to-binary> -DWORK_DIR=<scratch-dir> -P serve_test.cmake
set(script "${WORK_DIR}/serve_test_session.txt")
file(WRITE ${script} "skyline AC
card AC
card AC
member 0 AC
count 0
total
batch card A; card B; member 0 AB
insert 0.5,0.5,0.5,0.5
card AC
health
skyline ZZ
bogus
stats
quit
")

execute_process(
  COMMAND ${SERVE} --synthetic --dist=correlated --tuples=500 --dims=4
          --seed=7 --cache-capacity=1024
  INPUT_FILE ${script}
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "skycube_serve failed (${code}): ${err}\n${out}")
endif()

# One answer line per scripted query (13 before 'quit'). Semicolons inside
# answers (batch separators) would split CMake lists — neutralize them first.
string(REPLACE ";" "~" sanitized "${out}")
string(REGEX REPLACE "\n$" "" trimmed "${sanitized}")
string(REPLACE "\n" ";" lines "${trimmed}")
list(LENGTH lines num_lines)
if(NOT num_lines EQUAL 13)
  message(FATAL_ERROR
    "expected 13 answer lines, got ${num_lines}:\n${out}")
endif()

function(expect_line index pattern)
  list(GET lines ${index} line)
  if(NOT line MATCHES "${pattern}")
    message(FATAL_ERROR
      "line ${index}: expected match for '${pattern}', got '${line}'")
  endif()
endfunction()

expect_line(0 "^ok n=[0-9]+ v=1 hit=0 ids=")
expect_line(1 "^ok count=[0-9]+ v=1 hit=0")
expect_line(2 "^ok count=[0-9]+ v=1 hit=1")   # repeat → cache hit
expect_line(3 "^ok member=(yes|no) v=1")
expect_line(4 "^ok count=[0-9]+ v=1")
expect_line(5 "^ok count=[0-9]+ v=1")
expect_line(6 "^ok .* ~ ok .* ~ ok ")          # batch: three answers
expect_line(7 "^ok path=(duplicate|noop|extension|recompute) version=2")
expect_line(8 "^ok count=[0-9]+ v=2 hit=0")    # post-swap: new version, cold
expect_line(9 "^ok status=ready version=2 durable=0")  # volatile serve mode
expect_line(10 "^err ")                        # Z beyond 4 dims
expect_line(11 "^err unknown query")
expect_line(12 "^ok queries=.*cache_hits=.*version=2 swaps=1")

# Q1/card answers must agree before the insert: lines 1 and 2 equal counts.
list(GET lines 1 card_one)
list(GET lines 2 card_two)
string(REGEX MATCH "count=[0-9]+" c1 "${card_one}")
string(REGEX MATCH "count=[0-9]+" c2 "${card_two}")
if(NOT c1 STREQUAL c2)
  message(FATAL_ERROR "cached answer diverged: '${c1}' vs '${c2}'")
endif()

file(REMOVE ${script})
message(STATUS "skycube_serve end-to-end: OK")
