# End-to-end integration test of skycube_cli, run by ctest:
#   generate → compute → query (Q1 + Q2) → inspect
# Invoked as:
#   cmake -DCLI=<path-to-binary> -DWORK_DIR=<scratch-dir> -P cli_test.cmake
function(run_cli expect_substring)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "skycube_cli ${ARGN} failed (${code}): ${err}")
  endif()
  if(NOT out MATCHES "${expect_substring}")
    message(FATAL_ERROR
      "skycube_cli ${ARGN}: expected output matching '${expect_substring}', "
      "got:\n${out}")
  endif()
endfunction()

set(data "${WORK_DIR}/cli_test_data.csv")
set(cube "${WORK_DIR}/cli_test_cube.txt")

run_cli("wrote 2000 × 4 correlated dataset"
  generate --dist=correlated --tuples=2000 --dims=4 --seed=5 --out=${data})
run_cli("stellar: 2000 objects.*cube saved"
  compute --data=${data} --out=${cube})
run_cli("skyline of AC:" query --cube=${cube} --subspace=AC)
run_cli("skyline of AC:" query --cube=${cube} --columns=A,C)
run_cli("is in the skyline of" query --cube=${cube} --object=0)
run_cli("compression ratio" inspect --cube=${cube} --top=3)

# The bad paths must fail cleanly (non-zero exit, no crash).
execute_process(COMMAND ${CLI} query --cube=/nonexistent --subspace=A
                RESULT_VARIABLE code ERROR_QUIET OUTPUT_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "query against missing cube unexpectedly succeeded")
endif()
execute_process(COMMAND ${CLI} frobnicate
                RESULT_VARIABLE code ERROR_QUIET OUTPUT_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "unknown subcommand unexpectedly succeeded")
endif()

file(REMOVE ${data} ${cube})
message(STATUS "skycube_cli end-to-end: OK")
