// skycube_nettest — end-to-end harness for the socket mode of
// skycube_serve (docs/NET.md). Forks a real server child, scrapes the
// "listening on HOST:PORT" line from its stderr, and drives the binary
// protocol over genuine loopback TCP:
//
//   round 1  pipeline: N mixed Q1/Q2/Q3 + insert requests in one burst;
//            every response arrives, in request order, with correct
//            version bumps across the inserts; health/stats opcodes answer
//            the serve-tool text lines over the wire;
//   round 2  malformed bytes: a corrupted frame is answered with one
//            kGoAway(kInvalidArgument) and a close — the server stays up
//            and keeps serving other connections;
//   round 3  SIGTERM drain: responses to a just-sent burst still arrive in
//            order (in-flight requests complete), a post-signal connection
//            is refused (kUnavailable goaway, or the closed listener's
//            ECONNREFUSED once the drain finished), the old connection
//            ends in clean EOF, and the child exits 0.
//
// Usage (registered as a ctest test):
//   skycube_nettest --serve=PATH [--tuples=N] [--dims=D] [--seed=S]
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/flags.h"
#include "net/client.h"
#include "net/protocol.h"

namespace skycube {
namespace {

int g_failures = 0;

#define CHECK_NET(cond, ...)                      \
  do {                                            \
    if (!(cond)) {                                \
      std::fprintf(stderr, "FAIL ");              \
      std::fprintf(stderr, __VA_ARGS__);          \
      std::fprintf(stderr, "\n");                 \
      ++g_failures;                               \
      return false;                               \
    }                                             \
  } while (0)

struct Server {
  pid_t pid = -1;
  FILE* stderr_from = nullptr;
  uint16_t port = 0;
};

/// Forks + execs skycube_serve in socket mode on an ephemeral port and
/// scrapes the bound port from its stderr.
Server SpawnServer(const std::string& serve,
                   const std::vector<std::string>& args) {
  int err_pipe[2];
  if (pipe(err_pipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    dup2(err_pipe[1], STDERR_FILENO);
    close(err_pipe[0]);
    close(err_pipe[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 2);
    argv.push_back(const_cast<char*>(serve.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(serve.c_str(), argv.data());
    _exit(127);
  }
  close(err_pipe[1]);
  Server server;
  server.pid = pid;
  server.stderr_from = fdopen(err_pipe[0], "r");

  // The listen line is the first thing socket mode prints.
  std::string line;
  int c;
  while ((c = std::fgetc(server.stderr_from)) != EOF && c != '\n') {
    line.push_back(static_cast<char>(c));
  }
  const size_t colon = line.rfind(':');
  if (line.rfind("listening on ", 0) != 0 || colon == std::string::npos) {
    std::fprintf(stderr, "no listen line from server (got: '%s')\n",
                 line.c_str());
    kill(pid, SIGKILL);
    std::exit(1);
  }
  server.port = static_cast<uint16_t>(
      std::strtoul(line.c_str() + colon + 1, nullptr, 10));
  return server;
}

/// Waits for the child; >=0 exit status, or -SIG when signal-terminated.
int WaitServer(Server* server) {
  int status = 0;
  waitpid(server->pid, &status, 0);
  if (server->stderr_from != nullptr) fclose(server->stderr_from);
  server->stderr_from = nullptr;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1000;
}

/// The harness speaks the wire through the shared src/net client. A hung
/// server fails the harness via the read deadline instead of wedging ctest.
constexpr int64_t kReadTimeoutMillis = 30000;

/// Connects to the server's loopback port; false (after logging) on refusal.
bool Connect(net::NetClient* client, uint16_t port) {
  const Status status = client->Connect("127.0.0.1", port);
  if (!status.ok()) {
    std::fprintf(stderr, "connect: %s\n", status.ToString().c_str());
  }
  return status.ok();
}

enum class Got { kPayload, kEof, kError };

/// Next raw frame payload (any opcode — the rounds inspect goaways
/// themselves). Timeouts and framing errors both report kError.
Got ReadPayload(net::NetClient* client, std::string* payload) {
  std::string error;
  switch (client->ReadFrame(payload,
                            Deadline::AfterMillis(kReadTimeoutMillis),
                            &error)) {
    case net::NetClient::Got::kFrame:
      return Got::kPayload;
    case net::NetClient::Got::kEof:
      return Got::kEof;
    case net::NetClient::Got::kTimeout:
      std::fprintf(stderr, "client read timeout\n");
      return Got::kError;
    default:
      std::fprintf(stderr, "client read error: %s\n", error.c_str());
      return Got::kError;
  }
}

net::WireRequest Request(net::Opcode op, uint64_t id) {
  net::WireRequest request;
  request.op = op;
  request.id = id;
  return request;
}

/// Builds the mixed pipeline burst: requests with ids 0..count-1 cycling
/// through every query opcode plus periodic inserts.
std::string MixedBurst(uint64_t count, int dims, uint64_t first_id = 0) {
  std::string burst;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t id = first_id + i;
    net::WireRequest request;
    switch (i % 6) {
      case 0:
        request = Request(net::Opcode::kSkyline, id);
        request.subspace = 0b11;
        break;
      case 1:
        request = Request(net::Opcode::kCardinality, id);
        request.subspace = (1u << dims) - 1;
        break;
      case 2:
        request = Request(net::Opcode::kMembership, id);
        request.subspace = 0b101;
        request.object = static_cast<ObjectId>(id % 50);
        break;
      case 3:
        request = Request(net::Opcode::kMembershipCount, id);
        request.object = static_cast<ObjectId>(id % 50);
        break;
      case 4:
        request = Request(net::Opcode::kSkycubeSize, id);
        break;
      default:
        request = Request(net::Opcode::kInsert, id);
        for (int d = 0; d < dims; ++d) {
          request.values.push_back(0.9 - 0.001 * static_cast<double>(id));
        }
        break;
    }
    burst += EncodeRequest(request);
  }
  return burst;
}

bool RunPipelineRound(uint16_t port, int dims) {
  net::NetClient client;
  CHECK_NET(Connect(&client, port), "pipeline: connect failed");

  constexpr uint64_t kRequests = 120;
  CHECK_NET(client.Send(MixedBurst(kRequests, dims)).ok(),
            "pipeline: send failed");

  uint64_t last_version = 0;
  for (uint64_t id = 0; id < kRequests; ++id) {
    std::string payload;
    CHECK_NET(ReadPayload(&client, &payload) == Got::kPayload,
              "pipeline: stream ended at response %llu",
              static_cast<unsigned long long>(id));
    CHECK_NET(net::PayloadOpcode(payload) == net::Opcode::kResponse,
              "pipeline: unexpected opcode at response %llu",
              static_cast<unsigned long long>(id));
    Result<net::WireResponse> decoded = net::ParseResponse(payload);
    CHECK_NET(decoded.ok(), "pipeline: bad response: %s",
              decoded.status().ToString().c_str());
    const net::WireResponse& response = decoded.value();
    CHECK_NET(response.id == id,
              "pipeline: out of order: got id %llu at position %llu",
              static_cast<unsigned long long>(response.id),
              static_cast<unsigned long long>(id));
    CHECK_NET(response.status == StatusCode::kOk,
              "pipeline: request %llu failed: %s",
              static_cast<unsigned long long>(id), response.text.c_str());
    // Inserts swap the snapshot: versions must be non-decreasing and grow
    // by exactly one across each insert acknowledgement.
    CHECK_NET(response.snapshot_version >= last_version,
              "pipeline: version went backwards at %llu",
              static_cast<unsigned long long>(id));
    if (response.request_op == net::Opcode::kInsert) {
      last_version = response.snapshot_version;
    }
  }
  CHECK_NET(last_version >= 2, "pipeline: inserts never bumped the version");

  // Introspection over the wire: the serve-tool health and stats lines.
  CHECK_NET(client
                .Send(EncodeRequest(Request(net::Opcode::kHealth, 1000)) +
                      EncodeRequest(Request(net::Opcode::kStats, 1001)))
                .ok(),
            "pipeline: introspection send failed");
  std::string payload;
  CHECK_NET(ReadPayload(&client, &payload) == Got::kPayload,
            "pipeline: no health response");
  Result<net::WireResponse> health = net::ParseResponse(payload);
  CHECK_NET(health.ok(), "pipeline: bad health response");
  CHECK_NET(health.value().text.find("status=ready") != std::string::npos,
            "pipeline: bad health line: '%s'", health.value().text.c_str());
  CHECK_NET(ReadPayload(&client, &payload) == Got::kPayload,
            "pipeline: no stats response");
  Result<net::WireResponse> stats = net::ParseResponse(payload);
  CHECK_NET(stats.ok(), "pipeline: bad stats response");
  CHECK_NET(stats.value().text.find("queries=") != std::string::npos,
            "pipeline: bad stats line: '%s'", stats.value().text.c_str());
  return true;
}

bool RunMalformedRound(uint16_t port) {
  net::NetClient victim;
  CHECK_NET(Connect(&victim, port), "malformed: connect failed");
  std::string bad = EncodeRequest(Request(net::Opcode::kPing, 1));
  bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x01);
  CHECK_NET(victim.Send(bad).ok(), "malformed: send failed");

  std::string payload;
  CHECK_NET(ReadPayload(&victim, &payload) == Got::kPayload,
            "malformed: expected a goaway frame");
  CHECK_NET(net::PayloadOpcode(payload) == net::Opcode::kGoAway,
            "malformed: expected kGoAway, got opcode %d", int(payload[0]));
  Result<net::WireGoAway> goaway = net::ParseGoAway(payload);
  CHECK_NET(goaway.ok(), "malformed: unparseable goaway");
  CHECK_NET(goaway.value().status == StatusCode::kInvalidArgument,
            "malformed: wrong goaway status");
  CHECK_NET(ReadPayload(&victim, &payload) == Got::kEof,
            "malformed: server did not close the broken stream");

  // The server survives: a fresh connection still answers.
  net::NetClient fresh;
  CHECK_NET(Connect(&fresh, port), "malformed: reconnect failed");
  CHECK_NET(fresh.Send(EncodeRequest(Request(net::Opcode::kPing, 2))).ok(),
            "malformed: ping send failed");
  CHECK_NET(ReadPayload(&fresh, &payload) == Got::kPayload,
            "malformed: server stopped answering after a protocol error");
  return true;
}

bool RunDrainRound(Server* server, int dims) {
  net::NetClient inflight;
  CHECK_NET(Connect(&inflight, server->port), "drain: connect failed");
  // A burst is on the wire (and mostly decoded) when the signal lands.
  constexpr uint64_t kRequests = 48;
  CHECK_NET(inflight.Send(MixedBurst(kRequests, dims)).ok(),
            "drain: send failed");
  CHECK_NET(kill(server->pid, SIGTERM) == 0, "drain: kill failed");

  // Every response that arrives must still be in order; the connection
  // must end in clean EOF (requests not yet decoded when the drain began
  // are dropped with the connection, never answered out of order).
  uint64_t next_id = 0;
  for (;;) {
    std::string payload;
    const Got got = ReadPayload(&inflight, &payload);
    if (got == Got::kEof) break;
    CHECK_NET(got == Got::kPayload, "drain: broken stream");
    if (net::PayloadOpcode(payload) == net::Opcode::kGoAway) continue;
    Result<net::WireResponse> decoded = net::ParseResponse(payload);
    CHECK_NET(decoded.ok(), "drain: bad response");
    CHECK_NET(decoded.value().id == next_id,
              "drain: out of order after SIGTERM (got %llu, want %llu)",
              static_cast<unsigned long long>(decoded.value().id),
              static_cast<unsigned long long>(next_id));
    ++next_id;
  }

  // A post-signal connection is refused: with the drain still open, an
  // explicit kUnavailable goaway; once the listener is closed,
  // ECONNREFUSED. Either way it must never be served.
  net::NetClient late;
  if (late.Connect("127.0.0.1", server->port).ok()) {
    std::string payload;
    const Got got = ReadPayload(&late, &payload);
    if (got == Got::kPayload) {
      CHECK_NET(net::PayloadOpcode(payload) == net::Opcode::kGoAway,
                "drain: late connection was served instead of refused");
      Result<net::WireGoAway> goaway = net::ParseGoAway(payload);
      CHECK_NET(goaway.ok(), "drain: unparseable goaway");
      CHECK_NET(goaway.value().status == StatusCode::kUnavailable,
                "drain: late connection refused with the wrong status");
      CHECK_NET(ReadPayload(&late, &payload) == Got::kEof,
                "drain: refused connection not closed");
    } else {
      CHECK_NET(got == Got::kEof, "drain: broken late stream");
    }
  }

  const int exit_code = WaitServer(server);
  CHECK_NET(exit_code == 0, "drain: server exited %d after SIGTERM",
            exit_code);
  return true;
}

int Main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const std::string serve = flags.GetString("serve", "");
  if (serve.empty()) {
    std::fprintf(stderr, "usage: skycube_nettest --serve=PATH\n");
    return 2;
  }
  const int tuples = static_cast<int>(flags.GetInt("tuples", 400));
  const int dims = static_cast<int>(flags.GetInt("dims", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 17));

  const std::vector<std::string> args = {
      "--synthetic",
      "--tuples=" + std::to_string(tuples),
      "--dims=" + std::to_string(dims),
      "--seed=" + std::to_string(seed),
      "--port=0",
  };
  Server server = SpawnServer(serve, args);
  std::fprintf(stderr, "server pid %d on port %u\n", int(server.pid),
               unsigned(server.port));

  if (RunPipelineRound(server.port, dims)) {
    std::fprintf(stderr, "PASS pipeline round\n");
  }
  if (RunMalformedRound(server.port)) {
    std::fprintf(stderr, "PASS malformed round\n");
  }
  if (RunDrainRound(&server, dims)) {
    std::fprintf(stderr, "PASS drain round\n");
  }
  if (server.stderr_from != nullptr) {
    kill(server.pid, SIGKILL);  // only reached when the drain round failed
    WaitServer(&server);
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "skycube_nettest: %d failure(s)\n", g_failures);
    return 1;
  }
  std::fprintf(stderr, "skycube_nettest: all rounds passed\n");
  return 0;
}

}  // namespace
}  // namespace skycube

int main(int argc, char** argv) { return skycube::Main(argc, argv); }
