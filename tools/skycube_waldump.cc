// skycube_waldump — read-only WAL inspector (docs/ROBUSTNESS.md).
//
//   skycube_waldump --dir=DATA_DIR [--values] [--from-lsn=N] [--segment=FILE]
//
// Prints one line per record in LSN order, segment by segment:
//
//   segment wal-000000000000000001.log start_lsn=1 magic=ok
//   lsn=1 op=insert row=400 ts=1754550000123 bytes=45 checksum=ok
//   lsn=2 op=delete row=17 ts=1754550000940 bytes=13 checksum=ok
//   lsn=3 op=? bytes=9 checksum=BAD
//   trailing_bytes=132
//
// Unlike recovery (storage/recovery.h) this never stops at a damaged
// record or an inter-segment gap: it reports what is actually on disk —
// the debugging view for a data directory that refuses to recover. Legacy
// v2 records (no op byte, no timestamp) print op=insert legacy=1.
//
// --from-lsn=N skips records below N (segments whose records all fall
// below N are elided entirely) — the view a replication follower acked at
// N−1 would fetch next. --segment=FILE restricts the dump to one segment
// by file name. A zero-byte final segment (a rotation that crashed before
// the magic was written) prints `empty=1` and does not count as damage;
// anywhere else an empty segment is a hole and exits 1.
//
// With --values, insert records also print their row values. Exit status
// is 0 when every record framed and decoded cleanly and the LSNs in view
// form one contiguous run, 1 when any record was damaged or out of place
// — checksum/decode failure, trailing garbage, a hole segment, a spliced
// or gapped LSN sequence, a segment whose name disagrees with its first
// record — so scripts can gate on WAL integrity; 2 on usage errors. A gap
// prints its own `gap expected_lsn=E found_lsn=F` line: the records on
// both sides are individually valid, the *sequence* is what recovery
// would refuse to trust.
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "storage/wal.h"

namespace skycube {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: skycube_waldump --dir=DATA_DIR [--values] "
               "[--from-lsn=N] [--segment=FILE]\n");
  return 2;
}

/// True when the segment has nothing at or past `from_lsn` to show. A
/// damaged or empty segment is never elided — damage must stay visible
/// regardless of the LSN window.
bool SegmentBelow(const WalDumpSegment& segment, uint64_t from_lsn) {
  if (from_lsn <= 1) return false;
  if (!segment.magic_ok || segment.empty || segment.trailing_bytes > 0) {
    return false;
  }
  for (const WalDumpRecord& record : segment.records) {
    if (!record.checksum_ok || !record.decode_ok) return false;
    if (record.lsn >= from_lsn) return false;
  }
  return true;
}

int Dump(const FlagParser& flags) {
  const std::string dir = flags.GetString("dir", "");
  if (dir.empty()) return Usage();
  const bool with_values = flags.GetBool("values", false);
  const uint64_t from_lsn =
      static_cast<uint64_t>(flags.GetInt("from-lsn", 0));
  const std::string only_segment = flags.GetString("segment", "");

  Result<std::vector<WalDumpSegment>> dumped = DumpWal(dir);
  if (!dumped.ok()) {
    std::fprintf(stderr, "%s\n", dumped.status().ToString().c_str());
    return 2;
  }

  if (!only_segment.empty()) {
    bool found = false;
    for (const WalDumpSegment& segment : dumped.value()) {
      if (segment.file == only_segment) found = true;
    }
    if (!found) {
      std::fprintf(stderr, "no segment named '%s' in %s\n",
                   only_segment.c_str(), dir.c_str());
      return 2;
    }
  }

  bool damaged = false;
  // Last framing-valid LSN seen (0 = none yet) — the continuity cursor.
  // Records are individually checksummed, so a spliced or gapped log can
  // be record-clean yet unrecoverable; any shown record whose LSN is not
  // cursor + 1 is damage.
  uint64_t prev_lsn = 0;
  const std::vector<WalDumpSegment>& segments = dumped.value();
  for (size_t i = 0; i < segments.size(); ++i) {
    const WalDumpSegment& segment = segments[i];
    if (!only_segment.empty() && segment.file != only_segment) {
      // Advance the cursor silently so a gap inside the shown segment is
      // attributed there, not to the viewing window's edge.
      for (const WalDumpRecord& record : segment.records) {
        if (record.checksum_ok) prev_lsn = record.lsn;
      }
      continue;
    }
    if (SegmentBelow(segment, from_lsn)) {
      for (const WalDumpRecord& record : segment.records) {
        if (record.checksum_ok) prev_lsn = record.lsn;
      }
      continue;
    }
    const bool final_segment = i + 1 == segments.size();
    if (segment.empty) {
      // A zero-byte file holds no magic; only the final segment may be
      // empty (crashed rotation) without counting as damage.
      std::printf("segment %s start_lsn=%llu empty=1%s\n",
                  segment.file.c_str(),
                  static_cast<unsigned long long>(segment.declared_start),
                  final_segment ? "" : " damage=not-final");
      if (!final_segment) damaged = true;
      continue;
    }
    std::printf("segment %s start_lsn=%llu magic=%s\n", segment.file.c_str(),
                static_cast<unsigned long long>(segment.declared_start),
                segment.magic_ok ? "ok" : "BAD");
    if (!segment.magic_ok) damaged = true;
    bool first_in_segment = true;
    for (const WalDumpRecord& record : segment.records) {
      if (record.checksum_ok) {
        const uint64_t expected =
            prev_lsn != 0 ? prev_lsn + 1 : record.lsn;
        const bool gap =
            record.lsn != expected ||
            (first_in_segment && record.lsn != segment.declared_start);
        if (gap) {
          std::printf("gap expected_lsn=%llu found_lsn=%llu\n",
                      static_cast<unsigned long long>(
                          prev_lsn != 0 ? expected : segment.declared_start),
                      static_cast<unsigned long long>(record.lsn));
          damaged = true;
        }
        first_in_segment = false;
        prev_lsn = record.lsn;
      }
      if (!record.checksum_ok) {
        std::printf("lsn=%llu op=? bytes=%zu checksum=BAD\n",
                    static_cast<unsigned long long>(record.lsn),
                    record.payload_bytes);
        damaged = true;
        continue;
      }
      if (!record.decode_ok) {
        std::printf("lsn=%llu op=? bytes=%zu checksum=ok decode=BAD\n",
                    static_cast<unsigned long long>(record.lsn),
                    record.payload_bytes);
        damaged = true;
        continue;
      }
      if (record.lsn < from_lsn) continue;
      const WalOpRecord& op = record.record;
      std::printf("lsn=%llu op=%s row=%u ts=%llu bytes=%zu checksum=ok%s",
                  static_cast<unsigned long long>(record.lsn),
                  WalOpName(op.op), op.row,
                  static_cast<unsigned long long>(op.timestamp_ms),
                  record.payload_bytes, op.legacy ? " legacy=1" : "");
      if (with_values && op.op == WalOp::kInsert) {
        std::printf(" values=");
        for (size_t v = 0; v < op.values.size(); ++v) {
          std::printf("%s%g", v == 0 ? "" : ",", op.values[v]);
        }
      }
      std::printf("\n");
    }
    if (segment.trailing_bytes > 0) {
      std::printf("trailing_bytes=%llu\n",
                  static_cast<unsigned long long>(segment.trailing_bytes));
      damaged = true;
    }
  }
  return damaged ? 1 : 0;
}

}  // namespace
}  // namespace skycube

int main(int argc, char** argv) {
  const skycube::FlagParser flags(argc, argv);
  return skycube::Dump(flags);
}
