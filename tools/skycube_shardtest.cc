// skycube_shardtest — end-to-end harness for the sharded serving tier
// (docs/SHARDING.md). Forks three real skycube_serve shard processes (each
// owning its consistent-hash partition, with durable ingest under
// --work-dir/shard-K) and one skycube_router in front, then drives the
// binary protocol against the router:
//
//   round 1  oracle: every subspace skyline, cardinality, membership and
//            Q3 answer through the router is byte-identical to a
//            single-node service over the same rows;
//   round 2  inserts: rows inserted through the router land on their owner
//            shard and every subsequent merged answer matches the
//            single-node oracle including the new rows;
//   round 3  degradation: SIGKILL one shard mid-load. Every answer that
//            still claims to be complete (partial flag clear) must match
//            the full oracle; every partial-flagged answer must match the
//            oracle over the surviving shards' rows; errors are tolerated
//            only while the router is discovering the death — never a
//            wrong answer, flagged or not;
//   round 4  recovery: the shard is respawned on its old port and recovers
//            its partition (checkpoint + WAL, inserts included); the
//            router's probe revives it and answers go back to full,
//            unflagged, oracle-identical.
//
// With --replication the harness instead runs the failover scenario
// (docs/REPLICATION.md): every shard gets a primary plus a --replica-of
// hot standby, the router is given `primary+replica` endpoint sets, and
// the chaos round SIGKILLs a primary mid-pipelined-burst. After failover
// every answer must be complete (partial flag clear) and byte-identical
// to the full oracle — the acked insert prefix survives the kill. The
// promoted replica must report role=primary, accept fenced mutations, and
// the respawned old primary must rejoin as its replica and converge to an
// identical skyline.
//
// Usage (registered as a ctest test):
//   skycube_shardtest --serve=PATH --router=PATH --work-dir=DIR
//                     [--tuples=N] [--dims=D] [--seed=S] [--replication]
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/consistent_hash.h"
#include "common/deadline.h"
#include "common/flags.h"
#include "common/subspace.h"
#include "core/maintenance.h"
#include "datagen/synthetic.h"
#include "dataset/dataset.h"
#include "net/client.h"
#include "net/protocol.h"
#include "service/ingest.h"
#include "service/service.h"

namespace skycube {
namespace {

int g_failures = 0;

#define CHECK_SHARD(cond, ...)                    \
  do {                                            \
    if (!(cond)) {                                \
      std::fprintf(stderr, "FAIL ");              \
      std::fprintf(stderr, __VA_ARGS__);          \
      std::fprintf(stderr, "\n");                 \
      ++g_failures;                               \
      return false;                               \
    }                                             \
  } while (0)

constexpr size_t kNumShards = 3;
constexpr int64_t kReadTimeoutMillis = 60000;

struct Child {
  pid_t pid = -1;
  FILE* stderr_from = nullptr;
  uint16_t port = 0;
};

/// Forks + execs a serve/router binary and scrapes "listening on HOST:PORT"
/// from its stderr (skipping earlier startup lines).
Child Spawn(const std::string& binary,
            const std::vector<std::string>& args) {
  int err_pipe[2];
  if (pipe(err_pipe) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    dup2(err_pipe[1], STDERR_FILENO);
    close(err_pipe[0]);
    close(err_pipe[1]);
    std::vector<char*> argv;
    argv.reserve(args.size() + 2);
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    execv(binary.c_str(), argv.data());
    _exit(127);
  }
  close(err_pipe[1]);
  Child child;
  child.pid = pid;
  child.stderr_from = fdopen(err_pipe[0], "r");
  std::string line;
  int c;
  while ((c = std::fgetc(child.stderr_from)) != EOF) {
    if (c != '\n') {
      line.push_back(static_cast<char>(c));
      continue;
    }
    if (line.rfind("listening on ", 0) == 0) {
      const size_t colon = line.rfind(':');
      child.port = static_cast<uint16_t>(
          std::strtoul(line.c_str() + colon + 1, nullptr, 10));
      return child;
    }
    line.clear();
  }
  std::fprintf(stderr, "no listen line from %s (last: '%s')\n",
               binary.c_str(), line.c_str());
  kill(pid, SIGKILL);
  std::exit(1);
}

void Reap(Child* child) {
  if (child->pid > 0) {
    int status = 0;
    waitpid(child->pid, &status, 0);
    child->pid = -1;
  }
  if (child->stderr_from != nullptr) {
    fclose(child->stderr_from);
    child->stderr_from = nullptr;
  }
}

/// One request over a fresh-enough connection; false on transport failure
/// (the degradation round treats that as a tolerated loss, not a bug).
bool WireQuery(net::NetClient* client, const net::WireRequest& request,
               net::WireResponse* response) {
  if (!client->SendRequest(request).ok()) return false;
  std::string error;
  return client->ReadResponse(response,
                              Deadline::AfterMillis(kReadTimeoutMillis),
                              &error) == net::NetClient::Got::kFrame;
}

net::WireRequest SkylineRequest(DimMask subspace, uint64_t id) {
  net::WireRequest request;
  request.op = net::Opcode::kSkyline;
  request.id = id;
  request.subspace = subspace;
  return request;
}

/// The single-node oracle: the same rows through the same service stack,
/// one process, no sharding. Answers are the ground truth the router's
/// merged answers must reproduce bit-for-bit.
struct Oracle {
  explicit Oracle(Dataset data)
      : rows(CopyRows(data)),
        maintainer(std::make_unique<IncrementalCubeMaintainer>(
            std::move(data))),
        handler(std::make_unique<MaintainerInsertHandler>(maintainer.get())),
        service(std::make_unique<SkycubeService>(
            std::make_shared<const CompressedSkylineCube>(
                maintainer->MakeCube()))) {
    service->AttachInsertHandler(handler.get());
  }

  static std::vector<std::vector<double>> CopyRows(const Dataset& data) {
    std::vector<std::vector<double>> rows;
    rows.reserve(data.num_objects());
    for (ObjectId id = 0; id < data.num_objects(); ++id) {
      rows.emplace_back(data.Row(id), data.Row(id) + data.num_dims());
    }
    return rows;
  }

  std::vector<ObjectId> Skyline(DimMask subspace) const {
    const QueryResponse response =
        service->Execute(QueryRequest::SubspaceSkyline(subspace));
    return response.ok && response.ids ? *response.ids
                                       : std::vector<ObjectId>{};
  }

  bool Insert(const std::vector<double>& values) {
    rows.push_back(values);
    return service->Execute(QueryRequest::Insert(values)).ok;
  }

  std::vector<std::vector<double>> rows;  // global id -> values
  std::unique_ptr<IncrementalCubeMaintainer> maintainer;
  std::unique_ptr<MaintainerInsertHandler> handler;
  std::unique_ptr<SkycubeService> service;
};

/// a strictly dominates b on `subspace` (<= everywhere, < somewhere).
bool StrictlyDominates(const std::vector<double>& a,
                       const std::vector<double>& b, DimMask subspace) {
  bool strict = false;
  for (int d = 0; d < static_cast<int>(a.size()); ++d) {
    if ((subspace & DimBit(d)) == 0) continue;
    if (a[d] > b[d]) return false;
    if (a[d] < b[d]) strict = true;
  }
  return strict;
}

/// The survivor oracle: skyline over the rows NOT owned by `dead_shard` —
/// what a partial-flagged answer must equal. Brute force (the population
/// is small); ids are global.
std::vector<ObjectId> SurvivorSkyline(const Oracle& oracle,
                                      const HashRing& ring,
                                      size_t dead_shard, DimMask subspace) {
  std::vector<ObjectId> survivors;
  for (ObjectId gid = 0; gid < oracle.rows.size(); ++gid) {
    if (ring.OwnerOf(gid) != dead_shard) survivors.push_back(gid);
  }
  std::vector<ObjectId> skyline;
  for (ObjectId candidate : survivors) {
    bool dominated = false;
    for (ObjectId other : survivors) {
      if (other != candidate &&
          StrictlyDominates(oracle.rows[other], oracle.rows[candidate],
                            subspace)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(candidate);
  }
  return skyline;
}

std::string IdListPreview(const std::vector<ObjectId>& ids) {
  std::string out;
  for (size_t i = 0; i < ids.size() && i < 12; ++i) {
    out += (i == 0 ? "" : " ") + std::to_string(ids[i]);
  }
  if (ids.size() > 12) out += " ...";
  return out;
}

bool RunOracleRound(uint16_t router_port, const Oracle& oracle, int dims,
                    const char* label) {
  net::NetClient client;
  CHECK_SHARD(client.Connect("127.0.0.1", router_port).ok(),
              "%s: router connect failed", label);
  const DimMask full = FullMask(dims);
  uint64_t id = 0;
  for (DimMask mask = 1; mask <= full; ++mask) {
    net::WireResponse response;
    CHECK_SHARD(WireQuery(&client, SkylineRequest(mask, id++), &response),
                "%s: skyline transport failed", label);
    CHECK_SHARD(response.status == StatusCode::kOk, "%s: skyline err: %s",
                label, response.text.c_str());
    CHECK_SHARD(!response.partial, "%s: unexpected partial flag", label);
    const std::vector<ObjectId> expected = oracle.Skyline(mask);
    CHECK_SHARD(response.ids == expected,
                "%s: skyline mismatch on mask %llu: got [%s] want [%s]",
                label, static_cast<unsigned long long>(mask),
                IdListPreview(response.ids).c_str(),
                IdListPreview(expected).c_str());
  }
  // Q2 membership and the Q3 aggregates against the oracle service.
  for (ObjectId object = 0; object < 24; ++object) {
    net::WireRequest request;
    request.op = net::Opcode::kMembership;
    request.id = id++;
    request.subspace = full;
    request.object = object;
    net::WireResponse response;
    CHECK_SHARD(WireQuery(&client, request, &response),
                "%s: membership transport failed", label);
    CHECK_SHARD(response.status == StatusCode::kOk, "%s: membership err: %s",
                label, response.text.c_str());
    const QueryResponse expected =
        oracle.service->Execute(QueryRequest::Membership(object, full));
    CHECK_SHARD(response.member == expected.member,
                "%s: membership mismatch for object %u", label,
                static_cast<unsigned>(object));
  }
  for (ObjectId object = 0; object < 6; ++object) {
    net::WireRequest request;
    request.op = net::Opcode::kMembershipCount;
    request.id = id++;
    request.object = object;
    net::WireResponse response;
    CHECK_SHARD(WireQuery(&client, request, &response),
                "%s: count transport failed", label);
    CHECK_SHARD(response.status == StatusCode::kOk, "%s: count err: %s",
                label, response.text.c_str());
    const QueryResponse expected =
        oracle.service->Execute(QueryRequest::MembershipCount(object));
    CHECK_SHARD(response.count == expected.count,
                "%s: membership count mismatch for object %u (%llu != %llu)",
                label, static_cast<unsigned>(object),
                static_cast<unsigned long long>(response.count),
                static_cast<unsigned long long>(expected.count));
  }
  {
    net::WireRequest request;
    request.op = net::Opcode::kSkycubeSize;
    request.id = id++;
    net::WireResponse response;
    CHECK_SHARD(WireQuery(&client, request, &response),
                "%s: skycube-size transport failed", label);
    CHECK_SHARD(response.status == StatusCode::kOk, "%s: size err: %s",
                label, response.text.c_str());
    const QueryResponse expected =
        oracle.service->Execute(QueryRequest::SkycubeSize());
    CHECK_SHARD(response.count == expected.count,
                "%s: skycube size mismatch (%llu != %llu)", label,
                static_cast<unsigned long long>(response.count),
                static_cast<unsigned long long>(expected.count));
  }
  return true;
}

bool RunInsertRound(uint16_t router_port, Oracle* oracle, int dims) {
  net::NetClient client;
  CHECK_SHARD(client.Connect("127.0.0.1", router_port).ok(),
              "insert: router connect failed");
  constexpr int kInserts = 24;
  for (int i = 0; i < kInserts; ++i) {
    net::WireRequest request;
    request.op = net::Opcode::kInsert;
    request.id = static_cast<uint64_t>(i);
    for (int d = 0; d < dims; ++d) {
      request.values.push_back(0.31 + 0.017 * i + 0.003 * d);
    }
    net::WireResponse response;
    CHECK_SHARD(WireQuery(&client, request, &response),
                "insert: transport failed at %d", i);
    CHECK_SHARD(response.status == StatusCode::kOk, "insert %d failed: %s",
                i, response.text.c_str());
    CHECK_SHARD(oracle->Insert(request.values),
                "insert: oracle rejected row %d", i);
  }
  return true;
}

bool RunDegradationRound(uint16_t router_port, Child* victim,
                         size_t victim_shard, const Oracle& oracle,
                         const HashRing& ring, int dims) {
  const DimMask full = FullMask(dims);
  // A pipelined load is in flight when the SIGKILL lands.
  net::NetClient loaded;
  CHECK_SHARD(loaded.Connect("127.0.0.1", router_port).ok(),
              "degrade: router connect failed");
  constexpr uint64_t kBurst = 32;
  std::string burst;
  for (uint64_t i = 0; i < kBurst; ++i) {
    burst += EncodeRequest(
        SkylineRequest(1 + (i % full), i));
  }
  CHECK_SHARD(loaded.Send(burst).ok(), "degrade: burst send failed");
  CHECK_SHARD(kill(victim->pid, SIGKILL) == 0, "degrade: kill failed");
  Reap(victim);

  // Drain the burst: every answer is (a) complete-and-full-oracle-correct,
  // (b) partial-and-survivor-oracle-correct, or (c) an error/stream loss
  // while the router discovers the death. Never a wrong answer.
  uint64_t complete = 0;
  uint64_t partial = 0;
  uint64_t errors = 0;
  for (uint64_t i = 0; i < kBurst; ++i) {
    net::WireResponse response;
    std::string error;
    const net::NetClient::Got got = loaded.ReadResponse(
        &response, Deadline::AfterMillis(kReadTimeoutMillis), &error);
    if (got != net::NetClient::Got::kFrame) break;  // stream loss: tolerated
    const DimMask mask = 1 + (response.id % full);
    if (response.status != StatusCode::kOk) {
      ++errors;
      continue;
    }
    if (response.partial) {
      ++partial;
      const std::vector<ObjectId> expected =
          SurvivorSkyline(oracle, ring, victim_shard, mask);
      CHECK_SHARD(response.ids == expected,
                  "degrade: WRONG partial answer on mask %llu",
                  static_cast<unsigned long long>(mask));
    } else {
      ++complete;
      CHECK_SHARD(response.ids == oracle.Skyline(mask),
                  "degrade: WRONG unflagged answer on mask %llu after kill",
                  static_cast<unsigned long long>(mask));
    }
  }
  std::fprintf(stderr,
               "degrade: burst answers complete=%llu partial=%llu "
               "errors=%llu\n",
               static_cast<unsigned long long>(complete),
               static_cast<unsigned long long>(partial),
               static_cast<unsigned long long>(errors));

  // Steady state: within the probe window the router must serve
  // partial-flagged, survivor-correct answers (fresh connection per try —
  // the loaded one may have died with the wave).
  const Deadline settle = Deadline::AfterMillis(20000);
  bool settled = false;
  while (!settle.expired() && !settled) {
    usleep(50 * 1000);
    net::NetClient client;
    if (!client.Connect("127.0.0.1", router_port).ok()) break;
    net::WireResponse response;
    if (!WireQuery(&client, SkylineRequest(full, 9000), &response)) continue;
    if (response.status != StatusCode::kOk) continue;
    CHECK_SHARD(response.partial,
                "degrade: complete-claiming answer with a shard dead");
    const std::vector<ObjectId> expected =
        SurvivorSkyline(oracle, ring, victim_shard, full);
    CHECK_SHARD(response.ids == expected,
                "degrade: steady-state partial answer wrong: got [%s] want "
                "[%s]",
                IdListPreview(response.ids).c_str(),
                IdListPreview(expected).c_str());
    settled = true;
  }
  CHECK_SHARD(settled, "degrade: router never settled into partial serving");

  // Membership for a victim-owned object still answers (the router holds
  // the row values): member iff no surviving row strictly dominates it.
  ObjectId victim_object = 0;
  while (victim_object < oracle.rows.size() &&
         ring.OwnerOf(victim_object) != victim_shard) {
    ++victim_object;
  }
  CHECK_SHARD(victim_object < oracle.rows.size(),
              "degrade: no victim-owned row found");
  bool expected_member = true;
  for (ObjectId gid = 0; gid < oracle.rows.size(); ++gid) {
    if (gid != victim_object && ring.OwnerOf(gid) != victim_shard &&
        StrictlyDominates(oracle.rows[gid], oracle.rows[victim_object],
                          full)) {
      expected_member = false;
      break;
    }
  }
  {
    net::NetClient client;
    CHECK_SHARD(client.Connect("127.0.0.1", router_port).ok(),
                "degrade: reconnect failed");
    net::WireRequest request;
    request.op = net::Opcode::kMembership;
    request.id = 9001;
    request.subspace = full;
    request.object = victim_object;
    net::WireResponse response;
    CHECK_SHARD(WireQuery(&client, request, &response),
                "degrade: membership transport failed");
    CHECK_SHARD(response.status == StatusCode::kOk,
                "degrade: membership err: %s", response.text.c_str());
    CHECK_SHARD(response.partial, "degrade: membership not partial-flagged");
    CHECK_SHARD(response.member == expected_member,
                "degrade: membership wrong for victim-owned object %u",
                static_cast<unsigned>(victim_object));
  }
  return true;
}

bool RunRecoveryRound(uint16_t router_port, const std::string& serve,
                      const std::vector<std::string>& victim_args,
                      Child* victim, const Oracle& oracle, int dims) {
  *victim = Spawn(serve, victim_args);
  const DimMask full = FullMask(dims);
  const std::vector<ObjectId> expected = oracle.Skyline(full);
  const Deadline settle = Deadline::AfterMillis(60000);
  while (!settle.expired()) {
    usleep(100 * 1000);
    net::NetClient client;
    if (!client.Connect("127.0.0.1", router_port).ok()) continue;
    net::WireResponse response;
    if (!WireQuery(&client, SkylineRequest(full, 9100), &response)) continue;
    if (response.status != StatusCode::kOk || response.partial) continue;
    CHECK_SHARD(response.ids == expected,
                "recover: full answer wrong after shard respawn");
    return RunOracleRound(router_port, oracle, dims, "recover");
  }
  CHECK_SHARD(false, "recover: router never returned to full answers");
  return false;
}

/// kReplState straight at one server: applied LSN + role.
bool ReplState(uint16_t port, uint64_t* lsn, std::string* role) {
  net::NetClient client;
  if (!client.Connect("127.0.0.1", port).ok()) return false;
  net::WireRequest request;
  request.op = net::Opcode::kReplState;
  request.id = 1;
  net::WireResponse response;
  if (!WireQuery(&client, request, &response)) return false;
  if (response.status != StatusCode::kOk) return false;
  *lsn = response.lsn;
  if (role != nullptr) *role = response.text;
  return true;
}

/// Full-space skyline asked of one server directly (not through the
/// router) — the convergence comparison between a promoted primary and a
/// rejoined replica.
bool DirectSkyline(uint16_t port, DimMask subspace,
                   std::vector<ObjectId>* ids) {
  net::NetClient client;
  if (!client.Connect("127.0.0.1", port).ok()) return false;
  net::WireResponse response;
  if (!WireQuery(&client, SkylineRequest(subspace, 1), &response)) {
    return false;
  }
  if (response.status != StatusCode::kOk) return false;
  *ids = response.ids;
  return true;
}

/// Blocks until `replica_port`'s applied LSN reaches `primary_port`'s tip.
/// The semi-sync fence usually guarantees this already; waiting makes the
/// acked-prefix assertion deterministic even if a fence degraded.
bool WaitCaughtUp(uint16_t primary_port, uint16_t replica_port,
                  int64_t timeout_millis) {
  const Deadline deadline = Deadline::AfterMillis(timeout_millis);
  while (!deadline.expired()) {
    uint64_t primary_lsn = 0;
    uint64_t replica_lsn = 0;
    if (ReplState(primary_port, &primary_lsn, nullptr) &&
        ReplState(replica_port, &replica_lsn, nullptr) &&
        replica_lsn >= primary_lsn) {
      return true;
    }
    usleep(50 * 1000);
  }
  return false;
}

/// The replication chaos round: SIGKILL the victim shard's primary while a
/// pipelined burst is in flight, then require the router to fail over to
/// the replica and return to complete, unflagged, full-oracle answers —
/// every insert acked before the kill included. During the discovery
/// window errors and survivor-correct partials are tolerated (and
/// counted); a wrong answer never is.
bool RunReplicationChaosRound(uint16_t router_port, Child* victim_primary,
                              uint16_t victim_replica_port,
                              size_t victim_shard, const Oracle& oracle,
                              const HashRing& ring, int dims) {
  const DimMask full = FullMask(dims);
  net::NetClient loaded;
  CHECK_SHARD(loaded.Connect("127.0.0.1", router_port).ok(),
              "chaos: router connect failed");
  constexpr uint64_t kBurst = 32;
  std::string burst;
  for (uint64_t i = 0; i < kBurst; ++i) {
    burst += EncodeRequest(SkylineRequest(1 + (i % full), i));
  }
  CHECK_SHARD(loaded.Send(burst).ok(), "chaos: burst send failed");
  CHECK_SHARD(kill(victim_primary->pid, SIGKILL) == 0, "chaos: kill failed");
  Reap(victim_primary);

  uint64_t complete = 0;
  uint64_t partial = 0;
  uint64_t errors = 0;
  for (uint64_t i = 0; i < kBurst; ++i) {
    net::WireResponse response;
    std::string error;
    const net::NetClient::Got got = loaded.ReadResponse(
        &response, Deadline::AfterMillis(kReadTimeoutMillis), &error);
    if (got != net::NetClient::Got::kFrame) break;  // stream loss: tolerated
    const DimMask mask = 1 + (response.id % full);
    if (response.status != StatusCode::kOk) {
      ++errors;
      continue;
    }
    if (response.partial) {
      // Pre-failover window: the merge dropped the victim set. Must still
      // be exactly the survivor skyline.
      ++partial;
      const std::vector<ObjectId> expected =
          SurvivorSkyline(oracle, ring, victim_shard, mask);
      CHECK_SHARD(response.ids == expected,
                  "chaos: WRONG partial answer on mask %llu",
                  static_cast<unsigned long long>(mask));
    } else {
      ++complete;
      CHECK_SHARD(response.ids == oracle.Skyline(mask),
                  "chaos: WRONG complete answer on mask %llu after kill",
                  static_cast<unsigned long long>(mask));
    }
  }
  std::fprintf(stderr,
               "chaos: burst answers complete=%llu partial=%llu "
               "errors=%llu\n",
               static_cast<unsigned long long>(complete),
               static_cast<unsigned long long>(partial),
               static_cast<unsigned long long>(errors));

  // Failover settle: a fresh connection must get a complete, unflagged,
  // oracle-identical answer once the router promotes the replica.
  const Deadline settle = Deadline::AfterMillis(45000);
  bool settled = false;
  while (!settle.expired() && !settled) {
    usleep(50 * 1000);
    net::NetClient client;
    if (!client.Connect("127.0.0.1", router_port).ok()) break;
    net::WireResponse response;
    if (!WireQuery(&client, SkylineRequest(full, 9000), &response)) continue;
    if (response.status != StatusCode::kOk || response.partial) continue;
    CHECK_SHARD(response.ids == oracle.Skyline(full),
                "chaos: post-failover answer wrong: got [%s] want [%s]",
                IdListPreview(response.ids).c_str(),
                IdListPreview(oracle.Skyline(full)).c_str());
    settled = true;
  }
  CHECK_SHARD(settled, "chaos: router never failed over to the replica");

  // The replica must actually have been promoted, not merely read from.
  std::string role;
  uint64_t promoted_lsn = 0;
  CHECK_SHARD(ReplState(victim_replica_port, &promoted_lsn, &role),
              "chaos: promoted replica unreachable");
  CHECK_SHARD(role == "primary",
              "chaos: victim replica reports role=%s after failover",
              role.c_str());

  // Every answer kind, full oracle, zero partials — the acked prefix is
  // complete on the promoted replica.
  return RunOracleRound(router_port, oracle, dims, "post-failover");
}

/// Respawns the killed primary as a replica of the promoted one and waits
/// for convergence: role=replica, applied LSN at the new primary's tip,
/// and a byte-identical full-space skyline asked of each directly.
bool RunRejoinRound(const std::string& serve,
                    const std::vector<std::string>& rejoin_args,
                    Child* old_primary, uint16_t new_primary_port,
                    int dims) {
  *old_primary = Spawn(serve, rejoin_args);
  const Deadline deadline = Deadline::AfterMillis(60000);
  bool converged = false;
  while (!deadline.expired() && !converged) {
    usleep(100 * 1000);
    uint64_t primary_lsn = 0;
    uint64_t replica_lsn = 0;
    std::string role;
    if (!ReplState(new_primary_port, &primary_lsn, nullptr)) continue;
    if (!ReplState(old_primary->port, &replica_lsn, &role)) continue;
    converged = role == "replica" && replica_lsn >= primary_lsn;
  }
  CHECK_SHARD(converged, "rejoin: old primary never converged as replica");
  const DimMask full = FullMask(dims);
  std::vector<ObjectId> promoted_ids;
  std::vector<ObjectId> rejoined_ids;
  CHECK_SHARD(DirectSkyline(new_primary_port, full, &promoted_ids),
              "rejoin: promoted primary skyline failed");
  CHECK_SHARD(DirectSkyline(old_primary->port, full, &rejoined_ids),
              "rejoin: rejoined replica skyline failed");
  CHECK_SHARD(promoted_ids == rejoined_ids,
              "rejoin: rejoined replica diverges: got [%s] want [%s]",
              IdListPreview(rejoined_ids).c_str(),
              IdListPreview(promoted_ids).c_str());
  return true;
}

/// The --replication scenario: kNumShards primary+replica sets behind a
/// replica-aware router, oracle/insert rounds, the kill-primary chaos
/// round, post-failover fenced mutations, and the rejoin-and-converge
/// round.
int ReplicationMain(const std::string& serve, const std::string& router,
                    const std::string& work_dir, int tuples, int dims,
                    uint64_t seed) {
  const std::vector<std::string> source_args = {
      "--synthetic",
      "--tuples=" + std::to_string(tuples),
      "--dims=" + std::to_string(dims),
      "--seed=" + std::to_string(seed),
      "--truncate=4",
  };
  SyntheticSpec spec;
  spec.distribution = DistributionFromName("independent");
  spec.num_objects = static_cast<size_t>(tuples);
  spec.num_dims = dims;
  spec.seed = seed;
  spec.truncate_decimals = 4;
  Oracle oracle(GenerateSynthetic(spec));
  const HashRing ring(kNumShards, /*seed=*/0, /*vnodes=*/64);

  std::vector<Child> primaries(kNumShards);
  std::vector<Child> replicas(kNumShards);
  std::string endpoints;
  for (size_t s = 0; s < kNumShards; ++s) {
    std::vector<std::string> primary_args = source_args;
    primary_args.push_back("--shard-count=" + std::to_string(kNumShards));
    primary_args.push_back("--shard-index=" + std::to_string(s));
    primary_args.push_back("--ring-seed=0");
    primary_args.push_back("--data-dir=" + work_dir + "/shard-" +
                           std::to_string(s) + "-primary");
    primary_args.push_back("--port=0");
    primaries[s] = Spawn(serve, primary_args);
    // The replica's whole state comes from the primary's snapshot + WAL;
    // it takes no dataset or shard-filter flags.
    const std::vector<std::string> replica_args = {
        "--data-dir=" + work_dir + "/shard-" + std::to_string(s) +
            "-replica",
        "--replica-of=127.0.0.1:" + std::to_string(primaries[s].port),
        "--port=0",
    };
    replicas[s] = Spawn(serve, replica_args);
    endpoints += (s == 0 ? "" : ",") + std::string("127.0.0.1:") +
                 std::to_string(primaries[s].port) + "+127.0.0.1:" +
                 std::to_string(replicas[s].port);
    std::fprintf(stderr, "shard %zu primary pid %d port %u, replica pid %d "
                 "port %u\n",
                 s, static_cast<int>(primaries[s].pid),
                 static_cast<unsigned>(primaries[s].port),
                 static_cast<int>(replicas[s].pid),
                 static_cast<unsigned>(replicas[s].port));
  }

  std::vector<std::string> router_args = source_args;
  router_args.push_back("--shards=" + endpoints);
  router_args.push_back("--ring-seed=0");
  router_args.push_back("--port=0");
  router_args.push_back("--down-after=2");
  router_args.push_back("--retry-ms=200");
  Child router_child = Spawn(router, router_args);
  std::fprintf(stderr, "router pid %d port %u\n",
               static_cast<int>(router_child.pid),
               static_cast<unsigned>(router_child.port));

  if (RunOracleRound(router_child.port, oracle, dims, "oracle")) {
    std::fprintf(stderr, "PASS oracle round (replicated)\n");
  }
  if (g_failures == 0 && RunInsertRound(router_child.port, &oracle, dims)) {
    std::fprintf(stderr, "PASS insert round (replicated)\n");
  }
  // Make the acked-prefix oracle deterministic: every replica at its
  // primary's tip before the kill.
  for (size_t s = 0; s < kNumShards && g_failures == 0; ++s) {
    if (!WaitCaughtUp(primaries[s].port, replicas[s].port, 30000)) {
      std::fprintf(stderr, "FAIL shard %zu replica never caught up\n", s);
      ++g_failures;
    }
  }
  constexpr size_t kVictim = 1;
  if (g_failures == 0 &&
      RunReplicationChaosRound(router_child.port, &primaries[kVictim],
                               replicas[kVictim].port, kVictim, oracle,
                               ring, dims)) {
    std::fprintf(stderr, "PASS replication chaos round\n");
  }
  // Fenced mutations through the promoted primary (its fence degrades to
  // async instantly while it has no follower of its own).
  if (g_failures == 0 && RunInsertRound(router_child.port, &oracle, dims)) {
    std::fprintf(stderr, "PASS post-failover insert round\n");
  }
  if (g_failures == 0 &&
      RunOracleRound(router_child.port, oracle, dims,
                     "post-failover-insert")) {
    std::fprintf(stderr, "PASS post-failover oracle round\n");
  }
  if (g_failures == 0) {
    const std::vector<std::string> rejoin_args = {
        "--data-dir=" + work_dir + "/shard-" + std::to_string(kVictim) +
            "-primary",
        "--replica-of=127.0.0.1:" + std::to_string(replicas[kVictim].port),
        "--port=0",
    };
    if (RunRejoinRound(serve, rejoin_args, &primaries[kVictim],
                       replicas[kVictim].port, dims)) {
      std::fprintf(stderr, "PASS rejoin round (old primary converged as "
                   "replica)\n");
    }
  }

  kill(router_child.pid, SIGTERM);
  Reap(&router_child);
  for (Child& child : primaries) {
    if (child.pid > 0) kill(child.pid, SIGTERM);
    Reap(&child);
  }
  for (Child& child : replicas) {
    if (child.pid > 0) kill(child.pid, SIGTERM);
    Reap(&child);
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "skycube_shardtest --replication: %d failure(s)\n",
                 g_failures);
    return 1;
  }
  std::fprintf(stderr, "skycube_shardtest --replication: all rounds "
               "passed\n");
  return 0;
}

int Main(int argc, char** argv) {
  const FlagParser flags(argc, argv);
  const std::string serve = flags.GetString("serve", "");
  const std::string router = flags.GetString("router", "");
  const std::string work_dir = flags.GetString("work-dir", "");
  if (serve.empty() || router.empty() || work_dir.empty()) {
    std::fprintf(stderr,
                 "usage: skycube_shardtest --serve=PATH --router=PATH "
                 "--work-dir=DIR\n");
    return 2;
  }
  const int tuples = static_cast<int>(flags.GetInt("tuples", 500));
  const int dims = static_cast<int>(flags.GetInt("dims", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 29));

  std::error_code ec;
  std::filesystem::remove_all(work_dir, ec);
  std::filesystem::create_directories(work_dir, ec);

  if (flags.GetBool("replication", false)) {
    return ReplicationMain(serve, router, work_dir, tuples, dims, seed);
  }

  // The shared synthetic spec: shards filter it by ring ownership, the
  // router and the oracle load it whole. Must agree everywhere.
  const std::vector<std::string> source_args = {
      "--synthetic",
      "--tuples=" + std::to_string(tuples),
      "--dims=" + std::to_string(dims),
      "--seed=" + std::to_string(seed),
      "--truncate=4",
  };
  SyntheticSpec spec;
  spec.distribution = DistributionFromName("independent");
  spec.num_objects = static_cast<size_t>(tuples);
  spec.num_dims = dims;
  spec.seed = seed;
  spec.truncate_decimals = 4;
  Oracle oracle(GenerateSynthetic(spec));
  const HashRing ring(kNumShards, /*seed=*/0, /*vnodes=*/64);

  std::vector<Child> shards(kNumShards);
  std::vector<std::vector<std::string>> shard_args(kNumShards);
  std::string endpoints;
  for (size_t s = 0; s < kNumShards; ++s) {
    shard_args[s] = source_args;
    shard_args[s].push_back("--shard-count=" + std::to_string(kNumShards));
    shard_args[s].push_back("--shard-index=" + std::to_string(s));
    shard_args[s].push_back("--ring-seed=0");
    shard_args[s].push_back("--data-dir=" + work_dir + "/shard-" +
                            std::to_string(s));
    shard_args[s].push_back("--port=0");
    shards[s] = Spawn(serve, shard_args[s]);
    endpoints += (s == 0 ? "" : ",") + std::string("127.0.0.1:") +
                 std::to_string(shards[s].port);
    std::fprintf(stderr, "shard %zu pid %d port %u\n", s,
                 static_cast<int>(shards[s].pid),
                 static_cast<unsigned>(shards[s].port));
  }

  std::vector<std::string> router_args = source_args;
  router_args.push_back("--shards=" + endpoints);
  router_args.push_back("--ring-seed=0");
  router_args.push_back("--port=0");
  router_args.push_back("--down-after=2");
  router_args.push_back("--retry-ms=200");
  Child router_child = Spawn(router, router_args);
  std::fprintf(stderr, "router pid %d port %u\n",
               static_cast<int>(router_child.pid),
               static_cast<unsigned>(router_child.port));

  if (RunOracleRound(router_child.port, oracle, dims, "oracle")) {
    std::fprintf(stderr, "PASS oracle round\n");
  }
  if (RunInsertRound(router_child.port, &oracle, dims)) {
    std::fprintf(stderr, "PASS insert round\n");
  }
  if (g_failures == 0 &&
      RunOracleRound(router_child.port, oracle, dims, "post-insert")) {
    std::fprintf(stderr, "PASS post-insert oracle round\n");
  }
  constexpr size_t kVictim = 1;
  if (g_failures == 0 &&
      RunDegradationRound(router_child.port, &shards[kVictim], kVictim,
                          oracle, ring, dims)) {
    std::fprintf(stderr, "PASS degradation round\n");
  }
  if (g_failures == 0) {
    // Respawn on the old port so the router's configured endpoint revives.
    std::vector<std::string> respawn_args = shard_args[kVictim];
    respawn_args.back() = "--port=" + std::to_string(shards[kVictim].port);
    const uint16_t old_port = shards[kVictim].port;
    if (RunRecoveryRound(router_child.port, serve, respawn_args,
                         &shards[kVictim], oracle, dims)) {
      std::fprintf(stderr, "PASS recovery round (shard back on port %u)\n",
                   static_cast<unsigned>(old_port));
    }
  }

  kill(router_child.pid, SIGTERM);
  Reap(&router_child);
  for (Child& shard : shards) {
    if (shard.pid > 0) kill(shard.pid, SIGTERM);
    Reap(&shard);
  }

  if (g_failures > 0) {
    std::fprintf(stderr, "skycube_shardtest: %d failure(s)\n", g_failures);
    return 1;
  }
  std::fprintf(stderr, "skycube_shardtest: all rounds passed\n");
  return 0;
}

}  // namespace
}  // namespace skycube

int main(int argc, char** argv) { return skycube::Main(argc, argv); }
