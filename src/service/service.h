// SkycubeService: a long-lived, thread-safe query front end over an
// immutable CompressedSkylineCube snapshot.
//
// Architecture (docs/SERVICE.md):
//  - the cube lives behind std::atomic<std::shared_ptr<const Snapshot>>;
//    readers load the pointer once per query and keep the snapshot alive
//    for the duration — Reload() swaps the pointer and never blocks
//    readers, so a query overlapping a swap is answered consistently by
//    exactly one of the two snapshots (its version says which);
//  - answers are memoized in a sharded LRU ResultCache keyed by
//    (kind, subspace, object, snapshot_version); keying by version makes a
//    swap an implicit whole-cache invalidation (Clear() just reclaims the
//    memory eagerly);
//  - batches fan out over a ThreadPool; single queries run on the caller's
//    thread (a cached Q1 answer is a hash probe — cheaper than a handoff);
//  - overload protection: an optional max-in-flight admission gate sheds
//    excess arrivals with kResourceExhausted after at most
//    queue_wait_timeout, and per-request deadlines are enforced at
//    admission, before the cache probe, and inside the cube traversals
//    (kDeadlineExceeded) — see docs/ROBUSTNESS.md.
#ifndef SKYCUBE_SERVICE_SERVICE_H_
#define SKYCUBE_SERVICE_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>  // std::once_flag
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/cube.h"
#include "service/executor.h"
#include "service/ingest.h"
#include "service/request.h"
#include "service/result_cache.h"
#include "service/service_stats.h"

namespace skycube {

/// Construction knobs for a SkycubeService.
struct SkycubeServiceOptions {
  /// Result cache sizing; capacity 0 disables caching.
  ResultCacheOptions cache;
  /// Worker threads for batch fan-out (0 = hardware concurrency). The pool
  /// is created lazily on the first ExecuteBatch call.
  int batch_threads = 0;
  /// Bounded work-queue capacity of the batch pool.
  size_t queue_capacity = 1024;
  /// Admission control: maximum concurrently executing operations (an
  /// Execute call or a whole ExecuteBatch call each hold one slot).
  /// 0 = unlimited (no gate, no in-flight tracking).
  size_t max_in_flight = 0;
  /// How long an over-limit arrival may wait for a slot before being shed
  /// with kResourceExhausted. 0 = shed immediately.
  std::chrono::milliseconds queue_wait_timeout{0};
  /// Snapshots retained for kEpochDiff queries (a bounded ring: the newest
  /// `epoch_history` versions stay answerable; older since_versions answer
  /// kNotFound). 0 disables epoch-diff entirely.
  size_t epoch_history = 32;
  /// Wall clock (ms since epoch) stamped on each inserted row as its
  /// ingest timestamp — what the sliding-window expiry pass compares
  /// against. Null uses the system clock; tests inject a fake.
  std::function<uint64_t()> ingest_clock;
};

class SkycubeService : public QueryExecutor {
 public:
  /// Starts serving `cube` as snapshot version 1.
  SkycubeService(std::shared_ptr<const CompressedSkylineCube> cube,
                 SkycubeServiceOptions options = {});
  ~SkycubeService();

  SkycubeService(const SkycubeService&) = delete;
  SkycubeService& operator=(const SkycubeService&) = delete;

  /// Answers one query on the calling thread (admission → cache →
  /// snapshot). Safe from any number of threads concurrently, including
  /// across Reload calls. Never blocks longer than queue_wait_timeout plus
  /// the query's own compute time; requests carrying an expired deadline
  /// (before or during compute) answer kDeadlineExceeded, shed requests
  /// kResourceExhausted.
  QueryResponse Execute(const QueryRequest& request) override;

  /// Answers a batch, fanning the requests out across the service pool;
  /// responses[i] answers requests[i]. The calling thread participates, so
  /// this never deadlocks even with a saturated pool. Items fail
  /// independently (invalid, deadlined, or thrown-from computations become
  /// per-item error responses) — a batch is never all-or-nothing. The batch
  /// holds one admission slot; if shed, every item answers
  /// kResourceExhausted.
  std::vector<QueryResponse> ExecuteBatch(
      const std::vector<QueryRequest>& requests);

  /// Atomically replaces the served snapshot (version + 1) and invalidates
  /// the result cache. In-flight queries finish against whichever snapshot
  /// they loaded; new queries see `cube`.
  void Reload(std::shared_ptr<const CompressedSkylineCube> cube);

  /// Enables kInsert/kDelete requests (disabled by default: they answer
  /// kInvalidArgument on a read-only service). `handler` is not owned and
  /// must outlive the service. Call before serving traffic.
  void AttachInsertHandler(InsertHandler* handler);

  /// Sliding-window expiry: tombstones every live row with a nonzero ingest
  /// timestamp older than `cutoff_ms` and publishes the post-expiry
  /// snapshot (bumping the version, which invalidates the result cache).
  /// Serialized with inserts/deletes under the ingest mutex, so the swap
  /// order matches the WAL order. Returns the number of rows expired (0 is
  /// a successful no-op). Fails kInvalidArgument on a read-only service.
  Result<uint64_t> ApplyExpiry(uint64_t cutoff_ms) EXCLUDES(ingest_mu_);

  /// Graceful-shutdown gate: after this, every new Execute/ExecuteBatch
  /// answers kUnavailable without touching cache or cube; in-flight work
  /// finishes normally. Irreversible.
  void BeginDrain() override;
  bool draining() const override {
    return draining_.load(std::memory_order_acquire);
  }

  /// The currently served cube (shared ownership keeps it valid even if a
  /// Reload lands immediately after).
  std::shared_ptr<const CompressedSkylineCube> snapshot() const;
  uint64_t snapshot_version() const override;

  /// Row width of the served cube (QueryExecutor introspection).
  int num_dims() const override;

  /// Default serve-tool health/stats renderings (text_format.h). Tools that
  /// add suffixes (durable ingest counters) format their own lines instead.
  std::string HealthLine() const override;
  std::string StatsLine() const override;

  ServiceStats stats() const EXCLUDES(admission_mu_);

 private:
  struct Snapshot {
    std::shared_ptr<const CompressedSkylineCube> cube;
    uint64_t version = 0;
  };

  std::shared_ptr<const Snapshot> LoadSnapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// nullptr if `request` is well-formed for `cube`, else the error text.
  static const char* ValidationError(const QueryRequest& request,
                                     const CompressedSkylineCube& cube);

  /// Computes a validated `request` against `snap` (no cache involvement).
  QueryResponse Compute(const QueryRequest& request,
                        const Snapshot& snap) const;

  /// Cache-through execution against `snap`.
  QueryResponse ExecuteOn(const QueryRequest& request, const Snapshot& snap);

  /// Admission gate. True = a slot was acquired (pair with ReleaseSlot);
  /// false = shed. Always true when max_in_flight == 0.
  bool AdmitSlot() EXCLUDES(admission_mu_);
  void ReleaseSlot() EXCLUDES(admission_mu_);

  /// Builds + counts a kResourceExhausted response for a shed request.
  QueryResponse ShedResponse(const QueryRequest& request, uint64_t version);

  /// Builds + counts a kUnavailable response for a draining service.
  QueryResponse DrainingResponse(const QueryRequest& request,
                                 uint64_t version);

  /// The kInsert path: serialize under ingest_mu_, apply through the
  /// handler, swap the post-insert snapshot in (which invalidates the
  /// result cache by version). Never cached.
  QueryResponse ExecuteInsert(const QueryRequest& request)
      EXCLUDES(ingest_mu_);

  /// The kDelete path: same shape as ExecuteInsert (serialize, apply,
  /// swap). An already-dead target succeeds without a snapshot swap — the
  /// served cube did not change, so cached answers stay valid.
  QueryResponse ExecuteDelete(const QueryRequest& request)
      EXCLUDES(ingest_mu_);

  /// Computes a kEpochDiff answer: the ids that entered/left
  /// Sky(request.subspace) between the retained snapshot at
  /// request.since_version and `snap`. kNotFound if that version fell out
  /// of the bounded history ring.
  QueryResponse ComputeEpochDiff(const QueryRequest& request,
                                 const Snapshot& snap) const
      EXCLUDES(history_mu_);

  /// Remembers `snap` in the bounded epoch-history ring (no-op when
  /// epoch_history == 0).
  void RetainSnapshot(std::shared_ptr<const Snapshot> snap)
      EXCLUDES(history_mu_);

  ThreadPool& BatchPool();

  SkycubeServiceOptions options_;
  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  ResultCache cache_;

  std::atomic<uint64_t> snapshot_swaps_{0};
  std::array<std::atomic<uint64_t>, kNumQueryKinds> queries_by_kind_{};
  std::atomic<uint64_t> invalid_requests_{0};
  std::atomic<uint64_t> batches_{0};
  LatencyHistogram latency_;

  // Overload / failure accounting.
  std::array<std::atomic<uint64_t>, kNumQueryKinds> shed_by_kind_{};
  std::atomic<uint64_t> shed_total_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> internal_errors_{0};
  std::atomic<uint64_t> admission_waits_{0};

  // Ingest path (only active once AttachInsertHandler was called).
  std::atomic<InsertHandler*> insert_handler_{nullptr};
  Mutex ingest_mu_;  // serializes {insert,delete,expiry} + Reload pairs
  std::atomic<uint64_t> inserts_applied_{0};
  std::atomic<uint64_t> insert_failures_{0};
  std::atomic<uint64_t> deletes_applied_{0};
  std::atomic<uint64_t> delete_failures_{0};
  std::atomic<uint64_t> expiry_passes_{0};
  std::atomic<uint64_t> expired_rows_{0};

  // Epoch history for kEpochDiff: the newest options_.epoch_history
  // snapshots, oldest first. Mutable so const ComputeEpochDiff can probe it.
  mutable Mutex history_mu_;
  std::deque<std::shared_ptr<const Snapshot>> history_
      GUARDED_BY(history_mu_);

  // Graceful drain (BeginDrain).
  std::atomic<bool> draining_{false};
  std::atomic<uint64_t> drained_rejects_{0};

  // Admission gate (only used when options_.max_in_flight > 0). Mutable so
  // const stats() can take it for a consistent high-water read.
  mutable Mutex admission_mu_;
  CondVar admission_cv_;
  size_t in_flight_ GUARDED_BY(admission_mu_) = 0;
  size_t in_flight_high_water_ GUARDED_BY(admission_mu_) = 0;

  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
  /// Set (once) after pool_ is constructed; lets stats() read the pool
  /// without racing its lazy creation.
  std::atomic<ThreadPool*> pool_ptr_{nullptr};
};

}  // namespace skycube

#endif  // SKYCUBE_SERVICE_SERVICE_H_
