// One-line text renderings of service answers and counters — the shared
// vocabulary of the skycube_serve REPL and the network protocol's
// kHealth/kStats opcodes (docs/SERVICE.md, "Serving binary"). Kept in
// src/service/ so every front end (stdin REPL, socket server, tests)
// formats identically and scripts can scrape either transport.
#ifndef SKYCUBE_SERVICE_TEXT_FORMAT_H_
#define SKYCUBE_SERVICE_TEXT_FORMAT_H_

#include <string>

#include "service/request.h"
#include "service/service.h"

namespace skycube {

/// Renders one answer as the REPL's "ok ..."/"err [...]..." line.
std::string FormatResponseLine(const QueryResponse& response);

/// Renders the full one-line stats dump ("ok queries=... draining=...").
std::string FormatStatsLine(const SkycubeService& service);

/// Renders the base health line ("ok status=ready version=N"). Front ends
/// append deployment-specific fields — tools/skycube_serve.cc adds
/// "durable=..." plus the WAL/recovery counters of DurableIngest.
std::string FormatHealthLine(const SkycubeService& service);

}  // namespace skycube

#endif  // SKYCUBE_SERVICE_TEXT_FORMAT_H_
