#include "service/cube_rebuilder.h"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/rng.h"

namespace skycube {

namespace {

/// The classic rebuild job: produce the next cube, swap it into the
/// service. A null cube inside an OK result is a failure — it must never
/// reach Reload.
CubeRebuilder::Job MakeReloadJob(SkycubeService* service,
                                 CubeRebuilder::Builder builder) {
  SKYCUBE_CHECK_MSG(service != nullptr, "CubeRebuilder needs a service");
  SKYCUBE_CHECK_MSG(builder != nullptr, "CubeRebuilder needs a builder");
  return [service, builder = std::move(builder)]() -> Status {
    auto result = builder();
    if (!result.ok()) return result.status();
    if (result.value() == nullptr) {
      return Status::Internal("builder returned a null cube");
    }
    service->Reload(std::move(result).value());
    return Status::Ok();
  };
}

}  // namespace

CubeRebuilder::CubeRebuilder(Job job, CubeRebuilderOptions options)
    : job_(std::move(job)),
      options_(options),
      jitter_state_(options.jitter_seed) {
  SKYCUBE_CHECK_MSG(job_ != nullptr, "CubeRebuilder needs a job");
  worker_ = std::thread([this] { WorkerLoop(); });
}

CubeRebuilder::CubeRebuilder(SkycubeService* service, Builder builder,
                             CubeRebuilderOptions options)
    : CubeRebuilder(MakeReloadJob(service, std::move(builder)), options) {}

CubeRebuilder::~CubeRebuilder() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  worker_.join();
}

void CubeRebuilder::TriggerRebuild() {
  {
    MutexLock lock(&mu_);
    trigger_pending_ = true;
    stats_.idle = false;
  }
  cv_.NotifyAll();
}

bool CubeRebuilder::WaitUntilIdle(std::chrono::milliseconds timeout) {
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(&mu_);
  while (trigger_pending_ || building_) {
    if (!idle_cv_.WaitUntil(&mu_, give_up) &&
        (trigger_pending_ || building_)) {
      return false;  // timed out still busy
    }
  }
  return true;
}

CubeRebuilderStats CubeRebuilder::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

Status CubeRebuilder::RunJob() {
  if (SKYCUBE_FAULT_POINT("rebuilder.build")) {
    return Status::Unavailable("fault injection: rebuilder.build");
  }
  // Jobs load files and allocate large structures — contain anything they
  // throw so a bad refresh can never unwind through the worker thread.
  try {
    return job_();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("job threw: ") + e.what());
  } catch (...) {
    return Status::Internal("job threw an unknown exception");
  }
}

std::chrono::milliseconds CubeRebuilder::NextBackoffLocked(
    int consecutive_failures) {
  double backoff = static_cast<double>(options_.initial_backoff.count());
  for (int i = 1; i < consecutive_failures; ++i) {
    backoff *= options_.backoff_multiplier;
    if (backoff >= static_cast<double>(options_.max_backoff.count())) break;
  }
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff.count()));
  double factor = 1.0;
  if (options_.jitter > 0.0) {
    Rng rng(jitter_state_++);
    factor = 1.0 + options_.jitter * (2.0 * rng.NextDouble() - 1.0);
  }
  const auto millis = static_cast<int64_t>(backoff * factor);
  return std::chrono::milliseconds(std::max<int64_t>(millis, 1));
}

void CubeRebuilder::WorkerLoop() {
  mu_.Lock();
  while (!shutting_down_) {
    while (!trigger_pending_ && !shutting_down_) cv_.Wait(&mu_);
    if (shutting_down_) break;
    trigger_pending_ = false;
    building_ = true;
    int consecutive_failures = 0;
    for (;;) {
      ++stats_.builds_attempted;
      mu_.Unlock();
      // The job (build + swap) runs unlocked: TriggerRebuild and stats()
      // must never block behind a slow builder.
      const Status status = RunJob();
      mu_.Lock();
      if (status.ok()) {
        ++stats_.builds_succeeded;
        stats_.last_backoff_millis = 0;
        break;
      }
      ++stats_.builds_failed;
      ++consecutive_failures;
      if (options_.max_attempts > 0 &&
          consecutive_failures >= options_.max_attempts) {
        ++stats_.gave_up;
        stats_.last_backoff_millis = 0;
        break;
      }
      const auto backoff = NextBackoffLocked(consecutive_failures);
      stats_.last_backoff_millis = backoff.count();
      // Backoff sleep, interruptible by shutdown. A new trigger does NOT
      // shorten the sleep: the pending retry already covers it (coalescing).
      const auto wake = std::chrono::steady_clock::now() + backoff;
      while (!shutting_down_ && cv_.WaitUntil(&mu_, wake)) {
        // Notified (or spurious) before the timeout: keep sleeping unless
        // shutdown was requested.
      }
      if (shutting_down_) break;
    }
    building_ = false;
    if (!trigger_pending_) stats_.idle = true;
    idle_cv_.NotifyAll();
  }
  mu_.Unlock();
}

}  // namespace skycube
