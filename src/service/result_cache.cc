#include "service/result_cache.h"

#include <algorithm>
#include <utility>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/macros.h"

namespace skycube {
namespace {

size_t CacheShardCount(const ResultCacheOptions& options) {
  // No point in more shards than capacity slots.
  size_t shards = std::max<size_t>(options.num_shards, 1);
  if (options.capacity > 0 && shards > options.capacity) {
    shards = options.capacity;
  }
  return shards;
}

}  // namespace

size_t ResultCache::KeyHash::operator()(const Key& key) const {
  uint64_t h = HashCombine(0x5C7BE5ULL, static_cast<uint64_t>(key.kind));
  h = HashCombine(h, key.subspace);
  h = HashCombine(h, key.object);
  h = HashCombine(h, key.version);
  h = HashCombine(h, key.epoch);
  return static_cast<size_t>(h);
}

ResultCache::ResultCache(ResultCacheOptions options)
    : capacity_(options.capacity), ring_(CacheShardCount(options)) {
  const size_t shards = ring_.num_shards();
  per_shard_capacity_ = capacity_ == 0 ? 0 : (capacity_ + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const Key& key) {
  return *shards_[ring_.OwnerOf(KeyHash{}(key))];
}

bool ResultCache::Lookup(const Key& key, QueryResponse* response) {
  // Test-only forced miss; still counted so hit-rate accounting stays honest.
  if (SKYCUBE_FAULT_POINT("result_cache.lookup")) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mu);
    ++shard.misses;
    return false;
  }
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *response = it->second->response;
  return true;
}

void ResultCache::Insert(const Key& key, const QueryResponse& response) {
  if (!enabled()) return;
  // A partial answer (degraded scatter–gather merge, docs/SHARDING.md) is
  // correct only for the shards that happened to be reachable; caching it
  // would keep serving the degraded answer at this version long after the
  // missing shard recovered. Complete answers only.
  if (response.partial) return;
  // Test-only dropped insert: callers must tolerate the cache losing writes.
  if (SKYCUBE_FAULT_POINT("result_cache.insert")) return;
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Refresh: racing computations of the same key produce equal answers
    // (same snapshot version), so keeping either is fine.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    it->second->response = response;
    return;
  }
  shard.lru.push_front(Entry{key, response});
  shard.map.emplace(key, shard.lru.begin());
  ++shard.insertions;
  if (shard.lru.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->invalidations += shard->lru.size();
    shard->map.clear();
    shard->lru.clear();
  }
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats stats;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.evictions += shard->evictions;
    stats.invalidations += shard->invalidations;
    stats.entries += shard->lru.size();
  }
  return stats;
}

}  // namespace skycube
