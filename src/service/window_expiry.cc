#include "service/window_expiry.h"

#include <chrono>
#include <utility>

#include "common/macros.h"

namespace skycube {

namespace {

uint64_t SystemNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

WindowExpiry::WindowExpiry(SkycubeService* service,
                           WindowExpiryOptions options, Clock clock)
    : service_(service),
      options_(options),
      clock_(clock ? std::move(clock) : Clock(SystemNowMs)) {
  SKYCUBE_CHECK_MSG(service_ != nullptr, "WindowExpiry needs a service");
  runner_ = std::make_unique<CubeRebuilder>([this] { return RunPass(); },
                                            options_.retry);
  if (options_.window_ms > 0 && options_.interval.count() > 0) {
    timer_ = std::thread([this] { TimerLoop(); });
  }
}

WindowExpiry::~WindowExpiry() {
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
  }
  cv_.NotifyAll();
  if (timer_.joinable()) timer_.join();
  runner_.reset();  // joins the pass worker
}

void WindowExpiry::TickAt(uint64_t cutoff_ms) {
  // Monotone cutoffs: the window only slides forward, and a coalesced pass
  // must never run with an older cutoff than one already requested.
  uint64_t current = cutoff_ms_.load(std::memory_order_relaxed);
  while (cutoff_ms > current && !cutoff_ms_.compare_exchange_weak(
                                    current, cutoff_ms,
                                    std::memory_order_relaxed)) {
  }
  {
    MutexLock lock(&mu_);
    ++stats_.ticks;
  }
  runner_->TriggerRebuild();
}

bool WindowExpiry::WaitUntilIdle(std::chrono::milliseconds timeout) {
  return runner_->WaitUntilIdle(timeout);
}

WindowExpiryStats WindowExpiry::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

Status WindowExpiry::RunPass() {
  const uint64_t cutoff = cutoff_ms_.load(std::memory_order_relaxed);
  if (cutoff == 0) return Status::Ok();  // nothing requested yet
  Result<uint64_t> expired = service_->ApplyExpiry(cutoff);
  MutexLock lock(&mu_);
  if (!expired.ok()) {
    ++stats_.passes_failed;
    return expired.status();
  }
  ++stats_.passes_ok;
  stats_.rows_expired += expired.value();
  stats_.last_cutoff_ms = cutoff;
  return Status::Ok();
}

void WindowExpiry::TimerLoop() {
  MutexLock lock(&mu_);
  while (!shutting_down_) {
    const auto wake = std::chrono::steady_clock::now() + options_.interval;
    while (!shutting_down_ && cv_.WaitUntil(&mu_, wake)) {
      // Notified (or spurious) before the period elapsed: keep waiting
      // unless shutdown was requested.
    }
    if (shutting_down_) break;
    const uint64_t now = clock_();
    if (now <= options_.window_ms) continue;  // window covers all of time
    const uint64_t cutoff = now - options_.window_ms;
    // Inline TickAt minus the lock (already held for stats_).
    uint64_t current = cutoff_ms_.load(std::memory_order_relaxed);
    while (cutoff > current && !cutoff_ms_.compare_exchange_weak(
                                   current, cutoff,
                                   std::memory_order_relaxed)) {
    }
    ++stats_.ticks;
    runner_->TriggerRebuild();
  }
}

}  // namespace skycube
