// CubeRebuilder: resilient background execution of snapshot-refresh work.
//
// The general shape is a Job — any Status-returning unit of work (a cube
// rebuild + Reload, a window-expiry pass, ...) — run on a dedicated worker
// with coalescing triggers and exponential-backoff retries. The service
// keeps answering from its last good snapshot while a job runs off-thread.
// A job that fails (error Status or a thrown exception) is retried with
// backoff plus jitter, and a broken result is never published — the failure
// mode of a bad refresh is "stale answers", never "no answers" and never
// "corrupt answers".
//
// The original cube-builder form is a convenience constructor that wraps a
// Builder (produce the next cube) and the service Reload into one Job.
//
// Threading: one worker thread owned by the rebuilder. TriggerRebuild() is
// safe from any thread and coalesces — triggers arriving while a job is
// in progress fold into a single follow-up run (the next run always
// observes the freshest trigger, so nothing is lost by folding).
#ifndef SKYCUBE_SERVICE_CUBE_REBUILDER_H_
#define SKYCUBE_SERVICE_CUBE_REBUILDER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/cube.h"
#include "service/service.h"

namespace skycube {

/// Construction knobs for a CubeRebuilder.
struct CubeRebuilderOptions {
  /// Delay before the first retry after a failed build.
  std::chrono::milliseconds initial_backoff{100};
  /// Retry delays grow by `backoff_multiplier` up to this cap.
  std::chrono::milliseconds max_backoff{30000};
  double backoff_multiplier = 2.0;
  /// Uniform jitter applied to each backoff delay: the actual sleep is
  /// backoff * U[1 - jitter, 1 + jitter]. Decorrelates retry storms when
  /// many replicas share a failing dependency.
  double jitter = 0.2;
  /// Consecutive failures before a triggered rebuild is abandoned
  /// (counted in stats().gave_up). 0 = retry until it succeeds.
  int max_attempts = 0;
  /// Seed for the jitter RNG (deterministic tests).
  uint64_t jitter_seed = 42;
};

/// Counters of a CubeRebuilder (plain data, copyable).
struct CubeRebuilderStats {
  uint64_t builds_attempted = 0;
  uint64_t builds_failed = 0;
  uint64_t builds_succeeded = 0;
  /// Triggers abandoned after max_attempts consecutive failures.
  uint64_t gave_up = 0;
  /// The delay scheduled after the most recent failure (0 after success).
  int64_t last_backoff_millis = 0;
  /// True iff no build is running or pending.
  bool idle = true;
};

class CubeRebuilder {
 public:
  /// One unit of background work, retried on failure. An error Status (or
  /// a thrown exception, converted internally) marks the run failed and
  /// schedules a backoff retry.
  using Job = std::function<Status()>;

  /// Produces the next cube snapshot. An error Status (or a thrown
  /// exception, converted internally) marks the build failed; returning a
  /// null pointer inside an OK result is also treated as a failure.
  using Builder =
      std::function<Result<std::shared_ptr<const CompressedSkylineCube>>()>;

  /// General form: runs `job` on every trigger. The worker thread starts
  /// immediately but sleeps until the first TriggerRebuild().
  explicit CubeRebuilder(Job job, CubeRebuilderOptions options = {});

  /// Cube-builder form: the job runs `builder` and, on success, swaps the
  /// produced cube into `service` (which must outlive the rebuilder).
  CubeRebuilder(SkycubeService* service, Builder builder,
                CubeRebuilderOptions options = {});

  /// Stops retrying and joins the worker. A build already in progress runs
  /// to completion (builders are not cancellable) but its retry loop ends.
  ~CubeRebuilder();

  CubeRebuilder(const CubeRebuilder&) = delete;
  CubeRebuilder& operator=(const CubeRebuilder&) = delete;

  /// Requests a rebuild. Returns immediately; coalesces with a rebuild
  /// already pending or running.
  void TriggerRebuild() EXCLUDES(mu_);

  /// Blocks until no build is running or pending, or until `timeout`.
  /// Returns true iff the rebuilder went idle in time.
  bool WaitUntilIdle(std::chrono::milliseconds timeout) EXCLUDES(mu_);

  CubeRebuilderStats stats() const EXCLUDES(mu_);

 private:
  void WorkerLoop() EXCLUDES(mu_);
  /// One job invocation with exception containment.
  Status RunJob();
  /// The post-failure sleep for `consecutive_failures` failures so far
  /// (advances the jitter RNG state, hence the lock).
  std::chrono::milliseconds NextBackoffLocked(int consecutive_failures)
      REQUIRES(mu_);

  Job job_;
  CubeRebuilderOptions options_;

  mutable Mutex mu_;
  CondVar cv_;       // wakes the worker (trigger / shutdown)
  CondVar idle_cv_;  // wakes WaitUntilIdle waiters
  bool trigger_pending_ GUARDED_BY(mu_) = false;
  bool building_ GUARDED_BY(mu_) = false;
  bool shutting_down_ GUARDED_BY(mu_) = false;
  CubeRebuilderStats stats_ GUARDED_BY(mu_);
  uint64_t jitter_state_ GUARDED_BY(mu_);  // fed to Rng per backoff

  std::thread worker_;
};

}  // namespace skycube

#endif  // SKYCUBE_SERVICE_CUBE_REBUILDER_H_
