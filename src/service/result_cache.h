// Sharded LRU cache of query results, keyed by
// (query_kind, subspace_mask, object_id, snapshot_version).
//
// Sharding bounds lock contention: a key hashes to one shard, each shard is
// an independent mutex + intrusively-linked LRU list + hash map. The
// snapshot version is part of the key, so results computed against an old
// snapshot can never be served after a swap even if an in-flight query
// inserts them *after* the swap's Clear() — they simply never match again
// and age out of the LRU. Clear() exists to release the memory eagerly.
#ifndef SKYCUBE_SERVICE_RESULT_CACHE_H_
#define SKYCUBE_SERVICE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/consistent_hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "service/request.h"

namespace skycube {

/// Cumulative counters of a ResultCache. hits + misses == lookups.
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;    // LRU capacity evictions
  uint64_t invalidations = 0;  // entries dropped by Clear()
  size_t entries = 0;        // current size across shards

  double HitRate() const {
    const uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Construction knobs for a ResultCache.
struct ResultCacheOptions {
  /// Total entries across all shards; 0 disables the cache entirely
  /// (lookups always miss, inserts are dropped).
  size_t capacity = 1 << 16;
  /// Number of independent LRU shards (capped at the capacity).
  size_t num_shards = 8;
};

class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The full cache key. `version` is the snapshot version the result was
  /// computed against. `epoch` is the since_version of a kEpochDiff request
  /// (the answer depends on the *pair* of versions); 0 for every other
  /// kind.
  struct Key {
    QueryKind kind = QueryKind::kSubspaceSkyline;
    DimMask subspace = 0;
    ObjectId object = 0;
    uint64_t version = 0;
    uint64_t epoch = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };

  /// Looks `key` up, refreshing its LRU position. Returns true and fills
  /// `*response` on a hit.
  bool Lookup(const Key& key, QueryResponse* response);

  /// Inserts (or refreshes) `key`, evicting the shard's LRU tail at
  /// capacity. No-op when the cache is disabled (capacity 0) or when the
  /// response is partial-flagged (a degraded answer must never outlive the
  /// outage that produced it).
  void Insert(const Key& key, const QueryResponse& response);

  /// Drops every entry (snapshot swap). Counters persist.
  void Clear();

  size_t capacity() const { return capacity_; }
  bool enabled() const { return capacity_ > 0; }

  ResultCacheStats stats() const;

 private:
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };
  struct Entry {
    Key key;
    QueryResponse response;
  };
  struct Shard {
    Mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map
        GUARDED_BY(mu);
    uint64_t hits GUARDED_BY(mu) = 0;
    uint64_t misses GUARDED_BY(mu) = 0;
    uint64_t insertions GUARDED_BY(mu) = 0;
    uint64_t evictions GUARDED_BY(mu) = 0;
    uint64_t invalidations GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const Key& key);

  size_t capacity_ = 0;
  size_t per_shard_capacity_ = 0;
  /// Key-hash -> shard placement. The same ring abstraction the
  /// scatter–gather tier uses for row ownership (common/consistent_hash.h),
  /// replacing the ad-hoc power-of-two mask: shard counts no longer need
  /// rounding, and placement stays deterministic across processes.
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace skycube

#endif  // SKYCUBE_SERVICE_RESULT_CACHE_H_
