#include "service/ingest.h"

#include "common/macros.h"

namespace skycube {

MaintainerInsertHandler::MaintainerInsertHandler(
    IncrementalCubeMaintainer* maintainer)
    : maintainer_(maintainer) {
  SKYCUBE_CHECK_MSG(maintainer != nullptr,
                    "MaintainerInsertHandler needs a maintainer");
}

Result<InsertHandler::Applied> MaintainerInsertHandler::ApplyInsert(
    const std::vector<double>& values) {
  if (static_cast<int>(values.size()) != maintainer_->data().num_dims()) {
    return Status::InvalidArgument("insert width must equal num_dims");
  }
  Applied applied;
  applied.path = maintainer_->Insert(values);
  applied.num_objects = maintainer_->data().num_objects();
  applied.cube = std::make_shared<const CompressedSkylineCube>(
      maintainer_->MakeCube());
  return applied;
}

int MaintainerInsertHandler::num_dims() const {
  return maintainer_->data().num_dims();
}

}  // namespace skycube
