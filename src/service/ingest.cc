#include "service/ingest.h"

#include "common/macros.h"

namespace skycube {

MaintainerInsertHandler::MaintainerInsertHandler(
    IncrementalCubeMaintainer* maintainer)
    : maintainer_(maintainer) {
  SKYCUBE_CHECK_MSG(maintainer != nullptr,
                    "MaintainerInsertHandler needs a maintainer");
}

Result<InsertHandler::Applied> MaintainerInsertHandler::ApplyInsert(
    const std::vector<double>& values, uint64_t timestamp_ms) {
  if (static_cast<int>(values.size()) != maintainer_->data().num_dims()) {
    return Status::InvalidArgument("insert width must equal num_dims");
  }
  Applied applied;
  applied.path = maintainer_->Insert(values, timestamp_ms);
  applied.num_objects = maintainer_->data().num_objects();
  applied.num_live = maintainer_->num_live();
  applied.cube = std::make_shared<const CompressedSkylineCube>(
      maintainer_->MakeCube());
  return applied;
}

Result<InsertHandler::Applied> MaintainerInsertHandler::ApplyDelete(
    ObjectId id) {
  Applied applied;
  applied.delete_path = maintainer_->Remove(id);
  applied.num_objects = maintainer_->data().num_objects();
  applied.num_live = maintainer_->num_live();
  if (applied.delete_path != DeletePath::kAlreadyDead) {
    applied.cube = std::make_shared<const CompressedSkylineCube>(
        maintainer_->MakeCube());
  }
  return applied;
}

Result<InsertHandler::Applied> MaintainerInsertHandler::ApplyExpire(
    uint64_t cutoff_ms) {
  Applied applied;
  applied.num_expired = maintainer_->ExpireOlderThan(cutoff_ms);
  applied.num_objects = maintainer_->data().num_objects();
  applied.num_live = maintainer_->num_live();
  if (applied.num_expired > 0) {
    applied.cube = std::make_shared<const CompressedSkylineCube>(
        maintainer_->MakeCube());
  }
  return applied;
}

int MaintainerInsertHandler::num_dims() const {
  return maintainer_->data().num_dims();
}

}  // namespace skycube
