// Observability of the serving path: per-kind query counters and a
// lock-free log-scale latency histogram, aggregated into ServiceStats
// snapshots.
#ifndef SKYCUBE_SERVICE_SERVICE_STATS_H_
#define SKYCUBE_SERVICE_SERVICE_STATS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

#include "service/request.h"

namespace skycube {

/// A fixed set of power-of-two latency buckets over nanoseconds. Bucket i
/// counts samples in [2^i, 2^(i+1)) ns; with 40 buckets the histogram spans
/// ~1 ns to ~18 minutes. Recording is one relaxed fetch_add — safe from any
/// number of threads.
///
/// Deliberately lock-free: every member is a std::atomic, so there is no
/// capability to annotate (GUARDED_BY does not apply) and readers tolerate
/// torn cross-bucket snapshots by design — stats are approximate.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 40;

  void Record(uint64_t nanos) {
    int bucket = 64 - std::countl_zero(nanos | 1) - 1;  // floor(log2)
    if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  uint64_t TotalCount() const {
    uint64_t n = 0;
    for (const auto& bucket : buckets_) {
      n += bucket.load(std::memory_order_relaxed);
    }
    return n;
  }

  double MeanNanos() const {
    const uint64_t n = TotalCount();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        total_nanos_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Upper bound (in ns) of the bucket containing quantile `q` ∈ [0, 1] —
  /// e.g. PercentileNanos(0.99) for p99. Resolution is the 2× bucket width.
  uint64_t PercentileNanos(double q) const {
    const uint64_t total = TotalCount();
    if (total == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
    if (rank >= total) rank = total - 1;
    uint64_t seen = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      seen += buckets_[i].load(std::memory_order_relaxed);
      if (seen > rank) return uint64_t{1} << (i + 1);
    }
    return uint64_t{1} << kNumBuckets;
  }

  void Reset() {
    for (auto& bucket : buckets_) {
      bucket.store(0, std::memory_order_relaxed);
    }
    total_nanos_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> total_nanos_{0};
};

/// A point-in-time snapshot of the service counters (plain data, copyable).
struct ServiceStats {
  /// Queries served, by QueryKind (index = static_cast<int>(kind)).
  std::array<uint64_t, kNumQueryKinds> queries_by_kind{};
  uint64_t queries_total = 0;
  uint64_t invalid_requests = 0;
  uint64_t batches = 0;

  // --- Overload and failure accounting -----------------------------------
  /// Requests shed with kResourceExhausted by admission control, by kind.
  std::array<uint64_t, kNumQueryKinds> shed_by_kind{};
  uint64_t shed_total = 0;
  /// Requests answered kDeadlineExceeded (expired on arrival or mid-query).
  uint64_t deadline_exceeded = 0;
  /// Queries whose computation threw; answered kInternal.
  uint64_t internal_errors = 0;
  /// Admissions that had to wait for an in-flight slot (admitted or not).
  uint64_t admission_waits = 0;
  /// Highest concurrent in-flight operation count observed (only tracked
  /// when max_in_flight > 0).
  size_t in_flight_high_water = 0;

  // --- Ingest and drain ---------------------------------------------------
  /// kInsert requests successfully applied (each bumps snapshot_version).
  uint64_t inserts_applied = 0;
  /// kInsert requests rejected by the handler (bad width, WAL failure, ...).
  uint64_t insert_failures = 0;
  /// kDelete requests that tombstoned a live row (already-dead targets
  /// succeed but do not count — nothing changed).
  uint64_t deletes_applied = 0;
  /// kDelete requests rejected by the handler (WAL failure, ...).
  uint64_t delete_failures = 0;
  /// ApplyExpiry passes completed (including passes that expired nothing).
  uint64_t expiry_passes = 0;
  /// Rows tombstoned by expiry passes, cumulative.
  uint64_t expired_rows = 0;
  /// Requests answered kUnavailable because the service is draining.
  uint64_t drained_rejects = 0;
  /// True once BeginDrain() was called.
  bool draining = false;

  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  size_t cache_entries = 0;
  double cache_hit_rate = 0.0;

  uint64_t snapshot_version = 0;
  uint64_t snapshot_swaps = 0;

  /// High-water mark of the batch-execution pool's queue depth.
  size_t queue_depth_high_water = 0;

  double latency_mean_nanos = 0.0;
  uint64_t latency_p50_nanos = 0;
  uint64_t latency_p95_nanos = 0;
  uint64_t latency_p99_nanos = 0;
};

}  // namespace skycube

#endif  // SKYCUBE_SERVICE_SERVICE_STATS_H_
