// WindowExpiry: sliding-window retention as a background pass.
//
// A timer thread computes the expiry cutoff (now - window_ms) every
// `interval` and triggers one expiry pass through a CubeRebuilder worker —
// reusing its coalescing and backoff machinery, so a pass that fails (WAL
// error, fault injection) retries with exponential backoff while the
// service keeps answering from the last good snapshot, and ticks arriving
// while a pass runs fold into a single follow-up pass.
//
// The pass itself is SkycubeService::ApplyExpiry: it serializes with
// inserts and deletes under the service's ingest mutex, logs one delete
// record per expiring row (durable handlers), tombstones them in one
// batch, and publishes the post-expiry snapshot. Rows with timestamp 0
// (bootstrap / legacy-WAL rows) never expire.
#ifndef SKYCUBE_SERVICE_WINDOW_EXPIRY_H_
#define SKYCUBE_SERVICE_WINDOW_EXPIRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "service/cube_rebuilder.h"
#include "service/service.h"

namespace skycube {

/// Construction knobs for a WindowExpiry pass.
struct WindowExpiryOptions {
  /// Retention window: rows whose ingest timestamp is older than
  /// now - window_ms are expired. 0 disables the timer (TickAt still
  /// works, for tests and manual REPL passes).
  uint64_t window_ms = 0;
  /// Timer period between automatic passes.
  std::chrono::milliseconds interval{1000};
  /// Retry behavior of a failed pass.
  CubeRebuilderOptions retry;
};

/// Counters of a WindowExpiry (plain data, copyable).
struct WindowExpiryStats {
  uint64_t ticks = 0;          // timer firings + manual TickAt calls
  uint64_t passes_ok = 0;      // ApplyExpiry calls that returned OK
  uint64_t passes_failed = 0;  // ApplyExpiry calls that returned an error
  uint64_t rows_expired = 0;   // cumulative rows tombstoned by this timer
  uint64_t last_cutoff_ms = 0;
};

class WindowExpiry {
 public:
  /// Injectable wall clock (milliseconds since epoch) so tests control
  /// time. The default reads the system clock.
  using Clock = std::function<uint64_t()>;

  /// `service` must outlive this object and have an insert handler
  /// attached. The timer starts immediately when window_ms > 0.
  WindowExpiry(SkycubeService* service, WindowExpiryOptions options,
               Clock clock = {});

  /// Stops the timer and the worker; a pass in flight finishes.
  ~WindowExpiry();

  WindowExpiry(const WindowExpiry&) = delete;
  WindowExpiry& operator=(const WindowExpiry&) = delete;

  /// Schedules one pass with an explicit cutoff (bypasses the clock and
  /// window). Returns immediately; the pass runs on the worker.
  void TickAt(uint64_t cutoff_ms);

  /// Blocks until no pass is running or pending, or until `timeout`.
  bool WaitUntilIdle(std::chrono::milliseconds timeout);

  WindowExpiryStats stats() const;

 private:
  void TimerLoop();
  /// The CubeRebuilder job: one ApplyExpiry pass at the latest cutoff.
  Status RunPass();

  SkycubeService* service_;
  WindowExpiryOptions options_;
  Clock clock_;

  /// Latest requested cutoff; the coalesced pass always reads the freshest
  /// value, so folded ticks lose nothing.
  std::atomic<uint64_t> cutoff_ms_{0};

  mutable Mutex mu_;
  CondVar cv_;  // wakes the timer (shutdown)
  bool shutting_down_ GUARDED_BY(mu_) = false;
  WindowExpiryStats stats_ GUARDED_BY(mu_);

  /// Worker that runs the passes; constructed before timer_ so a tick can
  /// never observe a null runner.
  std::unique_ptr<CubeRebuilder> runner_;
  std::thread timer_;
};

}  // namespace skycube

#endif  // SKYCUBE_SERVICE_WINDOW_EXPIRY_H_
