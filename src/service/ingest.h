// The write-path seam of SkycubeService: an InsertHandler applies one
// mutation (insert, delete, or a window-expiry pass) to whatever owns the
// mutable cube state and hands back the post-mutation snapshot for the
// service to swap in.
//
// Two implementations exist:
//  - MaintainerInsertHandler (here): wraps a bare IncrementalCubeMaintainer
//    — volatile ingest, exactly the pre-durability behaviour of
//    skycube_serve --data/--synthetic;
//  - DurableIngest (storage/durable_ingest.h): WAL append + maintainer +
//    periodic checkpoints — the mutation is acknowledged only after the WAL
//    append succeeded.
//
// The service serializes ApplyInsert/ApplyDelete/ApplyExpire calls under
// its own ingest mutex, but implementations must still be safe against
// concurrent *readers* of the structures they expose (the maintainer itself
// is only touched from the Apply* methods, so the usual pattern —
// snapshot-copy via MakeCube — holds).
#ifndef SKYCUBE_SERVICE_INGEST_H_
#define SKYCUBE_SERVICE_INGEST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/cube.h"
#include "core/maintenance.h"

namespace skycube {

class InsertHandler {
 public:
  /// Outcome of one applied mutation.
  struct Applied {
    /// Immutable snapshot reflecting the mutation, ready for Reload. Null
    /// only when the mutation changed nothing (an already-dead delete, an
    /// expiry pass that found no rows) — the caller may skip the Reload.
    std::shared_ptr<const CompressedSkylineCube> cube;
    InsertPath path = InsertPath::kNoOp;        // inserts
    DeletePath delete_path = DeletePath::kAlreadyDead;  // deletes
    /// WAL sequence number of the op; 0 for non-durable handlers and for
    /// no-op mutations that were never logged.
    uint64_t lsn = 0;
    size_t num_objects = 0;
    size_t num_live = 0;
    /// Rows tombstoned by this ApplyExpire call.
    size_t num_expired = 0;
  };

  virtual ~InsertHandler() = default;

  /// Applies one row (values.size() must equal num_dims()). An error means
  /// the insert was NOT applied (and for durable handlers, not logged) —
  /// the caller reports it to the client instead of acknowledging.
  /// `timestamp_ms` is the row's ingest time for window expiry (0 = never
  /// expires).
  virtual Result<Applied> ApplyInsert(const std::vector<double>& values,
                                      uint64_t timestamp_ms = 0) = 0;

  /// Tombstones one row. Deleting an out-of-range or already-dead id is a
  /// successful no-op (delete_path = kAlreadyDead, null cube), not an
  /// error — deletes are idempotent so retries and replays are safe.
  virtual Result<Applied> ApplyDelete(ObjectId id) = 0;

  /// Tombstones every live row with 0 < timestamp < cutoff_ms in one
  /// batch (the sliding-window pass). num_expired reports how many went;
  /// a pass that expires nothing returns a null cube.
  virtual Result<Applied> ApplyExpire(uint64_t cutoff_ms) = 0;

  virtual int num_dims() const = 0;
};

/// Volatile adapter over an IncrementalCubeMaintainer the caller owns (and
/// must keep alive). No durability: rows die with the process.
class MaintainerInsertHandler : public InsertHandler {
 public:
  explicit MaintainerInsertHandler(IncrementalCubeMaintainer* maintainer);

  Result<Applied> ApplyInsert(const std::vector<double>& values,
                              uint64_t timestamp_ms = 0) override;
  Result<Applied> ApplyDelete(ObjectId id) override;
  Result<Applied> ApplyExpire(uint64_t cutoff_ms) override;
  int num_dims() const override;

 private:
  IncrementalCubeMaintainer* maintainer_;
};

}  // namespace skycube

#endif  // SKYCUBE_SERVICE_INGEST_H_
