// The write-path seam of SkycubeService: an InsertHandler applies one
// inserted row to whatever owns the mutable cube state and hands back the
// post-insert snapshot for the service to swap in.
//
// Two implementations exist:
//  - MaintainerInsertHandler (here): wraps a bare IncrementalCubeMaintainer
//    — volatile ingest, exactly the pre-durability behaviour of
//    skycube_serve --data/--synthetic;
//  - DurableIngest (storage/durable_ingest.h): WAL append + maintainer +
//    periodic checkpoints — the insert is acknowledged only after the WAL
//    append succeeded.
//
// The service serializes ApplyInsert calls under its own ingest mutex, but
// implementations must still be safe against concurrent *readers* of the
// structures they expose (the maintainer itself is only touched from
// ApplyInsert, so the usual pattern — snapshot-copy via MakeCube — holds).
#ifndef SKYCUBE_SERVICE_INGEST_H_
#define SKYCUBE_SERVICE_INGEST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/cube.h"
#include "core/maintenance.h"

namespace skycube {

class InsertHandler {
 public:
  /// Outcome of one applied insert.
  struct Applied {
    /// Immutable snapshot including the new row, ready for Reload.
    std::shared_ptr<const CompressedSkylineCube> cube;
    InsertPath path = InsertPath::kNoOp;
    /// WAL sequence number of the insert; 0 for non-durable handlers.
    uint64_t lsn = 0;
    size_t num_objects = 0;
  };

  virtual ~InsertHandler() = default;

  /// Applies one row (values.size() must equal num_dims()). An error means
  /// the insert was NOT applied (and for durable handlers, not logged) —
  /// the caller reports it to the client instead of acknowledging.
  virtual Result<Applied> ApplyInsert(const std::vector<double>& values) = 0;

  virtual int num_dims() const = 0;
};

/// Volatile adapter over an IncrementalCubeMaintainer the caller owns (and
/// must keep alive). No durability: rows die with the process.
class MaintainerInsertHandler : public InsertHandler {
 public:
  explicit MaintainerInsertHandler(IncrementalCubeMaintainer* maintainer);

  Result<Applied> ApplyInsert(const std::vector<double>& values) override;
  int num_dims() const override;

 private:
  IncrementalCubeMaintainer* maintainer_;
};

}  // namespace skycube

#endif  // SKYCUBE_SERVICE_INGEST_H_
