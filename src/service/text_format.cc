#include "service/text_format.h"

#include <sstream>

#include "common/status.h"
#include "service/service_stats.h"

namespace skycube {

std::string FormatResponseLine(const QueryResponse& response) {
  if (!response.ok) {
    return std::string("err [") + StatusCodeName(response.code) + "] " +
           response.error;
  }
  if (response.kind == QueryKind::kInsert ||
      response.kind == QueryKind::kDelete) {
    std::ostringstream out;
    out << "ok path=" << response.insert_path
        << " version=" << response.snapshot_version
        << (response.kind == QueryKind::kDelete ? " live=" : " objects=")
        << response.count;
    if (response.lsn > 0) out << " lsn=" << response.lsn;
    return out.str();
  }
  if (response.kind == QueryKind::kEpochDiff) {
    std::ostringstream out;
    out << "ok entered=" << (response.ids ? response.ids->size() : 0)
        << " left=" << (response.left_ids ? response.left_ids->size() : 0)
        << " v=" << response.snapshot_version
        << " hit=" << (response.cache_hit ? 1 : 0);
    if (response.partial) out << " partial=1";
    if (response.ids) {
      out << " entered_ids=";
      for (size_t i = 0; i < response.ids->size(); ++i) {
        out << (i == 0 ? "" : " ") << (*response.ids)[i];
      }
    }
    if (response.left_ids) {
      out << " left_ids=";
      for (size_t i = 0; i < response.left_ids->size(); ++i) {
        out << (i == 0 ? "" : " ") << (*response.left_ids)[i];
      }
    }
    return out.str();
  }
  std::ostringstream out;
  out << "ok ";
  switch (response.kind) {
    case QueryKind::kSubspaceSkyline:
      out << "n=" << response.count;
      break;
    case QueryKind::kSkylineCardinality:
    case QueryKind::kMembershipCount:
    case QueryKind::kSkycubeSize:
      out << "count=" << response.count;
      break;
    case QueryKind::kMembership:
      out << "member=" << (response.member ? "yes" : "no");
      break;
    case QueryKind::kInsert:
    case QueryKind::kDelete:
    case QueryKind::kEpochDiff:
      break;  // handled above
  }
  out << " v=" << response.snapshot_version
      << " hit=" << (response.cache_hit ? 1 : 0);
  // Emitted only when set so pre-sharding scripts scraping the field
  // layout keep matching; a partial answer is a router degradation signal
  // (docs/SHARDING.md).
  if (response.partial) out << " partial=1";
  if (response.ids) {
    out << " ids=";
    for (size_t i = 0; i < response.ids->size(); ++i) {
      out << (i == 0 ? "" : " ") << (*response.ids)[i];
    }
  }
  return out.str();
}

std::string FormatStatsLine(const SkycubeService& service) {
  const ServiceStats stats = service.stats();
  std::ostringstream out;
  out << "ok queries=" << stats.queries_total;
  for (int kind = 0; kind < kNumQueryKinds; ++kind) {
    out << " " << QueryKindName(static_cast<QueryKind>(kind)) << "="
        << stats.queries_by_kind[kind];
  }
  out << " invalid=" << stats.invalid_requests
      << " batches=" << stats.batches << " cache_hits=" << stats.cache_hits
      << " cache_misses=" << stats.cache_misses
      << " cache_evictions=" << stats.cache_evictions
      << " cache_entries=" << stats.cache_entries << " version="
      << stats.snapshot_version << " swaps=" << stats.snapshot_swaps
      << " queue_hwm=" << stats.queue_depth_high_water << " p50_us="
      << static_cast<double>(stats.latency_p50_nanos) / 1e3 << " p99_us="
      << static_cast<double>(stats.latency_p99_nanos) / 1e3
      // Robustness counters ride at the end so older scripts matching the
      // field order above keep working.
      << " shed=" << stats.shed_total
      << " deadline_exceeded=" << stats.deadline_exceeded
      << " internal_errors=" << stats.internal_errors
      << " admission_waits=" << stats.admission_waits
      << " in_flight_hwm=" << stats.in_flight_high_water
      << " inserts=" << stats.inserts_applied
      << " insert_failures=" << stats.insert_failures
      << " unavailable=" << stats.drained_rejects
      << " draining=" << (stats.draining ? 1 : 0)
      // Streaming counters ride at the very end (same append-only
      // field-order contract as above).
      << " deletes=" << stats.deletes_applied
      << " delete_failures=" << stats.delete_failures
      << " expiry_passes=" << stats.expiry_passes
      << " expired_rows=" << stats.expired_rows;
  return out.str();
}

std::string FormatHealthLine(const SkycubeService& service) {
  std::ostringstream out;
  out << "ok status=" << (service.draining() ? "draining" : "ready")
      << " version=" << service.snapshot_version();
  return out.str();
}

}  // namespace skycube
