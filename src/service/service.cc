#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <functional>
#include <iterator>
#include <new>
#include <utility>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "service/text_format.h"

namespace skycube {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSubspaceSkyline:
      return "skyline";
    case QueryKind::kSkylineCardinality:
      return "cardinality";
    case QueryKind::kMembership:
      return "membership";
    case QueryKind::kMembershipCount:
      return "membership_count";
    case QueryKind::kSkycubeSize:
      return "skycube_size";
    case QueryKind::kInsert:
      return "insert";
    case QueryKind::kDelete:
      return "delete";
    case QueryKind::kEpochDiff:
      return "epoch_diff";
  }
  return "unknown";
}

namespace {

QueryResponse ErrorResponse(const QueryRequest& request, uint64_t version,
                            StatusCode code, std::string why) {
  QueryResponse response;
  response.kind = request.kind;
  response.ok = false;
  response.code = code;
  response.error = std::move(why);
  response.snapshot_version = version;
  return response;
}

}  // namespace

SkycubeService::SkycubeService(
    std::shared_ptr<const CompressedSkylineCube> cube,
    SkycubeServiceOptions options)
    : options_(options), cache_(options.cache) {
  SKYCUBE_CHECK_MSG(cube != nullptr, "SkycubeService needs a cube");
  auto snap = std::make_shared<Snapshot>();
  snap->cube = std::move(cube);
  snap->version = 1;
  snapshot_.store(snap, std::memory_order_release);
  RetainSnapshot(std::move(snap));
}

SkycubeService::~SkycubeService() = default;

bool SkycubeService::AdmitSlot() {
  if (options_.max_in_flight == 0) return true;
  MutexLock lock(&admission_mu_);
  if (in_flight_ >= options_.max_in_flight) {
    admission_waits_.fetch_add(1, std::memory_order_relaxed);
    if (options_.queue_wait_timeout.count() <= 0) return false;
    const auto give_up =
        std::chrono::steady_clock::now() + options_.queue_wait_timeout;
    while (in_flight_ >= options_.max_in_flight) {
      if (!admission_cv_.WaitUntil(&admission_mu_, give_up) &&
          in_flight_ >= options_.max_in_flight) {
        return false;  // timed out still over the limit: shed
      }
    }
  }
  ++in_flight_;
  in_flight_high_water_ = std::max(in_flight_high_water_, in_flight_);
  return true;
}

void SkycubeService::ReleaseSlot() {
  if (options_.max_in_flight == 0) return;
  {
    MutexLock lock(&admission_mu_);
    --in_flight_;
  }
  admission_cv_.NotifyOne();
}

QueryResponse SkycubeService::ShedResponse(const QueryRequest& request,
                                           uint64_t version) {
  shed_total_.fetch_add(1, std::memory_order_relaxed);
  shed_by_kind_[static_cast<int>(request.kind)].fetch_add(
      1, std::memory_order_relaxed);
  return ErrorResponse(request, version, StatusCode::kResourceExhausted,
                       "overloaded: request shed by admission control");
}

QueryResponse SkycubeService::DrainingResponse(const QueryRequest& request,
                                               uint64_t version) {
  drained_rejects_.fetch_add(1, std::memory_order_relaxed);
  return ErrorResponse(request, version, StatusCode::kUnavailable,
                       "service is draining for shutdown");
}

QueryResponse SkycubeService::Execute(const QueryRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  if (draining()) {
    return DrainingResponse(request, LoadSnapshot()->version);
  }
  if (!AdmitSlot()) {
    return ShedResponse(request, LoadSnapshot()->version);
  }
  // Local class: inherits this member function's access to ReleaseSlot().
  struct SlotGuard {
    SkycubeService* service;
    bool held;
    ~SlotGuard() {
      if (held) service->ReleaseSlot();
    }
  } slot{this, options_.max_in_flight > 0};
  const std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  QueryResponse response = ExecuteOn(request, *snap);
  latency_.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return response;
}

QueryResponse SkycubeService::ExecuteOn(const QueryRequest& request,
                                        const Snapshot& snap) {
  queries_by_kind_[static_cast<int>(request.kind)].fetch_add(
      1, std::memory_order_relaxed);
  // Reject malformed requests before the cache probe: they are never
  // cached, so probing for them would only pollute the miss counter.
  if (const char* error = ValidationError(request, *snap.cube)) {
    invalid_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, snap.version, StatusCode::kInvalidArgument,
                         error);
  }
  // Writes bypass the cache entirely and never run against `snap`: the
  // mutation produces its own (newer) snapshot and reports *that* version.
  if (request.kind == QueryKind::kInsert) {
    return ExecuteInsert(request);
  }
  if (request.kind == QueryKind::kDelete) {
    return ExecuteDelete(request);
  }
  // A request that arrives past its deadline never touches cache or cube.
  if (request.deadline.expired()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, snap.version, StatusCode::kDeadlineExceeded,
                         "deadline expired before execution");
  }
  // kEpochDiff answers depend on the *pair* of versions, so since_version
  // rides in the key's epoch field (0 for every other kind).
  const uint64_t epoch = request.kind == QueryKind::kEpochDiff
                             ? request.since_version
                             : 0;
  const ResultCache::Key key{request.kind, request.subspace, request.object,
                             snap.version, epoch};
  QueryResponse response;
  if (cache_.enabled() && cache_.Lookup(key, &response)) {
    response.cache_hit = true;
    return response;
  }
  // The compute path may throw (e.g. allocation failure); convert to a
  // kInternal response so one poisoned query cannot take down the process
  // or a whole batch.
  try {
    response = Compute(request, snap);
  } catch (const std::exception& e) {
    internal_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, snap.version, StatusCode::kInternal,
                         std::string("query computation failed: ") + e.what());
  } catch (...) {
    internal_errors_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, snap.version, StatusCode::kInternal,
                         "query computation failed: unknown exception");
  }
  // The traversals return *partial* values once the deadline fires, so an
  // expired deadline here means the answer cannot be trusted (and the
  // client's budget is gone either way). Never cache it.
  if (request.deadline.expired()) {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, snap.version, StatusCode::kDeadlineExceeded,
                         "deadline expired during execution");
  }
  // Compute-level error responses (an epoch-diff since_version that fell
  // out of the history ring) and partial answers are never cached.
  if (response.ok && !response.partial) cache_.Insert(key, response);
  return response;
}

const char* SkycubeService::ValidationError(
    const QueryRequest& request, const CompressedSkylineCube& cube) {
  const bool needs_subspace = request.kind == QueryKind::kSubspaceSkyline ||
                              request.kind == QueryKind::kSkylineCardinality ||
                              request.kind == QueryKind::kMembership ||
                              request.kind == QueryKind::kEpochDiff;
  if (needs_subspace) {
    if (request.subspace == kEmptyMask) return "empty subspace";
    if (!IsSubsetOf(request.subspace, FullMask(cube.num_dims()))) {
      return "subspace has dimensions beyond the cube";
    }
  }
  const bool needs_object = request.kind == QueryKind::kMembership ||
                            request.kind == QueryKind::kMembershipCount;
  if (needs_object && request.object >= cube.num_objects()) {
    return "object id out of range";
  }
  if (request.kind == QueryKind::kInsert &&
      static_cast<int>(request.values.size()) != cube.num_dims()) {
    return "insert row width must equal num_dims";
  }
  // A kDelete object beyond the row population is *not* invalid: deletes
  // are idempotent, and an unknown id answers the "dead" path.
  if (request.kind == QueryKind::kEpochDiff && request.since_version == 0) {
    return "epoch diff needs a since_version";
  }
  return nullptr;
}

QueryResponse SkycubeService::Compute(const QueryRequest& request,
                                      const Snapshot& snap) const {
  // Test-only failure points: a forced slowdown (overload and deadline
  // tests) and a forced allocation failure (batch exception-safety test).
  (void)SKYCUBE_FAULT_POINT("service.compute_delay");
  if (SKYCUBE_FAULT_POINT("service.compute_throw")) throw std::bad_alloc();

  const CompressedSkylineCube& cube = *snap.cube;
  const CancelToken cancel(request.deadline);
  QueryResponse response;
  response.kind = request.kind;
  response.snapshot_version = snap.version;

  switch (request.kind) {
    case QueryKind::kSubspaceSkyline:
      response.ids = std::make_shared<const std::vector<ObjectId>>(
          cube.SubspaceSkyline(request.subspace, &cancel));
      response.count = response.ids->size();
      break;
    case QueryKind::kSkylineCardinality:
      response.count = cube.SkylineCardinality(request.subspace, &cancel);
      break;
    case QueryKind::kMembership:
      response.member =
          cube.IsInSubspaceSkyline(request.object, request.subspace);
      break;
    case QueryKind::kMembershipCount:
      response.count = cube.CountSubspacesWhereSkyline(request.object,
                                                       &cancel);
      break;
    case QueryKind::kSkycubeSize:
      response.count = cube.TotalSubspaceSkylineObjects(&cancel);
      break;
    case QueryKind::kEpochDiff:
      return ComputeEpochDiff(request, snap);
    case QueryKind::kInsert:
    case QueryKind::kDelete:
      // Unreachable: ExecuteOn routes mutations to ExecuteInsert /
      // ExecuteDelete before the cache probe and never calls Compute for
      // them.
      SKYCUBE_CHECK_MSG(false, "mutation reached the read compute path");
      break;
  }
  return response;
}

QueryResponse SkycubeService::ComputeEpochDiff(const QueryRequest& request,
                                               const Snapshot& snap) const {
  std::shared_ptr<const Snapshot> since;
  {
    MutexLock lock(&history_mu_);
    for (const auto& old : history_) {
      if (old->version == request.since_version) {
        since = old;
        break;
      }
    }
  }
  if (since == nullptr) {
    return ErrorResponse(
        request, snap.version, StatusCode::kNotFound,
        "since_version is not a retained snapshot version (too old, future, "
        "or epoch history is disabled)");
  }
  const CancelToken cancel(request.deadline);
  const std::vector<ObjectId> before =
      since->cube->SubspaceSkyline(request.subspace, &cancel);
  const std::vector<ObjectId> now =
      snap.cube->SubspaceSkyline(request.subspace, &cancel);
  auto entered = std::make_shared<std::vector<ObjectId>>();
  auto left = std::make_shared<std::vector<ObjectId>>();
  // Both skylines come back in ascending id order, so the diff is one
  // linear merge each way.
  std::set_difference(now.begin(), now.end(), before.begin(), before.end(),
                      std::back_inserter(*entered));
  std::set_difference(before.begin(), before.end(), now.begin(), now.end(),
                      std::back_inserter(*left));
  QueryResponse response;
  response.kind = request.kind;
  response.snapshot_version = snap.version;
  response.count = entered->size() + left->size();
  response.ids = std::move(entered);
  response.left_ids = std::move(left);
  return response;
}

void SkycubeService::RetainSnapshot(std::shared_ptr<const Snapshot> snap) {
  if (options_.epoch_history == 0) return;
  MutexLock lock(&history_mu_);
  history_.push_back(std::move(snap));
  while (history_.size() > options_.epoch_history) history_.pop_front();
}

void SkycubeService::AttachInsertHandler(InsertHandler* handler) {
  insert_handler_.store(handler, std::memory_order_release);
}

void SkycubeService::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

QueryResponse SkycubeService::ExecuteInsert(const QueryRequest& request) {
  InsertHandler* handler = insert_handler_.load(std::memory_order_acquire);
  if (handler == nullptr) {
    invalid_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, LoadSnapshot()->version,
                         StatusCode::kInvalidArgument,
                         "service is read-only: no insert handler attached");
  }
  // One writer at a time: the handler mutates shared state (maintainer,
  // WAL) and the apply→Reload pair must publish snapshots in apply order so
  // snapshot_version stays monotone with the WAL.
  MutexLock lock(&ingest_mu_);
  // Stamp the ingest time so the sliding-window expiry pass can age the
  // row out later (0 = no clock configured = the row never expires).
  const uint64_t now_ms = options_.ingest_clock ? options_.ingest_clock() : 0;
  Result<InsertHandler::Applied> applied = handler->ApplyInsert(
      request.values, now_ms);
  if (!applied.ok()) {
    insert_failures_.fetch_add(1, std::memory_order_relaxed);
    const Status& status = applied.status();
    return ErrorResponse(request, LoadSnapshot()->version, status.code(),
                         status.message());
  }
  // Swapping the snapshot bumps the version, which invalidates every cached
  // read answer (cache keys carry the version) — a reader can never see a
  // pre-insert answer labeled with a post-insert version.
  Reload(applied.value().cube);
  inserts_applied_.fetch_add(1, std::memory_order_relaxed);

  QueryResponse response;
  response.kind = QueryKind::kInsert;
  response.insert_path = InsertPathName(applied.value().path);
  response.lsn = applied.value().lsn;
  response.count = applied.value().num_objects;
  response.snapshot_version = snapshot_version();
  return response;
}

QueryResponse SkycubeService::ExecuteDelete(const QueryRequest& request) {
  InsertHandler* handler = insert_handler_.load(std::memory_order_acquire);
  if (handler == nullptr) {
    invalid_requests_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponse(request, LoadSnapshot()->version,
                         StatusCode::kInvalidArgument,
                         "service is read-only: no insert handler attached");
  }
  MutexLock lock(&ingest_mu_);
  Result<InsertHandler::Applied> applied =
      handler->ApplyDelete(request.object);
  if (!applied.ok()) {
    delete_failures_.fetch_add(1, std::memory_order_relaxed);
    const Status& status = applied.status();
    return ErrorResponse(request, LoadSnapshot()->version, status.code(),
                         status.message());
  }
  // An already-dead target leaves the cube untouched (no swap, so cached
  // answers stay valid); a live one publishes the post-delete snapshot,
  // which invalidates every cached read answer by version.
  if (applied.value().cube != nullptr) {
    Reload(applied.value().cube);
    deletes_applied_.fetch_add(1, std::memory_order_relaxed);
  }

  QueryResponse response;
  response.kind = QueryKind::kDelete;
  response.insert_path = DeletePathName(applied.value().delete_path);
  response.lsn = applied.value().lsn;
  response.count = applied.value().num_live;
  response.snapshot_version = snapshot_version();
  return response;
}

Result<uint64_t> SkycubeService::ApplyExpiry(uint64_t cutoff_ms) {
  InsertHandler* handler = insert_handler_.load(std::memory_order_acquire);
  if (handler == nullptr) {
    return Status::InvalidArgument(
        "service is read-only: no insert handler attached");
  }
  MutexLock lock(&ingest_mu_);
  Result<InsertHandler::Applied> applied = handler->ApplyExpire(cutoff_ms);
  if (!applied.ok()) return applied.status();
  // A pass that expired nothing returns no cube — keep the snapshot (and
  // the result cache) untouched.
  if (applied.value().cube != nullptr) {
    Reload(applied.value().cube);
  }
  expiry_passes_.fetch_add(1, std::memory_order_relaxed);
  expired_rows_.fetch_add(applied.value().num_expired,
                          std::memory_order_relaxed);
  return static_cast<uint64_t>(applied.value().num_expired);
}

std::vector<QueryResponse> SkycubeService::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::vector<QueryResponse> responses(requests.size());
  if (requests.empty()) return responses;
  const auto start = std::chrono::steady_clock::now();
  if (draining()) {
    const uint64_t version = LoadSnapshot()->version;
    for (size_t i = 0; i < requests.size(); ++i) {
      responses[i] = DrainingResponse(requests[i], version);
    }
    return responses;
  }
  if (!AdmitSlot()) {
    const uint64_t version = LoadSnapshot()->version;
    for (size_t i = 0; i < requests.size(); ++i) {
      responses[i] = ShedResponse(requests[i], version);
    }
    return responses;
  }
  struct SlotGuard {
    SkycubeService* service;
    bool held;
    ~SlotGuard() {
      if (held) service->ReleaseSlot();
    }
  } slot{this, options_.max_in_flight > 0};
  // One snapshot load for the whole batch: every response is consistent
  // with the same cube version.
  const std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  ThreadPool& pool = BatchPool();
  std::atomic<size_t> next{0};
  Mutex mu;
  CondVar all_exited;
  int exited = 0;  // guarded by mu (locals cannot carry GUARDED_BY)
  auto runner = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= requests.size()) break;
      // ExecuteOn fails items independently (validation, deadline,
      // exception → error response), so one bad item never voids the batch.
      responses[i] = ExecuteOn(requests[i], *snap);
    }
    // Notify under the lock: the caller's stack frame (and this condvar)
    // dies as soon as it can observe the predicate, which requires mu.
    MutexLock lock(&mu);
    ++exited;
    all_exited.NotifyOne();
  };
  int submitted = 0;
  const int helpers = std::min(static_cast<int>(requests.size()) - 1,
                               pool.num_threads());
  for (int i = 0; i < helpers; ++i) {
    std::function<void()> task = runner;
    if (!pool.TrySubmit(task)) break;
    ++submitted;
  }
  runner();  // the caller works through the batch too
  {
    MutexLock lock(&mu);
    while (exited != submitted + 1) all_exited.Wait(&mu);
  }
  latency_.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return responses;
}

void SkycubeService::Reload(
    std::shared_ptr<const CompressedSkylineCube> cube) {
  SKYCUBE_CHECK_MSG(cube != nullptr, "Reload needs a cube");
  auto next = std::make_shared<Snapshot>();
  next->cube = std::move(cube);
  std::shared_ptr<const Snapshot> current =
      snapshot_.load(std::memory_order_acquire);
  do {
    next->version = current->version + 1;
  } while (!snapshot_.compare_exchange_weak(current, next,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire));
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);
  // Version-keyed entries of the old snapshot can never be served again;
  // Clear() just releases their memory promptly.
  cache_.Clear();
  RetainSnapshot(std::move(next));
}

std::shared_ptr<const CompressedSkylineCube> SkycubeService::snapshot()
    const {
  return LoadSnapshot()->cube;
}

uint64_t SkycubeService::snapshot_version() const {
  return LoadSnapshot()->version;
}

int SkycubeService::num_dims() const {
  return LoadSnapshot()->cube->num_dims();
}

std::string SkycubeService::HealthLine() const {
  return FormatHealthLine(*this);
}

std::string SkycubeService::StatsLine() const {
  return FormatStatsLine(*this);
}

ThreadPool& SkycubeService::BatchPool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(ThreadPoolOptions{
        options_.batch_threads, options_.queue_capacity});
    pool_ptr_.store(pool_.get(), std::memory_order_release);
  });
  return *pool_;
}

ServiceStats SkycubeService::stats() const {
  ServiceStats stats;
  for (int kind = 0; kind < kNumQueryKinds; ++kind) {
    stats.queries_by_kind[kind] =
        queries_by_kind_[kind].load(std::memory_order_relaxed);
    stats.queries_total += stats.queries_by_kind[kind];
    stats.shed_by_kind[kind] =
        shed_by_kind_[kind].load(std::memory_order_relaxed);
    stats.shed_total += stats.shed_by_kind[kind];
  }
  stats.invalid_requests = invalid_requests_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.deadline_exceeded =
      deadline_exceeded_.load(std::memory_order_relaxed);
  stats.internal_errors = internal_errors_.load(std::memory_order_relaxed);
  stats.admission_waits = admission_waits_.load(std::memory_order_relaxed);
  stats.inserts_applied = inserts_applied_.load(std::memory_order_relaxed);
  stats.insert_failures = insert_failures_.load(std::memory_order_relaxed);
  stats.deletes_applied = deletes_applied_.load(std::memory_order_relaxed);
  stats.delete_failures = delete_failures_.load(std::memory_order_relaxed);
  stats.expiry_passes = expiry_passes_.load(std::memory_order_relaxed);
  stats.expired_rows = expired_rows_.load(std::memory_order_relaxed);
  stats.drained_rejects = drained_rejects_.load(std::memory_order_relaxed);
  stats.draining = draining();
  if (options_.max_in_flight > 0) {
    MutexLock lock(&admission_mu_);
    stats.in_flight_high_water = in_flight_high_water_;
  }

  const ResultCacheStats cache = cache_.stats();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_evictions = cache.evictions;
  stats.cache_entries = cache.entries;
  stats.cache_hit_rate = cache.HitRate();

  const std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  stats.snapshot_version = snap->version;
  stats.snapshot_swaps = snapshot_swaps_.load(std::memory_order_relaxed);
  if (const ThreadPool* pool = pool_ptr_.load(std::memory_order_acquire)) {
    stats.queue_depth_high_water = pool->stats().queue_depth_high_water;
  }

  stats.latency_mean_nanos = latency_.MeanNanos();
  stats.latency_p50_nanos = latency_.PercentileNanos(0.50);
  stats.latency_p95_nanos = latency_.PercentileNanos(0.95);
  stats.latency_p99_nanos = latency_.PercentileNanos(0.99);
  return stats;
}

}  // namespace skycube
