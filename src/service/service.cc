#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <utility>

#include "common/macros.h"
#include "common/parallel.h"

namespace skycube {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kSubspaceSkyline:
      return "skyline";
    case QueryKind::kSkylineCardinality:
      return "cardinality";
    case QueryKind::kMembership:
      return "membership";
    case QueryKind::kMembershipCount:
      return "membership_count";
    case QueryKind::kSkycubeSize:
      return "skycube_size";
  }
  return "unknown";
}

namespace {

QueryResponse InvalidRequest(const QueryRequest& request, uint64_t version,
                             const char* why) {
  QueryResponse response;
  response.kind = request.kind;
  response.ok = false;
  response.error = why;
  response.snapshot_version = version;
  return response;
}

}  // namespace

SkycubeService::SkycubeService(
    std::shared_ptr<const CompressedSkylineCube> cube,
    SkycubeServiceOptions options)
    : options_(options), cache_(options.cache) {
  SKYCUBE_CHECK_MSG(cube != nullptr, "SkycubeService needs a cube");
  auto snap = std::make_shared<Snapshot>();
  snap->cube = std::move(cube);
  snap->version = 1;
  snapshot_.store(std::move(snap), std::memory_order_release);
}

SkycubeService::~SkycubeService() = default;

QueryResponse SkycubeService::Execute(const QueryRequest& request) {
  const auto start = std::chrono::steady_clock::now();
  const std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  QueryResponse response = ExecuteOn(request, *snap);
  latency_.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return response;
}

QueryResponse SkycubeService::ExecuteOn(const QueryRequest& request,
                                        const Snapshot& snap) {
  queries_by_kind_[static_cast<int>(request.kind)].fetch_add(
      1, std::memory_order_relaxed);
  // Reject malformed requests before the cache probe: they are never
  // cached, so probing for them would only pollute the miss counter.
  if (const char* error = ValidationError(request, *snap.cube)) {
    invalid_requests_.fetch_add(1, std::memory_order_relaxed);
    return InvalidRequest(request, snap.version, error);
  }
  const ResultCache::Key key{request.kind, request.subspace, request.object,
                             snap.version};
  QueryResponse response;
  if (cache_.enabled() && cache_.Lookup(key, &response)) {
    response.cache_hit = true;
    return response;
  }
  response = Compute(request, snap);
  cache_.Insert(key, response);
  return response;
}

const char* SkycubeService::ValidationError(
    const QueryRequest& request, const CompressedSkylineCube& cube) {
  const bool needs_subspace = request.kind == QueryKind::kSubspaceSkyline ||
                              request.kind == QueryKind::kSkylineCardinality ||
                              request.kind == QueryKind::kMembership;
  if (needs_subspace) {
    if (request.subspace == kEmptyMask) return "empty subspace";
    if (!IsSubsetOf(request.subspace, FullMask(cube.num_dims()))) {
      return "subspace has dimensions beyond the cube";
    }
  }
  const bool needs_object = request.kind == QueryKind::kMembership ||
                            request.kind == QueryKind::kMembershipCount;
  if (needs_object && request.object >= cube.num_objects()) {
    return "object id out of range";
  }
  return nullptr;
}

QueryResponse SkycubeService::Compute(const QueryRequest& request,
                                      const Snapshot& snap) const {
  const CompressedSkylineCube& cube = *snap.cube;
  QueryResponse response;
  response.kind = request.kind;
  response.snapshot_version = snap.version;

  switch (request.kind) {
    case QueryKind::kSubspaceSkyline:
      response.ids = std::make_shared<const std::vector<ObjectId>>(
          cube.SubspaceSkyline(request.subspace));
      response.count = response.ids->size();
      break;
    case QueryKind::kSkylineCardinality:
      response.count = cube.SkylineCardinality(request.subspace);
      break;
    case QueryKind::kMembership:
      response.member =
          cube.IsInSubspaceSkyline(request.object, request.subspace);
      break;
    case QueryKind::kMembershipCount:
      response.count = cube.CountSubspacesWhereSkyline(request.object);
      break;
    case QueryKind::kSkycubeSize:
      response.count = cube.TotalSubspaceSkylineObjects();
      break;
  }
  return response;
}

std::vector<QueryResponse> SkycubeService::ExecuteBatch(
    const std::vector<QueryRequest>& requests) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::vector<QueryResponse> responses(requests.size());
  if (requests.empty()) return responses;
  const auto start = std::chrono::steady_clock::now();
  // One snapshot load for the whole batch: every response is consistent
  // with the same cube version.
  const std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  ThreadPool& pool = BatchPool();
  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable all_exited;
  int exited = 0;
  auto runner = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= requests.size()) break;
      responses[i] = ExecuteOn(requests[i], *snap);
    }
    // Notify under the lock: the caller's stack frame (and this condvar)
    // dies as soon as it can observe the predicate, which requires mu.
    std::lock_guard<std::mutex> lock(mu);
    ++exited;
    all_exited.notify_one();
  };
  int submitted = 0;
  const int helpers = std::min(static_cast<int>(requests.size()) - 1,
                               pool.num_threads());
  for (int i = 0; i < helpers; ++i) {
    std::function<void()> task = runner;
    if (!pool.TrySubmit(task)) break;
    ++submitted;
  }
  runner();  // the caller works through the batch too
  {
    std::unique_lock<std::mutex> lock(mu);
    all_exited.wait(lock, [&] { return exited == submitted + 1; });
  }
  latency_.Record(static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count()));
  return responses;
}

void SkycubeService::Reload(
    std::shared_ptr<const CompressedSkylineCube> cube) {
  SKYCUBE_CHECK_MSG(cube != nullptr, "Reload needs a cube");
  auto next = std::make_shared<Snapshot>();
  next->cube = std::move(cube);
  std::shared_ptr<const Snapshot> current =
      snapshot_.load(std::memory_order_acquire);
  do {
    next->version = current->version + 1;
  } while (!snapshot_.compare_exchange_weak(current, next,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire));
  snapshot_swaps_.fetch_add(1, std::memory_order_relaxed);
  // Version-keyed entries of the old snapshot can never be served again;
  // Clear() just releases their memory promptly.
  cache_.Clear();
}

std::shared_ptr<const CompressedSkylineCube> SkycubeService::snapshot()
    const {
  return LoadSnapshot()->cube;
}

uint64_t SkycubeService::snapshot_version() const {
  return LoadSnapshot()->version;
}

ThreadPool& SkycubeService::BatchPool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(ThreadPoolOptions{
        options_.batch_threads, options_.queue_capacity});
    pool_ptr_.store(pool_.get(), std::memory_order_release);
  });
  return *pool_;
}

ServiceStats SkycubeService::stats() const {
  ServiceStats stats;
  for (int kind = 0; kind < kNumQueryKinds; ++kind) {
    stats.queries_by_kind[kind] =
        queries_by_kind_[kind].load(std::memory_order_relaxed);
    stats.queries_total += stats.queries_by_kind[kind];
  }
  stats.invalid_requests = invalid_requests_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);

  const ResultCacheStats cache = cache_.stats();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  stats.cache_evictions = cache.evictions;
  stats.cache_entries = cache.entries;
  stats.cache_hit_rate = cache.HitRate();

  const std::shared_ptr<const Snapshot> snap = LoadSnapshot();
  stats.snapshot_version = snap->version;
  stats.snapshot_swaps = snapshot_swaps_.load(std::memory_order_relaxed);
  if (const ThreadPool* pool = pool_ptr_.load(std::memory_order_acquire)) {
    stats.queue_depth_high_water = pool->stats().queue_depth_high_water;
  }

  stats.latency_mean_nanos = latency_.MeanNanos();
  stats.latency_p50_nanos = latency_.PercentileNanos(0.50);
  stats.latency_p95_nanos = latency_.PercentileNanos(0.95);
  stats.latency_p99_nanos = latency_.PercentileNanos(0.99);
  return stats;
}

}  // namespace skycube
