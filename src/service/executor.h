// Abstract query-execution seam between front ends and backing engines.
//
// The network server (net/server.h) and the text REPL speak QueryRequest /
// QueryResponse; what answers them varies: a single-node SkycubeService, an
// in-process sharded wrapper (router/sharded_service.h), or the TCP
// scatter–gather router (router/router.h). QueryExecutor is the minimal
// surface a front end needs — execute, drain, and the three introspection
// hooks the serve loop exposes (version, dimensionality, health/stats
// lines). Implementations must be safe to call from many threads.
#ifndef SKYCUBE_SERVICE_EXECUTOR_H_
#define SKYCUBE_SERVICE_EXECUTOR_H_

#include <cstdint>
#include <string>

#include "service/request.h"

namespace skycube {

class QueryExecutor {
 public:
  virtual ~QueryExecutor() = default;

  /// Answers one request. Never throws; failures come back as !ok
  /// responses with a StatusCode.
  virtual QueryResponse Execute(const QueryRequest& request) = 0;

  /// Version of the data snapshot the next Execute would see. Monotonic;
  /// used by front ends for introspection headers only.
  virtual uint64_t snapshot_version() const = 0;

  /// Row width the executor accepts for kInsert.
  virtual int num_dims() const = 0;

  /// Stops admitting new work; in-flight requests finish, later ones get
  /// kUnavailable. Idempotent.
  virtual void BeginDrain() = 0;
  virtual bool draining() const = 0;

  /// One-line human-readable health / stats summaries (the `health` and
  /// `stats` verbs of the serve tool and the kHealth/kStats opcodes).
  virtual std::string HealthLine() const = 0;
  virtual std::string StatsLine() const = 0;
};

}  // namespace skycube

#endif  // SKYCUBE_SERVICE_EXECUTOR_H_
