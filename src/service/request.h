// Typed request/response vocabulary of the skycube query service.
//
// One request shape covers the paper's three query classes (§1): Q1 takes a
// subspace, Q2 takes (object, subspace), Q3 takes an object or nothing.
// Responses are cheap to copy — the only bulky payload (a Q1 skyline) sits
// behind a shared_ptr so a cache hit hands out the cached vector without
// duplicating it.
#ifndef SKYCUBE_SERVICE_REQUEST_H_
#define SKYCUBE_SERVICE_REQUEST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "common/subspace.h"
#include "dataset/dataset.h"

namespace skycube {

/// The query classes the service answers, mapped to CompressedSkylineCube
/// calls.
enum class QueryKind : uint8_t {
  kSubspaceSkyline = 0,     // Q1: ids of Sky(subspace)
  kSkylineCardinality = 1,  // Q1: |Sky(subspace)| without materializing ids
  kMembership = 2,          // Q2: object ∈ Sky(subspace)?
  kMembershipCount = 3,     // Q3: #subspaces whose skyline contains object
  kSkycubeSize = 4,         // Q3: Σ over subspaces of |Sky(B)|
  kInsert = 5,              // ingest: add a row; acked only once durable
  kDelete = 6,              // ingest: tombstone a row; idempotent
  kEpochDiff = 7,           // which ids entered/left Sky(subspace) since a
                            // past snapshot version (emerging skyline)
};

/// Number of distinct QueryKind values (for per-kind counters).
inline constexpr int kNumQueryKinds = 8;

/// Short lowercase name ("skyline", "cardinality", ...).
const char* QueryKindName(QueryKind kind);

/// One query. Unused fields are ignored (e.g. `object` for Q1 kinds).
struct QueryRequest {
  QueryKind kind = QueryKind::kSubspaceSkyline;
  DimMask subspace = 0;
  ObjectId object = 0;
  /// Time budget for this request (default: none). Checked at admission,
  /// before the cache probe, and at lattice-node granularity inside the
  /// cube traversals; an expired request answers kDeadlineExceeded instead
  /// of stalling.
  Deadline deadline;
  /// kInsert payload: the row to add (must have the cube's num_dims
  /// values). Empty for every read kind.
  std::vector<double> values;
  /// kEpochDiff: the past snapshot version to diff the current skyline
  /// against (must be a version the service still retains).
  uint64_t since_version = 0;

  /// Copy of this request with a deadline attached.
  QueryRequest WithDeadline(Deadline d) const {
    QueryRequest copy = *this;
    copy.deadline = d;
    return copy;
  }

  static QueryRequest Make(QueryKind kind, DimMask subspace, ObjectId object) {
    QueryRequest request;
    request.kind = kind;
    request.subspace = subspace;
    request.object = object;
    return request;
  }
  static QueryRequest SubspaceSkyline(DimMask subspace) {
    return Make(QueryKind::kSubspaceSkyline, subspace, 0);
  }
  static QueryRequest SkylineCardinality(DimMask subspace) {
    return Make(QueryKind::kSkylineCardinality, subspace, 0);
  }
  static QueryRequest Membership(ObjectId object, DimMask subspace) {
    return Make(QueryKind::kMembership, subspace, object);
  }
  static QueryRequest MembershipCount(ObjectId object) {
    return Make(QueryKind::kMembershipCount, 0, object);
  }
  static QueryRequest SkycubeSize() {
    return Make(QueryKind::kSkycubeSize, 0, 0);
  }
  static QueryRequest Insert(std::vector<double> values) {
    QueryRequest request;
    request.kind = QueryKind::kInsert;
    request.values = std::move(values);
    return request;
  }
  static QueryRequest Delete(ObjectId object) {
    return Make(QueryKind::kDelete, 0, object);
  }
  static QueryRequest EpochDiff(DimMask subspace, uint64_t since_version) {
    QueryRequest request = Make(QueryKind::kEpochDiff, subspace, 0);
    request.since_version = since_version;
    return request;
  }
};

/// One answer; the payload field used depends on `kind`. `ok` is false for
/// malformed requests (kInvalidArgument), requests past their deadline
/// (kDeadlineExceeded), requests shed under overload (kResourceExhausted),
/// and queries whose computation failed (kInternal); `code` says which.
struct QueryResponse {
  QueryKind kind = QueryKind::kSubspaceSkyline;
  bool ok = true;
  StatusCode code = StatusCode::kOk;  // kOk iff ok
  std::string error;                  // set iff !ok

  /// Q1 kSubspaceSkyline payload (ascending ids); null for other kinds.
  /// For kEpochDiff: the ids that *entered* Sky(subspace) since
  /// since_version (left_ids carries the leavers).
  std::shared_ptr<const std::vector<ObjectId>> ids;
  /// kEpochDiff payload: ids that left Sky(subspace) since since_version
  /// (deleted, expired, or newly dominated). Null for other kinds.
  std::shared_ptr<const std::vector<ObjectId>> left_ids;
  /// kSkylineCardinality / kMembershipCount / kSkycubeSize payload.
  uint64_t count = 0;
  /// kMembership payload.
  bool member = false;

  /// kInsert/kDelete payload: the maintenance path taken ("duplicate",
  /// "noop", "extension", "recompute"; deletes also "dead", "patch") and,
  /// for durable ingest, the WAL sequence number of the acknowledged
  /// record (0 when not durable). `count` carries the post-insert object
  /// total (for kDelete: the post-delete live-row count).
  std::string insert_path;
  uint64_t lsn = 0;

  /// Version of the cube snapshot that produced this answer (monotonically
  /// increasing across SkycubeService::Reload calls, starting at 1). For a
  /// kInsert answer this is the *post-insert* version — the proof that the
  /// result cache can no longer serve pre-insert answers.
  uint64_t snapshot_version = 0;
  /// True iff the answer came from the result cache. For a router-merged
  /// answer: true iff every contributing shard answered from its cache.
  bool cache_hit = false;
  /// True iff the answer covers only part of the row population — the
  /// scatter–gather router sets this when a shard was down or missed its
  /// deadline budget and the query was answered over the survivors
  /// (docs/SHARDING.md). Single-node answers never set it. A partial answer
  /// is still internally consistent (a correct skyline of the rows that
  /// were reachable); it may merely omit rows owned by the lost shard.
  bool partial = false;
};

}  // namespace skycube

#endif  // SKYCUBE_SERVICE_REQUEST_H_
