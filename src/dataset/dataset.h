// In-memory multidimensional dataset: the object set S in space D.
//
// Values are doubles with smaller-is-better semantics (the skyline
// convention of Börzsönyi et al.). Datasets with larger-is-better columns —
// like the NBA player statistics in the paper — are handled by Negated().
#ifndef SKYCUBE_DATASET_DATASET_H_
#define SKYCUBE_DATASET_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/subspace.h"

namespace skycube {

/// Identifier of an object (row) in a Dataset.
using ObjectId = uint32_t;

/// Parses a subspace from dimension names out of `dim_names`, e.g.
/// "price,stops" or "price+stops" (',' and '+' separate; spaces ignored).
/// Fails with NotFound on an unknown name, InvalidArgument on an empty
/// list.
Result<DimMask> MaskFromNameList(const std::vector<std::string>& dim_names,
                                 const std::string& names);

/// A dense row-major table of `num_objects() × num_dims()` doubles.
/// Immutable-after-build usage is typical: construct via FromRows / a
/// generator, then hand to the algorithms.
class Dataset {
 public:
  /// Creates an empty dataset with `num_dims` dimensions (1..kMaxDims) and
  /// optional dimension names (defaults to "A", "B", ..., "D17", ...).
  explicit Dataset(int num_dims, std::vector<std::string> dim_names = {});

  /// Builds a dataset from rows; fails on ragged rows, zero dimensions, or
  /// dimensionality above kMaxDims.
  static Result<Dataset> FromRows(std::vector<std::vector<double>> rows,
                                  std::vector<std::string> dim_names = {});

  /// Loads a numeric CSV (header = dimension names when present).
  static Result<Dataset> FromCsvFile(const std::string& path,
                                     bool has_header = true);

  /// Saves to CSV with dimension names as the header.
  Status ToCsvFile(const std::string& path) const;

  /// Appends one row; `values` must have exactly num_dims() entries.
  void AddRow(const std::vector<double>& values);

  int num_dims() const { return num_dims_; }
  size_t num_objects() const { return values_.size() / num_dims_; }

  /// The full space D as a mask.
  DimMask full_mask() const { return FullMask(num_dims_); }

  /// Value of object `id` on dimension `dim`.
  double Value(ObjectId id, int dim) const {
    SKYCUBE_DCHECK(id < num_objects() && dim >= 0 && dim < num_dims_);
    return values_[static_cast<size_t>(id) * num_dims_ + dim];
  }

  /// Pointer to the contiguous row of object `id`.
  const double* Row(ObjectId id) const {
    SKYCUBE_DCHECK(id < num_objects());
    return values_.data() + static_cast<size_t>(id) * num_dims_;
  }

  /// The projection of object `id` onto `subspace`, dimensions in increasing
  /// order (the |B|-tuple u_B of the paper).
  std::vector<double> Projection(ObjectId id, DimMask subspace) const;

  /// True iff objects `a` and `b` have equal projections on `subspace`.
  bool ProjectionsEqual(ObjectId a, ObjectId b, DimMask subspace) const;

  /// Dimensions (within `universe`) where `a` and `b` share the same value —
  /// one cell of the paper's coincidence matrix.
  DimMask CoincidenceMask(ObjectId a, ObjectId b, DimMask universe) const;

  /// Dimensions (within `universe`) where `a`'s value is strictly smaller
  /// than `b`'s — one cell of the paper's dominance matrix.
  DimMask DominanceMask(ObjectId a, ObjectId b, DimMask universe) const;

  const std::string& dim_name(int dim) const { return dim_names_[dim]; }
  const std::vector<std::string>& dim_names() const { return dim_names_; }

  /// Parses a subspace from dimension names, e.g. "price,stops" or
  /// "price+stops" (',' and '+' both separate). Fails with NotFound on an
  /// unknown name, InvalidArgument on an empty list.
  Result<DimMask> MaskFromNames(const std::string& names) const;

  /// Returns a copy restricted to the first `d` dimensions (the paper's
  /// "first d dimensions" scalability sweeps).
  Dataset WithPrefixDims(int d) const;

  /// Returns a copy with only the first `n` rows (size sweeps).
  Dataset WithFirstRows(size_t n) const;

  /// Returns a copy with all values negated: converts larger-is-better data
  /// (NBA statistics) to the smaller-is-better convention.
  Dataset Negated() const;

  /// Returns a copy with every value truncated to `decimals` decimal digits
  /// (toward zero) — the paper's §6.2 device for introducing moderate value
  /// coincidence into continuous synthetic data.
  Dataset Truncated(int decimals) const;

 private:
  int num_dims_;
  std::vector<std::string> dim_names_;
  std::vector<double> values_;  // row-major
};

}  // namespace skycube

#endif  // SKYCUBE_DATASET_DATASET_H_
