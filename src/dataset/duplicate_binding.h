// Duplicate-object binding, the preprocessing assumption of the paper's §5:
// "there exist no objects u, v ∈ S such that u.D = v.D for every dimension
// D. If such a situation happens, the two objects can be bound together
// since they always appear together if they are involved in any skyline
// groups."
//
// BindDuplicates() collapses groups of identical rows into one
// representative each; the algorithms run on the distinct dataset and the
// compressed cube expands representatives back to original object ids.
#ifndef SKYCUBE_DATASET_DUPLICATE_BINDING_H_
#define SKYCUBE_DATASET_DUPLICATE_BINDING_H_

#include <vector>

#include "dataset/dataset.h"

namespace skycube {

/// Result of collapsing duplicate rows.
struct DuplicateBinding {
  /// One row per distinct tuple, in order of first appearance.
  Dataset distinct;
  /// members[i] = original object ids bound into distinct row i, ascending.
  std::vector<std::vector<ObjectId>> members;
  /// representative_of[orig] = index of the distinct row for original row
  /// `orig`.
  std::vector<ObjectId> representative_of;

  /// True iff the input had no duplicates at all.
  bool identity() const { return distinct.num_objects() == members.size() &&
                                 distinct.num_objects() ==
                                     representative_of.size() &&
                                 AllSingletons(); }

  /// Expands a set of distinct-row ids back to original object ids
  /// (ascending).
  std::vector<ObjectId> Expand(const std::vector<ObjectId>& distinct_ids) const;

 private:
  bool AllSingletons() const {
    for (const auto& group : members) {
      if (group.size() != 1) return false;
    }
    return true;
  }
};

/// Collapses identical full-space rows. O(n) expected via hashing.
DuplicateBinding BindDuplicates(const Dataset& dataset);

}  // namespace skycube

#endif  // SKYCUBE_DATASET_DUPLICATE_BINDING_H_
