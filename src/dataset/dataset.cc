#include "dataset/dataset.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/csv.h"

namespace skycube {

namespace {

std::vector<std::string> DefaultDimNames(int num_dims) {
  std::vector<std::string> names;
  names.reserve(num_dims);
  for (int i = 0; i < num_dims; ++i) {
    if (num_dims <= 26) {
      names.push_back(std::string(1, static_cast<char>('A' + i)));
    } else {
      names.push_back("D" + std::to_string(i + 1));
    }
  }
  return names;
}

}  // namespace

Dataset::Dataset(int num_dims, std::vector<std::string> dim_names)
    : num_dims_(num_dims), dim_names_(std::move(dim_names)) {
  SKYCUBE_CHECK_MSG(num_dims >= 1 && num_dims <= kMaxDims,
                    "dimensionality must be in [1, 64]");
  if (dim_names_.empty()) {
    dim_names_ = DefaultDimNames(num_dims);
  }
  SKYCUBE_CHECK_MSG(static_cast<int>(dim_names_.size()) == num_dims,
                    "dimension name count must match num_dims");
}

Result<Dataset> Dataset::FromRows(std::vector<std::vector<double>> rows,
                                  std::vector<std::string> dim_names) {
  if (rows.empty() && dim_names.empty()) {
    return Status::InvalidArgument(
        "cannot infer dimensionality from empty rows without names");
  }
  const size_t width = rows.empty() ? dim_names.size() : rows.front().size();
  if (width == 0 || width > static_cast<size_t>(kMaxDims)) {
    return Status::InvalidArgument("dimensionality must be in [1, 64]");
  }
  Dataset dataset(static_cast<int>(width), std::move(dim_names));
  for (const std::vector<double>& row : rows) {
    if (row.size() != width) {
      return Status::InvalidArgument("ragged rows in dataset");
    }
    dataset.AddRow(row);
  }
  return dataset;
}

Result<Dataset> Dataset::FromCsvFile(const std::string& path,
                                     bool has_header) {
  CsvReadOptions options;
  options.has_header = has_header;
  Result<CsvTable> table = ReadNumericCsv(path, options);
  if (!table.ok()) return table.status();
  return FromRows(std::move(table.value().rows),
                  std::move(table.value().column_names));
}

Status Dataset::ToCsvFile(const std::string& path) const {
  CsvTable table;
  table.column_names = dim_names_;
  table.rows.reserve(num_objects());
  for (ObjectId id = 0; id < num_objects(); ++id) {
    table.rows.emplace_back(Row(id), Row(id) + num_dims_);
  }
  return WriteNumericCsv(path, table);
}

void Dataset::AddRow(const std::vector<double>& values) {
  SKYCUBE_CHECK_MSG(static_cast<int>(values.size()) == num_dims_,
                    "row width must equal num_dims");
  values_.insert(values_.end(), values.begin(), values.end());
}

Result<DimMask> MaskFromNameList(const std::vector<std::string>& dim_names,
                                 const std::string& names) {
  DimMask mask = 0;
  std::string current;
  auto flush = [&]() -> Status {
    if (current.empty()) return Status::Ok();
    for (size_t dim = 0; dim < dim_names.size(); ++dim) {
      if (dim_names[dim] == current) {
        mask |= DimBit(static_cast<int>(dim));
        current.clear();
        return Status::Ok();
      }
    }
    return Status::NotFound("unknown dimension name: " + current);
  };
  for (char c : names) {
    if (c == ',' || c == '+') {
      Status status = flush();
      if (!status.ok()) return status;
    } else if (c != ' ') {
      current.push_back(c);
    }
  }
  Status status = flush();
  if (!status.ok()) return status;
  if (mask == 0) {
    return Status::InvalidArgument("empty dimension name list");
  }
  return mask;
}

Result<DimMask> Dataset::MaskFromNames(const std::string& names) const {
  return MaskFromNameList(dim_names_, names);
}

std::vector<double> Dataset::Projection(ObjectId id, DimMask subspace) const {
  std::vector<double> projection;
  projection.reserve(MaskSize(subspace));
  const double* row = Row(id);
  ForEachDim(subspace, [&](int dim) { projection.push_back(row[dim]); });
  return projection;
}

bool Dataset::ProjectionsEqual(ObjectId a, ObjectId b,
                               DimMask subspace) const {
  const double* ra = Row(a);
  const double* rb = Row(b);
  bool equal = true;
  ForEachDim(subspace, [&](int dim) { equal &= (ra[dim] == rb[dim]); });
  return equal;
}

DimMask Dataset::CoincidenceMask(ObjectId a, ObjectId b,
                                 DimMask universe) const {
  const double* ra = Row(a);
  const double* rb = Row(b);
  DimMask mask = 0;
  ForEachDim(universe, [&](int dim) {
    if (ra[dim] == rb[dim]) mask |= DimBit(dim);
  });
  return mask;
}

DimMask Dataset::DominanceMask(ObjectId a, ObjectId b,
                               DimMask universe) const {
  const double* ra = Row(a);
  const double* rb = Row(b);
  DimMask mask = 0;
  ForEachDim(universe, [&](int dim) {
    if (ra[dim] < rb[dim]) mask |= DimBit(dim);
  });
  return mask;
}

Dataset Dataset::WithPrefixDims(int d) const {
  SKYCUBE_CHECK_MSG(d >= 1 && d <= num_dims_, "prefix dims out of range");
  Dataset out(d, std::vector<std::string>(dim_names_.begin(),
                                          dim_names_.begin() + d));
  std::vector<double> row(d);
  for (ObjectId id = 0; id < num_objects(); ++id) {
    const double* src = Row(id);
    for (int i = 0; i < d; ++i) row[i] = src[i];
    out.AddRow(row);
  }
  return out;
}

Dataset Dataset::WithFirstRows(size_t n) const {
  SKYCUBE_CHECK_MSG(n <= num_objects(), "row prefix out of range");
  Dataset out(num_dims_, dim_names_);
  std::vector<double> row(num_dims_);
  for (ObjectId id = 0; id < n; ++id) {
    const double* src = Row(id);
    row.assign(src, src + num_dims_);
    out.AddRow(row);
  }
  return out;
}

Dataset Dataset::Negated() const {
  Dataset out(num_dims_, dim_names_);
  out.values_ = values_;
  for (double& value : out.values_) value = -value;
  return out;
}

Dataset Dataset::Truncated(int decimals) const {
  SKYCUBE_CHECK_MSG(decimals >= 0 && decimals <= 12,
                    "decimals must be in [0, 12]");
  double scale = 1.0;
  for (int i = 0; i < decimals; ++i) scale *= 10.0;
  Dataset out(num_dims_, dim_names_);
  out.values_ = values_;
  for (double& value : out.values_) {
    value = std::trunc(value * scale) / scale;
  }
  return out;
}

}  // namespace skycube
