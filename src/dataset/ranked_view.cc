#include "dataset/ranked_view.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace skycube {

namespace {

// -0.0 and 0.0 compare equal but hash differently; fold them together so
// the hash-based rank assignment matches value comparison exactly.
inline double CanonicalValue(double v) { return v == 0.0 ? 0.0 : v; }

// splitmix64 finalizer — a fast, well-mixing hash for 64-bit keys.
inline uint64_t MixBits(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// A flat linear-probing map from a double's bit pattern to a provisional
// distinct-value id. Allocation-free per element (unlike unordered_map,
// which allocates a node per distinct value), which makes the RankedView
// build cheap enough to sit on the hot path of every Stellar/Skyey call.
// Canonicalized values can never be -0.0, so its bit pattern marks empty
// slots.
class FlatValueMap {
 public:
  // Sized by the number of *distinct* values, growing on demand: repeated
  // values are the common case (the generators truncate decimals), and a
  // small table keeps probes in L1/L2 instead of missing to L3.
  void Clear() {
    if (slots_.size() != kInitialSlots) {
      slots_.assign(kInitialSlots, Slot{kEmpty, 0});
    } else {
      std::fill(slots_.begin(), slots_.end(), Slot{kEmpty, 0});
    }
    mask_ = kInitialSlots - 1;
    count_ = 0;
  }

  /// Returns the id stored for `bits`, inserting `next_id` if absent.
  uint32_t FindOrInsert(uint64_t bits, uint32_t next_id) {
    for (size_t h = MixBits(bits) & mask_;; h = (h + 1) & mask_) {
      if (slots_[h].key == bits) return slots_[h].id;
      if (slots_[h].key == kEmpty) {
        if (2 * (count_ + 1) > slots_.size()) {
          Grow();
          h = MixBits(bits) & mask_;
          while (slots_[h].key != kEmpty) h = (h + 1) & mask_;
        }
        slots_[h] = Slot{bits, next_id};
        ++count_;
        return next_id;
      }
    }
  }

 private:
  static constexpr size_t kInitialSlots = 1024;
  static constexpr uint64_t kEmpty = 0x8000000000000000ULL;  // bits of -0.0
  struct Slot {
    uint64_t key;
    uint32_t id;
  };

  void Grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{kEmpty, 0});
    mask_ = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.key == kEmpty) continue;
      size_t h = MixBits(s.key) & mask_;
      while (slots_[h].key != kEmpty) h = (h + 1) & mask_;
      slots_[h] = s;
    }
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t count_ = 0;
};

}  // namespace

RankedView::RankedView(const Dataset& data)
    : data_(&data),
      num_dims_(data.num_dims()),
      num_objects_(data.num_objects()),
      ranks_(static_cast<size_t>(num_dims_) * num_objects_),
      orders_(static_cast<size_t>(num_dims_) * num_objects_),
      num_distinct_(num_dims_, 0) {
  // Per-dimension ranking via hash-distinct + sort-distinct + counting
  // sort: O(n + k log k) per dimension for k distinct values, far cheaper
  // than argsorting all n rows when values repeat — the paper's synthetic
  // workloads truncate to a few decimals, capping k well below n.
  FlatValueMap id_of;
  std::vector<double> distinct;
  std::vector<uint32_t> perm;       // argsort of `distinct`
  std::vector<uint32_t> rank_of;    // provisional id -> dense rank
  std::vector<uint32_t> starts;     // counting-sort offsets
  for (int dim = 0; dim < num_dims_; ++dim) {
    id_of.Clear();
    distinct.clear();
    // Pass 1: provisional ids in first-seen order, stored as ranks.
    uint32_t* ranks = ranks_.data() + static_cast<size_t>(dim) * num_objects_;
    for (size_t i = 0; i < num_objects_; ++i) {
      const double v = CanonicalValue(data.Value(i, dim));
      const uint32_t next = static_cast<uint32_t>(distinct.size());
      const uint32_t id = id_of.FindOrInsert(std::bit_cast<uint64_t>(v), next);
      if (id == next) distinct.push_back(v);
      ranks[i] = id;
    }
    // Dense ranks from sorted distinct values: equal values (ties) share a
    // rank, preserving <, ==, > between any two objects exactly.
    const uint32_t k = static_cast<uint32_t>(distinct.size());
    perm.resize(k);
    for (uint32_t r = 0; r < k; ++r) perm[r] = r;
    std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
      return distinct[a] < distinct[b];
    });
    rank_of.resize(k);
    for (uint32_t r = 0; r < k; ++r) rank_of[perm[r]] = r;
    for (size_t i = 0; i < num_objects_; ++i) ranks[i] = rank_of[ranks[i]];
    // Counting sort by rank rebuilds the sorted order in O(n + k); walking
    // ids in ascending order keeps ties in ascending id deterministically.
    starts.assign(k + 1, 0);
    for (size_t i = 0; i < num_objects_; ++i) ++starts[ranks[i] + 1];
    for (size_t r = 1; r < starts.size(); ++r) starts[r] += starts[r - 1];
    uint32_t* order = orders_.data() + static_cast<size_t>(dim) * num_objects_;
    for (size_t i = 0; i < num_objects_; ++i) {
      order[starts[ranks[i]]++] = static_cast<uint32_t>(i);
    }
    num_distinct_[dim] = k;
  }
}

}  // namespace skycube
