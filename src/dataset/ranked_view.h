// Rank-compressed, column-major (SoA) view of a Dataset.
//
// Per dimension, the doubles are mapped to dense uint32_t ranks: values are
// sorted, ties share a rank, and rank order equals value order. Dominance
// and coincidence therefore behave *identically* on ranks and on the
// original doubles — `rank_a < rank_b ⟺ value_a < value_b` and
// `rank_a == rank_b ⟺ value_a == value_b` within a dimension — so every
// skyline/skycube algorithm can run on the ranks and produce bit-for-bit
// the same output while its inner loops become branch-poor integer
// comparisons over contiguous columns (see skyline/dominance_kernels.h).
//
// The view is built once per Dataset in O(n·d·log n) and is immutable; it
// keeps a pointer to the source Dataset (which must outlive it) so callers
// holding a RankedView can still reach the double-precision fallback path.
#ifndef SKYCUBE_DATASET_RANKED_VIEW_H_
#define SKYCUBE_DATASET_RANKED_VIEW_H_

#include <cstdint>
#include <vector>

#include "common/subspace.h"
#include "dataset/dataset.h"

namespace skycube {

/// Dense per-dimension ranks of a Dataset, stored one contiguous column per
/// dimension, plus the per-dimension sorted object orders the ranking pass
/// produces as a byproduct (useful for sort-based presorting and index
/// structures).
class RankedView {
 public:
  /// Ranks every dimension of `data`. `data` must outlive the view.
  explicit RankedView(const Dataset& data);

  const Dataset& data() const { return *data_; }
  int num_dims() const { return num_dims_; }
  size_t num_objects() const { return num_objects_; }

  /// Contiguous rank column of dimension `dim` (indexed by ObjectId).
  const uint32_t* column(int dim) const {
    SKYCUBE_DCHECK(dim >= 0 && dim < num_dims_);
    return ranks_.data() + static_cast<size_t>(dim) * num_objects_;
  }

  /// Rank of object `id` on dimension `dim` (0 = smallest value; ties share
  /// a rank).
  uint32_t Rank(ObjectId id, int dim) const {
    SKYCUBE_DCHECK(id < num_objects_);
    return column(dim)[id];
  }

  /// Number of distinct values (= number of distinct ranks) on `dim`.
  uint32_t num_distinct(int dim) const {
    SKYCUBE_DCHECK(dim >= 0 && dim < num_dims_);
    return num_distinct_[dim];
  }

  /// Object ids in ascending value order on `dim` (ties in ascending id
  /// order) — the sorted lists SFS/LESS/index-method presorting consumes.
  const uint32_t* SortedOrder(int dim) const {
    SKYCUBE_DCHECK(dim >= 0 && dim < num_dims_);
    return orders_.data() + static_cast<size_t>(dim) * num_objects_;
  }

  /// Monotone SFS/LESS sort key over ranks: the rank sum over `subspace`.
  /// If u dominates v in `subspace` then RankSortKey(u) < RankSortKey(v)
  /// strictly (each rank is ≤ with at least one <).
  uint64_t RankSortKey(ObjectId id, DimMask subspace) const {
    uint64_t sum = 0;
    ForEachDim(subspace, [&](int dim) { sum += column(dim)[id]; });
    return sum;
  }

  /// Integer twin of Dataset::CoincidenceMask: dims of `universe` where `a`
  /// and `b` share a value.
  DimMask CoincidenceMask(ObjectId a, ObjectId b, DimMask universe) const {
    DimMask mask = 0;
    ForEachDim(universe, [&](int dim) {
      const uint32_t* col = column(dim);
      mask |= DimBit(dim) & (DimMask{0} - DimMask{col[a] == col[b]});
    });
    return mask;
  }

  /// Integer twin of Dataset::DominanceMask: dims of `universe` where `a`'s
  /// value is strictly smaller than `b`'s.
  DimMask DominanceMask(ObjectId a, ObjectId b, DimMask universe) const {
    DimMask mask = 0;
    ForEachDim(universe, [&](int dim) {
      const uint32_t* col = column(dim);
      mask |= DimBit(dim) & (DimMask{0} - DimMask{col[a] < col[b]});
    });
    return mask;
  }

 private:
  const Dataset* data_;
  int num_dims_;
  size_t num_objects_;
  std::vector<uint32_t> ranks_;   // dim-major: ranks_[dim * n + id]
  std::vector<uint32_t> orders_;  // dim-major sorted object orders
  std::vector<uint32_t> num_distinct_;
};

}  // namespace skycube

#endif  // SKYCUBE_DATASET_RANKED_VIEW_H_
