#include "dataset/duplicate_binding.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/hash.h"

namespace skycube {

std::vector<ObjectId> DuplicateBinding::Expand(
    const std::vector<ObjectId>& distinct_ids) const {
  std::vector<ObjectId> out;
  for (ObjectId id : distinct_ids) {
    SKYCUBE_CHECK(id < members.size());
    out.insert(out.end(), members[id].begin(), members[id].end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

DuplicateBinding BindDuplicates(const Dataset& dataset) {
  DuplicateBinding binding{Dataset(dataset.num_dims(), dataset.dim_names()),
                           {},
                           {}};
  std::unordered_map<std::vector<double>, ObjectId, VectorDoubleHash> seen;
  seen.reserve(dataset.num_objects());
  binding.representative_of.reserve(dataset.num_objects());
  std::vector<double> row(dataset.num_dims());
  for (ObjectId id = 0; id < dataset.num_objects(); ++id) {
    const double* src = dataset.Row(id);
    row.assign(src, src + dataset.num_dims());
    auto [it, inserted] = seen.emplace(
        row, static_cast<ObjectId>(binding.members.size()));
    if (inserted) {
      binding.distinct.AddRow(row);
      binding.members.emplace_back();
    }
    binding.members[it->second].push_back(id);
    binding.representative_of.push_back(it->second);
  }
  return binding;
}

}  // namespace skycube
