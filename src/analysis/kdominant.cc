#include "analysis/kdominant.h"

#include <vector>

#include "common/macros.h"
#include "skyline/algorithms.h"

namespace skycube {

bool KDominates(const Dataset& data, ObjectId u, ObjectId v, DimMask subspace,
                int k) {
  SKYCUBE_DCHECK(k >= 1 && k <= MaskSize(subspace));
  const double* ru = data.Row(u);
  const double* rv = data.Row(v);
  int no_worse = 0;
  bool strictly_better = false;
  ForEachDim(subspace, [&](int dim) {
    if (ru[dim] <= rv[dim]) {
      ++no_worse;
      strictly_better |= (ru[dim] < rv[dim]);
    }
  });
  // The strict dimension is always among the no-worse dimensions, so any
  // k-subset of them containing it witnesses the k-domination.
  return no_worse >= k && strictly_better;
}

std::vector<ObjectId> KDominantSkyline(const Dataset& data, DimMask subspace,
                                       int k) {
  SKYCUBE_CHECK_MSG(k >= 1 && k <= MaskSize(subspace),
                    "k must be in [1, |subspace|]");
  // Ordinary dominance implies k-dominance, so the k-dominant skyline is a
  // subset of the ordinary skyline; but the k-dominators themselves can be
  // arbitrary objects (the relation is cyclic), so candidates are verified
  // against everything.
  const std::vector<ObjectId> candidates = ComputeSkyline(data, subspace);
  std::vector<ObjectId> result;
  for (ObjectId candidate : candidates) {
    bool beaten = false;
    for (ObjectId other = 0; other < data.num_objects() && !beaten; ++other) {
      beaten = other != candidate &&
               KDominates(data, other, candidate, subspace, k);
    }
    if (!beaten) result.push_back(candidate);
  }
  return result;
}

}  // namespace skycube
