#include "analysis/skyband.h"

#include <vector>

#include "common/macros.h"
#include "skyline/dominance.h"

namespace skycube {

std::vector<size_t> DominatorCounts(const Dataset& data, DimMask subspace,
                                    size_t cap) {
  const size_t n = data.num_objects();
  std::vector<size_t> counts(n, 0);
  for (ObjectId candidate = 0; candidate < n; ++candidate) {
    const double* row = data.Row(candidate);
    size_t& count = counts[candidate];
    for (ObjectId other = 0; other < n; ++other) {
      if (other == candidate) continue;
      if (RowDominates(data.Row(other), row, subspace)) {
        ++count;
        if (cap != 0 && count >= cap) break;
      }
    }
  }
  return counts;
}

std::vector<ObjectId> Skyband(const Dataset& data, DimMask subspace,
                              size_t k) {
  SKYCUBE_CHECK_MSG(k >= 1, "skyband requires k >= 1");
  const std::vector<size_t> counts = DominatorCounts(data, subspace, k);
  std::vector<ObjectId> result;
  for (ObjectId id = 0; id < data.num_objects(); ++id) {
    if (counts[id] < k) result.push_back(id);
  }
  return result;
}

}  // namespace skycube
