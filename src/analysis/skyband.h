// k-skybands (Papadias et al., SIGMOD'03, alongside BBS): the set of
// objects dominated by fewer than k other objects in a subspace. The
// 1-skyband is the ordinary skyline; larger k gives "runner-up" layers —
// the natural relaxation when the strict skyline is too selective for a
// recommendation list.
#ifndef SKYCUBE_ANALYSIS_SKYBAND_H_
#define SKYCUBE_ANALYSIS_SKYBAND_H_

#include <cstddef>
#include <vector>

#include "common/subspace.h"
#include "dataset/dataset.h"

namespace skycube {

/// Objects of `subspace` dominated by fewer than `k` others (ascending
/// ids). Requires k ≥ 1; k = 1 is exactly the skyline. Duplicates do not
/// dominate each other, so bound twins share their dominator count.
std::vector<ObjectId> Skyband(const Dataset& data, DimMask subspace,
                              size_t k);

/// dominators[o] = number of objects dominating o in `subspace`, capped at
/// `cap` (counting stops early once an object provably exceeds the cap —
/// pass cap = k for skyband use; 0 means exact counts).
std::vector<size_t> DominatorCounts(const Dataset& data, DimMask subspace,
                                    size_t cap = 0);

}  // namespace skycube

#endif  // SKYCUBE_ANALYSIS_SKYBAND_H_
