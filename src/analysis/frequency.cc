#include "analysis/frequency.h"

#include <algorithm>

#include "core/interval_counting.h"

namespace skycube {

std::vector<uint64_t> SkylineFrequencies(const CompressedSkylineCube& cube) {
  std::vector<uint64_t> frequencies(cube.num_objects(), 0);
  for (ObjectId id = 0; id < cube.num_objects(); ++id) {
    frequencies[id] = cube.CountSubspacesWhereSkyline(id);
  }
  return frequencies;
}

std::vector<std::pair<ObjectId, uint64_t>> TopKFrequentSkylineObjects(
    const CompressedSkylineCube& cube, size_t k) {
  const std::vector<uint64_t> frequencies = SkylineFrequencies(cube);
  std::vector<std::pair<ObjectId, uint64_t>> ranked;
  for (ObjectId id = 0; id < frequencies.size(); ++id) {
    if (frequencies[id] > 0) ranked.push_back({id, frequencies[id]});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::vector<uint64_t> SkylineLevelHistogram(
    const CompressedSkylineCube& cube) {
  std::vector<uint64_t> histogram(cube.num_dims(), 0);
  for (const SkylineGroup& group : cube.groups()) {
    AccumulateCoveredByLevel(group.max_subspace, group.decisive_subspaces,
                             group.members.size(), &histogram);
  }
  return histogram;
}

}  // namespace skycube
