// k-dominant skylines (Chan, Jagadish, Tan, Tung, Zhang, SIGMOD'06 — the
// paper's reference [3]): a relaxation for high-dimensional spaces where
// the ordinary skyline degenerates to almost all objects.
//
// u k-dominates v in subspace B iff u is no worse than v on at least k of
// B's dimensions and strictly better on at least one of those. The
// k-dominant skyline keeps objects that no other object k-dominates. For
// k = |B| this is the ordinary skyline; smaller k prunes harder. Unlike
// ordinary dominance the relation is cyclic, so the computation cannot use
// a window algorithm naively — we use the ordinary skyline as a candidate
// filter (every k-dominant skyline object is an ordinary skyline object)
// and verify candidates against the whole object set.
#ifndef SKYCUBE_ANALYSIS_KDOMINANT_H_
#define SKYCUBE_ANALYSIS_KDOMINANT_H_

#include <vector>

#include "common/subspace.h"
#include "dataset/dataset.h"

namespace skycube {

/// True iff `u` k-dominates `v` in `subspace` (see file comment).
/// Requires 1 ≤ k ≤ |subspace|.
bool KDominates(const Dataset& data, ObjectId u, ObjectId v, DimMask subspace,
                int k);

/// The k-dominant skyline of `subspace` (ascending ids).
std::vector<ObjectId> KDominantSkyline(const Dataset& data, DimMask subspace,
                                       int k);

}  // namespace skycube

#endif  // SKYCUBE_ANALYSIS_KDOMINANT_H_
