// Multidimensional skyline analysis on top of the compressed cube — the
// paper's third query class (Q3), including the "frequent skyline points"
// analysis of Chan et al. (EDBT'06, the paper's reference [4]): how often
// is each object a skyline object across the 2^d − 1 subspaces, and which
// objects are the top-k most frequent?
//
// Everything here is derived from the compression alone (inclusion-
// exclusion over decisive-subspace intervals); the data is never rescanned.
#ifndef SKYCUBE_ANALYSIS_FREQUENCY_H_
#define SKYCUBE_ANALYSIS_FREQUENCY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/cube.h"
#include "dataset/dataset.h"

namespace skycube {

/// frequency[o] = number of non-empty subspaces whose skyline contains o.
std::vector<uint64_t> SkylineFrequencies(const CompressedSkylineCube& cube);

/// The k objects with the highest skyline frequency, as (object, frequency)
/// pairs, frequency descending (ties broken by ascending id). Objects with
/// frequency 0 are never returned; fewer than k pairs may come back.
std::vector<std::pair<ObjectId, uint64_t>> TopKFrequentSkylineObjects(
    const CompressedSkylineCube& cube, size_t k);

/// histogram[l] = Σ over subspaces B with |B| == l+1 of |Sky(B)| — how the
/// subspace-skyline mass distributes over lattice levels (the drill-down
/// view of Figures 9/10). histogram.size() == num_dims.
std::vector<uint64_t> SkylineLevelHistogram(const CompressedSkylineCube& cube);

}  // namespace skycube

#endif  // SKYCUBE_ANALYSIS_FREQUENCY_H_
