// Rank-compressed columnar dominance kernels — the batch/branch-poor twins
// of the scalar kernels in skyline/dominance.h.
//
// All kernels operate on a RankedView (dataset/ranked_view.h), whose dense
// per-dimension ranks preserve <, ==, > exactly, so every result here is
// bit-for-bit identical to the corresponding double-precision kernel (the
// property tests in tests/skyline/dominance_kernels_test.cc assert this).
// The wins come from (a) integer compares instead of double compares,
// (b) flag accumulation instead of data-dependent branches, and (c) batch
// shapes — one probe row against a contiguous block of rows, or tile ×
// tile — whose inner loops auto-vectorize.
#ifndef SKYCUBE_SKYLINE_DOMINANCE_KERNELS_H_
#define SKYCUBE_SKYLINE_DOMINANCE_KERNELS_H_

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/subspace.h"
#include "dataset/ranked_view.h"
#include "skyline/dominance.h"

namespace skycube {

/// Twin of CompareRows over ranks: flag accumulation instead of per-dim
/// branching, with the same incomparable short-circuit (on independent
/// data most pairs settle within a few dimensions).
inline DomOrder CompareRanked(const RankedView& view, ObjectId a, ObjectId b,
                              DimMask subspace) {
  unsigned a_better = 0;
  unsigned b_better = 0;
  while (subspace != 0) {
    const int dim = LowestDim(subspace);
    subspace &= subspace - 1;
    const uint32_t* col = view.column(dim);
    a_better |= static_cast<unsigned>(col[a] < col[b]);
    b_better |= static_cast<unsigned>(col[b] < col[a]);
    if ((a_better & b_better) != 0) return DomOrder::kIncomparable;
  }
  static constexpr DomOrder kOrders[4] = {
      DomOrder::kEqual, DomOrder::kFirstDominates, DomOrder::kSecondDominates,
      DomOrder::kIncomparable};
  return kOrders[a_better | (b_better << 1)];
}

/// Twin of RowDominates over ranks (same early exit as the scalar).
inline bool RankedDominates(const RankedView& view, ObjectId a, ObjectId b,
                            DimMask subspace) {
  unsigned better = 0;
  while (subspace != 0) {
    const int dim = LowestDim(subspace);
    subspace &= subspace - 1;
    const uint32_t* col = view.column(dim);
    if (col[a] > col[b]) return false;
    better |= static_cast<unsigned>(col[a] < col[b]);
  }
  return better != 0;
}

/// Branch-free twin of RowDominatesOrEqual over ranks.
inline bool RankedDominatesOrEqual(const RankedView& view, ObjectId a,
                                   ObjectId b, DimMask subspace) {
  unsigned worse = 0;
  while (subspace != 0) {
    const int dim = LowestDim(subspace);
    subspace &= subspace - 1;
    const uint32_t* col = view.column(dim);
    worse |= static_cast<unsigned>(col[a] > col[b]);
  }
  return worse == 0;
}

/// A packed column-major block of ranks for a subset of objects, restricted
/// to the dimensions of one subspace (packed densely in increasing
/// dimension order). Batch kernels run over its contiguous columns.
class RankedBlock {
 public:
  /// An empty block over the dims of `subspace` with initial room for
  /// `capacity` rows (a hint — Append grows the block geometrically).
  /// `view` must outlive the block.
  RankedBlock(const RankedView& view, DimMask subspace, size_t capacity);

  /// Gathers all of `ids` into a block.
  static RankedBlock Gather(const RankedView& view, DimMask subspace,
                            const std::vector<ObjectId>& ids);

  int num_packed_dims() const { return static_cast<int>(dims_.size()); }
  /// Original dimension index of packed column `k`.
  int dim(int k) const { return dims_[k]; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }

  /// Contiguous rank column of packed dimension `k` (size() valid entries).
  const uint32_t* column(int k) const {
    return ranks_.data() + static_cast<size_t>(k) * capacity_;
  }

  /// Appends one object's ranks as a new row, growing if full.
  void Append(ObjectId id) {
    if (size_ == capacity_) Grow();
    for (size_t k = 0; k < dims_.size(); ++k) {
      ranks_[k * capacity_ + size_] = view_->column(dims_[k])[id];
    }
    ++size_;
  }

  /// Fills probe[k] with `id`'s rank on packed dimension `k` — the probe
  /// row format the batch kernels take.
  void GatherProbe(ObjectId id, uint32_t* probe) const {
    for (size_t k = 0; k < dims_.size(); ++k) {
      probe[k] = view_->column(dims_[k])[id];
    }
  }

  /// Removes every row j with drop[j] != 0, preserving order.
  void CompactWhereZero(const uint8_t* drop);

 private:
  void Grow();

  const RankedView* view_;
  std::vector<int> dims_;  // packed dim -> original dim
  size_t capacity_;
  size_t size_ = 0;
  std::vector<uint32_t> ranks_;  // packed-dim-major, stride capacity_
};

/// True iff some row of `block` strictly dominates the probe row (equal
/// rows do not dominate). Tiles internally with per-tile early exit.
bool BlockAnyDominates(const RankedBlock& block, const uint32_t* probe);

/// dominated[j] = 1 iff the probe row strictly dominates block row j.
/// `dominated` must have block.size() entries.
void BlockDominatedFlags(const RankedBlock& block, const uint32_t* probe,
                         uint8_t* dominated);

/// Batch twin of RowDominates: sets bit j of `out` (sized `count`) iff
/// `candidate` strictly dominates ids[j] in `subspace`. out must be a
/// DynamicBitset of `count` cleared bits.
void DominatedBitmap(const RankedView& view, ObjectId candidate,
                     const ObjectId* ids, size_t count, DimMask subspace,
                     DynamicBitset* out);

/// Batch twin of Dataset::CoincidenceMask: out[j] = dims of `universe`
/// where ids[j] shares `reference`'s value.
void CoincidenceMasks(const RankedView& view, ObjectId reference,
                      const ObjectId* ids, size_t count, DimMask universe,
                      DimMask* out);

/// Batch twin of Dataset::DominanceMask: out[j] = dims of `universe` where
/// `reference`'s value is strictly smaller than ids[j]'s.
void DominanceMasks(const RankedView& view, ObjectId reference,
                    const ObjectId* ids, size_t count, DimMask universe,
                    DimMask* out);

/// Tile kernel behind PairwiseMasks: for every (i, j) in
/// [i_begin, i_end) × [j_begin, j_end), writes the dominance mask
/// dom(i, j) = {dims of the block's subspace : rank_i < rank_j} into
/// dom[(i - i_begin) * stride + (j - j_begin)]. Cells are fully
/// overwritten; dom(i, i) = 0 falls out naturally.
void PairwiseDominanceTile(const RankedBlock& block, size_t i_begin,
                           size_t i_end, size_t j_begin, size_t j_end,
                           DimMask* dom, size_t stride);

/// A dominance window over ranked rows: the BNL/SFS/LESS/index-method
/// working set, stored as a RankedBlock with ids alongside. AnyDominates
/// is the batch inner loop of every window algorithm; EvictDominatedBy
/// supports the BNL-style eviction pass.
class RankedWindow {
 public:
  RankedWindow(const RankedView& view, DimMask subspace, size_t capacity)
      : block_(view, subspace, capacity),
        probe_(block_.num_packed_dims() > 0 ? block_.num_packed_dims() : 1) {
    ids_.reserve(capacity);
  }

  const std::vector<ObjectId>& ids() const { return ids_; }
  size_t size() const { return ids_.size(); }

  /// True iff some window row strictly dominates `target`.
  bool AnyDominates(ObjectId target) {
    block_.GatherProbe(target, probe_.data());
    return BlockAnyDominates(block_, probe_.data());
  }

  /// Removes every window row strictly dominated by `target`.
  void EvictDominatedBy(ObjectId target);

  void Append(ObjectId id) {
    block_.Append(id);
    ids_.push_back(id);
  }

 private:
  RankedBlock block_;
  std::vector<ObjectId> ids_;
  std::vector<uint32_t> probe_;
  std::vector<uint8_t> dominated_;  // eviction scratch
};

}  // namespace skycube

#endif  // SKYCUBE_SKYLINE_DOMINANCE_KERNELS_H_
