#include "skyline/dominance_kernels.h"

#include <algorithm>

namespace skycube {

namespace {

// Batch tile width: two uint32 flag arrays of this size stay comfortably in
// L1 next to the rank columns being scanned.
constexpr size_t kTile = 256;

// First tile width for the any-dominates probe. Window algorithms keep
// their windows in a sort order that concentrates strong dominators at the
// front, so most dominated probes are killed within the first few rows —
// the scalar kernels exploit that with a first-dominator early exit.
// Starting small and growing geometrically (16 -> 64 -> 256) restores that
// early exit at tile granularity without giving up vectorized throughput
// on probes that survive deep into the window.
constexpr size_t kFirstTile = 16;

}  // namespace

RankedBlock::RankedBlock(const RankedView& view, DimMask subspace,
                         size_t capacity)
    : view_(&view), capacity_(capacity) {
  SKYCUBE_DCHECK(IsSubsetOf(subspace, FullMask(view.num_dims())));
  dims_ = MaskDims(subspace);
  ranks_.resize(dims_.size() * capacity_);
}

RankedBlock RankedBlock::Gather(const RankedView& view, DimMask subspace,
                                const std::vector<ObjectId>& ids) {
  RankedBlock block(view, subspace, ids.size());
  for (size_t k = 0; k < block.dims_.size(); ++k) {
    const uint32_t* col = view.column(block.dims_[k]);
    uint32_t* out = block.ranks_.data() + k * block.capacity_;
    for (size_t j = 0; j < ids.size(); ++j) out[j] = col[ids[j]];
  }
  block.size_ = ids.size();
  return block;
}

void RankedBlock::Grow() {
  const size_t new_capacity = capacity_ == 0 ? 64 : capacity_ * 2;
  std::vector<uint32_t> grown(dims_.size() * new_capacity);
  for (size_t k = 0; k < dims_.size(); ++k) {
    const uint32_t* src = ranks_.data() + k * capacity_;
    uint32_t* dst = grown.data() + k * new_capacity;
    for (size_t j = 0; j < size_; ++j) dst[j] = src[j];
  }
  ranks_ = std::move(grown);
  capacity_ = new_capacity;
}

void RankedBlock::CompactWhereZero(const uint8_t* drop) {
  size_t keep = 0;
  for (size_t j = 0; j < size_; ++j) keep += (drop[j] == 0);
  if (keep == size_) return;
  for (size_t k = 0; k < dims_.size(); ++k) {
    uint32_t* col = ranks_.data() + k * capacity_;
    size_t out = 0;
    for (size_t j = 0; j < size_; ++j) {
      if (drop[j] == 0) col[out++] = col[j];
    }
  }
  size_ = keep;
}

bool BlockAnyDominates(const RankedBlock& block, const uint32_t* probe) {
  const int num_dims = block.num_packed_dims();
  const size_t n = block.size();
  uint32_t le[kTile];  // row ≤ probe on every dim scanned so far
  uint32_t lt[kTile];  // row < probe on some dim
  size_t tile = kFirstTile;
  for (size_t base = 0; base < n;
       base += tile, tile = std::min(tile * 4, kTile)) {
    const size_t m = std::min(tile, n - base);
    for (size_t j = 0; j < m; ++j) le[j] = 1;
    for (size_t j = 0; j < m; ++j) lt[j] = 0;
    uint32_t alive = 1;
    for (int k = 0; k < num_dims && alive != 0; ++k) {
      const uint32_t* col = block.column(k) + base;
      const uint32_t r = probe[k];
      alive = 0;
      for (size_t j = 0; j < m; ++j) {
        le[j] &= static_cast<uint32_t>(col[j] <= r);
        lt[j] |= static_cast<uint32_t>(col[j] < r);
        alive |= le[j];
      }
      // Once no row is still ≤ on every scanned dim, the whole tile is
      // dead — the batch analogue of the scalar incomparable short-circuit.
    }
    uint32_t any = 0;
    for (size_t j = 0; j < m; ++j) any |= (le[j] & lt[j]);
    if (any != 0) return true;
  }
  return false;
}

void BlockDominatedFlags(const RankedBlock& block, const uint32_t* probe,
                         uint8_t* dominated) {
  const int num_dims = block.num_packed_dims();
  const size_t n = block.size();
  uint32_t ge[kTile];  // probe ≤ row on every dim scanned so far
  uint32_t gt[kTile];  // probe < row on some dim
  for (size_t base = 0; base < n; base += kTile) {
    const size_t m = std::min(kTile, n - base);
    for (size_t j = 0; j < m; ++j) ge[j] = 1;
    for (size_t j = 0; j < m; ++j) gt[j] = 0;
    uint32_t alive = 1;
    for (int k = 0; k < num_dims && alive != 0; ++k) {
      const uint32_t* col = block.column(k) + base;
      const uint32_t r = probe[k];
      alive = 0;
      for (size_t j = 0; j < m; ++j) {
        ge[j] &= static_cast<uint32_t>(r <= col[j]);
        gt[j] |= static_cast<uint32_t>(r < col[j]);
        alive |= ge[j];
      }
      // Dead tile: no row can be dominated once every ge flag dropped.
    }
    for (size_t j = 0; j < m; ++j) {
      dominated[base + j] = static_cast<uint8_t>(ge[j] & gt[j]);
    }
  }
}

void RankedWindow::EvictDominatedBy(ObjectId target) {
  if (ids_.empty()) return;
  block_.GatherProbe(target, probe_.data());
  dominated_.assign(ids_.size(), 0);
  BlockDominatedFlags(block_, probe_.data(), dominated_.data());
  size_t keep = 0;
  for (size_t j = 0; j < ids_.size(); ++j) {
    if (dominated_[j] == 0) ids_[keep++] = ids_[j];
  }
  if (keep == ids_.size()) return;
  block_.CompactWhereZero(dominated_.data());
  ids_.resize(keep);
}

void DominatedBitmap(const RankedView& view, ObjectId candidate,
                     const ObjectId* ids, size_t count, DimMask subspace,
                     DynamicBitset* out) {
  SKYCUBE_DCHECK(out->size() >= count);
  uint32_t ge[kTile];
  uint32_t gt[kTile];
  const std::vector<int> dims = MaskDims(subspace);
  for (size_t base = 0; base < count; base += kTile) {
    const size_t m = std::min(kTile, count - base);
    for (size_t j = 0; j < m; ++j) ge[j] = 1;
    for (size_t j = 0; j < m; ++j) gt[j] = 0;
    uint32_t alive = 1;
    for (size_t k = 0; k < dims.size() && alive != 0; ++k) {
      const uint32_t* col = view.column(dims[k]);
      const uint32_t r = col[candidate];
      const ObjectId* id = ids + base;
      alive = 0;
      for (size_t j = 0; j < m; ++j) {
        const uint32_t v = col[id[j]];
        ge[j] &= static_cast<uint32_t>(r <= v);
        gt[j] |= static_cast<uint32_t>(r < v);
        alive |= ge[j];
      }
    }
    for (size_t j = 0; j < m; ++j) {
      if ((ge[j] & gt[j]) != 0) out->Set(base + j);
    }
  }
}

void CoincidenceMasks(const RankedView& view, ObjectId reference,
                      const ObjectId* ids, size_t count, DimMask universe,
                      DimMask* out) {
  std::fill(out, out + count, DimMask{0});
  ForEachDim(universe, [&](int dim) {
    const uint32_t* col = view.column(dim);
    const uint32_t r = col[reference];
    const DimMask bit = DimBit(dim);
    for (size_t j = 0; j < count; ++j) {
      out[j] |= bit & (DimMask{0} - DimMask{col[ids[j]] == r});
    }
  });
}

void DominanceMasks(const RankedView& view, ObjectId reference,
                    const ObjectId* ids, size_t count, DimMask universe,
                    DimMask* out) {
  std::fill(out, out + count, DimMask{0});
  ForEachDim(universe, [&](int dim) {
    const uint32_t* col = view.column(dim);
    const uint32_t r = col[reference];
    const DimMask bit = DimBit(dim);
    for (size_t j = 0; j < count; ++j) {
      out[j] |= bit & (DimMask{0} - DimMask{r < col[ids[j]]});
    }
  });
}

void PairwiseDominanceTile(const RankedBlock& block, size_t i_begin,
                           size_t i_end, size_t j_begin, size_t j_end,
                           DimMask* dom, size_t stride) {
  const int num_dims = block.num_packed_dims();
  const size_t width = j_end - j_begin;
  for (size_t i = i_begin; i < i_end; ++i) {
    DimMask* row = dom + (i - i_begin) * stride;
    std::fill(row, row + width, DimMask{0});
    for (int k = 0; k < num_dims; ++k) {
      const DimMask bit = DimBit(block.dim(k));
      const uint32_t ri = block.column(k)[i];
      const uint32_t* col = block.column(k) + j_begin;
      for (size_t j = 0; j < width; ++j) {
        row[j] |= bit & (DimMask{0} - DimMask{ri < col[j]});
      }
    }
  }
}

}  // namespace skycube
