// Dominance kernels: pairwise comparison of objects within a subspace.
// These are the innermost loops of every algorithm in the library.
#ifndef SKYCUBE_SKYLINE_DOMINANCE_H_
#define SKYCUBE_SKYLINE_DOMINANCE_H_

#include "common/subspace.h"
#include "dataset/dataset.h"

namespace skycube {

/// Outcome of comparing two projections u_B vs v_B under the dominance
/// partial order (smaller is better).
enum class DomOrder {
  kEqual,            // u_B == v_B
  kFirstDominates,   // u dominates v in B
  kSecondDominates,  // v dominates u in B
  kIncomparable,     // neither dominates
};

/// Compares rows `a` and `b` on the dimensions of `subspace`.
inline DomOrder CompareRows(const double* a, const double* b,
                            DimMask subspace) {
  bool a_better = false;
  bool b_better = false;
  while (subspace != 0) {
    const int dim = LowestDim(subspace);
    subspace &= subspace - 1;
    const double va = a[dim];
    const double vb = b[dim];
    if (va < vb) {
      if (b_better) return DomOrder::kIncomparable;
      a_better = true;
    } else if (vb < va) {
      if (a_better) return DomOrder::kIncomparable;
      b_better = true;
    }
  }
  if (a_better) return DomOrder::kFirstDominates;
  if (b_better) return DomOrder::kSecondDominates;
  return DomOrder::kEqual;
}

/// True iff row `a` dominates row `b` in `subspace` (≤ everywhere, < at
/// least once).
inline bool RowDominates(const double* a, const double* b, DimMask subspace) {
  bool strict = false;
  while (subspace != 0) {
    const int dim = LowestDim(subspace);
    subspace &= subspace - 1;
    if (a[dim] > b[dim]) return false;
    strict |= (a[dim] < b[dim]);
  }
  return strict;
}

/// True iff row `a` dominates or equals row `b` in `subspace`.
inline bool RowDominatesOrEqual(const double* a, const double* b,
                                DimMask subspace) {
  while (subspace != 0) {
    const int dim = LowestDim(subspace);
    subspace &= subspace - 1;
    if (a[dim] > b[dim]) return false;
  }
  return true;
}

/// Object-id convenience wrappers.
inline DomOrder CompareObjects(const Dataset& data, ObjectId a, ObjectId b,
                               DimMask subspace) {
  return CompareRows(data.Row(a), data.Row(b), subspace);
}
inline bool Dominates(const Dataset& data, ObjectId a, ObjectId b,
                      DimMask subspace) {
  return RowDominates(data.Row(a), data.Row(b), subspace);
}

/// Monotone scoring function for SFS/LESS presorting: the sum of the
/// projection's coordinates. If u dominates v in `subspace` then
/// SortScore(u) < SortScore(v) strictly.
inline double SortScore(const double* row, DimMask subspace) {
  double sum = 0;
  while (subspace != 0) {
    const int dim = LowestDim(subspace);
    subspace &= subspace - 1;
    sum += row[dim];
  }
  return sum;
}

}  // namespace skycube

#endif  // SKYCUBE_SKYLINE_DOMINANCE_H_
