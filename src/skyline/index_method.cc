// The "Index" skyline method of Tan, Eng, Ooi ("Efficient progressive
// skyline computation", VLDB 2001) — the second of the two algorithms in
// the paper's reference [12].
//
// Objects are processed in ascending order of their minimum coordinate
// minC(p) = min_{Dim ∈ B} p.Dim. Two facts drive the algorithm:
//   1. a dominator always has minC(q) ≤ minC(p) (min is monotone), so a
//      BNL window over this order rarely evicts;
//   2. once some window object q has max coordinate maxC(q) strictly below
//      the smallest remaining minC, every remaining object is strictly
//      dominated by q — the scan stops early.
// The original partitions objects into d sorted lists to emit progressive
// results; a single merged sort performs the identical comparisons, so we
// use that (the library returns complete skylines, not streams).
#include <algorithm>
#include <limits>
#include <vector>

#include "skyline/algorithms.h"
#include "skyline/dominance.h"
#include "skyline/dominance_kernels.h"

namespace skycube {

namespace {

double MinCoordinate(const double* row, DimMask subspace) {
  double best = row[LowestDim(subspace)];
  ForEachDim(subspace, [&](int dim) { best = std::min(best, row[dim]); });
  return best;
}

double MaxCoordinate(const double* row, DimMask subspace) {
  double best = row[LowestDim(subspace)];
  ForEachDim(subspace, [&](int dim) { best = std::max(best, row[dim]); });
  return best;
}

uint32_t MinRank(const RankedView& view, ObjectId id, DimMask subspace) {
  uint32_t best = view.Rank(id, LowestDim(subspace));
  ForEachDim(subspace,
             [&](int dim) { best = std::min(best, view.Rank(id, dim)); });
  return best;
}

uint32_t MaxRank(const RankedView& view, ObjectId id, DimMask subspace) {
  uint32_t best = view.Rank(id, LowestDim(subspace));
  ForEachDim(subspace,
             [&](int dim) { best = std::max(best, view.Rank(id, dim)); });
  return best;
}

}  // namespace

std::vector<ObjectId> SkylineIndex(const Dataset& data, DimMask subspace,
                                   const std::vector<ObjectId>& candidates) {
  struct Entry {
    double min_coord;
    ObjectId id;
  };
  std::vector<Entry> order;
  order.reserve(candidates.size());
  for (ObjectId id : candidates) {
    order.push_back({MinCoordinate(data.Row(id), subspace), id});
  }
  std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
    if (a.min_coord != b.min_coord) return a.min_coord < b.min_coord;
    return a.id < b.id;
  });

  std::vector<ObjectId> window;
  double best_window_max = std::numeric_limits<double>::infinity();
  for (const Entry& entry : order) {
    // Early termination: a window object fits entirely below every
    // remaining object's smallest coordinate → it strictly dominates them.
    if (best_window_max < entry.min_coord) break;
    const double* row = data.Row(entry.id);
    bool dominated = false;
    size_t keep = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      const DomOrder cmp = CompareRows(data.Row(window[i]), row, subspace);
      if (cmp == DomOrder::kFirstDominates) {
        dominated = true;
        for (size_t j = i; j < window.size(); ++j) window[keep++] = window[j];
        break;
      }
      if (cmp != DomOrder::kSecondDominates) window[keep++] = window[i];
    }
    window.resize(keep);
    if (!dominated) {
      window.push_back(entry.id);
      best_window_max =
          std::min(best_window_max, MaxCoordinate(row, subspace));
    }
    // Evictions cannot invalidate best_window_max: an evicted object was
    // dominated by the incoming one, whose max coordinate is ≤ the
    // evictee's on... (not necessarily ≤ its max — recompute lazily would
    // be needed for exactness; we keep the historical minimum, which stays
    // a valid bound because the object that achieved it is only evicted by
    // a dominator with coordinate-wise smaller values, hence smaller max.)
  }
  std::sort(window.begin(), window.end());
  return window;
}

// Ranked fast path. Both monotonicity facts carry over to dense ranks:
// q dominating p gives rank_q ≤ rank_p per dimension, hence
// minRank(q) ≤ minRank(p); and maxRank(q) < minRank(p) means q is strictly
// below p on every dimension. The window becomes a columnar block probed
// with the batch kernels (the set result is order-independent, so a
// different-but-valid processing order is fine).
std::vector<ObjectId> SkylineIndexRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates) {
  struct Entry {
    uint32_t min_rank;
    ObjectId id;
  };
  std::vector<Entry> order;
  order.reserve(candidates.size());
  for (ObjectId id : candidates) {
    order.push_back({MinRank(view, id, subspace), id});
  }
  std::sort(order.begin(), order.end(), [](const Entry& a, const Entry& b) {
    if (a.min_rank != b.min_rank) return a.min_rank < b.min_rank;
    return a.id < b.id;
  });

  RankedWindow window(view, subspace, std::min<size_t>(candidates.size(), 256));
  uint32_t best_window_max = std::numeric_limits<uint32_t>::max();
  for (const Entry& entry : order) {
    if (best_window_max < entry.min_rank) break;
    if (window.AnyDominates(entry.id)) continue;
    window.EvictDominatedBy(entry.id);
    window.Append(entry.id);
    best_window_max =
        std::min(best_window_max, MaxRank(view, entry.id, subspace));
  }
  std::vector<ObjectId> skyline = window.ids();
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace skycube
