// The "Bitmap" skyline method of Tan, Eng, Ooi (VLDB 2001) — the paper's
// reference [12], "the method using bit-operations".
//
// Per dimension, values are ranked; bit-slice leq[dim][rank] holds the set
// of objects whose value on dim is ≤ the rank's value. For an object p
// with per-dimension ranks r_i:
//     A = ⋀_i leq[i][r_i]      (objects ≤ p on every dimension)
//     D = ⋁_i leq[i][r_i − 1]  (objects < p on some dimension)
// p is dominated iff A ∧ D ≠ ∅. All dominance tests become word-parallel.
//
// Memory is Θ(Σ_dim distinct_dim × n) bits — the method's classic
// weakness. Intended for low-cardinality (truncated / categorical) data;
// the implementation refuses beyond ~1 GiB of slices.
#include <algorithm>
#include <vector>

#include "common/bitset.h"
#include "skyline/algorithms.h"
#include "skyline/dominance_kernels.h"

namespace skycube {

namespace {

// Per-dimension rank structure over the candidate subset.
struct DimSlices {
  // leq[r] = candidates with value ≤ sorted_values[r]; leq.size() =
  // #distinct values.
  std::vector<DynamicBitset> leq;
  // rank_of_candidate[j] = rank of candidate j's value on this dimension.
  std::vector<uint32_t> rank_of_candidate;
};

}  // namespace

std::vector<ObjectId> SkylineBitmap(const Dataset& data, DimMask subspace,
                                    const std::vector<ObjectId>& candidates) {
  const size_t m = candidates.size();
  if (m == 0) return {};
  const std::vector<int> dims = MaskDims(subspace);

  // Rank values and check the memory budget before building slices.
  std::vector<std::vector<double>> sorted_values(dims.size());
  uint64_t total_bits = 0;
  for (size_t k = 0; k < dims.size(); ++k) {
    std::vector<double>& values = sorted_values[k];
    values.reserve(m);
    for (ObjectId id : candidates) values.push_back(data.Value(id, dims[k]));
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    total_bits += static_cast<uint64_t>(values.size()) * m;
  }
  SKYCUBE_CHECK_MSG(total_bits <= (uint64_t{1} << 33),
                    "bitmap skyline slices exceed 1 GiB — use SFS/LESS");

  std::vector<DimSlices> slices(dims.size());
  for (size_t k = 0; k < dims.size(); ++k) {
    const std::vector<double>& values = sorted_values[k];
    DimSlices& dim_slices = slices[k];
    dim_slices.leq.assign(values.size(), DynamicBitset(m));
    dim_slices.rank_of_candidate.resize(m);
    // Mark exact-value bits, then accumulate into cumulative ≤ slices.
    for (size_t j = 0; j < m; ++j) {
      const double value = data.Value(candidates[j], dims[k]);
      const uint32_t rank = static_cast<uint32_t>(
          std::lower_bound(values.begin(), values.end(), value) -
          values.begin());
      dim_slices.rank_of_candidate[j] = rank;
      dim_slices.leq[rank].Set(j);
    }
    for (size_t r = 1; r < dim_slices.leq.size(); ++r) {
      dim_slices.leq[r] |= dim_slices.leq[r - 1];
    }
  }

  std::vector<ObjectId> skyline;
  DynamicBitset leq_all(m);
  DynamicBitset less_any(m);
  for (size_t j = 0; j < m; ++j) {
    leq_all = slices[0].leq[slices[0].rank_of_candidate[j]];
    less_any = DynamicBitset(m);
    for (size_t k = 0; k < dims.size(); ++k) {
      const uint32_t rank = slices[k].rank_of_candidate[j];
      if (k > 0) leq_all &= slices[k].leq[rank];
      if (rank > 0) less_any |= slices[k].leq[rank - 1];
    }
    // q dominates candidate j iff q ≤ j everywhere and < somewhere.
    if (!leq_all.IntersectsWith(less_any)) {
      skyline.push_back(candidates[j]);
    }
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

// Ranked fast path. The RankedView already ranked every dimension once for
// the whole dataset, so the per-call value sort disappears: global ranks are
// densified over the candidate subset with an integer sort/unique (when the
// candidates are the whole dataset the global ranks are already dense and
// even that collapses to a copy).
std::vector<ObjectId> SkylineBitmapRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates) {
  const size_t m = candidates.size();
  if (m == 0) return {};
  const std::vector<int> dims = MaskDims(subspace);
  const bool full_set = m == view.num_objects();

  // Densify global ranks over the candidate subset and check the memory
  // budget before building slices.
  std::vector<std::vector<uint32_t>> local_rank(dims.size());
  std::vector<uint32_t> num_local(dims.size());
  uint64_t total_bits = 0;
  for (size_t k = 0; k < dims.size(); ++k) {
    const uint32_t* col = view.column(dims[k]);
    std::vector<uint32_t>& ranks = local_rank[k];
    ranks.reserve(m);
    for (ObjectId id : candidates) ranks.push_back(col[id]);
    if (full_set) {
      num_local[k] = view.num_distinct(dims[k]);
    } else {
      std::vector<uint32_t> distinct = ranks;
      std::sort(distinct.begin(), distinct.end());
      distinct.erase(std::unique(distinct.begin(), distinct.end()),
                     distinct.end());
      for (uint32_t& r : ranks) {
        r = static_cast<uint32_t>(
            std::lower_bound(distinct.begin(), distinct.end(), r) -
            distinct.begin());
      }
      num_local[k] = static_cast<uint32_t>(distinct.size());
    }
    total_bits += static_cast<uint64_t>(num_local[k]) * m;
  }
  SKYCUBE_CHECK_MSG(total_bits <= (uint64_t{1} << 33),
                    "bitmap skyline slices exceed 1 GiB — use SFS/LESS");

  std::vector<DimSlices> slices(dims.size());
  for (size_t k = 0; k < dims.size(); ++k) {
    DimSlices& dim_slices = slices[k];
    dim_slices.leq.assign(num_local[k], DynamicBitset(m));
    dim_slices.rank_of_candidate = std::move(local_rank[k]);
    for (size_t j = 0; j < m; ++j) {
      dim_slices.leq[dim_slices.rank_of_candidate[j]].Set(j);
    }
    for (size_t r = 1; r < dim_slices.leq.size(); ++r) {
      dim_slices.leq[r] |= dim_slices.leq[r - 1];
    }
  }

  std::vector<ObjectId> skyline;
  DynamicBitset leq_all(m);
  DynamicBitset less_any(m);
  for (size_t j = 0; j < m; ++j) {
    leq_all = slices[0].leq[slices[0].rank_of_candidate[j]];
    less_any = DynamicBitset(m);
    for (size_t k = 0; k < dims.size(); ++k) {
      const uint32_t rank = slices[k].rank_of_candidate[j];
      if (k > 0) leq_all &= slices[k].leq[rank];
      if (rank > 0) less_any |= slices[k].leq[rank - 1];
    }
    if (!leq_all.IntersectsWith(less_any)) {
      skyline.push_back(candidates[j]);
    }
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace skycube
