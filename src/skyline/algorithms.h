// Single-subspace skyline algorithms from the related work the paper builds
// on: block-nested-loops (BNL) and divide-and-conquer (Börzsönyi et al.,
// ICDE'01), sort-first-skyline (SFS, Chomicki et al., ICDE'03) and LESS
// (Godfrey et al., VLDB'05). All compute the identical set of skyline
// object ids; they differ only in cost profile. SFS is the library default
// and the workhorse inside Skyey and Stellar.
//
// Semantics with duplicates/ties: an object is in the skyline of B iff no
// other object *dominates* it in B; objects whose B-projections are equal do
// not dominate each other, so every object sharing an undominated projection
// is returned.
#ifndef SKYCUBE_SKYLINE_ALGORITHMS_H_
#define SKYCUBE_SKYLINE_ALGORITHMS_H_

#include <string>
#include <vector>

#include "common/subspace.h"
#include "dataset/dataset.h"
#include "dataset/ranked_view.h"

namespace skycube {

/// Algorithm selector.
enum class SkylineAlgorithm {
  kBlockNestedLoops,
  kSortFilterSkyline,
  kDivideAndConquer,
  kLess,
  /// Tan/Eng/Ooi's sorted-index method with early termination: objects in
  /// ascending minimum-coordinate order, stop once a window object's
  /// maximum coordinate undercuts the smallest remaining minimum.
  kIndex,
  /// Tan/Eng/Ooi's bitmap method: per-dimension rank bit-slices; dominance
  /// tests become word-parallel AND/OR. Memory is Θ(Σ_dim distinct ×
  /// objects) bits — intended for low-cardinality data; dies beyond 1 GiB.
  kBitmap,
  /// Papadias et al.'s branch-and-bound skyline over an STR-bulk-loaded
  /// R-tree, searched best-first by corner mindist.
  kBbs,
};

/// General-purpose algorithms, safe at any scale (parameterized tests and
/// the substrate benches iterate these).
inline constexpr SkylineAlgorithm kAllSkylineAlgorithms[] = {
    SkylineAlgorithm::kBlockNestedLoops,
    SkylineAlgorithm::kSortFilterSkyline,
    SkylineAlgorithm::kDivideAndConquer,
    SkylineAlgorithm::kLess,
    SkylineAlgorithm::kIndex,
    SkylineAlgorithm::kBbs,
};

/// Every algorithm including the memory-hungry bitmap; for small inputs.
inline constexpr SkylineAlgorithm kAllSkylineAlgorithmsWithBitmap[] = {
    SkylineAlgorithm::kBlockNestedLoops,
    SkylineAlgorithm::kSortFilterSkyline,
    SkylineAlgorithm::kDivideAndConquer,
    SkylineAlgorithm::kLess,
    SkylineAlgorithm::kIndex,
    SkylineAlgorithm::kBbs,
    SkylineAlgorithm::kBitmap,
};

/// Display name ("BNL", "SFS", "DC", "LESS").
const char* SkylineAlgorithmName(SkylineAlgorithm algorithm);

/// Computes the skyline of `subspace` over all objects of `data` with the
/// chosen algorithm. Returns ascending object ids. `subspace` must be
/// non-empty and within data.full_mask().
std::vector<ObjectId> ComputeSkyline(
    const Dataset& data, DimMask subspace,
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSortFilterSkyline);

/// As above but restricted to `candidates` (need not be sorted; duplicates
/// not allowed). Only objects from `candidates` are compared and returned —
/// the skyline *of the candidate subset*.
std::vector<ObjectId> ComputeSkylineAmong(
    const Dataset& data, DimMask subspace,
    const std::vector<ObjectId>& candidates,
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSortFilterSkyline);

/// Individual algorithm entry points (candidate-restricted form). Exposed
/// for direct benchmarking; prefer ComputeSkyline in application code.
std::vector<ObjectId> SkylineBnl(const Dataset& data, DimMask subspace,
                                 const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineSfs(const Dataset& data, DimMask subspace,
                                 const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineDivideAndConquer(
    const Dataset& data, DimMask subspace,
    const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineLess(const Dataset& data, DimMask subspace,
                                  const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineIndex(const Dataset& data, DimMask subspace,
                                   const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineBitmap(const Dataset& data, DimMask subspace,
                                    const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineBbs(const Dataset& data, DimMask subspace,
                                 const std::vector<ObjectId>& candidates);

/// Rank-compressed fast paths (skyline/dominance_kernels.h): identical
/// output to the double-precision entry points above — rank order equals
/// value order, ties share a rank — but the inner loops run branch-poor
/// integer batch kernels over the view's columns. Build the RankedView
/// once per dataset and reuse it across subspaces/calls. BBS has no ranked
/// variant; the dispatchers fall back to the double path via view.data().
std::vector<ObjectId> ComputeSkylineRanked(
    const RankedView& view, DimMask subspace,
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSortFilterSkyline);
std::vector<ObjectId> ComputeSkylineAmongRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates,
    SkylineAlgorithm algorithm = SkylineAlgorithm::kSortFilterSkyline);

std::vector<ObjectId> SkylineBnlRanked(const RankedView& view,
                                       DimMask subspace,
                                       const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineSfsRanked(const RankedView& view,
                                       DimMask subspace,
                                       const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineDivideAndConquerRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineLessRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineIndexRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates);
std::vector<ObjectId> SkylineBitmapRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates);

}  // namespace skycube

#endif  // SKYCUBE_SKYLINE_ALGORITHMS_H_
