// LESS — linear elimination sort for skyline (Godfrey, Shipley, Gryz,
// VLDB 2005). Two ideas on top of SFS: (1) during the initial pass an
// elimination-filter (EF) window of a few best-scoring objects discards
// clearly dominated records before the sort; (2) the final pass is the SFS
// filter over the survivors. On average the sort then touches far fewer
// records than SFS.
#include <algorithm>
#include <vector>

#include "skyline/algorithms.h"
#include "skyline/dominance.h"
#include "skyline/dominance_kernels.h"

namespace skycube {

namespace {

constexpr size_t kEfWindowSize = 16;

struct Scored {
  double score;
  ObjectId id;
};

}  // namespace

std::vector<ObjectId> SkylineLess(const Dataset& data, DimMask subspace,
                                  const std::vector<ObjectId>& candidates) {
  // Pass 1: eliminate records dominated by the EF window while collecting
  // scores. The EF window retains the lowest-scoring objects seen so far
  // (low score = likely dominator).
  std::vector<Scored> ef;  // kept sorted by score ascending, small
  std::vector<Scored> survivors;
  survivors.reserve(candidates.size());
  for (ObjectId id : candidates) {
    const double* row = data.Row(id);
    const double score = SortScore(row, subspace);
    bool dominated = false;
    for (const Scored& entry : ef) {
      if (entry.score >= score) break;  // can't dominate: score not smaller
      if (RowDominates(data.Row(entry.id), row, subspace)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    survivors.push_back({score, id});
    // Update EF window: insert, keep the kEfWindowSize lowest scores.
    if (ef.size() < kEfWindowSize || score < ef.back().score) {
      auto pos = std::lower_bound(
          ef.begin(), ef.end(), score,
          [](const Scored& entry, double s) { return entry.score < s; });
      ef.insert(pos, {score, id});
      if (ef.size() > kEfWindowSize) ef.pop_back();
    }
  }

  // Pass 2: SFS over the survivors.
  std::sort(survivors.begin(), survivors.end(),
            [](const Scored& a, const Scored& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.id < b.id;
            });
  std::vector<ObjectId> skyline;
  for (const Scored& entry : survivors) {
    const double* row = data.Row(entry.id);
    bool dominated = false;
    for (ObjectId kept : skyline) {
      if (RowDominates(data.Row(kept), row, subspace)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(entry.id);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

// Ranked fast path: integer rank-sum scores for both passes; the EF window
// stays pairwise (it holds ≤ kEfWindowSize entries), the final SFS filter
// runs over a batch columnar window.
std::vector<ObjectId> SkylineLessRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates) {
  struct RankScored {
    uint64_t key;
    ObjectId id;
  };
  std::vector<RankScored> ef;
  std::vector<RankScored> survivors;
  survivors.reserve(candidates.size());
  for (ObjectId id : candidates) {
    const uint64_t key = view.RankSortKey(id, subspace);
    bool dominated = false;
    for (const RankScored& entry : ef) {
      if (entry.key >= key) break;  // can't dominate: key not smaller
      if (RankedDominates(view, entry.id, id, subspace)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    survivors.push_back({key, id});
    if (ef.size() < kEfWindowSize || key < ef.back().key) {
      auto pos = std::lower_bound(
          ef.begin(), ef.end(), key,
          [](const RankScored& entry, uint64_t k) { return entry.key < k; });
      ef.insert(pos, {key, id});
      if (ef.size() > kEfWindowSize) ef.pop_back();
    }
  }

  std::sort(survivors.begin(), survivors.end(),
            [](const RankScored& a, const RankScored& b) {
              if (a.key != b.key) return a.key < b.key;
              return a.id < b.id;
            });
  RankedWindow window(view, subspace, std::min<size_t>(survivors.size(), 256));
  for (const RankScored& entry : survivors) {
    if (!window.AnyDominates(entry.id)) window.Append(entry.id);
  }
  std::vector<ObjectId> skyline = window.ids();
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace skycube
