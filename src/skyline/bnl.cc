// Block-nested-loops skyline (Börzsönyi, Kossmann, Stocker, ICDE 2001).
// Maintains a window of incomparable objects; every incoming object is
// compared against the window, possibly evicting dominated window entries.
// With the dataset in memory the "blocks" degenerate to a single pass, which
// is the standard in-memory formulation.
#include <algorithm>
#include <vector>

#include "skyline/algorithms.h"
#include "skyline/dominance.h"
#include "skyline/dominance_kernels.h"

namespace skycube {

std::vector<ObjectId> SkylineBnl(const Dataset& data, DimMask subspace,
                                 const std::vector<ObjectId>& candidates) {
  std::vector<ObjectId> window;
  for (ObjectId candidate : candidates) {
    const double* row = data.Row(candidate);
    bool dominated = false;
    size_t keep = 0;
    for (size_t i = 0; i < window.size(); ++i) {
      const DomOrder order = CompareRows(data.Row(window[i]), row, subspace);
      if (order == DomOrder::kFirstDominates) {
        dominated = true;
        // Window entries are pairwise incomparable, so nothing scanned so
        // far was evicted; retain the unscanned tail verbatim.
        for (size_t j = i; j < window.size(); ++j) window[keep++] = window[j];
        break;
      }
      if (order != DomOrder::kSecondDominates) {
        window[keep++] = window[i];  // incomparable or equal: keep
      }
      // kSecondDominates: candidate evicts window[i] (skip it).
    }
    window.resize(keep);
    if (!dominated) window.push_back(candidate);
  }
  std::sort(window.begin(), window.end());
  return window;
}

// Ranked fast path: the scalar loop's combined compare-and-evict pass
// becomes two batch probes over a columnar window — "does any window row
// dominate the candidate?" and, only if not, "evict the rows the candidate
// dominates". Equal rows dominate in neither direction, so the window holds
// exactly the same set as the scalar version after every step.
std::vector<ObjectId> SkylineBnlRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates) {
  RankedWindow window(view, subspace, std::min<size_t>(candidates.size(), 256));
  for (ObjectId candidate : candidates) {
    if (window.AnyDominates(candidate)) continue;
    window.EvictDominatedBy(candidate);
    window.Append(candidate);
  }
  std::vector<ObjectId> skyline = window.ids();
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace skycube
