#include "skyline/algorithms.h"

#include <numeric>
#include <vector>

#include "common/macros.h"

namespace skycube {

const char* SkylineAlgorithmName(SkylineAlgorithm algorithm) {
  switch (algorithm) {
    case SkylineAlgorithm::kBlockNestedLoops:
      return "BNL";
    case SkylineAlgorithm::kSortFilterSkyline:
      return "SFS";
    case SkylineAlgorithm::kDivideAndConquer:
      return "DC";
    case SkylineAlgorithm::kLess:
      return "LESS";
    case SkylineAlgorithm::kIndex:
      return "Index";
    case SkylineAlgorithm::kBitmap:
      return "Bitmap";
    case SkylineAlgorithm::kBbs:
      return "BBS";
  }
  return "unknown";
}

std::vector<ObjectId> ComputeSkyline(const Dataset& data, DimMask subspace,
                                     SkylineAlgorithm algorithm) {
  std::vector<ObjectId> all(data.num_objects());
  std::iota(all.begin(), all.end(), 0);
  return ComputeSkylineAmong(data, subspace, all, algorithm);
}

std::vector<ObjectId> ComputeSkylineAmong(const Dataset& data,
                                          DimMask subspace,
                                          const std::vector<ObjectId>& candidates,
                                          SkylineAlgorithm algorithm) {
  SKYCUBE_CHECK_MSG(subspace != 0, "subspace must be non-empty");
  SKYCUBE_CHECK_MSG(IsSubsetOf(subspace, data.full_mask()),
                    "subspace outside the dataset's dimension space");
  switch (algorithm) {
    case SkylineAlgorithm::kBlockNestedLoops:
      return SkylineBnl(data, subspace, candidates);
    case SkylineAlgorithm::kSortFilterSkyline:
      return SkylineSfs(data, subspace, candidates);
    case SkylineAlgorithm::kDivideAndConquer:
      return SkylineDivideAndConquer(data, subspace, candidates);
    case SkylineAlgorithm::kLess:
      return SkylineLess(data, subspace, candidates);
    case SkylineAlgorithm::kIndex:
      return SkylineIndex(data, subspace, candidates);
    case SkylineAlgorithm::kBitmap:
      return SkylineBitmap(data, subspace, candidates);
    case SkylineAlgorithm::kBbs:
      return SkylineBbs(data, subspace, candidates);
  }
  SKYCUBE_CHECK(false);
  return {};
}

std::vector<ObjectId> ComputeSkylineRanked(const RankedView& view,
                                           DimMask subspace,
                                           SkylineAlgorithm algorithm) {
  std::vector<ObjectId> all(view.num_objects());
  std::iota(all.begin(), all.end(), 0);
  return ComputeSkylineAmongRanked(view, subspace, all, algorithm);
}

std::vector<ObjectId> ComputeSkylineAmongRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates, SkylineAlgorithm algorithm) {
  SKYCUBE_CHECK_MSG(subspace != 0, "subspace must be non-empty");
  SKYCUBE_CHECK_MSG(IsSubsetOf(subspace, view.data().full_mask()),
                    "subspace outside the dataset's dimension space");
  switch (algorithm) {
    case SkylineAlgorithm::kBlockNestedLoops:
      return SkylineBnlRanked(view, subspace, candidates);
    case SkylineAlgorithm::kSortFilterSkyline:
      return SkylineSfsRanked(view, subspace, candidates);
    case SkylineAlgorithm::kDivideAndConquer:
      return SkylineDivideAndConquerRanked(view, subspace, candidates);
    case SkylineAlgorithm::kLess:
      return SkylineLessRanked(view, subspace, candidates);
    case SkylineAlgorithm::kIndex:
      return SkylineIndexRanked(view, subspace, candidates);
    case SkylineAlgorithm::kBitmap:
      return SkylineBitmapRanked(view, subspace, candidates);
    case SkylineAlgorithm::kBbs:
      // No ranked variant — BBS's mindist search wants real coordinates.
      return SkylineBbs(view.data(), subspace, candidates);
  }
  SKYCUBE_CHECK(false);
  return {};
}

}  // namespace skycube
