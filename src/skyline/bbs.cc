// BBS — branch-and-bound skyline (Papadias, Tao, Fu, Seeger, "An optimal
// and progressive algorithm for skyline queries", SIGMOD 2003) — the
// paper's reference [7], itself an improvement of the nearest-neighbor
// method of Kossmann et al. [6].
//
// The algorithm searches an R-tree best-first by *mindist* (the coordinate
// sum of a node's lower corner / a point): a priority queue pops entries
// in ascending mindist; an entry strictly dominated (at its lower corner)
// by an already-found skyline point is discarded — every point inside such
// a node is strictly dominated too; surviving leaf points are skyline.
// I/O-optimality is the original's claim; in this in-memory setting BBS's
// value is touching only the dominance-relevant corner of the tree.
//
// The R-tree is built per call over the candidate projections with
// Sort-Tile-Recursive (STR) bulk loading, cycling the tiling dimension
// through the queried subspace.
//
// Tie handling: dominance is strict, so a node whose lower corner merely
// *equals* a skyline point is not pruned (it may hold equal — hence
// skyline — points); if a point s strictly beats the lower corner
// somewhere and is ≤ elsewhere, then s strictly dominates every point in
// the box.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <queue>
#include <vector>

#include "common/macros.h"
#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace skycube {

namespace {

constexpr size_t kLeafCapacity = 32;
constexpr size_t kFanout = 16;

// Node of the bulk-loaded tree over projected points. Children are index
// ranges into the node array; leaves hold ranges of point indices.
struct Node {
  std::vector<double> lower;  // per subspace-dimension minimum
  double mindist = 0;
  uint32_t first = 0;  // first child node / first point index
  uint32_t count = 0;  // number of children / points
  bool leaf = false;
};

struct Entry {
  double mindist;
  uint32_t index;  // node index, or point index when is_point
  bool is_point;
  bool operator>(const Entry& other) const {
    return mindist > other.mindist;
  }
};

class BbsTree {
 public:
  BbsTree(const Dataset& data, DimMask subspace,
          const std::vector<ObjectId>& candidates)
      : dims_(MaskDims(subspace)) {
    const size_t n = candidates.size();
    points_.resize(n);
    ids_.resize(n);
    std::vector<uint32_t> order(n);
    for (size_t i = 0; i < n; ++i) {
      order[i] = static_cast<uint32_t>(i);
      ids_[i] = candidates[i];
      const double* row = data.Row(candidates[i]);
      points_[i].reserve(dims_.size());
      for (int dim : dims_) points_[i].push_back(row[dim]);
    }
    // STR tiling permutes `order`; leaves then take consecutive runs.
    Tile(order.data(), n, /*dim_index=*/0);
    permuted_ids_.reserve(n);
    permuted_points_.reserve(n);
    for (uint32_t index : order) {
      permuted_ids_.push_back(ids_[index]);
      permuted_points_.push_back(std::move(points_[index]));
    }
    BuildNodes();
  }

  /// Runs the best-first search; returns skyline ids (unsorted).
  std::vector<ObjectId> Run() {
    std::vector<ObjectId> skyline;
    if (nodes_.empty()) return skyline;
    std::vector<const double*> skyline_points;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    heap.push({nodes_.back().mindist,
               static_cast<uint32_t>(nodes_.size() - 1), false});
    while (!heap.empty()) {
      const Entry entry = heap.top();
      heap.pop();
      if (entry.is_point) {
        // A point pops only after every entry with smaller coordinate sum —
        // in particular after all of its potential dominators.
        const double* point = permuted_points_[entry.index].data();
        if (!DominatedBySkyline(skyline_points, point)) {
          skyline.push_back(permuted_ids_[entry.index]);
          skyline_points.push_back(point);
        }
        continue;
      }
      const Node& node = nodes_[entry.index];
      if (DominatedBySkyline(skyline_points, node.lower.data())) continue;
      if (node.leaf) {
        // Expand leaf points back into the queue (emitting them here would
        // be wrong: a dominator can live in a node whose corner mindist
        // exceeds this leaf's).
        for (uint32_t p = node.first; p < node.first + node.count; ++p) {
          heap.push({Sum(permuted_points_[p]), p, true});
        }
      } else {
        for (uint32_t c = 0; c < node.count; ++c) {
          heap.push({nodes_[node.first + c].mindist, node.first + c, false});
        }
      }
    }
    return skyline;
  }

 private:
  // Sort-tile-recursive: orders point indices so that consecutive runs of
  // kLeafCapacity form spatially coherent leaves.
  void Tile(uint32_t* order, size_t n, size_t dim_index) {
    if (n <= kLeafCapacity || dim_index + 1 >= dims_.size()) {
      std::sort(order, order + n, [&](uint32_t a, uint32_t b) {
        return points_[a][dim_index % dims_.size()] <
               points_[b][dim_index % dims_.size()];
      });
      return;
    }
    std::sort(order, order + n, [&](uint32_t a, uint32_t b) {
      return points_[a][dim_index] < points_[b][dim_index];
    });
    // Slab size: points per slab so that each slab recursively tiles the
    // remaining dimensions.
    const size_t leaves = (n + kLeafCapacity - 1) / kLeafCapacity;
    const size_t slabs = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(
               std::pow(static_cast<double>(leaves),
                        1.0 / static_cast<double>(dims_.size() - dim_index)))));
    const size_t per_slab = (n + slabs - 1) / slabs;
    for (size_t begin = 0; begin < n; begin += per_slab) {
      const size_t len = std::min(per_slab, n - begin);
      Tile(order + begin, len, dim_index + 1);
    }
  }

  void BuildNodes() {
    const size_t n = permuted_points_.size();
    if (n == 0) return;
    // Level 0: leaves over consecutive point runs.
    std::vector<uint32_t> level;
    for (size_t begin = 0; begin < n; begin += kLeafCapacity) {
      const size_t len = std::min(kLeafCapacity, n - begin);
      Node leaf;
      leaf.leaf = true;
      leaf.first = static_cast<uint32_t>(begin);
      leaf.count = static_cast<uint32_t>(len);
      leaf.lower.assign(dims_.size(),
                        std::numeric_limits<double>::infinity());
      for (size_t p = begin; p < begin + len; ++p) {
        for (size_t k = 0; k < dims_.size(); ++k) {
          leaf.lower[k] = std::min(leaf.lower[k], permuted_points_[p][k]);
        }
      }
      leaf.mindist = Sum(leaf.lower);
      level.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(leaf));
    }
    // Upper levels: group kFanout consecutive children.
    while (level.size() > 1) {
      std::vector<uint32_t> next;
      for (size_t begin = 0; begin < level.size(); begin += kFanout) {
        const size_t len = std::min(kFanout, level.size() - begin);
        Node inner;
        inner.leaf = false;
        inner.first = level[begin];  // children are contiguous node ids
        inner.count = static_cast<uint32_t>(len);
        inner.lower.assign(dims_.size(),
                           std::numeric_limits<double>::infinity());
        for (size_t c = begin; c < begin + len; ++c) {
          SKYCUBE_DCHECK(level[c] == level[begin] + (c - begin));
          const Node& child = nodes_[level[c]];
          for (size_t k = 0; k < dims_.size(); ++k) {
            inner.lower[k] = std::min(inner.lower[k], child.lower[k]);
          }
        }
        inner.mindist = Sum(inner.lower);
        next.push_back(static_cast<uint32_t>(nodes_.size()));
        nodes_.push_back(std::move(inner));
      }
      level = std::move(next);
    }
  }

  static double Sum(const std::vector<double>& values) {
    double total = 0;
    for (double v : values) total += v;
    return total;
  }

  // True iff some skyline point strictly dominates `corner` (≤ everywhere,
  // < at least once) in the projected space.
  bool DominatedBySkyline(const std::vector<const double*>& skyline_points,
                          const double* corner) const {
    const size_t width = dims_.size();
    for (const double* s : skyline_points) {
      bool leq = true;
      bool strict = false;
      for (size_t k = 0; k < width; ++k) {
        if (s[k] > corner[k]) {
          leq = false;
          break;
        }
        strict |= (s[k] < corner[k]);
      }
      if (leq && strict) return true;
    }
    return false;
  }

  std::vector<int> dims_;
  std::vector<std::vector<double>> points_;          // pre-permutation
  std::vector<ObjectId> ids_;                        // pre-permutation
  std::vector<std::vector<double>> permuted_points_;  // leaf order
  std::vector<ObjectId> permuted_ids_;
  std::vector<Node> nodes_;  // children contiguous; root is nodes_.back()
};

}  // namespace

std::vector<ObjectId> SkylineBbs(const Dataset& data, DimMask subspace,
                                 const std::vector<ObjectId>& candidates) {
  if (candidates.empty()) return {};
  BbsTree tree(data, subspace, candidates);
  std::vector<ObjectId> skyline = tree.Run();
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace skycube
