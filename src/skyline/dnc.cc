// Divide-and-conquer skyline (Börzsönyi, Kossmann, Stocker, ICDE 2001).
// Splits the candidate set at the median of one dimension, solves both
// halves recursively, and filters the high half against the low half's
// skyline: a high-side object (value ≥ median) can never dominate a
// low-side object (value < median) on the split dimension, so the low
// skyline survives unconditionally.
#include <algorithm>
#include <vector>

#include "skyline/algorithms.h"
#include "skyline/dominance.h"
#include "skyline/dominance_kernels.h"

namespace skycube {

namespace {

constexpr size_t kDncBaseCase = 48;

std::vector<ObjectId> DncRecurse(const Dataset& data, DimMask subspace,
                                 std::vector<ObjectId> ids) {
  if (ids.size() <= kDncBaseCase) {
    return SkylineBnl(data, subspace, ids);
  }
  // Find a dimension that actually separates the set; a dimension where all
  // values are equal cannot split.
  int split_dim = -1;
  double median = 0;
  ForEachDim(subspace, [&](int dim) {
    if (split_dim != -1) return;
    std::vector<double> values;
    values.reserve(ids.size());
    for (ObjectId id : ids) values.push_back(data.Value(id, dim));
    auto mid = values.begin() + values.size() / 2;
    std::nth_element(values.begin(), mid, values.end());
    const double candidate_median = *mid;
    // A valid split needs at least one value strictly below the median.
    for (double v : values) {
      if (v < candidate_median) {
        split_dim = dim;
        median = candidate_median;
        break;
      }
    }
  });
  if (split_dim == -1) {
    // Every object has the identical projection: all are skyline.
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  std::vector<ObjectId> low;
  std::vector<ObjectId> high;
  for (ObjectId id : ids) {
    (data.Value(id, split_dim) < median ? low : high).push_back(id);
  }
  std::vector<ObjectId> low_skyline = DncRecurse(data, subspace, std::move(low));
  std::vector<ObjectId> high_skyline =
      DncRecurse(data, subspace, std::move(high));
  // Merge: low skyline survives; high skyline entries survive unless some
  // low-skyline object dominates them.
  std::vector<ObjectId> merged = low_skyline;
  for (ObjectId candidate : high_skyline) {
    const double* row = data.Row(candidate);
    bool dominated = false;
    for (ObjectId low_id : low_skyline) {
      if (RowDominates(data.Row(low_id), row, subspace)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged.push_back(candidate);
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

// Ranked recursion: identical structure, but medians are taken over integer
// ranks (rank order equals value order, so the splits partition the same
// way) and the merge filter probes the low half's skyline as one columnar
// block instead of row-by-row scalar scans.
std::vector<ObjectId> DncRecurseRanked(const RankedView& view,
                                       DimMask subspace,
                                       std::vector<ObjectId> ids) {
  if (ids.size() <= kDncBaseCase) {
    return SkylineBnlRanked(view, subspace, ids);
  }
  int split_dim = -1;
  uint32_t median = 0;
  ForEachDim(subspace, [&](int dim) {
    if (split_dim != -1) return;
    const uint32_t* col = view.column(dim);
    std::vector<uint32_t> ranks;
    ranks.reserve(ids.size());
    for (ObjectId id : ids) ranks.push_back(col[id]);
    auto mid = ranks.begin() + ranks.size() / 2;
    std::nth_element(ranks.begin(), mid, ranks.end());
    const uint32_t candidate_median = *mid;
    for (uint32_t r : ranks) {
      if (r < candidate_median) {
        split_dim = dim;
        median = candidate_median;
        break;
      }
    }
  });
  if (split_dim == -1) {
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  const uint32_t* split_col = view.column(split_dim);
  std::vector<ObjectId> low;
  std::vector<ObjectId> high;
  for (ObjectId id : ids) {
    (split_col[id] < median ? low : high).push_back(id);
  }
  std::vector<ObjectId> low_skyline =
      DncRecurseRanked(view, subspace, std::move(low));
  std::vector<ObjectId> high_skyline =
      DncRecurseRanked(view, subspace, std::move(high));
  const RankedBlock low_block = RankedBlock::Gather(view, subspace, low_skyline);
  std::vector<uint32_t> probe(
      static_cast<size_t>(std::max(low_block.num_packed_dims(), 1)));
  std::vector<ObjectId> merged = std::move(low_skyline);
  for (ObjectId candidate : high_skyline) {
    low_block.GatherProbe(candidate, probe.data());
    if (!BlockAnyDominates(low_block, probe.data())) {
      merged.push_back(candidate);
    }
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

}  // namespace

std::vector<ObjectId> SkylineDivideAndConquer(
    const Dataset& data, DimMask subspace,
    const std::vector<ObjectId>& candidates) {
  return DncRecurse(data, subspace, candidates);
}

std::vector<ObjectId> SkylineDivideAndConquerRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates) {
  return DncRecurseRanked(view, subspace, candidates);
}

}  // namespace skycube
