// Divide-and-conquer skyline (Börzsönyi, Kossmann, Stocker, ICDE 2001).
// Splits the candidate set at the median of one dimension, solves both
// halves recursively, and filters the high half against the low half's
// skyline: a high-side object (value ≥ median) can never dominate a
// low-side object (value < median) on the split dimension, so the low
// skyline survives unconditionally.
#include <algorithm>
#include <vector>

#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace skycube {

namespace {

constexpr size_t kDncBaseCase = 48;

std::vector<ObjectId> DncRecurse(const Dataset& data, DimMask subspace,
                                 std::vector<ObjectId> ids) {
  if (ids.size() <= kDncBaseCase) {
    return SkylineBnl(data, subspace, ids);
  }
  // Find a dimension that actually separates the set; a dimension where all
  // values are equal cannot split.
  int split_dim = -1;
  double median = 0;
  ForEachDim(subspace, [&](int dim) {
    if (split_dim != -1) return;
    std::vector<double> values;
    values.reserve(ids.size());
    for (ObjectId id : ids) values.push_back(data.Value(id, dim));
    auto mid = values.begin() + values.size() / 2;
    std::nth_element(values.begin(), mid, values.end());
    const double candidate_median = *mid;
    // A valid split needs at least one value strictly below the median.
    for (double v : values) {
      if (v < candidate_median) {
        split_dim = dim;
        median = candidate_median;
        break;
      }
    }
  });
  if (split_dim == -1) {
    // Every object has the identical projection: all are skyline.
    std::sort(ids.begin(), ids.end());
    return ids;
  }
  std::vector<ObjectId> low;
  std::vector<ObjectId> high;
  for (ObjectId id : ids) {
    (data.Value(id, split_dim) < median ? low : high).push_back(id);
  }
  std::vector<ObjectId> low_skyline = DncRecurse(data, subspace, std::move(low));
  std::vector<ObjectId> high_skyline =
      DncRecurse(data, subspace, std::move(high));
  // Merge: low skyline survives; high skyline entries survive unless some
  // low-skyline object dominates them.
  std::vector<ObjectId> merged = low_skyline;
  for (ObjectId candidate : high_skyline) {
    const double* row = data.Row(candidate);
    bool dominated = false;
    for (ObjectId low_id : low_skyline) {
      if (RowDominates(data.Row(low_id), row, subspace)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) merged.push_back(candidate);
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

}  // namespace

std::vector<ObjectId> SkylineDivideAndConquer(
    const Dataset& data, DimMask subspace,
    const std::vector<ObjectId>& candidates) {
  return DncRecurse(data, subspace, candidates);
}

}  // namespace skycube
