// Sort-filter-skyline (Chomicki, Godfrey, Gryz, Liang, ICDE 2003).
// Objects are presorted by a monotone score (here the coordinate sum over
// the subspace); after the sort no object can dominate an earlier one, so a
// single pass with a grow-only window suffices — no evictions, unlike BNL.
#include <algorithm>
#include <vector>

#include "skyline/algorithms.h"
#include "skyline/dominance.h"
#include "skyline/dominance_kernels.h"

namespace skycube {

std::vector<ObjectId> SkylineSfs(const Dataset& data, DimMask subspace,
                                 const std::vector<ObjectId>& candidates) {
  struct Scored {
    double score;
    ObjectId id;
  };
  std::vector<Scored> order;
  order.reserve(candidates.size());
  for (ObjectId id : candidates) {
    order.push_back({SortScore(data.Row(id), subspace), id});
  }
  std::sort(order.begin(), order.end(), [](const Scored& a, const Scored& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.id < b.id;
  });

  std::vector<ObjectId> skyline;
  for (const Scored& entry : order) {
    const double* row = data.Row(entry.id);
    bool dominated = false;
    for (ObjectId kept : skyline) {
      if (RowDominates(data.Row(kept), row, subspace)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(entry.id);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

// Ranked fast path: the monotone presort key becomes the integer rank sum
// (dominance implies a strictly smaller rank sum, same as the coordinate
// sum over doubles), and the window scan becomes one batch probe over a
// grow-only columnar block.
std::vector<ObjectId> SkylineSfsRanked(
    const RankedView& view, DimMask subspace,
    const std::vector<ObjectId>& candidates) {
  struct Scored {
    uint64_t key;
    ObjectId id;
  };
  std::vector<Scored> order;
  order.reserve(candidates.size());
  for (ObjectId id : candidates) {
    order.push_back({view.RankSortKey(id, subspace), id});
  }
  std::sort(order.begin(), order.end(), [](const Scored& a, const Scored& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  });

  RankedWindow window(view, subspace, std::min<size_t>(candidates.size(), 256));
  for (const Scored& entry : order) {
    if (!window.AnyDominates(entry.id)) window.Append(entry.id);
  }
  std::vector<ObjectId> skyline = window.ids();
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace skycube
