#include "datagen/synthetic.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace skycube {

Distribution DistributionFromName(const std::string& name) {
  if (name == "independent" || name == "equal" || name == "uniform") {
    return Distribution::kIndependent;
  }
  if (name == "correlated" || name == "corr") {
    return Distribution::kCorrelated;
  }
  if (name == "anticorrelated" || name == "anti" ||
      name == "anti-correlated") {
    return Distribution::kAntiCorrelated;
  }
  SKYCUBE_CHECK_MSG(false, ("unknown distribution: " + name).c_str());
  return Distribution::kIndependent;
}

const char* DistributionName(Distribution distribution) {
  switch (distribution) {
    case Distribution::kIndependent:
      return "independent";
    case Distribution::kCorrelated:
      return "correlated";
    case Distribution::kAntiCorrelated:
      return "anti-correlated";
  }
  return "unknown";
}

Dataset GenerateSynthetic(const SyntheticSpec& spec) {
  Dataset data = [&] {
    switch (spec.distribution) {
      case Distribution::kIndependent:
        return GenerateIndependent(spec.num_objects, spec.num_dims,
                                   spec.seed);
      case Distribution::kCorrelated:
        return GenerateCorrelated(spec.num_objects, spec.num_dims, spec.seed);
      case Distribution::kAntiCorrelated:
        return GenerateAntiCorrelated(spec.num_objects, spec.num_dims,
                                      spec.seed);
    }
    SKYCUBE_CHECK(false);
  }();
  if (spec.truncate_decimals >= 0) {
    return data.Truncated(spec.truncate_decimals);
  }
  return data;
}

Dataset GenerateIndependent(size_t num_objects, int num_dims, uint64_t seed) {
  Rng rng(seed);
  Dataset data(num_dims);
  std::vector<double> row(num_dims);
  for (size_t i = 0; i < num_objects; ++i) {
    for (int dim = 0; dim < num_dims; ++dim) row[dim] = rng.NextDouble();
    data.AddRow(row);
  }
  return data;
}

Dataset GenerateCorrelated(size_t num_objects, int num_dims, uint64_t seed,
                           double sigma) {
  Rng rng(seed);
  Dataset data(num_dims);
  std::vector<double> row(num_dims);
  for (size_t i = 0; i < num_objects; ++i) {
    const double quality = rng.NextDouble();
    for (int dim = 0; dim < num_dims; ++dim) {
      row[dim] = std::clamp(quality + sigma * rng.NextGaussian(), 0.0, 1.0);
    }
    data.AddRow(row);
  }
  return data;
}

Dataset GenerateAntiCorrelated(size_t num_objects, int num_dims,
                               uint64_t seed) {
  Rng rng(seed);
  Dataset data(num_dims);
  std::vector<double> row(num_dims);
  for (size_t i = 0; i < num_objects; ++i) {
    // The plane Σ x = d * offset with offset tightly around 0.5.
    const double offset = std::clamp(0.5 + 0.05 * rng.NextGaussian(),
                                     0.0, 1.0);
    std::fill(row.begin(), row.end(), offset);
    if (num_dims > 1) {
      // Redistribute mass between random pairs, keeping each coordinate in
      // [0, 1] and the total constant. 2d transfers give strong negative
      // pairwise correlation.
      const int transfers = 2 * num_dims;
      for (int t = 0; t < transfers; ++t) {
        const int i0 = static_cast<int>(rng.NextBounded(num_dims));
        int i1 = static_cast<int>(rng.NextBounded(num_dims - 1));
        if (i1 >= i0) ++i1;
        const double room = std::min(row[i0], 1.0 - row[i1]);
        const double delta = rng.NextDouble() * room;
        row[i0] -= delta;
        row[i1] += delta;
      }
    }
    data.AddRow(row);
  }
  return data;
}

}  // namespace skycube
