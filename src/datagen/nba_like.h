// NBA-like dataset generator.
//
// The paper evaluates on "the Great NBA Players' technical statistics from
// 1960 to 2001" — 17,265 players × 17 career-total columns, larger is
// better. The original file (basketballreference.com dump) is proprietary
// and not available offline, so we substitute a synthetic generator that
// preserves the properties driving both Skyey and Stellar (see DESIGN.md §4):
//
//  1. strong positive cross-column correlation via per-player latent career
//     length and skill factors (all counting stats scale with both);
//  2. integer counting values with heavy ties (many marginal players have
//     identical small totals), which is what creates non-trivial c-groups;
//  3. a small full-space skyline (a handful of all-time greats dominate),
//     so the number of skyline groups stays moderate while the number of
//     subspace skyline objects explodes with dimensionality — the exact
//     contrast of the paper's Figures 8 and 9;
//  4. 17 dimensions and 17,265 rows, matching the sweep range d = 1..17.
//
// Values are larger-is-better like the real table; callers feed
// `GenerateNbaLike(...).Negated()` to the (smaller-is-better) algorithms.
#ifndef SKYCUBE_DATAGEN_NBA_LIKE_H_
#define SKYCUBE_DATAGEN_NBA_LIKE_H_

#include <cstdint>

#include "dataset/dataset.h"

namespace skycube {

/// Number of players in the paper's NBA table.
inline constexpr size_t kNbaLikeDefaultPlayers = 17265;
/// Number of statistic columns in the paper's NBA table.
inline constexpr int kNbaLikeNumDims = 17;

/// Generates an NBA-like career-statistics dataset: `num_players` rows × 17
/// integer columns (games, minutes, points, rebounds, ...), larger is
/// better. Deterministic in `seed`.
Dataset GenerateNbaLike(size_t num_players = kNbaLikeDefaultPlayers,
                        uint64_t seed = 2007);

}  // namespace skycube

#endif  // SKYCUBE_DATAGEN_NBA_LIKE_H_
