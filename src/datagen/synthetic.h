// Synthetic data generators replicating the evaluation workloads of the
// paper (§6.2), which uses "the data generator provided by the authors of
// [1]" (Börzsönyi, Kossmann, Stocker, "The Skyline Operator", ICDE 2001):
//
//  - independent / "equally distributed": each attribute i.i.d. uniform;
//  - correlated: records good in one dimension are likely good in others;
//  - anti-correlated: records good in one dimension are likely bad in
//    others (points scattered around a hyperplane of constant sum).
//
// The paper truncates generated values to 4 decimal digits "to introduce a
// moderate coincidence in dimensions"; use Dataset::Truncated(4) or the
// truncate_decimals field of SyntheticSpec.
#ifndef SKYCUBE_DATAGEN_SYNTHETIC_H_
#define SKYCUBE_DATAGEN_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "dataset/dataset.h"

namespace skycube {

/// The three distribution families of the Börzsönyi generator.
enum class Distribution {
  kIndependent,     // "equally distributed" in the paper
  kCorrelated,
  kAntiCorrelated,
};

/// Parses "independent"/"equal", "correlated"/"corr", "anticorrelated"/
/// "anti" (case-sensitive); dies on anything else.
Distribution DistributionFromName(const std::string& name);

/// Short display name ("independent", "correlated", "anti-correlated").
const char* DistributionName(Distribution distribution);

/// A complete synthetic-workload specification, sufficient to regenerate a
/// dataset byte-for-byte.
struct SyntheticSpec {
  Distribution distribution = Distribution::kIndependent;
  size_t num_objects = 1000;
  int num_dims = 4;
  uint64_t seed = 42;
  /// Truncate values to this many decimal digits; negative = no truncation.
  /// The paper uses 4.
  int truncate_decimals = 4;
};

/// Generates a dataset according to `spec`. Values lie in [0, 1]; smaller is
/// better.
Dataset GenerateSynthetic(const SyntheticSpec& spec);

/// Each attribute i.i.d. uniform on [0, 1).
Dataset GenerateIndependent(size_t num_objects, int num_dims, uint64_t seed);

/// Correlated: a per-record quality value q ~ U[0,1) plus small Gaussian
/// perturbations per dimension (clamped to [0, 1]); all attributes of a
/// record rise and fall together.
Dataset GenerateCorrelated(size_t num_objects, int num_dims, uint64_t seed,
                           double sigma = 0.05);

/// Anti-correlated: records lie close to the hyperplane Σ x_i = d/2; within
/// a record, being small in one dimension forces being large in others. The
/// construction follows the Börzsönyi generator: pick the plane offset from
/// a tight normal around 0.5, spread the mass equally, then repeatedly move
/// random amounts between random pairs of dimensions.
Dataset GenerateAntiCorrelated(size_t num_objects, int num_dims,
                               uint64_t seed);

}  // namespace skycube

#endif  // SKYCUBE_DATAGEN_SYNTHETIC_H_
