#include "datagen/nba_like.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"

namespace skycube {

namespace {

// Column layout of the generated table. Mirrors the kind of career-total
// columns in the NBA regular-season statistics table.
const char* const kColumns[kNbaLikeNumDims] = {
    "games",    "minutes",  "points",   "total_rebounds", "assists",
    "steals",   "blocks",   "fgm",      "fga",            "ftm",
    "fta",      "tpm",      "tpa",      "off_rebounds",   "def_rebounds",
    "games_started",         "double_doubles"};

// Per-column per-game base rates for an average starter, scaled by skill and
// role factors below. Indexed as kColumns.
constexpr double kPerGameRate[kNbaLikeNumDims] = {
    1.0,   // games (handled separately)
    24.0,  // minutes per game
    10.0,  // points
    4.5,   // rebounds
    2.5,   // assists
    0.8,   // steals
    0.5,   // blocks
    4.0,   // field goals made
    8.8,   // field goals attempted
    2.0,   // free throws made
    2.7,   // free throw attempts
    0.4,   // three pointers made
    1.2,   // three point attempts
    1.5,   // offensive rebounds
    3.0,   // defensive rebounds
    0.5,   // games started fraction
    0.05,  // double-doubles fraction
};

}  // namespace

Dataset GenerateNbaLike(size_t num_players, uint64_t seed) {
  Rng rng(seed);
  Dataset data(kNbaLikeNumDims,
               std::vector<std::string>(kColumns, kColumns + kNbaLikeNumDims));
  std::vector<double> row(kNbaLikeNumDims);
  for (size_t player = 0; player < num_players; ++player) {
    // Career length in games: heavy-tailed. Most players wash out after a
    // few dozen games; stars play 1000+. Log-uniform between 1 and ~1600.
    const double u = rng.NextDouble();
    const int games =
        std::max<int>(1, static_cast<int>(std::exp(u * u * 7.38)));  // ≤ ~1600
    // Overall skill in (0, 1.6): most around 0.5..1.0, rare superstars near
    // the top. Skill correlates every per-game rate.
    const double skill =
        std::clamp(0.55 + 0.25 * rng.NextGaussian() + 0.55 * u, 0.05, 1.8);
    // Role tilts: a big man gets rebounds/blocks, a guard assists/threes.
    const double bigness = rng.NextDouble();  // 0 = guard, 1 = center
    double role[kNbaLikeNumDims];
    std::fill(role, role + kNbaLikeNumDims, 1.0);
    role[3] = role[13] = role[14] = 0.5 + 1.2 * bigness;   // rebounds
    role[6] = 0.25 + 1.8 * bigness;                        // blocks
    role[4] = 1.6 - 1.2 * bigness;                         // assists
    role[11] = role[12] = std::max(0.05, 1.7 - 1.6 * bigness);  // threes
    role[5] = 1.3 - 0.6 * bigness;                         // steals

    row[0] = games;
    for (int col = 1; col < kNbaLikeNumDims; ++col) {
      const double noise = std::max(0.0, 1.0 + 0.25 * rng.NextGaussian());
      const double per_game = kPerGameRate[col] * skill * role[col] * noise;
      row[col] = std::floor(per_game * games);
    }
    // Internal consistency: made shots cannot exceed attempts.
    row[7] = std::min(row[7], row[8]);
    row[9] = std::min(row[9], row[10]);
    row[11] = std::min(row[11], row[12]);
    // Games started and double-doubles cannot exceed games played.
    row[15] = std::min(row[15], row[0]);
    row[16] = std::min(row[16], row[0]);
    data.AddRow(row);
  }
  return data;
}

}  // namespace skycube
