// Startup recovery for a durable ingest directory: load the newest valid
// checkpoint (falling back to older ones when a checkpoint fails its
// checksum or cross-check), then replay the mixed-op WAL suffix through
// IncrementalCubeMaintainer.
//
// Recovery sequence (docs/ROBUSTNESS.md):
//   1. List checkpoints, newest first. For each: load (outer FNV-1a
//      checksum + embedded cube v2 checksum must both verify), rebuild the
//      maintainer from the checkpointed dataset *restricted to its live
//      rows*, and cross-check that the rebuilt groups exactly equal the
//      checkpointed groups — a checkpoint that fails any of these is
//      *rejected*, never partially applied.
//   2. Replay WAL records with lsn > checkpoint_lsn in order: inserts
//      through Insert() (with their timestamps), deletes through Remove().
//      A delete whose target was never acked — or already dead — is a
//      counted no-op, not an error: a durable delete record can outlive
//      its target only if the target never became durable. The scan stops
//      at the first damaged record; the damaged suffix is reported, not
//      loaded.
//   3. When *every* checkpoint is damaged but the WAL still reaches back
//      to LSN 1, fall back to a WAL-only rebuild: replay the entire log
//      over an empty base. Rows that existed before the first WAL record
//      (the bootstrap set) are unrecoverable — they are re-created as
//      tombstoned placeholders so the surviving ids stay exact, and their
//      count is reported as base_rows_lost.
//   4. Report per-phase counters and the next LSN to append at.
//
// The result is a maintainer whose groups() provably equal
// StellarOverLive() over the recovered rows — the crash-consistency
// invariant tools/skycube_crashtest.cc enforces under random SIGKILL.
#ifndef SKYCUBE_STORAGE_RECOVERY_H_
#define SKYCUBE_STORAGE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/maintenance.h"
#include "core/stellar.h"

namespace skycube {

/// Per-phase counters of one recovery pass.
struct RecoveryStats {
  uint64_t checkpoints_found = 0;
  /// Checkpoints rejected before one loaded (checksum/parse/cross-check).
  uint64_t checkpoints_rejected = 0;
  /// LSN of the checkpoint recovery loaded (0 under a WAL-only rebuild).
  uint64_t checkpoint_lsn = 0;
  uint64_t checkpoint_rows = 0;
  uint64_t checkpoint_live_rows = 0;
  uint64_t wal_records_replayed = 0;
  uint64_t wal_inserts_replayed = 0;
  /// Deletes that tombstoned a live row.
  uint64_t wal_deletes_replayed = 0;
  /// Deletes whose target was never acked or already dead (no-ops).
  uint64_t wal_deletes_ignored = 0;
  /// True iff the WAL scan stopped before its physical end (torn tail or a
  /// corrupt record) — the damaged suffix was discarded, not loaded.
  bool wal_suffix_discarded = false;
  uint64_t wal_bytes_discarded = 0;
  /// True iff every checkpoint was damaged and the state was rebuilt from
  /// the WAL alone (degraded: bootstrap rows are lost).
  bool wal_only_rebuild = false;
  /// Rows that predate the WAL and could not be recovered (WAL-only
  /// rebuilds only; recreated as tombstoned placeholders).
  uint64_t base_rows_lost = 0;
  /// First LSN a reopened WAL should assign.
  uint64_t next_lsn = 1;
  double seconds_total = 0;
};

/// A recovered ingest state, ready to serve and to keep ingesting.
struct RecoveredState {
  std::unique_ptr<IncrementalCubeMaintainer> maintainer;
  RecoveryStats stats;
};

/// True iff `dir` holds at least one complete checkpoint — the signal that
/// a data directory carries state to recover rather than bootstrap.
bool DirHasDurableState(const std::string& dir);

/// Runs the recovery sequence over `dir`. Fails with kNotFound when the
/// directory has no checkpoint at all, and kInternal when every checkpoint
/// is damaged and the WAL does not reach back to LSN 1 (nothing is ever
/// silently loaded from a bad file).
Result<RecoveredState> RecoverFromDir(const std::string& dir,
                                      const StellarOptions& options = {});

}  // namespace skycube

#endif  // SKYCUBE_STORAGE_RECOVERY_H_
