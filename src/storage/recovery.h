// Startup recovery for a durable ingest directory: load the newest valid
// checkpoint (falling back to older ones when a checkpoint fails its
// checksum or cross-check), then replay the WAL suffix through
// IncrementalCubeMaintainer.
//
// Recovery sequence (docs/ROBUSTNESS.md):
//   1. List checkpoints, newest first. For each: load (outer FNV-1a
//      checksum + embedded cube v2 checksum must both verify), rebuild the
//      maintainer from the checkpointed dataset, and cross-check that the
//      rebuilt groups exactly equal the checkpointed groups — a checkpoint
//      that fails any of these is *rejected*, never partially applied.
//   2. Replay WAL records with lsn > checkpoint_lsn in order through
//      Insert(). The scan stops at the first damaged record (torn tail or
//      corruption); the damaged suffix is reported, not loaded.
//   3. Report per-phase counters and the next LSN to append at.
//
// The result is a maintainer whose groups() provably equal
// ComputeStellar() over checkpoint rows + replayed rows — the
// crash-consistency invariant tools/skycube_crashtest.cc enforces under
// random SIGKILL.
#ifndef SKYCUBE_STORAGE_RECOVERY_H_
#define SKYCUBE_STORAGE_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/maintenance.h"
#include "core/stellar.h"

namespace skycube {

/// Per-phase counters of one recovery pass.
struct RecoveryStats {
  uint64_t checkpoints_found = 0;
  /// Checkpoints rejected before one loaded (checksum/parse/cross-check).
  uint64_t checkpoints_rejected = 0;
  /// LSN of the checkpoint recovery loaded.
  uint64_t checkpoint_lsn = 0;
  uint64_t checkpoint_rows = 0;
  uint64_t wal_records_replayed = 0;
  /// True iff the WAL scan stopped before its physical end (torn tail or a
  /// corrupt record) — the damaged suffix was discarded, not loaded.
  bool wal_suffix_discarded = false;
  uint64_t wal_bytes_discarded = 0;
  /// First LSN a reopened WAL should assign.
  uint64_t next_lsn = 1;
  double seconds_total = 0;
};

/// A recovered ingest state, ready to serve and to keep ingesting.
struct RecoveredState {
  std::unique_ptr<IncrementalCubeMaintainer> maintainer;
  RecoveryStats stats;
};

/// True iff `dir` holds at least one complete checkpoint — the signal that
/// a data directory carries state to recover rather than bootstrap.
bool DirHasDurableState(const std::string& dir);

/// Runs the recovery sequence over `dir`. Fails with kNotFound when the
/// directory has no checkpoint at all, and kInternal when every checkpoint
/// is damaged (nothing is ever silently loaded from a bad file).
Result<RecoveredState> RecoverFromDir(const std::string& dir,
                                      const StellarOptions& options = {});

}  // namespace skycube

#endif  // SKYCUBE_STORAGE_RECOVERY_H_
